// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus the ablations called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem .
//
// Naming follows the per-experiment index in DESIGN.md: one Benchmark per
// paper artifact (T1–T3, F3–F7) plus supporting statistics and ablations.
package divecloud_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	divecloud "repro"

	"repro/internal/abuse"
	"repro/internal/analysis"
	"repro/internal/c2"
	"repro/internal/content"
	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/faas"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/pdns"
	"repro/internal/probe"
	"repro/internal/providers"
	"repro/internal/secrets"
	"repro/internal/ti"
	"repro/internal/workload"
)

// ---- shared fixtures, built once per bench binary ----

var (
	fixOnce    sync.Once
	fixPop     *workload.Population
	fixRecords []pdns.Record
	fixAgg     *pdns.Aggregate
	fixPerFn   []*pdns.FQDNStats
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		fixPop = workload.Generate(workload.Config{Seed: 1, Scale: 0.01})
		resolver := dnssim.NewResolver()
		recs, err := workload.Records(fixPop, resolver)
		if err != nil {
			panic(err)
		}
		fixRecords = recs
		w := workload.Window()
		agg := pdns.NewAggregator(nil, w.Start, w.End)
		for i := range recs {
			agg.Add(&recs[i])
		}
		fixAgg = agg.Finish()
		fixPerFn = fixAgg.PerFunctionStats()
	})
}

var (
	resOnce   sync.Once
	fixResult *core.Results
)

func pipelineResults(b *testing.B) *core.Results {
	b.Helper()
	resOnce.Do(func() {
		res, err := core.Run(core.Config{
			Seed: 1, Scale: 0.002, SkipC2Scan: true,
			ProbeTimeout: 500 * time.Millisecond,
		})
		if err != nil {
			panic(err)
		}
		fixResult = res
	})
	return fixResult
}

// ---- T1: URL formats (Table 1) ----

// BenchmarkTable1URLFormats measures the generate→identify round trip for
// every provider format.
func BenchmarkTable1URLFormats(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := providers.NewMatcher(nil)
	formats := providers.Collected()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := formats[i%len(formats)]
		dom := in.Generate(rng, "")
		if got, ok := m.Identify(dom); !ok || got.ID != in.ID {
			b.Fatalf("round trip failed for %s: %q", in.Name, dom)
		}
	}
}

// Ablation: suffix-map pre-filter vs regex-only identification over a mixed
// corpus (90% non-function noise, like a real PDNS feed).
func benchIdentify(b *testing.B, slow bool) {
	rng := rand.New(rand.NewSource(2))
	m := providers.NewMatcher(nil)
	var corpus []string
	for i := 0; i < 200; i++ {
		corpus = append(corpus, fmt.Sprintf("host%d.example%d.com", i, i%7))
	}
	for _, in := range providers.Collected() {
		for i := 0; i < 2; i++ {
			corpus = append(corpus, in.Generate(rng, ""))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := corpus[i%len(corpus)]
		if slow {
			m.IdentifySlow(d)
		} else {
			m.Identify(d)
		}
	}
}

func BenchmarkIdentifySuffixMap(b *testing.B) { benchIdentify(b, false) }
func BenchmarkIdentifyRegexOnly(b *testing.B) { benchIdentify(b, true) }

// ---- T2: resolution aggregation (Table 2) ----

// BenchmarkTable2Resolution measures single-pass PDNS aggregation
// throughput (records/op) plus the Table 2 rollup.
func BenchmarkTable2Resolution(b *testing.B) {
	fixtures(b)
	w := workload.Window()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := pdns.NewAggregator(nil, w.Start, w.End)
		for j := range fixRecords {
			agg.Add(&fixRecords[j])
		}
		ag := agg.Finish()
		if rows := analysis.Table2(ag); len(rows) == 0 {
			b.Fatal("empty table 2")
		}
	}
	b.ReportMetric(float64(len(fixRecords)), "records/op")
}

var (
	batchOnce  sync.Once
	fixBatches []*pdns.RecordBatch
	fixTSV     []byte
)

// batchFixtures materialises the record fixture as columnar batches sharing
// one intern table (the shape a streaming producer hands AddBatch) plus its
// TSV encoding, for the batch-path benchmarks.
func batchFixtures(b *testing.B) {
	b.Helper()
	fixtures(b)
	batchOnce.Do(func() {
		batch := pdns.NewRecordBatch(pdns.DefaultBatchRows)
		for i := range fixRecords {
			if batch.Len() == pdns.DefaultBatchRows {
				fixBatches = append(fixBatches, batch)
				batch = &pdns.RecordBatch{Syms: batch.Syms}
			}
			batch.AppendRecord(&fixRecords[i])
		}
		if batch.Len() > 0 {
			fixBatches = append(fixBatches, batch)
		}
		var buf bytes.Buffer
		w := pdns.NewWriter(&buf, pdns.TSV)
		for _, bt := range fixBatches {
			if err := w.WriteBatch(bt); err != nil {
				panic(err)
			}
		}
		w.Flush()
		fixTSV = buf.Bytes()
	})
}

// BenchmarkTable2ResolutionBatch is the columnar form of the Table 2 rollup:
// the same records flow in as interned batches through AddBatch. The delta
// against BenchmarkTable2Resolution is what the SoA hot path buys once a
// producer emits batches natively.
func BenchmarkTable2ResolutionBatch(b *testing.B) {
	batchFixtures(b)
	w := workload.Window()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := pdns.NewAggregator(nil, w.Start, w.End)
		agg.Presize(len(fixPop.Functions))
		for _, bt := range fixBatches {
			agg.AddBatch(bt)
		}
		ag := agg.Finish()
		if rows := analysis.Table2(ag); len(rows) == 0 {
			b.Fatal("empty table 2")
		}
	}
	b.ReportMetric(float64(len(fixRecords)), "records/op")
}

// BenchmarkBatchCodec measures the streaming batch codec against the record
// fixture: read decodes the whole TSV corpus through ReadBatch, write
// re-encodes the batches through WriteBatch.
func BenchmarkBatchCodec(b *testing.B) {
	batchFixtures(b)
	b.Run("read", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := pdns.NewReader(bytes.NewReader(fixTSV), pdns.TSV)
			batch := pdns.NewRecordBatch(pdns.DefaultBatchRows)
			var rows int64
			n, err := pdns.CopyAllBatch(r, batch, func(bt *pdns.RecordBatch) error {
				rows += int64(bt.Len())
				return nil
			})
			if err != nil || n != int64(len(fixRecords)) || rows != n {
				b.Fatalf("read %d rows (cb %d): %v", n, rows, err)
			}
		}
		b.ReportMetric(float64(len(fixRecords)), "records/op")
	})
	b.Run("write", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			w := pdns.NewWriter(io.Discard, pdns.TSV)
			for _, bt := range fixBatches {
				if err := w.WriteBatch(bt); err != nil {
					b.Fatal(err)
				}
			}
			if err := w.Flush(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(len(fixRecords)), "records/op")
	})
}

// BenchmarkTable2ResolutionInstrumented is the same rollup with the obs
// counters attached: the delta against BenchmarkTable2Resolution is the
// whole observability overhead on the aggregation hot path (three atomic
// increments per record; must stay within 5% of the baseline).
func BenchmarkTable2ResolutionInstrumented(b *testing.B) {
	fixtures(b)
	w := workload.Window()
	reg := obs.NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := pdns.NewAggregator(nil, w.Start, w.End)
		agg.Instrument(reg)
		for j := range fixRecords {
			agg.Add(&fixRecords[j])
		}
		ag := agg.Finish()
		if rows := analysis.Table2(ag); len(rows) == 0 {
			b.Fatal("empty table 2")
		}
	}
	b.ReportMetric(float64(len(fixRecords)), "records/op")
}

// BenchmarkObsPrimitives prices the individual instrumentation events.
func BenchmarkObsPrimitives(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("c")
	h := reg.Histogram("h", nil)
	b.Run("counter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter-nil", func(b *testing.B) {
		var nc *obs.Counter
		for i := 0; i < b.N; i++ {
			nc.Inc()
		}
	})
	b.Run("histogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Observe(float64(i%100) / 1000)
		}
	})
	b.Run("span", func(b *testing.B) {
		tr := obs.NewTrace()
		ctx := obs.ContextWithTrace(context.Background(), tr)
		for i := 0; i < b.N; i++ {
			_, sp := obs.StartSpan(ctx, "bench")
			sp.End()
		}
	})
}

// ---- T3: abuse classification (Table 3) ----

// BenchmarkTable3Abuse measures content classification over a realistic
// response corpus and the Table 3 assembly.
func BenchmarkTable3Abuse(b *testing.B) {
	docs := abuseCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		verdicts := map[string][]abuse.Verdict{}
		for j := range docs {
			if vs := abuse.Classify(&docs[j]); len(vs) > 0 {
				verdicts[docs[j].FQDN] = vs
			}
		}
		rep := abuse.NewReport(verdicts, nil, len(docs))
		if rep.TotalFunctions() == 0 {
			b.Fatal("no abuse found in corpus")
		}
	}
	b.ReportMetric(float64(len(docs)), "docs/op")
}

func abuseCorpus() []abuse.Document {
	rng := rand.New(rand.NewSource(3))
	var docs []abuse.Document
	bodies := []string{
		`<html><head><meta name="google-site-verification" content="x"/><title>slot betting casino</title></head><body>jackpot slot betting</body></html>`,
		`To purchase an API key (e.g., sk-abc12345...), contact via WeChat: seller_x`,
		`<script>location.href = "http://hidden.illicit.top/x"</script>`,
		`Ticketmaster puppeteer service: auto purchase tickets`,
		`{"status":"ok","count":1}`,
		`<html><body>welcome to my blog</body></html>`,
		`task finished in 20ms`,
	}
	for i := 0; i < 600; i++ {
		docs = append(docs, abuse.Document{
			FQDN:   fmt.Sprintf("f%03d-%010d-uc.a.run.app", i, rng.Int63n(1e9)),
			Status: 200, ContentType: "text/html",
			Body: bodies[i%len(bodies)],
		})
	}
	return docs
}

// ---- F3/F4: trend figures ----

func BenchmarkFigure3MonthlyCounts(b *testing.B) {
	fixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := analysis.NewFQDNsByMonth(fixAgg)
		if analysis.CumulativeFQDNs(s)[len(s)-1].Value == 0 {
			b.Fatal("empty series")
		}
	}
}

func BenchmarkFigure4InvocationTrends(b *testing.B) {
	fixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(analysis.InvocationTrend(fixAgg)) == 0 {
			b.Fatal("empty trends")
		}
	}
}

// ---- F5: invocation distribution ----

func BenchmarkFigure5RequestCDF(b *testing.B) {
	fixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := analysis.Frequency(fixPerFn)
		if st.Functions == 0 {
			b.Fatal("no functions")
		}
	}
}

// BenchmarkLifespanStats covers the §4.3 lifespan/activity analysis.
func BenchmarkLifespanStats(b *testing.B) {
	fixtures(b)
	w := workload.Window()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := analysis.Lifespan(fixPerFn, w)
		if st.Functions == 0 {
			b.Fatal("no functions")
		}
	}
}

// ---- F6: probe sweep over the live gateway ----

// BenchmarkFigure6HTTPCodes measures active-probe throughput against the
// simulated edge (one probed function per op).
func BenchmarkFigure6HTTPCodes(b *testing.B) {
	r := pipelineResults(b)
	targets := r.Population.ProbeTargets()
	// Re-deploy a live edge for this benchmark.
	platform, servers := liveEdge(b, r.Population)
	defer servers.Close()
	_ = platform
	p := probe.New(probe.Config{
		Timeout:     time.Second,
		DialContext: dialBoth(servers),
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := p.Probe(context.Background(), targets[i%len(targets)])
		if res.Failure == probe.FailBudget {
			b.Fatal("probe budget exhausted")
		}
	}
}

// ---- F7: resale trend ----

func BenchmarkFigure7ResaleTrend(b *testing.B) {
	r := pipelineResults(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(r.RenderFigure7()) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// ---- §3.4: clustering ----

func clusterCorpus(n int) []string {
	rng := rand.New(rand.NewSource(4))
	families := []string{
		"api response status ok result data",
		"gambling slot betting casino jackpot bonus",
		"task finished processed records log output",
		"welcome homepage service about contact",
	}
	var docs []string
	for i := 0; i < n; i++ {
		fam := families[i%len(families)]
		docs = append(docs, fmt.Sprintf("%s variant %d noise%d", fam, i%7, rng.Intn(20)))
	}
	return docs
}

func BenchmarkClustering(b *testing.B) {
	docs := clusterCorpus(300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(content.ClusterDocs(docs, 0.1)) == 0 {
			b.Fatal("no clusters")
		}
	}
}

// Ablation: dendrogram cut threshold (0.05 / 0.10 / 0.20).
func BenchmarkClusteringThreshold(b *testing.B) {
	docs := clusterCorpus(300)
	v := content.NewVectorizer(docs)
	dend := content.Agglomerate(v.TransformAll(docs))
	for _, th := range []float64{0.05, 0.10, 0.20} {
		b.Run(fmt.Sprintf("cut=%.2f", th), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dend.Cut(th)
			}
			b.ReportMetric(float64(dend.NumClusters(th)), "clusters")
		})
	}
}

// ---- §5: secrets scan ----

func BenchmarkSecretsScan(b *testing.B) {
	bodies := []string{
		`{"status":"ok","token":"none"}`,
		`debug contact: 13812345678 and api_key: zq81kfh27dkq9sX2`,
		`<html><body>hello world page</body></html>`,
		`upstream 10.1.2.3 hwaddr 00:1a:2b:3c:4d:5e password=hunter22x`,
	}
	anon := secrets.NewAnonymizerWithSalt("benchsalt0")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, fs := anon.Sanitize(bodies[i%len(bodies)])
		_ = fs
	}
}

// ---- §5.1: C2 fingerprints ----

// BenchmarkC2Fingerprint measures pure matcher throughput over banners.
func BenchmarkC2Fingerprint(b *testing.B) {
	db := c2.DefaultDB()
	fps := db.All()
	banners := make([][]byte, len(fps))
	for i, fp := range fps {
		banners[i] = c2.Banner(fp)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fp := fps[i%len(fps)]
		if !fp.Match.Matches(banners[i%len(fps)]) {
			b.Fatal("matcher regression")
		}
	}
}

// BenchmarkC2ScanHost measures a full 26-signature network scan of one live
// relay (per op).
func BenchmarkC2ScanHost(b *testing.B) {
	db := c2.DefaultDB()
	relay, err := c2.NewRelay(db, c2.FamilyCobaltStrike)
	if err != nil {
		b.Fatal(err)
	}
	defer relay.Close()
	s := c2.NewScanner(db)
	s.Timeout = time.Second
	s.Dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, network, relay.Addr())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ds := s.ScanHost(context.Background(), "relay.example"); len(ds) == 0 {
			b.Fatal("relay not detected")
		}
	}
}

// ---- §5.5: threat-intel gap ----

func BenchmarkThreatIntelGap(b *testing.B) {
	oracle := ti.NewOracle()
	var abused []string
	for i := 0; i < 594; i++ {
		abused = append(abused, fmt.Sprintf("fn%03d.a.run.app", i))
	}
	oracle.Seed(abused[:4], 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := oracle.Assess(abused)
		if c.Flagged != 4 {
			b.Fatalf("coverage = %d", c.Flagged)
		}
	}
}

// ---- substrate benchmarks and ablations ----

// BenchmarkEmitPDNS measures synthetic feed generation throughput.
func BenchmarkEmitPDNS(b *testing.B) {
	pop := workload.Generate(workload.Config{Seed: 5, Scale: 0.002})
	resolver := dnssim.NewResolver()
	b.ReportAllocs()
	b.ResetTimer()
	var n int64
	for i := 0; i < b.N; i++ {
		n = 0
		err := workload.EmitPDNS(pop, resolver, func(r *pdns.Record) error { n++; return nil })
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n), "records/op")
}

// benchWorkerCounts is the sweep used by the parallel-substrate benchmarks:
// serial baseline, minimal parallelism, full machine.
func benchWorkerCounts() []int {
	counts := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p > 2 {
		counts = append(counts, p)
	}
	return counts
}

// BenchmarkEmitPDNSParallel measures the sharded emission path across worker
// counts; the workers=1 case degenerates to EmitPDNS and is the baseline for
// the speedup claim.
func BenchmarkEmitPDNSParallel(b *testing.B) {
	pop := workload.Generate(workload.Config{Seed: 5, Scale: 0.002})
	resolver := dnssim.NewResolver()
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			sinks := make([]func(*pdns.Record) error, workers)
			counts := make([]int64, workers)
			for i := range sinks {
				i := i
				sinks[i] = func(*pdns.Record) error { counts[i]++; return nil }
			}
			b.ReportAllocs()
			b.ResetTimer()
			var n int64
			for i := 0; i < b.N; i++ {
				for j := range counts {
					counts[j] = 0
				}
				if err := workload.EmitPDNSParallel(pop, resolver, workers, sinks...); err != nil {
					b.Fatal(err)
				}
				n = 0
				for _, c := range counts {
					n += c
				}
			}
			b.ReportMetric(float64(n), "records/op")
		})
	}
}

// BenchmarkAggregateParallel measures the full substrate→identification hot
// path — emission plus §3.2 aggregation with shard-local aggregators and the
// final merge — across worker counts.
func BenchmarkAggregateParallel(b *testing.B) {
	pop := workload.Generate(workload.Config{Seed: 5, Scale: 0.002})
	resolver := dnssim.NewResolver()
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			var scanned int64
			for i := 0; i < b.N; i++ {
				ag, err := workload.AggregateParallel(context.Background(), pop, resolver, nil, workers, nil)
				if err != nil {
					b.Fatal(err)
				}
				scanned = ag.Scanned
			}
			b.ReportMetric(float64(scanned), "records/op")
		})
	}
}

// Ablation: resolver-cache model on PDNS counts.
func BenchmarkCacheModel(b *testing.B) {
	for _, on := range []bool{false, true} {
		b.Run(fmt.Sprintf("cache=%v", on), func(b *testing.B) {
			pop := workload.Generate(workload.Config{Seed: 5, Scale: 0.001, CacheModel: on})
			resolver := dnssim.NewResolver()
			b.ResetTimer()
			var total int64
			for i := 0; i < b.N; i++ {
				total = 0
				workload.EmitPDNS(pop, resolver, func(r *pdns.Record) error {
					total += r.RequestCnt
					return nil
				})
			}
			b.ReportMetric(float64(total), "observed-requests")
		})
	}
}

// Ablation: prober concurrency sweep against the live edge.
func BenchmarkProberConcurrency(b *testing.B) {
	r := pipelineResults(b)
	targets := r.Population.ProbeTargets()
	if len(targets) > 64 {
		targets = targets[:64]
	}
	_, servers := liveEdge(b, r.Population)
	defer servers.Close()
	for _, conc := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("c=%d", conc), func(b *testing.B) {
			p := probe.New(probe.Config{
				Timeout: time.Second, Concurrency: conc,
				DialContext: dialBoth(servers),
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ProbeAll(context.Background(), targets)
			}
			b.ReportMetric(float64(len(targets)), "probes/op")
		})
	}
}

// Ablation: probe throughput under the heavy chaos profile with bounded
// retries, across chaos seeds. Different seeds fault different FQDNs, so the
// spread across sub-benchmarks shows how much campaign cost the fault
// schedule itself moves; retries/op makes the absorbed failures visible.
func BenchmarkProbeChaosRetries(b *testing.B) {
	r := pipelineResults(b)
	targets := r.Population.ProbeTargets()
	if len(targets) > 64 {
		targets = targets[:64]
	}
	_, servers := liveEdge(b, r.Population)
	defer servers.Close()
	for _, seed := range []int64{1, 2} {
		b.Run(fmt.Sprintf("seed=%d", seed), func(b *testing.B) {
			in := fault.New(fault.Heavy().WithSeed(seed))
			in.SetSpikeDelay(100 * time.Millisecond)
			p := probe.New(probe.Config{
				Timeout: time.Second, Concurrency: 32,
				Resolve:      in.WrapResolve(nil),
				DialContext:  in.WrapDial(dialBoth(servers)),
				Retries:      2,
				RetryBackoff: time.Millisecond,
			})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ProbeAll(context.Background(), targets)
			}
			st := p.Stats()
			b.ReportMetric(float64(len(targets)), "probes/op")
			b.ReportMetric(float64(st.Retried)/float64(b.N), "retries/op")
		})
	}
}

// BenchmarkPipelineEndToEnd runs the whole study at a tiny scale per op.
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.Config{
			Seed: int64(i + 1), Scale: 0.0005, SkipC2Scan: true,
			ProbeTimeout: 500 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Aggregate.TotalDomains() == 0 {
			b.Fatal("empty run")
		}
	}
}

// BenchmarkGeneratePDNSFacade exercises the public dataset API.
func BenchmarkGeneratePDNSFacade(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		if err := divecloud.GeneratePDNS(9, 0.0005, func(r *divecloud.Record) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- helpers ----

type edgeServers struct {
	plainAddr, tlsAddr string
	closeFns           []func()
}

func (e *edgeServers) Close() {
	for _, f := range e.closeFns {
		f()
	}
}

// liveEdge deploys the population on a fresh platform behind real HTTP and
// HTTPS listeners, mirroring the pipeline's simulated cloud edge.
func liveEdge(b *testing.B, pop *workload.Population) (*faas.Platform, *edgeServers) {
	b.Helper()
	db := c2.DefaultDB()
	platform := faas.NewPlatform()
	workload.Deploy(pop, platform, db)
	gw := faas.NewGateway(platform)
	gw.Clock = workload.DeployWindowClock()
	gw.UnreachableDelay = 2 * time.Second
	tlsSrv := httptest.NewUnstartedServer(gw)
	// Chaos benchmarks abort TLS handshakes by design; keep the server's
	// complaints out of the bench output.
	tlsSrv.Config.ErrorLog = log.New(io.Discard, "", 0)
	tlsSrv.StartTLS()
	plainSrv := httptest.NewServer(gw)
	e := &edgeServers{
		plainAddr: strings.TrimPrefix(plainSrv.URL, "http://"),
		tlsAddr:   strings.TrimPrefix(tlsSrv.URL, "https://"),
		closeFns:  []func(){tlsSrv.Close, plainSrv.Close},
	}
	return platform, e
}

func dialBoth(e *edgeServers) func(ctx context.Context, network, addr string) (net.Conn, error) {
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		if strings.HasSuffix(addr, ":443") {
			return d.DialContext(ctx, network, e.tlsAddr)
		}
		return d.DialContext(ctx, network, e.plainAddr)
	}
}

// Ablation: LSH-bucketed clustering vs the exact O(n²) agglomerative path.
func BenchmarkClusteringLSH(b *testing.B) {
	docs := clusterCorpus(300)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(content.ClusterDocsLSH(docs, 0.1)) == 0 {
			b.Fatal("no clusters")
		}
	}
}
