// Package divecloud is the public API of this reproduction of "Dive into
// the Cloud: Unveiling the (Ab)Usage of Serverless Cloud Function in the
// Wild" (IMC 2025).
//
// The library bundles the paper's measurement pipeline — serverless function
// identification from passive DNS, usage analysis, ethical active probing,
// content clustering, abuse classification, and threat-intelligence gap
// assessment — together with the synthetic substrates (a calibrated
// two-year PDNS workload, a DNS resolution simulator, and a multi-provider
// FaaS platform served over real HTTP) that stand in for the study's gated
// inputs.
//
// Quick start:
//
//	res, err := divecloud.Run(divecloud.Config{Seed: 1, Scale: 0.01})
//	if err != nil { ... }
//	fmt.Println(res.RenderSummary())
//	fmt.Println(res.RenderTable3())
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package divecloud

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dnssim"
	"repro/internal/faas"
	"repro/internal/pdns"
	"repro/internal/posture"
	"repro/internal/providers"
	"repro/internal/workload"
)

// Config parameterises a full pipeline run. The zero value runs at 1% of
// the paper's population with sane timeouts.
type Config = core.Config

// Results carries every artifact of a run; its Render* methods print the
// paper's tables and figures.
type Results = core.Results

// Run executes the end-to-end pipeline: generate the calibrated fleet,
// stream and aggregate its PDNS history, probe every eligible function over
// HTTP(S), sanitise and cluster the responses, classify abuse, sweep for C2
// relays, and assess threat-intelligence coverage.
func Run(cfg Config) (*Results, error) { return core.Run(cfg) }

// RenderTable1 prints the static URL-format registry (Table 1).
func RenderTable1() string { return core.RenderTable1() }

// Provider re-exports the provider registry entry type.
type Provider = providers.Info

// Providers returns the ten registered function-URL formats in Table 1
// order (nine providers; Google ships two generations).
func Providers() []*Provider { return providers.All() }

// IdentifyFQDN classifies a domain name against the provider patterns,
// reporting the owning provider when it is a serverless function domain.
func IdentifyFQDN(fqdn string) (*Provider, bool) {
	return defaultMatcher.Identify(fqdn)
}

var defaultMatcher = providers.NewMatcher(nil)

// Record is one passive-DNS observation tuple (paper §3.2).
type Record = pdns.Record

// GeneratePDNS streams the synthetic two-year PDNS dataset for the given
// seed and scale to sink, in deterministic order. Use this to export a
// dataset for external tooling; Run regenerates it internally.
func GeneratePDNS(seed int64, scale float64, sink func(*Record) error) error {
	pop := workload.Generate(workload.Config{Seed: seed, Scale: scale})
	return workload.EmitPDNS(pop, dnssim.NewResolver(), sink)
}

// Window returns the study's measurement window (April 2022 – March 2024).
func Window() (start, end string) {
	w := workload.Window()
	return w.Start.String(), w.End.String()
}

// AuditProviders runs the management-posture audit of the paper's §6
// recommendations over all nine providers and returns the findings rendered
// as text.
func AuditProviders() string {
	return posture.Render(posture.AuditAll())
}

// DoWParams re-exports the Denial-of-Wallet attack parameters (Finding 5).
type DoWParams = faas.DoWParams

// DoWEstimate re-exports the projected outcome.
type DoWEstimate = faas.DoWEstimate

// EstimateDoW projects the cost a publicly accessible function owner bears
// under a sustained unauthorised request flood, using the provider's
// published price model.
func EstimateDoW(provider string, p DoWParams) (DoWEstimate, error) {
	in, ok := providers.ByName(provider)
	if !ok {
		return DoWEstimate{}, fmt.Errorf("divecloud: unknown provider %q", provider)
	}
	return faas.EstimateDoW(faas.PriceFor(in.ID), p)
}
