package divecloud

import (
	"testing"
)

func TestFacadeProviders(t *testing.T) {
	ps := Providers()
	if len(ps) != 10 {
		t.Fatalf("Providers() = %d formats, want 10", len(ps))
	}
	in, ok := IdentifyFQDN("h2ag4fmzrlwqify7rz2jak4mhi3lmytz.lambda-url.us-east-1.on.aws")
	if !ok || in.Name != "AWS" {
		t.Errorf("IdentifyFQDN = %v, %v", in, ok)
	}
	if _, ok := IdentifyFQDN("www.example.com"); ok {
		t.Error("non-function domain identified")
	}
}

func TestFacadeWindow(t *testing.T) {
	start, end := Window()
	if start != "2022-04-01" || end != "2024-03-31" {
		t.Errorf("window = %s .. %s", start, end)
	}
}

func TestFacadeGeneratePDNS(t *testing.T) {
	n := 0
	var first Record
	err := GeneratePDNS(3, 0.0005, func(r *Record) error {
		if n == 0 {
			first = *r
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no records generated")
	}
	if _, ok := IdentifyFQDN(first.FQDN); !ok {
		t.Errorf("generated record FQDN %q is not a function domain", first.FQDN)
	}
	// Determinism.
	n2 := 0
	GeneratePDNS(3, 0.0005, func(r *Record) error { n2++; return nil })
	if n2 != n {
		t.Errorf("regeneration produced %d records, want %d", n2, n)
	}
}

func TestFacadeAudit(t *testing.T) {
	out := AuditProviders()
	if len(out) < 100 {
		t.Fatalf("audit output too short:\n%s", out)
	}
}

func TestFacadeDoW(t *testing.T) {
	est, err := EstimateDoW("AWS", DoWParams{RequestsPerSecond: 100, Duration: 3600e9})
	if err != nil {
		t.Fatal(err)
	}
	if est.Invocations != 360_000 {
		t.Errorf("invocations = %d", est.Invocations)
	}
	if _, err := EstimateDoW("nosuch", DoWParams{RequestsPerSecond: 1, Duration: 1e9}); err == nil {
		t.Error("unknown provider accepted")
	}
}
