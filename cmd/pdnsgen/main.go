// Command pdnsgen generates the calibrated synthetic passive-DNS dataset
// and writes it as TSV or JSONL, one record per line (schema of paper §3.2:
// fqdn, rtype, rdata, first_seen, last_seen, request_cnt, pdate).
//
// Usage:
//
//	pdnsgen -seed 1 -scale 0.01 -format tsv -o pdns.tsv
//	pdnsgen -scale 0.001 -chaos heavy -o dirty.tsv   # corrupted feed
//
// With -chaos a deterministic fraction of the emitted lines is mangled
// (truncated mid-record, wrong column count, binary garbage) the way a real
// feed transfer degrades, producing datasets that exercise a reader's
// quarantine path. The corruption schedule depends only on the chaos seed
// and the line contents, so the dirty dataset is as reproducible as the
// clean one.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/dnssim"
	"repro/internal/fault"
	"repro/internal/pdns"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pdnsgen: ")
	var (
		seed    = flag.Int64("seed", 1, "generator seed (equal seeds give identical datasets)")
		scale   = flag.Float64("scale", 0.01, "fraction of the paper's 531k-domain population")
		format  = flag.String("format", "tsv", "output format: tsv or jsonl")
		out     = flag.String("o", "-", "output file (- for stdout)")
		cache   = flag.Bool("cache-model", false, "model resolver caching (request_cnt becomes a lower bound)")
		fleet   = flag.String("fleet", "", "also write the ground-truth fleet spec (JSONL) to this file")
		workers = flag.Int("workers", 0, "generation worker pool (0 = GOMAXPROCS; output is byte-identical for every value)")
		chaos   = flag.String("chaos", "", "corrupt a deterministic fraction of output lines: none, light, or heavy, optionally ,seed=N")
	)
	flag.Parse()

	var chaosProf fault.Profile
	if *chaos != "" {
		var err error
		if chaosProf, err = fault.ParseProfile(*chaos); err != nil {
			log.Fatal(err)
		}
		chaosProf = chaosProf.WithSeed(*seed)
	}

	var f pdns.Format
	switch *format {
	case "tsv":
		f = pdns.TSV
	case "jsonl":
		f = pdns.JSONL
	default:
		log.Fatalf("unknown format %q (want tsv or jsonl)", *format)
	}

	w := os.Stdout
	if *out != "-" {
		file, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer file.Close()
		w = file
	}

	pop := workload.Generate(workload.Config{Seed: *seed, Scale: *scale, CacheModel: *cache, Workers: *workers})
	if *fleet != "" {
		ff, err := os.Create(*fleet)
		if err != nil {
			log.Fatal(err)
		}
		if err := workload.WritePopulation(ff, pop); err != nil {
			log.Fatal(err)
		}
		if err := ff.Close(); err != nil {
			log.Fatal(err)
		}
	}
	var sink io.Writer = w
	var corrupter *fault.CorruptingWriter
	if chaosProf.FeedCorrupt > 0 {
		corrupter = fault.NewCorruptingWriter(w, fault.New(chaosProf))
		sink = corrupter
	}
	writer := pdns.NewWriter(sink, f)
	resolver := dnssim.NewResolver()
	// Serial generation streams through a columnar batch — same bytes as
	// per-record writes, without the per-line encoding allocations. The
	// multi-worker path needs records in population order, so it keeps the
	// ordered scalar fan-out.
	if *workers == 1 {
		batch := pdns.NewRecordBatch(pdns.DefaultBatchRows)
		flush := func(b *pdns.RecordBatch) error {
			if err := writer.WriteBatch(b); err != nil {
				return err
			}
			b.Reset()
			return nil
		}
		err := workload.EmitPDNS(pop, resolver, func(r *pdns.Record) error {
			batch.AppendRecord(r)
			if batch.Len() >= pdns.DefaultBatchRows {
				return flush(batch)
			}
			return nil
		})
		if err == nil && batch.Len() > 0 {
			err = flush(batch)
		}
		if err != nil {
			log.Fatal(err)
		}
	} else if err := workload.EmitPDNSOrdered(pop, resolver, *workers, writer.Write); err != nil {
		log.Fatal(err)
	}
	if err := writer.Flush(); err != nil {
		log.Fatal(err)
	}
	if corrupter != nil {
		if err := corrupter.Flush(); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "pdnsgen: corrupted %d lines (chaos %s)\n", corrupter.Corrupted(), chaosProf.String())
	}
	fmt.Fprintf(os.Stderr, "pdnsgen: %d functions, %d records\n", len(pop.Functions), writer.Count())
}
