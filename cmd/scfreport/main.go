// Command scfreport runs the pipeline and renders one selected artifact —
// a table or a figure of the paper's evaluation — instead of the full dump.
//
// Usage:
//
//	scfreport -table 1            # static URL-format registry, no run
//	scfreport -table 2 -scale 0.02
//	scfreport -figure 7 -seed 3
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scfreport: ")
	var (
		table   = flag.Int("table", 0, "render table N (1-3)")
		figure  = flag.Int("figure", 0, "render figure N (3-7)")
		seed    = flag.Int64("seed", 1, "substrate seed")
		scale   = flag.Float64("scale", 0.01, "fraction of the paper's population")
		skipC2  = flag.Bool("skip-c2", false, "skip the C2 fingerprint sweep")
		timeout = flag.Duration("probe-timeout", 2*time.Second, "per-request probe timeout")
	)
	flag.Parse()

	if *table == 0 && *figure == 0 {
		log.Fatal("pass -table N or -figure N")
	}
	if *table == 1 {
		fmt.Println(core.RenderTable1())
		return
	}
	// Table 3 and the figures need only content classification; the C2
	// sweep matters solely for the C2 row of Table 3.
	skip := *skipC2
	if *figure != 0 || *table == 2 {
		skip = true
	}
	res, err := core.Run(core.Config{
		Seed: *seed, Scale: *scale, SkipC2Scan: skip, ProbeTimeout: *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case *table == 2:
		fmt.Println(res.RenderTable2())
	case *table == 3:
		fmt.Println(res.RenderTable3())
	case *figure == 3:
		fmt.Println(res.RenderFigure3())
	case *figure == 4:
		fmt.Println(res.RenderFigure4())
	case *figure == 5:
		fmt.Println(res.RenderFigure5())
	case *figure == 6:
		fmt.Println(res.RenderFigure6())
	case *figure == 7:
		fmt.Println(res.RenderFigure7())
	default:
		log.Fatalf("no such artifact: table %d / figure %d", *table, *figure)
	}
}
