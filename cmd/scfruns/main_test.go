package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/timeline"
	"repro/internal/runs"
)

// benchText is a minimal 'go test -bench' transcript cmdBench can parse.
const benchText = `goos: linux
goarch: amd64
pkg: repro/internal/analysis
cpu: Test CPU
BenchmarkTable2Resolution-8   	     100	  10000 ns/op	    2048 B/op	      12 allocs/op
BenchmarkTable2Resolution-8   	     100	  10200 ns/op	    2048 B/op	      12 allocs/op
PASS
`

func TestRunDispatchExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"no subcommand", nil, 2},
		{"unknown subcommand", []string{"frobnicate"}, 2},
		{"help", []string{"help"}, 0},
		{"help flag", []string{"-h"}, 0},
		{"subcommand help flag", []string{"gate", "-h"}, 0},
		{"gate nothing to gate", []string{"gate"}, 2},
		{"gate bad err-tol", []string{"gate", "-err-tol", "banana"}, 2},
		{"gate bench flags unpaired", []string{"gate", "-bench-base", "x.json"}, 2},
		{"gate candidate without baseline", []string{"gate", "some-run"}, 2},
		{"gate matrix-new without matrix-base", []string{"gate", "-matrix-new", "x"}, 2},
		{"show no args", []string{"show"}, 2},
		{"show unknown run", []string{"show", "-dir", t.TempDir(), "r-nope"}, 1},
		{"diff wrong arity", []string{"diff", "only-one"}, 2},
		{"matrix bad cell spec", []string{"matrix", "-cells", "shards=4"}, 1},
		{"matrix positional args", []string{"matrix", "stray"}, 2},
		{"report empty root ok", []string{"report", "-dir", t.TempDir()}, 0},
		{"bench missing input", []string{"bench", "-i", "no-such-file.txt"}, 1},
	} {
		if got := run(tc.args); got != tc.want {
			t.Errorf("%s: run(%v) = %d, want %d", tc.name, tc.args, got, tc.want)
		}
	}
}

func TestRunBenchHistoryAppend(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(benchText), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "bench.json")
	hist := filepath.Join(dir, runs.HistoryFile)
	if got := run([]string{"bench", "-i", in, "-o", out, "-history", hist, "-label", "pr-7"}); got != 0 {
		t.Fatalf("bench exit %d", got)
	}
	set, err := readBenchFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Results) != 2 || set.Results[0].Base != "BenchmarkTable2Resolution" {
		t.Fatalf("bench JSON wrong: %+v", set.Results)
	}
	entries, err := runs.ReadHistory(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Label != "pr-7" {
		t.Fatalf("history wrong: %+v", entries)
	}
	if ns := entries[0].Bench["BenchmarkTable2Resolution"].NsPerOp; ns != 10100 {
		t.Fatalf("history mean ns/op: want 10100, got %v", ns)
	}
}

// matrixCell writes one minimal cell archive so gate/report paths can be
// exercised without running the pipeline.
func matrixCell(t *testing.T, root string, c runs.Cell, identifyWallNS int64) {
	t.Helper()
	arch := &runs.Archive{
		Summary: runs.Summary{
			Tool: "test",
			Meta: map[string]string{"chaos": c.Chaos, "cell": c.ID()},
		},
		Timings: runs.Timings{
			ElapsedNS: identifyWallNS * 2,
			Stages:    []obs.StageTiming{{Path: "identify", WallNS: identifyWallNS, CPUNS: identifyWallNS}},
			Resources: []obs.ResourceStats{{Stage: "identify", Samples: 2, MaxHeapInuseBytes: 1 << 20, MaxGoroutines: 4}},
		},
	}
	if err := runs.WriteDir(filepath.Join(root, runs.MatrixDir, c.ID()), arch); err != nil {
		t.Fatal(err)
	}
}

func TestRunGateMatrixExitCodes(t *testing.T) {
	baseRoot, candRoot := t.TempDir(), t.TempDir()
	cell := runs.Cell{Scale: 0.01, Workers: 1, Chaos: "none"}
	matrixCell(t, baseRoot, cell, 1e9)
	matrixCell(t, candRoot, cell, 1e9)
	if got := run([]string{"gate", "-quiet", "-matrix-base", baseRoot, "-matrix-new", candRoot}); got != 0 {
		t.Fatalf("flat matrix must gate clean, exit %d", got)
	}
	// Regress the candidate cell 4x: the per-cell gate must fail (exit 1).
	matrixCell(t, candRoot, cell, 4e9)
	if got := run([]string{"gate", "-quiet", "-matrix-base", baseRoot, "-matrix-new", candRoot}); got != 1 {
		t.Fatalf("regressed matrix cell must exit 1, got %d", got)
	}
}

func TestRunReportDeterministic(t *testing.T) {
	root := t.TempDir()
	matrixCell(t, root, runs.Cell{Scale: 0.01, Workers: 1, Chaos: "none"}, 1e9)
	matrixCell(t, root, runs.Cell{Scale: 0.01, Workers: 8, Chaos: "heavy"}, 2e9)
	out1 := filepath.Join(t.TempDir(), "r1.md")
	out2 := filepath.Join(t.TempDir(), "r2.md")
	if got := run([]string{"report", "-dir", root, "-o", out1}); got != 0 {
		t.Fatalf("report exit %d", got)
	}
	if got := run([]string{"report", "-dir", root, "-o", out2}); got != 0 {
		t.Fatalf("report exit %d", got)
	}
	a, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("report must be byte-identical across runs on identical archives")
	}
	if !strings.Contains(string(a), "s0.01-w8-cheavy") || !strings.Contains(string(a), "## Resource high-water marks") {
		t.Fatalf("report missing expected sections:\n%s", a)
	}
}

// timelineArchive writes one archive whose timeline.jsonl holds the given
// windows, returning its directory (usable as a run argument directly).
func timelineArchive(t *testing.T, root, id string, ws []timeline.Window) string {
	t.Helper()
	arch := &runs.Archive{
		Summary:  runs.Summary{Tool: "test", Meta: map[string]string{"seed": "1", "id": id}},
		Timings:  runs.Timings{CreatedAt: "2026-01-01T00:00:00Z", ElapsedNS: 1e9},
		Timeline: ws,
	}
	dir := filepath.Join(root, id)
	if err := runs.WriteDir(dir, arch); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunTimelineRenderDeterministic(t *testing.T) {
	root := t.TempDir()
	ws := []timeline.Window{
		{Index: 0, StartUS: 0, EndUS: 250000, Stage: "probe", Stages: []string{"identify", "probe"},
			Counters:  map[string]int64{"pdns_records_total": 120, "probe_requests_total": 40},
			Hists:     map[string]timeline.HistWindow{"probe_request_seconds": {Count: 40, P50: 0.01, P90: 0.04, P99: 0.09}},
			Resources: &obs.ResourcePeaks{HeapInuseBytes: 3 << 20, Goroutines: 12}},
		{Index: 1, StartUS: 250000, EndUS: 500000, Stage: "probe", Stages: []string{"probe"},
			Counters:  map[string]int64{"probe_requests_total": 55},
			Anomalies: []timeline.Anomaly{{Series: "fault_resets_injected_total", Kind: "activation", Value: 6}},
			Breaches:  []timeline.Breach{{Rule: "probe_error_rate", Group: "aws", Value: 0.41, Max: 0.25}}},
	}
	dir := timelineArchive(t, root, "r-timeline-test", ws)

	// Acceptance criterion: five renders of the same archive, identical bytes.
	var first string
	for i := 0; i < 5; i++ {
		out := filepath.Join(t.TempDir(), "tl.md")
		if got := run([]string{"timeline", "-o", out, dir}); got != 0 {
			t.Fatalf("render %d exit %d", i, got)
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = string(b)
			continue
		}
		if string(b) != first {
			t.Fatalf("render %d differs from render 0", i)
		}
	}
	for _, want := range []string{
		"2 windows covering 0.50s",
		"fault_resets_injected_total",
		"activation",
		"probe_error_rate/aws",
		"identify→probe",
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("rendered timeline missing %q:\n%s", want, first)
		}
	}

	// -diff against a clean run localizes the divergence at window 1.
	clean := timelineArchive(t, root, "r-timeline-clean", []timeline.Window{
		{Index: 0, StartUS: 0, EndUS: 250000, Stage: "probe"},
		{Index: 1, StartUS: 250000, EndUS: 500000, Stage: "probe"},
	})
	out := filepath.Join(t.TempDir(), "diff.md")
	if got := run([]string{"timeline", "-diff", "-o", out, dir, clean}); got != 0 {
		t.Fatalf("diff exit %d", got)
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "Divergence begins at window 1") {
		t.Fatalf("diff missing divergence callout:\n%s", b)
	}

	// list surfaces the anomaly count; archives without a timeline show "-".
	matrixCell(t, root, runs.Cell{Scale: 0.01, Workers: 1, Chaos: "none"}, 1e9)
	listOut := captureStdout(t, func() {
		if got := run([]string{"list", "-dir", root}); got != 0 {
			t.Fatalf("list exit %d", got)
		}
	})
	if !strings.Contains(listOut, "Anom") {
		t.Fatalf("list missing Anom column:\n%s", listOut)
	}
}

func TestRunTimelineExitCodes(t *testing.T) {
	empty := timelineArchive(t, t.TempDir(), "r-no-timeline", nil)
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"no args", []string{"timeline"}, 2},
		{"diff wrong arity", []string{"timeline", "-diff", "only-one"}, 2},
		{"json with diff", []string{"timeline", "-diff", "-json", empty, empty}, 2},
		{"unknown run", []string{"timeline", "-dir", t.TempDir(), "r-nope"}, 1},
		{"no timeline recorded still renders", []string{"timeline", "-o", filepath.Join(t.TempDir(), "o.md"), empty}, 0},
		{"json of empty timeline", []string{"timeline", "-json", "-o", filepath.Join(t.TempDir(), "o.json"), empty}, 0},
	} {
		if got := run(tc.args); got != tc.want {
			t.Errorf("%s: run(%v) = %d, want %d", tc.name, tc.args, got, tc.want)
		}
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns what
// it printed.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
