package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/runs"
)

// benchText is a minimal 'go test -bench' transcript cmdBench can parse.
const benchText = `goos: linux
goarch: amd64
pkg: repro/internal/analysis
cpu: Test CPU
BenchmarkTable2Resolution-8   	     100	  10000 ns/op	    2048 B/op	      12 allocs/op
BenchmarkTable2Resolution-8   	     100	  10200 ns/op	    2048 B/op	      12 allocs/op
PASS
`

func TestRunDispatchExitCodes(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want int
	}{
		{"no subcommand", nil, 2},
		{"unknown subcommand", []string{"frobnicate"}, 2},
		{"help", []string{"help"}, 0},
		{"help flag", []string{"-h"}, 0},
		{"subcommand help flag", []string{"gate", "-h"}, 0},
		{"gate nothing to gate", []string{"gate"}, 2},
		{"gate bad err-tol", []string{"gate", "-err-tol", "banana"}, 2},
		{"gate bench flags unpaired", []string{"gate", "-bench-base", "x.json"}, 2},
		{"gate candidate without baseline", []string{"gate", "some-run"}, 2},
		{"gate matrix-new without matrix-base", []string{"gate", "-matrix-new", "x"}, 2},
		{"show no args", []string{"show"}, 2},
		{"show unknown run", []string{"show", "-dir", t.TempDir(), "r-nope"}, 1},
		{"diff wrong arity", []string{"diff", "only-one"}, 2},
		{"matrix bad cell spec", []string{"matrix", "-cells", "shards=4"}, 1},
		{"matrix positional args", []string{"matrix", "stray"}, 2},
		{"report empty root ok", []string{"report", "-dir", t.TempDir()}, 0},
		{"bench missing input", []string{"bench", "-i", "no-such-file.txt"}, 1},
	} {
		if got := run(tc.args); got != tc.want {
			t.Errorf("%s: run(%v) = %d, want %d", tc.name, tc.args, got, tc.want)
		}
	}
}

func TestRunBenchHistoryAppend(t *testing.T) {
	dir := t.TempDir()
	in := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(in, []byte(benchText), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "bench.json")
	hist := filepath.Join(dir, runs.HistoryFile)
	if got := run([]string{"bench", "-i", in, "-o", out, "-history", hist, "-label", "pr-7"}); got != 0 {
		t.Fatalf("bench exit %d", got)
	}
	set, err := readBenchFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Results) != 2 || set.Results[0].Base != "BenchmarkTable2Resolution" {
		t.Fatalf("bench JSON wrong: %+v", set.Results)
	}
	entries, err := runs.ReadHistory(hist)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Label != "pr-7" {
		t.Fatalf("history wrong: %+v", entries)
	}
	if ns := entries[0].Bench["BenchmarkTable2Resolution"].NsPerOp; ns != 10100 {
		t.Fatalf("history mean ns/op: want 10100, got %v", ns)
	}
}

// matrixCell writes one minimal cell archive so gate/report paths can be
// exercised without running the pipeline.
func matrixCell(t *testing.T, root string, c runs.Cell, identifyWallNS int64) {
	t.Helper()
	arch := &runs.Archive{
		Summary: runs.Summary{
			Tool: "test",
			Meta: map[string]string{"chaos": c.Chaos, "cell": c.ID()},
		},
		Timings: runs.Timings{
			ElapsedNS: identifyWallNS * 2,
			Stages:    []obs.StageTiming{{Path: "identify", WallNS: identifyWallNS, CPUNS: identifyWallNS}},
			Resources: []obs.ResourceStats{{Stage: "identify", Samples: 2, MaxHeapInuseBytes: 1 << 20, MaxGoroutines: 4}},
		},
	}
	if err := runs.WriteDir(filepath.Join(root, runs.MatrixDir, c.ID()), arch); err != nil {
		t.Fatal(err)
	}
}

func TestRunGateMatrixExitCodes(t *testing.T) {
	baseRoot, candRoot := t.TempDir(), t.TempDir()
	cell := runs.Cell{Scale: 0.01, Workers: 1, Chaos: "none"}
	matrixCell(t, baseRoot, cell, 1e9)
	matrixCell(t, candRoot, cell, 1e9)
	if got := run([]string{"gate", "-quiet", "-matrix-base", baseRoot, "-matrix-new", candRoot}); got != 0 {
		t.Fatalf("flat matrix must gate clean, exit %d", got)
	}
	// Regress the candidate cell 4x: the per-cell gate must fail (exit 1).
	matrixCell(t, candRoot, cell, 4e9)
	if got := run([]string{"gate", "-quiet", "-matrix-base", baseRoot, "-matrix-new", candRoot}); got != 1 {
		t.Fatalf("regressed matrix cell must exit 1, got %d", got)
	}
}

func TestRunReportDeterministic(t *testing.T) {
	root := t.TempDir()
	matrixCell(t, root, runs.Cell{Scale: 0.01, Workers: 1, Chaos: "none"}, 1e9)
	matrixCell(t, root, runs.Cell{Scale: 0.01, Workers: 8, Chaos: "heavy"}, 2e9)
	out1 := filepath.Join(t.TempDir(), "r1.md")
	out2 := filepath.Join(t.TempDir(), "r2.md")
	if got := run([]string{"report", "-dir", root, "-o", out1}); got != 0 {
		t.Fatalf("report exit %d", got)
	}
	if got := run([]string{"report", "-dir", root, "-o", out2}); got != 0 {
		t.Fatalf("report exit %d", got)
	}
	a, err := os.ReadFile(out1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("report must be byte-identical across runs on identical archives")
	}
	if !strings.Contains(string(a), "s0.01-w8-cheavy") || !strings.Contains(string(a), "## Resource high-water marks") {
		t.Fatalf("report missing expected sections:\n%s", a)
	}
}
