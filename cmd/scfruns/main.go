// Command scfruns audits the pipeline's run-history archives. Every scfpipe
// run archives itself under .runs/<run-id>/ (summary, calibration shares,
// stage timings, manifest, event log, Chrome trace, artifact fingerprints);
// scfruns reads those archives back, compares them, and turns the
// comparison into a CI verdict.
//
// Usage:
//
//	scfruns list                          # archives under -dir, newest first
//	scfruns show r-1a2b3c4d5e6f           # one run in full
//	scfruns diff r-aaaa r-bbbb            # every dimension, side by side
//	scfruns diff -json r-aaaa r-bbbb      # the same, machine-readable
//	scfruns gate -baseline internal/runs/testdata/golden
//	scfruns gate -baseline old/ new/ -wall-tol 3
//	scfruns gate -matrix-base old/ -matrix-new .runs
//	scfruns bench -i BENCH.txt -o BENCH.json
//	scfruns bench -i BENCH.txt -history BENCH_history.jsonl -label pr-7
//	scfruns matrix -cells 'scale=0.01;workers=1,8;chaos=none,heavy'
//	scfruns report -bench BENCH_pipeline.json -history BENCH_history.jsonl
//	scfruns prof show r-1a2b3c4d5e6f        # hotspots + stage attribution
//	scfruns prof diff -baseline r-aaaa r-bbbb
//	scfruns timeline r-1a2b3c4d5e6f         # windowed telemetry + anomalies
//	scfruns timeline -diff r-aaaa r-bbbb    # when did behaviour diverge?
//
// A run argument is either a directory containing summary.json or a run ID
// resolved under -dir (default .runs, or $SCF_RUN_DIR). gate diffs the
// candidate (default: the baseline's run ID under -dir, since identical
// configs share an ID) against the baseline and exits 1 on any thresholded
// regression: stage wall time past ratio+floor, histogram p99 drift,
// per-provider probe error-rate growth or p99 drift (from the labeled
// metric vectors the timings snapshot carries), new/grown degradations,
// deterministic-artifact fingerprint changes, or calibration shares leaving
// the paper's acceptance bands. With -matrix-base it additionally gates
// every scenario-matrix cell of the candidate root against the same cell of
// the baseline root, so a regression confined to one corner of the grid
// (say heavy-chaos workers-8) still fails the gate.
//
// matrix executes the {scale}×{workers}×{chaos} scenario sweep through the
// full pipeline, archiving each cell under <dir>/matrix/<cell-id>/ with the
// resource sampler enabled; report renders the matrix, bench deltas, and
// the committed perf trajectory into one deterministic Markdown artifact —
// two renders over identical archives are byte-identical. bench converts
// `go test -bench` text into the structured JSON BENCH_pipeline.json holds
// (appending a trajectory record with -history), and gate's
// -bench-base/-bench-new compare two such files on both mean ns/op
// (-bench-tol) and mean allocs/op (-allocs-tol, a plain ratio ceiling,
// default 1.10x) so an allocation regression fails the gate even when
// wall-clock time hides it.
//
// prof reads the pprof profiles a `scfpipe -profile` run archived under
// profiles/: show renders deterministic per-function hotspot tables and the
// stage/shard label attribution of the CPU profile; diff renders the
// per-function flat-share drift between two runs, refusing to compare when
// either side holds fewer samples than -min-samples. Profile drift is also
// printed by gate as an advisory section when both sides are profiled, but
// it never fails the gate: profile contents are machine-varying.
//
// Exit codes: 0 success, 1 runtime error or gate violation, 2 usage error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/obs/timeline"
	"repro/internal/prof"
	"repro/internal/report"
	"repro/internal/runs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// errUsage marks a flag-parse failure whose message the flag package already
// printed; usageError carries a message run() still has to print. Both exit 2.
var errUsage = errors.New("usage")

type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// errGateFailed marks a gate verdict whose violation list cmdGate already
// printed; run() maps it to exit 1 without re-logging.
var errGateFailed = errors.New("gate failed")

// run dispatches one subcommand and returns the process exit code. It is the
// whole of main so the dispatch table, flag parsing, and exit-code contract
// are testable in-process.
func run(args []string) int {
	log.SetFlags(0)
	log.SetPrefix("scfruns: ")
	if len(args) < 1 {
		usage()
		return 2
	}
	var err error
	switch args[0] {
	case "list":
		err = cmdList(args[1:])
	case "show":
		err = cmdShow(args[1:])
	case "diff":
		err = cmdDiff(args[1:])
	case "gate":
		err = cmdGate(args[1:])
	case "bench":
		err = cmdBench(args[1:])
	case "matrix":
		err = cmdMatrix(args[1:])
	case "report":
		err = cmdReport(args[1:])
	case "prof":
		err = cmdProf(args[1:])
	case "timeline":
		err = cmdTimeline(args[1:])
	case "-h", "-help", "--help", "help":
		usage()
		return 0
	default:
		log.Printf("unknown subcommand %q", args[0])
		usage()
		return 2
	}
	var ue usageError
	switch {
	case err == nil:
		return 0
	case errors.Is(err, flag.ErrHelp):
		return 0
	case errors.Is(err, errUsage):
		return 2
	case errors.As(err, &ue):
		log.Print(ue.msg)
		return 2
	case errors.Is(err, errGateFailed):
		return 1
	default:
		log.Print(err)
		return 1
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: scfruns <list|show|diff|gate|bench|matrix|report|prof|timeline> [flags] [args]

  list                     list archived runs under -dir, newest first
  show <run>               print one archive: config, stages, calibration
  diff <a> <b>             compare two archives dimension by dimension
  gate -baseline <run> [candidate]
                           diff + thresholds; exit 1 on regression
                           (-matrix-base/-matrix-new gate per matrix cell)
  bench -i in.txt -o out.json
                           parse 'go test -bench' text into structured JSON
                           (-history/-label append a trajectory record)
  matrix -cells <spec>     run the scenario sweep; one archive per cell
                           under <dir>/matrix/<cell-id>/
  report                   render the matrix + bench + trajectory report
                           as deterministic Markdown
  prof show <run>          render hotspot + label-attribution tables from a
                           run's archived pprof profiles
  prof diff -baseline <run> <candidate>
                           per-function CPU flat% drift between two runs
  timeline <run>           render a run's windowed-telemetry timeline as a
                           deterministic Markdown table with anomaly callouts
                           (-json for raw windows, -o to write a file)
  timeline -diff <a> <b>   align two timelines window-by-window and localize
                           when their behaviour diverged

run arguments are directories holding summary.json, or run IDs under -dir
(default .runs, or $SCF_RUN_DIR). See 'scfruns <cmd> -h' for flags.`)
}

// parse wraps FlagSet.Parse, translating failures into the exit-2 sentinel
// while letting -h keep its exit-0 contract.
func parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return flag.ErrHelp
		}
		return errUsage
	}
	return nil
}

// dirFlag registers the shared -dir flag on a subcommand's flag set.
func dirFlag(fs *flag.FlagSet) *string {
	def := os.Getenv("SCF_RUN_DIR")
	if def == "" {
		def = ".runs"
	}
	return fs.String("dir", def, "run archive root (default: $SCF_RUN_DIR or .runs)")
}

// resolve turns a run argument into an archive directory: a path that holds
// summary.json wins, otherwise the argument is a run ID under root.
func resolve(root, arg string) (string, error) {
	if _, err := os.Stat(filepath.Join(arg, runs.SummaryFile)); err == nil {
		return arg, nil
	}
	dir := filepath.Join(root, arg)
	if _, err := os.Stat(filepath.Join(dir, runs.SummaryFile)); err == nil {
		return dir, nil
	}
	return "", fmt.Errorf("no run archive at %s or %s (need %s)", arg, dir, runs.SummaryFile)
}

// resolvePartial is resolve for directories an interrupted run left behind:
// no summary.json, but provenance debris (manifest, events, checkpoints)
// worth showing. It only accepts directories that hold at least one such file
// so a typo'd run ID still errors instead of "showing" an empty dir.
func resolvePartial(root, arg string) (string, error) {
	for _, dir := range []string{arg, filepath.Join(root, arg)} {
		for _, name := range []string{runs.ManifestFile, runs.EventsFile, runs.TimingsFile, runs.CheckpointsDir} {
			if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
				return dir, nil
			}
		}
	}
	return "", fmt.Errorf("no run archive at %s or %s (need %s)", arg, filepath.Join(root, arg), runs.SummaryFile)
}

func load(root, arg string) (*runs.Record, error) {
	dir, err := resolve(root, arg)
	if err != nil {
		return nil, err
	}
	return runs.Read(dir)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ContinueOnError)
	dir := dirFlag(fs)
	if err := parse(fs, args); err != nil {
		return err
	}
	recs, warns, err := runs.ListWarn(*dir)
	if err != nil {
		return err
	}
	for _, w := range warns {
		log.Printf("warning: %s", w)
	}
	if len(recs) == 0 {
		fmt.Printf("no runs under %s\n", *dir)
		return nil
	}
	t := report.NewTable("Archived runs ("+*dir+")", "Run", "Tool", "Created", "Elapsed", "Seed", "Scale", "Chaos", "Degr", "Anom", "Cal")
	for _, r := range recs {
		anom := "-"
		if n, ok := runs.TimelineAnomalies(r.Dir); ok {
			anom = fmt.Sprintf("%d", n)
		}
		t.AddRow(r.Summary.ID, r.Summary.Tool, r.Timings.CreatedAt,
			time.Duration(r.Timings.ElapsedNS).Round(time.Millisecond).String(),
			r.Summary.Meta["seed"], r.Summary.Meta["scale"], r.Summary.Meta["chaos"],
			len(r.Summary.Degradations), anom, calVerdict(r.Summary.Calibration))
	}
	fmt.Println(t.String())
	return nil
}

// calVerdict reduces a run's calibration shares to one list-column verdict:
// "ok" when every share with a published paper target sits inside its band,
// "FAIL(n)" counting the shares outside, "-" when nothing is auditable.
func calVerdict(cal map[string]float64) string {
	audited, failed := 0, 0
	for k, v := range cal {
		t, ok := runs.TargetFor(k)
		if !ok {
			continue
		}
		audited++
		if !t.Contains(v) {
			failed++
		}
	}
	switch {
	case audited == 0:
		return "-"
	case failed == 0:
		return "ok"
	default:
		return fmt.Sprintf("FAIL(%d)", failed)
	}
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	dir := dirFlag(fs)
	asJSON := fs.Bool("json", false, "print the raw summary and timings as JSON")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usageError{"show: want exactly one run argument"}
	}
	rec, err := load(*dir, fs.Arg(0))
	if err != nil {
		// An interrupted run leaves provenance (manifest, events,
		// checkpoints) without a summary; show what is readable instead of
		// refusing — the lineage table is exactly what a post-crash
		// investigation needs.
		pdir, perr := resolvePartial(*dir, fs.Arg(0))
		if perr != nil || *asJSON {
			return err
		}
		log.Printf("warning: %s: incomplete or corrupt run archive (%v); showing what is readable", fs.Arg(0), err)
		fmt.Printf("run %s (partial archive at %s)\n\n", filepath.Base(pdir), pdir)
		showCheckpoints(pdir, nil)
		return nil
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec.Summary); err != nil {
			return err
		}
		return enc.Encode(rec.Timings)
	}
	fmt.Printf("run %s (%s) — %s, elapsed %v\n", rec.Summary.ID, rec.Summary.Tool,
		rec.Timings.CreatedAt, time.Duration(rec.Timings.ElapsedNS).Round(time.Millisecond))
	fmt.Printf("config %s\n\n", rec.Summary.ConfigHash[:12])

	mt := report.NewTable("Config", "Key", "Value")
	for _, k := range sortedKeys(rec.Summary.Meta) {
		mt.AddRow(k, rec.Summary.Meta[k])
	}
	fmt.Println(mt.String())

	fmt.Println(report.StageTimingsFlat(rec.Timings.Stages))

	if len(rec.Summary.Calibration) > 0 {
		ct := report.NewTable("Calibration vs paper", "Metric", "Paper", "Measured", "Holds")
		for _, k := range sortedKeys(rec.Summary.Calibration) {
			v := rec.Summary.Calibration[k]
			paper, holds := "-", "-"
			if t, ok := runs.TargetFor(k); ok {
				paper = fmt.Sprintf("%.4f", t.Paper)
				holds = "yes"
				if !t.Contains(v) {
					holds = "**NO**"
				}
			}
			ct.AddRow(k, paper, fmt.Sprintf("%.4f", v), holds)
		}
		fmt.Println(ct.String())
	}

	if len(rec.Summary.Degradations) > 0 {
		dt := report.NewTable("Degradations absorbed", "Stage", "Kind", "Count")
		for _, d := range rec.Summary.Degradations {
			dt.AddRow(d.Stage, d.Kind, d.Count)
		}
		fmt.Println(dt.String())
	}

	if len(rec.Summary.Artifacts) > 0 {
		at := report.NewTable("Artifacts", "File", "SHA-256", "Gated")
		for _, k := range sortedKeys(rec.Summary.Artifacts) {
			gated := ""
			if runs.DeterministicArtifacts[k] {
				gated = "yes"
			}
			at.AddRow(k, rec.Summary.Artifacts[k][:12], gated)
		}
		fmt.Println(at.String())
	}

	if infos, perr := runs.ListProfiles(rec.Dir); perr == nil && len(infos) > 0 {
		fmt.Println(runs.ProfilesLine(infos))
		fmt.Println()
	}

	showCheckpoints(rec.Dir, rec.Timings.Checkpoints)
	return nil
}

// showCheckpoints prints a run's crash-recovery lineage: the summary line
// recorded in timings.json (when present) and one row per on-disk checkpoint
// file, including corrupt ones a resume would skip over.
func showCheckpoints(dir string, ri *runs.RecoveryInfo) {
	if ri != nil {
		line := fmt.Sprintf("Recovery: %d checkpoint(s) written, last seq %d (%s)",
			ri.Checkpoints, ri.LastSeq, ri.LastStage)
		if ri.Resumed {
			line += fmt.Sprintf("; resumed from seq %d (%s)", ri.ResumedFrom, ri.ResumedStage)
		}
		fmt.Println(line)
		fmt.Println()
	}
	infos := checkpoint.Inspect(filepath.Join(dir, runs.CheckpointsDir))
	if len(infos) == 0 {
		return
	}
	t := report.NewTable("Checkpoint lineage", "File", "Seq", "Stage", "Rows", "Stages", "Bytes", "Status")
	for _, fi := range infos {
		status := "ok"
		switch {
		case fi.Err != "":
			status = "CORRUPT: " + fi.Err
		case fi.ResumedFromSeq > 0:
			status = fmt.Sprintf("resumed from seq %d", fi.ResumedFromSeq)
		}
		t.AddRow(fi.Name, fi.Seq, fi.Stage, fi.Rows, fi.Stages, fi.Size, status)
	}
	fmt.Println(t.String())
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ContinueOnError)
	dir := dirFlag(fs)
	asJSON := fs.Bool("json", false, "print the diff report as JSON")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return usageError{"diff: want exactly two run arguments (baseline, candidate)"}
	}
	a, err := load(*dir, fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := load(*dir, fs.Arg(1))
	if err != nil {
		return err
	}
	rep := runs.Diff(a, b)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Println(rep.Render())
	return nil
}

func cmdGate(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ContinueOnError)
	dir := dirFlag(fs)
	def := runs.DefaultGateOptions()
	var (
		baseline   = fs.String("baseline", "", "baseline run (directory or run ID; required unless only benching)")
		wallTol    = fs.Float64("wall-tol", def.WallTol, "stage wall regression tolerance as a ratio above 1 (negative disables)")
		wallFloor  = fs.Duration("wall-floor", def.WallFloor, "minimum absolute wall delta before the ratio check applies")
		p99Tol     = fs.Float64("p99-tol", def.P99Tol, "histogram p99 regression tolerance as a ratio above 1 (negative disables)")
		minSamples = fs.Int64("min-samples", def.MinSamples, "histogram observations required on both sides before p99 gating")
		errTol     = fs.Float64("err-tol", def.ErrRateTol, "per-provider probe error-rate growth tolerance, absolute (negative disables provider gating)")
		noDegr     = fs.Bool("no-degradations", false, "skip degradation-drift gating")
		noArt      = fs.Bool("no-artifacts", false, "skip deterministic-artifact fingerprint gating")
		noCal      = fs.Bool("no-calibration", false, "skip paper-calibration gating")
		benchBase  = fs.String("bench-base", "", "baseline bench JSON (from 'scfruns bench')")
		benchNew   = fs.String("bench-new", "", "candidate bench JSON to gate against -bench-base")
		benchTol   = fs.Float64("bench-tol", 0.5, "mean ns/op regression tolerance as a ratio above 1")
		allocsTol  = fs.Float64("allocs-tol", 1.10, "mean allocs/op regression ceiling as a plain ratio (<= 0 disables)")
		matrixBase = fs.String("matrix-base", "", "baseline archive root whose matrix/ cells gate the candidate's")
		matrixNew  = fs.String("matrix-new", "", "candidate archive root for -matrix-base (default: -dir)")
		quiet      = fs.Bool("quiet", false, "suppress the full diff; print only violations")
	)
	if err := parse(fs, args); err != nil {
		return err
	}

	opts := runs.GateOptions{
		WallTol:      *wallTol,
		WallFloor:    *wallFloor,
		P99Tol:       *p99Tol,
		MinSamples:   *minSamples,
		ErrRateTol:   *errTol,
		Degradations: !*noDegr,
		Artifacts:    !*noArt,
		Calibration:  !*noCal,
	}
	var violations []string

	if *baseline != "" {
		a, err := load(*dir, *baseline)
		if err != nil {
			return err
		}
		// Identical configs share a run ID, so the candidate defaults to the
		// baseline's slot under -dir: "did the same experiment regress?"
		candArg := a.Summary.ID
		if fs.NArg() > 0 {
			candArg = fs.Arg(0)
		}
		b, err := load(*dir, candArg)
		if err != nil {
			return fmt.Errorf("candidate: %w", err)
		}
		rep := runs.Diff(a, b)
		if !*quiet {
			fmt.Println(rep.Render())
			fmt.Println()
		}
		violations = append(violations, rep.Gate(opts)...)
		// Advisory only: profile contents are machine-varying, so hotspot
		// drift informs the verdict's reader but never fails the gate. Most
		// runs (including the golden baseline) are unprofiled; then this
		// prints nothing.
		if adv := profAdvisory(a.Dir, b.Dir); adv != "" {
			fmt.Println(adv)
		}
	} else if fs.NArg() > 0 {
		return usageError{"gate: candidate given without -baseline"}
	}

	if *matrixNew != "" && *matrixBase == "" {
		return usageError{"gate: -matrix-new given without -matrix-base"}
	}
	if *matrixBase != "" {
		candRoot := *matrixNew
		if candRoot == "" {
			candRoot = *dir
		}
		mv, err := runs.GateMatrix(*matrixBase, candRoot, opts)
		if err != nil {
			return err
		}
		violations = append(violations, mv...)
	}

	if (*benchBase == "") != (*benchNew == "") {
		return usageError{"gate: -bench-base and -bench-new must be given together"}
	}
	if *benchBase != "" {
		ba, err := readBenchFile(*benchBase)
		if err != nil {
			return err
		}
		bb, err := readBenchFile(*benchNew)
		if err != nil {
			return err
		}
		if !*quiet {
			fmt.Println(runs.RenderBenchDiff(runs.DiffBench(ba, bb)))
		}
		violations = append(violations, runs.GateBench(ba, bb, *benchTol, *allocsTol)...)
	}

	if *baseline == "" && *benchBase == "" && *matrixBase == "" {
		return usageError{"gate: nothing to gate (need -baseline, -matrix-base, and/or -bench-base/-bench-new)"}
	}

	if len(violations) > 0 {
		fmt.Printf("GATE FAILED: %d violation(s)\n", len(violations))
		for _, v := range violations {
			fmt.Printf("  - %s\n", v)
		}
		return errGateFailed
	}
	fmt.Println("GATE PASSED")
	return nil
}

func readBenchFile(path string) (*runs.BenchSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return runs.ReadBenchJSON(f)
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	in := fs.String("i", "", "bench text input file (default: stdin)")
	out := fs.String("o", "", "JSON output file (default: stdout)")
	history := fs.String("history", "", "append a trajectory record to this JSONL file")
	label := fs.String("label", "", "label for the -history record (e.g. a git revision)")
	if err := parse(fs, args); err != nil {
		return err
	}
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	set, err := runs.ParseBench(r)
	if err != nil {
		return err
	}
	if *history != "" {
		e := runs.HistoryEntryFrom(set, *label, time.Now().UTC().Format(time.RFC3339))
		if err := runs.AppendHistory(*history, e); err != nil {
			return err
		}
		log.Printf("appended %d benchmark means to %s", len(e.Bench), *history)
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return set.WriteJSON(w)
}

func cmdMatrix(args []string) error {
	fs := flag.NewFlagSet("matrix", flag.ContinueOnError)
	dir := dirFlag(fs)
	var (
		cellSpec    = fs.String("cells", runs.DefaultCellSpec, "scenario spec: ';'-separated scale=/workers=/chaos= dimensions, ','-separated values")
		seed        = fs.Int64("seed", 1, "substrate seed shared by every cell")
		skipC2      = fs.Bool("skip-c2", true, "skip the C2 fingerprint sweep in each cell")
		timeout     = fs.Duration("probe-timeout", 2*time.Second, "per-request probe timeout")
		resInterval = fs.Duration("resource-interval", 50*time.Millisecond, "runtime resource sampler interval (0 disables)")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usageError{"matrix: unexpected positional arguments"}
	}
	cells, err := runs.ParseCells(*cellSpec)
	if err != nil {
		return err
	}
	root := filepath.Join(*dir, runs.MatrixDir)
	log.Printf("matrix: %d cell(s) under %s", len(cells), root)
	for _, cell := range cells {
		chaosProf, err := fault.ParseProfile(cell.Chaos)
		if err != nil {
			return err
		}
		// Each cell gets a fresh registry/trace/event log so archives never
		// bleed telemetry into each other.
		reg, tr, elog := obs.NewRegistry(), obs.NewTrace(), obs.NewEventLog()
		ctx := obs.ContextWithEventLog(obs.ContextWithTrace(context.Background(), tr), elog)
		start := time.Now()
		res, err := core.RunContext(ctx, core.Config{
			Seed:             *seed,
			Scale:            cell.Scale,
			Workers:          cell.Workers,
			Chaos:            chaosProf,
			SkipC2Scan:       *skipC2,
			ProbeTimeout:     *timeout,
			Metrics:          reg,
			ResourceInterval: *resInterval,
		})
		if err != nil {
			return fmt.Errorf("matrix: cell %s: %w", cell.ID(), err)
		}
		slot := filepath.Join(root, cell.ID())
		if err := runs.WriteDir(slot, res.BuildArchive("scfruns-matrix", elog)); err != nil {
			return err
		}
		log.Printf("matrix: cell %s done in %v", cell.ID(), time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	dir := dirFlag(fs)
	var (
		baseDir   = fs.String("baseline-dir", "", "baseline archive root whose matrix cells provide the Δ columns")
		bench     = fs.String("bench", "", "current bench JSON (from 'scfruns bench')")
		benchBase = fs.String("bench-base", "", "baseline bench JSON to delta against")
		history   = fs.String("history", "", "perf-trajectory JSONL (BENCH_history.jsonl)")
		profRun   = fs.String("prof", "", "run (directory or ID under -dir) whose CPU profile renders the hotspots section")
		profBase  = fs.String("prof-base", "", "baseline run to drift the -prof run's CPU hotspots against")
		out       = fs.String("o", "", "write the Markdown report here instead of stdout")
	)
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return usageError{"report: unexpected positional arguments"}
	}
	var in runs.PerfReportInput
	var err error
	if in.Cells, err = runs.ListMatrix(*dir); err != nil {
		return err
	}
	if *baseDir != "" {
		baseCells, err := runs.ListMatrix(*baseDir)
		if err != nil {
			return err
		}
		in.Baselines = make(map[string]*runs.Record, len(baseCells))
		for _, rec := range baseCells {
			in.Baselines[filepath.Base(rec.Dir)] = rec
		}
	}
	if *bench != "" {
		if in.Bench, err = readBenchFile(*bench); err != nil {
			return err
		}
	}
	if *benchBase != "" {
		if in.BenchBase, err = readBenchFile(*benchBase); err != nil {
			return err
		}
	}
	if *history != "" {
		if in.History, err = runs.ReadHistory(*history); err != nil {
			return err
		}
	}
	if *profBase != "" && *profRun == "" {
		return usageError{"report: -prof-base given without -prof"}
	}
	if *profRun != "" {
		// Tolerant by design: a report over an unprofiled run renders every
		// other section and just drops the hotspots, so one CI job can cover
		// both profiled and unprofiled pipelines.
		if hot, herr := renderProfHotspots(*dir, *profRun, *profBase); herr != nil {
			log.Printf("warning: %v; omitting the CPU hotspots section", herr)
		} else {
			in.ProfHotspots = hot
		}
	}
	md := runs.RenderPerfReport(in)
	if *out != "" {
		return os.WriteFile(*out, []byte(md), 0o644)
	}
	fmt.Print(md)
	return nil
}

// profDiffMinSamples is the default min-sample floor for profile drift: both
// sides need this much total flat value (nanoseconds for CPU profiles, so
// 100ms of samples) before per-function shares are considered comparable.
// Tiny profiles render as "not comparable" instead of screaming drift.
const profDiffMinSamples = 100_000_000

// cmdProf dispatches the profile sub-subcommands.
func cmdProf(args []string) error {
	if len(args) < 1 {
		return usageError{"prof: want a subcommand (show or diff)"}
	}
	switch args[0] {
	case "show":
		return cmdProfShow(args[1:])
	case "diff":
		return cmdProfDiff(args[1:])
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(os.Stderr, `usage: scfruns prof <show|diff> [flags] [args]

  show [-kind cpu] [-top 20] [-o file] <run>
                           hotspot + label-attribution tables from the run's
                           archived profiles of one kind
  diff -baseline <run> [-kind cpu] [-stage s] [-min-samples n] <candidate>
                           per-function flat-share drift between two runs'
                           profiles (advisory; small profiles never compare)`)
		return nil
	default:
		return usageError{fmt.Sprintf("prof: unknown subcommand %q (want show or diff)", args[0])}
	}
}

func cmdProfShow(args []string) error {
	fs := flag.NewFlagSet("prof show", flag.ContinueOnError)
	dir := dirFlag(fs)
	kind := fs.String("kind", "cpu", "profile kind to render: cpu, heap, allocs, block, or mutex")
	top := fs.Int("top", 20, "functions per hotspot table")
	out := fs.String("o", "", "write the rendering to this file instead of stdout")
	if err := parse(fs, args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return usageError{"prof show: want exactly one run argument"}
	}
	rdir, err := resolve(*dir, fs.Arg(0))
	if err != nil {
		return err
	}
	text, err := renderProfShow(rdir, *kind, *top)
	if err != nil {
		return err
	}
	if *out != "" {
		return os.WriteFile(*out, []byte(text), 0o644)
	}
	fmt.Print(text)
	return nil
}

// renderProfShow renders every archived profile of one kind: a per-function
// hotspot table each, plus (for the CPU profile) the stage and shard label
// attributions. The rendering is a pure function of the archived bytes —
// byte-identical across repeated invocations.
func renderProfShow(rdir, kind string, top int) (string, error) {
	infos, err := runs.ListProfiles(rdir)
	if err != nil {
		return "", err
	}
	if len(infos) == 0 {
		return "", fmt.Errorf("prof: no profiles under %s (re-run the experiment with scfpipe -profile)", filepath.Join(rdir, runs.ProfilesDir))
	}
	var b strings.Builder
	fmt.Fprintf(&b, "run %s — %s\n\n", filepath.Base(rdir), runs.ProfilesLine(infos))
	matched := 0
	for _, info := range infos {
		if info.Kind != kind {
			continue
		}
		matched++
		p, err := readRunProfile(rdir, info.Name)
		if err != nil {
			return "", err
		}
		vi := p.ValueIndex("")
		fmt.Fprintf(&b, "== %s ==\n\n", info.Name)
		b.WriteString(prof.RenderTop(p, vi, top))
		b.WriteString("\n")
		if kind == "cpu" {
			b.WriteString(prof.RenderLabels(p, "stage", vi))
			b.WriteString("\n")
			b.WriteString(prof.RenderLabels(p, "shard", vi))
			b.WriteString("\n")
		}
	}
	if matched == 0 {
		return "", fmt.Errorf("prof: no %q profiles in %s (%s)", kind, rdir, runs.ProfilesLine(infos))
	}
	return b.String(), nil
}

func cmdProfDiff(args []string) error {
	fs := flag.NewFlagSet("prof diff", flag.ContinueOnError)
	dir := dirFlag(fs)
	baseline := fs.String("baseline", "", "baseline run (directory or run ID; required)")
	kind := fs.String("kind", "cpu", "profile kind to diff: cpu, heap, allocs, block, or mutex")
	stage := fs.String("stage", "", "stage whose profile to diff (default: the CPU profile, or the kind's only stage)")
	minSamples := fs.Int64("min-samples", profDiffMinSamples, "total flat value required on both sides before shares are comparable")
	top := fs.Int("top", 20, "rows in the drift table")
	if err := parse(fs, args); err != nil {
		return err
	}
	if *baseline == "" {
		return usageError{"prof diff: -baseline is required"}
	}
	if fs.NArg() != 1 {
		return usageError{"prof diff: want exactly one candidate run argument"}
	}
	bdir, err := resolve(*dir, *baseline)
	if err != nil {
		return err
	}
	cdir, err := resolve(*dir, fs.Arg(0))
	if err != nil {
		return fmt.Errorf("candidate: %w", err)
	}
	base, name, err := loadRunProfile(bdir, *kind, *stage)
	if err != nil {
		return err
	}
	cand, _, err := loadRunProfile(cdir, *kind, *stage)
	if err != nil {
		return fmt.Errorf("candidate: %w", err)
	}
	d := prof.DiffFlat(base, cand, "", *minSamples)
	fmt.Printf("profile drift %s: %s -> %s\n\n", name, filepath.Base(bdir), filepath.Base(cdir))
	fmt.Print(prof.RenderDrift(d, *top))
	return nil
}

// loadRunProfile picks and decodes one profile of a run by kind and stage.
// An empty stage means "the obvious one": the run-wide CPU profile for cpu,
// or the kind's only archived stage; ambiguity is an error naming the
// choices rather than a silent pick.
func loadRunProfile(rdir, kind, stage string) (*prof.Profile, string, error) {
	if stage == "" && kind == "cpu" {
		stage = prof.CPUSnapshotStage
	}
	infos, err := runs.ListProfiles(rdir)
	if err != nil {
		return nil, "", err
	}
	var candidates []runs.ProfileInfo
	for _, info := range infos {
		if info.Kind != kind {
			continue
		}
		if stage != "" && info.Stage != stage {
			continue
		}
		candidates = append(candidates, info)
	}
	switch len(candidates) {
	case 0:
		return nil, "", fmt.Errorf("prof: no %q profile for stage %q in %s", kind, stage, rdir)
	case 1:
		p, err := readRunProfile(rdir, candidates[0].Name)
		return p, candidates[0].Name, err
	default:
		stages := make([]string, 0, len(candidates))
		for _, c := range candidates {
			stages = append(stages, c.Stage)
		}
		return nil, "", fmt.Errorf("prof: %d %q profiles in %s; pick one with -stage (%s)", len(candidates), kind, rdir, strings.Join(stages, ", "))
	}
}

// readRunProfile reads and decodes one archived profile file.
func readRunProfile(rdir, name string) (*prof.Profile, error) {
	data, err := runs.ReadProfile(rdir, name)
	if err != nil {
		return nil, err
	}
	p, err := prof.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("prof: %s: %w", name, err)
	}
	return p, nil
}

// profAdvisory renders the advisory CPU-drift block of a gate verdict: when
// both sides archived a CPU profile, their per-function flat shares are
// diffed and shown. It never contributes a violation — profile contents are
// machine-varying — and returns "" when either side is unprofiled.
func profAdvisory(baseDir, candDir string) string {
	base, _, berr := loadRunProfile(baseDir, "cpu", "")
	cand, _, cerr := loadRunProfile(candDir, "cpu", "")
	if berr != nil || cerr != nil {
		return ""
	}
	d := prof.DiffFlat(base, cand, "", profDiffMinSamples)
	var b strings.Builder
	b.WriteString("CPU hotspot drift (advisory — profiles are machine-varying and never gate):\n\n")
	b.WriteString(prof.RenderDrift(d, 10))
	return b.String()
}

// renderProfHotspots builds the perf report's CPU hotspots section: the
// candidate run's hotspot tables, plus a drift table when a baseline run
// with a CPU profile is named.
func renderProfHotspots(root, runArg, baseArg string) (string, error) {
	rdir, err := resolve(root, runArg)
	if err != nil {
		return "", err
	}
	hot, err := renderProfShow(rdir, "cpu", 15)
	if err != nil {
		return "", err
	}
	if baseArg == "" {
		return hot, nil
	}
	bdir, err := resolve(root, baseArg)
	if err != nil {
		return "", err
	}
	base, name, err := loadRunProfile(bdir, "cpu", "")
	if err != nil {
		return "", err
	}
	cand, _, err := loadRunProfile(rdir, "cpu", "")
	if err != nil {
		return "", err
	}
	d := prof.DiffFlat(base, cand, "", profDiffMinSamples)
	return hot + fmt.Sprintf("== drift %s: %s -> %s ==\n\n", name, filepath.Base(bdir), filepath.Base(rdir)) +
		prof.RenderDrift(d, 10), nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// cmdTimeline renders a run's windowed-telemetry timeline (timeline.jsonl)
// as a deterministic Markdown table with anomaly and breach callouts, or —
// with -diff — aligns two runs' timelines window-by-window to localize when
// their behaviour diverged. The render is a pure function of the archived
// bytes: five renders of the same archive are byte-identical.
func cmdTimeline(args []string) error {
	fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
	dir := dirFlag(fs)
	asJSON := fs.Bool("json", false, "print the raw window records as a JSON array")
	out := fs.String("o", "", "write the rendered output to this file instead of stdout")
	diff := fs.Bool("diff", false, "align two runs window-by-window")
	if err := parse(fs, args); err != nil {
		return err
	}
	var rendered string
	switch {
	case *diff:
		if fs.NArg() != 2 {
			return usageError{"timeline -diff: want exactly two run arguments"}
		}
		a, err := load(*dir, fs.Arg(0))
		if err != nil {
			return err
		}
		b, err := load(*dir, fs.Arg(1))
		if err != nil {
			return err
		}
		aws, err := runs.ReadTimeline(a.Dir)
		if err != nil {
			return err
		}
		bws, err := runs.ReadTimeline(b.Dir)
		if err != nil {
			return err
		}
		if *asJSON {
			return usageError{"timeline: -json and -diff are mutually exclusive"}
		}
		rendered = report.RenderTimelineDiff(a.Summary.ID, b.Summary.ID, aws, bws)
	default:
		if fs.NArg() != 1 {
			return usageError{"timeline: want exactly one run argument"}
		}
		rec, err := load(*dir, fs.Arg(0))
		if err != nil {
			return err
		}
		ws, err := runs.ReadTimeline(rec.Dir)
		if err != nil {
			return err
		}
		if *asJSON {
			if ws == nil {
				ws = []timeline.Window{}
			}
			b, err := json.MarshalIndent(ws, "", "  ")
			if err != nil {
				return err
			}
			rendered = string(b) + "\n"
		} else {
			rendered = report.RenderTimeline(rec.Summary.ID, ws)
		}
	}
	if *out != "" {
		return os.WriteFile(*out, []byte(rendered), 0o644)
	}
	fmt.Print(rendered)
	return nil
}
