// Command scfruns audits the pipeline's run-history archives. Every scfpipe
// run archives itself under .runs/<run-id>/ (summary, calibration shares,
// stage timings, manifest, event log, Chrome trace, artifact fingerprints);
// scfruns reads those archives back, compares them, and turns the
// comparison into a CI verdict.
//
// Usage:
//
//	scfruns list                          # archives under -dir, newest first
//	scfruns show r-1a2b3c4d5e6f           # one run in full
//	scfruns diff r-aaaa r-bbbb            # every dimension, side by side
//	scfruns diff -json r-aaaa r-bbbb      # the same, machine-readable
//	scfruns gate -baseline internal/runs/testdata/golden
//	scfruns gate -baseline old/ new/ -wall-tol 3
//	scfruns bench -i BENCH.txt -o BENCH.json
//
// A run argument is either a directory containing summary.json or a run ID
// resolved under -dir (default .runs, or $SCF_RUN_DIR). gate diffs the
// candidate (default: the baseline's run ID under -dir, since identical
// configs share an ID) against the baseline and exits 1 on any thresholded
// regression: stage wall time past ratio+floor, histogram p99 drift,
// per-provider probe error-rate growth or p99 drift (from the labeled
// metric vectors the timings snapshot carries), new/grown degradations,
// deterministic-artifact fingerprint changes, or calibration shares leaving
// the paper's acceptance bands. bench converts
// `go test -bench` text into the structured JSON BENCH_pipeline.json holds,
// and gate's -bench-base/-bench-new compare two such files.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/report"
	"repro/internal/runs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scfruns: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "list":
		err = cmdList(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "diff":
		err = cmdDiff(os.Args[2:])
	case "gate":
		err = cmdGate(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		log.Printf("unknown subcommand %q", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: scfruns <list|show|diff|gate|bench> [flags] [args]

  list                     list archived runs under -dir, newest first
  show <run>               print one archive: config, stages, calibration
  diff <a> <b>             compare two archives dimension by dimension
  gate -baseline <run> [candidate]
                           diff + thresholds; exit 1 on regression
  bench -i in.txt -o out.json
                           parse 'go test -bench' text into structured JSON

run arguments are directories holding summary.json, or run IDs under -dir
(default .runs, or $SCF_RUN_DIR). See 'scfruns <cmd> -h' for flags.`)
}

// dirFlag registers the shared -dir flag on a subcommand's flag set.
func dirFlag(fs *flag.FlagSet) *string {
	def := os.Getenv("SCF_RUN_DIR")
	if def == "" {
		def = ".runs"
	}
	return fs.String("dir", def, "run archive root (default: $SCF_RUN_DIR or .runs)")
}

// resolve turns a run argument into an archive directory: a path that holds
// summary.json wins, otherwise the argument is a run ID under root.
func resolve(root, arg string) (string, error) {
	if _, err := os.Stat(filepath.Join(arg, runs.SummaryFile)); err == nil {
		return arg, nil
	}
	dir := filepath.Join(root, arg)
	if _, err := os.Stat(filepath.Join(dir, runs.SummaryFile)); err == nil {
		return dir, nil
	}
	return "", fmt.Errorf("no run archive at %s or %s (need %s)", arg, dir, runs.SummaryFile)
}

func load(root, arg string) (*runs.Record, error) {
	dir, err := resolve(root, arg)
	if err != nil {
		return nil, err
	}
	return runs.Read(dir)
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	dir := dirFlag(fs)
	fs.Parse(args)
	recs, err := runs.List(*dir)
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Printf("no runs under %s\n", *dir)
		return nil
	}
	t := report.NewTable("Archived runs ("+*dir+")", "Run", "Tool", "Created", "Elapsed", "Seed", "Scale", "Chaos", "Degr", "Cal")
	for _, r := range recs {
		t.AddRow(r.Summary.ID, r.Summary.Tool, r.Timings.CreatedAt,
			time.Duration(r.Timings.ElapsedNS).Round(time.Millisecond).String(),
			r.Summary.Meta["seed"], r.Summary.Meta["scale"], r.Summary.Meta["chaos"],
			len(r.Summary.Degradations), calVerdict(r.Summary.Calibration))
	}
	fmt.Println(t.String())
	return nil
}

// calVerdict reduces a run's calibration shares to one list-column verdict:
// "ok" when every share with a published paper target sits inside its band,
// "FAIL(n)" counting the shares outside, "-" when nothing is auditable.
func calVerdict(cal map[string]float64) string {
	audited, failed := 0, 0
	for k, v := range cal {
		t, ok := runs.TargetFor(k)
		if !ok {
			continue
		}
		audited++
		if !t.Contains(v) {
			failed++
		}
	}
	switch {
	case audited == 0:
		return "-"
	case failed == 0:
		return "ok"
	default:
		return fmt.Sprintf("FAIL(%d)", failed)
	}
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	dir := dirFlag(fs)
	asJSON := fs.Bool("json", false, "print the raw summary and timings as JSON")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("show: want exactly one run argument")
	}
	rec, err := load(*dir, fs.Arg(0))
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec.Summary); err != nil {
			return err
		}
		return enc.Encode(rec.Timings)
	}
	fmt.Printf("run %s (%s) — %s, elapsed %v\n", rec.Summary.ID, rec.Summary.Tool,
		rec.Timings.CreatedAt, time.Duration(rec.Timings.ElapsedNS).Round(time.Millisecond))
	fmt.Printf("config %s\n\n", rec.Summary.ConfigHash[:12])

	mt := report.NewTable("Config", "Key", "Value")
	for _, k := range sortedKeys(rec.Summary.Meta) {
		mt.AddRow(k, rec.Summary.Meta[k])
	}
	fmt.Println(mt.String())

	fmt.Println(report.StageTimingsFlat(rec.Timings.Stages))

	if len(rec.Summary.Calibration) > 0 {
		ct := report.NewTable("Calibration vs paper", "Metric", "Paper", "Measured", "Holds")
		for _, k := range sortedKeys(rec.Summary.Calibration) {
			v := rec.Summary.Calibration[k]
			paper, holds := "-", "-"
			if t, ok := runs.TargetFor(k); ok {
				paper = fmt.Sprintf("%.4f", t.Paper)
				holds = "yes"
				if !t.Contains(v) {
					holds = "**NO**"
				}
			}
			ct.AddRow(k, paper, fmt.Sprintf("%.4f", v), holds)
		}
		fmt.Println(ct.String())
	}

	if len(rec.Summary.Degradations) > 0 {
		dt := report.NewTable("Degradations absorbed", "Stage", "Kind", "Count")
		for _, d := range rec.Summary.Degradations {
			dt.AddRow(d.Stage, d.Kind, d.Count)
		}
		fmt.Println(dt.String())
	}

	if len(rec.Summary.Artifacts) > 0 {
		at := report.NewTable("Artifacts", "File", "SHA-256", "Gated")
		for _, k := range sortedKeys(rec.Summary.Artifacts) {
			gated := ""
			if runs.DeterministicArtifacts[k] {
				gated = "yes"
			}
			at.AddRow(k, rec.Summary.Artifacts[k][:12], gated)
		}
		fmt.Println(at.String())
	}
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	dir := dirFlag(fs)
	asJSON := fs.Bool("json", false, "print the diff report as JSON")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want exactly two run arguments (baseline, candidate)")
	}
	a, err := load(*dir, fs.Arg(0))
	if err != nil {
		return err
	}
	b, err := load(*dir, fs.Arg(1))
	if err != nil {
		return err
	}
	rep := runs.Diff(a, b)
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(rep)
	}
	fmt.Println(rep.Render())
	return nil
}

func cmdGate(args []string) error {
	fs := flag.NewFlagSet("gate", flag.ExitOnError)
	dir := dirFlag(fs)
	def := runs.DefaultGateOptions()
	var (
		baseline   = fs.String("baseline", "", "baseline run (directory or run ID; required unless only benching)")
		wallTol    = fs.Float64("wall-tol", def.WallTol, "stage wall regression tolerance as a ratio above 1 (negative disables)")
		wallFloor  = fs.Duration("wall-floor", def.WallFloor, "minimum absolute wall delta before the ratio check applies")
		p99Tol     = fs.Float64("p99-tol", def.P99Tol, "histogram p99 regression tolerance as a ratio above 1 (negative disables)")
		minSamples = fs.Int64("min-samples", def.MinSamples, "histogram observations required on both sides before p99 gating")
		errTol     = fs.Float64("err-tol", def.ErrRateTol, "per-provider probe error-rate growth tolerance, absolute (negative disables provider gating)")
		noDegr     = fs.Bool("no-degradations", false, "skip degradation-drift gating")
		noArt      = fs.Bool("no-artifacts", false, "skip deterministic-artifact fingerprint gating")
		noCal      = fs.Bool("no-calibration", false, "skip paper-calibration gating")
		benchBase  = fs.String("bench-base", "", "baseline bench JSON (from 'scfruns bench')")
		benchNew   = fs.String("bench-new", "", "candidate bench JSON to gate against -bench-base")
		benchTol   = fs.Float64("bench-tol", 0.5, "mean ns/op regression tolerance as a ratio above 1")
		quiet      = fs.Bool("quiet", false, "suppress the full diff; print only violations")
	)
	fs.Parse(args)

	var violations []string

	if *baseline != "" {
		a, err := load(*dir, *baseline)
		if err != nil {
			return err
		}
		// Identical configs share a run ID, so the candidate defaults to the
		// baseline's slot under -dir: "did the same experiment regress?"
		candArg := a.Summary.ID
		if fs.NArg() > 0 {
			candArg = fs.Arg(0)
		}
		b, err := load(*dir, candArg)
		if err != nil {
			return fmt.Errorf("candidate: %w", err)
		}
		rep := runs.Diff(a, b)
		if !*quiet {
			fmt.Println(rep.Render())
			fmt.Println()
		}
		violations = append(violations, rep.Gate(runs.GateOptions{
			WallTol:      *wallTol,
			WallFloor:    *wallFloor,
			P99Tol:       *p99Tol,
			MinSamples:   *minSamples,
			ErrRateTol:   *errTol,
			Degradations: !*noDegr,
			Artifacts:    !*noArt,
			Calibration:  !*noCal,
		})...)
	} else if fs.NArg() > 0 {
		return fmt.Errorf("gate: candidate given without -baseline")
	}

	if (*benchBase == "") != (*benchNew == "") {
		return fmt.Errorf("gate: -bench-base and -bench-new must be given together")
	}
	if *benchBase != "" {
		ba, err := readBenchFile(*benchBase)
		if err != nil {
			return err
		}
		bb, err := readBenchFile(*benchNew)
		if err != nil {
			return err
		}
		if !*quiet {
			fmt.Println(runs.RenderBenchDiff(runs.DiffBench(ba, bb)))
		}
		violations = append(violations, runs.GateBench(ba, bb, *benchTol)...)
	}

	if *baseline == "" && *benchBase == "" {
		return fmt.Errorf("gate: nothing to gate (need -baseline and/or -bench-base/-bench-new)")
	}

	if len(violations) > 0 {
		fmt.Printf("GATE FAILED: %d violation(s)\n", len(violations))
		for _, v := range violations {
			fmt.Printf("  - %s\n", v)
		}
		os.Exit(1)
	}
	fmt.Println("GATE PASSED")
	return nil
}

func readBenchFile(path string) (*runs.BenchSet, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return runs.ReadBenchJSON(f)
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	in := fs.String("i", "", "bench text input file (default: stdin)")
	out := fs.String("o", "", "JSON output file (default: stdout)")
	fs.Parse(args)
	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	set, err := runs.ParseBench(r)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return set.WriteJSON(w)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
