// Command scfaudit prints the provider management-posture audit derived
// from the paper's §6 recommendations: supervision of abuse, architecture
// security (wildcard DNS, third-party ingress), and access-control defaults.
//
// Usage:
//
//	scfaudit            # audit all nine providers
//	scfaudit -p Baidu   # audit one provider
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/posture"
	"repro/internal/providers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scfaudit: ")
	var one = flag.String("p", "", "audit a single provider by name (e.g. AWS, Baidu)")
	flag.Parse()

	if *one != "" {
		in, ok := providers.ByName(*one)
		if !ok {
			log.Fatalf("unknown provider %q", *one)
		}
		fmt.Print(posture.Render(posture.Audit(posture.FactsFor(in.ID))))
		return
	}
	fmt.Print(posture.Render(posture.AuditAll()))
}
