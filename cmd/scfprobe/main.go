// Command scfprobe runs the ethical active prober over a list of function
// domains (one FQDN per line on stdin or in a file) and prints one
// tab-separated result row per domain: fqdn, reachable, scheme, status,
// content-type, location, body-bytes, failure.
//
// Pointed at real endpoints it behaves per the paper's Appendix A: a single
// parameter-free GET per scheme, HTTPS first, an identifying User-Agent,
// redirects recorded but not followed, and a 60-second timeout.
//
// Usage:
//
//	scfprobe -f domains.txt
//	pdnsgen -scale 0.001 | cut -f1 | sort -u | scfprobe
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/probe"
	"repro/internal/providers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scfprobe: ")
	var (
		file        = flag.String("f", "-", "file with one FQDN per line (- for stdin)")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		concurrency = flag.Int("c", 16, "concurrent probes")
		verifyOnly  = flag.Bool("identify-only", false, "only classify domains against provider patterns; no network contact")
		optOutFile  = flag.String("opt-out", "", "file of FQDNs that must never be contacted")
	)
	flag.Parse()

	fqdns, err := readLines(*file)
	if err != nil {
		log.Fatal(err)
	}
	matcher := providers.NewMatcher(nil)

	if *verifyOnly {
		for _, fqdn := range fqdns {
			if in, ok := matcher.Identify(fqdn); ok {
				fmt.Printf("%s\t%s\n", fqdn, in.Name)
			} else {
				fmt.Printf("%s\t-\n", fqdn)
			}
		}
		return
	}

	p := probe.New(probe.Config{Timeout: *timeout, Concurrency: *concurrency})
	if *optOutFile != "" {
		outs, err := readLines(*optOutFile)
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range outs {
			p.OptOut(o)
		}
	}

	// Keep the contact to function domains only.
	var targets []string
	for _, fqdn := range fqdns {
		if _, ok := matcher.Identify(fqdn); ok {
			targets = append(targets, fqdn)
		} else {
			fmt.Fprintf(os.Stderr, "scfprobe: skipping %s (not a known function domain)\n", fqdn)
		}
	}
	results := p.ProbeAll(context.Background(), targets)
	for i := range results {
		r := &results[i]
		scheme := "http"
		if r.HTTPS {
			scheme = "https"
		}
		if !r.Reachable {
			scheme = "-"
		}
		fmt.Printf("%s\t%v\t%s\t%d\t%s\t%s\t%d\t%s\n",
			r.FQDN, r.Reachable, scheme, r.Status,
			sanitizeField(r.ContentType), sanitizeField(r.Location),
			len(r.Body), r.Failure)
	}
	st := p.Stats()
	fmt.Fprintf(os.Stderr, "scfprobe: probed %d, reachable %d, unreachable %d (dns %d)\n",
		st.Probed, st.Reachable, st.Unreachable, st.DNSFailures)
}

func readLines(path string) ([]string, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var out []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}

func sanitizeField(s string) string {
	s = strings.ReplaceAll(s, "\t", " ")
	s = strings.ReplaceAll(s, "\n", " ")
	if s == "" {
		return "-"
	}
	return s
}
