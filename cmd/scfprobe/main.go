// Command scfprobe runs the ethical active prober over a list of function
// domains (one FQDN per line on stdin or in a file) and prints one
// tab-separated result row per domain: fqdn, reachable, scheme, status,
// content-type, location, body-bytes, failure.
//
// Pointed at real endpoints it behaves per the paper's Appendix A: a single
// parameter-free GET per scheme, HTTPS first, an identifying User-Agent,
// redirects recorded but not followed, and a 60-second timeout.
//
// Usage:
//
//	scfprobe -f domains.txt
//	pdnsgen -scale 0.001 | cut -f1 | sort -u | scfprobe
//	scfprobe -f domains.txt -retries 2 -breaker 20   # resilient campaign
//	scfprobe -f domains.txt -chaos heavy,seed=3      # rehearse a bad day
//	scfprobe -f domains.txt -manifest run.json -events run.jsonl
//
// -retries adds bounded exponential-backoff retries after connection-class
// failures, and -breaker opens a per-provider circuit after that many
// consecutive endpoint failures, so one cloud's outage cannot consume the
// whole campaign's politeness budget. -chaos injects a deterministic fault
// schedule in front of the real network — a dress rehearsal for the
// resilience controls without needing the network to misbehave.
//
// -manifest writes the campaign's provenance record (span timing plus the
// final metric snapshot) as JSON, and -events writes the structured event
// log as JSONL — the same formats a pipeline run archives under .runs/.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"strings"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/probe"
	"repro/internal/providers"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scfprobe: ")
	var (
		file        = flag.String("f", "-", "file with one FQDN per line (- for stdin)")
		timeout     = flag.Duration("timeout", 60*time.Second, "per-request timeout")
		concurrency = flag.Int("c", 16, "concurrent probes")
		verifyOnly  = flag.Bool("identify-only", false, "only classify domains against provider patterns; no network contact")
		optOutFile  = flag.String("opt-out", "", "file of FQDNs that must never be contacted")
		retries     = flag.Int("retries", 0, "extra attempts per scheme after connection-class failures")
		breakerThr  = flag.Int("breaker", 0, "consecutive failures opening a provider's circuit (0 = no breaker)")
		chaos       = flag.String("chaos", "", "inject a deterministic fault schedule: none, light, or heavy, optionally ,seed=N")
		manifest    = flag.String("manifest", "", "write the campaign manifest (timing + metrics) to this JSON file")
		eventsFile  = flag.String("events", "", "write the campaign's structured event log to this JSONL file")
	)
	flag.Parse()

	var chaosProf fault.Profile
	if *chaos != "" {
		var err error
		if chaosProf, err = fault.ParseProfile(*chaos); err != nil {
			log.Fatal(err)
		}
	}

	fqdns, err := readLines(*file)
	if err != nil {
		log.Fatal(err)
	}
	matcher := providers.NewMatcher(nil)

	if *verifyOnly {
		for _, fqdn := range fqdns {
			if in, ok := matcher.Identify(fqdn); ok {
				fmt.Printf("%s\t%s\n", fqdn, in.Name)
			} else {
				fmt.Printf("%s\t-\n", fqdn)
			}
		}
		return
	}

	// Campaign observability: one span covers the whole sweep, and the
	// prober reports latency/outcome metrics into the registry, so a
	// campaign leaves the same provenance trail a pipeline run does.
	reg := obs.NewRegistry()
	tr := obs.NewTrace()
	elog := obs.NewEventLog()
	ctx := obs.ContextWithTrace(context.Background(), tr)
	ctx = obs.ContextWithEventLog(ctx, elog)

	cfg := probe.Config{
		Timeout:     *timeout,
		Concurrency: *concurrency,
		Retries:     *retries,
		Metrics:     reg,
		// Label the outcome/latency vectors per provider, so the campaign
		// manifest's snapshot answers "whose endpoints failed" directly.
		Provider: func(fqdn string) string {
			if in, ok := matcher.Identify(fqdn); ok {
				return in.Name
			}
			return "unknown"
		},
	}
	if *breakerThr > 0 {
		cfg.Breaker = fault.NewBreaker(*breakerThr, 0)
		cfg.BreakerKey = func(fqdn string) string {
			if in, ok := matcher.Identify(fqdn); ok {
				return in.Name
			}
			return fqdn
		}
	}
	if chaosProf.Enabled() {
		injector := fault.New(chaosProf)
		injector.SetSpikeDelay(3 * *timeout)
		cfg.Resolve = injector.WrapResolve(nil)
		var d net.Dialer
		cfg.DialContext = injector.WrapDial(d.DialContext)
		// The injector only wraps the real dialer; certificates must still
		// verify like any production campaign.
		cfg.KeepTLSVerify = true
	}
	p := probe.New(cfg)
	if *optOutFile != "" {
		outs, err := readLines(*optOutFile)
		if err != nil {
			log.Fatal(err)
		}
		for _, o := range outs {
			p.OptOut(o)
		}
	}

	// Keep the contact to function domains only.
	var targets []string
	for _, fqdn := range fqdns {
		if _, ok := matcher.Identify(fqdn); ok {
			targets = append(targets, fqdn)
		} else {
			fmt.Fprintf(os.Stderr, "scfprobe: skipping %s (not a known function domain)\n", fqdn)
		}
	}
	sctx, sp := obs.StartSpan(ctx, "campaign")
	results := p.ProbeAll(sctx, targets)
	sp.SetAttr("targets", len(targets))
	sp.End()
	for i := range results {
		r := &results[i]
		scheme := "http"
		if r.HTTPS {
			scheme = "https"
		}
		if !r.Reachable {
			scheme = "-"
		}
		fmt.Printf("%s\t%v\t%s\t%d\t%s\t%s\t%d\t%s\n",
			r.FQDN, r.Reachable, scheme, r.Status,
			sanitizeField(r.ContentType), sanitizeField(r.Location),
			len(r.Body), r.Failure)
	}
	st := p.Stats()
	fmt.Fprintf(os.Stderr, "scfprobe: probed %d, reachable %d, unreachable %d (dns %d)\n",
		st.Probed, st.Reachable, st.Unreachable, st.DNSFailures)
	if st.Retried > 0 || st.BreakerSkips > 0 {
		fmt.Fprintf(os.Stderr, "scfprobe: degraded: %d conn retries, %d breaker skips\n",
			st.Retried, st.BreakerSkips)
	}
	elog.EmitMetrics("final", reg)
	if *manifest != "" {
		m := obs.BuildManifest("scfprobe", tr, reg, map[string]string{
			"targets": fmt.Sprint(len(targets)),
			"timeout": timeout.String(),
			"chaos":   chaosProf.String(),
		})
		if err := m.WriteFile(*manifest); err != nil {
			log.Fatal(err)
		}
	}
	if *eventsFile != "" {
		f, err := os.Create(*eventsFile)
		if err != nil {
			log.Fatal(err)
		}
		werr := elog.WriteJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			log.Fatal(werr)
		}
	}
}

func readLines(path string) ([]string, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var out []string
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !strings.HasPrefix(line, "#") {
			out = append(out, line)
		}
	}
	return out, sc.Err()
}

func sanitizeField(s string) string {
	s = strings.ReplaceAll(s, "\t", " ")
	s = strings.ReplaceAll(s, "\n", " ")
	if s == "" {
		return "-"
	}
	return s
}
