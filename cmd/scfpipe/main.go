// Command scfpipe runs the paper's full measurement pipeline end to end on
// the synthetic substrate and prints the summary plus every table and
// figure of the evaluation, followed by the per-stage timing breakdown.
//
// Usage:
//
//	scfpipe -seed 1 -scale 0.01
//	scfpipe -scale 0.05 -skip-c2             # faster: skip the fingerprint sweep
//	scfpipe -probe-concurrency 128           # widen the probe sweep
//	scfpipe -metrics-addr :6060              # live JSON metrics + trace + pprof
//	scfpipe -manifest run.json               # machine-readable run provenance
//	scfpipe -chaos heavy                     # deterministic fault injection
//	scfpipe -chaos light,seed=7 -probe-retries 3
//	scfpipe -resource-interval 250ms         # sample heap/RSS/goroutines/GC per stage
//	scfpipe -run-dir .runs                   # archive the run for scfruns
//	scfpipe -no-archive                      # skip the run archive
//	scfpipe -health-strict                   # exit 1 if an SLO health rule fires
//	scfpipe -checkpoint-interval 100000      # denser mid-emission checkpoints
//	scfpipe -resume                          # resume an interrupted run
//	scfpipe -chaos crash=probe               # seeded crash injection (testing)
//	scfpipe -profile                         # archive per-stage pprof profiles
//	scfpipe -timeline-interval 250ms         # windowed telemetry + anomaly markers
//
// With -chaos the run injects a seeded, reproducible fault schedule (DNS
// failures, connection resets, flapping and truncating endpoints, latency
// spikes, PDNS feed corruption) and reports the degradations it absorbed;
// the schedule depends only on (chaos seed, FQDN), never on -workers.
//
// Every run evaluates the default SLO health rules (per-provider probe error
// rate and p99 latency, breaker opens, feed drop/quarantine rates) over
// rolling windows while it executes; firings land in the event log as
// "health" events and the final per-provider health table prints after the
// degradation report. -health-strict turns any firing into a non-zero exit.
//
// With -metrics-addr the run serves live introspection while it executes:
// /metrics (JSON metric snapshot), /metrics.prom (the same registry in
// Prometheus text exposition format, labeled vectors included),
// /trace (the stage span tree so far),
// /trace.json (Chrome trace-event export for Perfetto / chrome://tracing),
// /events (the structured event log as JSONL), and /debug/pprof/ (standard
// profiles). With -manifest the finished run's RunManifest — config,
// per-stage wall/CPU time, final metrics — is written as JSON, so every
// benchmark entry has a provenance record. Interrupting the run
// (SIGINT/SIGTERM) aborts the probe and C2 sweeps cleanly; the manifest is
// still written, with the cancellation recorded on the interrupted stage.
//
// Every completed run is also archived under <run-dir>/<run-id>/ (default
// .runs, or $SCF_RUN_DIR; disable with -no-archive): summary + calibration
// shares, stage timings, manifest, event log, Chrome trace, and the
// rendered tables/figures with SHA-256 fingerprints. The run ID derives
// from seed+config, so re-running the same experiment overwrites its slot.
// `scfruns list|show|diff|gate` reads these archives.
//
// Archived runs also checkpoint their progress under
// <run-dir>/<run-id>/checkpoints/: a durable snapshot lands at every stage
// boundary and every -checkpoint-interval emitted PDNS rows (0 = boundaries
// only, negative = no checkpointing). After a crash or an interrupt,
// re-running the same configuration with -resume restores the newest valid
// checkpoint, skips the completed stages, and produces artifacts
// byte-identical to an uninterrupted run. The first SIGINT/SIGTERM cancels
// the run cleanly — in-flight emission flushes one final checkpoint and the
// partial provenance (manifest + events) is archived with a resume hint; a
// second signal aborts immediately.
//
// With -profile the run records continuous profiles: one run-wide CPU
// profile whose samples carry pprof labels for the executing stage (and the
// shard index inside parallel aggregation), plus heap/allocs/block/mutex
// snapshots at every stage boundary. Profiles land on the archive's
// machine-varying side under profiles/ — toggling -profile never moves the
// run ID or any artifact fingerprint. Inspect them with
// `scfruns prof show|diff`.
//
// With -timeline-interval the run captures a windowed telemetry timeline:
// every interval, the metric registry's per-window deltas (counters, labeled
// vectors, histogram window quantiles), gauge last-values, health breaches,
// resource high-water marks, and seeded-deterministic anomaly annotations
// (error-class activations and EWMA drift) land as one window record. The
// timeline is archived as timeline.jsonl on the machine-varying side —
// enabling it never moves the run ID or an artifact fingerprint — and, when
// -metrics-addr is set, streams live to the /dash dashboard over SSE.
// Inspect archived timelines with `scfruns timeline`.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/obs/timeline"
	"repro/internal/runs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scfpipe: ")
	var (
		seed         = flag.Int64("seed", 1, "substrate seed")
		scale        = flag.Float64("scale", 0.01, "fraction of the paper's population")
		skipC2       = flag.Bool("skip-c2", false, "skip the C2 fingerprint sweep")
		cache        = flag.Bool("cache-model", false, "model resolver caching in PDNS counts")
		timeout      = flag.Duration("probe-timeout", 2*time.Second, "per-request probe timeout")
		probeConc    = flag.Int("probe-concurrency", 0, "max in-flight probes (0 = default 32)")
		workers      = flag.Int("workers", 0, "CPU-bound fan-out for generation, PDNS emission+aggregation, sanitisation, and classification (0 = GOMAXPROCS; results are identical for every value)")
		metricsAddr  = flag.String("metrics-addr", "", "serve live JSON metrics, trace, events, and pprof on this address (e.g. :6060)")
		manifest     = flag.String("manifest", "", "write the run manifest (stage timings + metrics) to this JSON file")
		chaos        = flag.String("chaos", "", "fault-injection profile: none, light, or heavy, optionally ,seed=N (default: $SCF_CHAOS or none)")
		retries      = flag.Int("probe-retries", 0, "extra probe attempts per scheme after connection failures (0 = auto: 2 under chaos; negative = off)")
		breaker      = flag.Int("breaker-threshold", 0, "consecutive failures opening a provider's probe circuit (0 = auto: 50 under chaos; negative = off)")
		resInterval  = flag.Duration("resource-interval", 0, "sample runtime resources (heap, RSS, goroutines, GC pauses) on this interval; 0 disables")
		runDir       = flag.String("run-dir", "", "archive the run under this directory (default: $SCF_RUN_DIR or .runs)")
		noArchive    = flag.Bool("no-archive", false, "do not archive the run")
		healthStrict = flag.Bool("health-strict", false, "exit non-zero when any SLO health rule fired during the run")
		ckptEvery    = flag.Int64("checkpoint-interval", 250000, "also checkpoint every N emitted PDNS rows (0 = stage boundaries only; negative = disable checkpointing)")
		resume       = flag.Bool("resume", false, "resume the interrupted run with this configuration from its newest checkpoint")
		tlInterval   = flag.Duration("timeline-interval", 0, "capture windowed telemetry (metric deltas, anomaly annotations, breaches, resource peaks) on this interval into timeline.jsonl; 0 disables")
		profile      = flag.Bool("profile", false, "record per-stage pprof profiles (CPU with stage/shard labels, heap/allocs/block/mutex at stage boundaries) into the run archive's profiles/ directory")
	)
	flag.Parse()

	var chaosProf fault.Profile
	if *chaos != "" {
		var err error
		if chaosProf, err = fault.ParseProfile(*chaos); err != nil {
			log.Fatal(err)
		}
	}

	// The run root is resolved before the pipeline starts: checkpoints live
	// inside the (future) archive slot, so the checkpoint writer needs it even
	// though the archive itself is only written at the end.
	root := *runDir
	if root == "" {
		root = os.Getenv("SCF_RUN_DIR")
	}
	if root == "" {
		root = ".runs"
	}
	ckptDir := root
	if *noArchive || *ckptEvery < 0 {
		ckptDir = ""
	}
	if *resume && ckptDir == "" {
		log.Fatal("-resume needs checkpointing: drop -no-archive and use -checkpoint-interval >= 0")
	}

	// Two-phase interrupt handling: the first SIGINT/SIGTERM cancels the run
	// context so emission can flush a final checkpoint and the partial
	// provenance gets archived; a second signal aborts on the spot.
	ctx, cancel := context.WithCancel(obsContext())
	defer cancel()
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("received %v: stopping cleanly (send again to abort)", s)
		cancel()
		s = <-sigs
		log.Printf("received %v again: aborting", s)
		os.Exit(130)
	}()

	// The timeline recorder is created here, not inside core, so the /dash
	// dashboard can subscribe to it before the pipeline starts; core adopts it
	// via Config.Timeline and drives its lifecycle (start, stage annotations,
	// breach folding, stop-and-collect).
	tlRec := timeline.NewRecorder(metrics, timeline.Options{Interval: *tlInterval})

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, metrics, trace, events, timeline.DashMounts(tlRec)...)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("serving metrics on http://%s/metrics (dash: /dash; trace: /trace, /trace.json; events: /events; pprof: /debug/pprof/)", srv.Addr())
	}

	res, err := core.RunContext(ctx, core.Config{
		Seed:               *seed,
		Scale:              *scale,
		SkipC2Scan:         *skipC2,
		CacheModel:         *cache,
		ProbeTimeout:       *timeout,
		ProbeConcurrency:   *probeConc,
		Workers:            *workers,
		Chaos:              chaosProf,
		ProbeRetries:       *retries,
		BreakerThreshold:   *breaker,
		Metrics:            metrics,
		ResourceInterval:   *resInterval,
		CheckpointDir:      ckptDir,
		CheckpointInterval: *ckptEvery,
		Resume:             *resume,
		Profile:            *profile,
		Timeline:           tlRec,
	})
	exitCode := 0
	if res != nil && *manifest != "" {
		if werr := res.Manifest("scfpipe").WriteFile(*manifest); werr != nil {
			log.Print(werr)
			exitCode = 1
		} else {
			log.Printf("wrote manifest to %s", *manifest)
		}
	}
	// Only completed runs are archived in full: a partial run would overwrite
	// its config's slot with truncated calibration/artifacts. An interrupted
	// checkpointing run still leaves its provenance (manifest + events) next
	// to the checkpoints so `scfruns show` has something to display, and
	// prints the command that resumes it.
	if res != nil && err == nil && !*noArchive {
		arch := res.BuildArchive("scfpipe", events)
		if dir, aerr := runs.Write(root, arch); aerr != nil {
			log.Print(aerr)
			exitCode = 1
		} else {
			log.Printf("archived run %s to %s", arch.Summary.ID, dir)
		}
	}
	if res != nil && err != nil && ckptDir != "" {
		dir := filepath.Join(root, res.RunID())
		if merr := os.MkdirAll(dir, 0o755); merr == nil {
			if werr := res.Manifest("scfpipe").WriteFile(filepath.Join(dir, runs.ManifestFile)); werr != nil {
				log.Print(werr)
			}
			if f, ferr := os.Create(filepath.Join(dir, runs.EventsFile)); ferr == nil {
				if werr := events.WriteJSONL(f); werr != nil {
					log.Print(werr)
				}
				f.Close()
			}
		}
		log.Printf("run %s interrupted; resume it by re-running the same configuration with -resume", res.RunID())
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.RenderSummary())
	fmt.Println(core.RenderTable1())
	fmt.Println(res.RenderTable2())
	fmt.Println(res.RenderTable3())
	fmt.Println(res.RenderFigure3())
	fmt.Println(res.RenderFigure4())
	fmt.Println(res.RenderFigure5())
	fmt.Println(res.RenderFigure6())
	fmt.Println(res.RenderFigure7())
	fmt.Println(res.RenderDisclosures())
	fmt.Println(res.RenderStageTimings())
	if deg := res.RenderDegradations(); deg != "" {
		fmt.Println(deg)
	}
	if ht := res.RenderHealth(); ht != "" {
		fmt.Println(ht)
	}
	if rt := res.RenderResources(); rt != "" {
		fmt.Println(rt)
	}
	if n := len(res.Timeline); n > 0 {
		log.Printf("timeline: %d windows, %d anomaly annotation(s) — inspect with `scfruns timeline %s`",
			n, timeline.AnomalyCount(res.Timeline), res.RunID())
	}
	fmt.Println(res.RenderMetrics())
	if *healthStrict && health.Fired(res.Health) {
		log.Print("health-strict: one or more SLO health rules fired")
		if exitCode == 0 {
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}

// Shared observability state: created up front so the introspection endpoint
// serves live data for the whole run, not a post-hoc copy, and so the event
// log covers the run from its first span to the final metric snapshot.
var (
	metrics = obs.NewRegistry()
	trace   = obs.NewTrace()
	events  = obs.NewEventLog()
)

func obsContext() context.Context {
	ctx := obs.ContextWithTrace(context.Background(), trace)
	return obs.ContextWithEventLog(ctx, events)
}
