// Command scfpipe runs the paper's full measurement pipeline end to end on
// the synthetic substrate and prints the summary plus every table and
// figure of the evaluation, followed by the per-stage timing breakdown.
//
// Usage:
//
//	scfpipe -seed 1 -scale 0.01
//	scfpipe -scale 0.05 -skip-c2             # faster: skip the fingerprint sweep
//	scfpipe -probe-concurrency 128           # widen the probe sweep
//	scfpipe -metrics-addr :6060              # live JSON metrics + trace + pprof
//	scfpipe -manifest run.json               # machine-readable run provenance
//	scfpipe -chaos heavy                     # deterministic fault injection
//	scfpipe -chaos light,seed=7 -probe-retries 3
//
// With -chaos the run injects a seeded, reproducible fault schedule (DNS
// failures, connection resets, flapping and truncating endpoints, latency
// spikes, PDNS feed corruption) and reports the degradations it absorbed;
// the schedule depends only on (chaos seed, FQDN), never on -workers.
//
// With -metrics-addr the run serves live introspection while it executes:
// /metrics (JSON metric snapshot), /trace (the stage span tree so far), and
// /debug/pprof/ (standard profiles). With -manifest the finished run's
// RunManifest — config, per-stage wall/CPU time, final metrics — is written
// as JSON, so every benchmark entry has a provenance record. Interrupting
// the run (SIGINT/SIGTERM) aborts the probe and C2 sweeps cleanly; the
// manifest is still written, with the cancellation recorded on the
// interrupted stage.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scfpipe: ")
	var (
		seed        = flag.Int64("seed", 1, "substrate seed")
		scale       = flag.Float64("scale", 0.01, "fraction of the paper's population")
		skipC2      = flag.Bool("skip-c2", false, "skip the C2 fingerprint sweep")
		cache       = flag.Bool("cache-model", false, "model resolver caching in PDNS counts")
		timeout     = flag.Duration("probe-timeout", 2*time.Second, "per-request probe timeout")
		probeConc   = flag.Int("probe-concurrency", 0, "max in-flight probes (0 = default 32)")
		workers     = flag.Int("workers", 0, "CPU-bound fan-out for generation, PDNS emission+aggregation, sanitisation, and classification (0 = GOMAXPROCS; results are identical for every value)")
		metricsAddr = flag.String("metrics-addr", "", "serve live JSON metrics, trace, and pprof on this address (e.g. :6060)")
		manifest    = flag.String("manifest", "", "write the run manifest (stage timings + metrics) to this JSON file")
		chaos       = flag.String("chaos", "", "fault-injection profile: none, light, or heavy, optionally ,seed=N (default: $SCF_CHAOS or none)")
		retries     = flag.Int("probe-retries", 0, "extra probe attempts per scheme after connection failures (0 = auto: 2 under chaos; negative = off)")
		breaker     = flag.Int("breaker-threshold", 0, "consecutive failures opening a provider's probe circuit (0 = auto: 50 under chaos; negative = off)")
	)
	flag.Parse()

	var chaosProf fault.Profile
	if *chaos != "" {
		var err error
		if chaosProf, err = fault.ParseProfile(*chaos); err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(obsContext(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *metricsAddr != "" {
		srv, err := obs.Serve(*metricsAddr, metrics, trace)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		log.Printf("serving metrics on http://%s/metrics (trace: /trace, pprof: /debug/pprof/)", srv.Addr())
	}

	res, err := core.RunContext(ctx, core.Config{
		Seed:             *seed,
		Scale:            *scale,
		SkipC2Scan:       *skipC2,
		CacheModel:       *cache,
		ProbeTimeout:     *timeout,
		ProbeConcurrency: *probeConc,
		Workers:          *workers,
		Chaos:            chaosProf,
		ProbeRetries:     *retries,
		BreakerThreshold: *breaker,
		Metrics:          metrics,
	})
	manifestFailed := false
	if res != nil && *manifest != "" {
		if werr := res.Manifest("scfpipe").WriteFile(*manifest); werr != nil {
			log.Print(werr)
			manifestFailed = true
		} else {
			log.Printf("wrote manifest to %s", *manifest)
		}
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.RenderSummary())
	fmt.Println(core.RenderTable1())
	fmt.Println(res.RenderTable2())
	fmt.Println(res.RenderTable3())
	fmt.Println(res.RenderFigure3())
	fmt.Println(res.RenderFigure4())
	fmt.Println(res.RenderFigure5())
	fmt.Println(res.RenderFigure6())
	fmt.Println(res.RenderFigure7())
	fmt.Println(res.RenderDisclosures())
	fmt.Println(res.RenderStageTimings())
	if deg := res.RenderDegradations(); deg != "" {
		fmt.Println(deg)
	}
	fmt.Println(res.RenderMetrics())
	if manifestFailed {
		os.Exit(1)
	}
}

// Shared observability state: created up front so the introspection endpoint
// serves live data for the whole run, not a post-hoc copy.
var (
	metrics = obs.NewRegistry()
	trace   = obs.NewTrace()
)

func obsContext() context.Context {
	return obs.ContextWithTrace(context.Background(), trace)
}
