// Command scfpipe runs the paper's full measurement pipeline end to end on
// the synthetic substrate and prints the summary plus every table and
// figure of the evaluation.
//
// Usage:
//
//	scfpipe -seed 1 -scale 0.01
//	scfpipe -scale 0.05 -skip-c2        # faster: skip the fingerprint sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scfpipe: ")
	var (
		seed    = flag.Int64("seed", 1, "substrate seed")
		scale   = flag.Float64("scale", 0.01, "fraction of the paper's population")
		skipC2  = flag.Bool("skip-c2", false, "skip the C2 fingerprint sweep")
		cache   = flag.Bool("cache-model", false, "model resolver caching in PDNS counts")
		timeout = flag.Duration("probe-timeout", 2*time.Second, "per-request probe timeout")
	)
	flag.Parse()

	res, err := core.Run(core.Config{
		Seed:         *seed,
		Scale:        *scale,
		SkipC2Scan:   *skipC2,
		CacheModel:   *cache,
		ProbeTimeout: *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.RenderSummary())
	fmt.Println(core.RenderTable1())
	fmt.Println(res.RenderTable2())
	fmt.Println(res.RenderTable3())
	fmt.Println(res.RenderFigure3())
	fmt.Println(res.RenderFigure4())
	fmt.Println(res.RenderFigure5())
	fmt.Println(res.RenderFigure6())
	fmt.Println(res.RenderFigure7())
	fmt.Println(res.RenderDisclosures())
}
