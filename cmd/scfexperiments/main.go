// Command scfexperiments runs the full pipeline (including the C2
// fingerprint sweep) and emits the paper-vs-measured markdown record used
// as EXPERIMENTS.md.
//
// Usage:
//
//	scfexperiments -scale 0.05 > EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("scfexperiments: ")
	var (
		seed    = flag.Int64("seed", 1, "substrate seed")
		scale   = flag.Float64("scale", 0.05, "fraction of the paper's population")
		skipC2  = flag.Bool("skip-c2", false, "skip the C2 fingerprint sweep")
		timeout = flag.Duration("probe-timeout", 2*time.Second, "per-request probe timeout")
	)
	flag.Parse()

	res, err := core.Run(core.Config{
		Seed:         *seed,
		Scale:        *scale,
		SkipC2Scan:   *skipC2,
		ProbeTimeout: *timeout,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.RenderExperiments())
}
