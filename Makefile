# Developer entry points; CI and the verify flow run `make check`.

GO ?= go

.PHONY: build test race vet bench bench-json bench-matrix report prof timeline chaos gate health crash crash-full check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-run the packages with lock-free hot paths and shared counters,
# including the parallel substrate (emission workers, shard aggregators),
# the SLO health monitor, and the stage-boundary profile capturer.
race:
	$(GO) test -race ./internal/obs/... ./internal/runs/... ./internal/probe/... ./internal/dnssim/... ./internal/pdns/... ./internal/workload/... ./internal/fault/... ./internal/checkpoint/... ./internal/health/... ./internal/prof/...

vet:
	$(GO) vet ./...

# Tier-1 suite under the heavy fault-injection profile with the race detector:
# every pipeline test runs against a seeded schedule of DNS failures, resets,
# flapping/truncating endpoints, latency spikes, and feed corruption. Loosened
# chaos-aware gates apply automatically (the tests read SCF_CHAOS).
chaos:
	SCF_CHAOS=heavy $(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# Snapshot of the parallel-substrate benchmarks in both formats: the raw
# `go test -bench` text lands in BENCH_pipeline.txt (benchstat consumes it
# directly: `benchstat old.txt BENCH_pipeline.txt`), and scfruns parses it
# into structured BENCH_pipeline.json (`scfruns gate -bench-base old.json
# -bench-new BENCH_pipeline.json` gates on mean ns/op drift). The same parse
# appends one trajectory record to BENCH_history.jsonl, labeled with the
# current git revision — `scfruns report -history BENCH_history.jsonl`
# renders the resulting ns/op trajectory.
# The text and JSON snapshots derive from ONE captured `go test` output (no
# tee pipe, whose exit status would mask a bench failure), and the parse step
# errors out when the capture contains zero benchmark lines.
bench-json:
	$(GO) test -bench 'EmitPDNS|AggregateParallel|Top10Share|Table2Resolution|BatchCodec' \
		-benchmem -count=5 -run=^$$ ./... > BENCH_pipeline.txt 2>&1 \
		|| { cat BENCH_pipeline.txt; rm -f BENCH_pipeline.txt; exit 1; }
	cat BENCH_pipeline.txt
	$(GO) run ./cmd/scfruns bench -i BENCH_pipeline.txt -o BENCH_pipeline.json \
		-history BENCH_history.jsonl -label "$$(git rev-parse --short HEAD 2>/dev/null || echo local)"

# Scenario benchmark matrix: run the default {scale}×{workers}×{chaos} sweep
# through the full pipeline with the resource sampler on, one archive per
# cell under .runs/matrix/<cell-id>/. `make report` then renders the matrix,
# the bench capture, and the committed trajectory into PERF_REPORT.md —
# byte-identical across renders over the same archives.
bench-matrix:
	$(GO) run ./cmd/scfruns matrix -dir .runs

report:
	$(GO) run ./cmd/scfruns report -dir .runs \
		-bench BENCH_pipeline.json -history BENCH_history.jsonl -o PERF_REPORT.md
	@echo "wrote PERF_REPORT.md"

# Continuous profiling pass: run the golden configuration with -profile (the
# run ID and every deterministic fingerprint are unchanged by profiling, so
# this shares the gate's .runs slot), then render the CPU hotspot + stage
# attribution tables into PROF_HOTSPOTS.md. The rendering is deterministic
# for a fixed profile; the profile contents are machine-varying by design.
prof:
	$(GO) run ./cmd/scfpipe -seed 1 -scale 0.01 -workers 4 -chaos none -skip-c2 \
		-profile -run-dir .runs > /dev/null
	$(GO) run ./cmd/scfruns prof show -dir .runs -o PROF_HOTSPOTS.md r-3ed4ac535b0d
	@cat PROF_HOTSPOTS.md

# Telemetry timeline pass: run the golden configuration with the windowed
# recorder on (the timeline lands on the archive's machine-varying side, so
# the run ID and every deterministic fingerprint are unchanged and this
# shares the gate's .runs slot), then render the deterministic timeline
# table — window deltas, anomaly annotations, health breaches — into
# TIMELINE.md. A clean golden run annotates zero anomalies.
timeline:
	$(GO) run ./cmd/scfpipe -seed 1 -scale 0.01 -workers 4 -chaos none -skip-c2 \
		-timeline-interval 250ms -run-dir .runs > /dev/null
	$(GO) run ./cmd/scfruns timeline -dir .runs -o TIMELINE.md r-3ed4ac535b0d
	@cat TIMELINE.md

# Regression gate: archive a fresh run of the golden configuration and diff
# it against the committed baseline (internal/runs/testdata/golden). The
# deterministic dimensions — artifact fingerprints, calibration bands,
# degradation drift — gate at full strictness; the wall-clock tolerance is
# widened to 4x so slower machines don't fail on honest hardware differences.
gate: test
	$(GO) run ./cmd/scfpipe -seed 1 -scale 0.01 -workers 4 -chaos none -skip-c2 \
		-run-dir .runs > /dev/null
	$(GO) run ./cmd/scfruns gate -dir .runs -baseline internal/runs/testdata/golden -wall-tol 3 -quiet

# SLO health check: run the golden configuration with the streaming health
# monitor in strict mode. Exits non-zero if any rule fires (per-provider
# probe error rate or p99, breaker opens, feed drop/quarantine rates) — a
# clean seeded run is expected to stay inside every bound.
health:
	$(GO) run ./cmd/scfpipe -seed 1 -scale 0.01 -workers 4 -chaos none -skip-c2 \
		-no-archive -health-strict > /dev/null

# Crash-recovery matrix: kill the pipeline at every stage boundary and at
# mid-emission rows in a real subprocess, resume from the checkpoint, and
# require the resumed archive's deterministic half to be byte-identical to an
# uninterrupted run — plus the checkpoint codec and resume-path unit tests,
# all under the race detector. `crash-full` widens the matrix to the full
# crashpoint × workers cross product.
crash:
	$(GO) test -race -count=1 -run 'TestCrashResume|TestRunIDIgnoresCheckpointConfig' ./internal/core/ \
		&& $(GO) test -race -count=1 ./internal/checkpoint/... \
		&& $(GO) test -race -count=1 -run 'TestAggregateParallelCkpt' ./internal/workload/

crash-full:
	SCF_CRASH_FULL=1 $(GO) test -race -count=1 -run 'TestCrashResume' -timeout 30m ./internal/core/

# Tier-1 suite — what CI (.github/workflows/ci.yml) runs on every push/PR.
# bench-matrix/report stay out of check: they run the full pipeline once per
# matrix cell, which is an opt-in perf sweep, not a correctness gate.
# crash-full stays out for wall-time; the reduced crash matrix is in.
check: build vet test race gate crash
