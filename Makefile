# Developer entry points; CI and the verify flow run `make check`.

GO ?= go

.PHONY: build test race vet bench bench-json chaos check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-run the packages with lock-free hot paths and shared counters,
# including the parallel substrate (emission workers, shard aggregators).
race:
	$(GO) test -race ./internal/obs/... ./internal/probe/... ./internal/dnssim/... ./internal/pdns/... ./internal/workload/... ./internal/fault/...

vet:
	$(GO) vet ./...

# Tier-1 suite under the heavy fault-injection profile with the race detector:
# every pipeline test runs against a seeded schedule of DNS failures, resets,
# flapping/truncating endpoints, latency spikes, and feed corruption. Loosened
# chaos-aware gates apply automatically (the tests read SCF_CHAOS).
chaos:
	SCF_CHAOS=heavy $(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Benchstat-friendly snapshot of the parallel-substrate benchmarks: the raw
# `go test -bench` text (which benchstat consumes directly) is teed to
# BENCH_pipeline.json. Compare two snapshots with
# `benchstat old.json BENCH_pipeline.json`.
bench-json:
	$(GO) test -bench 'EmitPDNS|AggregateParallel|Top10Share|Table2Resolution' \
		-benchmem -count=5 -run=^$$ ./... 2>&1 | tee BENCH_pipeline.json

check: build vet test race
