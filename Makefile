# Developer entry points; CI and the verify flow run `make check`.

GO ?= go

.PHONY: build test race vet bench bench-json chaos gate check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-run the packages with lock-free hot paths and shared counters,
# including the parallel substrate (emission workers, shard aggregators).
race:
	$(GO) test -race ./internal/obs/... ./internal/runs/... ./internal/probe/... ./internal/dnssim/... ./internal/pdns/... ./internal/workload/... ./internal/fault/...

vet:
	$(GO) vet ./...

# Tier-1 suite under the heavy fault-injection profile with the race detector:
# every pipeline test runs against a seeded schedule of DNS failures, resets,
# flapping/truncating endpoints, latency spikes, and feed corruption. Loosened
# chaos-aware gates apply automatically (the tests read SCF_CHAOS).
chaos:
	SCF_CHAOS=heavy $(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Snapshot of the parallel-substrate benchmarks in both formats: the raw
# `go test -bench` text lands in BENCH_pipeline.txt (benchstat consumes it
# directly: `benchstat old.txt BENCH_pipeline.txt`), and scfruns parses it
# into structured BENCH_pipeline.json (`scfruns gate -bench-base old.json
# -bench-new BENCH_pipeline.json` gates on mean ns/op drift).
bench-json:
	$(GO) test -bench 'EmitPDNS|AggregateParallel|Top10Share|Table2Resolution' \
		-benchmem -count=5 -run=^$$ ./... 2>&1 | tee BENCH_pipeline.txt
	$(GO) run ./cmd/scfruns bench -i BENCH_pipeline.txt -o BENCH_pipeline.json

# Regression gate: archive a fresh run of the golden configuration and diff
# it against the committed baseline (internal/runs/testdata/golden). The
# deterministic dimensions — artifact fingerprints, calibration bands,
# degradation drift — gate at full strictness; the wall-clock tolerance is
# widened to 4x so slower machines don't fail on honest hardware differences.
gate: test
	$(GO) run ./cmd/scfpipe -seed 1 -scale 0.01 -workers 4 -chaos none -skip-c2 \
		-run-dir .runs > /dev/null
	$(GO) run ./cmd/scfruns gate -dir .runs -baseline internal/runs/testdata/golden -wall-tol 3 -quiet

check: build vet test race gate
