# Developer entry points; CI and the verify flow run `make check`.

GO ?= go

.PHONY: build test race vet bench bench-json check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-run the packages with lock-free hot paths and shared counters,
# including the parallel substrate (emission workers, shard aggregators).
race:
	$(GO) test -race ./internal/obs/... ./internal/probe/... ./internal/dnssim/... ./internal/pdns/... ./internal/workload/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# Benchstat-friendly snapshot of the parallel-substrate benchmarks: the raw
# `go test -bench` text (which benchstat consumes directly) is teed to
# BENCH_pipeline.json. Compare two snapshots with
# `benchstat old.json BENCH_pipeline.json`.
bench-json:
	$(GO) test -bench 'EmitPDNS|AggregateParallel|Top10Share|Table2Resolution' \
		-benchmem -count=5 -run=^$$ ./... 2>&1 | tee BENCH_pipeline.json

check: build vet test race
