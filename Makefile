# Developer entry points; CI and the verify flow run `make check`.

GO ?= go

.PHONY: build test race vet bench check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-run the packages with lock-free hot paths and shared counters.
race:
	$(GO) test -race ./internal/obs/... ./internal/probe/... ./internal/dnssim/...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

check: build vet test race
