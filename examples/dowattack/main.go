// Denial-of-Wallet: quantify the Finding 5 threat — a publicly accessible
// function lets any HTTP client run up the owner's bill. This example
// deploys an unprotected function, drives a short burst of unauthorised
// requests through the platform, meters the real usage, and projects the
// cost of sustained floods under the provider's price model.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/faas"
	"repro/internal/providers"
)

func main() {
	log.SetFlags(0)
	platform := faas.NewPlatform()
	t0 := time.Date(2024, time.April, 1, 0, 0, 0, 0, time.UTC)

	// A typical unprotected data-export function: 512 MB, ~200 ms per call,
	// public because the developer never changed the default.
	victim := platform.Deploy("export.lambda-url.us-east-1.on.aws", providers.AWS, "us-east-1",
		faas.Config{MemoryMB: 512, Access: faas.Public},
		func(ctx *faas.InvokeContext) faas.Response {
			return faas.Response{
				Status:  200,
				Headers: map[string]string{"Content-Type": "application/json", faas.DurationHeader: "200ms"},
				Body:    []byte(`{"export":"weekly-report","rows":120843}`),
			}
		}, t0)

	// Simulate one minute of unauthorised traffic at 50 rps.
	const rps = 50
	for i := 0; i < 60*rps; i++ {
		at := t0.Add(time.Duration(i) * time.Second / rps)
		if _, _, err := platform.Invoke(victim.FQDN, faas.Request{Method: "GET", Path: "/", Time: at}); err != nil {
			log.Fatal(err)
		}
	}
	m := victim.Meter()
	pm := faas.PriceFor(providers.AWS)
	fmt.Printf("observed burst: %d invocations, %.1f GB-s, %d cold starts\n",
		m.Invocations, m.GBSeconds, m.ColdStarts)
	fmt.Printf("burst cost (within free tier): $%.4f\n\n", m.Cost(pm))

	// Project sustained floods (paper: unexpected charges known as DoW).
	fmt.Println("projected Denial-of-Wallet exposure (512MB / 200ms function):")
	fmt.Printf("%-12s %-10s %14s %16s %22s\n", "rate", "duration", "invocations", "cost (USD)", "free tier gone after")
	for _, sc := range []struct {
		rps float64
		dur time.Duration
	}{
		{10, 24 * time.Hour},
		{100, 24 * time.Hour},
		{1000, 24 * time.Hour},
		{1000, 30 * 24 * time.Hour},
	} {
		est, err := faas.EstimateDoW(pm, faas.DoWParams{
			RequestsPerSecond: sc.rps,
			Duration:          sc.dur,
			MemoryMB:          512,
			ExecDuration:      200 * time.Millisecond,
		})
		if err != nil {
			log.Fatal(err)
		}
		gone := "never"
		if est.FreeTierExhaustedAfter > 0 {
			gone = est.FreeTierExhaustedAfter.Round(time.Minute).String()
		}
		fmt.Printf("%-12s %-10s %14d %16.2f %22s\n",
			fmt.Sprintf("%.0f rps", sc.rps), sc.dur, est.Invocations, est.CostUSD, gone)
	}

	fmt.Println("\nmitigation (paper §6): default IAM auth blocks the whole attack —")
	protected := platform.Deploy("safe.lambda-url.us-east-1.on.aws", providers.AWS, "us-east-1",
		faas.Config{MemoryMB: 512, Access: faas.IAMAuth},
		func(ctx *faas.InvokeContext) faas.Response {
			return faas.Response{Status: 200, Body: []byte("ok")}
		}, t0)
	resp, _, err := platform.Invoke(protected.FQDN, faas.Request{Method: "GET", Path: "/", Time: t0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unauthenticated request to IAM-protected function: HTTP %d (no compute billed: %.0f GB-s)\n",
		resp.Status, protected.Meter().GBSeconds)
}
