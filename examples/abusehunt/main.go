// Abuse hunt: deploy the simulated fleet behind a real HTTP edge, probe it
// with the ethical prober, sanitise the responses, and classify the four
// abuse scenarios of paper §5 — then show the resale-group clustering and
// the threat-intelligence gap.
package main

import (
	"fmt"
	"log"
	"time"

	divecloud "repro"

	"repro/internal/abuse"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	res, err := divecloud.Run(divecloud.Config{
		Seed:         11,
		Scale:        0.02, // ≈10,600 function domains, ≈12 abusive
		SkipC2Scan:   true,
		ProbeTimeout: time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.RenderTable3())

	// Which classifier evidence led to each verdict?
	fmt.Println("Sample verdicts with evidence:")
	shown := 0
	for fqdn, vs := range res.Verdicts {
		v, _ := abuse.Primary(vs)
		fmt.Printf("  %-60s %-24s %v\n", fqdn, v.Case, v.Evidence)
		if len(v.Targets) > 0 {
			fmt.Printf("  %-60s -> redirect targets: %v\n", "", v.Targets)
		}
		shown++
		if shown >= 8 {
			break
		}
	}

	// Group affiliation via shared contact handles (§5.3).
	fmt.Println("\nResale groups (shared contact handles):")
	for _, g := range res.ResaleGroups {
		fmt.Printf("  %-28s %d functions\n", g.Contact, len(g.Functions))
	}

	// Finding 10: threat intelligence barely knows about any of it.
	fmt.Printf("\nThreat-intel coverage: %d/%d abused functions flagged (%s; paper: 4/594 = 0.67%%)\n",
		res.TICoverage.Flagged, res.TICoverage.Total, report.Pct(res.TICoverage.Rate()))

	// Sensitive-data exposure from unauthorised access (§5).
	fmt.Printf("\nSensitive findings in public responses: %d total\n", res.SecretsCensus.Total())
	fmt.Printf("probe campaign: %d probed, %d unreachable, %d via HTTPS\n",
		res.ProbeStats.Probed, res.ProbeStats.Unreachable, res.ProbeStats.HTTPSOnly)
}
