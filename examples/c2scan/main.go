// C2 scan: demonstrate the fingerprint-based detection of covert C2 relays
// (paper §5.1) against live TCP listeners. Two simulated endpoints are
// stood up — one relaying a Cobalt Strike-like C2, one a clean 404 server —
// and the scanner probes both with all 26 family signatures.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/c2"
)

func main() {
	log.SetFlags(0)
	db := c2.DefaultDB()
	fmt.Printf("fingerprint corpus: %d signatures across %d families\n\n", db.Len(), db.Families())

	// A cloud function hiding a C2 server (Algorithm 1 in the paper): it
	// answers its family's beacon protocol and 404s everything else.
	relay, err := c2.NewRelay(db, c2.FamilyCobaltStrike)
	if err != nil {
		log.Fatal(err)
	}
	defer relay.Close()

	// A benign function for contrast.
	clean, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer clean.Close()
	go serve404(clean)

	scanner := c2.NewScanner(db)
	scanner.Timeout = 2 * time.Second

	scan := func(label, addr, host string) {
		scanner.Dial = func(ctx context.Context, network, _ string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		}
		ds := scanner.ScanHost(context.Background(), host)
		fmt.Printf("%s (%s):\n", label, host)
		if len(ds) == 0 {
			fmt.Println("  no C2 fingerprints matched")
		}
		for _, d := range ds {
			fmt.Printf("  MATCH family=%s fingerprint=%s port=%d\n", d.Family, d.Fingerprint, d.Port)
		}
		fmt.Println()
	}

	scan("suspected relay", relay.Addr(), "1234567890-h3xkf92a1b-ap-guangzhou.scf.tencentcs.com")
	scan("benign function", clean.Addr().String(), "api-demo-x7gk29slq1-uc.a.run.app")

	fmt.Println("The relay only reveals itself to family-specific probes; a plain GET")
	fmt.Println("sees a 404, which is why content review alone misses C2 abuse.")
}

func serve404(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func(c net.Conn) {
			defer c.Close()
			c.SetDeadline(time.Now().Add(2 * time.Second))
			buf := make([]byte, 4096)
			c.Read(buf)
			c.Write([]byte("HTTP/1.1 404 Not Found\r\nContent-Length: 9\r\nConnection: close\r\n\r\nNot Found"))
		}(conn)
	}
}
