// Event pipeline: exercise the non-HTTP invocation paths of paper §2.2 —
// storage events, message queues, and scheduled tasks — and show why they
// sit outside the study's measurement boundary: event-triggered functions
// expose no function URL, so passive DNS and active probing never see them.
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"time"

	"repro/internal/events"
	"repro/internal/faas"
	"repro/internal/providers"
)

func main() {
	log.SetFlags(0)
	platform := faas.NewPlatform()
	t0 := time.Date(2024, time.February, 1, 8, 0, 0, 0, time.UTC)

	// An image-thumbnailing pipeline: upload -> storage trigger -> queue of
	// resize jobs -> worker -> nightly cleanup schedule.
	queue := events.NewQueue()

	platform.Deploy("internal://on-upload", providers.Google2, "us-central1", faas.Config{},
		func(ctx *faas.InvokeContext) faas.Response {
			var ev events.Event
			json.Unmarshal(ctx.Request.Body, &ev)
			var detail struct {
				Key  string `json:"key"`
				Size int    `json:"size"`
			}
			json.Unmarshal(ev.Detail, &detail)
			queue.Send([]byte("resize:" + detail.Key))
			fmt.Printf("  [storage->fn] %s uploaded (%d bytes), resize job queued\n", detail.Key, detail.Size)
			return faas.Response{Status: 200}
		}, t0)

	var resized []string
	platform.Deploy("internal://resizer", providers.Google2, "us-central1", faas.Config{},
		func(ctx *faas.InvokeContext) faas.Response {
			var ev events.Event
			json.Unmarshal(ctx.Request.Body, &ev)
			var job string
			json.Unmarshal(ev.Detail, &job)
			resized = append(resized, job)
			fmt.Printf("  [queue->fn]   processed %q\n", job)
			return faas.Response{Status: 200}
		}, t0)

	ticks := 0
	platform.Deploy("internal://nightly-cleanup", providers.Google2, "us-central1", faas.Config{},
		func(ctx *faas.InvokeContext) faas.Response {
			ticks++
			return faas.Response{Status: 200}
		}, t0)

	store := events.NewStorage()
	store.OnObjectCreated(events.Target{Platform: platform, Name: "internal://on-upload"})
	queue.Subscribe(events.Target{Platform: platform, Name: "internal://resizer"})
	sched := events.NewScheduler()
	if err := sched.Every(24*time.Hour, t0, events.Target{Platform: platform, Name: "internal://nightly-cleanup"}); err != nil {
		log.Fatal(err)
	}

	fmt.Println("uploading three photos:")
	for i, name := range []string{"cat.jpg", "dog.jpg", "fox.jpg"} {
		if err := store.Put("photos/"+name, make([]byte, 1000*(i+1)), t0.Add(time.Duration(i)*time.Minute)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("\ndraining the resize queue:")
	queue.Poll(10, t0.Add(5*time.Minute))

	fmt.Println("\nadvancing the simulated clock one week:")
	fired := sched.AdvanceTo(t0.Add(7 * 24 * time.Hour))
	fmt.Printf("  [schedule]    nightly cleanup fired %d times (ticks recorded: %d)\n", fired, ticks)

	fmt.Printf("\npipeline results: %d thumbnails, queue stats %+v\n", len(resized), queue.Stats())

	// The measurement boundary (paper §2.2): none of these functions has a
	// function URL, so the study's identification step cannot see them.
	m := providers.NewMatcher(nil)
	fmt.Println("\nmeasurement visibility of the pipeline's functions:")
	for _, name := range []string{"internal://on-upload", "internal://resizer", "internal://nightly-cleanup"} {
		_, visible := m.Identify(name)
		fmt.Printf("  %-28s visible to PDNS identification: %v\n", name, visible)
	}
	fmt.Println("\nonly functions with HTTP(S) endpoints enter the paper's dataset —")
	fmt.Println("event-triggered workloads are structurally invisible to external measurement.")
}
