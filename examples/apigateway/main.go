// API gateway: exercise the second HTTP invocation path of paper §2.2 — a
// generated REST API fronting a cloud function with caching, rate limiting
// and custom authentication — and demonstrate why the study had to exclude
// gateways from measurement (§3.5): their domains match no function-URL
// pattern and the same gateway fronts non-function backends.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	divecloud "repro"

	"repro/internal/apigw"
	"repro/internal/faas"
	"repro/internal/providers"
)

func main() {
	log.SetFlags(0)
	t0 := time.Date(2024, time.March, 1, 10, 0, 0, 0, time.UTC)
	platform := faas.NewPlatform()
	fn := platform.Deploy("quote.lambda-url.us-east-1.on.aws", providers.AWS, "us-east-1",
		faas.Config{MemoryMB: 256},
		func(ctx *faas.InvokeContext) faas.Response {
			return faas.Response{
				Status:  200,
				Headers: map[string]string{"Content-Type": "application/json", faas.DurationHeader: "120ms"},
				Body:    []byte(`{"quote":"simplicity is prerequisite for reliability"}`),
			}
		}, t0)

	gw := apigw.New(rand.New(rand.NewSource(1)), "us-east-1", "prod")
	fmt.Printf("generated REST API: https://%s/%s\n\n", gw.Domain, gw.Stage)

	gw.Bind(&apigw.Route{
		Method:  "GET",
		Path:    "/quote",
		Backend: &apigw.FunctionBackend{Platform: platform, FQDN: fn.FQDN},
		// The advanced features the paper attributes to gateways:
		CacheTTL:  time.Minute,
		RateLimit: 5,
		Auth:      apigw.APIKeyAuth("demo-key-123"),
	})
	gw.Bind(&apigw.Route{
		Method:  "GET",
		Path:    "/legacy/*",
		Backend: &apigw.StaticBackend{Status: 200, ContentType: "text/plain", Body: []byte("served by a VM, not a function")},
	})

	call := func(label string, req faas.Request, client string) {
		resp, err := gw.Dispatch(client, req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-34s -> %d %s\n", label, resp.Status, trunc(resp.Body))
	}

	fmt.Println("custom authentication:")
	call("GET /quote without key", faas.Request{Method: "GET", Path: "/quote", Time: t0}, "alice")
	withKey := map[string]string{"X-Api-Key": "demo-key-123"}
	call("GET /quote with key", faas.Request{Method: "GET", Path: "/quote", Headers: withKey, Time: t0}, "alice")

	fmt.Println("\nresponse caching (backend invoked once):")
	call("GET /quote again (cache hit)", faas.Request{Method: "GET", Path: "/quote", Headers: withKey, Time: t0.Add(5 * time.Second)}, "alice")
	fmt.Printf("  backend invocations: %d, gateway cache hits: %d\n", fn.Meter().Invocations, gw.Meter().CacheHits)

	fmt.Println("\nrate limiting (burst 5/s):")
	throttled := 0
	for i := 0; i < 8; i++ {
		resp, _ := gw.Dispatch("bob", faas.Request{Method: "GET", Path: "/quote", Headers: withKey, Time: t0.Add(time.Minute * 2)})
		if resp.Status == 429 {
			throttled++
		}
	}
	fmt.Printf("  8 rapid calls by one client: %d throttled with 429\n", throttled)

	fmt.Println("\nmixed backends behind one gateway:")
	call("GET /legacy/orders", faas.Request{Method: "GET", Path: "/legacy/orders", Time: t0}, "carol")

	fmt.Println("\nwhy the study excluded gateways (§3.5):")
	if _, ok := divecloud.IdentifyFQDN(gw.Domain); !ok {
		fmt.Printf("  %s matches no function-URL pattern — invisible to PDNS identification\n", gw.Domain)
	}
	fmt.Println("  and the /legacy route proves a gateway response implies nothing serverless.")

	m := gw.Meter()
	fmt.Printf("\ngateway meter: %d calls ($%.6f at $3.50/M), %d throttled, %d auth denials\n",
		m.Calls, m.Cost(), m.Throttled, m.AuthDenied)
}

func trunc(b []byte) string {
	s := string(b)
	if len(s) > 48 {
		return s[:48] + "…"
	}
	return s
}
