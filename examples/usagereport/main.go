// Usage report: reproduce the paper's §4 usage analysis — identification
// from passive DNS, adoption trends, invocation distribution, and lifespan
// statistics — without any active probing. This is the workload a PDNS
// operator could run entirely offline.
package main

import (
	"fmt"
	"log"

	divecloud "repro"

	"repro/internal/analysis"
	"repro/internal/pdns"
	"repro/internal/report"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)
	const (
		seed  = 7
		scale = 0.01
	)

	// Stream the two-year synthetic PDNS feed straight into the aggregator
	// (paper §3.2): nothing is ever resident but the per-FQDN rollups.
	w := workload.Window()
	agg := pdns.NewAggregator(nil, w.Start, w.End)
	var records int64
	err := divecloud.GeneratePDNS(seed, scale, func(r *divecloud.Record) error {
		agg.Add(r)
		records++
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	ag := agg.Finish()
	fmt.Printf("scanned %s PDNS records -> %s function domains, %s requests\n\n",
		report.Count(records),
		report.Count(int64(ag.TotalDomains())),
		report.Count(ag.TotalRequests()))

	// Figure 3: adoption trend.
	monthly := analysis.NewFQDNsByMonth(ag)
	fig := report.NewFigure("Monthly newly observed function FQDNs (Figure 3)")
	var pts []report.Point
	for _, p := range monthly {
		pts = append(pts, report.Point{Label: p.Month.String()[:7], Value: float64(p.Value)})
	}
	fig.Add("new FQDNs", pts)
	for _, ev := range analysis.Events() {
		fig.Annotate(ev.Month.String()[:7], ev.Label)
	}
	fmt.Println(fig.String())

	// §4.3: invocation distribution and lifespans over functions whose
	// domain uniquely identifies one function (Google/IBM/Oracle excluded).
	perFn := ag.PerFunctionStats()
	freq := analysis.Frequency(perFn)
	life := analysis.Lifespan(perFn, w)
	fmt.Printf("functions analysed: %d\n", freq.Functions)
	fmt.Printf("invoked <5 times: %s (paper: 78.14%%)\n", report.Pct(freq.FracUnder5))
	fmt.Printf("invoked >100 times: %s (paper: 7.87%%)\n", report.Pct(freq.FracOver100))
	fmt.Printf("single-day lifespan: %s (paper: 81.30%%)\n", report.Pct(life.FracSingleDay))
	fmt.Printf("lifespan <5 days: %s (paper: 83.94%%)\n", report.Pct(life.FracUnder5Days))
	fmt.Printf("mean lifespan: %.2f days (paper: 21.44)\n", life.MeanDays)
	fmt.Printf("activity density p=1: %s (paper: 83.01%%)\n", report.Pct(life.FracDensityOne))

	// Table 2 rollup.
	fmt.Println()
	t := report.NewTable("Per-provider usage (Table 2)", "Provider", "Domains", "Requests", "Regions", "A%", "CNAME%", "AAAA%")
	for _, row := range analysis.Table2(ag) {
		t.AddRow(row.Provider.String(), row.Domains, report.Count(row.Requests), row.Regions,
			report.Pct(row.AShare), report.Pct(row.CNAMEShare), report.Pct(row.AAAAShare))
	}
	fmt.Println(t.String())
}
