// Quickstart: run the full measurement pipeline at a small scale and print
// the headline findings — the one-screen version of the paper.
package main

import (
	"fmt"
	"log"
	"time"

	divecloud "repro"
)

func main() {
	log.SetFlags(0)
	res, err := divecloud.Run(divecloud.Config{
		Seed:         1,
		Scale:        0.005, // ≈2,650 of the paper's 531k function domains
		SkipC2Scan:   true,  // the fingerprint sweep dominates runtime; see examples/c2scan
		ProbeTimeout: time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.RenderSummary())
	fmt.Println(res.RenderTable3())

	start, end := divecloud.Window()
	fmt.Printf("measurement window: %s .. %s\n", start, end)

	// The provider registry is available without running anything.
	fmt.Println()
	fmt.Println(divecloud.RenderTable1())
}
