package providers

import (
	"fmt"
	"math/rand"
	"strings"
)

// Spec carries the user-controlled components of a function URL. Fields that
// a provider's format does not use are ignored when generating its domain.
type Spec struct {
	FunctionName string // [FName]
	ProjectName  string // [PName]
	UserID       string // [UserID] (Tencent: 10-digit account ID)
	Region       string // [Region]; must be one of the provider's regions
	Random       string // [Random]; generated when empty
}

const (
	lowerAlnum = "abcdefghijklmnopqrstuvwxyz0123456789"
	lowerAlpha = "abcdefghijklmnopqrstuvwxyz"
	digits     = "0123456789"
)

// randString draws n characters from alphabet using rng.
func randString(rng *rand.Rand, alphabet string, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// RandomToken returns a random component in the provider's native shape:
// length and alphabet differ per provider (e.g. Aliyun uses 10 lowercase
// letters, Baidu 13 lowercase alphanumerics, AWS a 32-char URL-safe ID).
func (in *Info) RandomToken(rng *rand.Rand) string {
	switch in.ID {
	case Aliyun:
		return randString(rng, lowerAlpha, 10)
	case Baidu:
		return randString(rng, lowerAlnum, 13)
	case Tencent, Google2:
		return randString(rng, lowerAlnum, 10)
	case Kingsoft:
		return randString(rng, lowerAlnum, 12)
	case AWS:
		return randString(rng, lowerAlnum, 32)
	case Oracle:
		return randString(rng, lowerAlnum, 11)
	default:
		return randString(rng, lowerAlnum, 10)
	}
}

// Domain builds the function FQDN for the given spec. The result always
// matches the provider's Table 1 regular expression; Generate-style callers
// should fill Spec.Random via RandomToken for realistic values.
func (in *Info) Domain(spec Spec) (string, error) {
	if spec.Region == "" && in.usesRegion() {
		return "", fmt.Errorf("providers: %s domain requires a region", in.Name)
	}
	switch in.ID {
	case Aliyun:
		if spec.FunctionName == "" || spec.ProjectName == "" {
			return "", fmt.Errorf("providers: Aliyun domain requires FunctionName and ProjectName")
		}
		return fmt.Sprintf("%s-%s-%s.%s.fcapp.run",
			sanitizeLabel(spec.FunctionName), sanitizeLabel(spec.ProjectName),
			spec.Random, spec.Region), nil
	case Baidu:
		return fmt.Sprintf("%s.cfc-execute.%s.baidubce.com", spec.Random, spec.Region), nil
	case Tencent:
		if len(spec.UserID) != 10 || strings.Trim(spec.UserID, digits) != "" {
			return "", fmt.Errorf("providers: Tencent domain requires a 10-digit UserID, got %q", spec.UserID)
		}
		return fmt.Sprintf("%s-%s-%s.scf.tencentcs.com", spec.UserID, spec.Random, spec.Region), nil
	case Kingsoft:
		return fmt.Sprintf("%s-%s.ksyuncf.com", spec.Random, spec.Region), nil
	case AWS:
		return fmt.Sprintf("%s.lambda-url.%s.on.aws", spec.Random, spec.Region), nil
	case Google:
		if spec.ProjectName == "" {
			return "", fmt.Errorf("providers: Google domain requires ProjectName")
		}
		return fmt.Sprintf("%s-%s.cloudfunctions.net", spec.Region, sanitizeLabel(spec.ProjectName)), nil
	case Google2:
		if spec.FunctionName == "" {
			return "", fmt.Errorf("providers: Google2 domain requires FunctionName")
		}
		// Gen-2 embeds a compact region token (e.g. "uc" for us-central1);
		// we keep the full region id, which the Table 1 regex also accepts.
		return fmt.Sprintf("%s-%s-%s.a.run.app",
			sanitizeLabel(spec.FunctionName), spec.Random, compactGoogleRegion(spec.Region)), nil
	case IBM:
		return fmt.Sprintf("%s.functions.appdomain.cloud", spec.Region), nil
	case Oracle:
		return fmt.Sprintf("%s.%s.functions.oci.oraclecloud.com", spec.Random, spec.Region), nil
	case Azure:
		if spec.ProjectName == "" {
			return "", fmt.Errorf("providers: Azure domain requires ProjectName")
		}
		return fmt.Sprintf("%s.azurewebsites.net", sanitizeLabel(spec.ProjectName)), nil
	default:
		return "", fmt.Errorf("providers: unknown provider %d", int(in.ID))
	}
}

// URL builds the full invocation URL (scheme https, Table 1 path).
func (in *Info) URL(spec Spec) (string, error) {
	dom, err := in.Domain(spec)
	if err != nil {
		return "", err
	}
	switch in.ID {
	case Google:
		return "https://" + dom + "/" + sanitizeLabel(spec.FunctionName), nil
	case IBM, Oracle:
		return "https://" + dom + "/api/v1/web/ns/default/" + sanitizeLabel(spec.FunctionName), nil
	case Azure:
		return "https://" + dom + "/api/" + sanitizeLabel(spec.FunctionName) + "?code=" + spec.Random, nil
	default:
		return "https://" + dom + "/", nil
	}
}

func (in *Info) usesRegion() bool { return in.ID != Azure }

// sanitizeLabel lowercases s and squeezes characters that are not legal in a
// DNS label into hyphens, trimming leading/trailing hyphens.
func sanitizeLabel(s string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

// compactGoogleRegion keeps the generated gen-2 domains shaped like real
// a.run.app hosts, which use a short region token. The token must not contain
// characters outside [a-z0-9-].
func compactGoogleRegion(region string) string {
	return strings.ReplaceAll(region, ".", "-")
}

// Generate mints a plausible random function domain for the provider. FName,
// PName, and UserID components are synthesised from the rng; the region is
// drawn uniformly from the provider's region list unless region is non-empty.
func (in *Info) Generate(rng *rand.Rand, region string) string {
	if region == "" {
		region = in.Regions[rng.Intn(len(in.Regions))]
	}
	spec := Spec{
		FunctionName: genWord(rng),
		ProjectName:  genWord(rng),
		UserID:       "1" + randString(rng, digits, 9),
		Region:       region,
		Random:       in.RandomToken(rng),
	}
	dom, err := in.Domain(spec)
	if err != nil {
		// All fields are populated, so errors indicate a registry bug.
		panic(fmt.Sprintf("providers: Generate(%s): %v", in.Name, err))
	}
	return dom
}

// genWord synthesises a pronounceable identifier, the kind developers use
// for function and project names. Numeric suffixes appear often and range
// widely so that large generated populations rarely collide (callers that
// need global uniqueness still deduplicate).
func genWord(rng *rand.Rand) string {
	syllables := []string{
		"api", "app", "auth", "bot", "cdn", "chat", "data", "dev", "fn",
		"gate", "hook", "img", "job", "log", "mail", "meta", "node", "pay",
		"png", "prod", "proxy", "push", "svc", "task", "test", "web", "worker",
	}
	w := syllables[rng.Intn(len(syllables))]
	if rng.Intn(2) == 0 {
		w += "-" + syllables[rng.Intn(len(syllables))]
	}
	switch rng.Intn(3) {
	case 0:
		w += fmt.Sprintf("%d", rng.Intn(100))
	case 1:
		w += fmt.Sprintf("-%06d", rng.Intn(1_000_000))
	}
	return w
}
