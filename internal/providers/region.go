package providers

import (
	"strings"
)

// Region extracts the region component of a function FQDN, or "" when the
// provider's format does not embed one (or the FQDN does not match the
// provider's pattern). It returns exactly Parse(fqdn).Region — the
// per-format equivalence is pinned by TestRegionMatchesParse — but only
// ever returns substrings of the input, so the aggregation hot path can
// resolve regions without Parse's per-component allocations.
func (in *Info) Region(fqdn string) string {
	fqdn = strings.ToLower(strings.TrimSuffix(fqdn, "."))
	if !in.re.MatchString(fqdn) {
		return ""
	}
	host := trimDotSuffix(fqdn, in.DomainSuffix)
	switch in.ID {
	case Aliyun:
		// [FName]-[PName]-[Random].[Region]
		dot := strings.LastIndexByte(host, '.')
		if dot < 0 || len(host[:dot]) < 12 {
			return ""
		}
		return host[dot+1:]
	case Baidu, AWS:
		// [Random].cfc-execute.[Region] / [Random].lambda-url.[Region]
		return afterNthDot(host, 2)
	case Tencent:
		// [UserID]-[Random]-[Region]
		if len(host) < 22 {
			return ""
		}
		return host[22:]
	case Kingsoft:
		// [Random]-[Region] where Region is a fixed enum.
		for _, r := range in.Regions {
			if n := len(host) - len(r); n > 0 && host[n-1] == '-' && host[n:] == r {
				return r
			}
		}
		return ""
	case Google:
		// [Region]-[PName] with Region a known gen-1 region id, falling
		// back to the first two labels like Parse does.
		for _, r := range in.Regions {
			if len(host) > len(r) && host[len(r)] == '-' && host[:len(r)] == r {
				return r
			}
		}
		if i := strings.IndexByte(host, '-'); i >= 0 {
			if j := strings.IndexByte(host[i+1:], '-'); j >= 0 {
				return host[:i+1+j]
			}
		}
		return ""
	case Google2:
		// [FName]-[Random]-[Region]: everything after the rightmost
		// interior 10-char alnum token — a suffix of host, so no Join.
		end := strings.LastIndexByte(host, '-')
		for end > 0 {
			start := strings.LastIndexByte(host[:end], '-') + 1
			if start == 0 {
				break
			}
			if end-start == 10 && isLowerAlnum(host[start:end]) {
				return host[end+1:]
			}
			end = start - 1
		}
		return ""
	case IBM:
		return host
	case Oracle:
		// [Random].[Region].functions
		return betweenDots(host)
	default: // Azure and any future format without an embedded region
		return ""
	}
}

// trimDotSuffix removes "."+suffix from the end of s without building the
// concatenated needle.
func trimDotSuffix(s, suffix string) string {
	n := len(s) - len(suffix)
	if n > 0 && s[n-1] == '.' && s[n:] == suffix {
		return s[:n-1]
	}
	return s
}

// afterNthDot returns the substring after the n-th '.', or "" when s has
// fewer dots — mirroring the SplitN arity checks in Parse.
func afterNthDot(s string, n int) string {
	for ; n > 0; n-- {
		i := strings.IndexByte(s, '.')
		if i < 0 {
			return ""
		}
		s = s[i+1:]
	}
	return s
}

// betweenDots returns the substring between the first and second '.', or ""
// when s has fewer than two dots.
func betweenDots(s string) string {
	i := strings.IndexByte(s, '.')
	if i < 0 {
		return ""
	}
	rest := s[i+1:]
	j := strings.IndexByte(rest, '.')
	if j < 0 {
		return ""
	}
	return rest[:j]
}
