package providers

// Region lists per provider. The list lengths match the "Regions" column of
// the paper's Table 2 (the set of regions actually observed in the PDNS
// data): Aliyun 21, Baidu 3, Tencent 22, Kingsoft 2, AWS 22, Google 37,
// Google2 37, IBM 6, Oracle 5. Region identifiers follow each provider's real
// naming scheme because they are embedded in function domains and parsed back
// out during analysis (paper §4.2).

var aliyunRegions = []string{
	"cn-hangzhou", "cn-shanghai", "cn-qingdao", "cn-beijing", "cn-zhangjiakou",
	"cn-huhehaote", "cn-shenzhen", "cn-chengdu", "cn-hongkong",
	"ap-southeast-1", "ap-southeast-2", "ap-southeast-3", "ap-southeast-5",
	"ap-southeast-7", "ap-northeast-1", "ap-northeast-2", "eu-central-1",
	"eu-west-1", "us-west-1", "us-east-1", "ap-south-1",
}

// Baidu functions are concentrated in three Chinese cities (paper §4.2:
// Beijing, Shenzhen, Suzhou), labelled bj, gz and su in function domains.
var baiduRegions = []string{"bj", "gz", "su"}

var tencentRegions = []string{
	"ap-beijing", "ap-chengdu", "ap-chongqing", "ap-guangzhou", "ap-shanghai",
	"ap-nanjing", "ap-hongkong", "ap-mumbai", "ap-seoul", "ap-singapore",
	"ap-bangkok", "ap-tokyo", "ap-jakarta", "eu-frankfurt", "eu-moscow",
	"na-ashburn", "na-siliconvalley", "na-toronto", "sa-saopaulo",
	"ap-shenzhen-fsi", "ap-shanghai-fsi", "ap-beijing-fsi",
}

var kingsoftRegions = []string{"eu-east-1", "cn-beijing-6"}

var awsRegions = []string{
	"us-east-1", "us-east-2", "us-west-1", "us-west-2",
	"af-south-1", "ap-east-1", "ap-south-1", "ap-northeast-1",
	"ap-northeast-2", "ap-northeast-3", "ap-southeast-1", "ap-southeast-2",
	"ap-southeast-3", "ca-central-1", "eu-central-1", "eu-west-1",
	"eu-west-2", "eu-west-3", "eu-north-1", "eu-south-1",
	"me-south-1", "sa-east-1",
}

// googleRegions is shared by both Google generations (37 regions). Gen-1
// domains embed the region as the leading label ("us-central1-<project>"),
// gen-2 domains embed a region token after the random string.
var googleRegions = []string{
	"asia-east1", "asia-east2", "asia-northeast1", "asia-northeast2",
	"asia-northeast3", "asia-south1", "asia-south2", "asia-southeast1",
	"asia-southeast2", "australia-southeast1", "australia-southeast2",
	"europe-central2", "europe-north1", "europe-southwest1", "europe-west1",
	"europe-west2", "europe-west3", "europe-west4", "europe-west6",
	"europe-west8", "europe-west9", "europe-west10", "europe-west12",
	"us-west4", "asia-southeast3", "northamerica-northeast1",
	"northamerica-northeast2", "southamerica-east1", "southamerica-west1",
	"us-central1", "us-east1", "us-east4", "us-east5", "us-south1",
	"us-west1", "us-west2", "us-west3",
}

var ibmRegions = []string{"us-south", "us-east", "eu-gb", "eu-de", "jp-tok", "au-syd"}

var oracleRegions = []string{
	"ap-tokyo-1", "us-ashburn-1", "eu-frankfurt-1", "uk-london-1", "ap-seoul-1",
}

var azureRegions = []string{"eastus", "westeurope", "southeastasia", "chinanorth"}

// ChinaRegion reports whether a region identifier denotes a mainland-China
// region. Used by the geo-bypass proxy analysis (paper §5.4): abusive proxy
// functions are deployed outside China so their egress IPs clear the GFW.
func ChinaRegion(region string) bool {
	switch {
	case len(region) >= 3 && region[:3] == "cn-":
		return true
	case region == "bj" || region == "gz" || region == "su":
		return true
	case region == "chinanorth" || region == "chinaeast":
		return true
	}
	// Tencent mainland regions are ap-<chinese city>.
	switch region {
	case "ap-beijing", "ap-chengdu", "ap-chongqing", "ap-guangzhou",
		"ap-shanghai", "ap-nanjing", "ap-shenzhen-fsi", "ap-shanghai-fsi",
		"ap-beijing-fsi":
		return true
	}
	return false
}
