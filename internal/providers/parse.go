package providers

import (
	"strings"
)

// Parsed holds the components recovered from a function FQDN. Components the
// provider's format does not embed are left empty.
type Parsed struct {
	Provider     ID
	FunctionName string
	ProjectName  string
	UserID       string
	Region       string
	Random       string
}

// Parse decomposes a function FQDN previously matched by this provider's
// pattern. It returns ok=false if the FQDN does not match.
func (in *Info) Parse(fqdn string) (Parsed, bool) {
	fqdn = strings.ToLower(strings.TrimSuffix(fqdn, "."))
	if !in.re.MatchString(fqdn) {
		return Parsed{}, false
	}
	p := Parsed{Provider: in.ID}
	host := strings.TrimSuffix(fqdn, "."+in.DomainSuffix)
	switch in.ID {
	case Aliyun:
		// [FName]-[PName]-[Random].[Region]
		dot := strings.LastIndexByte(host, '.')
		if dot < 0 {
			return Parsed{}, false
		}
		p.Region = host[dot+1:]
		prefix := host[:dot]
		// Random is the trailing 10-letter token.
		if len(prefix) < 12 {
			return Parsed{}, false
		}
		p.Random = prefix[len(prefix)-10:]
		rest := strings.TrimSuffix(prefix[:len(prefix)-10], "-")
		if i := strings.LastIndexByte(rest, '-'); i >= 0 {
			p.FunctionName, p.ProjectName = rest[:i], rest[i+1:]
		} else {
			p.FunctionName = rest
		}
	case Baidu:
		// [Random].cfc-execute.[Region]
		parts := strings.SplitN(host, ".", 3)
		if len(parts) != 3 {
			return Parsed{}, false
		}
		p.Random, p.Region = parts[0], parts[2]
	case Tencent:
		// [UserID]-[Random]-[Region]
		if len(host) < 22 {
			return Parsed{}, false
		}
		p.UserID = host[:10]
		p.Random = host[11:21]
		p.Region = host[22:]
	case Kingsoft:
		// [Random]-[Region] where Region is a fixed enum.
		for _, r := range in.Regions {
			if strings.HasSuffix(host, "-"+r) {
				p.Region = r
				p.Random = strings.TrimSuffix(host, "-"+r)
				break
			}
		}
	case AWS:
		// [Random].lambda-url.[Region]
		parts := strings.SplitN(host, ".", 3)
		if len(parts) != 3 {
			return Parsed{}, false
		}
		p.Random, p.Region = parts[0], parts[2]
	case Google:
		// [Region]-[PName] where Region is a known gen-1 region id.
		for _, r := range in.Regions {
			if strings.HasPrefix(host, r+"-") {
				p.Region = r
				p.ProjectName = host[len(r)+1:]
				break
			}
		}
		if p.Region == "" {
			// The Table 1 regex only pins the continent prefix; keep the
			// first two labels as a best-effort region.
			if i := strings.IndexByte(host, '-'); i >= 0 {
				if j := strings.IndexByte(host[i+1:], '-'); j >= 0 {
					p.Region = host[:i+1+j]
					p.ProjectName = host[i+j+2:]
				}
			}
		}
	case Google2:
		// [FName]-[Random]-[Region]
		// Random is a 10-char alnum token; find it from the right so that
		// hyphens in FName do not confuse the split.
		labels := strings.Split(host, "-")
		for i := len(labels) - 2; i >= 1; i-- {
			if len(labels[i]) == 10 && isLowerAlnum(labels[i]) {
				p.FunctionName = strings.Join(labels[:i], "-")
				p.Random = labels[i]
				p.Region = strings.Join(labels[i+1:], "-")
				break
			}
		}
	case IBM:
		p.Region = host
	case Oracle:
		// [Random].[Region].functions
		parts := strings.SplitN(host, ".", 3)
		if len(parts) != 3 {
			return Parsed{}, false
		}
		p.Random, p.Region = parts[0], parts[1]
	case Azure:
		p.ProjectName = host
	}
	return p, true
}

func isLowerAlnum(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < 'a' || c > 'z') && (c < '0' || c > '9') {
			return false
		}
	}
	return len(s) > 0
}
