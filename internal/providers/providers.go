// Package providers defines the serverless cloud function providers studied
// in the paper, together with their function-URL formats, the domain regular
// expressions used to identify function FQDNs in passive DNS data, and
// helpers to generate and parse function domains (paper §3.1, Table 1).
//
// The registry covers nine providers and ten URL formats: Google ships two
// generations ("Google" and "Google2"). Azure is registered for completeness
// but excluded from PDNS collection because its domain suffix
// (azurewebsites.net) is shared with non-function web apps; Google, IBM and
// Oracle are excluded from active probing because the function identifier
// lives in the URL path, which PDNS does not observe.
package providers

import (
	"fmt"
	"regexp"
	"strings"
)

// ID identifies one function-URL format. Google has two IDs because its two
// generations use unrelated domain schemes.
type ID int

// Provider IDs, in the order of the paper's Table 1.
const (
	Aliyun ID = iota
	Baidu
	Tencent
	Kingsoft
	AWS
	Google
	Google2
	IBM
	Oracle
	Azure
	numProviders
)

// NumProviders is the number of registered URL formats (ten: nine providers,
// with Google counted twice for its two generations).
const NumProviders = int(numProviders)

// String returns the short provider name used throughout the paper's tables.
func (id ID) String() string {
	if id < 0 || id >= numProviders {
		return fmt.Sprintf("providers.ID(%d)", int(id))
	}
	return infos[id].Name
}

// GenerationMode describes how a provider exposes the function URL at
// creation time (Table 1, "Generation Mode").
type GenerationMode int

const (
	// Automatic providers mint the function URL when the function is created.
	Automatic GenerationMode = iota
	// Optional providers let the developer enable a function URL at setup.
	Optional
	// Manual providers require a separately created HTTP trigger.
	Manual
)

func (m GenerationMode) String() string {
	switch m {
	case Automatic:
		return "Automatic"
	case Optional:
		return "Optional"
	case Manual:
		return "Manual"
	default:
		return fmt.Sprintf("GenerationMode(%d)", int(m))
	}
}

// Info is the static description of one function-URL format.
type Info struct {
	ID         ID
	Name       string // short name used in tables ("Aliyun", "Google2", …)
	Product    string // full product name
	LaunchYear int

	// URLPrefix is the human-readable USER-Prefix template from Table 1,
	// e.g. "[FName]-[PName]-[Random].[Region]".
	URLPrefix string
	// DomainSuffix identifies the provider, e.g. "scf.tencentcs.com".
	DomainSuffix string
	// PathTemplate is the Path column of Table 1 ("/", "[FName]", …).
	PathTemplate string

	// Pattern is the domain regular expression of Table 1 (anchored).
	Pattern string

	Mode GenerationMode

	// InCollection reports whether the provider participates in PDNS
	// identification. False only for Azure (shared suffix).
	InCollection bool
	// ActiveProbe reports whether root-path HTTP probing is meaningful.
	// False for providers whose function identifier is in the URL path
	// (Google gen-1, IBM, Oracle) and for Azure.
	ActiveProbe bool
	// UniqueFunctionDomain reports whether one FQDN maps to exactly one
	// cloud function, enabling per-function invocation/lifespan analysis.
	UniqueFunctionDomain bool
	// WildcardDNS reports whether the provider keeps a wildcard record for
	// the suffix so deleted functions still resolve. Tencent is the only
	// provider without wildcard resolution (paper §4.4).
	WildcardDNS bool

	// Regions supported by the provider, as embedded in function domains.
	Regions []string

	re *regexp.Regexp
}

// Regexp returns the compiled domain regular expression.
func (in *Info) Regexp() *regexp.Regexp { return in.re }

// Match reports whether fqdn matches this provider's domain pattern.
// Matching is case-insensitive on the suffix, per DNS semantics.
func (in *Info) Match(fqdn string) bool {
	return in.re.MatchString(strings.ToLower(strings.TrimSuffix(fqdn, ".")))
}

var infos = [numProviders]Info{
	Aliyun: {
		ID:           Aliyun,
		Name:         "Aliyun",
		Product:      "Aliyun Function Compute",
		LaunchYear:   2017,
		URLPrefix:    "[FName]-[PName]-[Random].[Region]",
		DomainSuffix: "fcapp.run",
		PathTemplate: "/",
		Pattern:      `^(.*)-(.*)-[a-z]{10}\.(.*)\.fcapp\.run$`,
		Mode:         Automatic,
		InCollection: true, ActiveProbe: true, UniqueFunctionDomain: true, WildcardDNS: true,
		Regions: aliyunRegions,
	},
	Baidu: {
		ID:           Baidu,
		Name:         "Baidu",
		Product:      "Baidu Cloud Function Compute",
		LaunchYear:   2017,
		URLPrefix:    "[Random].cfc-execute.[Region]",
		DomainSuffix: "baidubce.com",
		PathTemplate: "/",
		Pattern:      `^[a-z0-9]{13}\.cfc-execute\.(.*)\.baidubce\.com$`,
		Mode:         Manual,
		InCollection: true, ActiveProbe: true, UniqueFunctionDomain: true, WildcardDNS: true,
		Regions: baiduRegions,
	},
	Tencent: {
		ID:           Tencent,
		Name:         "Tencent",
		Product:      "Tencent Serverless Cloud Function",
		LaunchYear:   2017,
		URLPrefix:    "[UserID]-[Random]-[Region]",
		DomainSuffix: "scf.tencentcs.com",
		PathTemplate: "/",
		Pattern:      `^[0-9]{10}-[a-z0-9]{10}-(.*)\.scf\.tencentcs\.com$`,
		Mode:         Automatic,
		InCollection: true, ActiveProbe: true, UniqueFunctionDomain: true,
		WildcardDNS: false, // only provider without wildcard resolution (§4.4)
		Regions:     tencentRegions,
	},
	Kingsoft: {
		ID:           Kingsoft,
		Name:         "Ksyun",
		Product:      "Kingsoft Cloud Function",
		LaunchYear:   2022,
		URLPrefix:    "[Random].[Region]",
		DomainSuffix: "ksyuncf.com",
		PathTemplate: "/",
		Pattern:      `^(.*)-(eu-east-1|cn-beijing-6)\.ksyuncf\.com$`,
		Mode:         Optional,
		InCollection: true, ActiveProbe: true, UniqueFunctionDomain: true, WildcardDNS: true,
		Regions: kingsoftRegions,
	},
	AWS: {
		ID:           AWS,
		Name:         "AWS",
		Product:      "AWS Lambda",
		LaunchYear:   2014,
		URLPrefix:    "[Random].lambda-url.[Region]",
		DomainSuffix: "on.aws",
		PathTemplate: "/",
		Pattern:      `^(.*)\.lambda-url\.(.*)\.on\.aws$`,
		Mode:         Optional,
		InCollection: true, ActiveProbe: true, UniqueFunctionDomain: true, WildcardDNS: true,
		Regions: awsRegions,
	},
	Google: {
		ID:           Google,
		Name:         "Google",
		Product:      "Google Cloud Function",
		LaunchYear:   2017,
		URLPrefix:    "[Region]-[PName]",
		DomainSuffix: "cloudfunctions.net",
		PathTemplate: "[FName]",
		Pattern:      `^(asia|europe|us|australia|northamerica|southamerica)-(.*)-(.*)\.cloudfunctions\.net$`,
		Mode:         Optional,
		InCollection: true, ActiveProbe: false, UniqueFunctionDomain: false, WildcardDNS: true,
		Regions: googleRegions,
	},
	Google2: {
		ID:           Google2,
		Name:         "Google2",
		Product:      "Google Cloud Function (2nd gen)",
		LaunchYear:   2022,
		URLPrefix:    "[FName]-[Random]-[Region]",
		DomainSuffix: "a.run.app",
		PathTemplate: "/",
		Pattern:      `^(.*)-[a-z0-9]{10}-(.*)\.a\.run\.app$`,
		Mode:         Optional,
		InCollection: true, ActiveProbe: true, UniqueFunctionDomain: true, WildcardDNS: true,
		Regions: googleRegions,
	},
	IBM: {
		ID:           IBM,
		Name:         "IBM",
		Product:      "IBM Cloud Function",
		LaunchYear:   2016,
		URLPrefix:    "[Region]",
		DomainSuffix: "functions.appdomain.cloud",
		PathTemplate: ".../[FName]",
		Pattern:      `^(us-south|us-east|eu-gb|eu-de|jp-tok|au-syd)\.functions\.appdomain\.cloud$`,
		Mode:         Automatic,
		InCollection: true, ActiveProbe: false, UniqueFunctionDomain: false, WildcardDNS: true,
		Regions: ibmRegions,
	},
	Oracle: {
		ID:           Oracle,
		Name:         "Oracle",
		Product:      "Oracle Cloud Functions",
		LaunchYear:   2019,
		URLPrefix:    "[Random].[Region]",
		DomainSuffix: "oci.oraclecloud.com",
		PathTemplate: ".../[FName]",
		Pattern:      `^[a-z0-9]{11}\.(.*)\.functions\.oci\.oraclecloud\.com$`,
		Mode:         Automatic,
		InCollection: true, ActiveProbe: false, UniqueFunctionDomain: false, WildcardDNS: true,
		Regions: oracleRegions,
	},
	Azure: {
		ID:           Azure,
		Name:         "Azure",
		Product:      "Azure Function",
		LaunchYear:   2016,
		URLPrefix:    "[PName]",
		DomainSuffix: "azurewebsites.net",
		PathTemplate: ".../[FName]?code=Key",
		Pattern:      `^(.*)\.azurewebsites\.net$`,
		Mode:         Automatic,
		// Excluded everywhere: suffix shared with generic web apps.
		InCollection: false, ActiveProbe: false, UniqueFunctionDomain: false, WildcardDNS: true,
		Regions: azureRegions,
	},
}

func init() {
	for i := range infos {
		infos[i].re = regexp.MustCompile(infos[i].Pattern)
	}
}

// Get returns the static description of the given provider.
// It panics on an out-of-range ID.
func Get(id ID) *Info {
	if id < 0 || id >= numProviders {
		panic(fmt.Sprintf("providers: invalid ID %d", int(id)))
	}
	return &infos[id]
}

// All returns the descriptions of all ten URL formats in Table 1 order.
func All() []*Info {
	out := make([]*Info, 0, numProviders)
	for i := range infos {
		out = append(out, &infos[i])
	}
	return out
}

// Collected returns the formats that participate in PDNS identification
// (everything except Azure).
func Collected() []*Info {
	out := make([]*Info, 0, numProviders-1)
	for i := range infos {
		if infos[i].InCollection {
			out = append(out, &infos[i])
		}
	}
	return out
}

// Probeable returns the formats eligible for active root-path probing:
// AWS, Google2, Tencent, Baidu, Aliyun and Kingsoft (paper §3.3).
func Probeable() []*Info {
	var out []*Info
	for i := range infos {
		if infos[i].ActiveProbe {
			out = append(out, &infos[i])
		}
	}
	return out
}

// PerFunction returns the formats whose FQDN uniquely identifies one cloud
// function, i.e. those included in per-function invocation and lifespan
// analysis (paper §4.3 excludes Google, IBM, and Oracle).
func PerFunction() []*Info {
	var out []*Info
	for i := range infos {
		if infos[i].UniqueFunctionDomain && infos[i].InCollection {
			out = append(out, &infos[i])
		}
	}
	return out
}

// ByName looks a provider up by its short table name (case-insensitive).
func ByName(name string) (*Info, bool) {
	for i := range infos {
		if strings.EqualFold(infos[i].Name, name) {
			return &infos[i], true
		}
	}
	return nil, false
}
