package providers

import (
	"strings"
)

// Matcher classifies FQDNs against the provider domain patterns of Table 1.
//
// The zero value is not usable; construct with NewMatcher. Matching is a
// two-stage process: a suffix dispatch narrows a candidate FQDN to at most
// one provider in O(labels), then that provider's anchored regular expression
// confirms the full structure. The pre-filter is what makes scanning a
// PDNS feed of hundreds of billions of rows tractable (ablation:
// BenchmarkIdentifySuffixMap vs BenchmarkIdentifyRegexOnly).
type Matcher struct {
	bySuffix map[string]*Info
	maxDepth int // deepest suffix, counted in labels
	infos    []*Info
}

// NewMatcher builds a Matcher over the given formats. Passing nil selects
// all formats that participate in PDNS collection (i.e. Collected()).
func NewMatcher(formats []*Info) *Matcher {
	if formats == nil {
		formats = Collected()
	}
	m := &Matcher{bySuffix: make(map[string]*Info, len(formats)), infos: formats}
	for _, in := range formats {
		m.bySuffix[in.DomainSuffix] = in
		if d := strings.Count(in.DomainSuffix, ".") + 1; d > m.maxDepth {
			m.maxDepth = d
		}
	}
	return m
}

// Identify returns the provider whose pattern matches fqdn.
// ok is false when no registered provider matches.
func (m *Matcher) Identify(fqdn string) (*Info, bool) {
	fqdn = normalizeFQDN(fqdn)
	// Walk candidate suffixes from shallow to deep: "on.aws" (2 labels) up
	// to "functions.appdomain.cloud" etc. Most non-function domains miss
	// the map on every depth and exit without touching a regex.
	idx := len(fqdn)
	for depth := 0; depth < m.maxDepth && idx > 0; depth++ {
		dot := strings.LastIndexByte(fqdn[:idx], '.')
		if dot < 0 {
			break
		}
		idx = dot
		if in, ok := m.bySuffix[fqdn[idx+1:]]; ok {
			if in.re.MatchString(fqdn) {
				return in, true
			}
			return nil, false // right suffix, wrong structure
		}
	}
	return nil, false
}

// IdentifySlow matches fqdn by trying each provider regex in turn, without
// the suffix pre-filter. It exists as the ablation baseline.
func (m *Matcher) IdentifySlow(fqdn string) (*Info, bool) {
	fqdn = normalizeFQDN(fqdn)
	for _, in := range m.infos {
		if in.re.MatchString(fqdn) {
			return in, true
		}
	}
	return nil, false
}

// Formats returns the formats this matcher was built over.
func (m *Matcher) Formats() []*Info { return m.infos }

func normalizeFQDN(fqdn string) string {
	fqdn = strings.TrimSuffix(fqdn, ".")
	if hasUpper(fqdn) {
		fqdn = strings.ToLower(fqdn)
	}
	return fqdn
}

func hasUpper(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			return true
		}
	}
	return false
}
