package providers

import (
	"math/rand"
	"strings"
	"testing"
)

// TestRegionMatchesParse pins the contract of the allocation-free Region fast
// path: for every provider format it must return exactly Parse(fqdn).Region,
// across random domains, every enumerated region, case noise, and trailing
// dots.
func TestRegionMatchesParse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, in := range Collected() {
		var domains []string
		for i := 0; i < 50; i++ {
			domains = append(domains, in.Generate(rng, ""))
		}
		for _, r := range in.Regions {
			domains = append(domains, in.Generate(rng, r))
		}
		// Case and trailing-dot noise, the normalisation Parse applies.
		for i := 0; i < 10; i++ {
			d := in.Generate(rng, "")
			domains = append(domains, strings.ToUpper(d), d+".")
		}
		// Deliberately short/degenerate hosts for the length-guarded formats.
		domains = append(domains,
			"a."+in.DomainSuffix,
			"ab-cd."+in.DomainSuffix,
			in.DomainSuffix,
		)
		for _, d := range domains {
			p, _ := in.Parse(d)
			if got := in.Region(d); got != p.Region {
				t.Errorf("%s: Region(%q) = %q, Parse.Region = %q", in.Name, d, got, p.Region)
			}
		}
	}
}

// TestRegionForeignDomains: FQDNs that do not match a provider's pattern must
// yield "" from both paths.
func TestRegionForeignDomains(t *testing.T) {
	noise := []string{
		"www.example.com", "", "..", "a-b-c", strings.Repeat("x.", 40),
		"1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com.evil.example",
	}
	for _, in := range Collected() {
		for _, d := range noise {
			p, ok := in.Parse(d)
			if ok && d != "" {
				continue // a genuine cross-format match; skip
			}
			if got := in.Region(d); got != p.Region {
				t.Errorf("%s: Region(%q) = %q, Parse.Region = %q", in.Name, d, got, p.Region)
			}
		}
	}
}

// TestRegionAllocFree: resolving a region from an already-lowercase FQDN must
// not allocate — this is what lets the aggregation hot path call it per
// distinct symbol without undoing the zero-alloc batch work.
func TestRegionAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, in := range Collected() {
		d := in.Generate(rng, "")
		in := in
		if n := testing.AllocsPerRun(100, func() { in.Region(d) }); n > 0 {
			t.Errorf("%s: Region allocates %.1f per call", in.Name, n)
		}
	}
}
