package providers

import (
	"strings"
	"testing"
)

// FuzzIdentify checks the identification invariants on arbitrary input:
// never panic, fast-path agrees with the regex-only path, and any match
// round-trips through Parse.
func FuzzIdentify(f *testing.F) {
	f.Add("1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com")
	f.Add("h2ag4fmzrlwqify7rz2jak4mhi3lmytz.lambda-url.us-east-1.on.aws")
	f.Add("us-central1-myproject.cloudfunctions.net")
	f.Add("www.example.com")
	f.Add("")
	f.Add("..")
	f.Add(strings.Repeat("a.", 100))
	f.Add("x.ON.AWS.")
	m := NewMatcher(nil)
	f.Fuzz(func(t *testing.T, fqdn string) {
		fast, fok := m.Identify(fqdn)
		slow, sok := m.IdentifySlow(fqdn)
		if fok != sok {
			t.Fatalf("Identify(%q) ok=%v but IdentifySlow ok=%v", fqdn, fok, sok)
		}
		if fok {
			if fast.ID != slow.ID {
				t.Fatalf("Identify(%q) = %v, IdentifySlow = %v", fqdn, fast.ID, slow.ID)
			}
			if _, ok := fast.Parse(fqdn); !ok {
				t.Fatalf("matched %q does not parse", fqdn)
			}
		}
	})
}
