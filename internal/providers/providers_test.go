package providers

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestRegistryShape(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("registry has %d formats, want 10 (Table 1)", len(all))
	}
	if got := len(Collected()); got != 9 {
		t.Errorf("Collected() = %d formats, want 9 (Azure excluded)", got)
	}
	if got := len(Probeable()); got != 6 {
		t.Errorf("Probeable() = %d formats, want 6 (AWS, Google2, Tencent, Baidu, Aliyun, Kingsoft)", got)
	}
	if got := len(PerFunction()); got != 6 {
		t.Errorf("PerFunction() = %d formats, want 6 (Google, IBM, Oracle, Azure excluded)", got)
	}
}

func TestRegionCountsMatchTable2(t *testing.T) {
	want := map[ID]int{
		Aliyun: 21, Baidu: 3, Tencent: 22, Kingsoft: 2, AWS: 22,
		Google: 37, Google2: 37, IBM: 6, Oracle: 5,
	}
	for id, n := range want {
		if got := len(Get(id).Regions); got != n {
			t.Errorf("%s: %d regions, want %d (Table 2)", id, got, n)
		}
	}
}

func TestLaunchYears(t *testing.T) {
	want := map[ID]int{
		Aliyun: 2017, Baidu: 2017, Tencent: 2017, Kingsoft: 2022, AWS: 2014,
		Google: 2017, Google2: 2022, IBM: 2016, Oracle: 2019, Azure: 2016,
	}
	for id, y := range want {
		if got := Get(id).LaunchYear; got != y {
			t.Errorf("%s launch year = %d, want %d", id, got, y)
		}
	}
}

// TestTable1Examples checks each pattern against a hand-built example of the
// documented format, mirroring the empirical validation in paper §3.1.
func TestTable1Examples(t *testing.T) {
	cases := []struct {
		id   ID
		fqdn string
	}{
		{Aliyun, "resize-imgsvc-abcdefghij.cn-shanghai.fcapp.run"},
		{Baidu, "a1b2c3d4e5f6g.cfc-execute.bj.baidubce.com"},
		{Tencent, "1257651234-h3xkf92a1b-ap-guangzhou.scf.tencentcs.com"},
		{Kingsoft, "fj3k29dksl2a-cn-beijing-6.ksyuncf.com"},
		{AWS, "h2ag4fmzrlwqify7rz2jak4mhi3lmytz.lambda-url.us-east-1.on.aws"},
		{Google, "us-central1-myproject.cloudfunctions.net"},
		{Google2, "hello-world-x7gk29slq1-uc.a.run.app"},
		{IBM, "eu-gb.functions.appdomain.cloud"},
		{Oracle, "aaaaaaaaaz7.ap-tokyo-1.functions.oci.oraclecloud.com"},
		{Azure, "mysite.azurewebsites.net"},
	}
	for _, c := range cases {
		in := Get(c.id)
		if !in.Match(c.fqdn) {
			t.Errorf("%s: pattern %q does not match example %q", in.Name, in.Pattern, c.fqdn)
		}
	}
}

func TestPatternsRejectForeignDomains(t *testing.T) {
	nonFunctions := []string{
		"www.google.com", "example.org", "fcapp.run", "on.aws",
		"foo.scf.tencentcs.com",        // missing userid-random-region shape
		"abc.cfc-execute.baidubce.com", // random too short / missing region
		"x.y.cloudfunctions.net",       // no continent prefix
		"something.azurewebsites.net.evil.io",
		"lambda-url.us-east-1.on.aws",             // no random prefix label
		"deep.us-south.functions.appdomain.cloud", // IBM takes region only
	}
	m := NewMatcher(All())
	for _, d := range nonFunctions {
		if in, ok := m.Identify(d); ok && in.ID != Azure {
			t.Errorf("Identify(%q) = %s, want no match", d, in.Name)
		}
	}
}

// TestGenerateRoundTrip is the core invariant of the identification pipeline:
// every generated domain must (a) match its own provider's pattern, (b) match
// no other provider's pattern, and (c) parse back to the region it was
// generated in.
func TestGenerateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMatcher(All())
	for _, in := range All() {
		for i := 0; i < 200; i++ {
			region := in.Regions[rng.Intn(len(in.Regions))]
			dom := in.Generate(rng, region)
			got, ok := m.Identify(dom)
			if !ok {
				t.Fatalf("%s: generated domain %q not identified", in.Name, dom)
			}
			if got.ID != in.ID {
				t.Fatalf("%s: generated domain %q identified as %s", in.Name, dom, got.Name)
			}
			for _, other := range All() {
				if other.ID != in.ID && other.Match(dom) {
					t.Errorf("%s domain %q also matches %s pattern", in.Name, dom, other.Name)
				}
			}
			p, ok := in.Parse(dom)
			if !ok {
				t.Fatalf("%s: Parse(%q) failed", in.Name, dom)
			}
			wantRegion := region
			if in.ID == Google2 {
				wantRegion = compactGoogleRegion(region)
			}
			if in.usesRegion() && p.Region != wantRegion {
				t.Errorf("%s: Parse(%q).Region = %q, want %q", in.Name, dom, p.Region, wantRegion)
			}
		}
	}
}

func TestParseComponents(t *testing.T) {
	p, ok := Get(Tencent).Parse("1257651234-h3xkf92a1b-ap-guangzhou.scf.tencentcs.com")
	if !ok {
		t.Fatal("Tencent parse failed")
	}
	if p.UserID != "1257651234" || p.Random != "h3xkf92a1b" || p.Region != "ap-guangzhou" {
		t.Errorf("Tencent parse = %+v", p)
	}

	p, ok = Get(Aliyun).Parse("resize-imgsvc-abcdefghij.cn-shanghai.fcapp.run")
	if !ok {
		t.Fatal("Aliyun parse failed")
	}
	if p.FunctionName != "resize" || p.ProjectName != "imgsvc" || p.Region != "cn-shanghai" {
		t.Errorf("Aliyun parse = %+v", p)
	}

	p, ok = Get(Google).Parse("us-central1-myproject.cloudfunctions.net")
	if !ok {
		t.Fatal("Google parse failed")
	}
	if p.Region != "us-central1" || p.ProjectName != "myproject" {
		t.Errorf("Google parse = %+v", p)
	}

	p, ok = Get(AWS).Parse("h2ag4fmzrlwqify7rz2jak4mhi3lmytz.lambda-url.eu-west-1.on.aws")
	if !ok {
		t.Fatal("AWS parse failed")
	}
	if p.Random != "h2ag4fmzrlwqify7rz2jak4mhi3lmytz" || p.Region != "eu-west-1" {
		t.Errorf("AWS parse = %+v", p)
	}
}

func TestMatcherNormalization(t *testing.T) {
	m := NewMatcher(nil)
	variants := []string{
		"1257651234-h3xkf92a1b-ap-guangzhou.scf.tencentcs.com",
		"1257651234-h3xkf92a1b-ap-guangzhou.scf.tencentcs.com.", // trailing dot
		"1257651234-H3XKF92A1B-ap-guangzhou.SCF.TencentCS.com",  // case
	}
	for _, v := range variants {
		in, ok := m.Identify(v)
		if !ok || in.ID != Tencent {
			t.Errorf("Identify(%q): got %v ok=%v, want Tencent", v, in, ok)
		}
	}
}

func TestMatcherAgreesWithSlowPath(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewMatcher(nil)
	// Generated function domains plus structured junk.
	var domains []string
	for _, in := range Collected() {
		for i := 0; i < 50; i++ {
			domains = append(domains, in.Generate(rng, ""))
		}
	}
	junk := []string{"example.com", "a.b.c.d.e", "scf.tencentcs.com", "x.on.aws", ""}
	domains = append(domains, junk...)
	for _, d := range domains {
		fast, fok := m.Identify(d)
		slow, sok := m.IdentifySlow(d)
		if fok != sok {
			t.Fatalf("Identify(%q) ok=%v, IdentifySlow ok=%v", d, fok, sok)
		}
		if fok && fast.ID != slow.ID {
			t.Fatalf("Identify(%q) = %s, IdentifySlow = %s", d, fast.Name, slow.Name)
		}
	}
}

func TestChinaRegion(t *testing.T) {
	yes := []string{"cn-shanghai", "ap-beijing", "bj", "gz", "su", "chinanorth", "cn-beijing-6"}
	no := []string{"us-east-1", "eu-west-1", "ap-tokyo", "ap-singapore", "us-central1", "eu-gb"}
	for _, r := range yes {
		if !ChinaRegion(r) {
			t.Errorf("ChinaRegion(%q) = false, want true", r)
		}
	}
	for _, r := range no {
		if ChinaRegion(r) {
			t.Errorf("ChinaRegion(%q) = true, want false", r)
		}
	}
}

func TestByName(t *testing.T) {
	for _, in := range All() {
		got, ok := ByName(strings.ToUpper(in.Name))
		if !ok || got.ID != in.ID {
			t.Errorf("ByName(%q) failed", in.Name)
		}
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("ByName(nosuch) unexpectedly succeeded")
	}
}

func TestURLFormats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, in := range All() {
		spec := Spec{
			FunctionName: "hello", ProjectName: "proj",
			UserID: "1234567890",
			Region: in.Regions[0],
			Random: in.RandomToken(rng),
		}
		u, err := in.URL(spec)
		if err != nil {
			t.Fatalf("%s: URL: %v", in.Name, err)
		}
		if !strings.HasPrefix(u, "https://") {
			t.Errorf("%s: URL %q not https", in.Name, u)
		}
		host := strings.TrimPrefix(u, "https://")
		host = host[:strings.IndexAny(host, "/?")]
		if !in.Match(host) {
			t.Errorf("%s: URL host %q does not match own pattern", in.Name, host)
		}
	}
}

func TestDomainValidation(t *testing.T) {
	if _, err := Get(Tencent).Domain(Spec{UserID: "abc", Random: "xxxxxxxxxx", Region: "ap-guangzhou"}); err == nil {
		t.Error("Tencent accepted non-numeric UserID")
	}
	if _, err := Get(Aliyun).Domain(Spec{Random: "abcdefghij", Region: "cn-shanghai"}); err == nil {
		t.Error("Aliyun accepted empty FName/PName")
	}
	if _, err := Get(AWS).Domain(Spec{Random: "x"}); err == nil {
		t.Error("AWS accepted empty region")
	}
}

// Property: random lowercase-alnum strings never spuriously match providers
// with strict shapes (Tencent, Baidu, Oracle) unless crafted to.
func TestQuickNoSpuriousStrictMatches(t *testing.T) {
	f := func(label string) bool {
		d := sanitizeLabel(label)
		if d == "" {
			d = "x"
		}
		fqdn := d + ".example.com"
		m := NewMatcher(nil)
		_, ok := m.Identify(fqdn)
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSanitizeLabel(t *testing.T) {
	cases := map[string]string{
		"Hello World": "hello-world",
		"--a--":       "a",
		"UPPER_case9": "upper-case9",
		"":            "",
		"日本":          "",
	}
	for in, want := range cases {
		if got := sanitizeLabel(in); got != want {
			t.Errorf("sanitizeLabel(%q) = %q, want %q", in, got, want)
		}
	}
}
