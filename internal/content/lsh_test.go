package content

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestMinHashSignatureShape(t *testing.T) {
	mh := NewMinHasher(64)
	sig := mh.Signature("alpha beta gamma delta")
	if len(sig) != 64 {
		t.Fatalf("signature length = %d", len(sig))
	}
	// Deterministic.
	sig2 := mh.Signature("alpha beta gamma delta")
	for i := range sig {
		if sig[i] != sig2[i] {
			t.Fatal("signature not deterministic")
		}
	}
}

func TestJaccardEstimate(t *testing.T) {
	mh := NewMinHasher(256)
	a := mh.Signature("alpha beta gamma delta epsilon zeta eta theta")
	b := mh.Signature("alpha beta gamma delta epsilon zeta eta theta")
	if got := JaccardEstimate(a, b); got != 1 {
		t.Errorf("identical docs estimate = %v", got)
	}
	c := mh.Signature("omega psi chi phi upsilon tau sigma rho")
	if got := JaccardEstimate(a, c); got > 0.1 {
		t.Errorf("disjoint docs estimate = %v", got)
	}
	// Half-overlapping token sets estimate near their true Jaccard (1/3).
	d := mh.Signature("alpha beta gamma delta omega psi chi phi")
	got := JaccardEstimate(a, d)
	if got < 0.15 || got > 0.55 {
		t.Errorf("half-overlap estimate = %v, want ≈ 0.33", got)
	}
	if JaccardEstimate(nil, nil) != 0 || JaccardEstimate(a, a[:10]) != 0 {
		t.Error("degenerate inputs should estimate 0")
	}
}

func TestClusterDocsLSHMatchesExactOnSeparatedFamilies(t *testing.T) {
	var docs []string
	for i := 0; i < 10; i++ {
		docs = append(docs, "gambling slot betting casino jackpot bonus win page")
	}
	for i := 0; i < 7; i++ {
		docs = append(docs, "api response status ok result data json record")
	}
	exact := ClusterDocs(docs, 0.1)
	lsh := ClusterDocsLSH(docs, 0.1)
	if len(exact) != len(lsh) {
		t.Fatalf("exact %d clusters, lsh %d", len(exact), len(lsh))
	}
	for i := range exact {
		if len(exact[i]) != len(lsh[i]) {
			t.Errorf("cluster %d sizes: exact %d, lsh %d", i, len(exact[i]), len(lsh[i]))
		}
	}
}

func TestClusterDocsLSHPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var docs []string
	for i := 0; i < 120; i++ {
		docs = append(docs, fmt.Sprintf("family%d word%d word%d filler", i%6, rng.Intn(5), rng.Intn(5)))
	}
	groups := ClusterDocsLSH(docs, 0.1)
	var all []int
	for _, g := range groups {
		all = append(all, g...)
	}
	sort.Ints(all)
	if len(all) != len(docs) {
		t.Fatalf("partition covers %d of %d docs", len(all), len(docs))
	}
	for i, x := range all {
		if x != i {
			t.Fatalf("partition missing index %d", i)
		}
	}
}

func TestClusterDocsLSHEmpty(t *testing.T) {
	if g := ClusterDocsLSH(nil, 0.1); g != nil {
		t.Errorf("nil docs clustered: %v", g)
	}
	g := ClusterDocsLSH([]string{"solo document"}, 0.1)
	if len(g) != 1 || len(g[0]) != 1 {
		t.Errorf("single doc groups = %v", g)
	}
}
