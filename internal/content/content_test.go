package content

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestDetectType(t *testing.T) {
	cases := []struct {
		body string
		ct   string
		want Type
	}{
		{`{"ok":true}`, "", JSON},
		{`[1,2,3]`, "", JSON},
		{`{"ok":true}`, "application/json; charset=utf-8", JSON},
		{`<!DOCTYPE html><html><body>hi</body></html>`, "", HTML},
		{`<div class="x">y</div>`, "", HTML},
		{`hello from lambda`, "", Plaintext},
		{``, "", Plaintext},
		{`<?xml version="1.0"?><a/>`, "", Other},
		{`<?php echo "x"; ?>`, "", Other},
		{`var x = 1; function(){}`, "", Other},
		{`anything`, "text/javascript", Other},
		{`<html>`, "text/html", HTML},
		{`not json`, "application/json", JSON}, // header wins
		{`{"truncated":`, "", Plaintext},       // invalid JSON falls through
	}
	for _, c := range cases {
		if got := DetectType([]byte(c.body), c.ct); got != c.want {
			t.Errorf("DetectType(%q, %q) = %v, want %v", c.body, c.ct, got, c.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize(`<html>Hello, WORLD-42! x</html>`)
	want := []string{"html", "hello", "world", "42", "html"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if Tokenize("") != nil {
		t.Error("Tokenize(\"\") should be nil")
	}
}

func TestCosine(t *testing.T) {
	v := NewVectorizer([]string{"alpha beta gamma", "alpha beta gamma", "delta epsilon"})
	a := v.Transform("alpha beta gamma")
	b := v.Transform("alpha beta gamma")
	c := v.Transform("delta epsilon")
	if s := Cosine(a, b); math.Abs(s-1) > 1e-9 {
		t.Errorf("identical docs cosine = %v, want 1", s)
	}
	if s := Cosine(a, c); s != 0 {
		t.Errorf("disjoint docs cosine = %v, want 0", s)
	}
	if d := CosineDistance(a, b); d > 1e-9 {
		t.Errorf("identical docs distance = %v", d)
	}
	if d := CosineDistance(a, c); math.Abs(d-1) > 1e-9 {
		t.Errorf("disjoint docs distance = %v, want 1", d)
	}
}

func TestVectorizerIDFOrdering(t *testing.T) {
	// A term in every doc must weigh less than a term in one doc.
	corpus := []string{"common rare1", "common other", "common thing"}
	v := NewVectorizer(corpus)
	vec := v.Transform("common rare1")
	terms := v.TopTerms(vec, 2)
	if len(terms) != 2 || terms[0] != "rare1" {
		t.Errorf("TopTerms = %v, want rare1 first", terms)
	}
}

func TestTransformUnknownTerms(t *testing.T) {
	v := NewVectorizer([]string{"alpha beta"})
	vec := v.Transform("gamma delta")
	if len(vec) != 0 {
		t.Errorf("unknown-term vector = %v, want empty", vec)
	}
}

func TestAgglomerateTwoBlobs(t *testing.T) {
	// Two well-separated families of near-duplicates must form two
	// clusters at the paper's 0.1 threshold.
	var docs []string
	for i := 0; i < 8; i++ {
		docs = append(docs, fmt.Sprintf("gambling slot betting casino jackpot bonus win page %d", i))
	}
	for i := 0; i < 6; i++ {
		docs = append(docs, fmt.Sprintf("api response status ok result data json record %d", i))
	}
	groups := ClusterDocs(docs, 0.1)
	if len(groups) != 2 {
		t.Fatalf("got %d clusters, want 2: %v", len(groups), groups)
	}
	if len(groups[0]) != 8 || len(groups[1]) != 6 {
		t.Errorf("cluster sizes = %d, %d", len(groups[0]), len(groups[1]))
	}
	// Membership must be contiguous by family.
	for _, idx := range groups[0] {
		if idx >= 8 {
			t.Errorf("gambling cluster contains doc %d", idx)
		}
	}
}

func TestAgglomerateThresholdSweep(t *testing.T) {
	// Lower thresholds can only produce more clusters (dendrogram nesting).
	var docs []string
	rng := rand.New(rand.NewSource(2))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	for i := 0; i < 40; i++ {
		var d string
		for j := 0; j < 6; j++ {
			d += words[rng.Intn(len(words))] + " "
		}
		docs = append(docs, d)
	}
	v := NewVectorizer(docs)
	dend := Agglomerate(v.TransformAll(docs))
	prev := -1
	for _, th := range []float64{0.05, 0.1, 0.2, 0.5, 1.01} {
		k := dend.NumClusters(th)
		if prev != -1 && k > prev {
			t.Errorf("clusters increased from %d to %d as threshold grew to %v", prev, k, th)
		}
		prev = k
	}
	if got := dend.NumClusters(1.01); got != 1 {
		t.Errorf("threshold above max distance yields %d clusters, want 1", got)
	}
	if got := dend.NumClusters(0); got != 40 && got != len(uniqueDocs(docs)) {
		// identical docs merge at distance ~0; allow either exact n or
		// the distinct-document count.
		t.Logf("threshold 0 yields %d clusters (n=40, distinct=%d)", got, len(uniqueDocs(docs)))
	}
}

func uniqueDocs(docs []string) map[string]bool {
	m := map[string]bool{}
	for _, d := range docs {
		m[d] = true
	}
	return m
}

func TestAgglomerateSmallInputs(t *testing.T) {
	if g := ClusterDocs(nil, 0.1); g != nil {
		t.Errorf("nil docs clustered: %v", g)
	}
	g := ClusterDocs([]string{"only one"}, 0.1)
	if len(g) != 1 || len(g[0]) != 1 {
		t.Errorf("single doc groups = %v", g)
	}
	g = ClusterDocs([]string{"same text here", "same text here"}, 0.1)
	if len(g) != 1 || len(g[0]) != 2 {
		t.Errorf("duplicate docs groups = %v", g)
	}
}

func TestCutPartitionInvariant(t *testing.T) {
	// Cut must return a partition: every index exactly once.
	var docs []string
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		docs = append(docs, fmt.Sprintf("word%d word%d word%d", rng.Intn(10), rng.Intn(10), rng.Intn(10)))
	}
	v := NewVectorizer(docs)
	dend := Agglomerate(v.TransformAll(docs))
	for _, th := range []float64{0, 0.05, 0.1, 0.3, 0.7, 1.2} {
		groups := dend.Cut(th)
		var all []int
		for _, g := range groups {
			all = append(all, g...)
		}
		sort.Ints(all)
		if len(all) != 60 {
			t.Fatalf("threshold %v: %d items in partition, want 60", th, len(all))
		}
		for i, x := range all {
			if x != i {
				t.Fatalf("threshold %v: partition missing index %d", th, i)
			}
		}
		if len(groups) != dend.NumClusters(th) {
			t.Errorf("threshold %v: Cut gives %d groups, NumClusters gives %d",
				th, len(groups), dend.NumClusters(th))
		}
	}
}

func TestMergeCount(t *testing.T) {
	docs := []string{"a b", "a b", "c d", "c d", "e f"}
	v := NewVectorizer(docs)
	dend := Agglomerate(v.TransformAll(docs))
	if len(dend.Merges) != len(docs)-1 {
		t.Errorf("merges = %d, want n-1 = %d", len(dend.Merges), len(docs)-1)
	}
	for i := 1; i < len(dend.Merges); i++ {
		if dend.Merges[i].Dist < dend.Merges[i-1].Dist {
			t.Error("merges not sorted by distance")
		}
	}
	if dend.Merges[len(dend.Merges)-1].Size != len(docs) {
		// The largest merge joins everything.
		var maxSize int
		for _, m := range dend.Merges {
			if m.Size > maxSize {
				maxSize = m.Size
			}
		}
		if maxSize != len(docs) {
			t.Errorf("no merge covers all %d docs (max %d)", len(docs), maxSize)
		}
	}
}

// Property: cosine similarity of normalised vectors is symmetric and in
// [0, 1] for non-negative weights.
func TestQuickCosineBounds(t *testing.T) {
	f := func(a, b []uint8) bool {
		da := docFromBytes(a)
		db := docFromBytes(b)
		v := NewVectorizer([]string{da, db})
		va, vb := v.Transform(da), v.Transform(db)
		s1, s2 := Cosine(va, vb), Cosine(vb, va)
		return math.Abs(s1-s2) < 1e-12 && s1 >= 0 && s1 <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func docFromBytes(bs []uint8) string {
	words := []string{"lorem", "ipsum", "dolor", "sit", "amet", "elit"}
	out := ""
	for _, b := range bs {
		out += words[int(b)%len(words)] + " "
	}
	if out == "" {
		out = "empty"
	}
	return out
}

func TestTopTermsStable(t *testing.T) {
	v := NewVectorizer([]string{"zebra apple zebra", "apple"})
	vec := v.Transform("zebra apple zebra")
	terms := v.TopTerms(vec, 5)
	if len(terms) != 2 || terms[0] != "zebra" {
		t.Errorf("TopTerms = %v", terms)
	}
}
