package content

import "testing"

// FuzzDetectType checks the classifier never panics and always returns a
// valid type for arbitrary bodies and content-type headers.
func FuzzDetectType(f *testing.F) {
	f.Add([]byte(`{"a":1}`), "application/json")
	f.Add([]byte("<html><body>x</body></html>"), "")
	f.Add([]byte("<?xml version=\"1.0\"?>"), "weird/ct")
	f.Add([]byte{0xff, 0xfe, 0x00}, "")
	f.Fuzz(func(t *testing.T, body []byte, ct string) {
		got := DetectType(body, ct)
		if got < JSON || got > Other {
			t.Fatalf("DetectType returned invalid type %d", got)
		}
		// Tokenizer must be total as well.
		_ = Tokenize(string(body))
	})
}
