package content

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Tokenize lowercases the document and splits it into alphanumeric runs,
// dropping one-character tokens. HTML tags and JSON punctuation dissolve
// into their textual content, which is what the clustering should compare.
func Tokenize(doc string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 1 {
			tokens = append(tokens, b.String())
		}
		b.Reset()
	}
	for _, r := range doc {
		switch {
		case unicode.IsLetter(r), unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Vector is a sparse, L2-normalised TF-IDF vector: term index -> weight.
type Vector map[int]float64

// Cosine returns the cosine similarity of two normalised vectors, iterating
// over the smaller one.
func Cosine(a, b Vector) float64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var dot float64
	for k, va := range a {
		if vb, ok := b[k]; ok {
			dot += va * vb
		}
	}
	return dot
}

// CosineDistance is 1 − cosine similarity, clamped to [0, 1].
func CosineDistance(a, b Vector) float64 {
	d := 1 - Cosine(a, b)
	if d < 0 {
		return 0
	}
	if d > 1 {
		return 1
	}
	return d
}

// Vectorizer fits a vocabulary and inverse document frequencies on a corpus
// and converts documents to TF-IDF vectors.
type Vectorizer struct {
	vocab map[string]int
	idf   []float64
}

// NewVectorizer fits on the corpus: idf(t) = ln((1+N)/(1+df)) + 1, the
// smoothed form that keeps unseen terms finite.
func NewVectorizer(corpus []string) *Vectorizer {
	v := &Vectorizer{vocab: make(map[string]int)}
	df := []int{}
	seen := make(map[int]bool)
	for _, doc := range corpus {
		clear(seen)
		for _, tok := range Tokenize(doc) {
			idx, ok := v.vocab[tok]
			if !ok {
				idx = len(v.vocab)
				v.vocab[tok] = idx
				df = append(df, 0)
			}
			if !seen[idx] {
				seen[idx] = true
				df[idx]++
			}
		}
	}
	n := float64(len(corpus))
	v.idf = make([]float64, len(df))
	for i, d := range df {
		v.idf[i] = math.Log((1+n)/(1+float64(d))) + 1
	}
	return v
}

// VocabSize returns the number of fitted terms.
func (v *Vectorizer) VocabSize() int { return len(v.vocab) }

// Transform converts one document to its normalised TF-IDF vector. Terms
// outside the fitted vocabulary are ignored.
func (v *Vectorizer) Transform(doc string) Vector {
	tf := make(map[int]float64)
	for _, tok := range Tokenize(doc) {
		if idx, ok := v.vocab[tok]; ok {
			tf[idx]++
		}
	}
	var norm float64
	vec := make(Vector, len(tf))
	for idx, f := range tf {
		w := f * v.idf[idx]
		vec[idx] = w
		norm += w * w
	}
	if norm > 0 {
		norm = math.Sqrt(norm)
		for idx := range vec {
			vec[idx] /= norm
		}
	}
	return vec
}

// TransformAll vectorises the whole corpus.
func (v *Vectorizer) TransformAll(corpus []string) []Vector {
	out := make([]Vector, len(corpus))
	for i, doc := range corpus {
		out[i] = v.Transform(doc)
	}
	return out
}

// TopTerms returns the k highest-weighted terms of a vector, for cluster
// labelling during triage.
func (v *Vectorizer) TopTerms(vec Vector, k int) []string {
	type tw struct {
		term string
		w    float64
	}
	inv := make([]string, len(v.vocab))
	for t, i := range v.vocab {
		inv[i] = t
	}
	var all []tw
	for idx, w := range vec {
		all = append(all, tw{inv[idx], w})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w != all[j].w {
			return all[i].w > all[j].w
		}
		return all[i].term < all[j].term
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].term
	}
	return out
}
