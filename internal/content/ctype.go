// Package content implements the response-content analysis of paper §3.4:
// responses are typed as JSON, HTML, Plaintext or Others; converted to
// TF-IDF vectors; and grouped by agglomerative hierarchical clustering with
// average linkage under cosine distance, cutting the dendrogram at 90%
// similarity (cosine distance < 0.1).
package content

import (
	"encoding/json"
	"fmt"
	"strings"
)

// Type is the coarse content class of a response body.
type Type int

const (
	JSON Type = iota
	HTML
	Plaintext
	Other
	numTypes
)

// NumTypes is the number of content classes.
const NumTypes = int(numTypes)

func (t Type) String() string {
	switch t {
	case JSON:
		return "JSON"
	case HTML:
		return "HTML"
	case Plaintext:
		return "Plaintext"
	case Other:
		return "Others"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// DetectType classifies a response body, using the Content-Type header as a
// hint and falling back to structural sniffing. JSON often indicates API
// responses, HTML webpage generation, Plaintext logs or textual output;
// Others covers JavaScript, XML, PHP and similar (paper §3.4).
func DetectType(body []byte, contentType string) Type {
	ct := strings.ToLower(contentType)
	switch {
	case strings.Contains(ct, "json"):
		return JSON
	case strings.Contains(ct, "html"):
		return HTML
	case strings.Contains(ct, "javascript"), strings.Contains(ct, "xml"),
		strings.Contains(ct, "php"), strings.Contains(ct, "css"):
		return Other
	}
	trimmed := strings.TrimSpace(string(body))
	if trimmed == "" {
		return Plaintext
	}
	if looksJSON(trimmed) {
		return JSON
	}
	if looksHTML(trimmed) {
		return HTML
	}
	if looksOther(trimmed) {
		return Other
	}
	return Plaintext
}

func looksJSON(s string) bool {
	if len(s) == 0 {
		return false
	}
	if c := s[0]; c != '{' && c != '[' && c != '"' {
		return false
	}
	return json.Valid([]byte(s))
}

func looksHTML(s string) bool {
	l := strings.ToLower(s)
	for _, marker := range []string{"<!doctype html", "<html", "<head", "<body", "<div", "<meta ", "<title"} {
		if strings.Contains(l, marker) {
			return true
		}
	}
	return false
}

func looksOther(s string) bool {
	l := strings.ToLower(s)
	switch {
	case strings.HasPrefix(l, "<?xml"), strings.HasPrefix(l, "<?php"):
		return true
	case strings.Contains(l, "function(") && strings.Contains(l, "var "):
		return true // bare JavaScript
	case strings.HasPrefix(l, "<") && strings.Contains(l, "/>") && !looksHTML(s):
		return true // generic XML fragment
	}
	return false
}
