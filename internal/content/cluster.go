package content

import (
	"sort"
)

// Merge records one dendrogram join. A and B are representative leaves of
// the two clusters joined at average-linkage distance Dist; Size is the
// number of leaves under the merged cluster.
type Merge struct {
	A, B int
	Dist float64
	Size int
}

// Dendrogram is the agglomerative clustering of n items. Merges are sorted
// by ascending distance; cutting at a threshold unions every merge below it.
type Dendrogram struct {
	N      int
	Merges []Merge
}

// Agglomerate builds the average-linkage dendrogram over the items'
// pairwise cosine distances using the nearest-neighbour-chain algorithm
// (Müllner 2011, the reference cited by the paper), which runs in O(n²)
// time and memory.
func Agglomerate(vecs []Vector) *Dendrogram {
	n := len(vecs)
	d := &Dendrogram{N: n}
	if n < 2 {
		return d
	}

	// Full distance matrix over active slots, float32 to halve the
	// footprint at corpus scale. Each active cluster lives in the slot of
	// one of its leaves, so slot indices double as representative leaves.
	dist := make([]float32, n*n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := float32(CosineDistance(vecs[i], vecs[j]))
			dist[i*n+j] = v
			dist[j*n+i] = v
		}
	}

	size := make([]int, n)
	active := make([]bool, n)
	for i := range size {
		size[i] = 1
		active[i] = true
	}
	remaining := n
	chain := make([]int, 0, n)

	for remaining > 1 {
		if len(chain) == 0 {
			for i := 0; i < n; i++ {
				if active[i] {
					chain = append(chain, i)
					break
				}
			}
		}
		for {
			tip := chain[len(chain)-1]
			prev := -1
			if len(chain) > 1 {
				prev = chain[len(chain)-2]
			}
			// Nearest active neighbour of tip, preferring the previous
			// chain element on ties so reciprocity terminates.
			best, bestDist := -1, float32(0)
			for j := 0; j < n; j++ {
				if !active[j] || j == tip {
					continue
				}
				dj := dist[tip*n+j]
				if best == -1 || dj < bestDist || (dj == bestDist && j == prev) {
					best, bestDist = j, dj
				}
			}
			if best != prev {
				chain = append(chain, best)
				continue
			}
			// Reciprocal nearest neighbours: merge prev and tip.
			chain = chain[:len(chain)-2]
			a, b := prev, tip
			d.Merges = append(d.Merges, Merge{
				A: a, B: b,
				Dist: float64(bestDist),
				Size: size[a] + size[b],
			})
			// Lance-Williams update for average linkage into slot a.
			na, nb := float32(size[a]), float32(size[b])
			for k := 0; k < n; k++ {
				if !active[k] || k == a || k == b {
					continue
				}
				v := (na*dist[a*n+k] + nb*dist[b*n+k]) / (na + nb)
				dist[a*n+k] = v
				dist[k*n+a] = v
			}
			size[a] += size[b]
			active[b] = false
			remaining--
			break
		}
	}
	// NN-chain emits merges out of height order; sort so Cut can stop at
	// the first merge above its threshold (average linkage is monotone, so
	// the sorted order is also a valid dendrogram order).
	sort.SliceStable(d.Merges, func(i, j int) bool { return d.Merges[i].Dist < d.Merges[j].Dist })
	return d
}

// Cut slices the dendrogram at the given distance threshold and returns the
// flat clustering as a slice of item-index groups, largest first. The
// paper's setting is threshold 0.1 (90% similarity).
func (d *Dendrogram) Cut(threshold float64) [][]int {
	n := d.N
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, m := range d.Merges {
		if m.Dist >= threshold {
			break
		}
		a, b := find(m.A), find(m.B)
		if a != b {
			parent[b] = a
		}
	}
	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}

// NumClusters returns the flat cluster count at the threshold without
// materialising the groups.
func (d *Dendrogram) NumClusters(threshold float64) int {
	n := d.N
	if n == 0 {
		return 0
	}
	k := n
	seenPair := make([]int, n)
	for i := range seenPair {
		seenPair[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for seenPair[x] != x {
			seenPair[x] = seenPair[seenPair[x]]
			x = seenPair[x]
		}
		return x
	}
	for _, m := range d.Merges {
		if m.Dist >= threshold {
			break
		}
		a, b := find(m.A), find(m.B)
		if a != b {
			seenPair[b] = a
			k--
		}
	}
	return k
}

// ClusterDocs is the end-to-end grouping of paper §3.4 within one content
// type: vectorise the documents and cut the average-linkage dendrogram at
// the threshold. It returns groups of document indices.
func ClusterDocs(docs []string, threshold float64) [][]int {
	if len(docs) == 0 {
		return nil
	}
	v := NewVectorizer(docs)
	vecs := v.TransformAll(docs)
	return Agglomerate(vecs).Cut(threshold)
}
