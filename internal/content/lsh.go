package content

import (
	"hash/fnv"
	"math"
	"sort"
)

// MinHash/LSH pre-bucketing for large response corpora. Exact average-
// linkage clustering is O(n²) in time and memory; at the paper's corpus
// size (12k documents) that is tractable, but a full-population sweep is
// not. ClusterDocsLSH first buckets near-duplicate candidates with
// locality-sensitive hashing over MinHash signatures, then runs the exact
// agglomerative algorithm inside each bucket. Documents in different
// buckets are never compared, trading a small amount of recall at the
// cluster boundary for near-linear scaling (BenchmarkClusteringLSH is the
// ablation against the exact path).

// MinHasher computes fixed-length MinHash signatures over token sets.
type MinHasher struct {
	seeds []uint64
}

// NewMinHasher builds a hasher with k independent hash functions.
func NewMinHasher(k int) *MinHasher {
	seeds := make([]uint64, k)
	s := uint64(0x9e3779b97f4a7c15)
	for i := range seeds {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		seeds[i] = s
	}
	return &MinHasher{seeds: seeds}
}

// Signature returns the MinHash signature of the document's token set.
func (m *MinHasher) Signature(doc string) []uint64 {
	sig := make([]uint64, len(m.seeds))
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for _, tok := range Tokenize(doc) {
		h := fnv.New64a()
		h.Write([]byte(tok))
		base := h.Sum64()
		for i, seed := range m.seeds {
			// Mix the token hash with each seed (cheap universal-ish hash).
			v := (base ^ seed) * 0xff51afd7ed558ccd
			v ^= v >> 33
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// JaccardEstimate estimates token-set similarity from two signatures.
func JaccardEstimate(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// lshBuckets groups document indices whose signatures collide in any band.
// bands*rows must equal the signature length.
func lshBuckets(sigs [][]uint64, bands, rows int) [][]int {
	type key struct {
		band int
		h    uint64
	}
	buckets := map[key][]int{}
	for i, sig := range sigs {
		for b := 0; b < bands; b++ {
			h := fnv.New64a()
			for r := 0; r < rows; r++ {
				v := sig[b*rows+r]
				var buf [8]byte
				for j := 0; j < 8; j++ {
					buf[j] = byte(v >> (8 * j))
				}
				h.Write(buf[:])
			}
			buckets[key{b, h.Sum64()}] = append(buckets[key{b, h.Sum64()}], i)
		}
	}
	// Union band collisions into connected components.
	parent := make([]int, len(sigs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, members := range buckets {
		for i := 1; i < len(members); i++ {
			a, b := find(members[0]), find(members[i])
			if a != b {
				parent[b] = a
			}
		}
	}
	comp := map[int][]int{}
	for i := range sigs {
		r := find(i)
		comp[r] = append(comp[r], i)
	}
	out := make([][]int, 0, len(comp))
	for _, c := range comp {
		sort.Ints(c)
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// ClusterDocsLSH clusters docs at the cosine-distance threshold using LSH
// candidate buckets followed by exact agglomerative clustering per bucket.
// Output format matches ClusterDocs: groups of document indices, largest
// first.
func ClusterDocsLSH(docs []string, threshold float64) [][]int {
	if len(docs) == 0 {
		return nil
	}
	const (
		sigLen = 64
		bands  = 16 // rows = 4: collision prob ≈ s⁴ per band
	)
	mh := NewMinHasher(sigLen)
	sigs := make([][]uint64, len(docs))
	for i, d := range docs {
		sigs[i] = mh.Signature(d)
	}
	v := NewVectorizer(docs)

	var out [][]int
	for _, bucket := range lshBuckets(sigs, bands, sigLen/bands) {
		if len(bucket) == 1 {
			out = append(out, bucket)
			continue
		}
		sub := make([]Vector, len(bucket))
		for i, idx := range bucket {
			sub[i] = v.Transform(docs[idx])
		}
		for _, g := range Agglomerate(sub).Cut(threshold) {
			mapped := make([]int, len(g))
			for i, local := range g {
				mapped[i] = bucket[local]
			}
			out = append(out, mapped)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i]) != len(out[j]) {
			return len(out[i]) > len(out[j])
		}
		return out[i][0] < out[j][0]
	})
	return out
}
