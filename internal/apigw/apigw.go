// Package apigw simulates the API Gateway products of paper §2.2: the
// second HTTP invocation path for serverless functions. A gateway binds
// backends (cloud functions or arbitrary HTTP services) behind a generated
// REST API and adds the features the paper lists — response caching, rate
// limiting, and custom authentication — at extra cost.
//
// The package also encodes why the study excluded API gateways (§3.5):
// gateway domains are generated from an opaque API ID and a shared suffix,
// and the backend may be any service, so a gateway FQDN neither matches any
// function-URL pattern nor proves a serverless backend. TestExclusionRationale
// demonstrates both properties.
package apigw

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/faas"
)

// Backend handles a routed request. Implementations: FunctionBackend
// (invokes a cloud function) and StaticBackend (any other HTTP service —
// the reason gateway traffic cannot be attributed to serverless).
type Backend interface {
	Handle(req faas.Request) (faas.Response, error)
	// Kind is a human label ("function", "http", …).
	Kind() string
}

// FunctionBackend invokes a function deployed on a faas.Platform.
type FunctionBackend struct {
	Platform *faas.Platform
	FQDN     string
}

// Handle implements Backend.
func (b *FunctionBackend) Handle(req faas.Request) (faas.Response, error) {
	resp, _, err := b.Platform.Invoke(b.FQDN, req)
	return resp, err
}

// Kind implements Backend.
func (b *FunctionBackend) Kind() string { return "function" }

// StaticBackend returns a fixed response, standing in for VMs, containers,
// or third-party services bound behind the same gateway product.
type StaticBackend struct {
	Status      int
	ContentType string
	Body        []byte
}

// Handle implements Backend.
func (b *StaticBackend) Handle(req faas.Request) (faas.Response, error) {
	return faas.Response{
		Status:  b.Status,
		Headers: map[string]string{"Content-Type": b.ContentType},
		Body:    b.Body,
	}, nil
}

// Kind implements Backend.
func (b *StaticBackend) Kind() string { return "http" }

// Route binds a method+path to a backend with optional gateway features.
type Route struct {
	Method  string
	Path    string // exact match; a trailing "/*" matches any suffix
	Backend Backend

	// CacheTTL enables response caching for the route (paper: "caching").
	CacheTTL time.Duration
	// RateLimit caps requests per client per second; 0 disables
	// (paper: "rate limiting"). Burst equals the limit.
	RateLimit int
	// Auth validates the request before routing (paper: "custom
	// authentication"); nil admits everyone.
	Auth Authorizer
}

// Authorizer decides whether a request may pass.
type Authorizer func(req faas.Request) bool

// APIKeyAuth admits requests carrying one of the keys in an x-api-key
// header.
func APIKeyAuth(keys ...string) Authorizer {
	set := make(map[string]struct{}, len(keys))
	for _, k := range keys {
		set[k] = struct{}{}
	}
	return func(req faas.Request) bool {
		_, ok := set[req.Headers["X-Api-Key"]]
		return ok
	}
}

// Gateway is one deployed REST API.
type Gateway struct {
	// ID is the opaque generated API identifier; Domain embeds it under the
	// provider's shared execute-api suffix.
	ID     string
	Domain string
	Stage  string

	mu      sync.Mutex
	routes  []*Route
	cache   map[string]cacheEntry
	buckets map[string]*bucket
	meter   Meter
}

type cacheEntry struct {
	resp    faas.Response
	expires time.Time
}

// Meter counts gateway traffic for billing (API calls are charged per
// million on top of function costs — the "additional costs" of §2.2).
type Meter struct {
	Calls      int64
	CacheHits  int64
	Throttled  int64
	AuthDenied int64
}

// USDPerMillionCalls is a representative gateway price.
const USDPerMillionCalls = 3.50

// Cost prices the accumulated calls.
func (m Meter) Cost() float64 { return float64(m.Calls) / 1e6 * USDPerMillionCalls }

// New creates a gateway with a generated API ID under the region's
// execute-api suffix.
func New(rng *rand.Rand, region, stage string) *Gateway {
	const alphabet = "abcdefghijklmnopqrstuvwxyz0123456789"
	id := make([]byte, 10)
	for i := range id {
		id[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return &Gateway{
		ID:      string(id),
		Domain:  fmt.Sprintf("%s.execute-api.%s.amazonaws.com", id, region),
		Stage:   stage,
		cache:   make(map[string]cacheEntry),
		buckets: make(map[string]*bucket),
	}
}

// Bind registers a route.
func (g *Gateway) Bind(r *Route) {
	g.mu.Lock()
	g.routes = append(g.routes, r)
	g.mu.Unlock()
}

// Meter returns a snapshot of the traffic counters.
func (g *Gateway) Meter() Meter {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.meter
}

// Dispatch routes one request arriving at simulated time req.Time from the
// given client identity (for rate limiting). 404 for unbound paths, 401 for
// failed auth, 429 when throttled.
func (g *Gateway) Dispatch(client string, req faas.Request) (faas.Response, error) {
	g.mu.Lock()
	g.meter.Calls++
	route := g.match(req.Method, req.Path)
	g.mu.Unlock()
	if route == nil {
		return faas.Response{Status: 404, Body: []byte(`{"message":"Missing Authentication Token"}`)}, nil
	}
	if route.Auth != nil && !route.Auth(req) {
		g.count(func(m *Meter) { m.AuthDenied++ })
		return faas.Response{Status: 401, Body: []byte(`{"message":"Unauthorized"}`)}, nil
	}
	if route.RateLimit > 0 && !g.allow(client, route, req.Time) {
		g.count(func(m *Meter) { m.Throttled++ })
		return faas.Response{Status: 429, Body: []byte(`{"message":"Too Many Requests"}`)}, nil
	}
	if route.CacheTTL > 0 {
		key := req.Method + " " + req.Path + "?" + req.Query
		g.mu.Lock()
		if e, ok := g.cache[key]; ok && req.Time.Before(e.expires) {
			g.meter.CacheHits++
			g.mu.Unlock()
			return e.resp, nil
		}
		g.mu.Unlock()
		resp, err := route.Backend.Handle(req)
		if err == nil && resp.Status < 500 {
			g.mu.Lock()
			g.cache[key] = cacheEntry{resp: resp, expires: req.Time.Add(route.CacheTTL)}
			g.mu.Unlock()
		}
		return resp, err
	}
	return route.Backend.Handle(req)
}

func (g *Gateway) count(fn func(*Meter)) {
	g.mu.Lock()
	fn(&g.meter)
	g.mu.Unlock()
}

// match finds the first bound route for method+path.
func (g *Gateway) match(method, path string) *Route {
	for _, r := range g.routes {
		if r.Method != method && r.Method != "*" {
			continue
		}
		if r.Path == path {
			return r
		}
		if strings.HasSuffix(r.Path, "/*") && strings.HasPrefix(path, strings.TrimSuffix(r.Path, "*")) {
			return r
		}
	}
	return nil
}

// bucket is a token bucket advanced on the simulated clock.
type bucket struct {
	tokens float64
	last   time.Time
}

// allow draws a token from the (client, route) bucket.
func (g *Gateway) allow(client string, route *Route, now time.Time) bool {
	key := client + "|" + route.Method + " " + route.Path
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.buckets[key]
	if !ok {
		b = &bucket{tokens: float64(route.RateLimit), last: now}
		g.buckets[key] = b
	}
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * float64(route.RateLimit)
		if b.tokens > float64(route.RateLimit) {
			b.tokens = float64(route.RateLimit)
		}
		b.last = now
	}
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
