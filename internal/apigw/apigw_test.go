package apigw

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/providers"
)

var t0 = time.Date(2023, time.June, 1, 12, 0, 0, 0, time.UTC)

func newGW() *Gateway {
	return New(rand.New(rand.NewSource(1)), "us-east-1", "prod")
}

func fnBackend(t *testing.T, body string) (*faas.Platform, *FunctionBackend) {
	t.Helper()
	p := faas.NewPlatform()
	f := p.Deploy("x.lambda-url.us-east-1.on.aws", providers.AWS, "us-east-1", faas.Config{},
		func(ctx *faas.InvokeContext) faas.Response {
			return faas.Response{Status: 200, Headers: map[string]string{"Content-Type": "text/plain"}, Body: []byte(body)}
		}, t0)
	return p, &FunctionBackend{Platform: p, FQDN: f.FQDN}
}

func TestDispatchToFunctionBackend(t *testing.T) {
	g := newGW()
	_, be := fnBackend(t, "hello-from-lambda")
	g.Bind(&Route{Method: "GET", Path: "/hello", Backend: be})
	resp, err := g.Dispatch("client-a", faas.Request{Method: "GET", Path: "/hello", Time: t0})
	if err != nil || resp.Status != 200 || string(resp.Body) != "hello-from-lambda" {
		t.Fatalf("resp = %d %q err=%v", resp.Status, resp.Body, err)
	}
	if g.Meter().Calls != 1 {
		t.Errorf("meter = %+v", g.Meter())
	}
}

func TestDispatchUnboundPath(t *testing.T) {
	g := newGW()
	resp, err := g.Dispatch("c", faas.Request{Method: "GET", Path: "/nope", Time: t0})
	if err != nil || resp.Status != 404 {
		t.Errorf("unbound = %d, %v", resp.Status, err)
	}
}

func TestWildcardRoute(t *testing.T) {
	g := newGW()
	g.Bind(&Route{Method: "*", Path: "/api/*", Backend: &StaticBackend{Status: 200, Body: []byte("wild")}})
	resp, _ := g.Dispatch("c", faas.Request{Method: "POST", Path: "/api/v1/items", Time: t0})
	if resp.Status != 200 || string(resp.Body) != "wild" {
		t.Errorf("wildcard = %d %q", resp.Status, resp.Body)
	}
	resp, _ = g.Dispatch("c", faas.Request{Method: "GET", Path: "/other", Time: t0})
	if resp.Status != 404 {
		t.Errorf("non-matching path = %d", resp.Status)
	}
}

func TestCustomAuthentication(t *testing.T) {
	g := newGW()
	g.Bind(&Route{
		Method: "GET", Path: "/secure",
		Backend: &StaticBackend{Status: 200, Body: []byte("ok")},
		Auth:    APIKeyAuth("k1", "k2"),
	})
	resp, _ := g.Dispatch("c", faas.Request{Method: "GET", Path: "/secure", Time: t0})
	if resp.Status != 401 {
		t.Errorf("no key = %d, want 401", resp.Status)
	}
	resp, _ = g.Dispatch("c", faas.Request{
		Method: "GET", Path: "/secure", Time: t0,
		Headers: map[string]string{"X-Api-Key": "k2"},
	})
	if resp.Status != 200 {
		t.Errorf("valid key = %d", resp.Status)
	}
	if g.Meter().AuthDenied != 1 {
		t.Errorf("meter = %+v", g.Meter())
	}
}

func TestRateLimiting(t *testing.T) {
	g := newGW()
	g.Bind(&Route{
		Method: "GET", Path: "/limited",
		Backend:   &StaticBackend{Status: 200, Body: []byte("ok")},
		RateLimit: 3,
	})
	var throttled int
	for i := 0; i < 5; i++ {
		resp, _ := g.Dispatch("same-client", faas.Request{Method: "GET", Path: "/limited", Time: t0})
		if resp.Status == 429 {
			throttled++
		}
	}
	if throttled != 2 {
		t.Errorf("throttled %d of 5 at burst 3", throttled)
	}
	// A different client has its own bucket.
	resp, _ := g.Dispatch("other-client", faas.Request{Method: "GET", Path: "/limited", Time: t0})
	if resp.Status != 200 {
		t.Errorf("other client throttled: %d", resp.Status)
	}
	// Tokens refill with simulated time.
	resp, _ = g.Dispatch("same-client", faas.Request{Method: "GET", Path: "/limited", Time: t0.Add(2 * time.Second)})
	if resp.Status != 200 {
		t.Errorf("bucket did not refill: %d", resp.Status)
	}
}

func TestResponseCaching(t *testing.T) {
	g := newGW()
	p, be := fnBackend(t, "cached")
	g.Bind(&Route{Method: "GET", Path: "/c", Backend: be, CacheTTL: time.Minute})
	fn, _ := p.Lookup(be.FQDN)

	g.Dispatch("c", faas.Request{Method: "GET", Path: "/c", Time: t0})
	g.Dispatch("c", faas.Request{Method: "GET", Path: "/c", Time: t0.Add(10 * time.Second)})
	if got := fn.Meter().Invocations; got != 1 {
		t.Errorf("backend invoked %d times; second call should hit the cache", got)
	}
	if g.Meter().CacheHits != 1 {
		t.Errorf("meter = %+v", g.Meter())
	}
	// After TTL expiry the backend is hit again.
	g.Dispatch("c", faas.Request{Method: "GET", Path: "/c", Time: t0.Add(2 * time.Minute)})
	if got := fn.Meter().Invocations; got != 2 {
		t.Errorf("backend invoked %d times after TTL, want 2", got)
	}
	// Different query strings are distinct cache keys.
	g.Dispatch("c", faas.Request{Method: "GET", Path: "/c", Query: "v=1", Time: t0.Add(2 * time.Minute)})
	if got := fn.Meter().Invocations; got != 3 {
		t.Errorf("query-distinct request served from cache (invocations %d)", got)
	}
}

func TestGatewayCost(t *testing.T) {
	m := Meter{Calls: 2_000_000}
	if c := m.Cost(); c != 7.0 {
		t.Errorf("cost = %v, want 7.0 (2M calls at $3.50/M)", c)
	}
}

// TestExclusionRationale encodes §3.5: gateway domains do not match any
// function-URL pattern, and the same gateway fronts non-function backends,
// so gateway traffic cannot be attributed to serverless functions.
func TestExclusionRationale(t *testing.T) {
	g := newGW()
	m := providers.NewMatcher(providers.All())
	if in, ok := m.Identify(g.Domain); ok {
		t.Errorf("gateway domain %q identified as %s; gateways must be invisible to the function matcher", g.Domain, in.Name)
	}
	// One gateway, two kinds of backend.
	_, fb := fnBackend(t, "fn")
	g.Bind(&Route{Method: "GET", Path: "/fn", Backend: fb})
	g.Bind(&Route{Method: "GET", Path: "/vm", Backend: &StaticBackend{Status: 200, Body: []byte("vm")}})
	kinds := map[string]bool{}
	for _, route := range []*Route{g.routes[0], g.routes[1]} {
		kinds[route.Backend.Kind()] = true
	}
	if !kinds["function"] || !kinds["http"] {
		t.Errorf("backend kinds = %v; need both to demonstrate ambiguity", kinds)
	}
}

func TestGatewayDomainShape(t *testing.T) {
	g := New(rand.New(rand.NewSource(2)), "eu-west-1", "v1")
	if len(g.ID) != 10 {
		t.Errorf("API id = %q", g.ID)
	}
	want := g.ID + ".execute-api.eu-west-1.amazonaws.com"
	if g.Domain != want {
		t.Errorf("domain = %q, want %q", g.Domain, want)
	}
}

func TestBackendErrorPropagates(t *testing.T) {
	g := newGW()
	p := faas.NewPlatform() // nothing deployed
	g.Bind(&Route{Method: "GET", Path: "/dead", Backend: &FunctionBackend{Platform: p, FQDN: "ghost.on.aws"}})
	_, err := g.Dispatch("c", faas.Request{Method: "GET", Path: "/dead", Time: t0})
	if err == nil {
		t.Error("missing backend error swallowed")
	}
}
