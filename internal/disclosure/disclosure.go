// Package disclosure assembles the responsible-disclosure packages of paper
// §5.5 / Appendix A: every confirmed abuse case is reported to the affected
// provider with the evidence an abuse desk needs, and the vendor's response
// is tracked. The paper reported all identified abuses and received
// supportive responses from Tencent and AWS.
package disclosure

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/abuse"
	"repro/internal/providers"
)

// Item is one abused function reported to its provider.
type Item struct {
	FQDN     string
	Case     abuse.Case
	Evidence []string
	Requests int64
}

// Status tracks a provider's handling of a report.
type Status int

const (
	Draft Status = iota
	Reported
	Acknowledged
	Remediated
)

func (s Status) String() string {
	switch s {
	case Draft:
		return "draft"
	case Reported:
		return "reported"
	case Acknowledged:
		return "acknowledged"
	case Remediated:
		return "remediated"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Report is the disclosure package for one provider.
type Report struct {
	Provider providers.ID
	Items    []Item
	Status   Status
	// History records status transitions with timestamps and notes.
	History []Transition
}

// Transition is one status change.
type Transition struct {
	At     time.Time
	Status Status
	Note   string
}

// Advance moves the report forward; regressions are rejected.
func (r *Report) Advance(to Status, at time.Time, note string) error {
	if to <= r.Status {
		return fmt.Errorf("disclosure: cannot move %s report back to %s", r.Status, to)
	}
	r.Status = to
	r.History = append(r.History, Transition{At: at, Status: to, Note: note})
	return nil
}

// Build groups an abuse report into per-provider disclosure packages.
// verdicts supplies evidence; requests supplies per-function PDNS volume.
func Build(rep *abuse.Report, verdicts map[string][]abuse.Verdict, requests map[string]int64) []*Report {
	m := providers.NewMatcher(nil)
	byProvider := map[providers.ID]*Report{}
	fqdns := make([]string, 0, len(rep.Assigned))
	for f := range rep.Assigned {
		fqdns = append(fqdns, f)
	}
	sort.Strings(fqdns)
	for _, fqdn := range fqdns {
		in, ok := m.Identify(fqdn)
		if !ok {
			continue
		}
		r := byProvider[in.ID]
		if r == nil {
			r = &Report{Provider: in.ID}
			byProvider[in.ID] = r
		}
		item := Item{FQDN: fqdn, Case: rep.Assigned[fqdn], Requests: requests[fqdn]}
		if v, ok := abuse.Primary(verdicts[fqdn]); ok {
			item.Evidence = v.Evidence
		}
		r.Items = append(r.Items, item)
	}
	out := make([]*Report, 0, len(byProvider))
	for _, r := range byProvider {
		out = append(out, r)
	}
	// Tie-break equal item counts by provider ID: out was filled from map
	// iteration, and a comparator with ties would leak that order into the
	// rendered artifact, breaking run-to-run byte-identity.
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Items) != len(out[j].Items) {
			return len(out[i].Items) > len(out[j].Items)
		}
		return out[i].Provider < out[j].Provider
	})
	return out
}

// Render formats a report as the text sent to the provider's abuse desk.
func Render(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "To: %s abuse desk\n", r.Provider)
	fmt.Fprintf(&b, "Subject: %d serverless functions violating the terms of service\n\n", len(r.Items))
	b.WriteString("During an academic measurement study of serverless cloud functions we\n")
	b.WriteString("identified functions on your platform supporting malicious, illegal, or\n")
	b.WriteString("policy-violating activity. Details follow; we are happy to assist with\n")
	b.WriteString("review and remediation.\n\n")
	byCase := map[abuse.Case][]Item{}
	for _, it := range r.Items {
		byCase[it.Case] = append(byCase[it.Case], it)
	}
	for c := abuse.Case(0); int(c) < abuse.NumCases; c++ {
		items := byCase[c]
		if len(items) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%s (%d functions):\n", c, len(items))
		for _, it := range items {
			fmt.Fprintf(&b, "  %s  (%d observed invocations", it.FQDN, it.Requests)
			if len(it.Evidence) > 0 {
				fmt.Fprintf(&b, "; indicators: %s", strings.Join(it.Evidence, ", "))
			}
			b.WriteString(")\n")
		}
	}
	fmt.Fprintf(&b, "\nStatus: %s\n", r.Status)
	return b.String()
}

// SimulateVendorResponses applies the outcomes the paper reports: Tencent
// and AWS acknowledged (AWS noting the content is user-managed but offering
// to assist); other providers did not respond within the study.
func SimulateVendorResponses(reports []*Report, at time.Time) {
	for _, r := range reports {
		r.Advance(Reported, at, "initial disclosure sent")
		switch r.Provider {
		case providers.Tencent:
			r.Advance(Acknowledged, at.Add(72*time.Hour), "supportive response; functions under review")
		case providers.AWS:
			r.Advance(Acknowledged, at.Add(96*time.Hour), "content is user-managed; willing to assist in review and remediation")
		}
	}
}
