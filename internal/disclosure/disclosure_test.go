package disclosure

import (
	"strings"
	"testing"
	"time"

	"repro/internal/abuse"
	"repro/internal/providers"
)

var t0 = time.Date(2024, time.May, 1, 9, 0, 0, 0, time.UTC)

func buildFixture(t *testing.T) []*Report {
	t.Helper()
	verdicts := map[string][]abuse.Verdict{
		"slots-x7gk29slq1-uc.a.run.app": {{
			FQDN: "slots-x7gk29slq1-uc.a.run.app", Case: abuse.CaseGambling,
			Evidence: []string{"slot", "betting", "google-site-verification"},
		}},
		"keys-shop-abcdefghij.cn-shanghai.fcapp.run": {{
			FQDN: "keys-shop-abcdefghij.cn-shanghai.fcapp.run", Case: abuse.CaseOpenAIResale,
			Contacts: []string{"wechat:x"}, Evidence: []string{"resale-mention"},
		}},
		"1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com": {{
			FQDN: "1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com", Case: abuse.CaseC2,
			Evidence: []string{"cs-like-1"},
		}},
	}
	requests := map[string]int64{
		"slots-x7gk29slq1-uc.a.run.app":                        129,
		"keys-shop-abcdefghij.cn-shanghai.fcapp.run":           437,
		"1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com": 17081,
	}
	rep := abuse.NewReport(verdicts, requests, 1000)
	return Build(rep, verdicts, requests)
}

func TestBuildGroupsByProvider(t *testing.T) {
	reports := buildFixture(t)
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3 providers", len(reports))
	}
	seen := map[providers.ID]int{}
	for _, r := range reports {
		seen[r.Provider] = len(r.Items)
		if r.Status != Draft {
			t.Errorf("%v: fresh report status = %v", r.Provider, r.Status)
		}
	}
	if seen[providers.Tencent] != 1 || seen[providers.Aliyun] != 1 || seen[providers.Google2] != 1 {
		t.Errorf("grouping = %v", seen)
	}
}

func TestRenderReport(t *testing.T) {
	reports := buildFixture(t)
	var tencent *Report
	for _, r := range reports {
		if r.Provider == providers.Tencent {
			tencent = r
		}
	}
	out := Render(tencent)
	for _, want := range []string{
		"Tencent abuse desk", "Hide C2 server", "17081 observed invocations",
		"cs-like-1", "Status: draft",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestStatusTransitions(t *testing.T) {
	r := &Report{Provider: providers.AWS}
	if err := r.Advance(Reported, t0, "sent"); err != nil {
		t.Fatal(err)
	}
	if err := r.Advance(Acknowledged, t0.Add(time.Hour), "ack"); err != nil {
		t.Fatal(err)
	}
	if err := r.Advance(Reported, t0.Add(2*time.Hour), "regress"); err == nil {
		t.Error("status regression accepted")
	}
	if len(r.History) != 2 {
		t.Errorf("history = %v", r.History)
	}
	if r.History[1].Status != Acknowledged {
		t.Errorf("history order wrong: %v", r.History)
	}
}

func TestSimulateVendorResponses(t *testing.T) {
	reports := buildFixture(t)
	SimulateVendorResponses(reports, t0)
	statuses := map[providers.ID]Status{}
	for _, r := range reports {
		statuses[r.Provider] = r.Status
	}
	if statuses[providers.Tencent] != Acknowledged {
		t.Errorf("Tencent status = %v, want acknowledged (§5.5)", statuses[providers.Tencent])
	}
	if statuses[providers.Google2] != Reported {
		t.Errorf("Google2 status = %v, want reported (no response)", statuses[providers.Google2])
	}
}
