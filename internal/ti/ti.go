// Package ti simulates the threat-intelligence lookup used in paper §5.5 to
// quantify the serverless defence gap (Finding 10). The real study queried
// VirusTotal for every abused function domain and found only four flagged —
// all C2 relays — i.e. 0.67% coverage of 594 abused functions. This oracle
// reproduces that sparse-coverage behaviour: a deliberately tiny blocklist
// seeded from a subset of C2 domains, with everything else unknown.
package ti

import (
	"sort"
	"strings"
	"sync"
)

// Verdict is a TI lookup result.
type Verdict int

const (
	// Unknown means no engine has an opinion (the overwhelming outcome for
	// serverless abuse).
	Unknown Verdict = iota
	// Malicious means at least one engine flags the domain.
	Malicious
)

func (v Verdict) String() string {
	if v == Malicious {
		return "malicious"
	}
	return "unknown"
}

// Oracle is a VirusTotal-like domain reputation service.
type Oracle struct {
	mu      sync.RWMutex
	flagged map[string]int // domain -> engines flagging it
	queries int64
}

// NewOracle returns an oracle with an empty blocklist.
func NewOracle() *Oracle {
	return &Oracle{flagged: make(map[string]int)}
}

// Seed adds domains to the blocklist with the given engine count. The
// simulated study seeds exactly four C2 relay domains, matching Finding 10.
func (o *Oracle) Seed(domains []string, engines int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, d := range domains {
		o.flagged[strings.ToLower(d)] = engines
	}
}

// Lookup returns the verdict and flagging-engine count for a domain.
func (o *Oracle) Lookup(domain string) (Verdict, int) {
	o.mu.Lock()
	o.queries++
	n := o.flagged[strings.ToLower(domain)]
	o.mu.Unlock()
	if n > 0 {
		return Malicious, n
	}
	return Unknown, 0
}

// Queries reports how many lookups have been served.
func (o *Oracle) Queries() int64 {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.queries
}

// Coverage summarises TI awareness over a set of abused domains: how many
// are flagged, and the flagged fraction — the paper's defence-gap metric.
type Coverage struct {
	Total   int
	Flagged int
	Domains []string // flagged domains, sorted
}

// Rate is Flagged / Total.
func (c Coverage) Rate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Flagged) / float64(c.Total)
}

// Assess looks up every domain and returns the coverage summary.
func (o *Oracle) Assess(domains []string) Coverage {
	c := Coverage{Total: len(domains)}
	for _, d := range domains {
		if v, _ := o.Lookup(d); v == Malicious {
			c.Flagged++
			c.Domains = append(c.Domains, strings.ToLower(d))
		}
	}
	sort.Strings(c.Domains)
	return c
}
