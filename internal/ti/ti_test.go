package ti

import (
	"fmt"
	"testing"
)

func TestLookupAndSeed(t *testing.T) {
	o := NewOracle()
	if v, n := o.Lookup("clean.example"); v != Unknown || n != 0 {
		t.Errorf("unseeded lookup = %v/%d", v, n)
	}
	o.Seed([]string{"BAD.example"}, 3)
	if v, n := o.Lookup("bad.example"); v != Malicious || n != 3 {
		t.Errorf("seeded lookup = %v/%d (case-insensitive expected)", v, n)
	}
	if o.Queries() != 2 {
		t.Errorf("queries = %d", o.Queries())
	}
	if Malicious.String() != "malicious" || Unknown.String() != "unknown" {
		t.Error("verdict strings wrong")
	}
}

func TestAssessDefenseGap(t *testing.T) {
	// Reproduce the Finding 10 shape: 594 abused domains, 4 flagged.
	o := NewOracle()
	var abused []string
	for i := 0; i < 594; i++ {
		abused = append(abused, fmt.Sprintf("fn%03d.example", i))
	}
	o.Seed(abused[:4], 2)
	c := o.Assess(abused)
	if c.Total != 594 || c.Flagged != 4 {
		t.Fatalf("coverage = %+v", c)
	}
	if r := c.Rate(); r < 0.0067 || r > 0.0068 {
		t.Errorf("rate = %v, want ~0.67%%", r)
	}
	if len(c.Domains) != 4 {
		t.Errorf("flagged domains = %v", c.Domains)
	}
}

func TestCoverageEmpty(t *testing.T) {
	if r := (Coverage{}).Rate(); r != 0 {
		t.Errorf("empty coverage rate = %v", r)
	}
}
