package c2

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// Relay simulates a cloud function hiding a C2 server of one family
// (paper Algorithm 1: the function forwards requests to the hidden C2 and
// returns its responses). Speaking the family protocol on a real TCP
// listener lets the Scanner exercise its full network path in tests and in
// the integration pipeline.
type Relay struct {
	Family string
	db     *DB

	ln     net.Listener
	wg     sync.WaitGroup
	closed chan struct{}
}

// NewRelay starts a relay for family on a loopback listener.
func NewRelay(db *DB, family string) (*Relay, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("c2: relay listen: %w", err)
	}
	r := &Relay{Family: family, db: db, ln: ln, closed: make(chan struct{})}
	r.wg.Add(1)
	go r.serve()
	return r, nil
}

// Addr returns the relay's host:port.
func (r *Relay) Addr() string { return r.ln.Addr().String() }

// Close stops the listener and waits for in-flight connections.
func (r *Relay) Close() {
	close(r.closed)
	r.ln.Close()
	r.wg.Wait()
}

func (r *Relay) serve() {
	defer r.wg.Done()
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.closed:
				return
			default:
				continue
			}
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer conn.Close()
			conn.SetDeadline(time.Now().Add(5 * time.Second))
			req := readRequest(conn)
			conn.Write(HandleRaw(r.db, r.Family, req))
		}()
	}
}

// readRequest reads one HTTP-framed request (headers plus declared body).
func readRequest(conn net.Conn) []byte {
	br := bufio.NewReader(conn)
	var buf bytes.Buffer
	contentLength := 0
	for {
		line, err := br.ReadString('\n')
		buf.WriteString(line)
		if err != nil {
			return buf.Bytes()
		}
		l := strings.ToLower(strings.TrimSpace(line))
		if v, ok := strings.CutPrefix(l, "content-length:"); ok {
			fmt.Sscanf(strings.TrimSpace(v), "%d", &contentLength)
		}
		if line == "\r\n" || line == "\n" {
			break
		}
	}
	if contentLength > 0 && contentLength < 1<<20 {
		body := make([]byte, contentLength)
		n, _ := io.ReadFull(br, body)
		buf.Write(body[:n])
	}
	return buf.Bytes()
}

// HandleRaw answers a raw request as a relay of the given family would: if
// the request matches the probe shape of one of the family's fingerprints,
// the hidden C2's banner comes back framed as an HTTP 200; anything else
// gets a generic 404, exactly how these functions evade content review.
func HandleRaw(db *DB, family string, req []byte) []byte {
	for _, fp := range db.ByFamily(family) {
		if probeShapeMatches(fp, req) {
			banner := Banner(fp)
			return []byte(fmt.Sprintf(
				"HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
				len(banner), banner))
		}
	}
	body := "Not Found"
	return []byte(fmt.Sprintf(
		"HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
		len(body), body))
}

// probeShapeMatches checks whether req looks like fp's probe: same request
// line and the probe's distinctive non-Host headers/body are present.
func probeShapeMatches(fp *Fingerprint, req []byte) bool {
	probe := fp.ProbeFor("x")
	probeLine, _, ok := bytes.Cut(probe, []byte("\r\n"))
	if !ok {
		return false
	}
	reqLine, _, ok := bytes.Cut(req, []byte("\r\n"))
	if !ok {
		return false
	}
	if !bytes.Equal(probeLine, reqLine) {
		return false
	}
	// Every probe line except request line, Host, and framing noise must
	// appear in the request.
	for _, line := range bytes.Split(probe, []byte("\r\n"))[1:] {
		if len(line) == 0 || bytes.HasPrefix(line, []byte("Host:")) ||
			bytes.HasPrefix(line, []byte("Connection:")) ||
			bytes.HasPrefix(line, []byte("Content-Length:")) {
			continue
		}
		if !bytes.Contains(req, line) {
			return false
		}
	}
	return true
}

// BannerResponse returns (status, contentType, body) for the simulated
// function-level handler: abusive functions deployed on the faas platform
// use this to answer HTTP-parsed requests the same way HandleRaw answers
// raw ones.
func BannerResponse(db *DB, family string, method, path string, headers map[string]string, body []byte) (int, string, []byte, bool) {
	// Reconstruct enough of the raw request for probe-shape matching.
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", method, path)
	for k, v := range headers {
		fmt.Fprintf(&b, "%s: %s\r\n", k, v)
	}
	b.WriteString("\r\n")
	b.Write(body)
	for _, fp := range db.ByFamily(family) {
		if probeShapeMatches(fp, b.Bytes()) {
			return 200, "application/octet-stream", Banner(fp), true
		}
	}
	return 404, "text/plain", []byte("Not Found"), false
}
