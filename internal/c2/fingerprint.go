// Package c2 implements the covert command-and-control detection of paper
// §5.1. Detection relies on communication fingerprints rather than response
// content: each fingerprint captures the binary-level pattern of the first
// request/response pair after a TCP handshake for one malware family's C2
// protocol — headers, token sequences, and field delimiters. Repurposed as
// active probes, the fingerprints emulate family-specific C2 requests; a
// function domain answering with the family's response pattern is flagged
// as a C2 relay.
//
// The paper used a commercial corpus of 26 signatures across 18 families
// (QiAnXin); this package ships a synthetic database of identical shape,
// including Cobalt Strike-like and InfoStealer-like families, so the
// scanning logic exercises the same code paths.
package c2

import (
	"bytes"
	"strings"
)

// Fingerprint describes one C2 protocol signature.
type Fingerprint struct {
	// ID uniquely names the signature; Family groups signatures of one
	// malware family (a family may have several protocol variants).
	ID     string
	Family string

	// Ports to probe. The study probed 80 (HTTP) and 443 (HTTPS).
	Ports []int

	// Probe is the raw request emitted after the TCP handshake. The
	// placeholder {{HOST}} is substituted with the target FQDN, letting
	// HTTP-transported C2 protocols carry a correct Host header.
	Probe string

	// Match is applied to the raw response bytes.
	Match Matcher
}

// ProbeFor renders the probe payload for a target host.
func (f *Fingerprint) ProbeFor(host string) []byte {
	return []byte(strings.ReplaceAll(f.Probe, "{{HOST}}", host))
}

// Matcher captures the binary-level response pattern of a family protocol.
// All configured conditions must hold.
type Matcher struct {
	// Prefix anchors the start of the response (raw-socket protocols).
	Prefix []byte
	// Tokens must all appear, in order, anywhere in the response. For C2
	// relayed over HTTP, tokens live in the response body or headers.
	Tokens [][]byte
	// Delimiter/MinFields require a field structure: at least MinFields
	// fields separated by Delimiter somewhere after the last token.
	Delimiter byte
	MinFields int
}

// Matches reports whether resp exhibits the family's response pattern.
func (m *Matcher) Matches(resp []byte) bool {
	if len(m.Prefix) > 0 && !bytes.HasPrefix(resp, m.Prefix) {
		return false
	}
	rest := resp
	for _, tok := range m.Tokens {
		i := bytes.Index(rest, tok)
		if i < 0 {
			return false
		}
		rest = rest[i+len(tok):]
	}
	if m.MinFields > 1 {
		if bytes.Count(rest, []byte{m.Delimiter}) < m.MinFields-1 {
			return false
		}
	}
	return len(m.Prefix) > 0 || len(m.Tokens) > 0 || m.MinFields > 1
}

// Detection is one confirmed C2 fingerprint hit.
type Detection struct {
	Host        string
	Port        int
	Fingerprint string
	Family      string
}
