package c2

import "fmt"

// DB is a set of fingerprints indexed for scanning.
type DB struct {
	fps []*Fingerprint
}

// NewDB builds a database from fingerprints.
func NewDB(fps []*Fingerprint) *DB { return &DB{fps: fps} }

// All returns the fingerprints in registration order.
func (db *DB) All() []*Fingerprint { return db.fps }

// Families returns the number of distinct families covered.
func (db *DB) Families() int {
	m := map[string]struct{}{}
	for _, f := range db.fps {
		m[f.Family] = struct{}{}
	}
	return len(m)
}

// Len returns the number of signatures.
func (db *DB) Len() int { return len(db.fps) }

// ByFamily returns the fingerprints of one family.
func (db *DB) ByFamily(family string) []*Fingerprint {
	var out []*Fingerprint
	for _, f := range db.fps {
		if f.Family == family {
			out = append(out, f)
		}
	}
	return out
}

// Family names of the two signatures the paper observed live in the wild.
const (
	FamilyCobaltStrike = "coboltstrike-like"
	FamilyInfoStealer  = "infostealer-like"
)

// DefaultDB mirrors the shape of the commercial corpus used in the study:
// 26 signatures across 18 families, with richer coverage of the Cobalt
// Strike-like and InfoStealer-like families that the paper found active on
// serverless platforms. All probes are HTTP-framed (C2 relays hide behind
// function URLs, which only speak HTTP), and every response pattern is
// synthetic — the binary shapes exercise the matcher without describing any
// real malware protocol.
func DefaultDB() *DB {
	var fps []*Fingerprint

	// Cobalt Strike-like: staged beacon checkins with a magic body header
	// and pipe-delimited tasking fields. Three protocol variants.
	fps = append(fps,
		&Fingerprint{
			ID: "cs-like-1", Family: FamilyCobaltStrike, Ports: []int{80, 443},
			Probe: "GET /pixel.gif HTTP/1.1\r\nHost: {{HOST}}\r\n" +
				"User-Agent: Mozilla/4.0 (compatible; MSIE 8.0; Windows NT 6.1)\r\n" +
				"Cookie: SESSIONID=kZx9w1QmC2\r\nConnection: close\r\n\r\n",
			Match: Matcher{
				Tokens:    [][]byte{[]byte("MZRE"), []byte("\x01\x02stage")},
				Delimiter: '|', MinFields: 4,
			},
		},
		&Fingerprint{
			ID: "cs-like-2", Family: FamilyCobaltStrike, Ports: []int{80, 443},
			Probe: "GET /ga.js HTTP/1.1\r\nHost: {{HOST}}\r\n" +
				"User-Agent: Mozilla/5.0 (Windows NT 10.0; WOW64)\r\n" +
				"Accept: */*\r\nX-Request-ID: beacon-7f3a\r\nConnection: close\r\n\r\n",
			Match: Matcher{
				Tokens:    [][]byte{[]byte("MZRE"), []byte("taskq")},
				Delimiter: '|', MinFields: 3,
			},
		},
		&Fingerprint{
			ID: "cs-like-3", Family: FamilyCobaltStrike, Ports: []int{443},
			Probe: "POST /submit.php HTTP/1.1\r\nHost: {{HOST}}\r\n" +
				"Content-Type: application/octet-stream\r\nContent-Length: 8\r\n" +
				"Connection: close\r\n\r\n\x4d\x5a\x52\x45\x00\x00\x00\x01",
			Match: Matcher{
				Tokens: [][]byte{[]byte("MZRE"), []byte("\x00ack\x00")},
			},
		},
	)

	// InfoStealer-like: exfiltration check-ins answered with a tilde-framed
	// config blob. Two variants.
	fps = append(fps,
		&Fingerprint{
			ID: "stealer-like-1", Family: FamilyInfoStealer, Ports: []int{80, 443},
			Probe: "POST /gate HTTP/1.1\r\nHost: {{HOST}}\r\n" +
				"Content-Type: application/x-www-form-urlencoded\r\nContent-Length: 13\r\n" +
				"Connection: close\r\n\r\nhwid=TESTHWID",
			Match: Matcher{
				Tokens:    [][]byte{[]byte("STCFG"), []byte("grab")},
				Delimiter: '~', MinFields: 5,
			},
		},
		&Fingerprint{
			ID: "stealer-like-2", Family: FamilyInfoStealer, Ports: []int{80},
			Probe: "GET /cfg?id=TESTHWID HTTP/1.1\r\nHost: {{HOST}}\r\n" +
				"User-Agent: stl/2.1\r\nConnection: close\r\n\r\n",
			Match: Matcher{
				Tokens:    [][]byte{[]byte("STCFG"), []byte("loader")},
				Delimiter: '~', MinFields: 3,
			},
		},
	)

	// Filler families mirroring the corpus breadth: five two-variant
	// families and eleven single-variant families (3+2+10+11 = 26 over 18).
	twoVariant := []string{"rat-kite", "rat-lynx", "bot-heron", "bot-ibis", "dl-crane"}
	for _, fam := range twoVariant {
		for v := 1; v <= 2; v++ {
			fps = append(fps, fillerFingerprint(fam, v))
		}
	}
	oneVariant := []string{
		"rat-swift", "rat-stork", "bot-plover", "bot-finch", "dl-egret",
		"dl-raven", "proxy-wren", "proxy-crake", "loader-teal", "loader-skua",
		"miner-gull",
	}
	for _, fam := range oneVariant {
		fps = append(fps, fillerFingerprint(fam, 1))
	}
	return NewDB(fps)
}

// fillerFingerprint synthesises a distinctive probe/response pair for a
// filler family variant.
func fillerFingerprint(family string, variant int) *Fingerprint {
	magic := fillerMagic(family, variant)
	return &Fingerprint{
		ID:     fmt.Sprintf("%s-%d", family, variant),
		Family: family,
		Ports:  []int{80, 443},
		Probe: fmt.Sprintf("GET /%s/v%d HTTP/1.1\r\nHost: {{HOST}}\r\n"+
			"User-Agent: %s\r\nConnection: close\r\n\r\n", family, variant, family),
		Match: Matcher{
			Tokens:    [][]byte{[]byte(magic), []byte("cmdset")},
			Delimiter: ';', MinFields: 3,
		},
	}
}

// Banner returns a response body that satisfies the fingerprint's matcher —
// the payload a live relay of that family would return to its probe. The
// simulated abusive functions serve this through their function URLs.
func Banner(f *Fingerprint) []byte {
	switch f.ID {
	case "cs-like-1":
		return []byte("MZRE\x01\x02stage|win64|sleep:60|jitter:10|eof")
	case "cs-like-2":
		return []byte("MZREtaskq|none|sleep:30|eof")
	case "cs-like-3":
		return []byte("MZRE\x00ack\x00")
	case "stealer-like-1":
		return []byte("STCFG~grab~wallets~browsers~files~screens~eof")
	case "stealer-like-2":
		return []byte("STCFG~loader~on~eof")
	default:
		magic := fillerMagic(f.Family, variantOf(f.ID))
		return []byte(magic + "cmdset;idle;300;eof")
	}
}

// fillerMagic derives a family+variant-unique magic token.
func fillerMagic(family string, variant int) string {
	return fmt.Sprintf("FX-%s-%02d\x00", family, variant)
}

func variantOf(id string) int {
	if len(id) == 0 {
		return 1
	}
	c := id[len(id)-1]
	if c >= '0' && c <= '9' {
		return int(c - '0')
	}
	return 1
}
