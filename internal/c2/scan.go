package c2

import (
	"context"
	"crypto/tls"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/obs"
)

// Scanner probes hosts for C2 relays by emitting each fingerprint's request
// over a fresh TCP connection and matching the raw response bytes (paper
// §5.1: connect on ports 80 and 443, send family probe payloads, match the
// traffic fingerprint of the response).
type Scanner struct {
	DB *DB
	// Timeout bounds each connection attempt and read.
	Timeout time.Duration
	// Dial opens the transport connection. Tests and the simulation point
	// this at the in-process gateway; the default is net.Dialer.
	Dial func(ctx context.Context, network, addr string) (net.Conn, error)
	// TLSPort443 wraps port-443 connections in TLS, as a real scan would.
	// The simulation serves plain TCP on both ports, so it stays off there.
	TLSPort443 bool
	// MaxResponse bounds how many response bytes are read per probe.
	MaxResponse int

	// Telemetry; populated by Instrument, no-ops otherwise.
	mHosts    *obs.Counter   // c2_hosts_scanned_total
	mProbes   *obs.Counter   // c2_probes_total: fingerprint connections tried
	mConnFail *obs.Counter   // c2_conn_failures_total
	mHits     *obs.Counter   // c2_detections_total
	mInflight *obs.Gauge     // c2_inflight: hosts being scanned right now
	mLatency  *obs.Histogram // c2_scan_seconds: full per-host sweep time
}

// NewScanner builds a scanner over db with sane defaults.
func NewScanner(db *DB) *Scanner {
	d := &net.Dialer{}
	return &Scanner{
		DB:          db,
		Timeout:     5 * time.Second,
		Dial:        d.DialContext,
		MaxResponse: 64 << 10,
	}
}

// Instrument points the scanner's telemetry at reg. Call before scanning; a
// nil registry leaves the scanner un-instrumented.
func (s *Scanner) Instrument(reg *obs.Registry) {
	s.mHosts = reg.Counter("c2_hosts_scanned_total")
	s.mProbes = reg.Counter("c2_probes_total")
	s.mConnFail = reg.Counter("c2_conn_failures_total")
	s.mHits = reg.Counter("c2_detections_total")
	s.mInflight = reg.Gauge("c2_inflight")
	s.mLatency = reg.Histogram("c2_scan_seconds", nil)
}

// ScanHost probes one host with every fingerprint on its declared ports and
// returns the detections. A host that matches any variant of a family is
// reported once per (fingerprint, port) hit; callers typically dedupe by
// family. Connection failures are treated as "not a relay", never as errors:
// a scan of the open Internet sees them constantly.
func (s *Scanner) ScanHost(ctx context.Context, host string) []Detection {
	s.mHosts.Inc()
	s.mInflight.Add(1)
	start := time.Now()
	defer func() {
		s.mInflight.Add(-1)
		s.mLatency.Observe(time.Since(start).Seconds())
	}()
	var out []Detection
	for _, fp := range s.DB.All() {
		for _, port := range fp.Ports {
			if ctx.Err() != nil {
				return out
			}
			if s.probeOne(ctx, host, port, fp) {
				s.mHits.Inc()
				out = append(out, Detection{
					Host: host, Port: port,
					Fingerprint: fp.ID, Family: fp.Family,
				})
			}
		}
	}
	return out
}

// probeOne sends one fingerprint probe and matches the response.
func (s *Scanner) probeOne(ctx context.Context, host string, port int, fp *Fingerprint) bool {
	cctx, cancel := context.WithTimeout(ctx, s.Timeout)
	defer cancel()
	s.mProbes.Inc()
	conn, err := s.Dial(cctx, "tcp", net.JoinHostPort(host, fmt.Sprint(port)))
	if err != nil {
		s.mConnFail.Inc()
		return false
	}
	defer conn.Close()
	if s.TLSPort443 && port == 443 {
		tc := tls.Client(conn, &tls.Config{ServerName: host, InsecureSkipVerify: true})
		if err := tc.HandshakeContext(cctx); err != nil {
			return false
		}
		conn = tc
	}
	deadline := time.Now().Add(s.Timeout)
	conn.SetDeadline(deadline)
	if _, err := conn.Write(fp.ProbeFor(host)); err != nil {
		return false
	}
	resp, err := io.ReadAll(io.LimitReader(conn, int64(s.MaxResponse)))
	if err != nil && len(resp) == 0 {
		return false
	}
	return fp.Match.Matches(resp)
}

// Families collapses detections to the set of distinct families seen.
func Families(ds []Detection) []string {
	seen := map[string]struct{}{}
	var out []string
	for _, d := range ds {
		if _, ok := seen[d.Family]; !ok {
			seen[d.Family] = struct{}{}
			out = append(out, d.Family)
		}
	}
	return out
}
