package c2

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"
)

func TestDefaultDBShape(t *testing.T) {
	db := DefaultDB()
	if db.Len() != 26 {
		t.Errorf("signatures = %d, want 26 (paper §5.1)", db.Len())
	}
	if db.Families() != 18 {
		t.Errorf("families = %d, want 18", db.Families())
	}
	if len(db.ByFamily(FamilyCobaltStrike)) != 3 {
		t.Errorf("cobalt-strike-like variants = %d, want 3", len(db.ByFamily(FamilyCobaltStrike)))
	}
	if len(db.ByFamily(FamilyInfoStealer)) != 2 {
		t.Errorf("infostealer-like variants = %d, want 2", len(db.ByFamily(FamilyInfoStealer)))
	}
	ids := map[string]bool{}
	for _, fp := range db.All() {
		if ids[fp.ID] {
			t.Errorf("duplicate fingerprint id %q", fp.ID)
		}
		ids[fp.ID] = true
		if len(fp.Ports) == 0 {
			t.Errorf("%s has no ports", fp.ID)
		}
		if !strings.Contains(fp.Probe, "{{HOST}}") {
			t.Errorf("%s probe lacks host placeholder", fp.ID)
		}
	}
}

func TestBannersMatchOwnFingerprint(t *testing.T) {
	db := DefaultDB()
	for _, fp := range db.All() {
		banner := Banner(fp)
		if !fp.Match.Matches(banner) {
			t.Errorf("%s: banner does not satisfy its own matcher", fp.ID)
		}
		// HTTP-framed banner must also match (tokens survive framing).
		framed := append([]byte("HTTP/1.1 200 OK\r\nContent-Type: application/octet-stream\r\n\r\n"), banner...)
		if !fp.Match.Matches(framed) {
			t.Errorf("%s: HTTP-framed banner rejected", fp.ID)
		}
	}
}

func TestBannersDoNotCrossMatch(t *testing.T) {
	db := DefaultDB()
	for _, a := range db.All() {
		banner := Banner(a)
		for _, b := range db.All() {
			if a.Family == b.Family {
				continue
			}
			if b.Match.Matches(banner) {
				t.Errorf("banner of %s matches fingerprint %s of family %s", a.ID, b.ID, b.Family)
			}
		}
	}
}

func TestMatcherSemantics(t *testing.T) {
	m := Matcher{Tokens: [][]byte{[]byte("AA"), []byte("BB")}, Delimiter: '|', MinFields: 3}
	if !m.Matches([]byte("xxAAyyBB a|b|c")) {
		t.Error("valid response rejected")
	}
	if m.Matches([]byte("BB then AA a|b|c")) {
		t.Error("out-of-order tokens accepted")
	}
	if m.Matches([]byte("AA BB a|b")) {
		t.Error("insufficient fields accepted")
	}
	if m.Matches([]byte("random 404 page")) {
		t.Error("noise accepted")
	}
	pm := Matcher{Prefix: []byte("MAGIC")}
	if !pm.Matches([]byte("MAGICrest")) || pm.Matches([]byte("xMAGIC")) {
		t.Error("prefix anchoring wrong")
	}
	empty := Matcher{}
	if empty.Matches([]byte("anything")) {
		t.Error("empty matcher must never match")
	}
}

func TestProbeFor(t *testing.T) {
	db := DefaultDB()
	fp := db.ByFamily(FamilyCobaltStrike)[0]
	p := string(fp.ProbeFor("victim.example"))
	if !strings.Contains(p, "Host: victim.example\r\n") {
		t.Errorf("probe host not substituted: %q", p)
	}
	if strings.Contains(p, "{{HOST}}") {
		t.Error("placeholder survived substitution")
	}
}

func TestScannerDetectsRelay(t *testing.T) {
	db := DefaultDB()
	relay, err := NewRelay(db, FamilyCobaltStrike)
	if err != nil {
		t.Fatal(err)
	}
	defer relay.Close()

	s := NewScanner(db)
	s.Timeout = 2 * time.Second
	// Route every probe to the relay regardless of nominal port.
	s.Dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, network, relay.Addr())
	}
	ds := s.ScanHost(context.Background(), "1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com")
	fams := Families(ds)
	if len(fams) != 1 || fams[0] != FamilyCobaltStrike {
		t.Fatalf("families = %v, want [%s] (detections %v)", fams, FamilyCobaltStrike, ds)
	}
	// All three variants respond on their declared ports: 2+2+1 hits.
	if len(ds) != 5 {
		t.Errorf("detections = %d, want 5 (cs variants x ports)", len(ds))
	}
}

func TestScannerCleanHost(t *testing.T) {
	// A listener that always answers 404 must produce no detections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 4096)
				c.SetReadDeadline(time.Now().Add(time.Second))
				c.Read(buf)
				c.Write([]byte("HTTP/1.1 404 Not Found\r\nContent-Length: 9\r\nConnection: close\r\n\r\nNot Found"))
			}(c)
		}
	}()
	db := DefaultDB()
	s := NewScanner(db)
	s.Timeout = time.Second
	s.Dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, network, ln.Addr().String())
	}
	if ds := s.ScanHost(context.Background(), "clean.example"); len(ds) != 0 {
		t.Errorf("clean host produced detections: %v", ds)
	}
}

func TestScannerUnreachableHost(t *testing.T) {
	db := DefaultDB()
	s := NewScanner(db)
	s.Timeout = 200 * time.Millisecond
	s.Dial = func(ctx context.Context, network, addr string) (net.Conn, error) {
		return nil, context.DeadlineExceeded
	}
	if ds := s.ScanHost(context.Background(), "dead.example"); len(ds) != 0 {
		t.Errorf("unreachable host produced detections: %v", ds)
	}
}

func TestScannerContextCancel(t *testing.T) {
	db := DefaultDB()
	s := NewScanner(db)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if ds := s.ScanHost(ctx, "x.example"); len(ds) != 0 {
		t.Errorf("cancelled scan produced detections: %v", ds)
	}
}

func TestHandleRawWrongFamilyProbe(t *testing.T) {
	db := DefaultDB()
	// An InfoStealer probe against a CobaltStrike relay gets a 404.
	probe := db.ByFamily(FamilyInfoStealer)[0].ProbeFor("x")
	resp := HandleRaw(db, FamilyCobaltStrike, probe)
	if !strings.Contains(string(resp), "404") {
		t.Errorf("wrong-family probe answered: %q", resp)
	}
	// The right probe gets the banner.
	probe = db.ByFamily(FamilyCobaltStrike)[0].ProbeFor("x")
	resp = HandleRaw(db, FamilyCobaltStrike, probe)
	if !strings.Contains(string(resp), "200 OK") || !strings.Contains(string(resp), "MZRE") {
		t.Errorf("right-family probe rejected: %q", resp)
	}
}

func TestBannerResponse(t *testing.T) {
	db := DefaultDB()
	fp := db.ByFamily(FamilyInfoStealer)[1] // GET /cfg?id=TESTHWID
	status, ct, body, ok := BannerResponse(db, FamilyInfoStealer,
		"GET", "/cfg?id=TESTHWID",
		map[string]string{"User-Agent": "stl/2.1"}, nil)
	if !ok || status != 200 || ct != "application/octet-stream" {
		t.Fatalf("BannerResponse = %d %s ok=%v", status, ct, ok)
	}
	if !fp.Match.Matches(body) {
		t.Error("returned banner does not satisfy the fingerprint")
	}
	status, _, _, ok = BannerResponse(db, FamilyInfoStealer, "GET", "/", nil, nil)
	if ok || status != 404 {
		t.Errorf("plain GET answered with %d ok=%v", status, ok)
	}
}

func TestFamiliesDedup(t *testing.T) {
	ds := []Detection{
		{Family: "a"}, {Family: "b"}, {Family: "a"},
	}
	if got := Families(ds); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Families = %v", got)
	}
}
