package pdns

// HashFQDN returns the canonical 64-bit FNV-1a hash of an FQDN, computed
// over its ASCII-lowercased form so that differently-cased spellings of the
// same name hash identically. It is the single hash every layer derives
// per-function state from: shard selection (ShardByFQDN), the per-function
// RNG streams of the workload emitter, and the probe resolver's seeded RNGs
// all share it, so a function's behaviour is a pure function of (seed, FQDN)
// and never of iteration order.
//
// The implementation is allocation-free; it matches hash/fnv's New64a over
// strings.ToLower(fqdn) for ASCII input.
func HashFQDN(fqdn string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(fqdn); i++ {
		c := fqdn[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
