package pdns

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// DefaultBatchRows is the batch size the streaming paths use when the
// caller does not pick one. Large enough to amortise per-batch overhead,
// small enough that a batch of seven 8-byte columns stays cache-friendly.
const DefaultBatchRows = 4096

// WriteBatch appends every row of b. For TSV it renders each line into the
// writer's reusable scratch buffer — no per-record string allocation; the
// bytes are identical to per-record Write calls. JSONL goes through the
// scalar encoder (it is the self-describing, slower format by contract).
func (w *Writer) WriteBatch(b *RecordBatch) error {
	switch w.format {
	case TSV:
		for i, n := 0, b.Len(); i < n; i++ {
			w.n++
			if err := w.writeTSV(b.Syms.Lookup(b.FQDN[i]), b.RType[i], b.Syms.Lookup(b.RData[i]),
				b.FirstSeen[i], b.LastSeen[i], b.RequestCnt[i], b.PDate[i]); err != nil {
				return err
			}
		}
		return nil
	case JSONL:
		var rec Record
		for i, n := 0, b.Len(); i < n; i++ {
			b.At(i, &rec)
			if err := w.Write(&rec); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("pdns: unknown format %d", w.format)
	}
}

// writeTSV renders one TSV line into the reusable scratch buffer.
func (w *Writer) writeTSV(fqdn string, t RType, rdata string, firstUnix, lastUnix, cnt int64, pdate Date) error {
	buf := w.buf[:0]
	buf = append(buf, fqdn...)
	buf = append(buf, '\t')
	buf = strconv.AppendInt(buf, int64(t), 10)
	buf = append(buf, '\t')
	buf = append(buf, rdata...)
	buf = append(buf, '\t')
	buf = strconv.AppendInt(buf, firstUnix, 10)
	buf = append(buf, '\t')
	buf = strconv.AppendInt(buf, lastUnix, 10)
	buf = append(buf, '\t')
	buf = strconv.AppendInt(buf, cnt, 10)
	buf = append(buf, '\t')
	buf = strconv.AppendInt(buf, int64(pdate), 10)
	buf = append(buf, '\n')
	w.buf = buf
	_, err := w.bw.Write(buf)
	return err
}

// ReadBatch appends up to max rows to b, interning strings into b.Syms. It
// returns the number of rows appended; end of stream is (0, io.EOF) — a
// short final batch is returned with a nil error first. Quarantine and
// Instrument semantics are exactly those of Read: in quarantine mode
// malformed lines are skipped and counted, a blown error budget aborts
// mid-batch (returning the rows parsed so far alongside the error), and a
// tolerated stream error ends the stream early with StreamErr set.
//
// TSV rows are parsed straight from the scanner's byte view — fqdn and
// rdata hit the intern table without allocating once seen before, and the
// numeric columns never become strings at all.
func (r *Reader) ReadBatch(b *RecordBatch, max int) (int, error) {
	if max <= 0 {
		max = DefaultBatchRows
	}
	n := 0
	for n < max {
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				if r.quarantine {
					r.streamErr = err
					break
				}
				return n, err
			}
			break
		}
		r.line++
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		r.scanned++
		var err error
		switch r.format {
		case JSONL:
			err = json.Unmarshal(line, &r.scratch)
			if err == nil {
				b.AppendRecord(&r.scratch)
			}
		case TSV:
			err = parseTSVBatch(line, b)
		default:
			return n, fmt.Errorf("pdns: unknown format %d", r.format)
		}
		if err == nil {
			n++
			continue
		}
		if !r.quarantine {
			return n, fmt.Errorf("pdns: line %d: %w", r.line, err)
		}
		r.skipped++
		r.mSkipped.Inc()
		if r.mQuarVec != nil {
			r.mQuarVec.With(r.shard, quarantineReason(r.format, err)).Inc()
		}
		if r.scanned > quarantineGrace &&
			float64(r.skipped) > r.maxErrRate*float64(r.scanned) {
			return n, fmt.Errorf("pdns: line %d: %d/%d lines malformed (budget %.1f%%): %w",
				r.line, r.skipped, r.scanned, r.maxErrRate*100, ErrErrorBudget)
		}
	}
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// parseTSVBatch parses one TSV line directly into batch columns. The column
// layout, accepted values, and field-name error wrapping are identical to
// parseTSV — quarantineReason classifies failures from either parser the
// same way — but nothing is interned until the whole row has parsed, so
// malformed lines never pollute the symbol table.
func parseTSVBatch(line []byte, b *RecordBatch) error {
	var cols [7][]byte
	n := 0
	for n < 6 {
		i := bytes.IndexByte(line, '\t')
		if i < 0 {
			return errColumns
		}
		cols[n], line = line[:i], line[i+1:]
		n++
	}
	cols[6] = line
	rt, err := atoi64(cols[1])
	if err != nil {
		return fmt.Errorf("rtype: %w", err)
	}
	fs, err := atoi64(cols[3])
	if err != nil {
		return fmt.Errorf("first_seen: %w", err)
	}
	ls, err := atoi64(cols[4])
	if err != nil {
		return fmt.Errorf("last_seen: %w", err)
	}
	cnt, err := atoi64(cols[5])
	if err != nil {
		return fmt.Errorf("request_cnt: %w", err)
	}
	pd, err := atoi64(cols[6])
	if err != nil {
		return fmt.Errorf("pdate: %w", err)
	}
	b.Append(b.Syms.InternBytes(cols[0]), RType(rt), b.Syms.InternBytes(cols[2]),
		fs, ls, cnt, Date(pd))
	return nil
}

// atoi64 parses a decimal int64 from bytes without allocating on the happy
// path. Anything unusual — empty input, a lone sign, non-digits, or enough
// digits to overflow — falls back to strconv so the accepted value set and
// the error text match the scalar codec exactly.
func atoi64(s []byte) (int64, error) {
	i, neg := 0, false
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		i = 1
	}
	// 18 digits cannot overflow int64; longer runs take the slow path.
	if i == len(s) || len(s)-i > 18 {
		return strconv.ParseInt(string(s), 10, 64)
	}
	var v int64
	for ; i < len(s); i++ {
		c := s[i] - '0'
		if c > 9 {
			return strconv.ParseInt(string(s), 10, 64)
		}
		v = v*10 + int64(c)
	}
	if neg {
		v = -v
	}
	return v, nil
}

// CopyAllBatch streams every batch from r into fn, stopping on the first
// error. The same batch value is passed to each call (Reset between calls);
// consumers must not retain it. Returns the number of rows processed.
func CopyAllBatch(r *Reader, b *RecordBatch, fn func(*RecordBatch) error) (int64, error) {
	if b == nil {
		b = NewRecordBatch(DefaultBatchRows)
	}
	var n int64
	for {
		b.Reset()
		got, err := r.ReadBatch(b, cap(b.FQDN))
		n += int64(got)
		if got > 0 {
			if ferr := fn(b); ferr != nil {
				return n, ferr
			}
		}
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
}
