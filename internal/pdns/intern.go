package pdns

// Sym is a dense identifier for an interned string. Symbols are only
// meaningful relative to the Symtab that issued them.
type Sym uint32

// Symtab is a string intern table mapping FQDNs and rdata values to dense
// symbols. It carries no global state: every batch producer owns its own
// table, so shards never contend and never share symbol spaces.
//
// Symbol IDs are assigned in insertion order. That is the determinism rule
// the golden artifacts rely on (DESIGN #26): because each emission shard
// walks its functions in population (FQDN-sorted) order and each function's
// records are a pure stream of its (seed, FQDN) RNG, the i-th distinct
// string a shard sees — and therefore its symbol — is identical from run to
// run for a fixed worker count. Nothing downstream persists raw symbols;
// they are resolved back to strings before anything ordered or hashed is
// produced, which is why artifacts stay bit-identical across worker counts
// even though the symbol spaces differ.
//
// A Symtab is not safe for concurrent use; confine each table to one
// goroutine (the parallel emitters allocate one per shard).
type Symtab struct {
	ids  map[string]Sym
	strs []string
}

// NewSymtab builds an empty intern table.
func NewSymtab() *Symtab {
	return &Symtab{ids: make(map[string]Sym)}
}

// Intern returns the symbol for s, assigning the next ID on first sight.
func (t *Symtab) Intern(s string) Sym {
	if sym, ok := t.ids[s]; ok {
		return sym
	}
	sym := Sym(len(t.strs))
	t.ids[s] = sym
	t.strs = append(t.strs, s)
	return sym
}

// InternBytes is Intern for a byte slice. The lookup itself does not
// allocate (the compiler recognises the map[string(b)] form); the string is
// materialised only the first time a value is seen.
func (t *Symtab) InternBytes(b []byte) Sym {
	if sym, ok := t.ids[string(b)]; ok {
		return sym
	}
	s := string(b)
	sym := Sym(len(t.strs))
	t.ids[s] = sym
	t.strs = append(t.strs, s)
	return sym
}

// Lookup resolves a symbol back to its string. Unknown symbols resolve to
// the empty string rather than panicking, so a batch referencing a foreign
// table degrades into records that fail validation instead of crashing.
func (t *Symtab) Lookup(sym Sym) string {
	if int(sym) >= len(t.strs) {
		return ""
	}
	return t.strs[sym]
}

// Len returns the number of interned strings (also the next symbol ID).
func (t *Symtab) Len() int { return len(t.strs) }
