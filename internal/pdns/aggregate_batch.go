package pdns

import (
	"repro/internal/providers"
)

// symIdent caches one symbol's identification result: whether the FQDN
// matched a provider, and if so which one and which region. Resolved once
// per distinct symbol instead of once per record.
type symIdent struct {
	checked bool
	ok      bool
	info    *providers.Info
	region  string
}

// provEntry caches one provider's hot aggregation targets — the rollup, its
// monthly series, and the three studied RTypeStats — so the per-record path
// costs pointer chases instead of map lookups.
type provEntry struct {
	ps      *ProviderStats
	monthly map[Date]int64
	rsA     *RTypeStats
	rsAAAA  *RTypeStats
	rsCNAME *RTypeStats
}

// AddBatch folds every row of b into the aggregate, equivalent to calling
// Add on each materialised record but without per-record string or map-key
// work: the first batch's intern table is adopted, identification and
// FQDNStats lookups are cached per symbol, and FQDNStats/bitset storage
// comes from slab arenas.
//
// The adopted Symtab must be the one backing every subsequent batch from
// this producer (Reset keeps it, so a streaming producer satisfies this for
// free). A batch carrying a different table falls back to the scalar path —
// correct, just slower — so mixed producers degrade instead of corrupting.
func (a *Aggregator) AddBatch(b *RecordBatch) {
	n := b.Len()
	if n == 0 {
		return
	}
	if a.symtab == nil {
		a.symtab = b.Syms
	}
	if a.symtab != b.Syms {
		var rec Record
		for i := 0; i < n; i++ {
			b.At(i, &rec)
			a.Add(&rec)
		}
		return
	}
	a.growSym(b.Syms.Len())
	for i := 0; i < n; i++ {
		a.scanned++
		a.mScanned.Inc()
		if !b.rowValid(i) {
			a.dropped++
			a.mDropped.Inc()
			a.iInvalid.Inc()
			continue
		}
		pd := b.PDate[i]
		if pd < a.window.start || pd > a.window.end {
			a.iWindow.Inc()
			continue
		}
		fsym := b.FQDN[i]
		id := &a.identBySym[fsym]
		if !id.checked {
			id.checked = true
			fqdn := a.symtab.Lookup(fsym)
			if info, ok := a.matcher.Identify(fqdn); ok {
				id.ok, id.info = true, info
				id.region = info.Region(fqdn)
			}
		}
		if !id.ok {
			a.iUnmatched.Inc()
			continue
		}
		a.matched++
		a.mMatched.Inc()
		a.iMatched.Inc()

		fs := a.bySym[fsym]
		if fs == nil {
			fqdn := a.symtab.Lookup(fsym)
			if fs = a.byFQDN[fqdn]; fs == nil {
				fs = a.newFQDNStats(fqdn, id.region, id.info.ID, pd)
			}
			a.bySym[fsym] = fs
		}
		a.fold(fs, id.info.ID, b.RType[i], a.symtab.Lookup(b.RData[i]), b.RequestCnt[i], pd)
	}
}

// growSym extends the per-symbol caches to cover syms [0, n).
func (a *Aggregator) growSym(n int) {
	if n <= len(a.bySym) {
		return
	}
	if n <= cap(a.bySym) {
		a.bySym = a.bySym[:n]
		a.identBySym = a.identBySym[:n]
		return
	}
	c := 2 * n
	bySym := make([]*FQDNStats, n, c)
	copy(bySym, a.bySym)
	a.bySym = bySym
	ident := make([]symIdent, n, c)
	copy(ident, a.identBySym)
	a.identBySym = ident
}

// prov returns the cached entry for a provider, building the rollup maps on
// first sight (or wrapping rollups the scalar path already created).
func (a *Aggregator) prov(id providers.ID) *provEntry {
	i := int(id)
	for i >= len(a.provDense) {
		a.provDense = append(a.provDense, nil)
	}
	pe := a.provDense[i]
	if pe == nil {
		ps := a.byProvider[id]
		if ps == nil {
			ps = &ProviderStats{
				Provider: id,
				Regions:  make(map[string]struct{}),
				ByRType:  make(map[RType]*RTypeStats),
			}
			a.byProvider[id] = ps
		}
		mr := a.monthlyReq[id]
		if mr == nil {
			mr = make(map[Date]int64)
			a.monthlyReq[id] = mr
		}
		pe = &provEntry{ps: ps, monthly: mr}
		a.provDense[i] = pe
	}
	return pe
}

// rtype returns the provider's stats bucket for t, caching the three
// studied types on the entry; anything else goes through the map.
func (pe *provEntry) rtype(t RType) *RTypeStats {
	switch t {
	case TypeA:
		if pe.rsA == nil {
			pe.rsA = pe.mapRType(t)
		}
		return pe.rsA
	case TypeAAAA:
		if pe.rsAAAA == nil {
			pe.rsAAAA = pe.mapRType(t)
		}
		return pe.rsAAAA
	case TypeCNAME:
		if pe.rsCNAME == nil {
			pe.rsCNAME = pe.mapRType(t)
		}
		return pe.rsCNAME
	default:
		return pe.mapRType(t)
	}
}

func (pe *provEntry) mapRType(t RType) *RTypeStats {
	rs := pe.ps.ByRType[t]
	if rs == nil {
		rs = &RTypeStats{ByRData: make(map[string]int64)}
		pe.ps.ByRType[t] = rs
	}
	return rs
}

// monthOf maps an in-window date to the first day of its month through a
// dense per-window cache, replacing the per-record calendar conversion.
func (a *Aggregator) monthOf(pd Date) Date {
	i := pd.Sub(a.window.start)
	if i < 0 || i >= a.window.end.Sub(a.window.start)+1 {
		return pd.Month()
	}
	if a.monthCache == nil {
		a.monthCache = make([]Date, a.window.end.Sub(a.window.start)+1)
		for d := range a.monthCache {
			a.monthCache[d] = a.window.start.AddDays(d).Month()
		}
	}
	return a.monthCache[i]
}

// statsChunk sizes the FQDNStats and bitset-word slabs: large enough to
// amortise allocation across thousands of first-seen FQDNs, small enough
// that a sparse shard does not strand much memory.
const statsChunk = 256

// allocStats hands out one FQDNStats from the slab arena.
func (a *Aggregator) allocStats() *FQDNStats {
	if len(a.statsArena) == 0 {
		a.statsArena = make([]FQDNStats, statsChunk)
	}
	fs := &a.statsArena[0]
	a.statsArena = a.statsArena[1:]
	return fs
}

// allocBitset hands out one window-sized seen-days bitset from the word
// arena. The capacity clamp keeps neighbouring bitsets from aliasing.
func (a *Aggregator) allocBitset() bitset {
	days := a.window.end.Sub(a.window.start) + 1
	words := (days + 63) / 64
	if len(a.daysArena) < words {
		a.daysArena = make([]uint64, words*statsChunk)
	}
	w := a.daysArena[:words:words]
	a.daysArena = a.daysArena[words:]
	return bitset{words: w, n: days}
}
