// Package pdns models a passive DNS (PDNS) dataset of the kind described in
// paper §3.2: daily-aggregated resolution tuples observed at recursive
// resolvers, <fqdn, rtype, rdata, first_seen, last_seen, request_cnt, pdate>.
//
// The package provides a compact record representation, streaming JSONL/TSV
// codecs, an in-memory store, and a single-pass aggregation engine computing
// the per-FQDN metrics used throughout the paper's analysis:
// first_seen_all, last_seen_all, days_count, total_request_cnt, and the
// distribution of resolution results.
package pdns

import (
	"fmt"
	"time"
)

// RType is the DNS resource record type of a resolution result. Only the
// three types relevant to the study are named; other values are preserved.
type RType uint16

const (
	TypeA     RType = 1  // IPv4 address
	TypeCNAME RType = 5  // alias to another domain
	TypeAAAA  RType = 28 // IPv6 address
)

func (t RType) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeCNAME:
		return "CNAME"
	case TypeAAAA:
		return "AAAA"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Date is a calendar day encoded as days since the Unix epoch (UTC). The
// dataset spans two years at daily granularity, so a compact integer type
// keeps hundreds of millions of records cheap to hold and compare.
type Date int32

// DateOf truncates t to its UTC calendar day.
func DateOf(t time.Time) Date {
	return Date(t.UTC().Unix() / 86400)
}

// NewDate builds a Date from a calendar triple.
func NewDate(year int, month time.Month, day int) Date {
	return DateOf(time.Date(year, month, day, 0, 0, 0, 0, time.UTC))
}

// Time returns midnight UTC of the day.
func (d Date) Time() time.Time { return time.Unix(int64(d)*86400, 0).UTC() }

// String formats the date as YYYY-MM-DD.
func (d Date) String() string { return d.Time().Format("2006-01-02") }

// ParseDate parses a YYYY-MM-DD string.
func ParseDate(s string) (Date, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return 0, fmt.Errorf("pdns: bad date %q: %w", s, err)
	}
	return DateOf(t), nil
}

// Month returns the first day of the date's month, useful as a monthly
// bucket key for the trend figures.
func (d Date) Month() Date {
	t := d.Time()
	return NewDate(t.Year(), t.Month(), 1)
}

// AddDays returns the date n days later.
func (d Date) AddDays(n int) Date { return d + Date(n) }

// Sub returns the number of days from other to d.
func (d Date) Sub(other Date) int { return int(d - other) }

// Record is one daily-aggregated PDNS observation: on day PDate, FQDN was
// resolved to RData with record type RType, observed RequestCnt times, with
// the first and last resolution timestamps of that day.
type Record struct {
	FQDN       string    `json:"fqdn"`
	RType      RType     `json:"rtype"`
	RData      string    `json:"rdata"`
	FirstSeen  time.Time `json:"first_seen"`
	LastSeen   time.Time `json:"last_seen"`
	RequestCnt int64     `json:"request_cnt"`
	PDate      Date      `json:"pdate"`
}

// Validate reports structural problems with a record. The collection
// pipeline drops invalid rows rather than aborting, mirroring real feeds.
func (r *Record) Validate() error {
	switch {
	case r.FQDN == "":
		return fmt.Errorf("pdns: record has empty fqdn")
	case r.RequestCnt < 0:
		return fmt.Errorf("pdns: record %s has negative request_cnt %d", r.FQDN, r.RequestCnt)
	case r.LastSeen.Before(r.FirstSeen):
		return fmt.Errorf("pdns: record %s has last_seen before first_seen", r.FQDN)
	case r.PDate != DateOf(r.FirstSeen):
		return fmt.Errorf("pdns: record %s first_seen %v outside pdate %v", r.FQDN, r.FirstSeen, r.PDate)
	}
	return nil
}
