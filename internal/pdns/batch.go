package pdns

import "time"

// RecordBatch is the columnar (struct-of-arrays) form of a run of Records.
// Strings are interned into the batch's Symtab; every other column is a
// parallel slice of plain integers, so appending a row allocates nothing
// once the backing arrays have grown to steady state. Timestamps are held
// as Unix seconds — exactly the TSV wire precision — and materialised back
// into time.Time only by the scalar compatibility views.
//
// A batch and its Symtab belong to one producer goroutine. Reset clears the
// rows but keeps both the backing arrays and the intern table, so symbols
// remain stable across the batches of one stream — that is what lets a
// consumer cache per-symbol work (Aggregator.AddBatch) across flushes.
type RecordBatch struct {
	Syms *Symtab

	FQDN       []Sym
	RType      []RType
	RData      []Sym
	FirstSeen  []int64 // unix seconds
	LastSeen   []int64 // unix seconds
	RequestCnt []int64
	PDate      []Date
}

// NewRecordBatch builds an empty batch with capacity for n rows and a fresh
// intern table.
func NewRecordBatch(n int) *RecordBatch {
	if n <= 0 {
		n = 1024
	}
	return &RecordBatch{
		Syms:       NewSymtab(),
		FQDN:       make([]Sym, 0, n),
		RType:      make([]RType, 0, n),
		RData:      make([]Sym, 0, n),
		FirstSeen:  make([]int64, 0, n),
		LastSeen:   make([]int64, 0, n),
		RequestCnt: make([]int64, 0, n),
		PDate:      make([]Date, 0, n),
	}
}

// Len returns the number of rows in the batch.
func (b *RecordBatch) Len() int { return len(b.FQDN) }

// Reset drops all rows, keeping the backing arrays and the intern table so
// the next fill allocates nothing and previously issued symbols stay valid.
func (b *RecordBatch) Reset() {
	b.FQDN = b.FQDN[:0]
	b.RType = b.RType[:0]
	b.RData = b.RData[:0]
	b.FirstSeen = b.FirstSeen[:0]
	b.LastSeen = b.LastSeen[:0]
	b.RequestCnt = b.RequestCnt[:0]
	b.PDate = b.PDate[:0]
}

// Append adds one row from already-interned symbols.
func (b *RecordBatch) Append(fqdn Sym, t RType, rdata Sym, firstUnix, lastUnix, cnt int64, pdate Date) {
	b.FQDN = append(b.FQDN, fqdn)
	b.RType = append(b.RType, t)
	b.RData = append(b.RData, rdata)
	b.FirstSeen = append(b.FirstSeen, firstUnix)
	b.LastSeen = append(b.LastSeen, lastUnix)
	b.RequestCnt = append(b.RequestCnt, cnt)
	b.PDate = append(b.PDate, pdate)
}

// AppendRecord adds one scalar record, interning its strings. Sub-second
// timestamp precision is truncated, matching the TSV wire format.
func (b *RecordBatch) AppendRecord(r *Record) {
	b.Append(b.Syms.Intern(r.FQDN), r.RType, b.Syms.Intern(r.RData),
		r.FirstSeen.Unix(), r.LastSeen.Unix(), r.RequestCnt, r.PDate)
}

// At materialises row i into a scalar Record. The FQDN and RData strings
// are shared with the intern table, not copied.
func (b *RecordBatch) At(i int, r *Record) {
	r.FQDN = b.Syms.Lookup(b.FQDN[i])
	r.RType = b.RType[i]
	r.RData = b.Syms.Lookup(b.RData[i])
	r.FirstSeen = time.Unix(b.FirstSeen[i], 0).UTC()
	r.LastSeen = time.Unix(b.LastSeen[i], 0).UTC()
	r.RequestCnt = b.RequestCnt[i]
	r.PDate = b.PDate[i]
}

// rowValid mirrors Record.Validate with pure integer comparisons: non-empty
// fqdn, non-negative count, last_seen >= first_seen, and pdate equal to
// first_seen's UTC day. Date(firstUnix/86400) is exactly DateOf(FirstSeen)
// for the unix-second timestamps a batch holds — both truncate toward zero.
func (b *RecordBatch) rowValid(i int) bool {
	return b.FQDN[i] != b.emptySym() &&
		b.RequestCnt[i] >= 0 &&
		b.LastSeen[i] >= b.FirstSeen[i] &&
		b.PDate[i] == Date(b.FirstSeen[i]/86400)
}

// emptySym returns the symbol of the empty string if it was interned, or an
// out-of-range sentinel otherwise, so rowValid can test FQDN emptiness
// without resolving the symbol.
func (b *RecordBatch) emptySym() Sym {
	if sym, ok := b.Syms.ids[""]; ok {
		return sym
	}
	return Sym(len(b.Syms.strs)) + 1
}
