package pdns

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func goodLine(i int) string {
	first := time.Date(2024, 4, 1, 9, 0, 0, 0, time.UTC)
	return fmt.Sprintf("fn-%d.on.aws\t1\t52.1.2.%d\t%d\t%d\t%d\t%d\n",
		i, i%250, first.Unix(), first.Add(time.Hour).Unix(), 10+i, DateOf(first))
}

func TestReaderQuarantineSkipsAndCounts(t *testing.T) {
	var in strings.Builder
	for i := 0; i < 10; i++ {
		in.WriteString(goodLine(i))
		if i%3 == 0 {
			in.WriteString("torn gar\tbage line\n")
		}
	}
	reg := obs.NewRegistry()
	r := NewReader(strings.NewReader(in.String()), TSV).Quarantine(0.9).Instrument(reg)
	var got int
	n, err := CopyAll(r, func(rec *Record) error {
		if rec.Validate() != nil {
			t.Fatalf("quarantining reader surfaced an invalid record: %+v", rec)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || got != 10 {
		t.Errorf("delivered %d records, want 10", n)
	}
	if r.Skipped() != 4 {
		t.Errorf("Skipped() = %d, want 4", r.Skipped())
	}
	if c := reg.Snapshot().Counters["pdns_reader_quarantined_total"]; c != 4 {
		t.Errorf("pdns_reader_quarantined_total = %d, want 4", c)
	}
	if r.StreamErr() != nil {
		t.Errorf("StreamErr() = %v on a clean stream", r.StreamErr())
	}
}

func TestReaderWithoutQuarantineStillHardFails(t *testing.T) {
	in := goodLine(1) + "garbage\n" + goodLine(2)
	r := NewReader(strings.NewReader(in), TSV)
	var rec Record
	if err := r.Read(&rec); err != nil {
		t.Fatal(err)
	}
	if err := r.Read(&rec); err == nil {
		t.Fatal("default reader accepted a malformed line")
	}
}

func TestReaderQuarantineErrorBudget(t *testing.T) {
	// Past the grace period, make more than 10% of lines malformed.
	var in strings.Builder
	for i := 0; i < 300; i++ {
		in.WriteString(goodLine(i))
		if i%5 == 0 {
			in.WriteString("malformed\n")
		}
	}
	r := NewReader(strings.NewReader(in.String()), TSV).Quarantine(0.1)
	_, err := CopyAll(r, func(*Record) error { return nil })
	if !errors.Is(err, ErrErrorBudget) {
		t.Fatalf("err = %v, want ErrErrorBudget", err)
	}

	// The same stream under a generous budget ingests fully.
	r = NewReader(strings.NewReader(in.String()), TSV).Quarantine(0.5)
	n, err := CopyAll(r, func(*Record) error { return nil })
	if err != nil || n != 300 {
		t.Fatalf("generous budget: n=%d err=%v", n, err)
	}

	// A short bad prefix within the grace period must not abort.
	var prefix strings.Builder
	for i := 0; i < 20; i++ {
		prefix.WriteString("junk\n")
	}
	prefix.WriteString(goodLine(0))
	r = NewReader(strings.NewReader(prefix.String()), TSV).Quarantine(0.05)
	n, err = CopyAll(r, func(*Record) error { return nil })
	if err != nil || n != 1 {
		t.Fatalf("grace period: n=%d err=%v", n, err)
	}
}

// writeTruncatedGzip writes a valid gzip stream of lines to path, then cuts
// the file short so decompression dies mid-stream — the classic interrupted
// feed transfer.
func writeTruncatedGzip(t *testing.T, path string, lines int) {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	for i := 0; i < lines; i++ {
		if _, err := gz.Write([]byte(goodLine(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	cut := buf.Len() * 2 / 3
	if err := os.WriteFile(path, buf.Bytes()[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestReaderQuarantineTruncatedGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "feed.tsv.gz")
	writeTruncatedGzip(t, path, 2000)

	// Default mode: the truncation is a hard error.
	r, c, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	_, err = CopyAll(r, func(*Record) error { return nil })
	if err == nil {
		t.Fatal("default reader ingested a truncated gzip without error")
	}
	c.Close()

	// Quarantine mode: ingest what decompressed, surface the stream error.
	r, c, err = OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r.Quarantine(0.05)
	n, err := CopyAll(r, func(rec *Record) error {
		return rec.Validate()
	})
	if err != nil {
		t.Fatalf("quarantining ingest failed: %v", err)
	}
	if n == 0 {
		t.Fatal("no records recovered from the intact prefix")
	}
	if r.StreamErr() == nil {
		t.Fatal("StreamErr() = nil, want the gzip truncation surfaced")
	}
}

// errCloser records close order and optionally fails.
type errCloser struct {
	name  string
	err   error
	order *[]string
}

func (e *errCloser) Close() error {
	*e.order = append(*e.order, e.name)
	return e.err
}

// TestMultiCloserOrderAndErrors pins the close contract: innermost (gzip)
// first, every closer runs even after a failure, and all errors surface.
func TestMultiCloserOrderAndErrors(t *testing.T) {
	var order []string
	gzErr := errors.New("gzip: truncated")
	fileErr := errors.New("file: io error")
	m := multiCloser{
		&errCloser{name: "gzip", err: gzErr, order: &order},
		&errCloser{name: "file", err: fileErr, order: &order},
	}
	err := m.Close()
	if len(order) != 2 || order[0] != "gzip" || order[1] != "file" {
		t.Fatalf("close order = %v, want [gzip file]", order)
	}
	if !errors.Is(err, gzErr) || !errors.Is(err, fileErr) {
		t.Fatalf("err = %v, want both close errors joined", err)
	}
}

func TestOpenFileBadGzipClosesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.tsv.gz")
	if err := os.WriteFile(path, []byte("not gzip at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenFile(path); err == nil {
		t.Fatal("OpenFile accepted a non-gzip .gz file")
	}
}

func TestCreateFileFlushesThroughGzip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.tsv.gz")
	w, c, err := CreateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rec := Record{FQDN: "f.on.aws", RType: TypeA, RData: "1.2.3.4",
		FirstSeen: time.Unix(1650000000, 0).UTC(), LastSeen: time.Unix(1650000600, 0).UTC(),
		RequestCnt: 5, PDate: DateOf(time.Unix(1650000000, 0))}
	if err := w.Write(&rec); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	r, rc, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var got Record
	if err := r.Read(&got); err != nil {
		t.Fatal(err)
	}
	if got.FQDN != rec.FQDN || got.RequestCnt != rec.RequestCnt {
		t.Fatalf("round trip changed record: %+v", got)
	}
	if err := r.Read(&got); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}
