package pdns

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/binio"
	"repro/internal/providers"
)

// This file is the serialisation boundary of the aggregation engine: it
// dumps and restores an in-flight Aggregator (checkpointing mid-emission)
// and a finished Aggregate (checkpointing the identify stage boundary) as
// compact binary blobs. The codec lives in pdns rather than the checkpoint
// package because an Aggregator's hot state — the seen-days bitsets, the
// window, the trend maps — is deliberately unexported.
//
// Determinism matters here: every map is emitted in sorted key order, so
// the same logical state always serialises to the same bytes and checkpoint
// files can be compared or fingerprinted like any other artifact. Strings
// (FQDNs, rdata values) each occur exactly once across the maps, so no
// intern table is needed on the wire; the PR 7 columnar caches (symtab,
// per-symbol tables, arenas) are rebuilt lazily after restore — the next
// AddBatch adopts its producer's fresh Symtab and falls back to the byFQDN
// map on first sight of each symbol, which is exactly the adoption path a
// brand-new aggregator takes.

const (
	stateVersion = 1
	// Mode tags so an aggregator-state blob handed to DecodeAggregate (or
	// vice versa) fails loudly instead of mis-parsing.
	modeAggregator = 'S'
	modeAggregate  = 'A'
)

// EncodeState serialises the aggregator's full in-flight state, including
// the live per-FQDN seen-days bitsets, so a restored aggregator can keep
// counting distinct active days without double-counting. Call before
// Finish; the columnar caches are intentionally not serialised.
func (a *Aggregator) EncodeState(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Uvarint(stateVersion)
	bw.Uvarint(modeAggregator)
	bw.Varint(int64(a.window.start))
	bw.Varint(int64(a.window.end))
	bw.Varint(a.scanned)
	bw.Varint(a.matched)
	bw.Varint(a.dropped)
	encodeFQDNStatsMap(bw, a.byFQDN, true)
	encodeProviderMap(bw, a.byProvider)
	encodeNewPerDay(bw, a.newPerDay)
	encodeMonthly(bw, a.monthlyReq)
	return bw.Err()
}

// DecodeAggregatorState restores an aggregator serialised by EncodeState.
// The matcher is re-injected by the caller (nil selects all collected
// providers, matching workload.AggregateParallel); telemetry is re-attached
// with Instrument/InstrumentShard as usual. The returned aggregator accepts
// further Add/AddBatch calls and Finishes identically to one that was never
// serialised.
func DecodeAggregatorState(data []byte, matcher *providers.Matcher) (*Aggregator, error) {
	r := binio.NewReader(data)
	start, end, scanned, matched, dropped, err := decodeStateHeader(r, modeAggregator)
	if err != nil {
		return nil, err
	}
	a := NewAggregator(matcher, start, end)
	a.scanned, a.matched, a.dropped = scanned, matched, dropped
	if a.byFQDN, err = decodeFQDNStatsMap(r, true, end.Sub(start)+1); err != nil {
		return nil, err
	}
	if a.byProvider, err = decodeProviderMap(r); err != nil {
		return nil, err
	}
	if a.newPerDay, err = decodeNewPerDay(r); err != nil {
		return nil, err
	}
	if a.monthlyReq, err = decodeMonthly(r); err != nil {
		return nil, err
	}
	return a, nil
}

// EncodeAggregate serialises a finished Aggregate (bitsets already
// released; DaysCount is final).
func EncodeAggregate(w io.Writer, ag *Aggregate) error {
	bw := binio.NewWriter(w)
	bw.Uvarint(stateVersion)
	bw.Uvarint(modeAggregate)
	bw.Varint(int64(ag.Window.Start))
	bw.Varint(int64(ag.Window.End))
	bw.Varint(ag.Scanned)
	bw.Varint(ag.Matched)
	bw.Varint(ag.Dropped)
	encodeFQDNStatsMap(bw, ag.ByFQDN, false)
	encodeProviderMap(bw, ag.ByProvider)
	encodeNewPerDay(bw, ag.NewPerDay)
	encodeMonthly(bw, ag.MonthlyReq)
	return bw.Err()
}

// DecodeAggregate restores an Aggregate serialised by EncodeAggregate.
func DecodeAggregate(data []byte) (*Aggregate, error) {
	r := binio.NewReader(data)
	start, end, scanned, matched, dropped, err := decodeStateHeader(r, modeAggregate)
	if err != nil {
		return nil, err
	}
	ag := &Aggregate{
		Window:  Window{Start: start, End: end},
		Scanned: scanned, Matched: matched, Dropped: dropped,
	}
	if ag.ByFQDN, err = decodeFQDNStatsMap(r, false, 0); err != nil {
		return nil, err
	}
	if ag.ByProvider, err = decodeProviderMap(r); err != nil {
		return nil, err
	}
	if ag.NewPerDay, err = decodeNewPerDay(r); err != nil {
		return nil, err
	}
	if ag.MonthlyReq, err = decodeMonthly(r); err != nil {
		return nil, err
	}
	return ag, nil
}

func decodeStateHeader(r *binio.Reader, wantMode uint64) (start, end Date, scanned, matched, dropped int64, err error) {
	v, err := r.Uvarint()
	if err != nil {
		return
	}
	if v != stateVersion {
		err = fmt.Errorf("pdns: unsupported state version %d (want %d)", v, stateVersion)
		return
	}
	mode, err := r.Uvarint()
	if err != nil {
		return
	}
	if mode != wantMode {
		err = fmt.Errorf("pdns: state mode %q does not match expected %q", rune(mode), rune(wantMode))
		return
	}
	read := func(dst *int64) {
		if err == nil {
			*dst, err = r.Varint()
		}
	}
	var s, e int64
	read(&s)
	read(&e)
	read(&scanned)
	read(&matched)
	read(&dropped)
	start, end = Date(s), Date(e)
	if err == nil && end < start {
		err = fmt.Errorf("pdns: state window [%d, %d] inverted", start, end)
	}
	return
}

func encodeFQDNStatsMap(w *binio.Writer, m map[string]*FQDNStats, withDays bool) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		fs := m[k]
		w.String(fs.FQDN)
		w.Varint(int64(fs.Provider))
		w.String(fs.Region)
		w.Varint(int64(fs.FirstSeenAll))
		w.Varint(int64(fs.LastSeenAll))
		w.Varint(int64(fs.DaysCount))
		w.Varint(fs.TotalRequest)
		if !withDays {
			continue
		}
		// Seen-days bitset: count of non-zero words, then (index, word)
		// pairs. Most functions are active on a handful of days, so the
		// sparse form beats dumping every window word.
		nz := 0
		for _, word := range fs.seenDays.words {
			if word != 0 {
				nz++
			}
		}
		w.Uvarint(uint64(nz))
		for i, word := range fs.seenDays.words {
			if word != 0 {
				w.Uvarint(uint64(i))
				w.Uvarint(word)
			}
		}
	}
}

func decodeFQDNStatsMap(r *binio.Reader, withDays bool, windowDays int) (map[string]*FQDNStats, error) {
	n, err := r.Count(8)
	if err != nil {
		return nil, fmt.Errorf("pdns: fqdn stats: %w", err)
	}
	out := make(map[string]*FQDNStats, n)
	for i := 0; i < n; i++ {
		fs := &FQDNStats{}
		if fs.FQDN, err = r.String(); err != nil {
			return nil, fmt.Errorf("pdns: fqdn stats: %w", err)
		}
		prov, err := r.Varint()
		if err != nil {
			return nil, err
		}
		fs.Provider = providers.ID(prov)
		if fs.Region, err = r.String(); err != nil {
			return nil, err
		}
		ints := [4]int64{}
		for j := range ints {
			if ints[j], err = r.Varint(); err != nil {
				return nil, err
			}
		}
		fs.FirstSeenAll, fs.LastSeenAll = Date(ints[0]), Date(ints[1])
		fs.DaysCount, fs.TotalRequest = int(ints[2]), ints[3]
		if withDays {
			fs.seenDays = newBitset(windowDays)
			nz, err := r.Count(2)
			if err != nil {
				return nil, err
			}
			for j := 0; j < nz; j++ {
				idx, err := r.Uvarint()
				if err != nil {
					return nil, err
				}
				word, err := r.Uvarint()
				if err != nil {
					return nil, err
				}
				if idx >= uint64(len(fs.seenDays.words)) {
					return nil, fmt.Errorf("pdns: fqdn stats %s: bitset word %d outside %d-word window", fs.FQDN, idx, len(fs.seenDays.words))
				}
				fs.seenDays.words[idx] = word
			}
		}
		out[fs.FQDN] = fs
	}
	return out, nil
}

func encodeProviderMap(w *binio.Writer, m map[providers.ID]*ProviderStats) {
	ids := make([]providers.ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		ps := m[id]
		w.Varint(int64(id))
		w.Varint(int64(ps.Domains))
		w.Varint(ps.Requests)
		regions := make([]string, 0, len(ps.Regions))
		for reg := range ps.Regions {
			regions = append(regions, reg)
		}
		sort.Strings(regions)
		w.Uvarint(uint64(len(regions)))
		for _, reg := range regions {
			w.String(reg)
		}
		types := make([]RType, 0, len(ps.ByRType))
		for t := range ps.ByRType {
			types = append(types, t)
		}
		sort.Slice(types, func(i, j int) bool { return types[i] < types[j] })
		w.Uvarint(uint64(len(types)))
		for _, t := range types {
			rs := ps.ByRType[t]
			w.Uvarint(uint64(t))
			w.Varint(rs.Requests)
			rdata := make([]string, 0, len(rs.ByRData))
			for rd := range rs.ByRData {
				rdata = append(rdata, rd)
			}
			sort.Strings(rdata)
			w.Uvarint(uint64(len(rdata)))
			for _, rd := range rdata {
				w.String(rd)
				w.Varint(rs.ByRData[rd])
			}
		}
	}
}

func decodeProviderMap(r *binio.Reader) (map[providers.ID]*ProviderStats, error) {
	n, err := r.Count(4)
	if err != nil {
		return nil, fmt.Errorf("pdns: provider stats: %w", err)
	}
	out := make(map[providers.ID]*ProviderStats, n)
	for i := 0; i < n; i++ {
		id64, err := r.Varint()
		if err != nil {
			return nil, err
		}
		ps := &ProviderStats{
			Provider: providers.ID(id64),
			Regions:  map[string]struct{}{},
			ByRType:  map[RType]*RTypeStats{},
		}
		domains, err := r.Varint()
		if err != nil {
			return nil, err
		}
		ps.Domains = int(domains)
		if ps.Requests, err = r.Varint(); err != nil {
			return nil, err
		}
		nr, err := r.Count(1)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nr; j++ {
			reg, err := r.String()
			if err != nil {
				return nil, err
			}
			ps.Regions[reg] = struct{}{}
		}
		nt, err := r.Count(2)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nt; j++ {
			t64, err := r.Uvarint()
			if err != nil {
				return nil, err
			}
			rs := &RTypeStats{ByRData: map[string]int64{}}
			if rs.Requests, err = r.Varint(); err != nil {
				return nil, err
			}
			nd, err := r.Count(2)
			if err != nil {
				return nil, err
			}
			for k := 0; k < nd; k++ {
				rd, err := r.String()
				if err != nil {
					return nil, err
				}
				if rs.ByRData[rd], err = r.Varint(); err != nil {
					return nil, err
				}
			}
			ps.ByRType[RType(t64)] = rs
		}
		out[ps.Provider] = ps
	}
	return out, nil
}

func encodeNewPerDay(w *binio.Writer, m map[Date]int) {
	days := make([]Date, 0, len(m))
	for d := range m {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	w.Uvarint(uint64(len(days)))
	for _, d := range days {
		w.Varint(int64(d))
		w.Varint(int64(m[d]))
	}
}

func decodeNewPerDay(r *binio.Reader) (map[Date]int, error) {
	n, err := r.Count(2)
	if err != nil {
		return nil, fmt.Errorf("pdns: new-per-day: %w", err)
	}
	out := make(map[Date]int, n)
	for i := 0; i < n; i++ {
		d, err := r.Varint()
		if err != nil {
			return nil, err
		}
		cnt, err := r.Varint()
		if err != nil {
			return nil, err
		}
		out[Date(d)] = int(cnt)
	}
	return out, nil
}

func encodeMonthly(w *binio.Writer, m map[providers.ID]map[Date]int64) {
	ids := make([]providers.ID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.Uvarint(uint64(len(ids)))
	for _, id := range ids {
		w.Varint(int64(id))
		encodeNewPerDay64(w, m[id])
	}
}

func encodeNewPerDay64(w *binio.Writer, m map[Date]int64) {
	days := make([]Date, 0, len(m))
	for d := range m {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	w.Uvarint(uint64(len(days)))
	for _, d := range days {
		w.Varint(int64(d))
		w.Varint(m[d])
	}
}

func decodeMonthly(r *binio.Reader) (map[providers.ID]map[Date]int64, error) {
	n, err := r.Count(3)
	if err != nil {
		return nil, fmt.Errorf("pdns: monthly series: %w", err)
	}
	out := make(map[providers.ID]map[Date]int64, n)
	for i := 0; i < n; i++ {
		id64, err := r.Varint()
		if err != nil {
			return nil, err
		}
		nm, err := r.Count(2)
		if err != nil {
			return nil, err
		}
		series := make(map[Date]int64, nm)
		for j := 0; j < nm; j++ {
			d, err := r.Varint()
			if err != nil {
				return nil, err
			}
			if series[Date(d)], err = r.Varint(); err != nil {
				return nil, err
			}
		}
		out[providers.ID(id64)] = series
	}
	return out, nil
}
