package pdns

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/providers"
)

func date(y int, m time.Month, d int) Date { return NewDate(y, m, d) }

func TestDateRoundTrip(t *testing.T) {
	d := date(2022, time.April, 1)
	if d.String() != "2022-04-01" {
		t.Errorf("String() = %q", d.String())
	}
	p, err := ParseDate("2022-04-01")
	if err != nil || p != d {
		t.Errorf("ParseDate = %v, %v", p, err)
	}
	if _, err := ParseDate("04/01/2022"); err == nil {
		t.Error("ParseDate accepted non-ISO date")
	}
	if d.AddDays(30) != date(2022, time.May, 1) {
		t.Errorf("AddDays(30) = %v", d.AddDays(30))
	}
	if date(2024, time.March, 31).Sub(d) != 730 {
		t.Errorf("window length = %d days, want 730", date(2024, time.March, 31).Sub(d))
	}
	if date(2023, time.July, 19).Month() != date(2023, time.July, 1) {
		t.Error("Month() did not truncate to first of month")
	}
}

func mkRecord(fqdn string, day Date, rt RType, rdata string, cnt int64) Record {
	ts := day.Time().Add(3 * time.Hour)
	return Record{
		FQDN: fqdn, RType: rt, RData: rdata,
		FirstSeen: ts, LastSeen: ts.Add(10 * time.Minute),
		RequestCnt: cnt, PDate: day,
	}
}

func TestRecordValidate(t *testing.T) {
	d := date(2023, time.January, 5)
	good := mkRecord("a.example", d, TypeA, "1.2.3.4", 7)
	if err := good.Validate(); err != nil {
		t.Errorf("valid record rejected: %v", err)
	}
	bad := good
	bad.FQDN = ""
	if bad.Validate() == nil {
		t.Error("empty fqdn accepted")
	}
	bad = good
	bad.RequestCnt = -1
	if bad.Validate() == nil {
		t.Error("negative request_cnt accepted")
	}
	bad = good
	bad.LastSeen = bad.FirstSeen.Add(-time.Hour)
	if bad.Validate() == nil {
		t.Error("last_seen before first_seen accepted")
	}
	bad = good
	bad.PDate = d.AddDays(1)
	if bad.Validate() == nil {
		t.Error("first_seen outside pdate accepted")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	d := date(2022, time.June, 10)
	recs := []Record{
		mkRecord("1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com", d, TypeCNAME, "gz.scf.tencentcs.com", 12),
		mkRecord("x.lambda-url.us-east-1.on.aws", d.AddDays(1), TypeA, "3.4.5.6", 1),
		mkRecord("y.lambda-url.us-east-1.on.aws", d.AddDays(2), TypeAAAA, "2600::1", 99),
	}
	for _, format := range []Format{JSONL, TSV} {
		var buf bytes.Buffer
		w := NewWriter(&buf, format)
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatalf("format %d write: %v", format, err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if w.Count() != int64(len(recs)) {
			t.Errorf("Count = %d", w.Count())
		}
		r := NewReader(&buf, format)
		var got []Record
		var rec Record
		for {
			err := r.Read(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("format %d read: %v", format, err)
			}
			got = append(got, rec)
		}
		if len(got) != len(recs) {
			t.Fatalf("format %d: read %d records, want %d", format, len(got), len(recs))
		}
		for i := range recs {
			a, b := recs[i], got[i]
			if a.FQDN != b.FQDN || a.RType != b.RType || a.RData != b.RData ||
				a.RequestCnt != b.RequestCnt || a.PDate != b.PDate ||
				!a.FirstSeen.Equal(b.FirstSeen) || !a.LastSeen.Equal(b.LastSeen) {
				t.Errorf("format %d record %d: got %+v, want %+v", format, i, b, a)
			}
		}
	}
}

func TestTSVMalformed(t *testing.T) {
	lines := []string{
		"too\tfew\tcolumns",
		"f\tnotanint\trdata\t0\t0\t1\t100",
		"f\t1\trdata\tx\t0\t1\t100",
		"f\t1\trdata\t0\t0\tx\t100",
		"f\t1\trdata\t0\t0\t1\tx",
	}
	for _, l := range lines {
		r := NewReader(bytes.NewBufferString(l+"\n"), TSV)
		var rec Record
		if err := r.Read(&rec); err == nil || err == io.EOF {
			t.Errorf("malformed line %q accepted", l)
		}
	}
}

func TestReaderSkipsBlankLines(t *testing.T) {
	r := NewReader(bytes.NewBufferString("\n\n"), TSV)
	var rec Record
	if err := r.Read(&rec); err != io.EOF {
		t.Errorf("expected EOF on blank input, got %v", err)
	}
}

func testWindow() (Date, Date) {
	return date(2022, time.April, 1), date(2024, time.March, 31)
}

func TestAggregatorBasics(t *testing.T) {
	start, end := testWindow()
	a := NewAggregator(nil, start, end)
	fqdn := "1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com"

	// Two rtypes on the same day must count one distinct day.
	r1 := mkRecord(fqdn, start.AddDays(10), TypeA, "1.1.1.1", 5)
	r2 := mkRecord(fqdn, start.AddDays(10), TypeCNAME, "gz.scf.tencentcs.com", 3)
	r3 := mkRecord(fqdn, start.AddDays(20), TypeA, "1.1.1.1", 2)
	for _, r := range []Record{r1, r2, r3} {
		a.Add(&r)
	}
	// A non-function domain and an invalid record must be ignored.
	junk := mkRecord("www.example.com", start, TypeA, "9.9.9.9", 100)
	a.Add(&junk)
	bad := mkRecord(fqdn, start, TypeA, "1.1.1.1", -5)
	a.Add(&bad)

	ag := a.Finish()
	if ag.TotalDomains() != 1 {
		t.Fatalf("TotalDomains = %d, want 1", ag.TotalDomains())
	}
	fs := ag.ByFQDN[fqdn]
	if fs.Provider != providers.Tencent {
		t.Errorf("provider = %v", fs.Provider)
	}
	if fs.Region != "ap-guangzhou" {
		t.Errorf("region = %q", fs.Region)
	}
	if fs.DaysCount != 2 {
		t.Errorf("DaysCount = %d, want 2", fs.DaysCount)
	}
	if fs.TotalRequest != 10 {
		t.Errorf("TotalRequest = %d, want 10", fs.TotalRequest)
	}
	if fs.FirstSeenAll != start.AddDays(10) || fs.LastSeenAll != start.AddDays(20) {
		t.Errorf("first/last = %v/%v", fs.FirstSeenAll, fs.LastSeenAll)
	}
	if fs.Lifespan() != 11 {
		t.Errorf("Lifespan = %d, want 11", fs.Lifespan())
	}
	if got := fs.ActivityDensity(); got < 0.18 || got > 0.19 {
		t.Errorf("ActivityDensity = %v, want 2/11", got)
	}

	ps := ag.ByProvider[providers.Tencent]
	if ps.Domains != 1 || ps.Requests != 10 {
		t.Errorf("provider stats = %+v", ps)
	}
	if got := ps.RTypeShare(TypeA); got != 0.7 {
		t.Errorf("A share = %v, want 0.7", got)
	}
	if got := ps.RTypeShare(TypeCNAME); got != 0.3 {
		t.Errorf("CNAME share = %v, want 0.3", got)
	}
	if ag.Scanned != 5 || ag.Matched != 3 || ag.Dropped != 1 {
		t.Errorf("scanned/matched/dropped = %d/%d/%d", ag.Scanned, ag.Matched, ag.Dropped)
	}
	if ag.NewPerDay[start.AddDays(10)] != 1 {
		t.Errorf("NewPerDay = %v", ag.NewPerDay)
	}
	if ag.MonthlyReq[providers.Tencent][start.AddDays(10).Month()] != 10 {
		t.Errorf("MonthlyReq = %v", ag.MonthlyReq[providers.Tencent])
	}
}

func TestAggregatorWindowClipping(t *testing.T) {
	start, end := testWindow()
	a := NewAggregator(nil, start, end)
	fqdn := "x.lambda-url.us-east-1.on.aws"
	before := mkRecord(fqdn, start.AddDays(-1), TypeA, "1.1.1.1", 5)
	after := mkRecord(fqdn, end.AddDays(1), TypeA, "1.1.1.1", 5)
	inside := mkRecord(fqdn, start, TypeA, "1.1.1.1", 5)
	a.Add(&before)
	a.Add(&after)
	a.Add(&inside)
	ag := a.Finish()
	if ag.Matched != 1 {
		t.Errorf("Matched = %d, want 1 (window clipping)", ag.Matched)
	}
	if ag.ByFQDN[fqdn].TotalRequest != 5 {
		t.Errorf("TotalRequest = %d", ag.ByFQDN[fqdn].TotalRequest)
	}
}

func TestTop10Share(t *testing.T) {
	rs := &RTypeStats{ByRData: map[string]int64{}}
	// Three rdata values: fewer than ten means share is 1.
	for _, kv := range []struct {
		k string
		v int64
	}{{"a", 5}, {"b", 3}, {"c", 2}} {
		rs.ByRData[kv.k] = kv.v
		rs.Requests += kv.v
	}
	if got := rs.Top10Share(); got != 1 {
		t.Errorf("Top10Share = %v, want 1", got)
	}
	// Add twenty singleton rdata values: top10 = (5+3+2 + 7 singletons)/30.
	for i := 0; i < 20; i++ {
		rs.ByRData[string(rune('d'+i))] = 1
		rs.Requests++
	}
	want := float64(5+3+2+7) / 30
	if got := rs.Top10Share(); got != want {
		t.Errorf("Top10Share = %v, want %v", got, want)
	}
	if rs.RDataCnt() != 23 {
		t.Errorf("RDataCnt = %d", rs.RDataCnt())
	}
	empty := &RTypeStats{ByRData: map[string]int64{}}
	if empty.Top10Share() != 0 {
		t.Error("empty Top10Share should be 0")
	}
}

func TestPerFunctionStatsExcludesSharedDomains(t *testing.T) {
	start, end := testWindow()
	a := NewAggregator(nil, start, end)
	recs := []Record{
		mkRecord("x.lambda-url.us-east-1.on.aws", start, TypeA, "1.1.1.1", 1),
		mkRecord("us-central1-proj.cloudfunctions.net", start, TypeA, "2.2.2.2", 1),
		mkRecord("eu-gb.functions.appdomain.cloud", start, TypeCNAME, "x.cloudflare.net", 1),
	}
	for i := range recs {
		a.Add(&recs[i])
	}
	ag := a.Finish()
	pf := ag.PerFunctionStats()
	if len(pf) != 1 || pf[0].Provider != providers.AWS {
		t.Errorf("PerFunctionStats = %v", pf)
	}
	if ag.TotalDomains() != 3 {
		t.Errorf("TotalDomains = %d", ag.TotalDomains())
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(731)
	if !b.setIfUnset(0) || b.setIfUnset(0) {
		t.Error("bit 0 semantics wrong")
	}
	if !b.setIfUnset(730) || b.setIfUnset(730) {
		t.Error("bit 730 semantics wrong")
	}
	if b.setIfUnset(731) || b.setIfUnset(-1) {
		t.Error("out-of-range set should report false")
	}
}

// Property: DaysCount equals the number of distinct pdates fed in, for any
// multiset of days.
func TestQuickDaysCount(t *testing.T) {
	start, end := testWindow()
	f := func(offsets []uint16) bool {
		if len(offsets) == 0 {
			return true
		}
		a := NewAggregator(nil, start, end)
		fqdn := "x.lambda-url.us-east-1.on.aws"
		distinct := map[Date]bool{}
		for _, off := range offsets {
			day := start.AddDays(int(off) % 731)
			distinct[day] = true
			r := mkRecord(fqdn, day, TypeA, "1.1.1.1", 1)
			a.Add(&r)
		}
		ag := a.Finish()
		return ag.ByFQDN[fqdn].DaysCount == len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Error(err)
	}
}

// Property: codec round-trip is the identity on arbitrary printable records.
func TestQuickTSVRoundTrip(t *testing.T) {
	start, _ := testWindow()
	f := func(cnt uint32, off uint16, sel uint8) bool {
		day := start.AddDays(int(off) % 731)
		rt := []RType{TypeA, TypeCNAME, TypeAAAA}[int(sel)%3]
		rec := mkRecord("f.lambda-url.us-east-1.on.aws", day, rt, "10.0.0.1", int64(cnt))
		var buf bytes.Buffer
		w := NewWriter(&buf, TSV)
		if err := w.Write(&rec); err != nil {
			return false
		}
		if err := w.Flush(); err != nil {
			return false
		}
		var got Record
		if err := NewReader(&buf, TSV).Read(&got); err != nil {
			return false
		}
		return got == rec || (got.FQDN == rec.FQDN && got.RequestCnt == rec.RequestCnt &&
			got.PDate == rec.PDate && got.RType == rec.RType &&
			got.FirstSeen.Equal(rec.FirstSeen) && got.LastSeen.Equal(rec.LastSeen))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCopyAll(t *testing.T) {
	start, _ := testWindow()
	var buf bytes.Buffer
	w := NewWriter(&buf, TSV)
	for i := 0; i < 5; i++ {
		r := mkRecord("f.lambda-url.us-east-1.on.aws", start.AddDays(i), TypeA, "1.1.1.1", 1)
		if err := w.Write(&r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var n int
	got, err := CopyAll(NewReader(&buf, TSV), func(r *Record) error { n++; return nil })
	if err != nil || got != 5 || n != 5 {
		t.Errorf("CopyAll = %d, %v (callback saw %d)", got, err, n)
	}
}
