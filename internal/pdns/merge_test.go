package pdns

import (
	"io"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestMergeEquivalentToSinglePass(t *testing.T) {
	start, end := testWindow()
	fqdnA := "a.lambda-url.us-east-1.on.aws"
	fqdnB := "b-c-abcdefghij.cn-shanghai.fcapp.run"
	recs := []Record{
		mkRecord(fqdnA, start.AddDays(1), TypeA, "1.1.1.1", 10),
		mkRecord(fqdnA, start.AddDays(2), TypeAAAA, "2600::1", 5),
		mkRecord(fqdnB, start.AddDays(3), TypeCNAME, "x.aliyuncs.com", 7),
		mkRecord(fqdnB, start.AddDays(9), TypeA, "2.2.2.2", 3),
	}

	single := NewAggregator(nil, start, end)
	for i := range recs {
		single.Add(&recs[i])
	}
	want := single.Finish()

	// Shard by FQDN: A-records to shard 0, B to shard 1.
	s0 := NewAggregator(nil, start, end)
	s1 := NewAggregator(nil, start, end)
	for i := range recs {
		if recs[i].FQDN == fqdnA {
			s0.Add(&recs[i])
		} else {
			s1.Add(&recs[i])
		}
	}
	got := s0.Finish()
	if err := got.Merge(s1.Finish()); err != nil {
		t.Fatal(err)
	}

	if got.TotalDomains() != want.TotalDomains() || got.TotalRequests() != want.TotalRequests() {
		t.Errorf("merged totals = %d/%d, want %d/%d",
			got.TotalDomains(), got.TotalRequests(), want.TotalDomains(), want.TotalRequests())
	}
	for fqdn, w := range want.ByFQDN {
		g := got.ByFQDN[fqdn]
		if g == nil {
			t.Fatalf("merged aggregate missing %s", fqdn)
		}
		if g.FirstSeenAll != w.FirstSeenAll || g.LastSeenAll != w.LastSeenAll ||
			g.DaysCount != w.DaysCount || g.TotalRequest != w.TotalRequest {
			t.Errorf("%s: merged %+v, want %+v", fqdn, g, w)
		}
	}
	for id, w := range want.ByProvider {
		g := got.ByProvider[id]
		if g.Domains != w.Domains || g.Requests != w.Requests {
			t.Errorf("provider %v: merged %d/%d, want %d/%d", id, g.Domains, g.Requests, w.Domains, w.Requests)
		}
		for tpe, wrs := range w.ByRType {
			grs := g.ByRType[tpe]
			if grs == nil || grs.Requests != wrs.Requests || !reflect.DeepEqual(grs.ByRData, wrs.ByRData) {
				t.Errorf("provider %v type %v: merged %+v, want %+v", id, tpe, grs, wrs)
			}
		}
	}
	if !reflect.DeepEqual(got.NewPerDay, want.NewPerDay) {
		t.Errorf("NewPerDay merged %v, want %v", got.NewPerDay, want.NewPerDay)
	}
}

func TestMergeWindowMismatch(t *testing.T) {
	start, end := testWindow()
	a := NewAggregator(nil, start, end).Finish()
	b := NewAggregator(nil, start, end.AddDays(-1)).Finish()
	if err := a.Merge(b); err == nil {
		t.Error("window mismatch accepted")
	}
}

func TestShardByFQDNStable(t *testing.T) {
	s := ShardByFQDN("x.lambda-url.us-east-1.on.aws", 8)
	for i := 0; i < 10; i++ {
		if ShardByFQDN("x.lambda-url.us-east-1.on.aws", 8) != s {
			t.Fatal("shard not stable")
		}
	}
	if ShardByFQDN("anything", 1) != 0 {
		t.Error("single shard must be 0")
	}
	// Distribution sanity over many fqdns.
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[ShardByFQDN(string(rune('a'+i%26))+"x"+time.Duration(i).String(), 4)]++
	}
	for i, c := range counts {
		if c < 500 {
			t.Errorf("shard %d badly unbalanced: %d/4000", i, c)
		}
	}
}

func TestParallelAggregateMatchesSerial(t *testing.T) {
	start, end := testWindow()
	var recs []Record
	fqdns := []string{
		"a.lambda-url.us-east-1.on.aws",
		"b.lambda-url.eu-west-1.on.aws",
		"x-y-abcdefghij.cn-shanghai.fcapp.run",
		"1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com",
	}
	for i := 0; i < 400; i++ {
		recs = append(recs, mkRecord(fqdns[i%len(fqdns)], start.AddDays(i%500), TypeA, "9.9.9.9", int64(1+i%7)))
	}

	serial := NewAggregator(nil, start, end)
	for i := range recs {
		serial.Add(&recs[i])
	}
	want := serial.Finish()

	for _, workers := range []int{1, 2, 4} {
		idx := 0
		got, err := ParallelAggregate(nil, start, end, workers, func() (*Record, bool) {
			if idx >= len(recs) {
				return nil, false
			}
			r := &recs[idx]
			idx++
			return r, true
		})
		if err != nil {
			t.Fatal(err)
		}
		if got.TotalDomains() != want.TotalDomains() || got.TotalRequests() != want.TotalRequests() {
			t.Errorf("workers=%d: totals %d/%d, want %d/%d", workers,
				got.TotalDomains(), got.TotalRequests(), want.TotalDomains(), want.TotalRequests())
		}
		for fqdn, w := range want.ByFQDN {
			g := got.ByFQDN[fqdn]
			if g == nil || g.DaysCount != w.DaysCount || g.TotalRequest != w.TotalRequest {
				t.Errorf("workers=%d %s: %+v, want %+v", workers, fqdn, g, w)
			}
		}
	}
}

func TestFileRoundTripFormats(t *testing.T) {
	start, _ := testWindow()
	recs := []Record{
		mkRecord("a.lambda-url.us-east-1.on.aws", start, TypeA, "1.1.1.1", 3),
		mkRecord("b.lambda-url.us-east-1.on.aws", start.AddDays(1), TypeAAAA, "2600::2", 9),
	}
	dir := t.TempDir()
	for _, name := range []string{"d.tsv", "d.jsonl", "d.tsv.gz", "d.jsonl.gz"} {
		path := filepath.Join(dir, name)
		w, closer, err := CreateFile(path)
		if err != nil {
			t.Fatalf("%s: create: %v", name, err)
		}
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatalf("%s: write: %v", name, err)
			}
		}
		if err := closer.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}

		r, rcloser, err := OpenFile(path)
		if err != nil {
			t.Fatalf("%s: open: %v", name, err)
		}
		var got []Record
		var rec Record
		for {
			err := r.Read(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: read: %v", name, err)
			}
			got = append(got, rec)
		}
		rcloser.Close()
		if len(got) != len(recs) {
			t.Fatalf("%s: %d records, want %d", name, len(got), len(recs))
		}
		for i := range recs {
			if got[i].FQDN != recs[i].FQDN || got[i].RequestCnt != recs[i].RequestCnt {
				t.Errorf("%s record %d: %+v", name, i, got[i])
			}
		}
	}
}

func TestFileUnknownExtension(t *testing.T) {
	if _, _, err := OpenFile("x.csv"); err == nil {
		t.Error("unknown extension accepted")
	}
	if _, _, err := CreateFile("/nonexistent-dir-zz/x.tsv"); err == nil {
		t.Error("uncreatable path accepted")
	}
	if _, _, err := OpenFile(filepath.Join(t.TempDir(), "missing.tsv")); err == nil {
		t.Error("missing file accepted")
	}
}
