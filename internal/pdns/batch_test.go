package pdns

import (
	"bytes"
	"io"
	"reflect"
	"testing"
	"time"
)

func TestInternInsertionOrder(t *testing.T) {
	s := NewSymtab()
	words := []string{"alpha", "beta", "gamma", "alpha", "beta", "delta"}
	want := []Sym{0, 1, 2, 0, 1, 3}
	for i, w := range words {
		if got := s.Intern(w); got != want[i] {
			t.Fatalf("Intern(%q) = %d, want %d", w, got, want[i])
		}
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	for i, w := range words {
		if got := s.InternBytes([]byte(w)); got != want[i] {
			t.Fatalf("InternBytes(%q) = %d, want %d", w, got, want[i])
		}
	}
	if got := s.Lookup(2); got != "gamma" {
		t.Fatalf("Lookup(2) = %q", got)
	}
	// Unknown symbols degrade to "" instead of panicking.
	if got := s.Lookup(99); got != "" {
		t.Fatalf("out-of-range Lookup = %q, want empty", got)
	}
}

// batchRecords is a small corpus whose FQDNs match real provider formats, so
// the same rows exercise codec and aggregation paths.
func batchRecords() []Record {
	d := date(2022, time.June, 10)
	return []Record{
		mkRecord("1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com", d, TypeCNAME, "gz.scf.tencentcs.com", 12),
		mkRecord("x.lambda-url.us-east-1.on.aws", d.AddDays(1), TypeA, "3.4.5.6", 1),
		mkRecord("x.lambda-url.us-east-1.on.aws", d.AddDays(1), TypeAAAA, "2600::1", 99),
		mkRecord("y.lambda-url.us-east-1.on.aws", d.AddDays(40), TypeA, "3.4.5.6", 7),
		mkRecord("not-a-function.example.com", d, TypeA, "9.9.9.9", 3),
	}
}

func batchOf(recs []Record) *RecordBatch {
	b := NewRecordBatch(len(recs))
	for i := range recs {
		b.AppendRecord(&recs[i])
	}
	return b
}

// TestWriteBatchBytesIdentical pins the core codec contract: a batch write
// produces exactly the bytes of the equivalent per-record writes, in both
// formats.
func TestWriteBatchBytesIdentical(t *testing.T) {
	recs := batchRecords()
	for _, format := range []Format{TSV, JSONL} {
		var scalar bytes.Buffer
		w := NewWriter(&scalar, format)
		for i := range recs {
			if err := w.Write(&recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		w.Flush()

		var batched bytes.Buffer
		bw := NewWriter(&batched, format)
		if err := bw.WriteBatch(batchOf(recs)); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		if bw.Count() != int64(len(recs)) {
			t.Errorf("format %d: Count = %d, want %d", format, bw.Count(), len(recs))
		}
		if !bytes.Equal(scalar.Bytes(), batched.Bytes()) {
			t.Errorf("format %d: batch bytes differ from scalar bytes:\n%q\nvs\n%q",
				format, batched.String(), scalar.String())
		}
	}
}

func TestReadBatchMatchesRead(t *testing.T) {
	recs := batchRecords()
	for _, format := range []Format{TSV, JSONL} {
		var buf bytes.Buffer
		w := NewWriter(&buf, format)
		if err := w.WriteBatch(batchOf(recs)); err != nil {
			t.Fatal(err)
		}
		w.Flush()
		encoded := buf.Bytes()

		var scalar []Record
		r := NewReader(bytes.NewReader(encoded), format)
		var rec Record
		for {
			err := r.Read(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			scalar = append(scalar, rec)
		}

		var batched []Record
		br := NewReader(bytes.NewReader(encoded), format)
		b := NewRecordBatch(2) // tiny batch forces several ReadBatch rounds
		for {
			b.Reset()
			n, err := br.ReadBatch(b, 2)
			for i := 0; i < n; i++ {
				var out Record
				b.At(i, &out)
				batched = append(batched, out)
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(scalar, batched) {
			t.Errorf("format %d: batch read diverged:\n%+v\nvs\n%+v", format, batched, scalar)
		}
	}
}

// TestReadBatchQuarantine feeds the same dirty stream to the scalar and the
// batch reader and requires identical delivered records and skip counts.
func TestReadBatchQuarantine(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, TSV)
	recs := batchRecords()
	for i := range recs {
		if err := w.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
		buf.WriteString("garbage line without tabs\n")
		buf.WriteString("f\tnotanint\trdata\t0\t0\t1\t100\n")
	}
	w.Flush()
	dirty := buf.Bytes()

	sr := NewReader(bytes.NewReader(dirty), TSV).Quarantine(0.9)
	var scalar []Record
	var rec Record
	for {
		err := sr.Read(&rec)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		scalar = append(scalar, rec)
	}

	br := NewReader(bytes.NewReader(dirty), TSV).Quarantine(0.9)
	b := NewRecordBatch(DefaultBatchRows)
	var batched []Record
	for {
		b.Reset()
		n, err := br.ReadBatch(b, 3)
		for i := 0; i < n; i++ {
			var out Record
			b.At(i, &out)
			batched = append(batched, out)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(scalar, batched) {
		t.Errorf("quarantined batch read diverged:\n%+v\nvs\n%+v", batched, scalar)
	}
	if sr.Skipped() != br.Skipped() {
		t.Errorf("Skipped: scalar %d, batch %d", sr.Skipped(), br.Skipped())
	}
	if sr.Skipped() != int64(2*len(recs)) {
		t.Errorf("Skipped = %d, want %d", sr.Skipped(), 2*len(recs))
	}
	// Malformed lines must not leak strings into the intern table: only the
	// delivered rows' fqdn/rdata values may be present.
	distinct := map[string]struct{}{}
	for _, r := range scalar {
		distinct[r.FQDN] = struct{}{}
		distinct[r.RData] = struct{}{}
	}
	if b.Syms.Len() != len(distinct) {
		t.Errorf("symtab has %d entries, want %d (quarantined lines polluted it)",
			b.Syms.Len(), len(distinct))
	}
}

// TestAddBatchMatchesAdd is the core equivalence claim of the columnar path:
// folding a batch must produce exactly the aggregate of scalar Adds.
func TestAddBatchMatchesAdd(t *testing.T) {
	start, end := testWindow()
	recs := batchRecords()
	// Edge rows: invalid (negative count) and out-of-window.
	bad := mkRecord("z.lambda-url.us-east-1.on.aws", start.AddDays(3), TypeA, "1.1.1.1", 5)
	bad.RequestCnt = -4
	recs = append(recs, bad)
	recs = append(recs, mkRecord("w.lambda-url.us-east-1.on.aws", end.AddDays(10), TypeA, "1.1.1.1", 5))

	want := NewAggregator(nil, start, end)
	for i := range recs {
		want.Add(&recs[i])
	}

	got := NewAggregator(nil, start, end)
	// Split across two batches sharing one Symtab, like a streaming producer.
	b1 := batchOf(recs[:3])
	got.AddBatch(b1)
	b2 := &RecordBatch{Syms: b1.Syms}
	for i := 3; i < len(recs); i++ {
		b2.AppendRecord(&recs[i])
	}
	got.AddBatch(b2)

	if !reflect.DeepEqual(want.Finish(), got.Finish()) {
		t.Fatal("AddBatch aggregate differs from scalar Add aggregate")
	}
}

// TestAddBatchForeignSymtab: a batch whose Symtab is not the adopted one must
// still aggregate correctly (via the scalar fallback).
func TestAddBatchForeignSymtab(t *testing.T) {
	start, end := testWindow()
	recs := batchRecords()

	want := NewAggregator(nil, start, end)
	for i := range recs {
		want.Add(&recs[i])
	}

	got := NewAggregator(nil, start, end)
	got.AddBatch(batchOf(recs[:2])) // adopted table
	got.AddBatch(batchOf(recs[2:])) // foreign table → fallback

	if !reflect.DeepEqual(want.Finish(), got.Finish()) {
		t.Fatal("foreign-symtab AddBatch diverged from scalar aggregate")
	}
}

// TestAddBatchMixedWithAdd interleaves scalar Add calls with batches, the
// shape core.Run would produce if a chaos hook forced some records scalar.
func TestAddBatchMixedWithAdd(t *testing.T) {
	start, end := testWindow()
	recs := batchRecords()

	want := NewAggregator(nil, start, end)
	for i := range recs {
		want.Add(&recs[i])
	}

	got := NewAggregator(nil, start, end)
	got.AddBatch(batchOf(recs[:2]))
	got.Add(&recs[2])
	b := batchOf(recs[3:])
	got.AddBatch(b) // foreign table again — fallback path
	if !reflect.DeepEqual(want.Finish(), got.Finish()) {
		t.Fatal("mixed Add/AddBatch diverged from scalar aggregate")
	}
}

// TestRowValidMatchesValidate checks the integer-only row validation agrees
// with Record.Validate for every rejection class.
func TestRowValidMatchesValidate(t *testing.T) {
	d := date(2023, time.January, 5)
	good := mkRecord("a.lambda-url.us-east-1.on.aws", d, TypeA, "1.2.3.4", 7)
	cases := []func(*Record){
		func(r *Record) {},
		func(r *Record) { r.FQDN = "" },
		func(r *Record) { r.RequestCnt = -1 },
		func(r *Record) { r.LastSeen = r.FirstSeen.Add(-time.Hour) },
		func(r *Record) { r.PDate = d.AddDays(1) },
	}
	for i, mutate := range cases {
		rec := good
		mutate(&rec)
		b := NewRecordBatch(1)
		b.AppendRecord(&rec)
		if got, want := b.rowValid(0), rec.Validate() == nil; got != want {
			t.Errorf("case %d: rowValid = %v, Validate nil = %v", i, got, want)
		}
	}
}
