package pdns

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// stateRecords builds a deterministic record stream spanning two providers,
// several rtypes, and a spread of days, so every serialised map has content.
func stateRecords(start Date) []Record {
	fqdns := []string{
		"1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com",
		"0987654321-jihgfedcba-ap-shanghai.scf.tencentcs.com",
		"alpha.lambda-url.us-east-1.on.aws",
		"beta.lambda-url.eu-west-2.on.aws",
	}
	var out []Record
	for i, fqdn := range fqdns {
		for d := 0; d < 40; d += i + 3 {
			day := start.AddDays(d)
			out = append(out, mkRecord(fqdn, day, TypeA, "1.2.3.4", int64(3+i*7+d)))
			if d%2 == 0 {
				out = append(out, mkRecord(fqdn, day, TypeCNAME, "gw.example.com", int64(1+d)))
			}
		}
	}
	return out
}

func stateAggregator(t *testing.T, recs []Record) *Aggregator {
	t.Helper()
	start := date(2022, time.April, 1)
	agg := NewAggregator(nil, start, start.AddDays(729))
	for i := range recs {
		agg.Add(&recs[i])
	}
	return agg
}

// TestAggregatorStateRoundTrip pins the checkpoint contract for an in-flight
// aggregator: serialise mid-stream, restore, keep adding the identical tail,
// and the finished Aggregate must equal the uninterrupted one's exactly.
func TestAggregatorStateRoundTrip(t *testing.T) {
	recs := stateRecords(date(2022, time.April, 1))
	half := len(recs) / 2

	cont := stateAggregator(t, recs[:half])
	var buf bytes.Buffer
	if err := cont.EncodeState(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := DecodeAggregatorState(buf.Bytes(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := half; i < len(recs); i++ {
		cont.Add(&recs[i])
		restored.Add(&recs[i])
	}
	want := stateAggregator(t, recs).Finish()
	if got := cont.Finish(); !reflect.DeepEqual(got, want) {
		t.Error("continuing the original aggregator after EncodeState diverged")
	}
	if got := restored.Finish(); !reflect.DeepEqual(got, want) {
		t.Error("restored aggregator finished differently from the uninterrupted one")
	}
}

// TestAggregatorStateDeterministic: the same logical state must serialise to
// the same bytes (maps are emitted in sorted order), so checkpoint files can
// be fingerprinted like any other artifact.
func TestAggregatorStateDeterministic(t *testing.T) {
	recs := stateRecords(date(2022, time.April, 1))
	var a, b bytes.Buffer
	if err := stateAggregator(t, recs).EncodeState(&a); err != nil {
		t.Fatal(err)
	}
	if err := stateAggregator(t, recs).EncodeState(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two encodings of the same aggregator state differ")
	}
}

// TestAggregateRoundTrip covers the stage-boundary snapshot: a finished
// Aggregate survives encode/decode bit-for-bit.
func TestAggregateRoundTrip(t *testing.T) {
	want := stateAggregator(t, stateRecords(date(2022, time.April, 1))).Finish()
	var buf bytes.Buffer
	if err := EncodeAggregate(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAggregate(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("decoded Aggregate differs from the encoded one")
	}
}

// TestStateModeMismatch: handing an aggregate blob to the aggregator decoder
// (or vice versa) must fail loudly, not mis-parse.
func TestStateModeMismatch(t *testing.T) {
	agg := stateAggregator(t, stateRecords(date(2022, time.April, 1)))
	var inflight bytes.Buffer
	if err := agg.EncodeState(&inflight); err != nil {
		t.Fatal(err)
	}
	var finished bytes.Buffer
	if err := EncodeAggregate(&finished, agg.Finish()); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeAggregate(inflight.Bytes()); err == nil {
		t.Error("DecodeAggregate accepted an in-flight aggregator blob")
	}
	if _, err := DecodeAggregatorState(finished.Bytes(), nil); err == nil {
		t.Error("DecodeAggregatorState accepted a finished aggregate blob")
	}
}

// TestStateDecodeTruncated: every truncation of a valid blob must error, not
// panic or succeed.
func TestStateDecodeTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := stateAggregator(t, stateRecords(date(2022, time.April, 1))).EncodeState(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for n := 0; n < len(data); n += 1 + n/16 {
		if _, err := DecodeAggregatorState(data[:n], nil); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", n, len(data))
		}
	}
}
