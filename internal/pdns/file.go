package pdns

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"
)

// OpenFile opens a PDNS dataset file for reading, transparently decoding
// gzip (by ".gz" suffix) and selecting the format from the extension:
// ".tsv"/".tsv.gz" → TSV, ".jsonl"/".jsonl.gz" → JSONL.
func OpenFile(path string) (*Reader, io.Closer, error) {
	format, gzipped, err := sniffPath(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var r io.Reader = f
	closer := multiCloser{f}
	if gzipped {
		gz, err := gzip.NewReader(f)
		if err != nil {
			err = fmt.Errorf("pdns: %s: %w", path, err)
			if cerr := f.Close(); cerr != nil {
				err = errors.Join(err, cerr)
			}
			return nil, nil, err
		}
		r = gz
		closer = multiCloser{gz, f}
	}
	return NewReader(r, format), closer, nil
}

// CreateFile creates a PDNS dataset file for writing, with format and
// compression chosen from the path as in OpenFile. Close the returned
// closer to flush everything.
func CreateFile(path string) (*Writer, io.Closer, error) {
	format, gzipped, err := sniffPath(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	var w io.Writer = f
	closer := multiCloser{f}
	var gz *gzip.Writer
	if gzipped {
		gz = gzip.NewWriter(f)
		w = gz
		closer = multiCloser{gz, f}
	}
	pw := NewWriter(w, format)
	return pw, flushCloser{pw, closer}, nil
}

func sniffPath(path string) (format Format, gzipped bool, err error) {
	p := strings.ToLower(path)
	if strings.HasSuffix(p, ".gz") {
		gzipped = true
		p = strings.TrimSuffix(p, ".gz")
	}
	switch {
	case strings.HasSuffix(p, ".tsv"):
		return TSV, gzipped, nil
	case strings.HasSuffix(p, ".jsonl"):
		return JSONL, gzipped, nil
	default:
		return 0, false, fmt.Errorf("pdns: cannot infer format from %q (want .tsv[.gz] or .jsonl[.gz])", path)
	}
}

// multiCloser closes in slice order, which callers arrange innermost-first:
// the gzip stream must close before the file beneath it, because on the
// write side gzip's Close flushes the final block and footer into the file,
// and on the read side it is what detects a truncated stream. Every closer
// runs even if an earlier one fails, and every error is reported (joined),
// not just the first — a swallowed close error here is a silently truncated
// dataset.
type multiCloser []io.Closer

func (m multiCloser) Close() error {
	var errs []error
	for _, c := range m {
		if err := c.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

type flushCloser struct {
	w *Writer
	c io.Closer
}

// Close flushes the record writer's buffer, then closes the stream stack.
// The stack is closed even when the flush fails, and both errors surface.
func (f flushCloser) Close() error {
	err := f.w.Flush()
	if cerr := f.c.Close(); cerr != nil {
		err = errors.Join(err, cerr)
	}
	return err
}
