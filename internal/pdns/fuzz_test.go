package pdns

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"testing"
)

// FuzzTSVReader checks that arbitrary input never panics the TSV parser and
// that every successfully parsed record re-encodes and re-parses to itself.
func FuzzTSVReader(f *testing.F) {
	f.Add("f.on.aws\t1\t1.2.3.4\t1650000000\t1650000600\t12\t19083\n")
	f.Add("bad line\n")
	f.Add("\t\t\t\t\t\t\n")
	f.Add("a\t1\tb\tx\ty\tz\tw\n")
	// Quarantine-path seeds: a line the writer died on mid-record, and a
	// torn-gzip garbage prefix glued to a healthy line.
	f.Add("f.on.aws\t1\t1.2.")
	f.Add("\x1f\x8b\x00\xfff.on.aws\t1\t1.2.3.4\t1650000000\t1650000600\t12\t19083\n")
	f.Fuzz(func(t *testing.T, line string) {
		r := NewReader(bytes.NewBufferString(line), TSV)
		var rec Record
		for {
			err := r.Read(&rec)
			if err == io.EOF {
				return
			}
			if err != nil {
				return // malformed input is rejected, never panics
			}
			var buf bytes.Buffer
			w := NewWriter(&buf, TSV)
			if err := w.Write(&rec); err != nil {
				t.Fatalf("re-encode of parsed record failed: %v", err)
			}
			w.Flush()
			var rec2 Record
			if err := NewReader(&buf, TSV).Read(&rec2); err != nil {
				t.Fatalf("re-parse failed: %v (line %q)", err, buf.String())
			}
			if rec2.FQDN != rec.FQDN || rec2.RequestCnt != rec.RequestCnt || rec2.PDate != rec.PDate {
				t.Fatalf("round trip changed record: %+v vs %+v", rec, rec2)
			}
		}
	})
}

// FuzzQuarantineReader checks that a quarantining reader never panics and
// never hard-fails on arbitrary input: every outcome is a delivered record,
// a quarantined line, or a blown error budget — nothing else.
func FuzzQuarantineReader(f *testing.F) {
	f.Add("f.on.aws\t1\t1.2.3.4\t1650000000\t1650000600\t12\t19083\n")
	f.Add("f.on.aws\t1\t1.2.") // half-written line, writer died mid-record
	f.Add("\x1f\x8b\x00\xffgarbage\n")
	f.Add("junk\njunk\njunk\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := NewReader(bytes.NewBufferString(input), TSV).Quarantine(0.5)
		var rec Record
		var delivered int64
		for {
			err := r.Read(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrErrorBudget) {
					t.Fatalf("quarantining reader hard-failed: %v", err)
				}
				return
			}
			delivered++
		}
		if r.StreamErr() != nil {
			t.Fatalf("in-memory stream reported a stream error: %v", r.StreamErr())
		}
		_ = delivered
	})
}

// FuzzQuarantineTruncatedGzip compresses the input, cuts the stream at an
// arbitrary point, and checks a quarantining reader ends with a clean EOF and
// the truncation surfaced via StreamErr rather than a hard failure.
func FuzzQuarantineTruncatedGzip(f *testing.F) {
	f.Add("f.on.aws\t1\t1.2.3.4\t1650000000\t1650000600\t12\t19083\n", 10)
	f.Add("junk\n", 3)
	f.Fuzz(func(t *testing.T, line string, cut int) {
		var buf bytes.Buffer
		gz := gzip.NewWriter(&buf)
		for i := 0; i < 50; i++ {
			gz.Write([]byte(line))
		}
		gz.Close()
		if cut < 0 {
			cut = -cut
		}
		if n := buf.Len(); n > 0 {
			cut = cut % n
		}
		gzr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()[:cut]))
		if err != nil {
			return // header itself truncated; OpenFile rejects this upfront
		}
		r := NewReader(gzr, TSV).Quarantine(0.99)
		var rec Record
		for {
			err := r.Read(&rec)
			if err == io.EOF {
				return
			}
			if err != nil && !errors.Is(err, ErrErrorBudget) {
				t.Fatalf("truncated gzip hard-failed a quarantining reader: %v", err)
			}
			if err != nil {
				return
			}
		}
	})
}
