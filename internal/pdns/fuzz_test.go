package pdns

import (
	"bytes"
	"io"
	"testing"
)

// FuzzTSVReader checks that arbitrary input never panics the TSV parser and
// that every successfully parsed record re-encodes and re-parses to itself.
func FuzzTSVReader(f *testing.F) {
	f.Add("f.on.aws\t1\t1.2.3.4\t1650000000\t1650000600\t12\t19083\n")
	f.Add("bad line\n")
	f.Add("\t\t\t\t\t\t\n")
	f.Add("a\t1\tb\tx\ty\tz\tw\n")
	f.Fuzz(func(t *testing.T, line string) {
		r := NewReader(bytes.NewBufferString(line), TSV)
		var rec Record
		for {
			err := r.Read(&rec)
			if err == io.EOF {
				return
			}
			if err != nil {
				return // malformed input is rejected, never panics
			}
			var buf bytes.Buffer
			w := NewWriter(&buf, TSV)
			if err := w.Write(&rec); err != nil {
				t.Fatalf("re-encode of parsed record failed: %v", err)
			}
			w.Flush()
			var rec2 Record
			if err := NewReader(&buf, TSV).Read(&rec2); err != nil {
				t.Fatalf("re-parse failed: %v (line %q)", err, buf.String())
			}
			if rec2.FQDN != rec.FQDN || rec2.RequestCnt != rec.RequestCnt || rec2.PDate != rec.PDate {
				t.Fatalf("round trip changed record: %+v vs %+v", rec, rec2)
			}
		}
	})
}
