package pdns

import (
	"bytes"
	"compress/gzip"
	"errors"
	"io"
	"testing"
)

// FuzzTSVReader checks that arbitrary input never panics the TSV parser and
// that every successfully parsed record re-encodes and re-parses to itself.
func FuzzTSVReader(f *testing.F) {
	f.Add("f.on.aws\t1\t1.2.3.4\t1650000000\t1650000600\t12\t19083\n")
	f.Add("bad line\n")
	f.Add("\t\t\t\t\t\t\n")
	f.Add("a\t1\tb\tx\ty\tz\tw\n")
	// Quarantine-path seeds: a line the writer died on mid-record, and a
	// torn-gzip garbage prefix glued to a healthy line.
	f.Add("f.on.aws\t1\t1.2.")
	f.Add("\x1f\x8b\x00\xfff.on.aws\t1\t1.2.3.4\t1650000000\t1650000600\t12\t19083\n")
	f.Fuzz(func(t *testing.T, line string) {
		r := NewReader(bytes.NewBufferString(line), TSV)
		var rec Record
		for {
			err := r.Read(&rec)
			if err == io.EOF {
				return
			}
			if err != nil {
				return // malformed input is rejected, never panics
			}
			var buf bytes.Buffer
			w := NewWriter(&buf, TSV)
			if err := w.Write(&rec); err != nil {
				t.Fatalf("re-encode of parsed record failed: %v", err)
			}
			w.Flush()
			var rec2 Record
			if err := NewReader(&buf, TSV).Read(&rec2); err != nil {
				t.Fatalf("re-parse failed: %v (line %q)", err, buf.String())
			}
			if rec2.FQDN != rec.FQDN || rec2.RequestCnt != rec.RequestCnt || rec2.PDate != rec.PDate {
				t.Fatalf("round trip changed record: %+v vs %+v", rec, rec2)
			}
		}
	})
}

// FuzzBatchTSVRoundTrip runs the scalar and the batch TSV readers over the
// same arbitrary bytes in quarantine mode and requires them to agree on
// every observable: the records delivered, the skip count, and — for the
// delivered rows — the re-encoded bytes of batch and scalar writers.
func FuzzBatchTSVRoundTrip(f *testing.F) {
	f.Add("f.on.aws\t1\t1.2.3.4\t1650000000\t1650000600\t12\t19083\n")
	f.Add("f.on.aws\t1\t1.2.3.4\t1650000000\t1650000600\t12\t19083\njunk\nf.on.aws\t5\tx\t0\t0\t0\t0\n")
	f.Add("a\t1\tb\tx\ty\tz\tw\n")
	f.Add("f\t+1\tr\t-5\t-5\t0\t-1\n")
	f.Add("f\t99999999999999999999\tr\t0\t0\t0\t0\n") // overflow hits the slow path
	f.Add("f.on.aws\t1\t1.2.")
	f.Fuzz(func(t *testing.T, input string) {
		sr := NewReader(bytes.NewBufferString(input), TSV).Quarantine(0.99)
		var scalar []Record
		var rec Record
		var scalarErr error
		for {
			err := sr.Read(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				scalarErr = err
				break
			}
			scalar = append(scalar, rec)
		}

		br := NewReader(bytes.NewBufferString(input), TSV).Quarantine(0.99)
		batch := NewRecordBatch(4)
		var batched []Record
		var batchErr error
		for {
			batch.Reset()
			n, err := br.ReadBatch(batch, 4)
			for i := 0; i < n; i++ {
				var out Record
				batch.At(i, &out)
				batched = append(batched, out)
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				batchErr = err
				break
			}
		}

		if (scalarErr == nil) != (batchErr == nil) {
			t.Fatalf("error divergence: scalar %v, batch %v", scalarErr, batchErr)
		}
		if scalarErr != nil {
			if !errors.Is(scalarErr, ErrErrorBudget) || !errors.Is(batchErr, ErrErrorBudget) {
				t.Fatalf("hard failure in quarantine mode: scalar %v, batch %v", scalarErr, batchErr)
			}
			return // blown budgets abort mid-stream; delivered prefixes may differ
		}
		if len(scalar) != len(batched) {
			t.Fatalf("delivered %d batch records, scalar delivered %d", len(batched), len(scalar))
		}
		for i := range scalar {
			a, b := scalar[i], batched[i]
			if a.FQDN != b.FQDN || a.RType != b.RType || a.RData != b.RData ||
				a.RequestCnt != b.RequestCnt || a.PDate != b.PDate ||
				!a.FirstSeen.Equal(b.FirstSeen) || !a.LastSeen.Equal(b.LastSeen) {
				t.Fatalf("record %d diverged: scalar %+v, batch %+v", i, a, b)
			}
		}
		if sr.Skipped() != br.Skipped() {
			t.Fatalf("Skipped: scalar %d, batch %d", sr.Skipped(), br.Skipped())
		}

		// Re-encode both ways; the bytes must match exactly.
		var sbuf, bbuf bytes.Buffer
		sw := NewWriter(&sbuf, TSV)
		for i := range scalar {
			if err := sw.Write(&scalar[i]); err != nil {
				t.Fatal(err)
			}
		}
		sw.Flush()
		reBatch := NewRecordBatch(len(batched))
		for i := range batched {
			reBatch.AppendRecord(&batched[i])
		}
		bw := NewWriter(&bbuf, TSV)
		if err := bw.WriteBatch(reBatch); err != nil {
			t.Fatal(err)
		}
		bw.Flush()
		if !bytes.Equal(sbuf.Bytes(), bbuf.Bytes()) {
			t.Fatalf("re-encode diverged:\n%q\nvs\n%q", bbuf.String(), sbuf.String())
		}
	})
}

// FuzzQuarantineReader checks that a quarantining reader never panics and
// never hard-fails on arbitrary input: every outcome is a delivered record,
// a quarantined line, or a blown error budget — nothing else.
func FuzzQuarantineReader(f *testing.F) {
	f.Add("f.on.aws\t1\t1.2.3.4\t1650000000\t1650000600\t12\t19083\n")
	f.Add("f.on.aws\t1\t1.2.") // half-written line, writer died mid-record
	f.Add("\x1f\x8b\x00\xffgarbage\n")
	f.Add("junk\njunk\njunk\n")
	f.Fuzz(func(t *testing.T, input string) {
		r := NewReader(bytes.NewBufferString(input), TSV).Quarantine(0.5)
		var rec Record
		var delivered int64
		for {
			err := r.Read(&rec)
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrErrorBudget) {
					t.Fatalf("quarantining reader hard-failed: %v", err)
				}
				return
			}
			delivered++
		}
		if r.StreamErr() != nil {
			t.Fatalf("in-memory stream reported a stream error: %v", r.StreamErr())
		}
		_ = delivered
	})
}

// FuzzQuarantineTruncatedGzip compresses the input, cuts the stream at an
// arbitrary point, and checks a quarantining reader ends with a clean EOF and
// the truncation surfaced via StreamErr rather than a hard failure.
func FuzzQuarantineTruncatedGzip(f *testing.F) {
	f.Add("f.on.aws\t1\t1.2.3.4\t1650000000\t1650000600\t12\t19083\n", 10)
	f.Add("junk\n", 3)
	f.Fuzz(func(t *testing.T, line string, cut int) {
		var buf bytes.Buffer
		gz := gzip.NewWriter(&buf)
		for i := 0; i < 50; i++ {
			gz.Write([]byte(line))
		}
		gz.Close()
		if cut < 0 {
			cut = -cut
		}
		if n := buf.Len(); n > 0 {
			cut = cut % n
		}
		gzr, err := gzip.NewReader(bytes.NewReader(buf.Bytes()[:cut]))
		if err != nil {
			return // header itself truncated; OpenFile rejects this upfront
		}
		r := NewReader(gzr, TSV).Quarantine(0.99)
		var rec Record
		for {
			err := r.Read(&rec)
			if err == io.EOF {
				return
			}
			if err != nil && !errors.Is(err, ErrErrorBudget) {
				t.Fatalf("truncated gzip hard-failed a quarantining reader: %v", err)
			}
			if err != nil {
				return
			}
		}
	})
}
