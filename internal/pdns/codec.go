package pdns

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// Format selects the on-disk encoding of a PDNS dataset.
type Format int

const (
	// JSONL encodes one JSON object per line (self-describing, slower).
	JSONL Format = iota
	// TSV encodes tab-separated columns in schema order (compact, fast):
	// fqdn, rtype, rdata, first_seen(unix), last_seen(unix), request_cnt, pdate.
	TSV
)

// Writer streams records to an io.Writer in the chosen format.
type Writer struct {
	bw     *bufio.Writer
	format Format
	n      int64
	buf    []byte // reusable TSV line scratch (Write and WriteBatch)
}

// NewWriter wraps w. Call Flush when done.
func NewWriter(w io.Writer, format Format) *Writer {
	return &Writer{bw: bufio.NewWriterSize(w, 1<<16), format: format}
}

// Write appends one record.
func (w *Writer) Write(r *Record) error {
	w.n++
	switch w.format {
	case JSONL:
		b, err := json.Marshal(r)
		if err != nil {
			return fmt.Errorf("pdns: encode: %w", err)
		}
		if _, err := w.bw.Write(b); err != nil {
			return err
		}
		return w.bw.WriteByte('\n')
	case TSV:
		return w.writeTSV(r.FQDN, r.RType, r.RData,
			r.FirstSeen.Unix(), r.LastSeen.Unix(), r.RequestCnt, r.PDate)
	default:
		return fmt.Errorf("pdns: unknown format %d", w.format)
	}
}

// Count returns the number of records written so far.
func (w *Writer) Count() int64 { return w.n }

// Flush drains buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// Reader streams records from an io.Reader.
//
// By default a malformed line is a hard error, which suits trusted local
// files. Real feeds carry garbage, so Quarantine switches the reader to
// skip-and-count: bad lines are dropped, tallied (and obs-counted when
// Instrument was called), and ingestion continues — aborting only when the
// malformed fraction blows the error budget, because a feed that is mostly
// garbage signals an upstream schema break, not line noise.
type Reader struct {
	sc     *bufio.Scanner
	format Format
	line   int

	quarantine bool
	maxErrRate float64
	scanned    int64
	skipped    int64
	streamErr  error
	scratch    Record          // JSONL decode target for ReadBatch
	mSkipped   *obs.Counter    // pdns_reader_quarantined_total
	mQuarVec   *obs.CounterVec // pdns_quarantined_total{shard,reason}
	shard      string
}

// quarantineGrace is how many lines a quarantining reader ingests before it
// starts enforcing the error budget; a tiny prefix of bad lines should not
// abort a billion-line feed.
const quarantineGrace = 100

// ErrErrorBudget is returned (wrapped) when a quarantining reader's
// malformed fraction exceeds its budget.
var ErrErrorBudget = errors.New("pdns: malformed-line budget exceeded")

// NewReader wraps r.
func NewReader(r io.Reader, format Format) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	return &Reader{sc: sc, format: format}
}

// Quarantine switches the reader to skip-and-count mode with the given
// error budget: ingestion aborts with ErrErrorBudget only once more than
// maxErrRate of scanned lines were malformed (after a short grace period).
// A non-positive rate defaults to 5%. Returns the reader for chaining.
func (r *Reader) Quarantine(maxErrRate float64) *Reader {
	if maxErrRate <= 0 {
		maxErrRate = 0.05
	}
	r.quarantine = true
	r.maxErrRate = maxErrRate
	return r
}

// Instrument counts quarantined lines in reg as pdns_reader_quarantined_total.
func (r *Reader) Instrument(reg *obs.Registry) *Reader {
	r.mSkipped = reg.Counter("pdns_reader_quarantined_total")
	return r
}

// InstrumentShard is Instrument plus the dimensional quarantine stream:
// each skipped line also lands in pdns_quarantined_total{shard,reason},
// where reason classifies the decode failure (columns, json, field-rtype,
// field-pdate, ...). Shard is the caller's partition label.
func (r *Reader) InstrumentShard(reg *obs.Registry, shard string) *Reader {
	r.Instrument(reg)
	r.mQuarVec = reg.CounterVec("pdns_quarantined_total", "shard", "reason")
	r.shard = shard
	return r
}

// Skipped returns how many malformed lines were quarantined.
func (r *Reader) Skipped() int64 { return r.skipped }

// StreamErr returns the underlying stream error a quarantining reader
// tolerated at end of input (e.g. a truncated gzip member), nil if the
// stream ended cleanly.
func (r *Reader) StreamErr() error { return r.streamErr }

// Read returns the next record, or io.EOF at end of stream. In quarantine
// mode malformed lines are skipped (see Quarantine) and an underlying
// stream error — a truncated gzip transfer — ends the stream early with
// io.EOF instead of failing the ingest; StreamErr reports it.
func (r *Reader) Read(rec *Record) error {
	for {
		if !r.sc.Scan() {
			if err := r.sc.Err(); err != nil {
				if r.quarantine {
					r.streamErr = err
					return io.EOF
				}
				return err
			}
			return io.EOF
		}
		r.line++
		line := r.sc.Bytes()
		if len(line) == 0 {
			continue
		}
		r.scanned++
		var err error
		switch r.format {
		case JSONL:
			err = json.Unmarshal(line, rec)
		case TSV:
			err = parseTSV(string(line), rec)
		default:
			return fmt.Errorf("pdns: unknown format %d", r.format)
		}
		if err == nil {
			return nil
		}
		if !r.quarantine {
			return fmt.Errorf("pdns: line %d: %w", r.line, err)
		}
		r.skipped++
		r.mSkipped.Inc()
		if r.mQuarVec != nil {
			r.mQuarVec.With(r.shard, quarantineReason(r.format, err)).Inc()
		}
		if r.scanned > quarantineGrace &&
			float64(r.skipped) > r.maxErrRate*float64(r.scanned) {
			return fmt.Errorf("pdns: line %d: %d/%d lines malformed (budget %.1f%%): %w",
				r.line, r.skipped, r.scanned, r.maxErrRate*100, ErrErrorBudget)
		}
	}
}

var errColumns = errors.New("wrong column count")

// quarantineReason classifies a decode failure into a bounded label set:
// "columns" (TSV arity), "json" (JSONL decode), or "field-<name>" for a TSV
// field that failed to parse (parseTSV wraps errors with the field name).
func quarantineReason(format Format, err error) string {
	if errors.Is(err, errColumns) {
		return "columns"
	}
	if format == JSONL {
		return "json"
	}
	msg := err.Error()
	if i := strings.IndexByte(msg, ':'); i > 0 {
		return "field-" + msg[:i]
	}
	return "decode"
}

func parseTSV(line string, rec *Record) error {
	// Manual split avoids the allocation of strings.Split for the hot path.
	var cols [7]string
	n := 0
	for n < 6 {
		i := strings.IndexByte(line, '\t')
		if i < 0 {
			return errColumns
		}
		cols[n], line = line[:i], line[i+1:]
		n++
	}
	cols[6] = line
	rec.FQDN = cols[0]
	rt, err := strconv.Atoi(cols[1])
	if err != nil {
		return fmt.Errorf("rtype: %w", err)
	}
	rec.RType = RType(rt)
	rec.RData = cols[2]
	fs, err := strconv.ParseInt(cols[3], 10, 64)
	if err != nil {
		return fmt.Errorf("first_seen: %w", err)
	}
	ls, err := strconv.ParseInt(cols[4], 10, 64)
	if err != nil {
		return fmt.Errorf("last_seen: %w", err)
	}
	rec.FirstSeen = time.Unix(fs, 0).UTC()
	rec.LastSeen = time.Unix(ls, 0).UTC()
	rec.RequestCnt, err = strconv.ParseInt(cols[5], 10, 64)
	if err != nil {
		return fmt.Errorf("request_cnt: %w", err)
	}
	pd, err := strconv.Atoi(cols[6])
	if err != nil {
		return fmt.Errorf("pdate: %w", err)
	}
	rec.PDate = Date(pd)
	return nil
}

// CopyAll streams every record from r into fn, stopping on the first error.
// It returns the number of records processed.
func CopyAll(r *Reader, fn func(*Record) error) (int64, error) {
	var rec Record
	var n int64
	for {
		err := r.Read(&rec)
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
		if err := fn(&rec); err != nil {
			return n, err
		}
	}
}
