package pdns

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func syntheticRTypeStats(n int, seed int64) *RTypeStats {
	rng := rand.New(rand.NewSource(seed))
	rs := &RTypeStats{ByRData: make(map[string]int64, n)}
	for i := 0; i < n; i++ {
		// Zipf-ish counts so the top ten actually dominate, as A-record
		// rdata distributions do in the aggregate.
		c := int64(rng.ExpFloat64()*100) + 1
		rs.ByRData[fmt.Sprintf("203.0.%d.%d", i/256, i%256)] = c
		rs.Requests += c
	}
	return rs
}

// TestTop10ShareMatchesSortReference pins the heap-based selection to the
// obvious full-sort implementation across sizes around the 10-entry
// boundary.
func TestTop10ShareMatchesSortReference(t *testing.T) {
	for _, n := range []int{1, 9, 10, 11, 37, 500, 4096} {
		rs := syntheticRTypeStats(n, int64(n))
		counts := make([]int64, 0, len(rs.ByRData))
		for _, c := range rs.ByRData {
			counts = append(counts, c)
		}
		sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
		var top int64
		for i := 0; i < len(counts) && i < 10; i++ {
			top += counts[i]
		}
		want := float64(top) / float64(rs.Requests)
		if got := rs.Top10Share(); got != want {
			t.Errorf("n=%d: Top10Share = %v, want %v", n, got, want)
		}
	}
}

// BenchmarkTop10Share measures the top-10 selection on a large rdata map.
// ReportAllocs is the point: the selection runs once per (FQDN, rtype) pair
// in Table 2 rendering, and the heap variant must not allocate at all where
// the old implementation built and sorted a fresh slice per call.
func BenchmarkTop10Share(b *testing.B) {
	for _, n := range []int{100, 10_000} {
		rs := syntheticRTypeStats(n, 1)
		b.Run(fmt.Sprintf("rdata=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if rs.Top10Share() <= 0 {
					b.Fatal("unexpected zero share")
				}
			}
		})
	}
}
