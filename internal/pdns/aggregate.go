package pdns

import (
	"sort"

	"repro/internal/obs"
	"repro/internal/providers"
)

// FQDNStats carries the per-function metrics defined in paper §3.2: the
// first and last observed dates across the whole window, the number of
// distinct days with invocations, and the cumulative request count.
type FQDNStats struct {
	FQDN     string
	Provider providers.ID
	Region   string

	FirstSeenAll Date
	LastSeenAll  Date
	DaysCount    int
	TotalRequest int64

	seenDays bitset
}

// Lifespan returns the active duration in days, inclusive of both endpoints,
// i.e. last_seen_all - first_seen_all + 1. A function observed on a single
// day has lifespan 1.
func (s *FQDNStats) Lifespan() int { return s.LastSeenAll.Sub(s.FirstSeenAll) + 1 }

// ActivityDensity is the proportion of days with recorded invocations within
// the lifespan: p = days_count / (last_seen_all - first_seen_all + 1).
// Steady daily invocation yields p = 1 (paper §4.3).
func (s *FQDNStats) ActivityDensity() float64 {
	return float64(s.DaysCount) / float64(s.Lifespan())
}

// RTypeStats accumulates, for one provider and record type, the request
// volume and the per-rdata request distribution (Table 2).
type RTypeStats struct {
	Requests int64
	ByRData  map[string]int64
}

// RDataCnt is the number of distinct rdata values observed for the type.
func (rs *RTypeStats) RDataCnt() int { return len(rs.ByRData) }

// Top10Share is the fraction of the type's requests contributed by its ten
// most frequent rdata values (Table 2, "Top10"). Rather than sorting the
// full rdata distribution — AWS alone carries thousands of ingress
// addresses — it keeps a fixed 10-slot min-heap while streaming the map, so
// the cost is O(n log 10) with zero allocations.
func (rs *RTypeStats) Top10Share() float64 {
	if rs.Requests == 0 {
		return 0
	}
	if len(rs.ByRData) <= 10 {
		return 1
	}
	// top holds the 10 largest counts seen so far as a min-heap rooted at
	// index 0, so the smallest kept value is evicted in O(log 10).
	var top [10]int64
	k := 0
	for _, c := range rs.ByRData {
		switch {
		case k < len(top):
			// Fill phase: append and sift up.
			i := k
			top[i] = c
			k++
			for i > 0 {
				parent := (i - 1) / 2
				if top[parent] <= top[i] {
					break
				}
				top[parent], top[i] = top[i], top[parent]
				i = parent
			}
		case c > top[0]:
			// Replace the minimum and sift down.
			top[0] = c
			i := 0
			for {
				l, r := 2*i+1, 2*i+2
				small := i
				if l < len(top) && top[l] < top[small] {
					small = l
				}
				if r < len(top) && top[r] < top[small] {
					small = r
				}
				if small == i {
					break
				}
				top[i], top[small] = top[small], top[i]
				i = small
			}
		}
	}
	var sum int64
	for _, c := range top {
		sum += c
	}
	return float64(sum) / float64(rs.Requests)
}

// ProviderStats is the per-provider rollup backing Table 2.
type ProviderStats struct {
	Provider providers.ID
	Domains  int
	Requests int64
	Regions  map[string]struct{}
	ByRType  map[RType]*RTypeStats
}

// RTypeShare returns the fraction of the provider's requests answered with
// the given record type.
func (ps *ProviderStats) RTypeShare(t RType) float64 {
	if ps.Requests == 0 {
		return 0
	}
	rs, ok := ps.ByRType[t]
	if !ok {
		return 0
	}
	return float64(rs.Requests) / float64(ps.Requests)
}

// Aggregator performs the single-pass aggregation of paper §3.2: PDNS
// records whose FQDN matches a provider pattern are folded into per-FQDN and
// per-provider statistics plus the daily/monthly series used by the trend
// figures. Records are accepted in any order.
type Aggregator struct {
	matcher *providers.Matcher
	window  struct{ start, end Date }

	byFQDN     map[string]*FQDNStats
	byProvider map[providers.ID]*ProviderStats

	newPerDay  map[Date]int                    // Figure 3: first-seen diffs
	monthlyReq map[providers.ID]map[Date]int64 // Figure 4: invocation trend
	matched    int64                           // records kept
	scanned    int64                           // records examined
	dropped    int64                           // records failing Validate

	// Telemetry; populated by Instrument, no-ops otherwise. Together with
	// the identify stage span this yields the feed's records/sec throughput.
	mScanned *obs.Counter // pdns_records_scanned_total
	mMatched *obs.Counter // pdns_records_matched_total
	mDropped *obs.Counter // pdns_records_dropped_total

	// Per-shard ingest dispositions, interned from
	// pdns_ingest_total{shard,disposition} by InstrumentShard so the
	// per-record cost stays one atomic increment. All nil (no-op) unless
	// InstrumentShard was called.
	iMatched   *obs.Counter
	iInvalid   *obs.Counter
	iWindow    *obs.Counter
	iUnmatched *obs.Counter

	// Columnar fast path state (aggregate_batch.go): the adopted intern
	// table, per-symbol stats/identification caches, slab arenas for
	// FQDNStats and bitset words, and the dense month/provider caches that
	// both Add and AddBatch share.
	symtab     *Symtab
	bySym      []*FQDNStats
	identBySym []symIdent
	provDense  []*provEntry
	statsArena []FQDNStats
	daysArena  []uint64
	monthCache []Date
}

// Instrument points the aggregator's telemetry at reg. Call before the first
// Add; a nil registry leaves the aggregator un-instrumented.
func (a *Aggregator) Instrument(reg *obs.Registry) {
	a.mScanned = reg.Counter("pdns_records_scanned_total")
	a.mMatched = reg.Counter("pdns_records_matched_total")
	a.mDropped = reg.Counter("pdns_records_dropped_total")
}

// InstrumentShard is Instrument plus the dimensional ingest stream: every
// record lands in pdns_ingest_total{shard,disposition} with disposition
// matched, invalid, out-of-window, or unmatched. Shard is the caller's
// partition label (the parallel aggregation path uses the worker index).
func (a *Aggregator) InstrumentShard(reg *obs.Registry, shard string) {
	a.Instrument(reg)
	vec := reg.CounterVec("pdns_ingest_total", "shard", "disposition")
	a.iMatched = vec.With(shard, "matched")
	a.iInvalid = vec.With(shard, "invalid")
	a.iWindow = vec.With(shard, "out-of-window")
	a.iUnmatched = vec.With(shard, "unmatched")
}

// NewAggregator builds an aggregator over the [start, end] day window. The
// matcher decides which FQDNs belong to the study; nil selects all collected
// providers.
func NewAggregator(matcher *providers.Matcher, start, end Date) *Aggregator {
	if matcher == nil {
		matcher = providers.NewMatcher(nil)
	}
	a := &Aggregator{
		matcher:    matcher,
		byFQDN:     make(map[string]*FQDNStats),
		byProvider: make(map[providers.ID]*ProviderStats),
		newPerDay:  make(map[Date]int),
		monthlyReq: make(map[providers.ID]map[Date]int64),
	}
	a.window.start, a.window.end = start, end
	return a
}

// Presize hints the expected number of distinct matched FQDNs so the main
// map starts at its final size instead of rehashing its way there. Only
// effective before the first record; the parallel aggregation path calls it
// with each shard's expected function count.
func (a *Aggregator) Presize(fqdns int) {
	if fqdns > 0 && len(a.byFQDN) == 0 {
		a.byFQDN = make(map[string]*FQDNStats, fqdns)
	}
}

// Add folds one record into the aggregate. Records outside the window or not
// matching any provider are counted but otherwise ignored. Invalid records
// are dropped, mirroring a production feed consumer.
func (a *Aggregator) Add(r *Record) {
	a.scanned++
	a.mScanned.Inc()
	if err := r.Validate(); err != nil {
		a.dropped++
		a.mDropped.Inc()
		a.iInvalid.Inc()
		return
	}
	if r.PDate < a.window.start || r.PDate > a.window.end {
		a.iWindow.Inc()
		return
	}
	info, ok := a.matcher.Identify(r.FQDN)
	if !ok {
		a.iUnmatched.Inc()
		return
	}
	a.matched++
	a.mMatched.Inc()
	a.iMatched.Inc()

	fs := a.byFQDN[r.FQDN]
	if fs == nil {
		fs = a.newFQDNStats(r.FQDN, info.Region(r.FQDN), info.ID, r.PDate)
	}
	a.fold(fs, info.ID, r.RType, r.RData, r.RequestCnt, r.PDate)
}

// fold applies one matched record's contribution to the per-FQDN, per-
// provider, and trend series — shared verbatim by Add and the AddBatch row
// loop so the two paths cannot drift.
func (a *Aggregator) fold(fs *FQDNStats, id providers.ID, t RType, rdata string, cnt int64, pd Date) {
	if pd < fs.FirstSeenAll {
		fs.FirstSeenAll = pd
	}
	if pd > fs.LastSeenAll {
		fs.LastSeenAll = pd
	}
	if day := pd.Sub(a.window.start); fs.seenDays.setIfUnset(day) {
		fs.DaysCount++
	}
	fs.TotalRequest += cnt

	pe := a.prov(id)
	if fs.Region != "" {
		pe.ps.Regions[fs.Region] = struct{}{}
	}
	pe.ps.Requests += cnt
	rs := pe.rtype(t)
	rs.Requests += cnt
	rs.ByRData[rdata] += cnt
	pe.monthly[a.monthOf(pd)] += cnt
}

// newFQDNStats arena-allocates and registers the stats of a first-seen
// FQDN, bumping the Figure 3 first-seen series.
func (a *Aggregator) newFQDNStats(fqdn, region string, id providers.ID, pd Date) *FQDNStats {
	fs := a.allocStats()
	*fs = FQDNStats{
		FQDN:         fqdn,
		Provider:     id,
		Region:       region,
		FirstSeenAll: pd,
		LastSeenAll:  pd,
		seenDays:     a.allocBitset(),
	}
	a.byFQDN[fqdn] = fs
	a.newPerDay[pd]++
	return fs
}

// Finish fixes per-provider domain counts and returns the aggregate.
func (a *Aggregator) Finish() *Aggregate {
	for _, ps := range a.byProvider {
		ps.Domains = 0
	}
	for _, fs := range a.byFQDN {
		a.byProvider[fs.Provider].Domains++
		fs.seenDays = bitset{} // release the bitsets; DaysCount is final
	}
	return &Aggregate{
		Window:     Window{Start: a.window.start, End: a.window.end},
		ByFQDN:     a.byFQDN,
		ByProvider: a.byProvider,
		NewPerDay:  a.newPerDay,
		MonthlyReq: a.monthlyReq,
		Scanned:    a.scanned,
		Matched:    a.matched,
		Dropped:    a.dropped,
	}
}

// Window is an inclusive day range.
type Window struct{ Start, End Date }

// Days returns the window length in days.
func (w Window) Days() int { return w.End.Sub(w.Start) + 1 }

// Aggregate is the finished output of an Aggregator pass.
type Aggregate struct {
	Window     Window
	ByFQDN     map[string]*FQDNStats
	ByProvider map[providers.ID]*ProviderStats
	NewPerDay  map[Date]int
	MonthlyReq map[providers.ID]map[Date]int64
	Scanned    int64
	Matched    int64
	Dropped    int64
}

// TotalDomains returns the number of distinct function FQDNs observed.
func (ag *Aggregate) TotalDomains() int { return len(ag.ByFQDN) }

// TotalRequests returns the cumulative request count across all functions.
func (ag *Aggregate) TotalRequests() int64 {
	var n int64
	for _, ps := range ag.ByProvider {
		n += ps.Requests
	}
	return n
}

// PerFunctionStats returns the stats of FQDNs that uniquely identify one
// cloud function, sorted by FQDN for determinism. Google, IBM and Oracle are
// excluded, as in paper §4.3.
func (ag *Aggregate) PerFunctionStats() []*FQDNStats {
	var out []*FQDNStats
	for _, fs := range ag.ByFQDN {
		if providers.Get(fs.Provider).UniqueFunctionDomain {
			out = append(out, fs)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FQDN < out[j].FQDN })
	return out
}

// bitset is a fixed-size set of small non-negative integers, used to count
// distinct active days per FQDN without a per-day map allocation.
type bitset struct {
	words []uint64
	n     int
}

func newBitset(n int) bitset { return bitset{words: make([]uint64, (n+63)/64), n: n} }

// setIfUnset sets bit i and reports whether it was previously clear.
// Out-of-range indices report false.
func (b bitset) setIfUnset(i int) bool {
	if i < 0 || i >= b.n {
		return false
	}
	w := i >> 6
	mask := uint64(1) << (uint(i) & 63)
	if b.words[w]&mask != 0 {
		return false
	}
	b.words[w] |= mask
	return true
}
