package pdns

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/providers"
)

// Merge folds other into ag, combining per-FQDN and per-provider statistics
// as if both aggregates had been produced by a single pass. The windows
// must match. Merging enables sharded aggregation: split the feed, run one
// Aggregator per shard, merge the results (see ParallelAggregate).
//
// DaysCount merges conservatively: when the same FQDN appears in both
// shards, duplicate active days cannot be detected post-hoc, so callers
// that need exact day counts must shard by FQDN (ShardByFQDN does this).
func (ag *Aggregate) Merge(other *Aggregate) error {
	if ag.Window != other.Window {
		return fmt.Errorf("pdns: merging aggregates with different windows %v and %v", ag.Window, other.Window)
	}
	for fqdn, fs := range other.ByFQDN {
		cur, ok := ag.ByFQDN[fqdn]
		if !ok {
			ag.ByFQDN[fqdn] = fs
			continue
		}
		if fs.FirstSeenAll < cur.FirstSeenAll {
			cur.FirstSeenAll = fs.FirstSeenAll
		}
		if fs.LastSeenAll > cur.LastSeenAll {
			cur.LastSeenAll = fs.LastSeenAll
		}
		cur.TotalRequest += fs.TotalRequest
		cur.DaysCount += fs.DaysCount
	}
	for id, ps := range other.ByProvider {
		cur, ok := ag.ByProvider[id]
		if !ok {
			ag.ByProvider[id] = ps
			continue
		}
		cur.Requests += ps.Requests
		for r := range ps.Regions {
			cur.Regions[r] = struct{}{}
		}
		for t, rs := range ps.ByRType {
			crs, ok := cur.ByRType[t]
			if !ok {
				cur.ByRType[t] = rs
				continue
			}
			crs.Requests += rs.Requests
			for rd, c := range rs.ByRData {
				crs.ByRData[rd] += c
			}
		}
	}
	for d, n := range other.NewPerDay {
		ag.NewPerDay[d] += n
	}
	for id, m := range other.MonthlyReq {
		cur, ok := ag.MonthlyReq[id]
		if !ok {
			ag.MonthlyReq[id] = m
			continue
		}
		for month, v := range m {
			cur[month] += v
		}
	}
	ag.Scanned += other.Scanned
	ag.Matched += other.Matched
	ag.Dropped += other.Dropped
	// Recompute per-provider domain counts from the merged FQDN map.
	for _, ps := range ag.ByProvider {
		ps.Domains = 0
	}
	for _, fs := range ag.ByFQDN {
		if ps, ok := ag.ByProvider[fs.Provider]; ok {
			ps.Domains++
		}
	}
	return nil
}

// ShardByFQDN returns a stable shard index for an FQDN, so that all records
// of one function land in the same shard and day counts stay exact. It is
// derived from HashFQDN, the same hash the emitter seeds per-function RNG
// streams from, so sharding and stream seeding can never disagree about a
// function's identity.
func ShardByFQDN(fqdn string, shards int) int {
	if shards <= 1 {
		return 0
	}
	return int(HashFQDN(fqdn) % uint64(shards))
}

// ParallelAggregate consumes records from next (which returns nil at end of
// stream) using one Aggregator per worker, sharded by FQDN, and merges the
// results. next is called from a single goroutine; records are fanned out
// by shard so per-FQDN metrics are exact. workers <= 0 selects GOMAXPROCS.
func ParallelAggregate(matcher *providers.Matcher, start, end Date, workers int, next func() (*Record, bool)) (*Aggregate, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		a := NewAggregator(matcher, start, end)
		for {
			r, ok := next()
			if !ok {
				break
			}
			a.Add(r)
		}
		return a.Finish(), nil
	}

	chans := make([]chan Record, workers)
	aggs := make([]*Aggregator, workers)
	var wg sync.WaitGroup
	for i := range chans {
		chans[i] = make(chan Record, 1024)
		aggs[i] = NewAggregator(matcher, start, end)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := range chans[i] {
				aggs[i].Add(&r)
			}
		}(i)
	}
	for {
		r, ok := next()
		if !ok {
			break
		}
		chans[ShardByFQDN(r.FQDN, workers)] <- *r
	}
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()

	// Merge the smaller shards into the largest one: FQDN-disjoint shards
	// make Merge commutative (it recomputes Domains at the end), and the
	// biggest map then never rehashes to absorb the rest.
	finished := make([]*Aggregate, len(aggs))
	for i, a := range aggs {
		finished[i] = a.Finish()
	}
	base := 0
	for i, ag := range finished {
		if ag.TotalDomains() > finished[base].TotalDomains() {
			base = i
		}
	}
	out := finished[base]
	for i, ag := range finished {
		if i == base {
			continue
		}
		if err := out.Merge(ag); err != nil {
			return nil, err
		}
	}
	return out, nil
}
