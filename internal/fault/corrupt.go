package fault

import (
	"bytes"
	"io"
	"time"

	"repro/internal/pdns"
)

// CorruptRecord deterministically mangles a fraction of PDNS records so they
// fail pdns.Record.Validate, modelling the malformed rows a real
// 600 B-queries/day feed carries. The decision and the mangle mode derive
// only from identity fields (seed, fqdn, pdate, rtype, rdata) — never from
// RequestCnt — so a record is corrupted consistently whether or not the
// resolver-cache model rescaled its counts, and the cache-model ablation
// still compares identical domain sets.
//
// Reports whether the record was mangled.
func (in *Injector) CorruptRecord(rec *pdns.Record) bool {
	if in == nil || in.prof.FeedCorrupt <= 0 {
		return false
	}
	h := pdns.HashFQDN(rec.FQDN)
	h = mix64(h ^ uint64(rec.PDate)*0x9e3779b97f4a7c15)
	h = mix64(h ^ uint64(rec.RType)<<32 ^ hashString(rec.RData))
	s := newStream(uint64(in.prof.Seed), h, streamRecord)
	if !s.hit(in.prof.FeedCorrupt) {
		return false
	}
	in.mCorrupt.Inc()
	switch s.next() % 3 {
	case 0:
		rec.FQDN = "" // Validate: empty fqdn
	case 1:
		rec.RequestCnt = -rec.RequestCnt - 1 // Validate: negative request_cnt
	default:
		rec.LastSeen = rec.FirstSeen.Add(-time.Hour) // Validate: last before first
	}
	return true
}

// hashString is FNV-1a over the raw bytes (no canonicalisation — rdata is
// case-sensitive payload, unlike FQDNs).
func hashString(s string) uint64 {
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// CorruptingWriter sits between a pdns.Writer and the output file and
// mangles a deterministic fraction of the encoded lines: truncating them
// mid-column, deleting a tab so the column count is wrong, or prefixing
// binary garbage. It lets pdnsgen emit datasets that exercise the reader's
// quarantine path. The decision per line is a pure function of
// (seed, line bytes), so the same dataset corrupts identically on every run.
type CorruptingWriter struct {
	w    io.Writer
	in   *Injector
	buf  bytes.Buffer
	n    int64 // lines seen
	hits int64 // lines corrupted
}

// NewCorruptingWriter wraps w with the injector's FeedCorrupt rate. With a
// nil injector or zero rate it degrades to a plain line-buffered pass-through.
func NewCorruptingWriter(w io.Writer, in *Injector) *CorruptingWriter {
	return &CorruptingWriter{w: w, in: in}
}

// Write buffers until newline boundaries and corrupts whole lines; partial
// trailing lines wait in the buffer for the next Write or Flush.
func (cw *CorruptingWriter) Write(p []byte) (int, error) {
	cw.buf.Write(p)
	for {
		b := cw.buf.Bytes()
		i := bytes.IndexByte(b, '\n')
		if i < 0 {
			return len(p), nil
		}
		line := make([]byte, i+1)
		copy(line, b[:i+1])
		cw.buf.Next(i + 1)
		if err := cw.emit(line); err != nil {
			return len(p), err
		}
	}
}

// Flush drains any partial trailing line.
func (cw *CorruptingWriter) Flush() error {
	if cw.buf.Len() == 0 {
		return nil
	}
	line := append([]byte(nil), cw.buf.Bytes()...)
	cw.buf.Reset()
	return cw.emit(line)
}

// Corrupted returns how many lines were mangled.
func (cw *CorruptingWriter) Corrupted() int64 { return cw.hits }

func (cw *CorruptingWriter) emit(line []byte) error {
	cw.n++
	rate := 0.0
	if cw.in != nil {
		rate = cw.in.prof.FeedCorrupt
	}
	trimmed := bytes.TrimRight(line, "\n")
	if rate <= 0 || len(trimmed) == 0 {
		_, err := cw.w.Write(line)
		return err
	}
	s := newStream(uint64(cw.in.prof.Seed), hashString(string(trimmed)), streamLine)
	if !s.hit(rate) {
		_, err := cw.w.Write(line)
		return err
	}
	cw.hits++
	cw.in.mCorrupt.Inc()
	switch s.next() % 3 {
	case 0:
		// Half-written line: the writer died mid-record.
		cut := 1 + int(s.next()%uint64(len(trimmed)))
		line = append(trimmed[:cut:cut], '\n')
	case 1:
		// Drop the first tab: wrong column count for TSV, broken JSON
		// spacing is harmless so also flip a brace if present.
		if j := bytes.IndexByte(trimmed, '\t'); j >= 0 {
			line = append(append(trimmed[:j:j], trimmed[j+1:]...), '\n')
		} else if j := bytes.IndexByte(trimmed, '{'); j >= 0 {
			mut := append([]byte(nil), trimmed...)
			mut[j] = '['
			line = append(mut, '\n')
		}
	default:
		// Binary garbage prefix, as a torn gzip block would leave.
		line = append([]byte{0x1f, 0x8b, 0x00, 0xff}, line...)
	}
	_, err := cw.w.Write(line)
	return err
}
