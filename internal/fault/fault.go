// Package fault is the pipeline's deterministic chaos layer. The paper's
// measurement ran for two years against adversarial inputs: a 600 B-queries/
// day PDNS feed containing malformed records and nine clouds whose endpoints
// time out, reset, flap, and return garbage (§3.3 classifies whole failure
// families: dns, timeout, conn). The synthetic substrates of this
// reproduction only ever emit the happy path, so this package injects the
// unhappy one — on demand, and reproducibly.
//
// Every fault decision is a pure function of (profile seed, FQDN): the
// per-FQDN fault plan derives from pdns.HashFQDN(fqdn) xor the seed through
// a splitmix64 stream, matching the RNG discipline of the parallel substrate
// (workload.functionRNG). Two runs with the same chaos seed therefore inject
// the identical fault schedule at any worker count or probe concurrency, so
// resilience regressions are bisectable and degradation counts are
// comparable across runs.
//
// Fault classes:
//   - DNS lookup failure (resolution errors before any contact)
//   - connection reset (endpoint dead for the whole campaign)
//   - endpoint flap (first 1–2 dials reset, then the endpoint recovers —
//     only retries or the HTTP fallback reach it)
//   - response truncation (the connection dies after a byte budget, killing
//     TLS handshakes and truncating plain-HTTP bodies)
//   - latency spike (the dial stalls past any probe timeout)
//   - PDNS feed corruption (records/lines mangled so they fail validation —
//     see corrupt.go)
package fault

import (
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/pdns"
)

// Profile parameterises one chaos campaign: the per-FQDN probability of each
// fault class plus the seed the schedule derives from. The zero Profile
// means "unset" (callers fall back to the SCF_CHAOS environment variable);
// the named "none" profile disables injection explicitly.
type Profile struct {
	Name string
	// Seed keys every fault schedule; 0 lets the caller substitute the
	// run's substrate seed (see WithSeed).
	Seed int64

	DNSFail     float64 // resolution fails for the FQDN
	Reset       float64 // every dial to the FQDN is reset
	Flap        float64 // first 1-2 dials reset, then the endpoint recovers
	Truncate    float64 // connections die after a 256-639 byte budget
	Latency     float64 // dials stall past the probe timeout
	FeedCorrupt float64 // PDNS records/lines are mangled (fail validation)

	// Crash schedule (see crash.go). CrashStage aborts the process at that
	// stage's entry boundary; with CrashRows > 0 the abort instead fires once
	// CrashRows rows have been emitted inside the stage. CrashAuto > 0 picks
	// the kill point pseudo-randomly from the seed instead (the k-th drawing
	// of the seeded crashpoint stream). Crash fields are deliberately absent
	// from both Enabled and String: a crash does not alter any fault
	// schedule, and the crashing and resuming invocations of a run must
	// share a run ID, which hashes Profile.String().
	CrashStage string
	CrashRows  int64
	CrashAuto  int
}

// None returns the explicit no-chaos profile.
func None() Profile { return Profile{Name: "none"} }

// Light returns a low-rate profile: around one fault per hundred endpoints,
// enough to exercise every resilience path without moving headline numbers.
func Light() Profile {
	return Profile{
		Name:    "light",
		DNSFail: 0.002, Reset: 0.004, Flap: 0.01,
		Truncate: 0.006, Latency: 0.001, FeedCorrupt: 0.002,
	}
}

// Heavy returns a high-rate profile modelled on a bad week in the paper's
// campaign: several percent of endpoints faulty and two percent of the feed
// corrupted. The pipeline must complete and record the degradation.
func Heavy() Profile {
	return Profile{
		Name:    "heavy",
		DNSFail: 0.01, Reset: 0.02, Flap: 0.05,
		Truncate: 0.03, Latency: 0.005, FeedCorrupt: 0.02,
	}
}

// IsZero reports whether the profile is unset (distinct from None, which is
// an explicit opt-out).
func (p Profile) IsZero() bool { return p == Profile{} }

// Enabled reports whether any fault class has a non-zero rate.
func (p Profile) Enabled() bool {
	return p.DNSFail > 0 || p.Reset > 0 || p.Flap > 0 ||
		p.Truncate > 0 || p.Latency > 0 || p.FeedCorrupt > 0
}

// WithSeed fills in the seed if the profile doesn't pin one, so `-chaos
// heavy` inherits the run's substrate seed while `-chaos heavy,seed=7`
// stays pinned.
func (p Profile) WithSeed(seed int64) Profile {
	if p.Seed == 0 {
		p.Seed = seed
	}
	return p
}

// String renders the profile as a spec ParseProfile accepts. A disabled
// profile is just its name: a seed only means something when faults draw
// from it.
func (p Profile) String() string {
	name := p.Name
	if name == "" {
		name = "none"
	}
	if p.Seed != 0 && p.Enabled() {
		return fmt.Sprintf("%s,seed=%d", name, p.Seed)
	}
	return name
}

// ParseProfile parses a chaos spec: "none", "light", or "heavy", optionally
// followed by ",seed=N" to pin the schedule seed and/or ",crash=<spec>" to
// schedule a deterministic process abort. Crash specs: "crash=<stage>" kills
// at the stage's entry boundary, "crash=<stage>:<rows>" kills after that
// many rows inside the stage, "crash=auto:<k>" derives the kill point from
// the seed (the k-th draw of the crashpoint stream).
func ParseProfile(spec string) (Profile, error) {
	parts := strings.Split(spec, ",")
	var p Profile
	opts := parts[1:]
	switch first := strings.TrimSpace(parts[0]); first {
	case "", "none":
		p = None()
	case "light":
		p = Light()
	case "heavy":
		p = Heavy()
	default:
		// A leading k=v option ("crash=probe") implies the none profile, so
		// crash injection does not force fault injection along with it.
		if strings.Contains(first, "=") {
			p = None()
			opts = parts
			break
		}
		return Profile{}, fmt.Errorf("fault: unknown chaos profile %q (want none, light, or heavy)", parts[0])
	}
	for _, opt := range opts {
		k, v, ok := strings.Cut(strings.TrimSpace(opt), "=")
		if !ok {
			return Profile{}, fmt.Errorf("fault: bad chaos option %q (want seed=N or crash=<spec>)", opt)
		}
		switch k {
		case "seed":
			seed, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return Profile{}, fmt.Errorf("fault: bad chaos seed %q: %w", v, err)
			}
			p.Seed = seed
		case "crash":
			if err := parseCrashSpec(&p, v); err != nil {
				return Profile{}, err
			}
		default:
			return Profile{}, fmt.Errorf("fault: bad chaos option %q (want seed=N or crash=<spec>)", opt)
		}
	}
	return p, nil
}

// EnvVar is the environment variable the chaos gate reads; `make chaos`
// exports it so the whole tier-1 suite runs under heavy injection.
const EnvVar = "SCF_CHAOS"

// envLookup is swapped in tests.
var envLookup = os.LookupEnv

// FromEnv resolves the chaos profile from SCF_CHAOS; an unset or empty
// variable selects None.
func FromEnv() (Profile, error) {
	spec, ok := envLookup(EnvVar)
	if !ok || strings.TrimSpace(spec) == "" {
		return None(), nil
	}
	p, err := ParseProfile(spec)
	if err != nil {
		return Profile{}, fmt.Errorf("%s: %w", EnvVar, err)
	}
	return p, nil
}

// Plan is one FQDN's deterministic fault schedule under a profile: which
// fault classes hit it, and with what parameters. Computing a Plan has no
// side effects, so schedules can be audited without running anything.
type Plan struct {
	FQDN    string
	DNSFail bool
	Reset   bool
	// FlapN is how many initial dials reset before the endpoint recovers;
	// 0 means the endpoint never flaps.
	FlapN int
	// Truncate kills the connection after TruncateAfter bytes read. The
	// budget is kept in [256, 640): large enough that plain-HTTP response
	// headers arrive, small enough that a TLS handshake never completes —
	// so the outcome is deterministic, not a race with handshake size.
	Truncate      bool
	TruncateAfter int
	Latency       bool
}

// Faulty reports whether any fault applies to the FQDN.
func (p Plan) Faulty() bool {
	return p.DNSFail || p.Reset || p.FlapN > 0 || p.Truncate || p.Latency
}

// Injected fault errors. Their text matters: the prober's failure
// classifier files them under the paper's dns/conn failure classes.
var (
	// ErrInjectedDNS reads like a resolver miss so probe.classifyError
	// marks the result FailDNS.
	ErrInjectedDNS = errors.New("fault: injected dns failure: no such host")
	// ErrInjectedReset classifies as a connection failure (retryable).
	ErrInjectedReset = errors.New("fault: injected connection reset")
)

// DialFunc matches net.Dialer.DialContext and probe.Config.DialContext.
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

// Injector evaluates a profile's fault schedules and applies them to the
// paths it wraps. It is safe for concurrent use: plans are pure functions,
// the per-FQDN dial counters are atomics in a sync.Map, and the telemetry
// counters are obs atomics. A nil *Injector is a valid no-op: every Wrap
// method returns its argument unchanged.
type Injector struct {
	prof  Profile
	spike time.Duration

	dials sync.Map // fqdn → *atomic.Int64, dials attempted so far

	// crashFired latches the scheduled process abort so re-entrant stage or
	// row checks can never fire it twice (see crash.go).
	crashFired atomic.Bool

	// Telemetry; populated by Instrument, no-ops otherwise.
	mDNS     *obs.Counter // fault_dns_injected_total
	mReset   *obs.Counter // fault_resets_injected_total
	mFlap    *obs.Counter // fault_flaps_injected_total
	mTrunc   *obs.Counter // fault_truncations_injected_total
	mLatency *obs.Counter // fault_latency_injected_total
	mCorrupt *obs.Counter // fault_corrupt_records_total
}

// New builds an injector for the profile. A disabled profile still yields a
// usable injector whose wrappers pass everything through.
func New(p Profile) *Injector {
	return &Injector{prof: p, spike: 30 * time.Second}
}

// Profile returns the injector's profile.
func (in *Injector) Profile() Profile {
	if in == nil {
		return None()
	}
	return in.prof
}

// SetSpikeDelay bounds how long a latency-spiked dial stalls when the
// caller's context has no deadline; callers should set it beyond their probe
// timeout so spikes classify as timeouts.
func (in *Injector) SetSpikeDelay(d time.Duration) {
	if in != nil && d > 0 {
		in.spike = d
	}
}

// Instrument points the injector's telemetry at reg. Call before injecting;
// a nil registry leaves the injector un-instrumented.
func (in *Injector) Instrument(reg *obs.Registry) {
	if in == nil {
		return
	}
	in.mDNS = reg.Counter("fault_dns_injected_total")
	in.mReset = reg.Counter("fault_resets_injected_total")
	in.mFlap = reg.Counter("fault_flaps_injected_total")
	in.mTrunc = reg.Counter("fault_truncations_injected_total")
	in.mLatency = reg.Counter("fault_latency_injected_total")
	in.mCorrupt = reg.Counter("fault_corrupt_records_total")
}

// PlanFor derives the FQDN's fault schedule: a pure function of
// (profile seed, FQDN), identical at any worker count.
func (in *Injector) PlanFor(fqdn string) Plan {
	if in == nil || !in.prof.Enabled() {
		return Plan{FQDN: fqdn}
	}
	s := newStream(uint64(in.prof.Seed), pdns.HashFQDN(fqdn), streamEndpoint)
	p := Plan{FQDN: fqdn}
	// One draw per fault class, in fixed order, so adding a class never
	// perturbs the draws of the ones before it.
	p.DNSFail = s.hit(in.prof.DNSFail)
	p.Reset = s.hit(in.prof.Reset)
	if s.hit(in.prof.Flap) {
		p.FlapN = 1 + int(s.next()%2) // 1 or 2 failing dials
	}
	p.Truncate = s.hit(in.prof.Truncate)
	p.TruncateAfter = 256 + int(s.next()%384) // [256, 640)
	p.Latency = s.hit(in.prof.Latency)
	// DNS failure preempts everything else: the endpoint is never dialed.
	if p.DNSFail {
		p.Reset, p.FlapN, p.Truncate, p.Latency = false, 0, false, false
	}
	return p
}

// WrapResolve wraps a prober's DNS pre-check with injected resolution
// failures. A nil next skips the underlying check (mirroring
// probe.Config.Resolve semantics).
func (in *Injector) WrapResolve(next func(fqdn string) error) func(fqdn string) error {
	if in == nil || !in.prof.Enabled() {
		return next
	}
	return func(fqdn string) error {
		if in.PlanFor(fqdn).DNSFail {
			in.mDNS.Inc()
			return ErrInjectedDNS
		}
		if next != nil {
			return next(fqdn)
		}
		return nil
	}
}

// WrapDial wraps a dialer with the connection-level fault classes: latency
// spikes, flapping, resets, and truncation. The FQDN is recovered from the
// dial address, so the same wrapper serves the simulated gateway and a real
// net.Dialer alike.
func (in *Injector) WrapDial(next DialFunc) DialFunc {
	if in == nil || !in.prof.Enabled() {
		return next
	}
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		host, _, err := net.SplitHostPort(addr)
		if err != nil {
			host = addr
		}
		plan := in.PlanFor(host)
		if !plan.Faulty() {
			return next(ctx, network, addr)
		}
		n := in.countDial(host)
		switch {
		case plan.Latency:
			// Stall past any sane probe timeout; the caller's context
			// deadline fires first and classifies as a timeout.
			in.mLatency.Inc()
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(in.spike):
				return nil, ErrInjectedReset
			}
		case plan.FlapN > 0 && n <= int64(plan.FlapN):
			in.mFlap.Inc()
			return nil, ErrInjectedReset
		case plan.Reset:
			in.mReset.Inc()
			return nil, ErrInjectedReset
		}
		c, err := next(ctx, network, addr)
		if err != nil || !plan.Truncate {
			return c, err
		}
		in.mTrunc.Inc()
		return &truncConn{Conn: c, remaining: plan.TruncateAfter}, nil
	}
}

// countDial increments and returns the FQDN's dial counter. Within one
// probe, attempts are serial, so flap recovery is deterministic per FQDN.
func (in *Injector) countDial(fqdn string) int64 {
	v, ok := in.dials.Load(fqdn)
	if !ok {
		v, _ = in.dials.LoadOrStore(fqdn, new(atomic.Int64))
	}
	return v.(*atomic.Int64).Add(1)
}

// truncConn kills the connection after a byte budget of reads, as a
// mid-response peer crash would.
type truncConn struct {
	net.Conn
	remaining int
}

func (c *truncConn) Read(b []byte) (int, error) {
	if c.remaining <= 0 {
		c.Conn.Close()
		return 0, ErrInjectedReset
	}
	if len(b) > c.remaining {
		b = b[:c.remaining]
	}
	n, err := c.Conn.Read(b)
	c.remaining -= n
	return n, err
}

// Stream-domain constants keep the endpoint, feed-record, and feed-line
// schedules independent even for the same FQDN and seed.
const (
	streamEndpoint uint64 = 0x0e9d0f17a11ed001
	streamRecord   uint64 = 0x5eedc0440badf00d
	streamLine     uint64 = 0x114e5eedc0aa0457
	streamCrash    uint64 = 0xc4a54bad5eedd1e5
)

// stream is a splitmix64 generator over a fault domain.
type stream struct{ x uint64 }

func newStream(seed, fqdnHash, domain uint64) *stream {
	return &stream{x: mix64(seed ^ fqdnHash ^ domain)}
}

func (s *stream) next() uint64 {
	s.x += 0x9e3779b97f4a7c15
	return mix64(s.x)
}

// hit draws one uniform [0,1) variate and compares against rate.
func (s *stream) hit(rate float64) bool {
	if rate <= 0 {
		return false
	}
	return float64(s.next()>>11)/(1<<53) < rate
}

// mix64 is the splitmix64 finalizer, the same full-avalanche bijection the
// workload's per-function RNG streams use.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
