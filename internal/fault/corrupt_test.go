package fault

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/pdns"
)

func testRecord(i int) pdns.Record {
	first := time.Date(2024, 3, 1+i%28, 8, 0, 0, 0, time.UTC)
	return pdns.Record{
		FQDN:       fmt.Sprintf("fn-%d.lambda-url.us-east-1.on.aws", i),
		RType:      pdns.TypeA,
		RData:      fmt.Sprintf("52.0.%d.%d", i/250, i%250),
		FirstSeen:  first,
		LastSeen:   first.Add(6 * time.Hour),
		RequestCnt: int64(10 + i),
		PDate:      pdns.DateOf(first),
	}
}

func TestCorruptRecordDeterministicAndInvalid(t *testing.T) {
	prof := Profile{Name: "t", Seed: 5, FeedCorrupt: 0.05}
	const n = 5000

	run := func(scaleCnt int64) (hits int, corrupted []int) {
		in := New(prof)
		for i := 0; i < n; i++ {
			rec := testRecord(i)
			// Simulate the cache-model ablation: request counts differ
			// between runs but identity fields do not.
			rec.RequestCnt *= scaleCnt
			if in.CorruptRecord(&rec) {
				hits++
				corrupted = append(corrupted, i)
				if rec.Validate() == nil {
					t.Fatalf("corrupted record %d still validates: %+v", i, rec)
				}
			} else if rec.Validate() != nil {
				t.Fatalf("untouched record %d fails validation: %+v", i, rec)
			}
		}
		return hits, corrupted
	}

	hits1, set1 := run(1)
	hits2, set2 := run(3)
	if hits1 == 0 {
		t.Fatal("no record was ever corrupted at 5% over 5000 records")
	}
	if float64(hits1) < 0.02*n || float64(hits1) > 0.10*n {
		t.Errorf("corruption rate %d/%d far from 5%%", hits1, n)
	}
	// RequestCnt must not feed the decision: same records corrupted whether
	// or not the cache model rescaled the counts.
	if hits1 != hits2 || fmt.Sprint(set1) != fmt.Sprint(set2) {
		t.Error("corruption schedule depends on RequestCnt")
	}
}

func TestCorruptingWriterDeterministic(t *testing.T) {
	prof := Profile{Name: "t", Seed: 9, FeedCorrupt: 0.1}
	var lines strings.Builder
	for i := 0; i < 2000; i++ {
		r := testRecord(i)
		fmt.Fprintf(&lines, "%s\t%s\t%s\t%d\t%d\t%d\t%s\n",
			r.FQDN, r.RType, r.RData, r.FirstSeen.Unix(), r.LastSeen.Unix(), r.RequestCnt, r.PDate)
	}
	clean := lines.String()

	write := func(chunk int) (string, int64) {
		var out bytes.Buffer
		cw := NewCorruptingWriter(&out, New(prof))
		for i := 0; i < len(clean); i += chunk {
			end := i + chunk
			if end > len(clean) {
				end = len(clean)
			}
			if _, err := cw.Write([]byte(clean[i:end])); err != nil {
				t.Fatal(err)
			}
		}
		if err := cw.Flush(); err != nil {
			t.Fatal(err)
		}
		return out.String(), cw.Corrupted()
	}

	// Corruption must be a pure function of (seed, line), independent of how
	// the bytes were chunked into Write calls.
	whole, hitsWhole := write(len(clean))
	tiny, hitsTiny := write(7)
	if whole != tiny || hitsWhole != hitsTiny {
		t.Fatal("corrupted output depends on Write chunking")
	}
	if hitsWhole == 0 {
		t.Fatal("no line was corrupted at 10% over 2000 lines")
	}
	if whole == clean {
		t.Fatal("output identical to clean input despite corrupted lines")
	}

	// A pass-through writer (nil injector) must not touch the bytes.
	var out bytes.Buffer
	cw := NewCorruptingWriter(&out, nil)
	if _, err := cw.Write([]byte(clean)); err != nil {
		t.Fatal(err)
	}
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if out.String() != clean || cw.Corrupted() != 0 {
		t.Fatal("pass-through writer altered the stream")
	}
}
