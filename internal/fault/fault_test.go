package fault

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestParseProfile(t *testing.T) {
	cases := []struct {
		spec string
		want string
		err  bool
	}{
		{"none", "none", false},
		{"", "none", false},
		{"light", "light", false},
		{"heavy", "heavy", false},
		{"heavy,seed=7", "heavy,seed=7", false},
		{"light, seed=-3", "light,seed=-3", false},
		{"medium", "", true},
		{"heavy,seed=x", "", true},
		{"heavy,cooldown=3", "", true},
	}
	for _, c := range cases {
		p, err := ParseProfile(c.spec)
		if c.err {
			if err == nil {
				t.Errorf("ParseProfile(%q) succeeded, want error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", c.spec, err)
			continue
		}
		if got := p.String(); got != c.want {
			t.Errorf("ParseProfile(%q).String() = %q, want %q", c.spec, got, c.want)
		}
	}
}

func TestFromEnv(t *testing.T) {
	orig := envLookup
	defer func() { envLookup = orig }()

	envLookup = func(string) (string, bool) { return "", false }
	if p, err := FromEnv(); err != nil || p.Enabled() {
		t.Errorf("unset env → (%v, %v), want disabled none", p, err)
	}
	envLookup = func(string) (string, bool) { return "heavy,seed=5", true }
	p, err := FromEnv()
	if err != nil || p.Name != "heavy" || p.Seed != 5 {
		t.Errorf("heavy env → (%v, %v)", p, err)
	}
	envLookup = func(string) (string, bool) { return "bogus", true }
	if _, err := FromEnv(); err == nil || !strings.Contains(err.Error(), EnvVar) {
		t.Errorf("bogus env error = %v, want mention of %s", err, EnvVar)
	}
}

func TestProfileSeedInheritance(t *testing.T) {
	if got := Heavy().WithSeed(9).Seed; got != 9 {
		t.Errorf("unpinned profile seed = %d, want 9", got)
	}
	pinned, _ := ParseProfile("heavy,seed=3")
	if got := pinned.WithSeed(9).Seed; got != 3 {
		t.Errorf("pinned profile seed = %d, want 3 preserved", got)
	}
}

// TestPlanDeterminism pins the tentpole property: plans depend only on
// (seed, FQDN) — same at any concurrency, different per seed.
func TestPlanDeterminism(t *testing.T) {
	prof := Heavy()
	prof.Seed = 42
	fqdns := make([]string, 4000)
	for i := range fqdns {
		fqdns[i] = fmt.Sprintf("fn-%d.lambda-url.us-east-1.on.aws", i)
	}

	// Reference schedule from a fresh injector, computed serially.
	ref := make([]Plan, len(fqdns))
	for i, f := range fqdns {
		ref[i] = New(prof).PlanFor(f)
	}

	// Recompute concurrently on one shared injector at several widths.
	for _, workers := range []int{1, 2, 8} {
		in := New(prof)
		got := make([]Plan, len(fqdns))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(fqdns); i += workers {
					got[i] = in.PlanFor(fqdns[i])
				}
			}(w)
		}
		wg.Wait()
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d produced a different fault schedule", workers)
		}
	}

	// A different seed must produce a genuinely different schedule.
	other := prof
	other.Seed = 43
	same := 0
	for i, f := range fqdns {
		if reflect.DeepEqual(New(other).PlanFor(f), ref[i]) {
			same++
		}
	}
	if same == len(fqdns) {
		t.Error("changing the seed did not change the schedule")
	}
}

// TestPlanRates sanity-checks that injected rates land near the profile.
func TestPlanRates(t *testing.T) {
	prof := Heavy()
	prof.Seed = 1
	in := New(prof)
	const n = 20000
	var dns, reset, flap, trunc, lat int
	for i := 0; i < n; i++ {
		p := in.PlanFor(fmt.Sprintf("fn-%d.example.com", i))
		if p.DNSFail {
			dns++
		}
		if p.Reset {
			reset++
		}
		if p.FlapN > 0 {
			flap++
		}
		if p.Truncate {
			trunc++
		}
		if p.Latency {
			lat++
		}
		if p.Truncate && (p.TruncateAfter < 256 || p.TruncateAfter >= 640) {
			t.Fatalf("truncate budget %d outside [256, 640)", p.TruncateAfter)
		}
		if p.DNSFail && (p.Reset || p.FlapN > 0 || p.Truncate || p.Latency) {
			t.Fatal("DNS failure must preempt dial-level faults")
		}
	}
	check := func(name string, got int, rate float64) {
		t.Helper()
		want := rate * n
		// DNS preemption shaves ~1% off the dial-level classes; 40% slack
		// comfortably covers that plus binomial noise at n=20000.
		if float64(got) < want*0.6 || float64(got) > want*1.4 {
			t.Errorf("%s rate: got %d of %d, want ≈ %.0f", name, got, n, want)
		}
	}
	check("dns", dns, prof.DNSFail)
	check("reset", reset, prof.Reset)
	check("flap", flap, prof.Flap)
	check("truncate", trunc, prof.Truncate)
	check("latency", lat, prof.Latency)
}

func TestNilInjectorPassthrough(t *testing.T) {
	var in *Injector
	if p := in.PlanFor("x.example.com"); p.Faulty() {
		t.Error("nil injector produced faults")
	}
	if in.WrapResolve(nil) != nil {
		t.Error("nil injector wrapped a nil resolve")
	}
	called := false
	dial := in.WrapDial(func(ctx context.Context, network, addr string) (net.Conn, error) {
		called = true
		return nil, errors.New("sentinel")
	})
	if _, err := dial(context.Background(), "tcp", "h:80"); !called || err == nil {
		t.Error("nil injector did not pass the dial through")
	}
	in.Instrument(obs.NewRegistry())
	in.SetSpikeDelay(time.Second)
	if in.CorruptRecord(nil) {
		t.Error("nil injector corrupted a record")
	}
}

func TestWrapResolveInjectsDNS(t *testing.T) {
	prof := Profile{Name: "t", Seed: 2, DNSFail: 1}
	in := New(prof)
	reg := obs.NewRegistry()
	in.Instrument(reg)
	resolve := in.WrapResolve(func(string) error { return nil })
	err := resolve("always-fails.example.com")
	if err == nil || !strings.Contains(err.Error(), "no such host") {
		t.Fatalf("err = %v, want an injected no-such-host", err)
	}
	if got := reg.Snapshot().Counters["fault_dns_injected_total"]; got != 1 {
		t.Errorf("fault_dns_injected_total = %d, want 1", got)
	}
}

// pipeConn returns a connected pair backed by net.Pipe.
func pipeDialer(server func(c net.Conn)) DialFunc {
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		c1, c2 := net.Pipe()
		go server(c2)
		return c1, nil
	}
}

func TestWrapDialFlapRecovers(t *testing.T) {
	prof := Profile{Name: "t", Flap: 1}
	var in *Injector
	var plan Plan
	// Find a seed whose plan flaps exactly once so the test is not
	// schedule-shaped; the schedule is deterministic per seed.
	for seed := int64(1); ; seed++ {
		prof.Seed = seed
		in = New(prof)
		plan = in.PlanFor("flappy.example.com")
		if plan.FlapN == 1 {
			break
		}
	}
	dial := in.WrapDial(pipeDialer(func(c net.Conn) { c.Close() }))
	if _, err := dial(context.Background(), "tcp", "flappy.example.com:443"); !errors.Is(err, ErrInjectedReset) {
		t.Fatalf("first dial err = %v, want injected reset", err)
	}
	if c, err := dial(context.Background(), "tcp", "flappy.example.com:443"); err != nil {
		t.Fatalf("second dial err = %v, want recovery", err)
	} else {
		c.Close()
	}
}

func TestWrapDialResetIsPermanent(t *testing.T) {
	prof := Profile{Name: "t", Seed: 1, Reset: 1}
	in := New(prof)
	dial := in.WrapDial(pipeDialer(func(c net.Conn) { c.Close() }))
	for i := 0; i < 3; i++ {
		if _, err := dial(context.Background(), "tcp", "dead.example.com:443"); !errors.Is(err, ErrInjectedReset) {
			t.Fatalf("dial %d err = %v, want injected reset", i, err)
		}
	}
}

func TestWrapDialTruncates(t *testing.T) {
	prof := Profile{Name: "t", Seed: 1, Truncate: 1}
	in := New(prof)
	payload := strings.Repeat("x", 4096)
	dial := in.WrapDial(pipeDialer(func(c net.Conn) {
		io := []byte(payload)
		c.Write(io)
		c.Close()
	}))
	c, err := dial(context.Background(), "tcp", "trunc.example.com:80")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var total int
	buf := make([]byte, 512)
	for {
		n, rerr := c.Read(buf)
		total += n
		if rerr != nil {
			if !errors.Is(rerr, ErrInjectedReset) {
				t.Fatalf("read err = %v, want injected reset", rerr)
			}
			break
		}
	}
	plan := in.PlanFor("trunc.example.com")
	if total != plan.TruncateAfter {
		t.Errorf("read %d bytes before reset, want the plan's budget %d", total, plan.TruncateAfter)
	}
}

func TestWrapDialLatencyHonorsContext(t *testing.T) {
	prof := Profile{Name: "t", Seed: 1, Latency: 1}
	in := New(prof)
	in.SetSpikeDelay(time.Minute)
	dial := in.WrapDial(pipeDialer(func(c net.Conn) { c.Close() }))
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := dial(ctx, "tcp", "slow.example.com:443")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("latency spike ignored the context (stalled %v)", elapsed)
	}
}
