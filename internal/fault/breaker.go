package fault

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// Breaker is a per-key circuit breaker for the prober. Keys are typically
// provider names, so a provider whose edge is down stops burning probe
// attempts (and the campaign's politeness budget) on every one of its
// thousands of functions.
//
// Per key the breaker is a classic three-state machine:
//
//	closed    — requests flow; Threshold consecutive failures trip it open
//	open      — requests are short-circuited until Cooldown elapses
//	half-open — one trial request is let through; success closes the
//	            breaker, failure re-opens it for another Cooldown
//
// A nil *Breaker is a valid no-op that allows everything, so consumers can
// hold one unconditionally.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock for tests

	mu    sync.Mutex
	state map[string]*breakerState

	mOpens  *obs.Counter // fault_breaker_opens_total
	mShorts *obs.Counter // fault_breaker_short_circuits_total
}

type breakerState struct {
	fails    int       // consecutive failures while closed
	openedAt time.Time // zero while closed
	trial    bool      // half-open probe in flight
}

// NewBreaker builds a breaker that opens a key after threshold consecutive
// failures and re-tries it after cooldown. Non-positive threshold disables
// tripping (the breaker still counts, never opens); non-positive cooldown
// defaults to 30s.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if cooldown <= 0 {
		cooldown = 30 * time.Second
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		state:     make(map[string]*breakerState),
	}
}

// Instrument points the breaker's telemetry at reg.
func (b *Breaker) Instrument(reg *obs.Registry) {
	if b == nil {
		return
	}
	b.mOpens = reg.Counter("fault_breaker_opens_total")
	b.mShorts = reg.Counter("fault_breaker_short_circuits_total")
}

// Allow reports whether a request for key may proceed. In the open state it
// returns false until the cooldown elapses, then admits exactly one
// half-open trial at a time.
func (b *Breaker) Allow(key string) bool {
	if b == nil || b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state[key]
	if st == nil || st.openedAt.IsZero() {
		return true
	}
	if b.now().Sub(st.openedAt) < b.cooldown {
		b.mShorts.Inc()
		return false
	}
	if st.trial {
		// Another goroutine already holds the half-open slot.
		b.mShorts.Inc()
		return false
	}
	st.trial = true
	return true
}

// Record feeds the outcome of a request back into key's state machine.
func (b *Breaker) Record(key string, success bool) {
	if b == nil || b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.state[key]
	if st == nil {
		st = &breakerState{}
		b.state[key] = st
	}
	if success {
		*st = breakerState{}
		return
	}
	if !st.openedAt.IsZero() {
		// Half-open trial failed (or a pre-open request drained late):
		// restart the cooldown window.
		st.openedAt = b.now()
		st.trial = false
		return
	}
	st.fails++
	if st.fails >= b.threshold {
		st.openedAt = b.now()
		st.trial = false
		b.mOpens.Inc()
	}
}

// Opens returns how many keys are currently open — degraded-state
// reporting, not control flow.
func (b *Breaker) Opens() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, st := range b.state {
		if !st.openedAt.IsZero() {
			n++
		}
	}
	return n
}
