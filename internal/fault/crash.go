// Seeded crashpoint schedule: a deterministic "kill -9 from inside". The
// crash-resume matrix needs the pipeline to die at a precise, reproducible
// point — a stage boundary or the N-th emitted row — in a real subprocess,
// so the checkpoint on disk is exactly what a power loss would leave behind.
// The schedule is part of the chaos profile (`-chaos none,crash=identify:9000`)
// but deliberately outside the profile's String()/Enabled() surface: the
// crashing invocation and the clean resume must hash to the same run ID.
package fault

import (
	"fmt"
	"os"
)

// Stages is the pipeline's stage-boundary order; crash=<stage> specs are
// validated against it and crash=auto draws from it. core's stage names and
// execution order must match (core_test pins this).
var Stages = []string{
	"substrate", "identify", "probe", "sanitise",
	"cluster", "classify", "assess", "disclosure",
}

// CrashExitCode is the status a scheduled crash exits with — 137, the shell
// convention for SIGKILL, since the injected abort stands in for one.
const CrashExitCode = 137

// crashExit aborts the process; swapped in tests so crash scheduling can be
// asserted without dying.
var crashExit = func(msg string) {
	fmt.Fprintln(os.Stderr, msg)
	os.Exit(CrashExitCode)
}

func validStage(s string) bool {
	for _, st := range Stages {
		if st == s {
			return true
		}
	}
	return false
}

// parseCrashSpec parses the crash=<spec> option value into p.
func parseCrashSpec(p *Profile, v string) error {
	stage, arg, hasArg := cutColon(v)
	if stage == "auto" {
		k := int64(1)
		if hasArg {
			if _, err := fmt.Sscanf(arg, "%d", &k); err != nil || k < 1 {
				return fmt.Errorf("fault: bad crash spec %q (want auto:<k> with k >= 1)", v)
			}
		}
		p.CrashAuto = int(k)
		p.CrashStage, p.CrashRows = "", 0
		return nil
	}
	if !validStage(stage) {
		return fmt.Errorf("fault: bad crash stage %q (want one of %v, or auto)", stage, Stages)
	}
	p.CrashStage, p.CrashAuto = stage, 0
	p.CrashRows = 0
	if hasArg {
		var rows int64
		if _, err := fmt.Sscanf(arg, "%d", &rows); err != nil || rows < 1 {
			return fmt.Errorf("fault: bad crash row count %q (want a positive integer)", arg)
		}
		p.CrashRows = rows
	}
	return nil
}

func cutColon(s string) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// CrashSpec renders the profile's crash schedule for logs, or "" when none
// is set. It is intentionally not part of Profile.String(): run IDs must not
// see it.
func (p Profile) CrashSpec() string {
	switch {
	case p.CrashAuto > 0:
		return fmt.Sprintf("auto:%d", p.CrashAuto)
	case p.CrashStage != "" && p.CrashRows > 0:
		return fmt.Sprintf("%s:%d", p.CrashStage, p.CrashRows)
	case p.CrashStage != "":
		return p.CrashStage
	}
	return ""
}

// crashPoint resolves the profile's kill point. Explicit specs pass through;
// auto mode derives (stage, rows) from seed ⊕ k through the crashpoint
// stream: any stage boundary with equal probability, and for identify a coin
// flip between the boundary and a mid-emission row in [1, 100000]. An auto
// row target can overshoot the actual row count, in which case the run
// simply completes — the matrix treats that as a vacuous cell.
func (in *Injector) crashPoint() (stage string, rows int64, ok bool) {
	if in == nil {
		return "", 0, false
	}
	p := in.prof
	switch {
	case p.CrashStage != "":
		return p.CrashStage, p.CrashRows, true
	case p.CrashAuto > 0:
		s := newStream(uint64(p.Seed), uint64(p.CrashAuto)*0x9e3779b97f4a7c15, streamCrash)
		stage = Stages[s.next()%uint64(len(Stages))]
		if stage == "identify" && s.next()%2 == 1 {
			rows = 1 + int64(s.next()%100000)
		}
		return stage, rows, true
	}
	return "", 0, false
}

// CrashScheduled reports whether the profile schedules any crash; callers
// use it to decide whether per-row accounting is worth wiring up.
func (in *Injector) CrashScheduled() bool {
	_, _, ok := in.crashPoint()
	return ok
}

// CrashAtStage aborts the process if the schedule targets this stage's entry
// boundary (no row component). Called by core at every stage start.
func (in *Injector) CrashAtStage(stage string) {
	st, rows, ok := in.crashPoint()
	if !ok || rows > 0 || st != stage {
		return
	}
	if in.crashFired.CompareAndSwap(false, true) {
		crashExit(fmt.Sprintf("fault: injected crash at stage boundary %q", stage))
	}
}

// CrashAtRow aborts the process once n rows have been emitted inside the
// targeted stage. The workload coordinator calls it per emitted row when
// CrashScheduled is true.
func (in *Injector) CrashAtRow(stage string, n int64) {
	st, rows, ok := in.crashPoint()
	if !ok || rows <= 0 || st != stage || n < rows {
		return
	}
	if in.crashFired.CompareAndSwap(false, true) {
		crashExit(fmt.Sprintf("fault: injected crash at stage %q row %d", stage, n))
	}
}
