package fault

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestBreakerStateMachine(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(3, 10*time.Second)
	b.now = func() time.Time { return clock }
	reg := obs.NewRegistry()
	b.Instrument(reg)

	// Closed: failures below the threshold keep the key admissible.
	for i := 0; i < 2; i++ {
		if !b.Allow("aws") {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.Record("aws", false)
	}
	// A success resets the consecutive-failure count.
	b.Record("aws", true)
	b.Record("aws", false)
	b.Record("aws", false)
	if !b.Allow("aws") {
		t.Fatal("breaker opened before threshold after a reset")
	}
	// Third consecutive failure trips it.
	b.Record("aws", false)
	if b.Allow("aws") {
		t.Fatal("breaker still closed after threshold consecutive failures")
	}
	if got := b.Opens(); got != 1 {
		t.Fatalf("Opens() = %d, want 1", got)
	}
	// Other keys are independent.
	if !b.Allow("alibaba") {
		t.Fatal("unrelated key short-circuited")
	}

	// Cooldown elapses: exactly one half-open trial at a time.
	clock = clock.Add(11 * time.Second)
	if !b.Allow("aws") {
		t.Fatal("half-open trial denied after cooldown")
	}
	if b.Allow("aws") {
		t.Fatal("second concurrent half-open trial admitted")
	}
	// Failed trial re-opens for another cooldown.
	b.Record("aws", false)
	if b.Allow("aws") {
		t.Fatal("breaker closed after failed half-open trial")
	}
	clock = clock.Add(11 * time.Second)
	if !b.Allow("aws") {
		t.Fatal("trial denied after second cooldown")
	}
	b.Record("aws", true)
	if !b.Allow("aws") || b.Opens() != 0 {
		t.Fatal("successful trial did not close the breaker")
	}

	snap := reg.Snapshot().Counters
	if snap["fault_breaker_opens_total"] != 1 {
		t.Errorf("opens counter = %d, want 1", snap["fault_breaker_opens_total"])
	}
	if snap["fault_breaker_short_circuits_total"] == 0 {
		t.Error("short-circuit counter never incremented")
	}
}

func TestBreakerDisabledAndNil(t *testing.T) {
	var nilB *Breaker
	if !nilB.Allow("k") {
		t.Error("nil breaker denied a request")
	}
	nilB.Record("k", false)
	if nilB.Opens() != 0 {
		t.Error("nil breaker reports open keys")
	}

	off := NewBreaker(0, 0)
	for i := 0; i < 100; i++ {
		off.Record("k", false)
	}
	if !off.Allow("k") {
		t.Error("threshold<=0 breaker tripped")
	}
}

// TestBreakerRace hammers one breaker from many goroutines mixing Allow,
// Record, and Opens across a handful of keys. Run under -race (make chaos
// does) this pins the satellite requirement that the breaker is safe under
// the prober's concurrency; the invariant checked here is weaker — no
// deadlock, and every admitted trial is eventually resolvable.
func TestBreakerRace(t *testing.T) {
	b := NewBreaker(5, time.Hour)
	b.Instrument(obs.NewRegistry())
	keys := []string{"aws", "alibaba", "tencent", "huawei"}
	var admitted, denied atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := keys[(g+i)%len(keys)]
				if b.Allow(key) {
					admitted.Add(1)
					// Early successes exercise the reset path; after that
					// every key accumulates failures until it trips, and the
					// hour-long cooldown keeps it open for the rest of the test.
					b.Record(key, i < 20 && i%3 == 0)
				} else {
					denied.Add(1)
				}
				if i%100 == 0 {
					b.Opens()
				}
			}
		}(g)
	}
	wg.Wait()
	if admitted.Load() == 0 {
		t.Error("no request was ever admitted")
	}
	if denied.Load() == 0 {
		t.Error("no request was ever short-circuited (breaker never opened)")
	}
	if got := b.Opens(); got != len(keys) {
		t.Errorf("Opens() = %d, want all %d keys tripped", got, len(keys))
	}
}
