package fault

import (
	"strings"
	"testing"
)

// swapCrashExit replaces the process abort with a recorder for the duration
// of a test.
func swapCrashExit(t *testing.T) *[]string {
	t.Helper()
	var fired []string
	orig := crashExit
	crashExit = func(msg string) { fired = append(fired, msg) }
	t.Cleanup(func() { crashExit = orig })
	return &fired
}

func TestParseCrashSpecs(t *testing.T) {
	cases := []struct {
		spec  string
		stage string
		rows  int64
		auto  int
	}{
		{"none,crash=probe", "probe", 0, 0},
		{"crash=probe", "probe", 0, 0}, // bare option implies the none profile
		{"crash=identify:9000", "identify", 9000, 0},
		{"heavy,crash=disclosure,seed=9", "disclosure", 0, 0},
		{"crash=auto", "", 0, 1},
		{"crash=auto:4", "", 0, 4},
	}
	for _, c := range cases {
		p, err := ParseProfile(c.spec)
		if err != nil {
			t.Errorf("ParseProfile(%q): %v", c.spec, err)
			continue
		}
		if p.CrashStage != c.stage || p.CrashRows != c.rows || p.CrashAuto != c.auto {
			t.Errorf("ParseProfile(%q) = stage %q rows %d auto %d, want %q/%d/%d",
				c.spec, p.CrashStage, p.CrashRows, p.CrashAuto, c.stage, c.rows, c.auto)
		}
	}
	for _, bad := range []string{
		"crash=bogus", "crash=identify:0", "crash=identify:-5",
		"crash=auto:0", "crash=identify:x", "crash=",
	} {
		if _, err := ParseProfile(bad); err == nil {
			t.Errorf("ParseProfile(%q) accepted", bad)
		}
	}
}

// TestCrashSpecOutsideRunIdentity pins the run-ID sharing contract: the
// crash schedule must be invisible to Profile.String() and Enabled(), since
// the crashing invocation and the clean resume hash the chaos string into
// the same run ID.
func TestCrashSpecOutsideRunIdentity(t *testing.T) {
	p, err := ParseProfile("none,crash=identify:9000")
	if err != nil {
		t.Fatal(err)
	}
	if p.Enabled() {
		t.Error("a crash schedule alone must not enable fault injection")
	}
	clean, err := ParseProfile("none")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != clean.String() {
		t.Errorf("String() = %q with crash spec, %q without — run IDs would diverge", p.String(), clean.String())
	}
	if got := p.CrashSpec(); got != "identify:9000" {
		t.Errorf("CrashSpec() = %q", got)
	}
}

func TestCrashAtStage(t *testing.T) {
	fired := swapCrashExit(t)
	in := New(Profile{CrashStage: "probe"})
	if !in.CrashScheduled() {
		t.Fatal("CrashScheduled() = false with a stage target")
	}
	in.CrashAtStage("identify")
	in.CrashAtRow("probe", 100)
	if len(*fired) != 0 {
		t.Fatalf("crash fired early: %v", *fired)
	}
	in.CrashAtStage("probe")
	in.CrashAtStage("probe") // second hit must not re-fire
	if len(*fired) != 1 || !strings.Contains((*fired)[0], "probe") {
		t.Fatalf("fired = %v, want exactly one probe-boundary crash", *fired)
	}
}

func TestCrashAtRow(t *testing.T) {
	fired := swapCrashExit(t)
	in := New(Profile{CrashStage: "identify", CrashRows: 500})
	in.CrashAtStage("identify") // row-targeted: boundary must not fire
	in.CrashAtRow("identify", 499)
	in.CrashAtRow("probe", 500) // wrong stage
	if len(*fired) != 0 {
		t.Fatalf("crash fired early: %v", *fired)
	}
	in.CrashAtRow("identify", 500)
	in.CrashAtRow("identify", 501)
	if len(*fired) != 1 || !strings.Contains((*fired)[0], "row 500") {
		t.Fatalf("fired = %v, want exactly one row-500 crash", *fired)
	}
}

// TestCrashAutoDeterministic: auto mode must derive the same kill point from
// the same (seed, k), a different one for different k at least somewhere in
// a small sweep, and always a valid stage.
func TestCrashAutoDeterministic(t *testing.T) {
	stageOf := func(seed int64, k int) (string, int64) {
		st, rows, ok := New(Profile{Seed: seed, CrashAuto: k}).crashPoint()
		if !ok {
			t.Fatalf("auto:%d not scheduled", k)
		}
		if !validStage(st) {
			t.Fatalf("auto:%d resolved to invalid stage %q", k, st)
		}
		if rows > 0 && st != "identify" {
			t.Fatalf("auto:%d put a row target on stage %q", k, st)
		}
		return st, rows
	}
	varied := false
	for k := 1; k <= 8; k++ {
		s1, r1 := stageOf(7, k)
		s2, r2 := stageOf(7, k)
		if s1 != s2 || r1 != r2 {
			t.Fatalf("auto:%d not deterministic: %s:%d vs %s:%d", k, s1, r1, s2, r2)
		}
		if f, _ := stageOf(7, 1); k > 1 && (s1 != f) {
			varied = true
		}
	}
	if !varied {
		t.Error("auto:1..8 all resolved to the same stage — stream looks constant")
	}
	if in := New(Profile{}); in.CrashScheduled() {
		t.Error("empty profile claims a scheduled crash")
	}
}
