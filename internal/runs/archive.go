// Package runs is the pipeline's persistent run-history layer: every
// instrumented run archives its provenance (manifest, event log, Chrome
// trace, per-stage timings, metric snapshots, calibration shares, artifact
// fingerprints) under .runs/<run-id>/, and the package's differ and gate
// turn two archives into a regression verdict. The archive splits into a
// deterministic half (summary.json and artifacts/ — a pure function of
// seed, config, and workers) and a machine-varying half (timings.json,
// manifest.json, events.jsonl, trace.json, profiles/), so "did the
// measurement change?" and "did the measurement get slower?" are separately
// answerable.
package runs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/health"
	"repro/internal/obs"
	"repro/internal/obs/timeline"
	"repro/internal/prof"
)

// Archive file names inside a run directory.
const (
	SummaryFile  = "summary.json"
	TimingsFile  = "timings.json"
	ManifestFile = "manifest.json"
	EventsFile   = "events.jsonl"
	TraceFile    = "trace.json"
	ArtifactsDir = "artifacts"
	// CheckpointsDir is where internal/checkpoint keeps a run's snapshot
	// files (named here rather than imported, to keep the layers decoupled).
	// WriteDir preserves it across the atomic overwrite of an archive slot,
	// so re-running a config never erases its crash-recovery lineage.
	CheckpointsDir = "checkpoints"
	// ProfilesDir holds the run's captured pprof profiles
	// (<stage>-<kind>.pb.gz) — strictly machine-varying, like timings.
	ProfilesDir = "profiles"
	// TimelineFile is the windowed-telemetry record stream, one JSON window
	// per line (see internal/obs/timeline). Machine-varying: wall-clock
	// windows slice the run differently on every machine, so it never
	// participates in fingerprints.
	TimelineFile = "timeline.jsonl"
)

// DeterministicArtifacts names the emitted artifacts that are bit-identical
// for a fixed (seed, config, workers) triple — the worker-invariance tests
// of internal/workload pin them. Only these participate in fingerprint
// gating; the rest are recorded and diffed but never fail a gate.
var DeterministicArtifacts = map[string]bool{
	"table2.txt": true,
	"fig3.txt":   true,
	"fig4.txt":   true,
	"fig5.txt":   true,
}

// Summary is the deterministic half of a run archive: identity, config,
// what the run absorbed, the paper-calibration shares it measured, and the
// SHA-256 fingerprint of every emitted artifact. Two runs with identical
// seed/config/workers produce byte-identical summaries.
type Summary struct {
	// ID is derived from ConfigHash, so identical configs collide
	// intentionally: re-running the same experiment overwrites its
	// archive slot instead of accreting near-duplicates.
	ID         string            `json:"id"`
	Tool       string            `json:"tool"`
	ConfigHash string            `json:"config_hash"`
	Meta       map[string]string `json:"meta,omitempty"`
	// Degradations is the per-stage absorbed-failure record (empty for a
	// clean run). Deterministic: fault schedules derive from the seed.
	Degradations []obs.Degradation `json:"degradations,omitempty"`
	// Calibration maps scale-invariant measured shares (unreachable rate,
	// 404 share, single-day lifespan, ...) to their values, for comparison
	// against the paper's published targets (see PaperTargets).
	Calibration map[string]float64 `json:"calibration,omitempty"`
	// Artifacts maps artifact file name to the SHA-256 hex digest of its
	// content as stored under artifacts/.
	Artifacts map[string]string `json:"artifacts,omitempty"`
}

// Timings is the machine-varying half of a run archive: wall/CPU per stage,
// the final metric snapshot (labeled vectors included), the SLO health
// evaluation, and the completion instant. Health lives here and not in
// Summary because rule values depend on wall-clock behaviour — the same
// config can pass on one machine and fire on a slower one.
type Timings struct {
	CreatedAt string            `json:"created_at,omitempty"`
	ElapsedNS int64             `json:"elapsed_ns"`
	Stages    []obs.StageTiming `json:"stages"`
	Metrics   obs.Snapshot      `json:"metrics"`
	Health    []health.Result   `json:"health,omitempty"`
	// Resources is the per-stage runtime high-water-mark table the resource
	// sampler collected (heap in use, RSS, goroutines, GC), empty when the
	// run sampled with -resource-interval 0. Machine-varying by nature,
	// which is exactly why it lives here and not in Summary.
	Resources []obs.ResourceStats `json:"resources,omitempty"`
	// Checkpoints is the run's crash-recovery lineage, nil when the run did
	// not checkpoint. It lives on the machine-varying side deliberately:
	// whether a run was interrupted and resumed must never move the golden
	// summary fingerprints.
	Checkpoints *RecoveryInfo `json:"checkpoints,omitempty"`
}

// RecoveryInfo records a run's checkpoint/resume lineage.
type RecoveryInfo struct {
	// Resumed is true when the run restored state from a prior invocation's
	// checkpoint instead of starting from scratch.
	Resumed bool `json:"resumed,omitempty"`
	// ResumedFrom is the checkpoint sequence number the run resumed from.
	ResumedFrom uint64 `json:"resumed_from_seq,omitempty"`
	// ResumedStage is the stage that checkpoint was taken in.
	ResumedStage string `json:"resumed_stage,omitempty"`
	// Checkpoints counts snapshots this invocation wrote.
	Checkpoints int `json:"checkpoints,omitempty"`
	// LastSeq and LastStage identify the newest snapshot written.
	LastSeq   uint64 `json:"last_seq,omitempty"`
	LastStage string `json:"last_stage,omitempty"`
}

// Archive is everything a finishing run hands to Write. Manifest, Events,
// and Trace are optional; Artifacts maps file name to rendered content.
type Archive struct {
	Summary   Summary
	Timings   Timings
	Manifest  *obs.Manifest
	Events    *obs.EventLog
	Trace     []obs.SpanRecord
	Artifacts map[string]string
	// Profiles are the run's captured pprof snapshots, written under
	// profiles/ on the machine-varying side: they are never fingerprinted
	// and never participate in the summary, so a profiled run's
	// deterministic half is byte-identical to an unprofiled one's.
	Profiles []prof.Snapshot
	// Timeline is the run's windowed-telemetry sequence, written as
	// timeline.jsonl on the machine-varying side; nil when the run did not
	// record one (-timeline-interval 0).
	Timeline []timeline.Window
}

// Record is an archive read back from disk. ModTime is the archive's
// on-disk modification time (of its timings file), which orders re-runs
// correctly even though identical configs overwrite one slot.
type Record struct {
	Dir     string
	Summary Summary
	Timings Timings
	ModTime time.Time
}

// ConfigHash hashes the flat config meta (sorted key=value lines) to a
// stable hex digest. Keys that record outcomes rather than configuration
// ("elapsed") must not be in meta; the caller strips them.
func ConfigHash(meta map[string]string) string {
	keys := make([]string, 0, len(meta))
	for k := range meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, meta[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// RunID derives the run directory name from a config hash.
func RunID(configHash string) string {
	if len(configHash) < 12 {
		return "r-" + configHash
	}
	return "r-" + configHash[:12]
}

// Fingerprint returns the SHA-256 hex digest of an artifact's content.
func Fingerprint(content string) string {
	sum := sha256.Sum256([]byte(content))
	return hex.EncodeToString(sum[:])
}

// Write persists a into root/<run-id>/, filling in the summary's
// ConfigHash, ID, and artifact fingerprints if unset, and returns the run
// directory. An existing directory for the same ID is overwritten file by
// file — identical configs collide by design.
func Write(root string, a *Archive) (string, error) {
	fillSummary(a)
	dir := filepath.Join(root, a.Summary.ID)
	if err := WriteDir(dir, a); err != nil {
		return "", err
	}
	return dir, nil
}

// fillSummary derives the summary's ConfigHash, ID, and artifact
// fingerprints when unset.
func fillSummary(a *Archive) {
	if a.Summary.ConfigHash == "" {
		a.Summary.ConfigHash = ConfigHash(a.Summary.Meta)
	}
	if a.Summary.ID == "" {
		a.Summary.ID = RunID(a.Summary.ConfigHash)
	}
	if a.Summary.Artifacts == nil && len(a.Artifacts) > 0 {
		a.Summary.Artifacts = make(map[string]string, len(a.Artifacts))
		for name, content := range a.Artifacts {
			a.Summary.Artifacts[name] = Fingerprint(content)
		}
	}
}

// WriteDir persists a into exactly dir, regardless of the run ID — the
// scenario matrix uses this to key archive slots by cell ID. The summary is
// still completed (hash, ID, fingerprints) exactly as Write does.
//
// The write is atomic at directory granularity: everything lands in a
// sibling temp directory first, an existing checkpoints/ subdirectory is
// carried over, and a final rename swaps the slot — so a crash mid-archive
// leaves either the old complete archive or the new one, never a dir with a
// torn summary.json.
func WriteDir(dir string, a *Archive) error {
	fillSummary(a)
	parent := filepath.Dir(dir)
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return fmt.Errorf("runs: %w", err)
	}
	tmp, err := os.MkdirTemp(parent, ".tmp-"+filepath.Base(dir)+"-")
	if err != nil {
		return fmt.Errorf("runs: %w", err)
	}
	defer os.RemoveAll(tmp) // no-op after the successful rename
	if err := writeArchiveFiles(tmp, a); err != nil {
		return err
	}
	// Preserve the run's checkpoint lineage across the slot swap.
	oldCkpt := filepath.Join(dir, CheckpointsDir)
	if _, err := os.Stat(oldCkpt); err == nil {
		if err := os.Rename(oldCkpt, filepath.Join(tmp, CheckpointsDir)); err != nil {
			return fmt.Errorf("runs: keep checkpoints: %w", err)
		}
	}
	if _, err := os.Stat(dir); err == nil {
		trash, err := os.MkdirTemp(parent, ".trash-")
		if err != nil {
			return fmt.Errorf("runs: %w", err)
		}
		if err := os.Rename(dir, filepath.Join(trash, filepath.Base(dir))); err != nil {
			os.RemoveAll(trash)
			return fmt.Errorf("runs: %w", err)
		}
		defer os.RemoveAll(trash)
	}
	if err := os.Rename(tmp, dir); err != nil {
		return fmt.Errorf("runs: %w", err)
	}
	if d, err := os.Open(parent); err == nil {
		d.Sync() // best effort: persist the rename
		d.Close()
	}
	return nil
}

// writeArchiveFiles writes every archive file into dir (which must exist).
func writeArchiveFiles(dir string, a *Archive) error {
	if err := writeJSON(filepath.Join(dir, SummaryFile), a.Summary); err != nil {
		return err
	}
	if err := writeJSON(filepath.Join(dir, TimingsFile), a.Timings); err != nil {
		return err
	}
	if a.Manifest != nil {
		if err := a.Manifest.WriteFile(filepath.Join(dir, ManifestFile)); err != nil {
			return err
		}
	}
	if a.Events != nil {
		f, err := os.Create(filepath.Join(dir, EventsFile))
		if err != nil {
			return fmt.Errorf("runs: %w", err)
		}
		werr := a.Events.WriteJSONL(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("runs: events: %w", werr)
		}
	}
	if a.Trace != nil {
		f, err := os.Create(filepath.Join(dir, TraceFile))
		if err != nil {
			return fmt.Errorf("runs: %w", err)
		}
		werr := obs.WriteChromeTrace(f, a.Trace, a.Events)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("runs: trace: %w", werr)
		}
	}
	if len(a.Artifacts) > 0 {
		adir := filepath.Join(dir, ArtifactsDir)
		if err := os.MkdirAll(adir, 0o755); err != nil {
			return fmt.Errorf("runs: %w", err)
		}
		for name, content := range a.Artifacts {
			if err := os.WriteFile(filepath.Join(adir, name), []byte(content), 0o644); err != nil {
				return fmt.Errorf("runs: artifact %s: %w", name, err)
			}
		}
	}
	if len(a.Profiles) > 0 {
		pdir := filepath.Join(dir, ProfilesDir)
		if err := os.MkdirAll(pdir, 0o755); err != nil {
			return fmt.Errorf("runs: %w", err)
		}
		// Later snapshots of the same (stage, kind) overwrite earlier ones:
		// the archive keeps one file per name, the newest capture.
		for _, s := range a.Profiles {
			if err := os.WriteFile(filepath.Join(pdir, s.FileName()), s.Data, 0o644); err != nil {
				return fmt.Errorf("runs: profile %s: %w", s.FileName(), err)
			}
		}
	}
	if len(a.Timeline) > 0 {
		f, err := os.Create(filepath.Join(dir, TimelineFile))
		if err != nil {
			return fmt.Errorf("runs: %w", err)
		}
		werr := timeline.WriteJSONL(f, a.Timeline)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return fmt.Errorf("runs: timeline: %w", werr)
		}
	}
	return nil
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("runs: %s: %w", filepath.Base(path), err)
	}
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("runs: %w", err)
	}
	return nil
}

// Read loads the summary and timings of one run directory.
func Read(dir string) (*Record, error) {
	rec := &Record{Dir: dir}
	if err := readJSON(filepath.Join(dir, SummaryFile), &rec.Summary); err != nil {
		return nil, err
	}
	if err := readJSON(filepath.Join(dir, TimingsFile), &rec.Timings); err != nil {
		return nil, err
	}
	if st, err := os.Stat(filepath.Join(dir, TimingsFile)); err == nil {
		rec.ModTime = st.ModTime()
	} else if st, err := os.Stat(dir); err == nil {
		rec.ModTime = st.ModTime()
	}
	return rec, nil
}

func readJSON(path string, v any) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("runs: %w", err)
	}
	if err := json.Unmarshal(b, v); err != nil {
		return fmt.Errorf("runs: %s: %w", path, err)
	}
	return nil
}

// List loads every archive under root, newest first by on-disk modification
// time (CreatedAt breaks mtime ties — e.g. archives restored from a copy —
// and ID breaks those). Directories without a readable summary are skipped.
func List(root string) ([]*Record, error) {
	recs, _, err := ListWarn(root)
	return recs, err
}

// ListWarn is List plus a warning per skipped directory that looks like a
// partial or corrupt run — one a crash left behind mid-archive, or one whose
// summary no longer parses. Directories that merely aren't run archives
// (no run files at all) are skipped silently, and dot-prefixed entries
// (in-flight temp/trash dirs from the atomic writer) are invisible.
func ListWarn(root string) ([]*Record, []string, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, nil
		}
		return nil, nil, fmt.Errorf("runs: %w", err)
	}
	var out []*Record
	var warns []string
	for _, e := range entries {
		if !e.IsDir() || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		dir := filepath.Join(root, e.Name())
		rec, err := Read(dir)
		if err != nil {
			if looksPartial(dir) {
				warns = append(warns, fmt.Sprintf("%s: incomplete or corrupt run archive (%v)", e.Name(), err))
			}
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].ModTime.Equal(out[j].ModTime) {
			return out[i].ModTime.After(out[j].ModTime)
		}
		if out[i].Timings.CreatedAt != out[j].Timings.CreatedAt {
			return out[i].Timings.CreatedAt > out[j].Timings.CreatedAt
		}
		return out[i].Summary.ID < out[j].Summary.ID
	})
	return out, warns, nil
}

// looksPartial reports whether dir holds the debris of an interrupted run —
// any run-archive file, a checkpoints directory, or a profiles directory —
// as opposed to being an unrelated directory that happens to live under the
// runs root.
func looksPartial(dir string) bool {
	for _, name := range []string{SummaryFile, TimingsFile, ManifestFile, EventsFile, TraceFile, CheckpointsDir, ProfilesDir, TimelineFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err == nil {
			return true
		}
	}
	return false
}

// ReadArtifact returns the stored content of one artifact of a run.
func (r *Record) ReadArtifact(name string) (string, error) {
	b, err := os.ReadFile(filepath.Join(r.Dir, ArtifactsDir, name))
	if err != nil {
		return "", fmt.Errorf("runs: %w", err)
	}
	return string(b), nil
}

// ProfileInfo describes one captured pprof profile in a run archive's
// profiles/ directory.
type ProfileInfo struct {
	Name  string // file name, <stage>-<kind>.pb.gz
	Stage string
	Kind  string
	Size  int64
}

// ListProfiles enumerates the pprof profiles archived under dir/profiles/,
// sorted by name. An absent or empty profiles directory is not an error —
// most runs are unprofiled — so callers get a nil slice and can render
// "no profiles" without special-casing.
func ListProfiles(dir string) ([]ProfileInfo, error) {
	entries, err := os.ReadDir(filepath.Join(dir, ProfilesDir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("runs: %w", err)
	}
	var infos []ProfileInfo
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".pb.gz") {
			continue
		}
		fi, err := e.Info()
		if err != nil {
			continue // file vanished between readdir and stat; skip it
		}
		stem := strings.TrimSuffix(e.Name(), ".pb.gz")
		stage, kind := stem, ""
		if i := strings.LastIndex(stem, "-"); i >= 0 {
			stage, kind = stem[:i], stem[i+1:]
		}
		infos = append(infos, ProfileInfo{Name: e.Name(), Stage: stage, Kind: kind, Size: fi.Size()})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos, nil
}

// ReadTimeline loads a run's windowed-telemetry sequence. An absent
// timeline is not an error — most runs don't record one — so callers get a
// nil slice and render "no timeline" without special-casing.
func ReadTimeline(dir string) ([]timeline.Window, error) {
	f, err := os.Open(filepath.Join(dir, TimelineFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("runs: %w", err)
	}
	defer f.Close()
	ws, err := timeline.ReadJSONL(f)
	if err != nil {
		return nil, fmt.Errorf("runs: %s: %w", TimelineFile, err)
	}
	return ws, nil
}

// TimelineAnomalies counts a run's timeline anomaly annotations: (count,
// true) when a timeline exists, (0, false) when none was recorded or it is
// unreadable — the list view renders the latter as "-".
func TimelineAnomalies(dir string) (int, bool) {
	ws, err := ReadTimeline(dir)
	if err != nil || ws == nil {
		return 0, false
	}
	return timeline.AnomalyCount(ws), true
}

// ReadProfile returns the raw bytes of one archived profile.
func ReadProfile(dir, name string) ([]byte, error) {
	b, err := os.ReadFile(filepath.Join(dir, ProfilesDir, name))
	if err != nil {
		return nil, fmt.Errorf("runs: %w", err)
	}
	return b, nil
}

// ProfilesLine renders a one-line inventory of a run's profiles, grouped by
// kind with per-kind stage counts and total bytes — compact enough for the
// show view's header block.
func ProfilesLine(infos []ProfileInfo) string {
	if len(infos) == 0 {
		return "profiles: none"
	}
	counts := map[string]int{}
	stages := map[string]bool{}
	var kinds []string
	var total int64
	for _, in := range infos {
		if counts[in.Kind] == 0 {
			kinds = append(kinds, in.Kind)
		}
		counts[in.Kind]++
		stages[in.Stage] = true
		total += in.Size
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s x%d", k, counts[k]))
	}
	return fmt.Sprintf("profiles: %d across %d stage(s) (%s; %d bytes)",
		len(infos), len(stages), strings.Join(parts, ", "), total)
}

// Stage returns the stage timing with the given path, or nil.
func (t *Timings) Stage(path string) *obs.StageTiming {
	for i := range t.Stages {
		if t.Stages[i].Path == path {
			return &t.Stages[i]
		}
	}
	return nil
}
