package runs

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/report"
)

// StageDelta compares one stage's wall/CPU time across two runs. A path
// present in only one run carries -1 in the missing side.
type StageDelta struct {
	Path    string `json:"path"`
	AWallNS int64  `json:"a_wall_ns"`
	BWallNS int64  `json:"b_wall_ns"`
	ACPUNS  int64  `json:"a_cpu_ns"`
	BCPUNS  int64  `json:"b_cpu_ns"`
}

// WallRatio returns B's wall time as a multiple of A's (1.0 = unchanged),
// or 0 when either side is missing or A took no measurable time.
func (d StageDelta) WallRatio() float64 {
	if d.AWallNS <= 0 || d.BWallNS < 0 {
		return 0
	}
	return float64(d.BWallNS) / float64(d.AWallNS)
}

// HistDelta compares one latency histogram's p50/p99 across two runs.
// Clamped means the p99 rank fell in the +Inf overflow bucket, so the
// reported value is a floor, not an estimate.
type HistDelta struct {
	Name     string  `json:"name"`
	ACount   int64   `json:"a_count,omitempty"`
	BCount   int64   `json:"b_count,omitempty"`
	AP50     float64 `json:"a_p50,omitempty"`
	BP50     float64 `json:"b_p50,omitempty"`
	AP99     float64 `json:"a_p99,omitempty"`
	BP99     float64 `json:"b_p99,omitempty"`
	AClamped bool    `json:"a_clamped,omitempty"`
	BClamped bool    `json:"b_clamped,omitempty"`
}

// ThroughputDelta compares one derived per-second rate across two runs.
type ThroughputDelta struct {
	Name string  `json:"name"`
	A    float64 `json:"a,omitempty"`
	B    float64 `json:"b,omitempty"`
}

// ProviderDelta compares one provider's probe health across two runs,
// derived from the labeled vectors in the timings snapshot: the error rate
// from probe_outcomes_total{provider,outcome,attempt_class} (share of
// probes with a non-ok outcome) and the request p99 from the provider's
// probe_request_seconds series. A side archived before the dimensional
// layer existed has Has=false and is reported but never gated.
type ProviderDelta struct {
	Provider string  `json:"provider"`
	HasA     bool    `json:"has_a"`
	HasB     bool    `json:"has_b"`
	AProbes  int64   `json:"a_probes,omitempty"`
	BProbes  int64   `json:"b_probes,omitempty"`
	AErrRate float64 `json:"a_err_rate,omitempty"`
	BErrRate float64 `json:"b_err_rate,omitempty"`
	ALatN    int64   `json:"a_lat_n,omitempty"`
	BLatN    int64   `json:"b_lat_n,omitempty"`
	AP99     float64 `json:"a_p99,omitempty"`
	BP99     float64 `json:"b_p99,omitempty"`
	AClamped bool    `json:"a_clamped,omitempty"`
	BClamped bool    `json:"b_clamped,omitempty"`
}

// DegradationDelta compares one absorbed-failure class across two runs.
type DegradationDelta struct {
	Stage string `json:"stage"`
	Kind  string `json:"kind"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
}

// ArtifactDelta compares one emitted artifact's fingerprint across runs.
type ArtifactDelta struct {
	Name          string `json:"name"`
	A             string `json:"a,omitempty"`
	B             string `json:"b,omitempty"`
	Match         bool   `json:"match"`
	Deterministic bool   `json:"deterministic"`
}

// CalibrationDelta compares one calibration share across two runs and
// against the paper's published target (when one exists for the key).
type CalibrationDelta struct {
	Name      string  `json:"name"`
	Paper     float64 `json:"paper,omitempty"`
	HasTarget bool    `json:"has_target"`
	A         float64 `json:"a,omitempty"`
	B         float64 `json:"b,omitempty"`
	HasA      bool    `json:"has_a,omitempty"`
	HasB      bool    `json:"has_b,omitempty"`
	AOK       bool    `json:"a_ok"`
	BOK       bool    `json:"b_ok"`
}

// Report is the full structured comparison of two run archives. A is the
// baseline ("old"), B the candidate ("new").
type Report struct {
	AID          string             `json:"a_id"`
	BID          string             `json:"b_id"`
	ADir         string             `json:"a_dir,omitempty"`
	BDir         string             `json:"b_dir,omitempty"`
	ConfigMatch  bool               `json:"config_match"`
	AElapsedNS   int64              `json:"a_elapsed_ns"`
	BElapsedNS   int64              `json:"b_elapsed_ns"`
	Stages       []StageDelta       `json:"stages,omitempty"`
	Histograms   []HistDelta        `json:"histograms,omitempty"`
	Providers    []ProviderDelta    `json:"providers,omitempty"`
	Throughput   []ThroughputDelta  `json:"throughput,omitempty"`
	Degradations []DegradationDelta `json:"degradations,omitempty"`
	Artifacts    []ArtifactDelta    `json:"artifacts,omitempty"`
	Calibration  []CalibrationDelta `json:"calibration,omitempty"`
}

// throughputSpecs derive per-second rates from (metric, stage wall) pairs:
// the substrate-scan rate of the identify stage, the probe sweep rate, and
// the fingerprint-sweep rate.
var throughputSpecs = []struct {
	name    string
	counter string // counter metric, or ""
	hist    string // histogram whose Count is the numerator, when counter == ""
	stage   string
}{
	{name: "identify_records_per_s", counter: "pdns_records_scanned_total", stage: "identify"},
	{name: "probe_requests_per_s", hist: "probe_request_seconds", stage: "probe"},
	{name: "c2_probes_per_s", counter: "c2_probes_total", stage: "classify/c2-sweep"},
}

// Diff compares baseline a against candidate b dimension by dimension.
func Diff(a, b *Record) *Report {
	r := &Report{
		AID: a.Summary.ID, BID: b.Summary.ID,
		ADir: a.Dir, BDir: b.Dir,
		ConfigMatch: a.Summary.ConfigHash == b.Summary.ConfigHash,
		AElapsedNS:  a.Timings.ElapsedNS,
		BElapsedNS:  b.Timings.ElapsedNS,
	}

	// Stages, in A's order; B-only paths appended after.
	seen := map[string]bool{}
	for _, st := range a.Timings.Stages {
		seen[st.Path] = true
		d := StageDelta{Path: st.Path, AWallNS: st.WallNS, ACPUNS: st.CPUNS, BWallNS: -1, BCPUNS: -1}
		if bs := b.Timings.Stage(st.Path); bs != nil {
			d.BWallNS, d.BCPUNS = bs.WallNS, bs.CPUNS
		}
		r.Stages = append(r.Stages, d)
	}
	for _, st := range b.Timings.Stages {
		if !seen[st.Path] {
			r.Stages = append(r.Stages, StageDelta{Path: st.Path, AWallNS: -1, ACPUNS: -1, BWallNS: st.WallNS, BCPUNS: st.CPUNS})
		}
	}

	// Latency histograms present in either run.
	for _, name := range unionKeys(histNames(a), histNames(b)) {
		ha, okA := a.Timings.Metrics.Histograms[name]
		hb, okB := b.Timings.Metrics.Histograms[name]
		if (!okA || ha.Count == 0) && (!okB || hb.Count == 0) {
			continue
		}
		d := HistDelta{Name: name, ACount: ha.Count, BCount: hb.Count}
		d.AP50, _ = ha.QuantileClamped(0.5)
		d.BP50, _ = hb.QuantileClamped(0.5)
		d.AP99, d.AClamped = ha.QuantileClamped(0.99)
		d.BP99, d.BClamped = hb.QuantileClamped(0.99)
		r.Histograms = append(r.Histograms, d)
	}

	// Derived throughput rates.
	for _, spec := range throughputSpecs {
		ra := rate(a, spec.counter, spec.hist, spec.stage)
		rb := rate(b, spec.counter, spec.hist, spec.stage)
		if ra == 0 && rb == 0 {
			continue
		}
		r.Throughput = append(r.Throughput, ThroughputDelta{Name: spec.name, A: ra, B: rb})
	}

	// Per-provider probe health from the labeled vectors.
	pa, pb := providerStats(a), providerStats(b)
	for _, name := range unionKeys(pa, pb) {
		sa, okA := pa[name]
		sb, okB := pb[name]
		d := ProviderDelta{Provider: name, HasA: okA, HasB: okB}
		if okA {
			d.AProbes, d.AErrRate, d.ALatN = sa.probes, sa.errRate(), sa.latN
			d.AP99, d.AClamped = sa.p99, sa.clamped
		}
		if okB {
			d.BProbes, d.BErrRate, d.BLatN = sb.probes, sb.errRate(), sb.latN
			d.BP99, d.BClamped = sb.p99, sb.clamped
		}
		r.Providers = append(r.Providers, d)
	}

	// Degradation drift: union of (stage, kind) rows.
	type dk struct{ stage, kind string }
	counts := map[dk][2]int64{}
	var order []dk
	for _, d := range a.Summary.Degradations {
		k := dk{d.Stage, d.Kind}
		if _, ok := counts[k]; !ok {
			order = append(order, k)
		}
		c := counts[k]
		c[0] += d.Count
		counts[k] = c
	}
	for _, d := range b.Summary.Degradations {
		k := dk{d.Stage, d.Kind}
		if _, ok := counts[k]; !ok {
			order = append(order, k)
		}
		c := counts[k]
		c[1] += d.Count
		counts[k] = c
	}
	for _, k := range order {
		c := counts[k]
		r.Degradations = append(r.Degradations, DegradationDelta{Stage: k.stage, Kind: k.kind, A: c[0], B: c[1]})
	}

	// Artifact fingerprints.
	for _, name := range unionKeys(a.Summary.Artifacts, b.Summary.Artifacts) {
		fa, fb := a.Summary.Artifacts[name], b.Summary.Artifacts[name]
		r.Artifacts = append(r.Artifacts, ArtifactDelta{
			Name: name, A: fa, B: fb,
			Match:         fa != "" && fa == fb,
			Deterministic: DeterministicArtifacts[name],
		})
	}

	// Calibration against the paper.
	for _, name := range unionKeys(a.Summary.Calibration, b.Summary.Calibration) {
		va, okA := a.Summary.Calibration[name]
		vb, okB := b.Summary.Calibration[name]
		d := CalibrationDelta{Name: name, A: va, B: vb, HasA: okA, HasB: okB}
		if t, ok := TargetFor(name); ok {
			d.Paper, d.HasTarget = t.Paper, true
			d.AOK = okA && t.Contains(va)
			d.BOK = okB && t.Contains(vb)
		}
		r.Calibration = append(r.Calibration, d)
	}
	return r
}

func histNames(r *Record) map[string]obs.HistogramSnapshot { return r.Timings.Metrics.Histograms }

// providerSide is one run's per-provider probe health, reduced from the
// labeled vectors of its final metric snapshot.
type providerSide struct {
	probes  int64 // all probe_outcomes_total series for the provider
	errs    int64 // probes minus the outcome="ok" share
	latN    int64
	p99     float64
	clamped bool
}

func (s providerSide) errRate() float64 {
	if s.probes == 0 {
		return 0
	}
	return float64(s.errs) / float64(s.probes)
}

// providerStats reduces a record's probe_outcomes_total and
// probe_request_seconds vectors to per-provider health. Records archived
// before the dimensional metrics layer return an empty map.
func providerStats(r *Record) map[string]providerSide {
	out := map[string]providerSide{}
	if ov, ok := r.Timings.Metrics.CounterVecs["probe_outcomes_total"]; ok {
		total := ov.SumBy("provider", nil)
		okOnly := ov.SumBy("provider", map[string]string{"outcome": "ok"})
		for name, n := range total {
			s := out[name]
			s.probes = n
			s.errs = n - okOnly[name]
			out[name] = s
		}
	}
	if hv, ok := r.Timings.Metrics.HistogramVecs["probe_request_seconds"]; ok {
		for name, h := range hv.MergeBy("provider", nil) {
			s := out[name]
			s.latN = h.Count
			s.p99, s.clamped = h.QuantileClamped(0.99)
			out[name] = s
		}
	}
	return out
}

func rate(r *Record, counter, hist, stage string) float64 {
	st := r.Timings.Stage(stage)
	if st == nil || st.WallNS <= 0 {
		return 0
	}
	var n int64
	if counter != "" {
		n = r.Timings.Metrics.Counters[counter]
	} else if h, ok := r.Timings.Metrics.Histograms[hist]; ok {
		n = h.Count
	}
	if n == 0 {
		return 0
	}
	return float64(n) / (float64(st.WallNS) / float64(time.Second))
}

func unionKeys[V any](a, b map[string]V) []string {
	set := map[string]bool{}
	for k := range a {
		set[k] = true
	}
	for k := range b {
		set[k] = true
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// GateOptions are the regression thresholds Gate applies to a diff report.
// Timing gates are ratio thresholds with absolute floors, so microsecond
// stages can't trip a percentage check on scheduler noise.
type GateOptions struct {
	// WallTol flags a stage when BWall > AWall*(1+WallTol) and the delta
	// exceeds WallFloor. Negative disables the timing gate.
	WallTol   float64
	WallFloor time.Duration
	// P99Tol flags a histogram when Bp99 > Ap99*(1+P99Tol), both sides
	// have at least MinSamples observations, and neither p99 is clamped
	// (a clamped p99 is a floor, not an estimate — it is warned about but
	// cannot prove a regression). Negative disables.
	P99Tol     float64
	MinSamples int64
	// ErrRateTol flags a provider whose probe error rate grew by more than
	// this absolute amount over the baseline (both sides need vector data
	// and at least MinSamples probes for the provider). The same P99Tol /
	// MinSamples / clamp rules as the global histogram gate govern the
	// per-provider p99 check. Negative disables both provider gates.
	ErrRateTol float64
	// Degradations flags new degradation kinds and counts growing past
	// 2×A+10 — under a seeded chaos profile both runs see the same
	// schedule, so drift means behaviour changed.
	Degradations bool
	// Artifacts flags fingerprint mismatches on deterministic artifacts.
	Artifacts bool
	// Calibration flags candidate values outside the paper's bands.
	Calibration bool
}

// DefaultGateOptions are the thresholds `scfruns gate` starts from.
func DefaultGateOptions() GateOptions {
	return GateOptions{
		WallTol:      0.75,
		WallFloor:    500 * time.Millisecond,
		P99Tol:       1.0,
		MinSamples:   50,
		ErrRateTol:   0.02,
		Degradations: true,
		Artifacts:    true,
		Calibration:  true,
	}
}

// Gate audits the report against the thresholds and returns one line per
// violation; empty means the candidate passes.
func (r *Report) Gate(o GateOptions) []string {
	var v []string
	if !r.ConfigMatch {
		v = append(v, fmt.Sprintf("config mismatch: %s vs %s — timing comparison is apples to oranges", r.AID, r.BID))
	}
	if o.WallTol >= 0 {
		for _, d := range r.Stages {
			if d.AWallNS < 0 || d.BWallNS < 0 {
				continue
			}
			delta := time.Duration(d.BWallNS - d.AWallNS)
			if delta > o.WallFloor && float64(d.BWallNS) > float64(d.AWallNS)*(1+o.WallTol) {
				v = append(v, fmt.Sprintf("stage %s wall regressed: %v -> %v (%.2fx, tol %.2fx)",
					d.Path, time.Duration(d.AWallNS).Round(time.Millisecond),
					time.Duration(d.BWallNS).Round(time.Millisecond), d.WallRatio(), 1+o.WallTol))
			}
		}
	}
	if o.P99Tol >= 0 {
		for _, h := range r.Histograms {
			if h.ACount < o.MinSamples || h.BCount < o.MinSamples {
				continue
			}
			if h.AClamped || h.BClamped {
				continue // warned in Render; a floor can't prove a regression
			}
			if h.AP99 > 0 && h.BP99 > h.AP99*(1+o.P99Tol) {
				v = append(v, fmt.Sprintf("histogram %s p99 regressed: %.4gs -> %.4gs (tol %.2fx)",
					h.Name, h.AP99, h.BP99, 1+o.P99Tol))
			}
		}
	}
	if o.ErrRateTol >= 0 {
		for _, p := range r.Providers {
			if !p.HasA || !p.HasB {
				continue // one side predates the dimensional layer
			}
			if p.AProbes >= o.MinSamples && p.BProbes >= o.MinSamples &&
				p.BErrRate > p.AErrRate+o.ErrRateTol {
				v = append(v, fmt.Sprintf("provider %s error rate regressed: %.4f -> %.4f (tol +%.4f)",
					p.Provider, p.AErrRate, p.BErrRate, o.ErrRateTol))
			}
			if o.P99Tol >= 0 && p.ALatN >= o.MinSamples && p.BLatN >= o.MinSamples &&
				!p.AClamped && !p.BClamped && p.AP99 > 0 && p.BP99 > p.AP99*(1+o.P99Tol) {
				v = append(v, fmt.Sprintf("provider %s probe p99 regressed: %.4gs -> %.4gs (tol %.2fx)",
					p.Provider, p.AP99, p.BP99, 1+o.P99Tol))
			}
		}
	}
	if o.Degradations {
		for _, d := range r.Degradations {
			switch {
			case d.A == 0 && d.B > 0:
				v = append(v, fmt.Sprintf("new degradation %s/%s: 0 -> %d", d.Stage, d.Kind, d.B))
			case d.B > d.A*2+10:
				v = append(v, fmt.Sprintf("degradation %s/%s grew: %d -> %d", d.Stage, d.Kind, d.A, d.B))
			}
		}
	}
	if o.Artifacts {
		for _, a := range r.Artifacts {
			if a.Deterministic && !a.Match {
				v = append(v, fmt.Sprintf("deterministic artifact %s fingerprint changed (%.12s -> %.12s)", a.Name, a.A, a.B))
			}
		}
	}
	if o.Calibration {
		for _, c := range r.Calibration {
			if c.HasTarget && c.HasB && !c.BOK {
				v = append(v, fmt.Sprintf("calibration %s drifted from paper: measured %.4f, published %.4f", c.Name, c.B, c.Paper))
			}
		}
	}
	return v
}

// Render formats the report for humans: one table per dimension, then a
// one-line verdict hint. scfruns diff prints exactly this.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Run diff: %s (baseline) vs %s (candidate)\n", r.AID, r.BID)
	if !r.ConfigMatch {
		b.WriteString("NOTE: configs differ — timing deltas compare different experiments\n")
	}
	fmt.Fprintf(&b, "elapsed: %v -> %v\n\n",
		time.Duration(r.AElapsedNS).Round(time.Millisecond),
		time.Duration(r.BElapsedNS).Round(time.Millisecond))

	st := report.NewTable("Per-stage wall/CPU", "Stage", "Wall A", "Wall B", "xWall", "CPU A", "CPU B")
	for _, d := range r.Stages {
		ratio := "-"
		if rr := d.WallRatio(); rr > 0 {
			ratio = fmt.Sprintf("%.2fx", rr)
		}
		st.AddRow(d.Path, fmtNS(d.AWallNS), fmtNS(d.BWallNS), ratio, fmtNS(d.ACPUNS), fmtNS(d.BCPUNS))
	}
	b.WriteString(st.String())
	b.WriteString("\n")

	if len(r.Histograms) > 0 {
		ht := report.NewTable("Latency quantiles", "Histogram", "n A", "n B", "p50 A", "p50 B", "p99 A", "p99 B", "Clamped")
		for _, h := range r.Histograms {
			clamp := ""
			if h.AClamped || h.BClamped {
				clamp = "p99 at bucket ceiling (floor only)"
			}
			ht.AddRow(h.Name, h.ACount, h.BCount,
				fmtSec(h.AP50), fmtSec(h.BP50), fmtSec(h.AP99), fmtSec(h.BP99), clamp)
		}
		b.WriteString(ht.String())
		b.WriteString("\n")
	}

	if len(r.Providers) > 0 {
		pt := report.NewTable("Per-provider probe health", "Provider", "Probes A", "Probes B", "Err A", "Err B", "p99 A", "p99 B")
		for _, p := range r.Providers {
			pt.AddRow(p.Provider,
				fmtProbeN(p.AProbes, p.HasA), fmtProbeN(p.BProbes, p.HasB),
				fmtRate(p.AErrRate, p.HasA), fmtRate(p.BErrRate, p.HasB),
				fmtSec(p.AP99), fmtSec(p.BP99))
		}
		b.WriteString(pt.String())
		b.WriteString("\n")
	}

	if len(r.Throughput) > 0 {
		tt := report.NewTable("Throughput", "Rate", "A", "B")
		for _, t := range r.Throughput {
			tt.AddRow(t.Name, fmt.Sprintf("%.0f/s", t.A), fmt.Sprintf("%.0f/s", t.B))
		}
		b.WriteString(tt.String())
		b.WriteString("\n")
	}

	if len(r.Degradations) > 0 {
		dt := report.NewTable("Degradation drift", "Stage", "Kind", "A", "B")
		for _, d := range r.Degradations {
			dt.AddRow(d.Stage, d.Kind, d.A, d.B)
		}
		b.WriteString(dt.String())
		b.WriteString("\n")
	}

	if len(r.Artifacts) > 0 {
		at := report.NewTable("Artifact fingerprints", "Artifact", "Match", "Gated", "A", "B")
		for _, a := range r.Artifacts {
			match := "DIFFER"
			if a.Match {
				match = "equal"
			}
			gated := ""
			if a.Deterministic {
				gated = "yes"
			}
			at.AddRow(a.Name, match, gated, short(a.A), short(a.B))
		}
		b.WriteString(at.String())
		b.WriteString("\n")
	}

	if len(r.Calibration) > 0 {
		ct := report.NewTable("Calibration vs paper", "Metric", "Paper", "A", "B", "B holds")
		for _, c := range r.Calibration {
			paper, holds := "-", "-"
			if c.HasTarget {
				paper = fmt.Sprintf("%.4f", c.Paper)
				holds = "yes"
				if c.HasB && !c.BOK {
					holds = "**NO**"
				}
			}
			ct.AddRow(c.Name, paper, fmtCal(c.A, c.HasA), fmtCal(c.B, c.HasB), holds)
		}
		b.WriteString(ct.String())
	}
	return b.String()
}

func fmtNS(ns int64) string {
	if ns < 0 {
		return "-"
	}
	// "µs" -> "us" keeps the table's byte-width alignment intact.
	return strings.ReplaceAll(time.Duration(ns).Round(10*time.Microsecond).String(), "µs", "us")
}

func fmtSec(s float64) string {
	if s == 0 {
		return "-"
	}
	return strings.ReplaceAll(time.Duration(s*float64(time.Second)).Round(10*time.Microsecond).String(), "µs", "us")
}

func fmtProbeN(n int64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%d", n)
}

func fmtRate(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.4f", v)
}

func fmtCal(v float64, ok bool) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.4f", v)
}

func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	if fp == "" {
		return "-"
	}
	return fp
}
