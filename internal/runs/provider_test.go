package runs

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

// providerRecord is baselineRecord plus labeled probe vectors: per-provider
// outcome counts and request-latency series, the inputs of the
// provider-granular gate dimension.
func providerRecord(connAWS int64) *Record {
	r := baselineRecord()
	reg := obs.NewRegistry()
	ov := reg.CounterVec("probe_outcomes_total", "provider", "outcome", "attempt_class")
	ov.With("AWS", "ok", "first").Add(100 - connAWS)
	ov.With("AWS", "conn", "first").Add(connAWS)
	ov.With("Tencent", "ok", "first").Add(200)
	hv := reg.HistogramVec("probe_request_seconds", []float64{0.01, 0.05, 0.1, 0.5, 1}, "provider")
	for i := 0; i < 100; i++ {
		hv.With("AWS").Observe(0.02)
		hv.With("Tencent").Observe(0.04)
	}
	r.Timings.Metrics = reg.Snapshot()
	return r
}

func TestDiffProviderDeltas(t *testing.T) {
	a := providerRecord(0)
	b := providerRecord(10) // AWS error rate 0 -> 10%
	b.Summary.ConfigHash = a.Summary.ConfigHash
	rep := Diff(a, b)
	if len(rep.Providers) != 2 {
		t.Fatalf("providers = %+v, want AWS and Tencent", rep.Providers)
	}
	var aws ProviderDelta
	for _, p := range rep.Providers {
		if p.Provider == "AWS" {
			aws = p
		}
	}
	if !aws.HasA || !aws.HasB || aws.AProbes != 100 || aws.BProbes != 100 {
		t.Fatalf("AWS delta = %+v", aws)
	}
	if aws.AErrRate != 0 || aws.BErrRate != 0.1 {
		t.Fatalf("AWS error rates = %v -> %v, want 0 -> 0.1", aws.AErrRate, aws.BErrRate)
	}
	if aws.ALatN != 100 || aws.AP99 <= 0 {
		t.Fatalf("AWS latency side = %+v, want populated p99", aws)
	}
}

func TestGateFlagsProviderErrorRateGrowth(t *testing.T) {
	a := providerRecord(0)
	b := providerRecord(10)
	b.Summary.ConfigHash = a.Summary.ConfigHash
	v := Diff(a, b).Gate(DefaultGateOptions())
	found := false
	for _, line := range v {
		if strings.Contains(line, "provider AWS error rate regressed") {
			found = true
		}
		if strings.Contains(line, "Tencent") {
			t.Fatalf("clean provider gated: %v", v)
		}
	}
	if !found {
		t.Fatalf("violations = %v, want AWS error-rate regression", v)
	}

	// Inside the tolerance nothing fires: +1% against a 2% default.
	b2 := providerRecord(1)
	b2.Summary.ConfigHash = a.Summary.ConfigHash
	if v := Diff(a, b2).Gate(DefaultGateOptions()); len(v) != 0 {
		t.Fatalf("sub-tolerance drift gated: %v", v)
	}

	// Negative tolerance disables the provider dimension entirely.
	o := DefaultGateOptions()
	o.ErrRateTol = -1
	if v := Diff(a, b).Gate(o); len(v) != 0 {
		t.Fatalf("disabled provider gate still fired: %v", v)
	}
}

func TestGateFlagsProviderP99Drift(t *testing.T) {
	a := providerRecord(0)
	b := baselineRecord()
	reg := obs.NewRegistry()
	ov := reg.CounterVec("probe_outcomes_total", "provider", "outcome", "attempt_class")
	ov.With("AWS", "ok", "first").Add(100)
	ov.With("Tencent", "ok", "first").Add(200)
	hv := reg.HistogramVec("probe_request_seconds", []float64{0.01, 0.05, 0.1, 0.5, 1}, "provider")
	for i := 0; i < 100; i++ {
		hv.With("AWS").Observe(0.3) // was ~0.02: far past the 2x default tolerance
		hv.With("Tencent").Observe(0.04)
	}
	b.Timings.Metrics = reg.Snapshot()
	b.Summary.ConfigHash = a.Summary.ConfigHash

	v := Diff(a, b).Gate(DefaultGateOptions())
	found := false
	for _, line := range v {
		if strings.Contains(line, "provider AWS probe p99 regressed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violations = %v, want AWS p99 regression", v)
	}
}

// Archives written before the dimensional layer carry no vectors: the
// provider dimension reports nothing and can never gate.
func TestProviderGateSkipsVectorlessSides(t *testing.T) {
	a := baselineRecord() // no vectors
	b := providerRecord(50)
	b.Summary.ConfigHash = a.Summary.ConfigHash
	rep := Diff(a, b)
	for _, p := range rep.Providers {
		if p.HasA {
			t.Fatalf("vector-free baseline claims provider data: %+v", p)
		}
	}
	for _, line := range rep.Gate(DefaultGateOptions()) {
		if strings.Contains(line, "provider") {
			t.Fatalf("one-sided provider data gated: %s", line)
		}
	}
}

func TestRenderShowsProviderTable(t *testing.T) {
	a := providerRecord(0)
	b := providerRecord(10)
	b.Summary.ConfigHash = a.Summary.ConfigHash
	out := Diff(a, b).Render()
	if !strings.Contains(out, "Per-provider probe health") || !strings.Contains(out, "AWS") {
		t.Fatalf("render lacks the provider table:\n%s", out)
	}
}
