package runs

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// PerfReportInput is everything the rendered perf-trajectory report reads:
// the scenario-matrix cell archives, optional per-cell baselines, the
// current and baseline bench captures, and the committed trajectory. All of
// it comes from files — RenderPerfReport itself consults no clock, no
// environment, nothing outside its argument — so two renders over identical
// inputs are byte-identical.
type PerfReportInput struct {
	// Cells are the matrix cell archives (ListMatrix order: sorted by cell
	// ID, which is also their directory name).
	Cells []*Record
	// Baselines maps cell ID to that cell's baseline archive, when one
	// exists; cells without a baseline render without delta columns.
	Baselines map[string]*Record
	// Bench is the current capture (BENCH_pipeline.json), BenchBase the
	// baseline to delta against; either may be nil.
	Bench     *BenchSet
	BenchBase *BenchSet
	// History is the perf trajectory, oldest first.
	History []HistoryEntry
	// ProfHotspots is a pre-rendered CPU-hotspot section (from
	// `scfruns prof show`/`diff`); empty means no profiling data, and the
	// section is omitted. The caller renders it because the prof package
	// cannot import runs (runs already imports prof).
	ProfHotspots string
}

// sparkRunes are the eight-level resolution of the trajectory sparklines.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// RenderPerfReport renders the deterministic Markdown perf report:
// per-cell stage walls, probe p99 by provider, resource high-water marks,
// bench deltas vs baseline, and the ns/op trajectory across history
// records. Sections with no data are omitted rather than rendered empty.
func RenderPerfReport(in PerfReportInput) string {
	var b strings.Builder
	b.WriteString("# Performance report\n\n")
	fmt.Fprintf(&b, "Scenario cells: %d · bench history records: %d\n", len(in.Cells), len(in.History))

	renderCellStages(&b, in)
	renderCellProviders(&b, in.Cells)
	renderCellResources(&b, in.Cells)
	renderBenchSection(&b, in.Bench, in.BenchBase)
	renderTrajectory(&b, in.History)
	if in.ProfHotspots != "" {
		b.WriteString("\n## CPU hotspots\n\n")
		b.WriteString("```\n")
		b.WriteString(strings.TrimRight(in.ProfHotspots, "\n"))
		b.WriteString("\n```\n")
	}
	return b.String()
}

// cellID is the archive slot name of a matrix record.
func cellID(r *Record) string { return filepath.Base(r.Dir) }

// rootStages returns the union of top-level stage paths across cells, in
// the order the first cell that has each stage recorded it — pipeline
// execution order, not alphabetical, so the table reads left to right the
// way the run executed.
func rootStages(cells []*Record) []string {
	var order []string
	seen := map[string]bool{}
	for _, rec := range cells {
		for _, st := range rec.Timings.Stages {
			if strings.Contains(st.Path, "/") || seen[st.Path] {
				continue
			}
			seen[st.Path] = true
			order = append(order, st.Path)
		}
	}
	return order
}

func renderCellStages(b *strings.Builder, in PerfReportInput) {
	if len(in.Cells) == 0 {
		return
	}
	stages := rootStages(in.Cells)
	b.WriteString("\n## Scenario matrix — stage walls\n\n")
	b.WriteString("Cell IDs are `s<scale>-w<workers>-c<chaos>`; Δ columns compare against the cell's baseline archive when one exists.\n\n")
	b.WriteString("| Cell | Elapsed |")
	for _, s := range stages {
		fmt.Fprintf(b, " %s |", s)
	}
	b.WriteString("\n|---|---|")
	b.WriteString(strings.Repeat("---|", len(stages)))
	b.WriteString("\n")
	for _, rec := range in.Cells {
		id := cellID(rec)
		fmt.Fprintf(b, "| %s | %s |", id, fmtWall(rec.Timings.ElapsedNS))
		base := in.Baselines[id]
		for _, s := range stages {
			st := rec.Timings.Stage(s)
			if st == nil {
				b.WriteString(" - |")
				continue
			}
			cell := fmtWall(st.WallNS)
			if base != nil {
				if bst := base.Timings.Stage(s); bst != nil && bst.WallNS > 0 {
					cell += fmt.Sprintf(" (%+.0f%%)", 100*(float64(st.WallNS)/float64(bst.WallNS)-1))
				}
			}
			fmt.Fprintf(b, " %s |", cell)
		}
		b.WriteString("\n")
	}
}

func renderCellProviders(b *strings.Builder, cells []*Record) {
	if len(cells) == 0 {
		return
	}
	perCell := make([]map[string]providerSide, len(cells))
	provSet := map[string]bool{}
	for i, rec := range cells {
		perCell[i] = providerStats(rec)
		for name := range perCell[i] {
			provSet[name] = true
		}
	}
	if len(provSet) == 0 {
		return
	}
	providers := make([]string, 0, len(provSet))
	for name := range provSet {
		providers = append(providers, name)
	}
	sort.Strings(providers)
	b.WriteString("\n## Probe p99 by provider\n\n")
	b.WriteString("Per-cell probe request p99 from the labeled latency vectors; `*` marks a clamped estimate (rank fell in the +Inf bucket, value is a floor).\n\n")
	b.WriteString("| Cell |")
	for _, p := range providers {
		fmt.Fprintf(b, " %s |", p)
	}
	b.WriteString("\n|---|")
	b.WriteString(strings.Repeat("---|", len(providers)))
	b.WriteString("\n")
	for i, rec := range cells {
		fmt.Fprintf(b, "| %s |", cellID(rec))
		for _, p := range providers {
			s, ok := perCell[i][p]
			if !ok || s.latN == 0 {
				b.WriteString(" - |")
				continue
			}
			cell := fmtSecMD(s.p99)
			if s.clamped {
				cell += "*"
			}
			fmt.Fprintf(b, " %s |", cell)
		}
		b.WriteString("\n")
	}
}

func renderCellResources(b *strings.Builder, cells []*Record) {
	any := false
	for _, rec := range cells {
		if len(rec.Timings.Resources) > 0 {
			any = true
			break
		}
	}
	if !any {
		return
	}
	b.WriteString("\n## Resource high-water marks\n\n")
	b.WriteString("Peak runtime state per cell across all stages (machine-varying; excluded from golden fingerprints). The peak-heap stage names where the heap high-water mark occurred.\n\n")
	b.WriteString("| Cell | Peak heap | Peak RSS | Peak goroutines | GCs | GC pause p99 | Peak-heap stage |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, rec := range cells {
		rs := rec.Timings.Resources
		if len(rs) == 0 {
			fmt.Fprintf(b, "| %s | - | - | - | - | - | - |\n", cellID(rec))
			continue
		}
		var heap, rss, gor, gcs, pause int64
		peakStage := ""
		for _, st := range rs {
			if st.MaxHeapInuseBytes > heap {
				heap, peakStage = st.MaxHeapInuseBytes, st.Stage
			}
			if st.MaxRSSBytes > rss {
				rss = st.MaxRSSBytes
			}
			if st.MaxGoroutines > gor {
				gor = st.MaxGoroutines
			}
			gcs += st.GCCount
			if st.GCPauseP99NS > pause {
				pause = st.GCPauseP99NS
			}
		}
		fmt.Fprintf(b, "| %s | %s | %s | %d | %d | %s | %s |\n",
			cellID(rec), fmtBytes(heap), fmtBytes(rss), gor, gcs, fmtWall(pause), peakStage)
	}
}

func renderBenchSection(b *strings.Builder, cur, base *BenchSet) {
	if cur == nil {
		return
	}
	curPts := cur.MeanPoints()
	var basePts map[string]BenchPoint
	if base != nil {
		basePts = base.MeanPoints()
	}
	names := make([]string, 0, len(curPts))
	for name := range curPts {
		names = append(names, name)
	}
	for name := range basePts {
		if _, ok := curPts[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	b.WriteString("\n## Benchmarks\n\n")
	if basePts == nil {
		b.WriteString("Mean over repeats of the current capture (no baseline given).\n\n")
		b.WriteString("| Benchmark | ns/op | B/op | allocs/op |\n|---|---|---|---|\n")
		for _, name := range names {
			p := curPts[name]
			fmt.Fprintf(b, "| %s | %.0f | %.0f | %.1f |\n", name, p.NsPerOp, p.BytesPerOp, p.AllocsPerOp)
		}
		return
	}
	b.WriteString("Mean over repeats, candidate vs baseline; Δ is the candidate as a change over baseline.\n\n")
	b.WriteString("| Benchmark | ns/op (base) | ns/op | Δns/op | allocs/op (base) | allocs/op | Δallocs |\n|---|---|---|---|---|---|---|\n")
	for _, name := range names {
		cp, okC := curPts[name]
		bp, okB := basePts[name]
		fmt.Fprintf(b, "| %s | %s | %s | %s | %s | %s | %s |\n", name,
			fmtBenchF(bp.NsPerOp, okB, "%.0f"), fmtBenchF(cp.NsPerOp, okC, "%.0f"),
			fmtDeltaPct(bp.NsPerOp, cp.NsPerOp, okB && okC),
			fmtBenchF(bp.AllocsPerOp, okB, "%.1f"), fmtBenchF(cp.AllocsPerOp, okC, "%.1f"),
			fmtDeltaPct(bp.AllocsPerOp, cp.AllocsPerOp, okB && okC))
	}
}

func renderTrajectory(b *strings.Builder, history []HistoryEntry) {
	if len(history) == 0 {
		return
	}
	b.WriteString("\n## Perf trajectory\n\n")
	fmt.Fprintf(b, "ns/op across the %d committed bench captures, oldest → newest. Sparklines normalise each benchmark to its own min–max range.\n\n", len(history))
	b.WriteString("| # | Label | Captured | Platform |\n|---|---|---|---|\n")
	for i, e := range history {
		fmt.Fprintf(b, "| %d | %s | %s | %s |\n", i+1,
			orDash(e.Label), orDash(e.CapturedAt), orDash(strings.TrimSpace(e.Goos+"/"+e.Goarch)))
	}
	b.WriteString("\n| Benchmark | Trajectory | First | Last | Δ |\n|---|---|---|---|---|\n")
	for _, name := range historyBenchNames(history) {
		var series []float64
		for _, e := range history {
			if p, ok := e.Bench[name]; ok {
				series = append(series, p.NsPerOp)
			}
		}
		if len(series) == 0 {
			continue
		}
		first, last := series[0], series[len(series)-1]
		fmt.Fprintf(b, "| %s | `%s` | %.0f | %.0f | %s |\n",
			name, sparkline(series), first, last, fmtDeltaPct(first, last, true))
	}
}

// sparkline renders a min–max-normalised series with eight-level block
// runes; a flat series renders at the lowest level.
func sparkline(series []float64) string {
	lo, hi := series[0], series[0]
	for _, v := range series {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var out strings.Builder
	for _, v := range series {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		out.WriteRune(sparkRunes[idx])
	}
	return out.String()
}

// fmtWall formats nanoseconds for the Markdown tables ("-" when negative).
func fmtWall(ns int64) string {
	if ns < 0 {
		return "-"
	}
	return strings.ReplaceAll(time.Duration(ns).Round(10*time.Microsecond).String(), "µs", "us")
}

// fmtSecMD formats a seconds value as a rounded duration.
func fmtSecMD(s float64) string {
	if s == 0 {
		return "-"
	}
	return strings.ReplaceAll(time.Duration(s*float64(time.Second)).Round(10*time.Microsecond).String(), "µs", "us")
}

// fmtBytes renders a byte count in binary units with one decimal.
func fmtBytes(n int64) string {
	switch {
	case n <= 0:
		return "-"
	case n < 1<<10:
		return fmt.Sprintf("%d B", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.2f GiB", float64(n)/(1<<30))
	}
}

func fmtBenchF(v float64, ok bool, format string) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf(format, v)
}

// fmtDeltaPct formats b relative to a as a signed percentage, "-" when
// either side is missing or a is zero (no meaningful ratio).
func fmtDeltaPct(a, b float64, ok bool) string {
	if !ok || a == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", 100*(b/a-1))
}

func orDash(s string) string {
	if strings.Trim(s, "/ ") == "" {
		return "-"
	}
	return s
}
