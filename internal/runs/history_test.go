package runs

import (
	"path/filepath"
	"strings"
	"testing"
)

func benchSetFixture(ns, allocs float64) *BenchSet {
	return &BenchSet{
		Goos: "linux", Goarch: "amd64",
		Results: []BenchResult{
			{Name: "BenchmarkTable2Resolution-8", Base: "BenchmarkTable2Resolution", Iterations: 10, NsPerOp: ns, AllocsPerOp: allocs},
			{Name: "BenchmarkTable2Resolution-8", Base: "BenchmarkTable2Resolution", Iterations: 10, NsPerOp: ns + 2, AllocsPerOp: allocs},
			{Name: "BenchmarkTop10Share-8", Base: "BenchmarkTop10Share", Iterations: 100, NsPerOp: ns / 10},
		},
	}
}

func TestHistoryAppendReadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), HistoryFile)
	if got, err := ReadHistory(path); err != nil || got != nil {
		t.Fatalf("missing history: want empty, got %v err %v", got, err)
	}
	e1 := HistoryEntryFrom(benchSetFixture(1000, 50), "pr-5", "2026-08-01T00:00:00Z")
	e2 := HistoryEntryFrom(benchSetFixture(800, 40), "pr-6", "2026-08-08T00:00:00Z")
	if err := AppendHistory(path, e1); err != nil {
		t.Fatal(err)
	}
	if err := AppendHistory(path, e2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Label != "pr-5" || got[1].Label != "pr-6" {
		t.Fatalf("history order wrong: %+v", got)
	}
	// Means over the -count repeats: (1000+1002)/2.
	if ns := got[0].Bench["BenchmarkTable2Resolution"].NsPerOp; ns != 1001 {
		t.Fatalf("mean ns/op: want 1001, got %v", ns)
	}
	if a := got[0].Bench["BenchmarkTable2Resolution"].AllocsPerOp; a != 50 {
		t.Fatalf("mean allocs/op: want 50, got %v", a)
	}
}

func TestHistoryRejectsEmptyEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), HistoryFile)
	if err := AppendHistory(path, HistoryEntry{Label: "empty"}); err == nil {
		t.Fatal("empty bench map must be rejected")
	}
}

func TestHistoryMalformedLine(t *testing.T) {
	if _, err := readHistory(strings.NewReader("{\"bench\":{}}\nnot-json\n")); err == nil {
		t.Fatal("malformed line must error")
	}
}
