package runs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// HistoryFile is the repo-root perf trajectory: one JSONL record per
// `make bench-json` capture, append-only, committed alongside
// BENCH_pipeline.json so successive PRs accumulate a time series the
// report's trajectory table renders.
const HistoryFile = "BENCH_history.jsonl"

// BenchPoint is one benchmark's mean figures within a history entry.
type BenchPoint struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// HistoryEntry is one perf-trajectory record: a bench capture reduced to
// per-benchmark means, stamped with where and when it was taken. CapturedAt
// and Label are provenance only — the report renders whatever the file
// holds, so they never threaten report determinism.
type HistoryEntry struct {
	CapturedAt string                `json:"captured_at,omitempty"`
	Label      string                `json:"label,omitempty"`
	Goos       string                `json:"goos,omitempty"`
	Goarch     string                `json:"goarch,omitempty"`
	CPU        string                `json:"cpu,omitempty"`
	Bench      map[string]BenchPoint `json:"bench"`
}

// MeanPoints reduces the set to per-base-benchmark mean ns/op, B/op, and
// allocs/op over the -count repeats.
func (s *BenchSet) MeanPoints() map[string]BenchPoint {
	sums := map[string]BenchPoint{}
	ns := map[string]int{}
	for _, r := range s.Results {
		p := sums[r.Base]
		p.NsPerOp += r.NsPerOp
		p.BytesPerOp += r.BytesPerOp
		p.AllocsPerOp += r.AllocsPerOp
		sums[r.Base] = p
		ns[r.Base]++
	}
	out := make(map[string]BenchPoint, len(sums))
	for k, p := range sums {
		n := float64(ns[k])
		out[k] = BenchPoint{NsPerOp: p.NsPerOp / n, BytesPerOp: p.BytesPerOp / n, AllocsPerOp: p.AllocsPerOp / n}
	}
	return out
}

// HistoryEntryFrom reduces a bench capture to one trajectory record.
func HistoryEntryFrom(set *BenchSet, label, capturedAt string) HistoryEntry {
	return HistoryEntry{
		CapturedAt: capturedAt,
		Label:      label,
		Goos:       set.Goos,
		Goarch:     set.Goarch,
		CPU:        set.CPU,
		Bench:      set.MeanPoints(),
	}
}

// AppendHistory appends e as one JSON line to the trajectory file, creating
// it when missing. Append-only by construction: the existing series is
// never rewritten.
func AppendHistory(path string, e HistoryEntry) error {
	if len(e.Bench) == 0 {
		return fmt.Errorf("runs: history: refusing to append an entry with no benchmarks")
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("runs: history: %w", err)
	}
	werr := json.NewEncoder(f).Encode(e)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return fmt.Errorf("runs: history: %w", werr)
	}
	return nil
}

// ReadHistory loads the trajectory file, oldest first. A missing file is an
// empty trajectory; a malformed line is an error (the file is append-only
// and committed, so corruption means something went wrong).
func ReadHistory(path string) ([]HistoryEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("runs: history: %w", err)
	}
	defer f.Close()
	return readHistory(f)
}

func readHistory(r io.Reader) ([]HistoryEntry, error) {
	var out []HistoryEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e HistoryEntry
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("runs: history: line %d: %w", len(out)+1, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runs: history: %w", err)
	}
	return out, nil
}

// historyBenchNames is the sorted union of benchmark names across entries.
func historyBenchNames(entries []HistoryEntry) []string {
	set := map[string]bool{}
	for _, e := range entries {
		for name := range e.Bench {
			set[name] = true
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
