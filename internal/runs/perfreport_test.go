package runs

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

// perfInputFixture builds a two-cell matrix with baselines, a bench pair,
// and a three-entry history — every section of the report populated.
func perfInputFixture(t *testing.T) PerfReportInput {
	t.Helper()
	root, baseRoot := t.TempDir(), t.TempDir()
	a := Cell{Scale: 0.01, Workers: 1, Chaos: "none"}
	b := Cell{Scale: 0.01, Workers: 8, Chaos: "heavy"}
	writeCell(t, root, a, 2e9)
	writeCell(t, root, b, 3e9)
	writeCell(t, baseRoot, a, 1e9)
	cells, err := ListMatrix(root)
	if err != nil {
		t.Fatal(err)
	}
	baseCells, err := ListMatrix(baseRoot)
	if err != nil {
		t.Fatal(err)
	}
	baselines := map[string]*Record{}
	for _, rec := range baseCells {
		baselines[filepath.Base(rec.Dir)] = rec
	}
	return PerfReportInput{
		Cells:     cells,
		Baselines: baselines,
		Bench:     benchSetFixture(800, 40),
		BenchBase: benchSetFixture(1000, 50),
		History: []HistoryEntry{
			HistoryEntryFrom(benchSetFixture(1000, 50), "pr-4", "2026-07-01T00:00:00Z"),
			HistoryEntryFrom(benchSetFixture(1200, 50), "pr-5", "2026-07-20T00:00:00Z"),
			HistoryEntryFrom(benchSetFixture(800, 40), "pr-6", "2026-08-08T00:00:00Z"),
		},
	}
}

func TestRenderPerfReportDeterministic(t *testing.T) {
	in := perfInputFixture(t)
	first := RenderPerfReport(in)
	for i := 0; i < 5; i++ {
		if got := RenderPerfReport(in); got != first {
			t.Fatalf("render %d differs from first render", i+1)
		}
	}
}

func TestRenderPerfReportSections(t *testing.T) {
	out := RenderPerfReport(perfInputFixture(t))
	for _, want := range []string{
		"# Performance report",
		"## Scenario matrix — stage walls",
		"## Resource high-water marks",
		"## Benchmarks",
		"## Perf trajectory",
		"s0.01-w1-cnone",
		"s0.01-w8-cheavy",
		"BenchmarkTable2Resolution",
		"(+100%)", // w1 cell identify wall doubled vs its baseline
		"-20.0%",  // ns/op 1000 -> 800, in the bench deltas and the trajectory
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	// Cells without a baseline must render without delta decoration.
	if strings.Count(out, "(+100%)") != 1 {
		t.Fatalf("baseline delta should appear exactly once:\n%s", out)
	}
}

func TestRenderPerfReportEmptySectionsOmitted(t *testing.T) {
	out := RenderPerfReport(PerfReportInput{})
	if strings.Contains(out, "## ") {
		t.Fatalf("empty input must render no sections:\n%s", out)
	}
	// History-only input renders only the trajectory.
	out = RenderPerfReport(PerfReportInput{History: []HistoryEntry{
		HistoryEntryFrom(benchSetFixture(1000, 50), "pr-4", ""),
	}})
	if !strings.Contains(out, "## Perf trajectory") || strings.Contains(out, "## Scenario matrix") {
		t.Fatalf("history-only report wrong:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	if got := sparkline([]float64{1, 1, 1}); got != "▁▁▁" {
		t.Fatalf("flat series: got %q", got)
	}
	got := sparkline([]float64{0, 50, 100})
	r := []rune(got)
	if len(r) != 3 || r[0] != '▁' || r[2] != '█' {
		t.Fatalf("ramp series: got %q", got)
	}
}

func TestPerfReportProviderSection(t *testing.T) {
	// A cell whose timings carry the labeled probe vectors renders the
	// provider p99 table.
	root := t.TempDir()
	c := Cell{Scale: 0.01, Workers: 1, Chaos: "none"}
	arch := cellArchive(c, 1e9)
	reg := obs.NewRegistry()
	hv := reg.HistogramVec("probe_request_seconds", nil, "provider")
	for i := 0; i < 100; i++ {
		hv.With("aws").Observe(0.01)
	}
	cv := reg.CounterVec("probe_outcomes_total", "provider", "outcome", "attempt_class")
	cv.With("aws", "ok", "first").Add(100)
	arch.Timings.Metrics = reg.Snapshot()
	if err := WriteDir(filepath.Join(root, MatrixDir, c.ID()), arch); err != nil {
		t.Fatal(err)
	}
	cells, err := ListMatrix(root)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderPerfReport(PerfReportInput{Cells: cells})
	if !strings.Contains(out, "## Probe p99 by provider") || !strings.Contains(out, "aws") {
		t.Fatalf("provider section missing:\n%s", out)
	}
}
