package runs

import (
	"path/filepath"
	"testing"
)

// The committed golden archive under testdata/golden is the `make gate`
// baseline: scfpipe -seed 1 -scale 0.01 -workers 4 -chaos none -skip-c2.
// Regenerate it by re-running that command and copying .runs/<id>/ over.

func TestGoldenSelfGateIsClean(t *testing.T) {
	rec, err := Read(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	rep := Diff(rec, rec)
	if v := rep.Gate(DefaultGateOptions()); len(v) != 0 {
		t.Fatalf("golden must gate clean against itself: %v", v)
	}
}

func TestGoldenShape(t *testing.T) {
	rec, err := Read(filepath.Join("testdata", "golden"))
	if err != nil {
		t.Fatal(err)
	}
	if rec.Summary.ID != RunID(rec.Summary.ConfigHash) {
		t.Fatalf("ID %s does not derive from config hash %s", rec.Summary.ID, rec.Summary.ConfigHash)
	}
	if rec.Summary.ConfigHash != ConfigHash(rec.Summary.Meta) {
		t.Fatal("config hash does not match recorded meta — was meta edited by hand?")
	}
	for name := range DeterministicArtifacts {
		fp, ok := rec.Summary.Artifacts[name]
		if !ok || len(fp) != 64 {
			t.Fatalf("deterministic artifact %s missing or unfingerprinted (%q)", name, fp)
		}
		body, err := rec.ReadArtifact(name)
		if err != nil {
			t.Fatalf("artifact %s content missing: %v", name, err)
		}
		if Fingerprint(body) != fp {
			t.Fatalf("artifact %s content does not match its fingerprint", name)
		}
	}
	// Every calibration share the golden run measured must sit inside the
	// paper band its gate enforces — otherwise make gate would fail fresh
	// checkouts. skip-c2 runs still measure all ten shares.
	for _, tg := range PaperTargets {
		v, ok := rec.Summary.Calibration[tg.Name]
		if !ok {
			t.Fatalf("golden calibration missing %s", tg.Name)
		}
		if !tg.Contains(v) {
			t.Fatalf("golden %s = %.4f outside band [%.4f, %.4f]", tg.Name, v, tg.Lo, tg.Hi)
		}
	}
	if len(rec.Timings.Stages) == 0 || rec.Timings.Stage("probe") == nil {
		t.Fatalf("golden timings missing stages: %+v", rec.Timings.Stages)
	}
}
