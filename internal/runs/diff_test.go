package runs

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// baselineRecord builds an in-memory archive record shaped like a healthy
// pipeline run: stage timings, a populated latency histogram, calibration
// shares inside every paper band, and fingerprinted artifacts.
func baselineRecord() *Record {
	reg := obs.NewRegistry()
	h := reg.Histogram("probe_request_seconds", []float64{0.01, 0.05, 0.1, 0.5, 1})
	for i := 0; i < 99; i++ {
		h.Observe(0.02)
	}
	h.Observe(0.2) // p99 rank stays in the 0.05 bucket; p100 in the 0.5 bucket
	reg.Counter("pdns_records_scanned_total").Add(100000)
	return &Record{
		Dir: "a",
		Summary: Summary{
			ID:         "r-aaaaaaaaaaaa",
			ConfigHash: "aaaa",
			Calibration: map[string]float64{
				"unreachable_share": 0.0203,
				"http_404_share":    0.8931,
			},
			Artifacts: map[string]string{
				"table2.txt":      Fingerprint("t2"),
				"fig5.txt":        Fingerprint("f5"),
				"disclosures.txt": Fingerprint("d"),
			},
		},
		Timings: Timings{
			ElapsedNS: int64(10 * time.Second),
			Stages: []obs.StageTiming{
				{Path: "identify", WallNS: int64(2 * time.Second)},
				{Path: "probe", WallNS: int64(5 * time.Second)},
				{Path: "classify/c2-sweep", WallNS: int64(1 * time.Second)},
			},
			Metrics: reg.Snapshot(),
		},
	}
}

// clone deep-copies the parts of a record the tests mutate.
func clone(r *Record) *Record {
	c := *r
	c.Summary.Calibration = map[string]float64{}
	for k, v := range r.Summary.Calibration {
		c.Summary.Calibration[k] = v
	}
	c.Summary.Artifacts = map[string]string{}
	for k, v := range r.Summary.Artifacts {
		c.Summary.Artifacts[k] = v
	}
	c.Summary.Degradations = append([]obs.Degradation(nil), r.Summary.Degradations...)
	c.Timings.Stages = append([]obs.StageTiming(nil), r.Timings.Stages...)
	return &c
}

func TestGateIdenticalRunsPass(t *testing.T) {
	a := baselineRecord()
	b := clone(a)
	rep := Diff(a, b)
	if !rep.ConfigMatch {
		t.Fatal("identical records must config-match")
	}
	if v := rep.Gate(DefaultGateOptions()); len(v) != 0 {
		t.Fatalf("identical records must pass the gate, got %v", v)
	}
}

func TestGateFlagsInjectedSlowdown(t *testing.T) {
	a := baselineRecord()
	b := clone(a)
	b.Timings.Stages[1].WallNS *= 10 // probe: 5s -> 50s
	rep := Diff(a, b)
	v := rep.Gate(DefaultGateOptions())
	if len(v) != 1 || !strings.Contains(v[0], "stage probe wall regressed") {
		t.Fatalf("want one probe wall violation, got %v", v)
	}
}

func TestGateWallFloorAbsorbsSmallStages(t *testing.T) {
	a := baselineRecord()
	b := clone(a)
	// 10x ratio but only 90ms absolute — below the 500ms floor.
	a.Timings.Stages[2].WallNS = int64(10 * time.Millisecond)
	b.Timings.Stages[2].WallNS = int64(100 * time.Millisecond)
	rep := Diff(a, b)
	if v := rep.Gate(DefaultGateOptions()); len(v) != 0 {
		t.Fatalf("sub-floor delta must not gate, got %v", v)
	}
}

func TestGateP99Regression(t *testing.T) {
	a := baselineRecord()
	breg := obs.NewRegistry()
	h := breg.Histogram("probe_request_seconds", []float64{0.01, 0.05, 0.1, 0.5, 1})
	for i := 0; i < 100; i++ {
		h.Observe(0.4) // p99 lands in the 0.5 bucket vs baseline's 0.5-bucket tail at 0.2
	}
	b := clone(a)
	b.Timings.Metrics = breg.Snapshot()
	rep := Diff(a, b)
	var hd *HistDelta
	for i := range rep.Histograms {
		if rep.Histograms[i].Name == "probe_request_seconds" {
			hd = &rep.Histograms[i]
		}
	}
	if hd == nil {
		t.Fatal("missing probe_request_seconds delta")
	}
	if hd.AP99 <= 0 || hd.BP99 <= hd.AP99 {
		t.Fatalf("expected p99 growth, got %+v", hd)
	}
	// With a tight tolerance the growth gates; the default 2x may not.
	v := rep.Gate(GateOptions{WallTol: -1, P99Tol: 0.1, MinSamples: 50})
	if len(v) != 1 || !strings.Contains(v[0], "p99 regressed") {
		t.Fatalf("want one p99 violation, got %v", v)
	}
}

func TestGateClampedP99NotGated(t *testing.T) {
	a := baselineRecord()
	breg := obs.NewRegistry()
	h := breg.Histogram("probe_request_seconds", []float64{0.01, 0.05, 0.1, 0.5, 1})
	for i := 0; i < 100; i++ {
		h.Observe(5) // everything overflows: p99 clamps to the last bound
	}
	b := clone(a)
	b.Timings.Metrics = breg.Snapshot()
	rep := Diff(a, b)
	v := rep.Gate(GateOptions{WallTol: -1, P99Tol: 0.1, MinSamples: 50})
	if len(v) != 0 {
		t.Fatalf("clamped p99 is a floor, must not gate: %v", v)
	}
	// But the render warns about the clamp.
	if !strings.Contains(rep.Render(), "floor only") {
		t.Fatal("render should flag the clamped quantile")
	}
}

func TestGateMinSamples(t *testing.T) {
	a := baselineRecord()
	breg := obs.NewRegistry()
	h := breg.Histogram("probe_request_seconds", []float64{0.01, 0.05, 0.1, 0.5, 1})
	for i := 0; i < 10; i++ { // too few observations to trust
		h.Observe(0.4)
	}
	b := clone(a)
	b.Timings.Metrics = breg.Snapshot()
	rep := Diff(a, b)
	if v := rep.Gate(GateOptions{WallTol: -1, P99Tol: 0.1, MinSamples: 50}); len(v) != 0 {
		t.Fatalf("under-sampled histogram must not gate: %v", v)
	}
}

func TestGateDegradationDrift(t *testing.T) {
	a := baselineRecord()
	a.Summary.Degradations = []obs.Degradation{{Stage: "probe", Kind: "conn-retries", Count: 5}}
	b := clone(a)
	b.Summary.Degradations = []obs.Degradation{
		{Stage: "probe", Kind: "conn-retries", Count: 50}, // 50 > 2*5+10
		{Stage: "identify", Kind: "dropped-records", Count: 1},
	}
	rep := Diff(a, b)
	v := rep.Gate(GateOptions{WallTol: -1, P99Tol: -1, Degradations: true})
	if len(v) != 2 {
		t.Fatalf("want grown + new degradation violations, got %v", v)
	}
	joined := strings.Join(v, "\n")
	if !strings.Contains(joined, "grew") || !strings.Contains(joined, "new degradation") {
		t.Fatalf("unexpected violations: %v", v)
	}
	// Growth inside the 2A+10 envelope passes (chaos schedules jitter).
	b.Summary.Degradations[0].Count = 15
	if v := Diff(a, b).Gate(GateOptions{WallTol: -1, P99Tol: -1, Degradations: true}); len(v) != 1 {
		t.Fatalf("only the new kind should gate, got %v", v)
	}
}

func TestGateDeterministicArtifactMismatch(t *testing.T) {
	a := baselineRecord()
	b := clone(a)
	b.Summary.Artifacts["fig5.txt"] = Fingerprint("different")
	b.Summary.Artifacts["disclosures.txt"] = Fingerprint("also different")
	rep := Diff(a, b)
	v := rep.Gate(GateOptions{WallTol: -1, P99Tol: -1, Artifacts: true})
	// Only fig5.txt is in the deterministic gating set; disclosures.txt is
	// recorded but must not fail the gate.
	if len(v) != 1 || !strings.Contains(v[0], "fig5.txt") {
		t.Fatalf("want one fig5.txt violation, got %v", v)
	}
}

func TestGateCalibrationBand(t *testing.T) {
	a := baselineRecord()
	b := clone(a)
	b.Summary.Calibration["http_404_share"] = 0.5 // far outside Fig 6's band
	rep := Diff(a, b)
	v := rep.Gate(GateOptions{WallTol: -1, P99Tol: -1, Calibration: true})
	if len(v) != 1 || !strings.Contains(v[0], "http_404_share") {
		t.Fatalf("want one calibration violation, got %v", v)
	}
	// Only the candidate side gates: a drifted baseline is history, not news.
	a.Summary.Calibration["unreachable_share"] = 0.9
	if v := Diff(a, b).Gate(GateOptions{WallTol: -1, P99Tol: -1, Calibration: true}); len(v) != 1 {
		t.Fatalf("baseline drift must not gate, got %v", v)
	}
}

func TestGateConfigMismatchNoted(t *testing.T) {
	a := baselineRecord()
	b := clone(a)
	b.Summary.ConfigHash = "bbbb"
	b.Summary.ID = "r-bbbbbbbbbbbb"
	v := Diff(a, b).Gate(GateOptions{WallTol: -1, P99Tol: -1})
	if len(v) != 1 || !strings.Contains(v[0], "config mismatch") {
		t.Fatalf("want config-mismatch violation, got %v", v)
	}
}

func TestDiffStageUnionAndThroughput(t *testing.T) {
	a := baselineRecord()
	b := clone(a)
	b.Timings.Stages = append(b.Timings.Stages, obs.StageTiming{Path: "extra", WallNS: 1e6})
	rep := Diff(a, b)
	var extra *StageDelta
	for i := range rep.Stages {
		if rep.Stages[i].Path == "extra" {
			extra = &rep.Stages[i]
		}
	}
	if extra == nil || extra.AWallNS != -1 || extra.BWallNS != 1e6 {
		t.Fatalf("B-only stage not unioned: %+v", extra)
	}
	var tp *ThroughputDelta
	for i := range rep.Throughput {
		if rep.Throughput[i].Name == "identify_records_per_s" {
			tp = &rep.Throughput[i]
		}
	}
	if tp == nil || tp.A != 50000 { // 100000 records / 2s
		t.Fatalf("identify throughput = %+v, want A=50000", tp)
	}
}
