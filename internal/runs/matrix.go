package runs

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// MatrixDir is the subdirectory of a run-archive root that holds scenario
// matrix cells: <root>/matrix/<cell-id>/ is one archive per cell, keyed by
// cell ID rather than config hash so sweeps with different seeds still land
// in stable slots.
const MatrixDir = "matrix"

// Cell is one scenario-matrix configuration: a point in the
// {scale} × {workers} × {chaos profile} grid the benchmark sweep executes.
type Cell struct {
	Scale   float64 `json:"scale"`
	Workers int     `json:"workers"`
	Chaos   string  `json:"chaos"`
}

// ID renders the cell's archive slot name, e.g. "s0.01-w8-cheavy". The
// scheme is documented in the README; report tables sort by it.
func (c Cell) ID() string {
	return fmt.Sprintf("s%g-w%d-c%s", c.Scale, c.Workers, c.Chaos)
}

// matrixChaosProfiles are the chaos values a cell spec accepts — the named
// deterministic profiles of internal/fault. Validated here so a typo fails
// at parse time, not three cells into a sweep.
var matrixChaosProfiles = map[string]bool{"none": true, "light": true, "heavy": true}

// DefaultCellSpec is the sweep `make bench-matrix` runs: both worker
// extremes of the golden scale, clean and under heavy chaos.
const DefaultCellSpec = "scale=0.01;workers=1,8;chaos=none,heavy"

// ParseCells expands a cell spec like
//
//	scale=0.01,0.05;workers=1,8;chaos=none,heavy
//
// into the full cross product, scale-major then workers then chaos, in the
// order each value was written. Dimensions are ';'-separated, values
// ','-separated; a dimension left out takes its single default (scale 0.01,
// workers 4, chaos none); an unknown dimension or malformed value is an
// error.
func ParseCells(spec string) ([]Cell, error) {
	scales := []float64{0.01}
	workers := []int{4}
	chaos := []string{"none"}
	for _, dim := range strings.Split(spec, ";") {
		dim = strings.TrimSpace(dim)
		if dim == "" {
			continue
		}
		key, vals, ok := strings.Cut(dim, "=")
		if !ok {
			return nil, fmt.Errorf("runs: matrix spec: dimension %q is not key=v1,v2", dim)
		}
		parts := strings.Split(vals, ",")
		switch key {
		case "scale":
			scales = scales[:0]
			for _, p := range parts {
				v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
				if err != nil || v <= 0 {
					return nil, fmt.Errorf("runs: matrix spec: bad scale %q", p)
				}
				scales = append(scales, v)
			}
		case "workers":
			workers = workers[:0]
			for _, p := range parts {
				v, err := strconv.Atoi(strings.TrimSpace(p))
				if err != nil || v <= 0 {
					return nil, fmt.Errorf("runs: matrix spec: bad workers %q", p)
				}
				workers = append(workers, v)
			}
		case "chaos":
			chaos = chaos[:0]
			for _, p := range parts {
				p = strings.TrimSpace(p)
				if !matrixChaosProfiles[p] {
					return nil, fmt.Errorf("runs: matrix spec: unknown chaos profile %q (want none, light, or heavy)", p)
				}
				chaos = append(chaos, p)
			}
		default:
			return nil, fmt.Errorf("runs: matrix spec: unknown dimension %q (want scale, workers, chaos)", key)
		}
	}
	var cells []Cell
	for _, s := range scales {
		for _, w := range workers {
			for _, c := range chaos {
				cells = append(cells, Cell{Scale: s, Workers: w, Chaos: c})
			}
		}
	}
	return cells, nil
}

// ListMatrix loads every cell archive under root/matrix, sorted by cell ID
// so report output is deterministic. A missing matrix directory is an empty
// sweep, not an error.
func ListMatrix(root string) ([]*Record, error) {
	dir := filepath.Join(root, MatrixDir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("runs: %w", err)
	}
	var out []*Record
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		rec, err := Read(filepath.Join(dir, e.Name()))
		if err != nil {
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool {
		return filepath.Base(out[i].Dir) < filepath.Base(out[j].Dir)
	})
	return out, nil
}

// GateMatrix diffs every cell archive under candRoot/matrix against the
// same cell under baseRoot/matrix and returns the union of gate violations,
// each prefixed with its cell ID — so a regression confined to one corner
// of the grid (say heavy-chaos workers-8) fails even when every other cell
// is flat. A baseline cell with no candidate counterpart is a violation (the
// sweep shrank); a candidate cell with no baseline is reported by the caller
// at its leisure but never fails — suites grow.
func GateMatrix(baseRoot, candRoot string, o GateOptions) ([]string, error) {
	base, err := ListMatrix(baseRoot)
	if err != nil {
		return nil, err
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("runs: no baseline matrix cells under %s", filepath.Join(baseRoot, MatrixDir))
	}
	cand, err := ListMatrix(candRoot)
	if err != nil {
		return nil, err
	}
	candByID := make(map[string]*Record, len(cand))
	for _, rec := range cand {
		candByID[filepath.Base(rec.Dir)] = rec
	}
	var violations []string
	for _, b := range base {
		id := filepath.Base(b.Dir)
		c, ok := candByID[id]
		if !ok {
			violations = append(violations, fmt.Sprintf("[%s] cell missing from candidate sweep", id))
			continue
		}
		for _, v := range Diff(b, c).Gate(o) {
			violations = append(violations, fmt.Sprintf("[%s] %s", id, v))
		}
	}
	return violations, nil
}
