package runs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: repro/internal/core
cpu: AMD EPYC 7B13
BenchmarkPipeline/scale=0.002-8         	       2	 512345678 ns/op	12345678 B/op	   98765 allocs/op
BenchmarkPipeline/scale=0.002-8         	       2	 498765432 ns/op	12345600 B/op	   98700 allocs/op
BenchmarkAggregate/workers=4-8          	      10	 103456789 ns/op	  934567 records/s
BenchmarkQuantile                       	 5000000	       251.3 ns/op
PASS
ok  	repro/internal/core	12.345s
`

func TestParseBench(t *testing.T) {
	set, err := ParseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if set.Goos != "linux" || set.Goarch != "amd64" || set.CPU != "AMD EPYC 7B13" {
		t.Fatalf("header parse: %+v", set)
	}
	if len(set.Results) != 4 {
		t.Fatalf("want 4 result rows (count repeats kept), got %d", len(set.Results))
	}
	r0 := set.Results[0]
	if r0.Base != "BenchmarkPipeline/scale=0.002" || r0.Iterations != 2 || r0.NsPerOp != 512345678 {
		t.Fatalf("row 0: %+v", r0)
	}
	if r0.Pkg != "repro/internal/core" || r0.BytesPerOp != 12345678 || r0.AllocsPerOp != 98765 {
		t.Fatalf("row 0 units: %+v", r0)
	}
	if got := set.Results[2].Extra["records/s"]; got != 934567 {
		t.Fatalf("extra unit: %v", got)
	}
	// A bare name with no -GOMAXPROCS suffix survives intact.
	if set.Results[3].Base != "BenchmarkQuantile" || set.Results[3].NsPerOp != 251.3 {
		t.Fatalf("row 3: %+v", set.Results[3])
	}
}

func TestParseBenchRejectsEmpty(t *testing.T) {
	if _, err := ParseBench(strings.NewReader("PASS\nok x 1s\n")); err == nil {
		t.Fatal("a stream with no benchmark lines must error")
	}
}

func TestBenchJSONRoundtrip(t *testing.T) {
	set, err := ParseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	// The output must be plain parseable JSON (the `jq .` acceptance check).
	var raw map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	back, err := ReadBenchJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(set.Results) || back.CPU != set.CPU {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
}

func TestMeanAndGate(t *testing.T) {
	set, err := ParseBench(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	means := set.MeanNsPerOp()
	want := (512345678.0 + 498765432.0) / 2
	if got := means["BenchmarkPipeline/scale=0.002"]; math.Abs(got-want) > 1 {
		t.Fatalf("mean = %f, want %f", got, want)
	}

	slow := &BenchSet{Results: []BenchResult{
		{Name: "BenchmarkQuantile", Base: "BenchmarkQuantile", Iterations: 1, NsPerOp: 251.3 * 3},
	}}
	v := GateBench(set, slow, 0.5, 1.10)
	if len(v) != 1 || !strings.Contains(v[0], "BenchmarkQuantile") {
		t.Fatalf("want one bench violation, got %v", v)
	}
	// One-sided benchmarks (suite evolved) never gate.
	if v := GateBench(set, set, 0.5, 1.10); len(v) != 0 {
		t.Fatalf("identical sets must pass, got %v", v)
	}
}

func TestGateBenchAllocs(t *testing.T) {
	base := &BenchSet{Results: []BenchResult{
		{Name: "BenchmarkX", Base: "BenchmarkX", Iterations: 1, NsPerOp: 100, AllocsPerOp: 1000},
	}}
	leaky := &BenchSet{Results: []BenchResult{
		{Name: "BenchmarkX", Base: "BenchmarkX", Iterations: 1, NsPerOp: 100, AllocsPerOp: 1200},
	}}
	v := GateBench(base, leaky, 0.5, 1.10)
	if len(v) != 1 || !strings.Contains(v[0], "alloc regression") {
		t.Fatalf("want one alloc violation, got %v", v)
	}
	// Within tolerance passes.
	ok := &BenchSet{Results: []BenchResult{
		{Name: "BenchmarkX", Base: "BenchmarkX", Iterations: 1, NsPerOp: 100, AllocsPerOp: 1050},
	}}
	if v := GateBench(base, ok, 0.5, 1.10); len(v) != 0 {
		t.Fatalf("1.05x allocs within 1.10x tolerance must pass, got %v", v)
	}
	// allocsTol <= 0 disables the alloc check entirely.
	if v := GateBench(base, leaky, 0.5, 0); len(v) != 0 {
		t.Fatalf("disabled alloc gate must pass, got %v", v)
	}
	// A candidate without -benchmem data (allocs 0) must not trip the gate.
	noMem := &BenchSet{Results: []BenchResult{
		{Name: "BenchmarkX", Base: "BenchmarkX", Iterations: 1, NsPerOp: 100},
	}}
	if v := GateBench(base, noMem, 0.5, 1.10); len(v) != 0 {
		t.Fatalf("missing alloc data must not gate, got %v", v)
	}
	// The human-readable diff carries the alloc columns.
	out := RenderBenchDiff(DiffBench(base, leaky))
	if !strings.Contains(out, "allocs/op") || !strings.Contains(out, "1.20x") {
		t.Fatalf("diff rendering missing alloc ratio:\n%s", out)
	}
}
