package runs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/timeline"
)

func sampleArchive(created string) *Archive {
	return &Archive{
		Summary: Summary{
			Tool: "test",
			Meta: map[string]string{"seed": "1", "scale": "0.004", "workers": "4"},
			Degradations: []obs.Degradation{
				{Stage: "probe", Kind: "conn-retries", Count: 3},
			},
			Calibration: map[string]float64{"unreachable_share": 0.021},
		},
		Timings: Timings{
			CreatedAt: created,
			ElapsedNS: 5e9,
			Stages: []obs.StageTiming{
				{Path: "identify", WallNS: 2e9, CPUNS: 4e9},
				{Path: "probe", WallNS: 3e9, CPUNS: 1e9},
			},
		},
		Artifacts: map[string]string{
			"table2.txt": "table two body\n",
			"fig5.txt":   "figure five body\n",
		},
	}
}

func TestConfigHashDeterministic(t *testing.T) {
	a := map[string]string{"seed": "1", "scale": "0.01", "workers": "4"}
	b := map[string]string{"workers": "4", "seed": "1", "scale": "0.01"}
	if ConfigHash(a) != ConfigHash(b) {
		t.Fatal("ConfigHash must be order-independent")
	}
	c := map[string]string{"seed": "2", "scale": "0.01", "workers": "4"}
	if ConfigHash(a) == ConfigHash(c) {
		t.Fatal("different configs must not collide")
	}
	id := RunID(ConfigHash(a))
	if !strings.HasPrefix(id, "r-") || len(id) != 14 {
		t.Fatalf("RunID = %q, want r-<12 hex>", id)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	root := t.TempDir()
	a := sampleArchive("2026-08-06T00:00:00Z")
	dir, err := Write(root, a)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(dir) != a.Summary.ID {
		t.Fatalf("dir %s does not end in run ID %s", dir, a.Summary.ID)
	}
	// Fingerprints were filled in from the artifact contents.
	want := Fingerprint("table two body\n")
	if a.Summary.Artifacts["table2.txt"] != want {
		t.Fatalf("fingerprint = %s, want %s", a.Summary.Artifacts["table2.txt"], want)
	}

	rec, err := Read(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Summary.ID != a.Summary.ID || rec.Summary.ConfigHash != a.Summary.ConfigHash {
		t.Fatalf("roundtrip identity mismatch: %+v", rec.Summary)
	}
	if rec.Timings.ElapsedNS != 5e9 || len(rec.Timings.Stages) != 2 {
		t.Fatalf("roundtrip timings mismatch: %+v", rec.Timings)
	}
	if got := rec.Timings.Stage("probe"); got == nil || got.WallNS != 3e9 {
		t.Fatalf("Stage(probe) = %+v", got)
	}
	if rec.Timings.Stage("nope") != nil {
		t.Fatal("Stage(nope) should be nil")
	}
	body, err := rec.ReadArtifact("fig5.txt")
	if err != nil || body != "figure five body\n" {
		t.Fatalf("ReadArtifact = %q, %v", body, err)
	}
}

func TestWriteCollidesOnSameConfig(t *testing.T) {
	root := t.TempDir()
	d1, err := Write(root, sampleArchive("2026-08-06T00:00:00Z"))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Write(root, sampleArchive("2026-08-06T01:00:00Z"))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("identical configs should share a slot: %s vs %s", d1, d2)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("want 1 run dir, got %d", len(entries))
	}
}

func TestListNewestFirst(t *testing.T) {
	root := t.TempDir()
	old := sampleArchive("2026-08-01T00:00:00Z")
	old.Summary.Meta["seed"] = "2" // distinct config, distinct slot
	if _, err := Write(root, old); err != nil {
		t.Fatal(err)
	}
	if _, err := Write(root, sampleArchive("2026-08-06T00:00:00Z")); err != nil {
		t.Fatal(err)
	}
	recs, err := List(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("want 2 runs, got %d", len(recs))
	}
	if recs[0].Timings.CreatedAt < recs[1].Timings.CreatedAt {
		t.Fatalf("List not newest-first: %s before %s",
			recs[0].Timings.CreatedAt, recs[1].Timings.CreatedAt)
	}
}

func TestListMissingRoot(t *testing.T) {
	recs, err := List(filepath.Join(t.TempDir(), "absent"))
	if err != nil || recs != nil {
		t.Fatalf("List(absent) = %v, %v; want nil, nil", recs, err)
	}
}

func TestWriteOptionalPieces(t *testing.T) {
	root := t.TempDir()
	elog := obs.NewEventLog()
	elog.Emit(obs.EventNote, "hello")
	a := sampleArchive("2026-08-06T00:00:00Z")
	a.Events = elog
	a.Trace = []obs.SpanRecord{{Name: "identify", WallNS: 1e9}}
	a.Manifest = &obs.Manifest{Tool: "test"}
	dir, err := Write(root, a)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{SummaryFile, TimingsFile, ManifestFile, EventsFile, TraceFile} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	b, err := os.ReadFile(filepath.Join(dir, TraceFile))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(strings.TrimSpace(string(b)), "[") {
		t.Fatalf("trace.json is not a JSON array: %.40s", b)
	}
}

// TestArchiveTimelineRoundtrip: an archive carrying timeline windows lands
// them as timeline.jsonl, ReadTimeline restores them, TimelineAnomalies
// counts annotations, and a timeline-free archive reports (0, false).
func TestArchiveTimelineRoundtrip(t *testing.T) {
	root := t.TempDir()
	a := sampleArchive("2026-01-01T00:00:00Z")
	a.Timeline = []timeline.Window{
		{Index: 0, EndUS: 250_000, Stage: "identify", Counters: map[string]int64{"pdns_records_total": 10}},
		{Index: 1, StartUS: 250_000, EndUS: 500_000, Stage: "probe",
			Anomalies: []timeline.Anomaly{{Series: "fault_resets_injected_total", Kind: "activation", Value: 4}},
			Breaches:  []timeline.Breach{{Rule: "probe-conn-error-rate", Group: "aws", Value: 0.4, Max: 0.02}}},
	}
	dir, err := Write(root, a)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := ReadTimeline(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[1].Anomalies[0].Kind != "activation" || ws[0].Counters["pdns_records_total"] != 10 {
		t.Fatalf("restored timeline = %+v", ws)
	}
	if n, ok := TimelineAnomalies(dir); !ok || n != 1 {
		t.Fatalf("TimelineAnomalies = %d,%v, want 1,true", n, ok)
	}

	// No timeline: no file, nil read, ok=false count.
	b := sampleArchive("2026-01-01T00:00:00Z")
	b.Summary.Meta = map[string]string{"seed": "2"}
	bdir, err := Write(root, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(bdir, TimelineFile)); !os.IsNotExist(err) {
		t.Fatalf("timeline-free archive wrote %s (err=%v)", TimelineFile, err)
	}
	if ws, err := ReadTimeline(bdir); err != nil || ws != nil {
		t.Fatalf("ReadTimeline without file = %v, %v", ws, err)
	}
	if _, ok := TimelineAnomalies(bdir); ok {
		t.Fatal("TimelineAnomalies reported ok without a timeline")
	}
}
