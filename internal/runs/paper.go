package runs

// Target is one of the paper's published scale-invariant results with the
// acceptance band the reproduction must stay inside. The bands mirror the
// tolerances EXPERIMENTS.md is generated with, so a calibration failure in
// `scfruns gate` and a "**NO**" row in EXPERIMENTS.md mean the same thing.
type Target struct {
	Name  string  `json:"name"`
	Paper float64 `json:"paper"`
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Desc  string  `json:"desc"`
}

// Contains reports whether v sits inside the acceptance band.
func (t Target) Contains(v float64) bool { return v >= t.Lo && v <= t.Hi }

// PaperTargets are the published values a run's Calibration map is audited
// against (Dive into the Cloud, IMC 2025): Table 2/3, Figures 5–6, §4.3–4.4.
var PaperTargets = []Target{
	{Name: "unreachable_share", Paper: 0.0203, Lo: 0.0083, Hi: 0.0323, Desc: "§4.4 unreachable functions"},
	{Name: "dns_failure_share", Paper: 0.1912, Lo: 0.0912, Hi: 0.2912, Desc: "§4.4 DNS failures among unreachable (deleted Tencent)"},
	{Name: "https_share", Paper: 0.9982, Lo: 0.99, Hi: 1.0, Desc: "§4.4 reachable functions answering HTTPS"},
	{Name: "http_404_share", Paper: 0.8931, Lo: 0.8531, Hi: 0.9331, Desc: "Fig 6 HTTP 404 share"},
	{Name: "http_200_share", Paper: 0.0314, Lo: 0.0014, Hi: 0.0614, Desc: "Fig 6 HTTP 200 share"},
	{Name: "single_day_lifespan", Paper: 0.8130, Lo: 0.7830, Hi: 0.8430, Desc: "§4.3 single-day lifespan"},
	{Name: "density_one_share", Paper: 0.8301, Lo: 0.7901, Hi: 0.8701, Desc: "§4.3 activity density p=1"},
	{Name: "frac_under5", Paper: 0.7814, Lo: 0.7514, Hi: 0.8114, Desc: "Fig 5 functions invoked <5 times"},
	{Name: "frac_over100", Paper: 0.0787, Lo: 0.0487, Hi: 0.1087, Desc: "Fig 5 functions invoked >100 times"},
	{Name: "abuse_rate", Paper: 0.0489, Lo: 0.02, Hi: 0.12, Desc: "Table 3 abuse rate of content-rich functions"},
}

// TargetFor looks a target up by calibration key.
func TargetFor(name string) (Target, bool) {
	for _, t := range PaperTargets {
		if t.Name == name {
			return t, true
		}
	}
	return Target{}, false
}
