package runs

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
)

func TestParseCellsCrossProduct(t *testing.T) {
	cells, err := ParseCells("scale=0.01;workers=1,8;chaos=none,heavy")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"s0.01-w1-cnone", "s0.01-w1-cheavy", "s0.01-w8-cnone", "s0.01-w8-cheavy"}
	if len(cells) != len(want) {
		t.Fatalf("want %d cells, got %d: %v", len(want), len(cells), cells)
	}
	for i, w := range want {
		if cells[i].ID() != w {
			t.Fatalf("cell %d: want %s, got %s", i, w, cells[i].ID())
		}
	}
}

func TestParseCellsDefaults(t *testing.T) {
	cells, err := ParseCells("workers=2")
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0] != (Cell{Scale: 0.01, Workers: 2, Chaos: "none"}) {
		t.Fatalf("unexpected cells: %+v", cells)
	}
}

func TestParseCellsErrors(t *testing.T) {
	for _, spec := range []string{
		"scale=zero",
		"workers=0",
		"chaos=apocalyptic",
		"shards=4",
		"scale:0.01",
	} {
		if _, err := ParseCells(spec); err == nil {
			t.Fatalf("spec %q: want error", spec)
		}
	}
}

// cellArchive builds a minimal archive for one matrix cell with a single
// identify stage of the given wall time.
func cellArchive(c Cell, identifyWallNS int64) *Archive {
	return &Archive{
		Summary: Summary{
			Tool: "test",
			Meta: map[string]string{
				"scale":   "0.01",
				"workers": "1",
				"chaos":   c.Chaos,
				"cell":    c.ID(),
			},
		},
		Timings: Timings{
			ElapsedNS: identifyWallNS * 2,
			Stages:    []obs.StageTiming{{Path: "identify", WallNS: identifyWallNS, CPUNS: identifyWallNS}},
			Resources: []obs.ResourceStats{{
				Stage: "identify", Samples: 3,
				MaxHeapInuseBytes: 1 << 20, MaxGoroutines: 8, GCCount: 1,
			}},
		},
	}
}

func writeCell(t *testing.T, root string, c Cell, wallNS int64) {
	t.Helper()
	if err := WriteDir(filepath.Join(root, MatrixDir, c.ID()), cellArchive(c, wallNS)); err != nil {
		t.Fatal(err)
	}
}

func TestListMatrixSortedAndMissingRootEmpty(t *testing.T) {
	root := t.TempDir()
	if recs, err := ListMatrix(root); err != nil || recs != nil {
		t.Fatalf("missing matrix dir: want empty, got %v err %v", recs, err)
	}
	b := Cell{Scale: 0.01, Workers: 8, Chaos: "none"}
	a := Cell{Scale: 0.01, Workers: 1, Chaos: "none"}
	writeCell(t, root, b, 1e6)
	writeCell(t, root, a, 1e6)
	recs, err := ListMatrix(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || filepath.Base(recs[0].Dir) != a.ID() || filepath.Base(recs[1].Dir) != b.ID() {
		t.Fatalf("matrix not sorted by cell ID: %v", recs)
	}
	if len(recs[0].Timings.Resources) != 1 {
		t.Fatalf("resource stats did not round-trip: %+v", recs[0].Timings)
	}
}

func TestGateMatrixFailsRegressedCellOnly(t *testing.T) {
	baseRoot, candRoot := t.TempDir(), t.TempDir()
	flat := Cell{Scale: 0.01, Workers: 1, Chaos: "none"}
	hot := Cell{Scale: 0.01, Workers: 8, Chaos: "heavy"}
	writeCell(t, baseRoot, flat, 1e9)
	writeCell(t, baseRoot, hot, 1e9)
	writeCell(t, candRoot, flat, 1e9)  // happy path flat
	writeCell(t, candRoot, hot, 4e9)   // heavy-chaos workers-8 regressed 4x
	v, err := GateMatrix(baseRoot, candRoot, DefaultGateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "["+hot.ID()+"]") || !strings.Contains(v[0], "identify") {
		t.Fatalf("want exactly the hot cell's stage violation, got %v", v)
	}
}

func TestGateMatrixMissingCandidateCell(t *testing.T) {
	baseRoot, candRoot := t.TempDir(), t.TempDir()
	c := Cell{Scale: 0.01, Workers: 1, Chaos: "none"}
	writeCell(t, baseRoot, c, 1e9)
	v, err := GateMatrix(baseRoot, candRoot, DefaultGateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 1 || !strings.Contains(v[0], "missing from candidate") {
		t.Fatalf("want a missing-cell violation, got %v", v)
	}
	// No baseline cells at all is a hard error, not a pass.
	if _, err := GateMatrix(candRoot, baseRoot, DefaultGateOptions()); err == nil {
		t.Fatal("empty baseline matrix must error")
	}
}
