package runs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one `go test -bench` result line in structured form. With
// -count=N the same benchmark appears N times; every repetition is kept so
// downstream tooling can compute its own spread.
type BenchResult struct {
	// Name is the full benchmark name including the -GOMAXPROCS suffix
	// (e.g. "BenchmarkEmitPDNS/workers=4-8"); Base strips the suffix.
	Name        string             `json:"name"`
	Base        string             `json:"base"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// BenchSet is the structured form of one `go test -bench` invocation — what
// BENCH_pipeline.json holds instead of raw benchmark text.
type BenchSet struct {
	Goos    string        `json:"goos,omitempty"`
	Goarch  string        `json:"goarch,omitempty"`
	CPU     string        `json:"cpu,omitempty"`
	Results []BenchResult `json:"results"`
}

// ParseBench reads `go test -bench` text output (benchstat's input format)
// into a BenchSet. Non-benchmark lines (PASS, ok, test log noise) are
// skipped; a stream with no benchmark lines at all is an error, catching
// the easy mistake of feeding it a failed test run.
func ParseBench(r io.Reader) (*BenchSet, error) {
	set := &BenchSet{}
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			set.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			set.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			set.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		res, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		res.Pkg = pkg
		set.Results = append(set.Results, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("runs: bench parse: %w", err)
	}
	if len(set.Results) == 0 {
		return nil, fmt.Errorf("runs: bench parse: no benchmark result lines found")
	}
	return set, nil
}

// parseBenchLine parses one "BenchmarkName-8  N  V unit  V unit ..." line.
func parseBenchLine(line string) (BenchResult, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return BenchResult{}, false
	}
	f := strings.Fields(line)
	// Name, iterations, and at least one value+unit pair.
	if len(f) < 4 || len(f)%2 != 0 {
		return BenchResult{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return BenchResult{}, false
	}
	res := BenchResult{Name: f[0], Base: benchBase(f[0]), Iterations: iters}
	sawNs := false
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return BenchResult{}, false
		}
		switch f[i+1] {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[f[i+1]] = v
		}
	}
	if !sawNs {
		return BenchResult{}, false
	}
	return res, true
}

// benchBase strips the trailing -GOMAXPROCS suffix go test appends, so
// repeats of the same benchmark group together across machines.
func benchBase(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// WriteJSON renders the set as indented JSON with a trailing newline.
func (s *BenchSet) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("runs: bench: %w", err)
	}
	b = append(b, '\n')
	if _, err := w.Write(b); err != nil {
		return fmt.Errorf("runs: bench: %w", err)
	}
	return nil
}

// ReadBenchJSON loads a BenchSet previously written by WriteJSON.
func ReadBenchJSON(r io.Reader) (*BenchSet, error) {
	var s BenchSet
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("runs: bench json: %w", err)
	}
	return &s, nil
}

// MeanNsPerOp averages ns/op per base benchmark name over -count repeats.
func (s *BenchSet) MeanNsPerOp() map[string]float64 {
	sums := map[string]float64{}
	ns := map[string]int{}
	for _, r := range s.Results {
		sums[r.Base] += r.NsPerOp
		ns[r.Base]++
	}
	out := make(map[string]float64, len(sums))
	for k, sum := range sums {
		out[k] = sum / float64(ns[k])
	}
	return out
}

// BenchDelta compares one benchmark's mean ns/op and allocs/op across two
// sets. Alloc fields are zero when the run did not report -benchmem output.
type BenchDelta struct {
	Name    string  `json:"name"`
	ANs     float64 `json:"a_ns,omitempty"`
	BNs     float64 `json:"b_ns,omitempty"`
	AAllocs float64 `json:"a_allocs,omitempty"`
	BAllocs float64 `json:"b_allocs,omitempty"`
}

// Ratio returns B as a multiple of A, or 0 when either side is missing.
func (d BenchDelta) Ratio() float64 {
	if d.ANs <= 0 || d.BNs <= 0 {
		return 0
	}
	return d.BNs / d.ANs
}

// AllocRatio returns B's allocs/op as a multiple of A's, or 0 when either
// side has no alloc data (missing benchmark or run without -benchmem).
func (d BenchDelta) AllocRatio() float64 {
	if d.AAllocs <= 0 || d.BAllocs <= 0 {
		return 0
	}
	return d.BAllocs / d.AAllocs
}

// DiffBench compares mean ns/op and allocs/op per benchmark, sorted by name.
func DiffBench(a, b *BenchSet) []BenchDelta {
	ma, mb := a.MeanPoints(), b.MeanPoints()
	var out []BenchDelta
	for _, name := range unionKeys(ma, mb) {
		out = append(out, BenchDelta{
			Name: name,
			ANs:  ma[name].NsPerOp, BNs: mb[name].NsPerOp,
			AAllocs: ma[name].AllocsPerOp, BAllocs: mb[name].AllocsPerOp,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GateBench returns one violation per benchmark whose mean ns/op grew past
// (1+tol)× the baseline, or whose mean allocs/op grew past allocsTol× it
// (allocsTol is a plain ratio ceiling, e.g. 1.10; <= 0 disables the alloc
// check). The alloc gate only fires when both sides report allocs — a run
// without -benchmem must not trip it. Benchmarks present on only one side
// are reported but do not fail the gate — suites evolve.
func GateBench(a, b *BenchSet, tol, allocsTol float64) []string {
	var v []string
	for _, d := range DiffBench(a, b) {
		if r := d.Ratio(); r > 1+tol {
			v = append(v, fmt.Sprintf("bench %s regressed: %.0f ns/op -> %.0f ns/op (%.2fx, tol %.2fx)",
				d.Name, d.ANs, d.BNs, r, 1+tol))
		}
		if allocsTol <= 0 {
			continue
		}
		if r := d.AllocRatio(); r > allocsTol {
			v = append(v, fmt.Sprintf("bench %s alloc regression: %.1f allocs/op -> %.1f allocs/op (%.2fx, tol %.2fx)",
				d.Name, d.AAllocs, d.BAllocs, r, allocsTol))
		}
	}
	return v
}

// RenderBenchDiff formats a bench comparison for humans.
func RenderBenchDiff(deltas []BenchDelta) string {
	var b strings.Builder
	b.WriteString("Benchmark diff (mean ns/op and allocs/op over repeats)\n")
	for _, d := range deltas {
		ratio := "-"
		if r := d.Ratio(); r > 0 {
			ratio = fmt.Sprintf("%.2fx", r)
		}
		alloc := ""
		if r := d.AllocRatio(); r > 0 {
			alloc = fmt.Sprintf("  %.0f -> %.0f allocs/op (%.2fx)", d.AAllocs, d.BAllocs, r)
		}
		fmt.Fprintf(&b, "  %-50s %14.0f %14.0f  %s%s\n", d.Name, d.ANs, d.BNs, ratio, alloc)
	}
	return b.String()
}
