package runs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/prof"
)

func profiledArchive(created string) *Archive {
	a := sampleArchive(created)
	a.Profiles = []prof.Snapshot{
		{Stage: "substrate", Kind: "heap", Data: []byte("heap-bytes")},
		{Stage: "substrate", Kind: "allocs", Data: []byte("allocs-bytes")},
		{Stage: "probe", Kind: "heap", Data: []byte("old")},
		// Same (stage, kind) again: keep-last wins in the written archive.
		{Stage: "probe", Kind: "heap", Data: []byte("new-heap")},
		{Stage: "pipeline", Kind: "cpu", Data: []byte("cpu-bytes")},
	}
	return a
}

func TestWriteProfilesKeepLast(t *testing.T) {
	root := t.TempDir()
	dir, err := Write(root, profiledArchive("2026-08-06T00:00:00Z"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReadProfile(dir, "probe-heap.pb.gz")
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "new-heap" {
		t.Fatalf("probe-heap.pb.gz = %q, want the later snapshot", b)
	}
	infos, err := ListProfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 4 {
		t.Fatalf("want 4 profile files after dedupe, got %d: %+v", len(infos), infos)
	}
	for _, in := range infos {
		if in.Size <= 0 || in.Stage == "" || in.Kind == "" || !strings.HasSuffix(in.Name, ".pb.gz") {
			t.Fatalf("malformed inventory entry: %+v", in)
		}
	}
	line := ProfilesLine(infos)
	for _, want := range []string{"4", "cpu x1", "heap x2", "allocs x1"} {
		if !strings.Contains(line, want) {
			t.Fatalf("ProfilesLine %q missing %q", line, want)
		}
	}
}

// TestListProfilesTolerant pins the "most runs are unprofiled" contract: an
// absent profiles directory is nil/no-error, and stray non-profile entries
// inside one are skipped rather than misparsed.
func TestListProfilesTolerant(t *testing.T) {
	root := t.TempDir()
	dir, err := Write(root, sampleArchive("2026-08-06T00:00:00Z"))
	if err != nil {
		t.Fatal(err)
	}
	infos, err := ListProfiles(dir)
	if err != nil || infos != nil {
		t.Fatalf("absent profiles dir: got %v, %v; want nil, nil", infos, err)
	}
	if got := ProfilesLine(nil); got != "profiles: none" {
		t.Fatalf("ProfilesLine(nil) = %q", got)
	}

	pdir := filepath.Join(dir, ProfilesDir)
	if err := os.MkdirAll(filepath.Join(pdir, "junk-subdir"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pdir, "README.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pdir, "probe-heap.pb.gz"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err = ListProfiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Stage != "probe" || infos[0].Kind != "heap" {
		t.Fatalf("want the one real profile, got %+v", infos)
	}
}

// TestListWarnProfilesOnly pins ListWarn's treatment of profile debris: a
// complete archive with a profiles directory lists normally, while a
// directory holding ONLY a profiles dir (an interrupted profiled run) is
// skipped with a warning, like any other partial archive.
func TestListWarnProfilesOnly(t *testing.T) {
	root := t.TempDir()
	if _, err := Write(root, profiledArchive("2026-08-06T00:00:00Z")); err != nil {
		t.Fatal(err)
	}
	stub := filepath.Join(root, "r-deadbeef0000")
	if err := os.MkdirAll(filepath.Join(stub, ProfilesDir), 0o755); err != nil {
		t.Fatal(err)
	}
	recs, warns, err := ListWarn(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 complete run, got %d", len(recs))
	}
	if len(warns) != 1 || !strings.Contains(warns[0], "r-deadbeef0000") {
		t.Fatalf("want one warning naming the partial dir, got %v", warns)
	}
}
