// Package dnssim simulates the ingress-side DNS behaviour of serverless
// function providers (paper §4.2, Table 2). Each provider is modelled by a
// resolution policy describing its record-type mix (A / AAAA / CNAME), its
// per-region ingress-node pools, its use of anycast, its reliance on
// third-party network infrastructure, and whether deleted functions keep
// resolving through a wildcard record (paper §4.4).
//
// The paper derived these behaviours from two years of PDNS observations;
// here they are encoded as generative policies so that the same analysis
// pipeline can recover them from synthetic data.
package dnssim

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/pdns"
	"repro/internal/providers"
)

// Owner identifies who operates an ingress node. Most providers answer with
// their own data-centre addresses; Baidu and Kingsoft lean on China's three
// telecom operators, and IBM fronts its functions with Cloudflare
// (paper Finding 3).
type Owner int

const (
	OwnerProvider Owner = iota
	OwnerChinaTelecom
	OwnerChinaUnicom
	OwnerChinaMobile
	OwnerCloudflare
)

func (o Owner) String() string {
	switch o {
	case OwnerProvider:
		return "provider"
	case OwnerChinaTelecom:
		return "china-telecom"
	case OwnerChinaUnicom:
		return "china-unicom"
	case OwnerChinaMobile:
		return "china-mobile"
	case OwnerCloudflare:
		return "cloudflare"
	default:
		return fmt.Sprintf("Owner(%d)", int(o))
	}
}

// ThirdParty reports whether the owner is external to the cloud provider.
func (o Owner) ThirdParty() bool { return o != OwnerProvider }

// Policy is the generative description of one provider's ingress DNS.
type Policy struct {
	Provider providers.ID

	// Record-type mix, as fractions of answered requests (Table 2 "Total").
	// The three shares sum to 1 for providers that answer; CNAME answers
	// ultimately resolve to A records upstream, but PDNS logs the CNAME row.
	AShare, AAAAShare, CNAMEShare float64

	// Pool sizes. For region-based providers these are per-region node
	// counts; Anycast providers use GlobalA/GlobalAAAA nodes worldwide.
	Anycast         bool
	GlobalA         int
	GlobalAAAA      int
	RegionA         func(region string) int
	RegionAAAA      func(region string) int
	RegionCNAME     int     // CNAME aliases per region (0 = provider never CNAMEs)
	ThirdPartyOwner []Owner // non-empty if ingress is outsourced

	// Memoised synthetic answers, keyed by (rtype, region, node index);
	// lazily built under ansMu (see answer in resolver.go).
	ansMu    sync.RWMutex
	ansCache map[answerKey]Answer
}

// policies is keyed by provider, calibrated to Table 2.
var policies = map[providers.ID]*Policy{
	providers.Aliyun: {
		Provider: providers.Aliyun,
		AShare:   0.2796, CNAMEShare: 0.7204, AAAAShare: 0,
		RegionA:     flat(3),
		RegionCNAME: 2,
	},
	providers.Baidu: {
		Provider: providers.Baidu,
		AShare:   0.2247, CNAMEShare: 0.7753, AAAAShare: 0,
		RegionA:         flat(3), // 3 regions x ~3 operator VIPs ≈ 10 total
		RegionCNAME:     1,
		ThirdPartyOwner: []Owner{OwnerChinaTelecom, OwnerChinaUnicom, OwnerChinaMobile},
	},
	providers.Tencent: {
		Provider: providers.Tencent,
		AShare:   0.2389, CNAMEShare: 0.7611, AAAAShare: 0,
		RegionA:     flat(2), // 22 regions x ~1.6 ≈ 35 total
		RegionCNAME: 2,       // geographic aliases like gz.scf.tencentcs.com
	},
	providers.Kingsoft: {
		Provider:        providers.Kingsoft,
		AShare:          1,
		RegionA:         flat(2), // 2 regions x 2 = 4 total
		ThirdPartyOwner: []Owner{OwnerChinaTelecom, OwnerChinaUnicom, OwnerChinaMobile},
	},
	providers.AWS: {
		Provider: providers.AWS,
		AShare:   0.7673, AAAAShare: 0.2327,
		// AWS is the outlier: thousands of ingress nodes in popular regions
		// (ap-northeast-1: 2082 IPv4 / 2579 IPv6), hundreds elsewhere.
		RegionA:    awsPoolIPv4,
		RegionAAAA: awsPoolIPv6,
	},
	providers.Google: {
		Provider: providers.Google,
		AShare:   0.7641, AAAAShare: 0.2359,
		Anycast: true, GlobalA: 1, GlobalAAAA: 1,
	},
	providers.Google2: {
		Provider: providers.Google2,
		AShare:   0.6675, AAAAShare: 0.3325,
		Anycast: true, GlobalA: 4, GlobalAAAA: 4,
	},
	providers.IBM: {
		Provider: providers.IBM,
		AShare:   0.1015, CNAMEShare: 0.8755, AAAAShare: 0.0230,
		RegionA: flat(1), RegionAAAA: flat(1), RegionCNAME: 1,
		ThirdPartyOwner: []Owner{OwnerCloudflare},
	},
	providers.Oracle: {
		Provider: providers.Oracle,
		AShare:   1,
		RegionA: func(region string) int {
			// 31 IPv4 nodes over 5 regions, with a skew that keeps the
			// Top10 share near the observed 57.97%.
			if region == "us-ashburn-1" {
				return 11
			}
			return 5
		},
	},
}

func flat(n int) func(string) int { return func(string) int { return n } }

// awsPoolIPv4 mirrors the dispersion reported in §4.2: Tokyo, Ireland, and
// Virginia exceed a thousand nodes; other regions are an order smaller.
func awsPoolIPv4(region string) int {
	switch region {
	case "ap-northeast-1":
		return 2082
	case "eu-west-1":
		return 1400
	case "us-east-1":
		return 1300
	default:
		return 320
	}
}

func awsPoolIPv6(region string) int {
	switch region {
	case "ap-northeast-1":
		return 2579
	case "eu-west-1":
		return 1900
	case "us-east-1":
		return 1800
	default:
		return 560
	}
}

// PolicyFor returns the resolution policy of a provider participating in
// PDNS collection. ok is false for Azure and out-of-range IDs.
func PolicyFor(id providers.ID) (*Policy, bool) {
	p, ok := policies[id]
	return p, ok
}

// SampleRType draws a record type according to the provider's mix.
func (p *Policy) SampleRType(rng *rand.Rand) pdns.RType {
	x := rng.Float64()
	switch {
	case x < p.CNAMEShare:
		return pdns.TypeCNAME
	case x < p.CNAMEShare+p.AAAAShare:
		return pdns.TypeAAAA
	default:
		return pdns.TypeA
	}
}

// NodeCount returns the ingress pool size for (rtype, region).
func (p *Policy) NodeCount(t pdns.RType, region string) int {
	if p.Anycast {
		switch t {
		case pdns.TypeA:
			return p.GlobalA
		case pdns.TypeAAAA:
			return p.GlobalAAAA
		default:
			return 0
		}
	}
	switch t {
	case pdns.TypeA:
		if p.RegionA == nil {
			return 0
		}
		return p.RegionA(region)
	case pdns.TypeAAAA:
		if p.RegionAAAA == nil {
			return 0
		}
		return p.RegionAAAA(region)
	case pdns.TypeCNAME:
		return p.RegionCNAME
	default:
		return 0
	}
}
