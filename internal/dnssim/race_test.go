package dnssim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/pdns"
)

// TestResolverConcurrent exercises every mutable path of the resolver from
// many goroutines at once — cold lookup-cache misses, hot hits, deletion
// writes and deletion checks interleaved — so `go test -race` covers the
// exact access pattern of the parallel emission workers. Each goroutine owns
// its RNG, mirroring workload.EmitPDNSParallel.
func TestResolverConcurrent(t *testing.T) {
	r := NewResolver()
	names := make([]string, 64)
	for i := range names {
		names[i] = fmt.Sprintf("1234567890-abcdefgh%02d-ap-guangzhou.scf.tencentcs.com", i)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				fqdn := names[(g+i)%len(names)]
				if i%50 == 25 && g%4 == 0 {
					r.MarkDeleted(fqdn)
				}
				if _, err := r.Resolve(fqdn, rng); err != nil && !errors.Is(err, ErrNXDomain) {
					t.Errorf("Resolve(%q): %v", fqdn, err)
					return
				}
				if _, err := r.ResolveRType(fqdn, pdns.TypeA, rng); err != nil && !errors.Is(err, ErrNXDomain) {
					t.Errorf("ResolveRType(%q): %v", fqdn, err)
					return
				}
				r.Deleted(fqdn)
			}
		}(g)
	}
	wg.Wait()
}
