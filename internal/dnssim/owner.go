package dnssim

import (
	"strings"
)

// ClassifyRData attributes a resolution result to its operator, the reverse
// of the synthesis in this package: provider-owned addresses and aliases
// map to OwnerProvider, telecom-operator VIPs and Cloudflare fronts to
// their third parties. The usage analysis applies this to measure the
// third-party dependence of Finding 3 from PDNS data alone.
func ClassifyRData(rdata string) Owner {
	r := strings.ToLower(strings.TrimSuffix(rdata, "."))
	// CNAME targets carry the dependency in their suffix.
	switch {
	case strings.HasSuffix(r, ".cloudflare.net"):
		return OwnerCloudflare
	case strings.HasSuffix(r, ".bcelb.com"):
		// Baidu load-balancer aliases embed the operator label.
		switch {
		case strings.Contains(r, ".ct."):
			return OwnerChinaTelecom
		case strings.Contains(r, ".cu."):
			return OwnerChinaUnicom
		case strings.Contains(r, ".cm."):
			return OwnerChinaMobile
		}
		return OwnerChinaTelecom
	}
	// IPv4 prefixes of the synthetic operator ranges.
	switch {
	case strings.HasPrefix(r, "101.33."):
		return OwnerChinaTelecom
	case strings.HasPrefix(r, "112.65."):
		return OwnerChinaUnicom
	case strings.HasPrefix(r, "120.197."):
		return OwnerChinaMobile
	case strings.HasPrefix(r, "104.16."), strings.HasPrefix(r, "2606:4700:"):
		return OwnerCloudflare
	}
	return OwnerProvider
}
