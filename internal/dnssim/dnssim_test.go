package dnssim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/pdns"
	"repro/internal/providers"
)

func TestPolicyCoverage(t *testing.T) {
	for _, in := range providers.Collected() {
		pol, ok := PolicyFor(in.ID)
		if !ok {
			t.Fatalf("no policy for %s", in.Name)
		}
		sum := pol.AShare + pol.AAAAShare + pol.CNAMEShare
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("%s: rtype shares sum to %v", in.Name, sum)
		}
	}
	if _, ok := PolicyFor(providers.Azure); ok {
		t.Error("Azure should have no policy (excluded from collection)")
	}
}

func TestSampleRTypeMatchesTable2(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 200000
	for _, tc := range []struct {
		id             provider
		a, aaaa, cname float64
	}{
		{providers.Aliyun, 0.2796, 0, 0.7204},
		{providers.AWS, 0.7673, 0.2327, 0},
		{providers.Google2, 0.6675, 0.3325, 0},
		{providers.IBM, 0.1015, 0.0230, 0.8755},
		{providers.Kingsoft, 1, 0, 0},
	} {
		pol, _ := PolicyFor(tc.id)
		counts := map[pdns.RType]int{}
		for i := 0; i < n; i++ {
			counts[pol.SampleRType(rng)]++
		}
		check := func(name string, got int, want float64) {
			frac := float64(got) / n
			if math.Abs(frac-want) > 0.01 {
				t.Errorf("%v %s share = %.4f, want %.4f", tc.id, name, frac, want)
			}
		}
		check("A", counts[pdns.TypeA], tc.a)
		check("AAAA", counts[pdns.TypeAAAA], tc.aaaa)
		check("CNAME", counts[pdns.TypeCNAME], tc.cname)
	}
}

type provider = providers.ID

func TestResolveDeterministicRData(t *testing.T) {
	r := NewResolver()
	rng := rand.New(rand.NewSource(5))
	fqdn := providers.Get(providers.Tencent).Generate(rng, "ap-guangzhou")
	seen := map[string]Answer{}
	for i := 0; i < 500; i++ {
		a, err := r.Resolve(fqdn, rng)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := seen[a.RData]; ok && prev.RType != a.RType {
			t.Fatalf("rdata %q served with two rtypes", a.RData)
		}
		seen[a.RData] = a
	}
	// Tencent within one region: 2 A + 2 CNAME nodes at most.
	if len(seen) > 4 {
		t.Errorf("Tencent region served %d distinct rdata, want <= 4", len(seen))
	}
	// The primary CNAME must carry the geographic label of the region.
	found := false
	for rd, a := range seen {
		if a.RType == pdns.TypeCNAME && rd == "gz.scf.tencentcs.com" {
			found = true
		}
	}
	if !found {
		t.Errorf("expected gz.scf.tencentcs.com CNAME for ap-guangzhou, got %v", keys(seen))
	}
}

func keys(m map[string]Answer) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestRegionalConsistency(t *testing.T) {
	// Two functions in the same region share the same ingress set; a
	// function in another region does not (Finding 2).
	r := NewResolver()
	rng := rand.New(rand.NewSource(6))
	in := providers.Get(providers.Aliyun)
	f1 := in.Generate(rng, "cn-shanghai")
	f2 := in.Generate(rng, "cn-shanghai")
	f3 := in.Generate(rng, "eu-west-1")
	set := func(fqdn string) map[string]bool {
		s := map[string]bool{}
		for i := 0; i < 400; i++ {
			a, err := r.Resolve(fqdn, rng)
			if err != nil {
				t.Fatal(err)
			}
			s[a.RData] = true
		}
		return s
	}
	s1, s2, s3 := set(f1), set(f2), set(f3)
	for rd := range s1 {
		if !s2[rd] {
			t.Errorf("same-region functions disagree on ingress %q", rd)
		}
	}
	for rd := range s3 {
		if s1[rd] {
			t.Errorf("cross-region functions share ingress %q", rd)
		}
	}
}

func TestAnycastIgnoresRegion(t *testing.T) {
	r := NewResolver()
	rng := rand.New(rand.NewSource(7))
	in := providers.Get(providers.Google)
	f1 := in.Generate(rng, "us-central1")
	f2 := in.Generate(rng, "asia-east1")
	a1 := map[string]bool{}
	a2 := map[string]bool{}
	for i := 0; i < 300; i++ {
		x, err := r.Resolve(f1, rng)
		if err != nil {
			t.Fatal(err)
		}
		a1[x.RData] = true
		y, err := r.Resolve(f2, rng)
		if err != nil {
			t.Fatal(err)
		}
		a2[y.RData] = true
	}
	if len(a1) > 2 || len(a2) > 2 { // 1 IPv4 + 1 IPv6
		t.Errorf("Google should have a single anycast node per family, got %d/%d", len(a1), len(a2))
	}
	for rd := range a1 {
		if !a2[rd] {
			t.Errorf("anycast nodes differ across regions: %q", rd)
		}
	}
}

func TestTencentDeletionNXDomain(t *testing.T) {
	r := NewResolver()
	rng := rand.New(rand.NewSource(8))
	tencent := providers.Get(providers.Tencent).Generate(rng, "ap-beijing")
	aws := providers.Get(providers.AWS).Generate(rng, "us-east-1")
	r.MarkDeleted(tencent)
	r.MarkDeleted(aws)
	if _, err := r.Resolve(tencent, rng); !errors.Is(err, ErrNXDomain) {
		t.Errorf("deleted Tencent function resolved: %v", err)
	}
	if _, err := r.Resolve(aws, rng); err != nil {
		t.Errorf("deleted AWS function should still resolve via wildcard: %v", err)
	}
	if !r.Deleted(tencent) || r.Deleted("other.example") {
		t.Error("Deleted bookkeeping wrong")
	}
}

func TestResolveNonFunction(t *testing.T) {
	r := NewResolver()
	rng := rand.New(rand.NewSource(9))
	if _, err := r.Resolve("www.example.com", rng); !errors.Is(err, ErrNXDomain) {
		t.Errorf("non-function domain resolved: %v", err)
	}
}

func TestThirdPartyOwnership(t *testing.T) {
	r := NewResolver()
	rng := rand.New(rand.NewSource(10))
	cases := []struct {
		id        providers.ID
		region    string
		wantThird bool
	}{
		{providers.Baidu, "bj", true},
		{providers.Kingsoft, "cn-beijing-6", true},
		{providers.IBM, "eu-gb", true},
		{providers.AWS, "us-east-1", false},
		{providers.Aliyun, "cn-shanghai", false},
	}
	for _, c := range cases {
		fqdn := providers.Get(c.id).Generate(rng, c.region)
		sawThird := false
		for i := 0; i < 200; i++ {
			a, err := r.Resolve(fqdn, rng)
			if err != nil {
				t.Fatal(err)
			}
			if a.Owner.ThirdParty() {
				sawThird = true
			}
		}
		if sawThird != c.wantThird {
			t.Errorf("%v third-party ingress = %v, want %v", c.id, sawThird, c.wantThird)
		}
	}
}

func TestAWSDispersion(t *testing.T) {
	// AWS Tokyo should expose far more ingress nodes than a concentrated
	// provider over the same number of queries.
	r := NewResolver()
	rng := rand.New(rand.NewSource(11))
	aws := providers.Get(providers.AWS).Generate(rng, "ap-northeast-1")
	distinct := map[string]bool{}
	for i := 0; i < 3000; i++ {
		a, err := r.Resolve(aws, rng)
		if err != nil {
			t.Fatal(err)
		}
		distinct[a.RData] = true
	}
	if len(distinct) < 1000 {
		t.Errorf("AWS Tokyo exposed %d nodes over 3000 queries, want >= 1000", len(distinct))
	}
}

func TestObservedQueries(t *testing.T) {
	if got := ObservedQueries(0, 86400, 60); got != 0 {
		t.Errorf("zero invocations observed %d times", got)
	}
	if got := ObservedQueries(5, 0, 60); got != 5 {
		t.Errorf("zero active time should pass through, got %d", got)
	}
	// Heavy traffic in few windows collapses to roughly windows queries.
	got := ObservedQueries(1_000_000, 3600, 60)
	if got < 55 || got > 60 {
		t.Errorf("1M invocations/hour with 60s TTL observed %d, want ~60", got)
	}
	// Sparse traffic is barely cached.
	got = ObservedQueries(3, 86400, 60)
	if got != 3 {
		t.Errorf("sparse invocations observed %d, want 3", got)
	}
}

// Property: caching never inflates counts and never erases activity.
func TestQuickObservedBounds(t *testing.T) {
	f := func(inv uint16, secs uint16, ttl uint8) bool {
		invocations := int64(inv)
		obs := ObservedQueries(invocations, float64(secs), float64(ttl))
		if invocations == 0 {
			return obs == 0
		}
		return obs >= 1 && obs <= invocations
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestOwnerString(t *testing.T) {
	for o, want := range map[Owner]string{
		OwnerProvider: "provider", OwnerChinaTelecom: "china-telecom",
		OwnerCloudflare: "cloudflare",
	} {
		if o.String() != want {
			t.Errorf("Owner.String() = %q, want %q", o.String(), want)
		}
	}
}

func TestHarmonicPickSkew(t *testing.T) {
	pol, _ := PolicyFor(providers.Oracle)
	rng := rand.New(rand.NewSource(13))
	counts := make([]int, 11)
	for i := 0; i < 50000; i++ {
		counts[pol.pickNode(11, rng)]++
	}
	if counts[0] <= counts[10] {
		t.Errorf("harmonic pick not skewed: first=%d last=%d", counts[0], counts[10])
	}
	var top10 int
	for _, c := range counts[:10] {
		top10 += c
	}
	share := float64(top10) / 50000
	if share < 0.9 { // 10 of 11 harmonic nodes carry >> 90%
		t.Errorf("top10 share over 11 nodes = %v", share)
	}
}

func TestClassifyRDataRoundTrip(t *testing.T) {
	// Every answer the resolver synthesises must classify back to the
	// owner it was synthesised for.
	r := NewResolver()
	rng := rand.New(rand.NewSource(21))
	cases := []struct {
		id     providers.ID
		region string
	}{
		{providers.Baidu, "bj"},
		{providers.Kingsoft, "cn-beijing-6"},
		{providers.IBM, "eu-gb"},
		{providers.AWS, "us-east-1"},
		{providers.Aliyun, "cn-shanghai"},
		{providers.Google, "us-central1"},
	}
	for _, c := range cases {
		fqdn := providers.Get(c.id).Generate(rng, c.region)
		for i := 0; i < 100; i++ {
			a, err := r.Resolve(fqdn, rng)
			if err != nil {
				t.Fatal(err)
			}
			got := ClassifyRData(a.RData)
			if got != a.Owner {
				t.Fatalf("%v rdata %q: classified %v, synthesised as %v", c.id, a.RData, got, a.Owner)
			}
		}
	}
}

func TestClassifyRDataExternal(t *testing.T) {
	cases := map[string]Owner{
		"x.y.cdn.cloudflare.net": OwnerCloudflare,
		"cfc-bj.cu.bcelb.com":    OwnerChinaUnicom,
		"cfc-gz.cm.bcelb.com":    OwnerChinaMobile,
		"101.33.4.4":             OwnerChinaTelecom,
		"8.8.8.8":                OwnerProvider,
		"gz.scf.tencentcs.com":   OwnerProvider,
	}
	for rdata, want := range cases {
		if got := ClassifyRData(rdata); got != want {
			t.Errorf("ClassifyRData(%q) = %v, want %v", rdata, got, want)
		}
	}
}
