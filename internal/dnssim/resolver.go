package dnssim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"strings"
	"sync"

	"repro/internal/obs"
	"repro/internal/pdns"
	"repro/internal/providers"
)

// ErrNXDomain is returned when a name does not resolve. Among the studied
// providers only Tencent returns NXDOMAIN for deleted functions, because it
// is the only one without a wildcard record on its suffix (paper §4.4:
// 19.12% of unreachable functions were deleted Tencent functions).
var ErrNXDomain = errors.New("dnssim: NXDOMAIN")

// Answer is one resolution result as a PDNS sensor would log it.
type Answer struct {
	RType pdns.RType
	RData string
	Owner Owner
	TTL   int // seconds
}

// Resolver answers queries for function FQDNs according to each provider's
// policy. It is safe for concurrent use: one Resolver serves every worker of
// the parallel emission path (workload.EmitPDNSParallel).
//
// Concurrency audit, per field: the matcher and per-provider policies are
// built once and read-only afterwards; the deletion set is guarded by mu;
// the lookup and harmonic-number memos are sync.Maps (duplicate computation
// on a racing first miss is benign — entries are value-identical); the
// telemetry counters are atomics. Methods take no locks while calling out,
// so Resolve/ResolveRType/MarkDeleted may interleave freely from any number
// of goroutines.
//
// Lookups (regex identification + policy selection) are memoised per FQDN:
// a two-year feed re-resolves each name hundreds of times, so the cache
// turns the per-query matcher work into a map hit. Deletion state is checked
// on every query, never cached.
type Resolver struct {
	matcher *providers.Matcher

	mu      sync.RWMutex
	deleted map[string]struct{}

	lookups sync.Map // fqdn → *cachedLookup

	// Cache telemetry; populated by Instrument, no-ops otherwise.
	mHits   *obs.Counter // dnssim_lookup_cache_hits_total
	mMisses *obs.Counter // dnssim_lookup_cache_misses_total

	// Dimensional telemetry. The per-provider series are resolved once per
	// FQDN when its lookup is built and cached on the cachedLookup, so the
	// per-query cost is one atomic increment, not a label-key join.
	mLookupVec *obs.CounterVec // dnssim_lookups_total{provider,cache}
	mAnswerVec *obs.CounterVec // dnssim_answers_total{provider,rrtype}
}

// NewResolver builds a resolver over all collected providers.
func NewResolver() *Resolver {
	return &Resolver{
		matcher: providers.NewMatcher(nil),
		deleted: make(map[string]struct{}),
	}
}

// MarkDeleted records that the function behind fqdn has been deleted.
// Subsequent queries return ErrNXDomain only if the provider lacks wildcard
// resolution (Tencent); other providers keep answering.
func (r *Resolver) MarkDeleted(fqdn string) {
	r.mu.Lock()
	r.deleted[strings.ToLower(fqdn)] = struct{}{}
	r.mu.Unlock()
}

// Deleted reports whether fqdn was marked deleted.
func (r *Resolver) Deleted(fqdn string) bool {
	r.mu.RLock()
	_, ok := r.deleted[strings.ToLower(fqdn)]
	r.mu.RUnlock()
	return ok
}

// Resolve answers one query for fqdn, drawing the record type and ingress
// node from the provider's policy using rng.
func (r *Resolver) Resolve(fqdn string, rng *rand.Rand) (Answer, error) {
	cl, pol, region, err := r.lookup(fqdn)
	if err != nil {
		return Answer{}, err
	}
	t := pol.SampleRType(rng)
	a, err := pol.answer(t, region, rng)
	if err == nil {
		cl.countAnswer(t)
	}
	return a, err
}

// ResolveRType answers one query forcing the record type, for callers that
// allocate request volume across types themselves (the workload generator
// enforces the Table 2 type mix this way).
func (r *Resolver) ResolveRType(fqdn string, t pdns.RType, rng *rand.Rand) (Answer, error) {
	cl, pol, region, err := r.lookup(fqdn)
	if err != nil {
		return Answer{}, err
	}
	a, err := pol.answer(t, region, rng)
	if err == nil {
		cl.countAnswer(t)
	}
	return a, err
}

// Instrument points the resolver's cache telemetry at reg. Call before
// resolving; a nil registry leaves the resolver un-instrumented.
func (r *Resolver) Instrument(reg *obs.Registry) {
	r.mHits = reg.Counter("dnssim_lookup_cache_hits_total")
	r.mMisses = reg.Counter("dnssim_lookup_cache_misses_total")
	r.mLookupVec = reg.CounterVec("dnssim_lookups_total", "provider", "cache")
	r.mAnswerVec = reg.CounterVec("dnssim_answers_total", "provider", "rrtype")
}

// cachedLookup is the immutable, deletion-independent part of one FQDN's
// resolution: its policy and region, or the terminal identification error.
type cachedLookup struct {
	pol      *Policy
	region   string
	name     string // provider display name, for error text
	wildcard bool
	err      error // non-nil: the FQDN never resolves (bad name / no policy)

	// Interned per-provider series, resolved once when the lookup is built;
	// all nil (and therefore no-op) on an un-instrumented resolver.
	hit      *obs.Counter // dnssim_lookups_total{provider,hit}
	ansA     *obs.Counter // dnssim_answers_total{provider,A}
	ansAAAA  *obs.Counter
	ansCNAME *obs.Counter
}

func (cl *cachedLookup) countAnswer(t pdns.RType) {
	switch t {
	case pdns.TypeA:
		cl.ansA.Inc()
	case pdns.TypeAAAA:
		cl.ansAAAA.Inc()
	case pdns.TypeCNAME:
		cl.ansCNAME.Inc()
	}
}

func (r *Resolver) lookup(fqdn string) (*cachedLookup, *Policy, string, error) {
	if v, ok := r.lookups.Load(fqdn); ok {
		cl := v.(*cachedLookup)
		r.mHits.Inc()
		cl.hit.Inc()
		return r.finish(fqdn, cl)
	}
	r.mMisses.Inc()
	cl := r.buildLookup(fqdn)
	r.lookups.Store(fqdn, cl)
	return r.finish(fqdn, cl)
}

// finish applies the per-query deletion check on top of a cached lookup.
func (r *Resolver) finish(fqdn string, cl *cachedLookup) (*cachedLookup, *Policy, string, error) {
	if cl.err != nil {
		return cl, nil, "", cl.err
	}
	if !cl.wildcard && r.Deleted(fqdn) {
		return cl, nil, "", fmt.Errorf("dnssim: %q deleted and %s has no wildcard: %w", fqdn, cl.name, ErrNXDomain)
	}
	return cl, cl.pol, cl.region, nil
}

func (r *Resolver) buildLookup(fqdn string) *cachedLookup {
	info, ok := r.matcher.Identify(fqdn)
	if !ok {
		cl := &cachedLookup{err: fmt.Errorf("dnssim: %q is not a function domain: %w", fqdn, ErrNXDomain)}
		r.intern(cl, "unknown")
		return cl
	}
	pol, ok := PolicyFor(info.ID)
	if !ok {
		cl := &cachedLookup{err: fmt.Errorf("dnssim: no policy for %s", info.Name)}
		r.intern(cl, info.Name)
		return cl
	}
	region := ""
	if p, ok := info.Parse(fqdn); ok {
		region = p.Region
	}
	cl := &cachedLookup{pol: pol, region: region, name: info.Name, wildcard: info.WildcardDNS}
	r.intern(cl, info.Name)
	return cl
}

// intern resolves the lookup's dimensional series and counts its cache miss.
func (r *Resolver) intern(cl *cachedLookup, provider string) {
	r.mLookupVec.With(provider, "miss").Inc()
	cl.hit = r.mLookupVec.With(provider, "hit")
	cl.ansA = r.mAnswerVec.With(provider, "A")
	cl.ansAAAA = r.mAnswerVec.With(provider, "AAAA")
	cl.ansCNAME = r.mAnswerVec.With(provider, "CNAME")
}

// answerKey identifies one memoised synthetic answer: the rdata is a pure
// function of (policy, rtype, region, node index).
type answerKey struct {
	t      pdns.RType
	region string
	idx    int
}

// answer synthesises the rdata for one (rtype, region) draw. The node index
// is always drawn from rng first — keeping the RNG consumption of every
// per-function stream fixed — and the synthesis itself is memoised per
// (rtype, region, idx): a two-year feed re-resolves each of a provider's
// few hundred ingress nodes millions of times, so the Sprintf/hash work
// collapses to a read-locked map hit after warm-up.
func (p *Policy) answer(t pdns.RType, region string, rng *rand.Rand) (Answer, error) {
	n := p.NodeCount(t, region)
	if n <= 0 {
		return Answer{}, fmt.Errorf("dnssim: %s has no %v ingress nodes in %q", p.Provider, t, region)
	}
	idx := p.pickNode(n, rng)
	key := answerKey{t, region, idx}
	p.ansMu.RLock()
	a, ok := p.ansCache[key]
	p.ansMu.RUnlock()
	if ok {
		return a, nil
	}
	owner := p.nodeOwner(idx)
	if p.Anycast {
		region = "global"
	}
	a = Answer{RType: t, Owner: owner, TTL: p.ttl()}
	switch t {
	case pdns.TypeA:
		a.RData = syntheticIPv4(p.Provider, owner, region, idx)
	case pdns.TypeAAAA:
		a.RData = syntheticIPv6(p.Provider, owner, region, idx)
	case pdns.TypeCNAME:
		a.RData = p.cname(region, idx)
	}
	p.ansMu.Lock()
	if p.ansCache == nil {
		p.ansCache = make(map[answerKey]Answer)
	}
	p.ansCache[key] = a
	p.ansMu.Unlock()
	return a, nil
}

// pickNode selects an ingress node index. AWS and the anycast providers
// spread load nearly uniformly (Table 2: AWS Top10 ≈ 2%); everyone else
// shows strong concentration, modelled with a harmonic rank distribution.
func (p *Policy) pickNode(n int, rng *rand.Rand) int {
	if n == 1 {
		return 0
	}
	if p.Provider == providers.AWS || p.Anycast {
		return rng.Intn(n)
	}
	// Harmonic weights w_i = 1/(i+1).
	total := harmonic(n)
	x := rng.Float64() * total
	for i := 0; i < n; i++ {
		x -= 1 / float64(i+1)
		if x <= 0 {
			return i
		}
	}
	return n - 1
}

var harmonicCache sync.Map // int -> float64

func harmonic(n int) float64 {
	if v, ok := harmonicCache.Load(n); ok {
		return v.(float64)
	}
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	harmonicCache.Store(n, h)
	return h
}

func (p *Policy) nodeOwner(idx int) Owner {
	if len(p.ThirdPartyOwner) == 0 {
		return OwnerProvider
	}
	return p.ThirdPartyOwner[idx%len(p.ThirdPartyOwner)]
}

func (p *Policy) ttl() int {
	if p.Anycast {
		return 300
	}
	return 60
}

// cname builds the alias target for a CNAME answer.
func (p *Policy) cname(region string, idx int) string {
	switch p.Provider {
	case providers.Aliyun:
		return fmt.Sprintf("fc-ingress-%d.%s.aliyuncs.com", idx, region)
	case providers.Baidu:
		op := []string{"ct", "cu", "cm"}[idx%3]
		return fmt.Sprintf("cfc-%s.%s.bcelb.com", region, op)
	case providers.Tencent:
		// Geographic aliases like gz.scf.tencentcs.com (paper §4.2).
		return fmt.Sprintf("%s.scf.tencentcs.com", tencentGeoCode(region, idx))
	case providers.IBM:
		return fmt.Sprintf("%s.functions.appdomain.cloud.cdn.cloudflare.net", region)
	default:
		return fmt.Sprintf("ingress-%d.%s.%s", idx, region, providers.Get(p.Provider).DomainSuffix)
	}
}

// tencentGeoCode maps a Tencent region to the short geographic label used in
// its CNAME aliases; idx distinguishes the primary and backup alias.
func tencentGeoCode(region string, idx int) string {
	code, ok := tencentGeo[region]
	if !ok {
		code = strings.TrimPrefix(region, "ap-")
		if len(code) > 3 {
			code = code[:3]
		}
	}
	if idx > 0 {
		code = fmt.Sprintf("%s%d", code, idx+1)
	}
	return code
}

var tencentGeo = map[string]string{
	"ap-beijing": "bj", "ap-chengdu": "cd", "ap-chongqing": "cq",
	"ap-guangzhou": "gz", "ap-shanghai": "sh", "ap-nanjing": "nj",
	"ap-hongkong": "hk", "ap-mumbai": "mum", "ap-seoul": "sel",
	"ap-singapore": "sg", "ap-bangkok": "bkk", "ap-tokyo": "tyo",
	"ap-jakarta": "jkt", "eu-frankfurt": "fra", "eu-moscow": "mow",
	"na-ashburn": "iad", "na-siliconvalley": "sjc", "na-toronto": "yyz",
	"sa-saopaulo": "gru", "ap-shenzhen-fsi": "szf", "ap-shanghai-fsi": "shf",
	"ap-beijing-fsi": "bjf",
}

// syntheticIPv4 derives a stable IPv4 address for ingress node idx of
// (provider, region). Third-party nodes land in the operator's address
// space so the ownership analysis can attribute them.
func syntheticIPv4(id providers.ID, owner Owner, region string, idx int) string {
	var base [2]byte
	switch owner {
	case OwnerChinaTelecom:
		base = [2]byte{101, 33}
	case OwnerChinaUnicom:
		base = [2]byte{112, 65}
	case OwnerChinaMobile:
		base = [2]byte{120, 197}
	case OwnerCloudflare:
		base = [2]byte{104, 16}
	default:
		// Provider-owned prefixes, one /8-ish base per provider.
		base = [2]byte{byte(13 + int(id)*7), byte(32 + int(id))}
	}
	h := hash32(fmt.Sprintf("%d|%s|%d", int(id), region, idx))
	return fmt.Sprintf("%d.%d.%d.%d", base[0], base[1], byte(h>>8), byte(h))
}

// syntheticIPv6 derives a stable IPv6 address for ingress node idx.
// Cloudflare-fronted nodes land in a Cloudflare-style prefix so ownership
// can be recovered from the address alone.
func syntheticIPv6(id providers.ID, owner Owner, region string, idx int) string {
	h := hash32(fmt.Sprintf("v6|%d|%s|%d", int(id), region, idx))
	if owner == OwnerCloudflare {
		return fmt.Sprintf("2606:4700:%x::%x", h&0xffff, (h>>16)&0xffff)
	}
	return fmt.Sprintf("2600:%x:%x::%x", 0x1000+int(id), h&0xffff, (h>>16)&0xffff)
}

func hash32(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}

// ObservedQueries models recursive-resolver caching (paper §3.2: request_cnt
// is a conservative lower bound on invocations). Given invocations spread
// over activeSeconds and a record TTL, the expected number of cache-miss
// queries is the number of TTL windows containing at least one arrival:
//
//	misses ≈ (T/τ) · (1 − e^(−λτ/T))
//
// The result is clamped to [1, invocations] for invocations > 0.
func ObservedQueries(invocations int64, activeSeconds, ttl float64) int64 {
	if invocations <= 0 {
		return 0
	}
	if activeSeconds <= 0 || ttl <= 0 {
		return invocations
	}
	windows := activeSeconds / ttl
	if windows < 1 {
		windows = 1
	}
	lam := float64(invocations)
	misses := windows * (1 - math.Exp(-lam/windows))
	obs := int64(math.Ceil(misses))
	if obs < 1 {
		obs = 1
	}
	if obs > invocations {
		obs = invocations
	}
	return obs
}
