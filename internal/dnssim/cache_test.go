package dnssim

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
	"repro/internal/providers"
)

// TestLookupCacheHitMiss verifies the memoised lookup path: first query per
// FQDN misses, repeats hit, and answers stay identical to the uncached path.
func TestLookupCacheHitMiss(t *testing.T) {
	r := NewResolver()
	reg := obs.NewRegistry()
	r.Instrument(reg)

	fqdn := "myfn-1234567890-uc.a.run.app"
	rng := rand.New(rand.NewSource(1))
	if _, err := r.Resolve(fqdn, rng); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, err := r.Resolve(fqdn, rng); err != nil {
			t.Fatal(err)
		}
	}
	s := reg.Snapshot()
	if s.Counters["dnssim_lookup_cache_misses_total"] != 1 {
		t.Fatalf("misses = %d, want 1", s.Counters["dnssim_lookup_cache_misses_total"])
	}
	if s.Counters["dnssim_lookup_cache_hits_total"] != 9 {
		t.Fatalf("hits = %d, want 9", s.Counters["dnssim_lookup_cache_hits_total"])
	}

	// Negative entries cache too, and still fail.
	for i := 0; i < 2; i++ {
		if _, err := r.Resolve("not-a-function.example.com", rng); !errors.Is(err, ErrNXDomain) {
			t.Fatalf("want NXDOMAIN, got %v", err)
		}
	}
}

// TestLookupCacheDeletionDynamic verifies deletion state is never cached:
// a Tencent function resolves, is marked deleted, and must NXDOMAIN on the
// very next query even though its lookup is cached.
func TestLookupCacheDeletionDynamic(t *testing.T) {
	r := NewResolver()
	rng := rand.New(rand.NewSource(2))
	fqdn := providers.Get(providers.Tencent).Generate(rng, "ap-guangzhou")
	if _, err := r.Resolve(fqdn, rng); err != nil {
		t.Fatalf("pre-deletion resolve: %v", err)
	}
	r.MarkDeleted(fqdn)
	if _, err := r.Resolve(fqdn, rng); !errors.Is(err, ErrNXDomain) {
		t.Fatalf("post-deletion resolve = %v, want NXDOMAIN", err)
	}
}

// TestLookupCacheConcurrent hammers one resolver from many goroutines; run
// with -race.
func TestLookupCacheConcurrent(t *testing.T) {
	r := NewResolver()
	r.Instrument(obs.NewRegistry())
	fqdns := []string{
		"a-1234567890-uc.a.run.app",
		"b-1234567890-uc.a.run.app",
		"fn.azurewebsites.net",
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				r.Resolve(fqdns[i%len(fqdns)], rng)
			}
		}()
	}
	wg.Wait()
}
