package prof

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
)

// This file is a minimal decoder for the pprof profile.proto wire format —
// just enough of protobuf (varints, length-delimited submessages, packed
// repeated scalars) to walk the sample/location/function/string tables that
// hotspot folding needs. Mappings, line numbers, and the other fields the
// tables don't read are skipped, not modeled.

// maxProfileBytes bounds the decompressed size a gzipped profile may claim;
// runtime/pprof profiles for this pipeline are a few hundred KiB at most.
const maxProfileBytes = 128 << 20

// ValueType names one sample value column (e.g. cpu/nanoseconds).
type ValueType struct {
	Type string
	Unit string
}

// Sample is one pprof sample: its location stack (leaf first), one value
// per sample-type column, and its string/numeric pprof labels.
type Sample struct {
	LocationIDs []uint64
	Values      []int64
	Labels      map[string]string
	NumLabels   map[string]int64
}

// Profile is the decoded subset of a pprof profile the hotspot tables read.
type Profile struct {
	SampleTypes       []ValueType
	Samples           []Sample
	TimeNanos         int64
	DurationNanos     int64
	Period            int64
	PeriodType        ValueType
	DefaultSampleType string

	locFuncs  map[uint64][]uint64 // location id -> function ids, leaf inline frame first
	funcNames map[uint64]string
}

// Decode parses a pprof profile, transparently gunzipping (runtime/pprof
// writes gzip-compressed protobuf at debug level 0).
func Decode(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		raw, err := io.ReadAll(io.LimitReader(zr, maxProfileBytes+1))
		if err != nil {
			return nil, fmt.Errorf("prof: gunzip: %w", err)
		}
		if len(raw) > maxProfileBytes {
			return nil, fmt.Errorf("prof: profile exceeds %d bytes decompressed", maxProfileBytes)
		}
		data = raw
	}
	return parseProfile(data)
}

// Stack resolves a sample's function-name stack, leaf first, expanding
// inlined frames. Unknown ids render as "func#<id>" rather than failing:
// a stripped or foreign profile still folds, just less readably.
func (p *Profile) Stack(s *Sample) []string {
	out := make([]string, 0, len(s.LocationIDs))
	for _, lid := range s.LocationIDs {
		fids := p.locFuncs[lid]
		if len(fids) == 0 {
			out = append(out, fmt.Sprintf("loc#%d", lid))
			continue
		}
		for _, fid := range fids {
			out = append(out, p.funcName(fid))
		}
	}
	return out
}

// Leaf resolves the sample's leaf function name (innermost inline frame of
// the first location), or "" for an empty stack.
func (p *Profile) Leaf(s *Sample) string {
	if len(s.LocationIDs) == 0 {
		return ""
	}
	fids := p.locFuncs[s.LocationIDs[0]]
	if len(fids) == 0 {
		return fmt.Sprintf("loc#%d", s.LocationIDs[0])
	}
	return p.funcName(fids[0])
}

func (p *Profile) funcName(id uint64) string {
	if name, ok := p.funcNames[id]; ok && name != "" {
		return name
	}
	return fmt.Sprintf("func#%d", id)
}

// ValueIndex picks the sample value column: the column whose type matches
// typ when given, else the profile's default sample type, else the last
// column — which is cpu/nanoseconds for CPU profiles and inuse_space for
// heap profiles, the two defaults the tables want.
func (p *Profile) ValueIndex(typ string) int {
	if typ != "" {
		for i, st := range p.SampleTypes {
			if st.Type == typ {
				return i
			}
		}
	}
	if p.DefaultSampleType != "" {
		for i, st := range p.SampleTypes {
			if st.Type == p.DefaultSampleType {
				return i
			}
		}
	}
	return len(p.SampleTypes) - 1
}

// Unit returns the unit of value column vi, "" when out of range.
func (p *Profile) Unit(vi int) string {
	if vi < 0 || vi >= len(p.SampleTypes) {
		return ""
	}
	return p.SampleTypes[vi].Unit
}

// ---- wire-format walker ----

// field is one decoded protobuf field: number, wire type, and either the
// varint/fixed value or the length-delimited payload.
type field struct {
	num  int
	wire int
	val  uint64
	body []byte
}

// walker iterates the fields of one message body.
type walker struct {
	buf []byte
	pos int
}

func (w *walker) done() bool { return w.pos >= len(w.buf) }

// next decodes one field header + payload, erroring on truncation or a wire
// type protobuf does not define (3 and 4 — group markers — are rejected
// too: profile.proto never uses them).
func (w *walker) next() (field, error) {
	var f field
	key, err := w.varint()
	if err != nil {
		return f, err
	}
	f.num = int(key >> 3)
	f.wire = int(key & 7)
	if f.num == 0 {
		return f, fmt.Errorf("prof: field number 0")
	}
	switch f.wire {
	case 0: // varint
		f.val, err = w.varint()
	case 1: // fixed64
		if w.pos+8 > len(w.buf) {
			return f, io.ErrUnexpectedEOF
		}
		for i := 0; i < 8; i++ {
			f.val |= uint64(w.buf[w.pos+i]) << (8 * i)
		}
		w.pos += 8
	case 2: // length-delimited
		n, err2 := w.varint()
		if err2 != nil {
			return f, err2
		}
		if n > uint64(len(w.buf)-w.pos) {
			return f, io.ErrUnexpectedEOF
		}
		f.body = w.buf[w.pos : w.pos+int(n)]
		w.pos += int(n)
	case 5: // fixed32
		if w.pos+4 > len(w.buf) {
			return f, io.ErrUnexpectedEOF
		}
		for i := 0; i < 4; i++ {
			f.val |= uint64(w.buf[w.pos+i]) << (8 * i)
		}
		w.pos += 4
	default:
		return f, fmt.Errorf("prof: unsupported wire type %d", f.wire)
	}
	return f, err
}

func (w *walker) varint() (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		if w.pos >= len(w.buf) {
			return 0, io.ErrUnexpectedEOF
		}
		b := w.buf[w.pos]
		w.pos++
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("prof: varint overflows 64 bits")
}

// uints decodes a repeated uint64 field that may arrive packed (one
// length-delimited blob) or unpacked (one varint per occurrence).
func appendUints(dst []uint64, f field) ([]uint64, error) {
	if f.wire != 2 {
		return append(dst, f.val), nil
	}
	w := &walker{buf: f.body}
	for !w.done() {
		v, err := w.varint()
		if err != nil {
			return dst, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

func appendInts(dst []int64, f field) ([]int64, error) {
	us, err := appendUints(nil, f)
	if err != nil {
		return dst, err
	}
	for _, u := range us {
		dst = append(dst, int64(u))
	}
	return dst, nil
}

// parseProfile walks the top-level Profile message.
func parseProfile(data []byte) (*Profile, error) {
	p := &Profile{
		locFuncs:  map[uint64][]uint64{},
		funcNames: map[uint64]string{},
	}
	var strTab []string
	var sampleBodies, locBodies, fnBodies [][]byte
	var ptBody []byte
	var stBodies [][]byte
	var defaultIdx uint64

	w := &walker{buf: data}
	for !w.done() {
		f, err := w.next()
		if err != nil {
			return nil, err
		}
		switch f.num {
		case 1: // sample_type
			if f.wire != 2 {
				return nil, fmt.Errorf("prof: sample_type: wire type %d", f.wire)
			}
			stBodies = append(stBodies, f.body)
		case 2: // sample
			if f.wire != 2 {
				return nil, fmt.Errorf("prof: sample: wire type %d", f.wire)
			}
			sampleBodies = append(sampleBodies, f.body)
		case 4: // location
			if f.wire != 2 {
				return nil, fmt.Errorf("prof: location: wire type %d", f.wire)
			}
			locBodies = append(locBodies, f.body)
		case 5: // function
			if f.wire != 2 {
				return nil, fmt.Errorf("prof: function: wire type %d", f.wire)
			}
			fnBodies = append(fnBodies, f.body)
		case 6: // string_table
			if f.wire != 2 {
				return nil, fmt.Errorf("prof: string_table: wire type %d", f.wire)
			}
			strTab = append(strTab, string(f.body))
		case 9:
			p.TimeNanos = int64(f.val)
		case 10:
			p.DurationNanos = int64(f.val)
		case 11: // period_type
			if f.wire == 2 {
				ptBody = f.body
			}
		case 12:
			p.Period = int64(f.val)
		case 14:
			defaultIdx = f.val
		}
	}

	str := func(idx uint64) string {
		if idx < uint64(len(strTab)) {
			return strTab[idx]
		}
		return ""
	}

	for _, body := range stBodies {
		vt, err := parseValueType(body, str)
		if err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, vt)
	}
	if ptBody != nil {
		vt, err := parseValueType(ptBody, str)
		if err != nil {
			return nil, err
		}
		p.PeriodType = vt
	}
	p.DefaultSampleType = str(defaultIdx)

	for _, body := range fnBodies {
		if err := parseFunction(body, str, p.funcNames); err != nil {
			return nil, err
		}
	}
	for _, body := range locBodies {
		if err := parseLocation(body, p.locFuncs); err != nil {
			return nil, err
		}
	}
	for _, body := range sampleBodies {
		s, err := parseSample(body, str)
		if err != nil {
			return nil, err
		}
		p.Samples = append(p.Samples, s)
	}
	return p, nil
}

func parseValueType(body []byte, str func(uint64) string) (ValueType, error) {
	var vt ValueType
	w := &walker{buf: body}
	for !w.done() {
		f, err := w.next()
		if err != nil {
			return vt, err
		}
		switch f.num {
		case 1:
			vt.Type = str(f.val)
		case 2:
			vt.Unit = str(f.val)
		}
	}
	return vt, nil
}

func parseFunction(body []byte, str func(uint64) string, names map[uint64]string) error {
	var id uint64
	var name string
	w := &walker{buf: body}
	for !w.done() {
		f, err := w.next()
		if err != nil {
			return err
		}
		switch f.num {
		case 1:
			id = f.val
		case 2:
			name = str(f.val)
		}
	}
	names[id] = name
	return nil
}

// parseLocation records a location's function ids in Line order — pprof
// puts the innermost inlined frame first, which Leaf relies on.
func parseLocation(body []byte, locFuncs map[uint64][]uint64) error {
	var id uint64
	var fids []uint64
	w := &walker{buf: body}
	for !w.done() {
		f, err := w.next()
		if err != nil {
			return err
		}
		switch f.num {
		case 1:
			id = f.val
		case 4: // line
			if f.wire != 2 {
				return fmt.Errorf("prof: line: wire type %d", f.wire)
			}
			lw := &walker{buf: f.body}
			for !lw.done() {
				lf, err := lw.next()
				if err != nil {
					return err
				}
				if lf.num == 1 { // function_id
					fids = append(fids, lf.val)
				}
			}
		}
	}
	locFuncs[id] = fids
	return nil
}

func parseSample(body []byte, str func(uint64) string) (Sample, error) {
	var s Sample
	w := &walker{buf: body}
	for !w.done() {
		f, err := w.next()
		if err != nil {
			return s, err
		}
		switch f.num {
		case 1: // location_id
			if s.LocationIDs, err = appendUints(s.LocationIDs, f); err != nil {
				return s, err
			}
		case 2: // value
			if s.Values, err = appendInts(s.Values, f); err != nil {
				return s, err
			}
		case 3: // label
			if f.wire != 2 {
				return s, fmt.Errorf("prof: label: wire type %d", f.wire)
			}
			key, sval, nval, isNum, err := parseLabel(f.body, str)
			if err != nil {
				return s, err
			}
			if isNum {
				if s.NumLabels == nil {
					s.NumLabels = map[string]int64{}
				}
				s.NumLabels[key] = nval
			} else if key != "" {
				if s.Labels == nil {
					s.Labels = map[string]string{}
				}
				s.Labels[key] = sval
			}
		}
	}
	return s, nil
}

func parseLabel(body []byte, str func(uint64) string) (key, sval string, nval int64, isNum bool, err error) {
	w := &walker{buf: body}
	for !w.done() {
		f, ferr := w.next()
		if ferr != nil {
			return "", "", 0, false, ferr
		}
		switch f.num {
		case 1:
			key = str(f.val)
		case 2:
			sval = str(f.val)
		case 3:
			nval, isNum = int64(f.val), true
		}
	}
	return key, sval, nval, isNum, nil
}
