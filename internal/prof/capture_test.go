package prof

import (
	"fmt"
	"sync"
	"testing"
)

func TestNilCapturerIsNoOp(t *testing.T) {
	var c *Capturer = NewCapturer(false)
	if c != nil {
		t.Fatal("disabled capturer must be nil")
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	c.StageBoundary("identify")
	if snaps := c.Stop(); snaps != nil {
		t.Fatalf("nil capturer returned snapshots: %v", snaps)
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCapturerStageBoundaries(t *testing.T) {
	c := NewCapturer(true)
	if err := c.Start(); err != nil {
		// Another CPU profile may be active (e.g. go test -cpuprofile);
		// boundary snapshots must still work.
		t.Logf("cpu profile unavailable: %v", err)
	}
	c.StageBoundary("substrate") // first boundary: nothing finished yet
	c.StageBoundary("identify")  // snapshots substrate
	c.StageBoundary("probe")     // snapshots identify
	snaps := c.Stop()            // snapshots probe (+ cpu when it started)

	byName := map[string]Snapshot{}
	for _, s := range snaps {
		byName[s.FileName()] = s
	}
	for _, stage := range []string{"substrate", "identify", "probe"} {
		for _, kind := range SnapshotKinds {
			name := stage + "-" + kind + ".pb.gz"
			s, ok := byName[name]
			if !ok {
				t.Fatalf("missing snapshot %s (have %d)", name, len(snaps))
			}
			if _, err := Decode(s.Data); err != nil {
				t.Fatalf("snapshot %s does not decode: %v", name, err)
			}
		}
	}
	// Stop is idempotent and stable.
	if again := c.Stop(); len(again) != len(snaps) {
		t.Fatalf("second Stop returned %d snapshots, want %d", len(again), len(snaps))
	}
}

// TestCapturerConcurrentBoundaries is the race test for stage-boundary
// snapshot capture: boundaries arriving from many goroutines (as a future
// concurrent pipeline shape might deliver them) must not race or corrupt
// the snapshot list. Run under -race via the Makefile race target.
func TestCapturerConcurrentBoundaries(t *testing.T) {
	c := NewCapturer(true)
	if err := c.Start(); err != nil {
		t.Logf("cpu profile unavailable: %v", err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				c.StageBoundary(fmt.Sprintf("stage-%d-%d", g, i))
			}
		}(g)
	}
	wg.Wait()
	snaps := c.Stop()
	if len(snaps) == 0 {
		t.Fatal("no snapshots captured")
	}
	for _, s := range snaps {
		if _, err := Decode(s.Data); err != nil {
			t.Fatalf("snapshot %s does not decode: %v", s.FileName(), err)
		}
	}
}
