package prof

import (
	"fmt"
	"sort"
	"strings"
)

// DriftRow is one function's flat-value movement between a baseline and a
// candidate profile. Shares are fractions of each profile's own total, so
// two machines with different absolute speeds still compare: a function
// whose share of the run grew got relatively slower no matter the hardware.
type DriftRow struct {
	Name     string
	BaseFlat int64
	CandFlat int64
	BasePct  float64 // share of baseline total, in percent
	CandPct  float64 // share of candidate total, in percent
	DeltaPct float64 // CandPct - BasePct, percentage points
	DeltaAbs int64   // CandFlat - BaseFlat
}

// Drift is the per-function flat-share comparison of two profiles.
type Drift struct {
	// TooSmall is set when either side's total is under the min-sample
	// floor; Rows is then empty and any consumer must treat the comparison
	// as "not enough signal", never as "no drift".
	TooSmall  bool
	BaseTotal int64
	CandTotal int64
	Unit      string
	Type      string
	Rows      []DriftRow // sorted by |DeltaPct| descending, name ascending
}

// DiffFlat compares per-function flat values between base and cand on the
// value column named typ ("" selects each profile's default column).
// minTotal is the min-sample floor: when either profile's total is below
// it, the result is marked TooSmall and carries no rows — tiny profiles
// produce share noise, not signal, and must never gate anything.
func DiffFlat(base, cand *Profile, typ string, minTotal int64) Drift {
	bvi, cvi := base.ValueIndex(typ), cand.ValueIndex(typ)
	d := Drift{
		BaseTotal: TotalValue(base, bvi),
		CandTotal: TotalValue(cand, cvi),
		Unit:      cand.Unit(cvi),
	}
	if cvi >= 0 && cvi < len(cand.SampleTypes) {
		d.Type = cand.SampleTypes[cvi].Type
	}
	if minTotal > 0 && (d.BaseTotal < minTotal || d.CandTotal < minTotal) {
		d.TooSmall = true
		return d
	}
	if d.BaseTotal == 0 || d.CandTotal == 0 {
		d.TooSmall = true
		return d
	}
	flat := map[string]*DriftRow{}
	for _, st := range FlatTable(base, bvi) {
		flat[st.Name] = &DriftRow{Name: st.Name, BaseFlat: st.Flat}
	}
	for _, st := range FlatTable(cand, cvi) {
		r := flat[st.Name]
		if r == nil {
			r = &DriftRow{Name: st.Name}
			flat[st.Name] = r
		}
		r.CandFlat = st.Flat
	}
	for _, r := range flat {
		r.BasePct = 100 * float64(r.BaseFlat) / float64(d.BaseTotal)
		r.CandPct = 100 * float64(r.CandFlat) / float64(d.CandTotal)
		r.DeltaPct = r.CandPct - r.BasePct
		r.DeltaAbs = r.CandFlat - r.BaseFlat
		d.Rows = append(d.Rows, *r)
	}
	sort.Slice(d.Rows, func(i, j int) bool {
		ai, aj := abs(d.Rows[i].DeltaPct), abs(d.Rows[j].DeltaPct)
		if ai != aj {
			return ai > aj
		}
		return d.Rows[i].Name < d.Rows[j].Name
	})
	return d
}

// RenderDrift renders the top-n drift rows as aligned text, largest
// absolute share movement first. Deterministic given the same profiles.
func RenderDrift(d Drift, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Flat %s drift, candidate vs baseline (totals %s -> %s)\n",
		d.Type, FormatValue(d.BaseTotal, d.Unit), FormatValue(d.CandTotal, d.Unit))
	if d.TooSmall {
		b.WriteString("  too few samples on at least one side; drift not comparable\n")
		return b.String()
	}
	if n <= 0 || n > len(d.Rows) {
		n = len(d.Rows)
	}
	rows := make([][4]string, 0, n)
	for _, r := range d.Rows[:n] {
		rows = append(rows, [4]string{
			fmt.Sprintf("%.2f%%", r.BasePct),
			fmt.Sprintf("%.2f%%", r.CandPct),
			fmt.Sprintf("%+.2fpp", r.DeltaPct),
			r.Name,
		})
	}
	w1, w2, w3 := len("base"), len("cand"), len("Δshare")
	for _, r := range rows {
		w1, w2, w3 = maxLen(w1, r[0]), maxLen(w2, r[1]), maxLen(w3, r[2])
	}
	fmt.Fprintf(&b, "  %*s  %*s  %*s  %s\n", w1, "base", w2, "cand", w3, "Δshare", "function")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %*s  %*s  %*s  %s\n", w1, r[0], w2, r[1], w3, r[2], r[3])
	}
	return b.String()
}

// RenderGrowth renders the top-n rows by absolute growth (DeltaAbs
// descending) — the shape the live delta-heap endpoint wants, where "which
// function's in-use bytes grew" matters more than share movement.
func RenderGrowth(d Drift, n int) string {
	rows := append([]DriftRow(nil), d.Rows...)
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].DeltaAbs != rows[j].DeltaAbs {
			return rows[i].DeltaAbs > rows[j].DeltaAbs
		}
		return rows[i].Name < rows[j].Name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%s growth over the window (totals %s -> %s)\n",
		d.Type, FormatValue(d.BaseTotal, d.Unit), FormatValue(d.CandTotal, d.Unit))
	if d.TooSmall {
		b.WriteString("  too few samples on at least one side; growth not comparable\n")
		return b.String()
	}
	if n <= 0 || n > len(rows) {
		n = len(rows)
	}
	out := make([][3]string, 0, n)
	for _, r := range rows[:n] {
		delta := FormatValue(r.DeltaAbs, d.Unit)
		if r.DeltaAbs > 0 {
			delta = "+" + delta
		}
		out = append(out, [3]string{delta, FormatValue(r.CandFlat, d.Unit), r.Name})
	}
	w1, w2 := len("delta"), len("now")
	for _, r := range out {
		w1, w2 = maxLen(w1, r[0]), maxLen(w2, r[1])
	}
	fmt.Fprintf(&b, "  %*s  %*s  %s\n", w1, "delta", w2, "now", "function")
	for _, r := range out {
		fmt.Fprintf(&b, "  %*s  %*s  %s\n", w1, r[0], w2, r[1], r[2])
	}
	return b.String()
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}
