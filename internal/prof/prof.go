// Package prof is the pipeline's continuous-profiling subsystem: a capture
// manager that records one CPU profile across a whole run (with per-stage /
// per-shard attribution riding on runtime/pprof labels) plus heap, allocs,
// block, and mutex snapshots at every stage boundary, and a minimal decoder
// for the resulting pprof protobuf that folds samples into deterministic
// hotspot and drift tables — no github.com/google/pprof dependency, stdlib
// only.
//
// Profiles observe a run, they never change one: everything captured here
// lands on the machine-varying half of a run archive
// (.runs/<id>/profiles/<stage>-<kind>.pb.gz), and the enabling flag is
// excluded from the run-ID hash exactly like the resource sampler's
// interval, so toggling profiling cannot move a run ID or any golden
// artifact fingerprint.
package prof

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
)

// SnapshotKinds are the runtime profiles captured at every stage boundary,
// in capture order. CPU is not in the list: it is one continuous capture
// across the whole run, attributed per stage by pprof labels instead of by
// boundary snapshots (Go allows only one active CPU profile per process).
var SnapshotKinds = []string{"heap", "allocs", "block", "mutex"}

// CPUSnapshotStage is the synthetic stage name of the run-wide CPU profile:
// its samples span every stage, so no single stage name fits.
const CPUSnapshotStage = "pipeline"

// Snapshot is one captured profile: the stage it is attributed to, the
// runtime profile kind, and the raw gzipped-protobuf bytes exactly as
// runtime/pprof wrote them.
type Snapshot struct {
	Stage string
	Kind  string
	Data  []byte
}

// FileName is the snapshot's archive file name under profiles/.
func (s Snapshot) FileName() string { return s.Stage + "-" + s.Kind + ".pb.gz" }

// blockProfileRate samples one blocking event per millisecond of cumulative
// blocking; mutexProfileFraction samples 1% of contended mutex events. Both
// are modest enough that an enabled run stays within a few percent of an
// unprofiled one, and both are restored to off at Stop.
const (
	blockProfileRate     = 1_000_000 // ns of blocking per sampled event
	mutexProfileFraction = 100
)

// Capturer records a run's profiles: Start begins the run-wide CPU capture
// (and turns on block/mutex sampling), StageBoundary snapshots the
// SnapshotKinds for the stage that just finished, and Stop closes the CPU
// capture and returns every snapshot taken. A nil *Capturer is a valid
// no-op — NewCapturer(false) returns one — so callers wire it
// unconditionally and let the enabling flag decide whether it exists.
// All methods are safe for concurrent use.
type Capturer struct {
	mu      sync.Mutex
	cpu     bytes.Buffer
	cur     string // stage the next boundary snapshot is attributed to
	snaps   []Snapshot
	cpuOn   bool
	stopped bool
	err     error
}

// NewCapturer returns a ready Capturer, or the nil no-op when profiling is
// disabled.
func NewCapturer(enabled bool) *Capturer {
	if !enabled {
		return nil
	}
	return &Capturer{}
}

// Start begins the run-wide CPU profile and enables block/mutex sampling.
// Failure to start the CPU profile (another capture is already active in
// the process) is recorded and returned, but the boundary snapshots still
// work — a run inside a test that profiles never loses its heap story.
func (c *Capturer) Start() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	runtime.SetBlockProfileRate(blockProfileRate)
	runtime.SetMutexProfileFraction(mutexProfileFraction)
	if err := pprof.StartCPUProfile(&c.cpu); err != nil {
		c.err = fmt.Errorf("prof: cpu profile: %w", err)
		return c.err
	}
	c.cpuOn = true
	return nil
}

// Err returns the first capture error, if any.
func (c *Capturer) Err() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// StageBoundary marks the transition into stage next: it snapshots every
// SnapshotKind for the stage that was current (none on the first call — no
// stage has finished yet) and makes next the current stage. Boundary
// snapshots capture the runtime state a stage left behind, which is what a
// leak hunt wants: "the heap after identify" rather than "the heap at some
// instant inside it".
func (c *Capturer) StageBoundary(next string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snapshotLocked()
	c.cur = next
}

// snapshotLocked captures the SnapshotKinds for the current stage. Caller
// holds mu. Re-entered boundaries for the same stage overwrite: the archive
// keeps the newest snapshot per (stage, kind) file name.
func (c *Capturer) snapshotLocked() {
	if c.cur == "" || c.stopped {
		return
	}
	for _, kind := range SnapshotKinds {
		p := pprof.Lookup(kind)
		if p == nil {
			continue
		}
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, 0); err != nil {
			if c.err == nil {
				c.err = fmt.Errorf("prof: %s snapshot: %w", kind, err)
			}
			continue
		}
		c.snaps = append(c.snaps, Snapshot{Stage: c.cur, Kind: kind, Data: buf.Bytes()})
	}
}

// Stop snapshots the final stage, ends the CPU capture, restores the
// block/mutex sampling rates, and returns every snapshot taken — the CPU
// profile last, under CPUSnapshotStage. Second and later calls return the
// same snapshots without capturing again.
func (c *Capturer) Stop() []Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return c.snaps
	}
	c.snapshotLocked()
	c.stopped = true
	runtime.SetBlockProfileRate(0)
	runtime.SetMutexProfileFraction(0)
	if c.cpuOn {
		pprof.StopCPUProfile()
		c.cpuOn = false
		c.snaps = append(c.snaps, Snapshot{Stage: CPUSnapshotStage, Kind: "cpu", Data: c.cpu.Bytes()})
	}
	return c.snaps
}
