package prof

import (
	"bytes"
	"context"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// heapProfileBytes captures this process's heap profile in the gzipped
// protobuf format runtime/pprof archives use.
func heapProfileBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err != nil {
		t.Fatalf("heap profile: %v", err)
	}
	return buf.Bytes()
}

// sink keeps allocations from being optimised away.
var sink [][]byte

func TestDecodeHeapRoundTrip(t *testing.T) {
	// Allocate something attributable so the profile is not empty.
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 64<<10))
	}
	runtime.GC() // heap profile snapshots as of the last GC
	data := heapProfileBytes(t)
	p, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	types := map[string]bool{}
	for _, st := range p.SampleTypes {
		types[st.Type] = true
	}
	for _, want := range []string{"alloc_objects", "alloc_space", "inuse_objects", "inuse_space"} {
		if !types[want] {
			t.Fatalf("sample types %v missing %s", p.SampleTypes, want)
		}
	}
	vi := p.ValueIndex("inuse_space")
	if unit := p.Unit(vi); unit != "bytes" {
		t.Fatalf("inuse_space unit = %q, want bytes", unit)
	}
	if TotalValue(p, vi) <= 0 {
		t.Fatal("no in-use bytes decoded from a live heap")
	}
	// Function names must resolve through the string table: at least one
	// frame of the allocation above should name this package or testing.
	stats := FlatTable(p, vi)
	if len(stats) == 0 {
		t.Fatal("no functions folded")
	}
	var found bool
	for _, st := range stats {
		if strings.Contains(st.Name, "prof.") || strings.Contains(st.Name, "testing.") {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no resolvable function names in %d stats (first: %q)", len(stats), stats[0].Name)
	}
}

func TestDecodeCPULabels(t *testing.T) {
	// Capture a short CPU profile with labeled busy work; loaded CI boxes
	// can deliver zero samples, so retry and skip rather than flake.
	var p *Profile
	for attempt := 0; attempt < 3; attempt++ {
		var buf bytes.Buffer
		if err := pprof.StartCPUProfile(&buf); err != nil {
			t.Skipf("cpu profile unavailable: %v", err)
		}
		pprof.Do(context.Background(), pprof.Labels("stage", "spin"), func(context.Context) {
			deadline := time.Now().Add(150 * time.Millisecond)
			x := 0
			for time.Now().Before(deadline) {
				x += x*31 + 7
			}
			runtime.KeepAlive(x)
		})
		pprof.StopCPUProfile()
		var err error
		p, err = Decode(buf.Bytes())
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if len(p.Samples) > 0 {
			break
		}
	}
	if p == nil || len(p.Samples) == 0 {
		t.Skip("no CPU samples captured (machine too loaded or clock too coarse)")
	}
	if p.PeriodType.Type != "cpu" {
		t.Fatalf("period type %+v, want cpu", p.PeriodType)
	}
	vi := p.ValueIndex("cpu")
	if unit := p.Unit(vi); unit != "nanoseconds" {
		t.Fatalf("cpu unit = %q, want nanoseconds", unit)
	}
	if share := LabeledShare(p, "stage", vi); share <= 0 {
		t.Fatalf("no samples carry the stage label (share %.3f)", share)
	}
	labels := LabelTable(p, "stage", vi)
	if len(labels) == 0 || labels[0].Value != "spin" && !hasLabel(labels, "spin") {
		t.Fatalf("label table %v missing spin", labels)
	}
}

func hasLabel(ls []LabelStat, v string) bool {
	for _, l := range ls {
		if l.Value == v {
			return true
		}
	}
	return false
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, data := range [][]byte{
		{0x08},                   // truncated varint field
		{0xff, 0xff, 0xff, 0xff}, // nonsense keys
		{0x1f, 0x8b, 0x00},       // gzip magic, torn header
	} {
		if _, err := Decode(data); err == nil {
			t.Fatalf("Decode(%x) accepted garbage", data)
		}
	}
	// Empty input decodes to an empty profile: zero fields is a valid
	// (if useless) protobuf message.
	p, err := Decode(nil)
	if err != nil {
		t.Fatalf("Decode(nil): %v", err)
	}
	if len(p.Samples) != 0 {
		t.Fatal("empty input produced samples")
	}
}

// TestRenderDeterministic pins the byte-identity of the rendered tables:
// five renders of the same profile bytes must agree exactly, which is the
// same guarantee `scfruns prof show` makes about an archived profile.
func TestRenderDeterministic(t *testing.T) {
	runtime.GC()
	data := heapProfileBytes(t)
	var first string
	for i := 0; i < 5; i++ {
		p, err := Decode(data)
		if err != nil {
			t.Fatal(err)
		}
		vi := p.ValueIndex("inuse_space")
		out := RenderTop(p, vi, 10) + RenderLabels(p, "stage", vi)
		if i == 0 {
			first = out
			continue
		}
		if out != first {
			t.Fatalf("render %d differs from first:\n%s\nvs\n%s", i, out, first)
		}
	}
}

func TestDiffFlatMinSampleFloor(t *testing.T) {
	runtime.GC()
	data := heapProfileBytes(t)
	p1, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Identical profiles: zero drift everywhere, never TooSmall at floor 0.
	d := DiffFlat(p1, p2, "inuse_space", 0)
	if d.TooSmall {
		t.Fatal("identical live profiles flagged TooSmall at floor 0")
	}
	for _, r := range d.Rows {
		if r.DeltaPct != 0 {
			t.Fatalf("self-diff drift %+.2fpp on %s", r.DeltaPct, r.Name)
		}
	}
	// An absurd floor must flag TooSmall with no rows — tiny profiles never gate.
	d = DiffFlat(p1, p2, "inuse_space", 1<<62)
	if !d.TooSmall || len(d.Rows) != 0 {
		t.Fatalf("floor not honoured: TooSmall=%v rows=%d", d.TooSmall, len(d.Rows))
	}
	if out := RenderDrift(d, 10); !strings.Contains(out, "too few samples") {
		t.Fatalf("TooSmall render missing advisory: %q", out)
	}
}
