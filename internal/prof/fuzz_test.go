package prof

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
)

// FuzzDecode hammers the protobuf walker with arbitrary bytes. The decoder
// must never panic or hang: anything that is not a profile returns an
// error, and anything that is decodes into tables without crashing the
// folders either. The corpus seeds real gzipped and raw profile bytes so
// the fuzzer mutates from valid structure, not just noise.
func FuzzDecode(f *testing.F) {
	runtime.GC()
	var buf bytes.Buffer
	if err := pprof.Lookup("heap").WriteTo(&buf, 0); err == nil {
		gz := buf.Bytes()
		f.Add(gz)
		if p, err := Decode(gz); err == nil && p != nil {
			// Also seed the raw (decompressed) form by re-reading: feed a
			// truncated prefix so length-delimited parsing sees torn tails.
			f.Add(gz[:len(gz)/2])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x0a, 0x02, 0x08, 0x01}) // one sample_type {type:1}
	f.Add([]byte{0x1f, 0x8b})             // bare gzip magic
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil || p == nil {
			return
		}
		// Whatever decoded must fold and render without panicking.
		vi := p.ValueIndex("")
		_ = TotalValue(p, vi)
		_ = RenderTop(p, vi, 10)
		_ = RenderLabels(p, "stage", vi)
		_ = RenderDrift(DiffFlat(p, p, "", 0), 5)
	})
}
