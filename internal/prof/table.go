package prof

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// FuncStat is one function's folded sample values: Flat is the value of the
// samples whose leaf is the function, Cum the value of every sample the
// function appears anywhere in (each function counted once per sample, so
// recursion does not double-count).
type FuncStat struct {
	Name string
	Flat int64
	Cum  int64
}

// LabelStat is the folded value of one pprof label value; samples without
// the label fold under Unlabeled.
type LabelStat struct {
	Value string
	Total int64
}

// Unlabeled is the LabelStat bucket for samples that do not carry the
// requested label key.
const Unlabeled = "(unlabeled)"

// TotalValue sums value column vi over every sample.
func TotalValue(p *Profile, vi int) int64 {
	var total int64
	for i := range p.Samples {
		total += sampleValue(&p.Samples[i], vi)
	}
	return total
}

func sampleValue(s *Sample, vi int) int64 {
	if vi < 0 || vi >= len(s.Values) {
		return 0
	}
	return s.Values[vi]
}

// FlatTable folds the profile into per-function flat/cumulative values on
// value column vi, sorted by flat descending (name ascending breaks ties),
// so the order — like everything else here — is a pure function of the
// profile bytes.
func FlatTable(p *Profile, vi int) []FuncStat {
	stats := map[string]*FuncStat{}
	for i := range p.Samples {
		s := &p.Samples[i]
		v := sampleValue(s, vi)
		if v == 0 {
			continue
		}
		stack := p.Stack(s)
		if len(stack) == 0 {
			continue
		}
		seen := map[string]bool{}
		for j, name := range stack {
			st := stats[name]
			if st == nil {
				st = &FuncStat{Name: name}
				stats[name] = st
			}
			if j == 0 {
				st.Flat += v
			}
			if !seen[name] {
				st.Cum += v
				seen[name] = true
			}
		}
	}
	out := make([]FuncStat, 0, len(stats))
	for _, st := range stats {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// LabelTable folds value column vi by the given pprof label key (e.g.
// "stage", "shard"), sorted by total descending then value ascending.
func LabelTable(p *Profile, key string, vi int) []LabelStat {
	totals := map[string]int64{}
	for i := range p.Samples {
		s := &p.Samples[i]
		v := sampleValue(s, vi)
		if v == 0 {
			continue
		}
		lv, ok := s.Labels[key]
		if !ok || lv == "" {
			lv = Unlabeled
		}
		totals[lv] += v
	}
	out := make([]LabelStat, 0, len(totals))
	for lv, t := range totals {
		out = append(out, LabelStat{Value: lv, Total: t})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Total != out[j].Total {
			return out[i].Total > out[j].Total
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// LabeledShare is the fraction of value column vi carried by samples that
// have the given label key at all — the attribution coverage the capture
// layer promises (≥ 80% of CPU flat time should carry a stage label).
func LabeledShare(p *Profile, key string, vi int) float64 {
	var total, labeled int64
	for i := range p.Samples {
		s := &p.Samples[i]
		v := sampleValue(s, vi)
		total += v
		if lv, ok := s.Labels[key]; ok && lv != "" {
			labeled += v
		}
	}
	if total == 0 {
		return 0
	}
	return float64(labeled) / float64(total)
}

// RenderTop renders the top-n flat/cum hotspot table for value column vi as
// aligned text. Deterministic: same profile bytes, same output bytes.
func RenderTop(p *Profile, vi, n int) string {
	stats := FlatTable(p, vi)
	total := TotalValue(p, vi)
	unit := p.Unit(vi)
	typ := ""
	if vi >= 0 && vi < len(p.SampleTypes) {
		typ = p.SampleTypes[vi].Type
	}
	if n <= 0 || n > len(stats) {
		n = len(stats)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Top %d of %d functions by flat %s (total %s)\n", n, len(stats), typ, FormatValue(total, unit))
	rows := make([][4]string, 0, n)
	for _, st := range stats[:n] {
		rows = append(rows, [4]string{
			FormatValue(st.Flat, unit), pct(st.Flat, total),
			FormatValue(st.Cum, unit), st.Name,
		})
	}
	w1, w2, w3 := len("flat"), len("flat%"), len("cum")
	for _, r := range rows {
		w1, w2, w3 = maxLen(w1, r[0]), maxLen(w2, r[1]), maxLen(w3, r[2])
	}
	fmt.Fprintf(&b, "  %*s  %*s  %*s  %s\n", w1, "flat", w2, "flat%", w3, "cum", "function")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %*s  %*s  %*s  %s\n", w1, r[0], w2, r[1], w3, r[2], r[3])
	}
	return b.String()
}

// RenderLabels renders the per-label-value attribution table for the given
// key, with each value's share of the column total.
func RenderLabels(p *Profile, key string, vi int) string {
	stats := LabelTable(p, key, vi)
	if len(stats) == 0 {
		return ""
	}
	total := TotalValue(p, vi)
	unit := p.Unit(vi)
	var b strings.Builder
	fmt.Fprintf(&b, "Attribution by pprof label %q (%.1f%% of samples labeled)\n", key, 100*LabeledShare(p, key, vi))
	w1, w2 := len("value"), len("share")
	rows := make([][3]string, 0, len(stats))
	for _, st := range stats {
		r := [3]string{FormatValue(st.Total, unit), pct(st.Total, total), st.Value}
		w1, w2 = maxLen(w1, r[0]), maxLen(w2, r[1])
		rows = append(rows, r)
	}
	fmt.Fprintf(&b, "  %*s  %*s  %s\n", w1, "value", w2, "share", key)
	for _, r := range rows {
		fmt.Fprintf(&b, "  %*s  %*s  %s\n", w1, r[0], w2, r[1], r[2])
	}
	return b.String()
}

// FormatValue renders a sample value in its unit: durations for
// nanoseconds, binary sizes for bytes, plain counts otherwise.
func FormatValue(v int64, unit string) string {
	switch unit {
	case "nanoseconds":
		return strings.ReplaceAll(time.Duration(v).Round(10*time.Microsecond).String(), "µs", "us")
	case "bytes":
		switch {
		case v < 0:
			return fmt.Sprintf("%d B", v)
		case v < 1<<10:
			return fmt.Sprintf("%d B", v)
		case v < 1<<20:
			return fmt.Sprintf("%.1f KiB", float64(v)/(1<<10))
		case v < 1<<30:
			return fmt.Sprintf("%.1f MiB", float64(v)/(1<<20))
		default:
			return fmt.Sprintf("%.2f GiB", float64(v)/(1<<30))
		}
	default:
		return fmt.Sprintf("%d", v)
	}
}

func pct(v, total int64) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f%%", 100*float64(v)/float64(total))
}

func maxLen(w int, s string) int {
	if len(s) > w {
		return len(s)
	}
	return w
}
