package probe

import (
	"fmt"
	"html"
	"net/http"
	"strings"
	"sync"
)

// DisclosureServer implements the transparency measure of the paper's
// Appendix A: the hosts that issue probe requests run a web service on port
// 80 explaining the experiment, naming a contact, and offering function
// owners an opt-out. Opt-outs submitted here immediately suppress further
// contact by the attached Prober and are recorded so previously collected
// data can be discarded.
type DisclosureServer struct {
	// Prober receives opt-outs; required.
	Prober *Prober
	// Study describes the experiment; Contact is the researcher address.
	Study   string
	Contact string

	mu      sync.Mutex
	optOuts []string
}

// NewDisclosureServer wires a disclosure page to a prober.
func NewDisclosureServer(p *Prober, study, contact string) *DisclosureServer {
	return &DisclosureServer{Prober: p, Study: study, Contact: contact}
}

// OptOuts returns the domains whose owners opted out, in arrival order.
// Callers must discard any data already collected for them (Appendix A).
func (d *DisclosureServer) OptOuts() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]string(nil), d.optOuts...)
}

// ServeHTTP serves the explanation page on GET / and accepts opt-outs on
// POST /opt-out with a form field "fqdn".
func (d *DisclosureServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodGet && r.URL.Path == "/":
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>Measurement study</title></head><body>
<h1>Internet measurement study</h1>
<p>%s</p>
<p>Our probes send at most one parameter-free GET request per scheme to each
function domain and never follow redirects. No function code is collected.</p>
<p>Contact: %s</p>
<form method="POST" action="/opt-out">
  <label>Opt your function domain out of this study:
  <input name="fqdn" placeholder="your-function-domain"/></label>
  <button type="submit">Opt out</button>
</form>
</body></html>`, html.EscapeString(d.Study), html.EscapeString(d.Contact))
	case r.Method == http.MethodPost && r.URL.Path == "/opt-out":
		if err := r.ParseForm(); err != nil {
			http.Error(w, "bad form", http.StatusBadRequest)
			return
		}
		fqdn := strings.TrimSpace(strings.ToLower(r.PostFormValue("fqdn")))
		if fqdn == "" || strings.ContainsAny(fqdn, " /\\") {
			http.Error(w, "invalid domain", http.StatusBadRequest)
			return
		}
		d.Prober.OptOut(fqdn)
		d.mu.Lock()
		d.optOuts = append(d.optOuts, fqdn)
		d.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "opted out: %s\nall collected data for this domain will be discarded\n", fqdn)
	default:
		http.NotFound(w, r)
	}
}

// Discard removes results for opted-out domains from a result set,
// implementing the Appendix A promise to drop collected data.
func (d *DisclosureServer) Discard(results []Result) []Result {
	outs := map[string]struct{}{}
	d.mu.Lock()
	for _, o := range d.optOuts {
		outs[o] = struct{}{}
	}
	d.mu.Unlock()
	kept := results[:0]
	for _, r := range results {
		if _, ok := outs[strings.ToLower(r.FQDN)]; !ok {
			kept = append(kept, r)
		}
	}
	return kept
}
