// Package probe implements the active information collection of paper §3.3:
// each candidate function domain receives a parameter-free GET over HTTPS,
// falling back to HTTP on failure; domains failing both are marked
// unreachable. A uniform timeout (60 s, the default execution cap of most
// providers) applies, redirects are recorded rather than followed (their
// Location headers feed the abuse analysis), and the ethics controls of
// Appendix A are enforced in code: a hard cap on requests per function, an
// opt-out list, and a User-Agent identifying the measurement and a contact
// point.
package probe

import (
	"context"
	"crypto/tls"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pdns"
)

// FailureReason classifies why a domain was unreachable.
type FailureReason string

const (
	FailNone    FailureReason = ""
	FailDNS     FailureReason = "dns"     // resolution failed (deleted Tencent functions)
	FailTimeout FailureReason = "timeout" // both schemes timed out
	FailConn    FailureReason = "conn"    // connection refused / reset
	FailOptOut  FailureReason = "opt-out" // owner opted out; never contacted
	FailBudget  FailureReason = "budget"  // per-function request cap exhausted
	FailBreaker FailureReason = "breaker" // provider circuit open; never contacted
)

// Breaker short-circuits probes to keys (typically providers) that are
// failing consistently. It is satisfied by fault.Breaker; the tiny local
// interface keeps probe decoupled from the chaos layer.
type Breaker interface {
	// Allow reports whether a request for key may proceed.
	Allow(key string) bool
	// Record feeds back the outcome of an allowed request.
	Record(key string, success bool)
}

// Result is the recorded outcome of probing one function domain.
type Result struct {
	FQDN        string
	Reachable   bool
	Failure     FailureReason
	HTTPS       bool // reached over HTTPS (vs HTTP fallback)
	Status      int
	ContentType string
	Location    string // redirect target, if Status is 3xx
	Body        []byte
	Attempts    int
	Elapsed     time.Duration
}

// Empty reports whether a 200 response carried no content; only non-empty
// 200s feed the abuse analysis (96.01% of 200s in the paper).
func (r *Result) Empty() bool { return r.Status == 200 && len(r.Body) == 0 }

// Config tunes a Prober.
type Config struct {
	// Timeout per request; defaults to 60s like most providers' caps.
	Timeout time.Duration
	// MaxBody caps how many response bytes are retained.
	MaxBody int64
	// Concurrency bounds in-flight probes in ProbeAll.
	Concurrency int
	// MaxAttempts caps requests per function across both schemes
	// (Appendix A limits probes to fewer than three per function).
	MaxAttempts int
	// UserAgent identifies the research probe; Appendix A additionally ran
	// an explanation page with contact details on the probing host.
	UserAgent string
	// Resolve pre-checks DNS for the domain; a non-nil error marks the
	// domain unreachable with FailDNS before any HTTP contact. Nil skips
	// the check (the system resolver decides during dialing).
	Resolve func(fqdn string) error
	// DialContext overrides transport dialing; the simulation points this
	// at the in-process gateway. TLS verification is relaxed only when a
	// custom dialer is installed, because the simulated endpoints present
	// a test certificate for a different name.
	DialContext func(ctx context.Context, network, addr string) (net.Conn, error)
	// RatePerSecond caps the campaign-wide request rate, a politeness
	// control on top of the per-function caps; 0 disables.
	RatePerSecond float64
	// Retries is how many extra attempts each scheme gets after a
	// connection-class failure (resets and refusals — not timeouts, which
	// already consumed the full request budget of time, and not DNS
	// failures, which fail before any contact). 0 keeps the seed behavior
	// of exactly one try per scheme.
	Retries int
	// RetryBackoff is the base delay before the first retry; each further
	// retry doubles it, plus deterministic per-FQDN jitter. Defaults to
	// 50ms when Retries > 0.
	RetryBackoff time.Duration
	// Breaker, when non-nil, short-circuits probes whose BreakerKey is
	// tripped open; skipped probes record FailBreaker with zero attempts.
	Breaker Breaker
	// BreakerKey maps an FQDN to its breaker key (typically the provider
	// name); nil uses the FQDN itself.
	BreakerKey func(fqdn string) string
	// Provider maps an FQDN to the provider label on the campaign's
	// dimensional metrics (probe_outcomes_total, per-provider request
	// latency). Nil, or an empty return, labels the probe "unknown".
	Provider func(fqdn string) string
	// KeepTLSVerify retains certificate verification even with a custom
	// DialContext. Fault-injection wrappers around the real dialer set
	// this; the in-process simulation (which presents a self-signed test
	// certificate) leaves it false.
	KeepTLSVerify bool
	// Metrics, when non-nil, receives the campaign's live telemetry:
	// per-request latency histogram, in-flight gauge, and retry/fallback/
	// failure counters. A nil registry costs one nil check per event.
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 16
	}
	if c.MaxAttempts <= 0 {
		// One HTTPS try + one HTTP fallback, each with its retries. With
		// Retries == 0 this is the seed's cap of 2 (Appendix A limits
		// probes to fewer than three per function); retry campaigns
		// consciously raise the cap to match their configured attempts.
		c.MaxAttempts = 2 * (1 + c.Retries)
	}
	if c.Retries > 0 && c.RetryBackoff <= 0 {
		c.RetryBackoff = 50 * time.Millisecond
	}
	if c.UserAgent == "" {
		c.UserAgent = "serverless-measurement-research/1.0 (opt-out: see probe host port 80)"
	}
	return c
}

// Prober performs the collection.
type Prober struct {
	cfg     Config
	client  *http.Client
	limiter chan struct{}

	// Live telemetry; every field is a no-op when Config.Metrics is nil.
	mLatency    *obs.Histogram // probe_request_seconds: per-request wall time
	mInflight   *obs.Gauge     // probe_inflight: probes currently executing
	mRequests   *obs.Counter   // probe_requests_total: HTTP requests issued
	mRetries    *obs.Counter   // probe_retries_total: attempts beyond the first
	mConnRetry  *obs.Counter   // probe_conn_retries_total: backoff retries after conn failures
	mFallbacks  *obs.Counter   // probe_fallbacks_total: reached only via HTTP
	mDNSFail    *obs.Counter   // probe_dns_failures_total
	mTimeouts   *obs.Counter   // probe_timeouts_total
	mOptOuts    *obs.Counter   // probe_optouts_total
	mBreakerSk  *obs.Counter   // probe_breaker_skips_total: short-circuited by the breaker
	mBodyAborts *obs.Counter   // probe_body_aborts_total: body drains cut by cancellation

	// Dimensional telemetry (nil-safe like the rest).
	mOutcomes   *obs.CounterVec   // probe_outcomes_total{provider,outcome,attempt_class}
	mLatencyVec *obs.HistogramVec // probe_request_seconds{provider}: per-request wall time

	mu     sync.Mutex
	optOut map[string]struct{}
	stats  Stats
}

// Stats aggregates a probing campaign.
type Stats struct {
	Probed       int
	Reachable    int
	Unreachable  int
	DNSFailures  int
	HTTPSOnly    int // reached via HTTPS
	Fallbacks    int // needed the HTTP fallback
	Requests     int // total HTTP requests issued
	Retried      int // backoff retries after connection-class failures
	BreakerSkips int // probes short-circuited by an open breaker
}

// New builds a Prober.
func New(cfg Config) *Prober {
	cfg = cfg.withDefaults()
	tr := &http.Transport{
		MaxIdleConns:        100,
		MaxIdleConnsPerHost: 2,
		DisableKeepAlives:   true,
	}
	if cfg.DialContext != nil {
		tr.DialContext = cfg.DialContext
		if !cfg.KeepTLSVerify {
			tr.TLSClientConfig = &tls.Config{InsecureSkipVerify: true}
		}
	}
	var limiter chan struct{}
	if cfg.RatePerSecond > 0 {
		limiter = make(chan struct{}, 1)
		interval := time.Duration(float64(time.Second) / cfg.RatePerSecond)
		go func() {
			tick := time.NewTicker(interval)
			defer tick.Stop()
			for range tick.C {
				select {
				case limiter <- struct{}{}:
				default:
				}
			}
		}()
	}
	return &Prober{
		cfg:         cfg,
		limiter:     limiter,
		mLatency:    cfg.Metrics.Histogram("probe_request_seconds", nil),
		mInflight:   cfg.Metrics.Gauge("probe_inflight"),
		mRequests:   cfg.Metrics.Counter("probe_requests_total"),
		mRetries:    cfg.Metrics.Counter("probe_retries_total"),
		mConnRetry:  cfg.Metrics.Counter("probe_conn_retries_total"),
		mFallbacks:  cfg.Metrics.Counter("probe_fallbacks_total"),
		mDNSFail:    cfg.Metrics.Counter("probe_dns_failures_total"),
		mTimeouts:   cfg.Metrics.Counter("probe_timeouts_total"),
		mOptOuts:    cfg.Metrics.Counter("probe_optouts_total"),
		mBreakerSk:  cfg.Metrics.Counter("probe_breaker_skips_total"),
		mBodyAborts: cfg.Metrics.Counter("probe_body_aborts_total"),
		mOutcomes:   cfg.Metrics.CounterVec("probe_outcomes_total", "provider", "outcome", "attempt_class"),
		mLatencyVec: cfg.Metrics.HistogramVec("probe_request_seconds", nil, "provider"),
		client: &http.Client{
			Transport: tr,
			Timeout:   cfg.Timeout,
			// Record redirects, do not follow them: Location headers are
			// evidence for the hidden-illicit-service analysis (§5.3).
			CheckRedirect: func(req *http.Request, via []*http.Request) error {
				return http.ErrUseLastResponse
			},
		},
	}
}

// OptOut registers a function owner's opt-out; the domain is never
// contacted again (Appendix A).
func (p *Prober) OptOut(fqdn string) {
	p.mu.Lock()
	if p.optOut == nil {
		p.optOut = make(map[string]struct{})
	}
	p.optOut[strings.ToLower(fqdn)] = struct{}{}
	p.mu.Unlock()
}

func (p *Prober) optedOut(fqdn string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.optOut[strings.ToLower(fqdn)]
	return ok
}

// Stats returns a snapshot of campaign counters.
func (p *Prober) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Probe contacts one function domain: HTTPS first, HTTP on failure. With
// Retries configured, connection-class failures (resets, refusals) earn up
// to Retries extra attempts per scheme with exponential backoff and
// deterministic per-FQDN jitter; timeouts and DNS failures never retry.
func (p *Prober) Probe(ctx context.Context, fqdn string) Result {
	start := time.Now()
	res := Result{FQDN: fqdn}
	connRetries := 0
	provider := p.provider(fqdn)
	p.mInflight.Add(1)
	defer func() {
		res.Elapsed = time.Since(start)
		p.mInflight.Add(-1)
		if res.Attempts > 1 {
			p.mRetries.Add(int64(res.Attempts - 1))
		}
		outcome := "ok"
		if res.Failure != FailNone {
			outcome = string(res.Failure)
		}
		class := "first"
		if connRetries > 0 {
			class = "retried"
		}
		p.mOutcomes.With(provider, outcome, class).Inc()
		switch res.Failure {
		case FailDNS:
			p.mDNSFail.Inc()
		case FailTimeout:
			p.mTimeouts.Inc()
		case FailOptOut:
			p.mOptOuts.Inc()
		case FailBreaker:
			p.mBreakerSk.Inc()
		}
		if res.Reachable && !res.HTTPS {
			p.mFallbacks.Inc()
		}
		p.mu.Lock()
		p.stats.Probed++
		p.stats.Requests += res.Attempts
		p.stats.Retried += connRetries
		if res.Failure == FailBreaker {
			p.stats.BreakerSkips++
		}
		if res.Reachable {
			p.stats.Reachable++
			if res.HTTPS {
				p.stats.HTTPSOnly++
			} else {
				p.stats.Fallbacks++
			}
		} else {
			p.stats.Unreachable++
			if res.Failure == FailDNS {
				p.stats.DNSFailures++
			}
		}
		p.mu.Unlock()
	}()

	if p.optedOut(fqdn) {
		res.Failure = FailOptOut
		return res
	}
	if p.cfg.Resolve != nil {
		if err := p.cfg.Resolve(fqdn); err != nil {
			res.Failure = FailDNS
			return res
		}
	}
	breakerKey := fqdn
	if p.cfg.BreakerKey != nil {
		breakerKey = p.cfg.BreakerKey(fqdn)
	}
	if p.cfg.Breaker != nil && !p.cfg.Breaker.Allow(breakerKey) {
		res.Failure = FailBreaker
		return res
	}

	var lastErr error
	for _, scheme := range []string{"https", "http"} {
		for try := 0; ; try++ {
			if res.Attempts >= p.cfg.MaxAttempts {
				res.Failure = FailBudget
				p.recordBreaker(breakerKey, false)
				return res
			}
			res.Attempts++
			ok, err := p.tryScheme(ctx, scheme, fqdn, provider, &res)
			if ok {
				res.Reachable = true
				res.HTTPS = scheme == "https"
				res.Failure = FailNone
				p.recordBreaker(breakerKey, true)
				return res
			}
			lastErr = err
			if try >= p.cfg.Retries || ctx.Err() != nil || classifyError(err) != FailConn {
				break
			}
			connRetries++
			p.mConnRetry.Inc()
			if !p.backoff(ctx, fqdn, try) {
				break
			}
		}
	}
	res.Failure = classifyError(lastErr)
	// The breaker tracks endpoint-health failures only: connection resets
	// and timeouts trip it; DNS and budget outcomes never contacted (or
	// deliberately stopped contacting) the provider's edge.
	p.recordBreaker(breakerKey, res.Failure != FailConn && res.Failure != FailTimeout)
	return res
}

func (p *Prober) recordBreaker(key string, success bool) {
	if p.cfg.Breaker != nil {
		p.cfg.Breaker.Record(key, success)
	}
}

// provider resolves the dimensional-metrics label for an FQDN.
func (p *Prober) provider(fqdn string) string {
	if p.cfg.Provider != nil {
		if name := p.cfg.Provider(fqdn); name != "" {
			return name
		}
	}
	return "unknown"
}

// backoff sleeps before retry number try: RetryBackoff doubled per retry,
// plus up to 50% jitter drawn from a per-FQDN deterministic stream so
// identically-seeded campaigns pace identically. Returns false if the
// context was cancelled while waiting.
func (p *Prober) backoff(ctx context.Context, fqdn string, try int) bool {
	d := p.cfg.RetryBackoff << uint(try)
	if d <= 0 {
		return ctx.Err() == nil
	}
	// splitmix64 over (fqdn hash, try): cheap, allocation-free jitter.
	h := pdns.HashFQDN(fqdn) + uint64(try)*0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	jitter := time.Duration(h % uint64(d/2+1))
	t := time.NewTimer(d + jitter)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// tryScheme issues one parameter-free GET, honouring the campaign rate cap.
func (p *Prober) tryScheme(ctx context.Context, scheme, fqdn, provider string, res *Result) (bool, error) {
	if p.limiter != nil {
		select {
		case <-p.limiter:
		case <-ctx.Done():
			return false, ctx.Err()
		}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, scheme+"://"+fqdn+"/", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("User-Agent", p.cfg.UserAgent)
	reqStart := time.Now()
	p.mRequests.Inc()
	resp, err := p.client.Do(req)
	elapsed := time.Since(reqStart).Seconds()
	p.mLatency.Observe(elapsed)
	p.mLatencyVec.With(provider).Observe(elapsed)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	body, err := p.drainBody(ctx, resp.Body)
	if err != nil && (len(body) == 0 || ctx.Err() != nil) {
		return false, err
	}
	res.Status = resp.StatusCode
	res.ContentType = resp.Header.Get("Content-Type")
	res.Location = resp.Header.Get("Location")
	res.Body = body
	return true, nil
}

// drainBody reads up to MaxBody bytes, honouring context cancellation while
// the read is in flight: a stalled or slow body (an endpoint trickling bytes
// past the run's deadline) cannot outlive the campaign's cancellation. On
// cancel the body is closed to unblock the reader and whatever arrived so
// far is returned with ctx's error.
func (p *Prober) drainBody(ctx context.Context, body io.ReadCloser) ([]byte, error) {
	type drained struct {
		b   []byte
		err error
	}
	ch := make(chan drained, 1)
	go func() {
		b, err := io.ReadAll(io.LimitReader(body, p.cfg.MaxBody))
		ch <- drained{b, err}
	}()
	select {
	case d := <-ch:
		return d.b, d.err
	case <-ctx.Done():
		p.mBodyAborts.Inc()
		body.Close() // unblocks the pending Read
		d := <-ch
		return d.b, ctx.Err()
	}
}

func classifyError(err error) FailureReason {
	if err == nil {
		return FailConn
	}
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return FailTimeout
	}
	msg := err.Error()
	switch {
	case strings.Contains(msg, "Client.Timeout"), strings.Contains(msg, "deadline"):
		return FailTimeout
	case strings.Contains(msg, "no such host"):
		return FailDNS
	default:
		return FailConn
	}
}

// ProbeAll probes every domain with bounded concurrency, preserving input
// order in the results.
func (p *Prober) ProbeAll(ctx context.Context, fqdns []string) []Result {
	results := make([]Result, len(fqdns))
	sem := make(chan struct{}, p.cfg.Concurrency)
	var wg sync.WaitGroup
	for i, fqdn := range fqdns {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, fqdn string) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i] = p.Probe(ctx, fqdn)
		}(i, fqdn)
	}
	wg.Wait()
	return results
}
