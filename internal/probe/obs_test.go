package probe

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestStatsRaceUnderProbeAll is the race regression for campaign counters:
// Stats snapshots must be safe to read while ProbeAll is mid-flight (the
// introspection endpoint does exactly this). Run with -race.
func TestStatsRaceUnderProbeAll(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		w.Write([]byte(`{"ok":true}`))
	})
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()

	reg := obs.NewRegistry()
	p := New(Config{
		Timeout:     time.Second,
		Concurrency: 8,
		DialContext: schemeDialer(tlsAddr, plainAddr),
		Metrics:     reg,
	})
	targets := make([]string, 64)
	for i := range targets {
		targets[i] = fmt.Sprintf("fn%02d.example.lambda-url.us-east-1.on.aws", i)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
					_ = p.Stats()
					_ = reg.Snapshot()
				}
			}
		}()
	}
	results := p.ProbeAll(context.Background(), targets)
	close(done)
	wg.Wait()

	if len(results) != len(targets) {
		t.Fatalf("results = %d, want %d", len(results), len(targets))
	}
	st := p.Stats()
	if st.Probed != len(targets) {
		t.Fatalf("probed = %d, want %d", st.Probed, len(targets))
	}
}

// TestProbeMetrics verifies the campaign telemetry lands in the registry:
// latency histogram, request counters, and a drained in-flight gauge.
func TestProbeMetrics(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		w.Write([]byte("ok"))
	})
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()

	reg := obs.NewRegistry()
	p := New(Config{
		Timeout:     time.Second,
		Concurrency: 4,
		DialContext: schemeDialer(tlsAddr, plainAddr),
		Metrics:     reg,
	})
	targets := []string{
		"a-1234567890-uc.a.run.app",
		"b-1234567890-uc.a.run.app",
		"c-1234567890-uc.a.run.app",
	}
	p.ProbeAll(context.Background(), targets)

	s := reg.Snapshot()
	if got := s.Counters["probe_requests_total"]; got != int64(len(targets)) {
		t.Fatalf("probe_requests_total = %d, want %d", got, len(targets))
	}
	h1 := s.Histograms["probe_request_seconds"]
	if h1.Count != int64(len(targets)) {
		t.Fatalf("latency histogram count = %d, want %d", h1.Count, len(targets))
	}
	if h1.Quantile(0.5) <= 0 {
		t.Fatal("latency p50 must be positive")
	}
	if got := s.Gauges["probe_inflight"]; got != 0 {
		t.Fatalf("probe_inflight = %d after campaign, want 0", got)
	}
}

// TestProbeMetricsFailureCounters exercises the DNS-failure and opt-out
// counters.
func TestProbeMetricsFailureCounters(t *testing.T) {
	reg := obs.NewRegistry()
	p := New(Config{
		Timeout: 100 * time.Millisecond,
		Metrics: reg,
		Resolve: func(fqdn string) error { return fmt.Errorf("no such host") },
	})
	p.OptOut("optout.example")
	p.Probe(context.Background(), "optout.example")
	p.Probe(context.Background(), "dead.example")

	s := reg.Snapshot()
	if s.Counters["probe_optouts_total"] != 1 {
		t.Fatalf("optouts = %d", s.Counters["probe_optouts_total"])
	}
	if s.Counters["probe_dns_failures_total"] != 1 {
		t.Fatalf("dns failures = %d", s.Counters["probe_dns_failures_total"])
	}
}
