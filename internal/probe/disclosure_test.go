package probe

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func newDisclosure(t *testing.T) (*Prober, *DisclosureServer, *httptest.Server) {
	t.Helper()
	p := New(Config{Timeout: time.Second})
	d := NewDisclosureServer(p, "We measure serverless function usage.", "research@example.edu")
	srv := httptest.NewServer(d)
	t.Cleanup(srv.Close)
	return p, d, srv
}

func TestDisclosurePage(t *testing.T) {
	_, _, srv := newDisclosure(t)
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	for _, want := range []string{"measurement study", "research@example.edu", "opt-out", "parameter-free GET"} {
		if !strings.Contains(strings.ToLower(body), strings.ToLower(want)) {
			t.Errorf("page missing %q", want)
		}
	}
}

func TestOptOutFlow(t *testing.T) {
	p, d, srv := newDisclosure(t)
	resp, err := http.PostForm(srv.URL+"/opt-out", url.Values{"fqdn": {"OWNER.lambda-url.us-east-1.on.aws"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("opt-out status = %d", resp.StatusCode)
	}
	// The prober must now refuse to contact the domain.
	res := p.Probe(context.Background(), "owner.lambda-url.us-east-1.on.aws")
	if res.Failure != FailOptOut || res.Attempts != 0 {
		t.Errorf("opted-out domain probed: %+v", res)
	}
	if got := d.OptOuts(); len(got) != 1 || got[0] != "owner.lambda-url.us-east-1.on.aws" {
		t.Errorf("opt-out record = %v", got)
	}
}

func TestOptOutValidation(t *testing.T) {
	_, _, srv := newDisclosure(t)
	for _, bad := range []string{"", "has space.example", "path/injection"} {
		resp, err := http.PostForm(srv.URL+"/opt-out", url.Values{"fqdn": {bad}})
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("invalid opt-out %q accepted: %d", bad, resp.StatusCode)
		}
	}
}

func TestDisclosureUnknownPath(t *testing.T) {
	_, _, srv := newDisclosure(t)
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
}

func TestDiscardCollectedData(t *testing.T) {
	_, d, srv := newDisclosure(t)
	results := []Result{
		{FQDN: "keep.lambda-url.us-east-1.on.aws", Status: 200},
		{FQDN: "GONE.lambda-url.us-east-1.on.aws", Status: 200},
	}
	resp, err := http.PostForm(srv.URL+"/opt-out", url.Values{"fqdn": {"gone.lambda-url.us-east-1.on.aws"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	kept := d.Discard(results)
	if len(kept) != 1 || kept[0].FQDN != "keep.lambda-url.us-east-1.on.aws" {
		t.Errorf("Discard kept %v", kept)
	}
}
