package probe

import (
	"context"
	"errors"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// flakyDialer fails the first n dial attempts with a connection-class error,
// then connects to addr.
func flakyDialer(n int64, addr string) func(ctx context.Context, network, a string) (net.Conn, error) {
	var calls atomic.Int64
	return func(ctx context.Context, network, _ string) (net.Conn, error) {
		if calls.Add(1) <= n {
			return nil, errors.New("connection reset by peer")
		}
		var d net.Dialer
		return d.DialContext(ctx, network, addr)
	}
}

func TestProbeRetriesConnFailures(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("recovered"))
	})
	tlsAddr, _, cleanup := newServerPair(t, h)
	defer cleanup()
	reg := obs.NewRegistry()
	p := New(Config{
		DialContext:  flakyDialer(2, tlsAddr),
		Timeout:      2 * time.Second,
		Retries:      2,
		RetryBackoff: time.Millisecond,
		Metrics:      reg,
	})
	res := p.Probe(context.Background(), "flaky.lambda-url.us-east-1.on.aws")
	if !res.Reachable || !res.HTTPS {
		t.Fatalf("result = %+v, want HTTPS success after retries", res)
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two resets, one success)", res.Attempts)
	}
	st := p.Stats()
	if st.Retried != 2 {
		t.Errorf("stats.Retried = %d, want 2", st.Retried)
	}
	if got := reg.Snapshot().Counters["probe_conn_retries_total"]; got != 2 {
		t.Errorf("probe_conn_retries_total = %d, want 2", got)
	}
}

func TestProbeRetriesExhaustedKeepConnFailure(t *testing.T) {
	p := New(Config{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return nil, errors.New("connection reset by peer")
		},
		Timeout:      time.Second,
		Retries:      1,
		RetryBackoff: time.Millisecond,
	})
	res := p.Probe(context.Background(), "dead.lambda-url.us-east-1.on.aws")
	if res.Reachable || res.Failure != FailConn {
		t.Fatalf("result = %+v, want conn failure", res)
	}
	// (1 try + 1 retry) per scheme.
	if res.Attempts != 4 {
		t.Errorf("attempts = %d, want 4", res.Attempts)
	}
}

func TestProbeTimeoutsDoNotRetry(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()
	p := New(Config{
		DialContext:  schemeDialer(tlsAddr, plainAddr),
		Timeout:      100 * time.Millisecond,
		Retries:      3,
		RetryBackoff: time.Millisecond,
	})
	res := p.Probe(context.Background(), "slow.lambda-url.us-east-1.on.aws")
	if res.Failure != FailTimeout {
		t.Fatalf("failure = %q, want timeout", res.Failure)
	}
	// A timeout already consumed the full request budget of wall time; each
	// scheme gets exactly one attempt regardless of Retries.
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2 (no retry after timeouts)", res.Attempts)
	}
	if p.Stats().Retried != 0 {
		t.Errorf("stats.Retried = %d, want 0", p.Stats().Retried)
	}
}

// recordingBreaker implements the Breaker interface with a scripted Allow.
type recordingBreaker struct {
	mu      sync.Mutex
	allow   bool
	allowed []string
	results map[string][]bool
}

func (rb *recordingBreaker) Allow(key string) bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	rb.allowed = append(rb.allowed, key)
	return rb.allow
}

func (rb *recordingBreaker) Record(key string, success bool) {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.results == nil {
		rb.results = map[string][]bool{}
	}
	rb.results[key] = append(rb.results[key], success)
}

func TestProbeBreakerShortCircuits(t *testing.T) {
	contacted := false
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { contacted = true })
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()
	rb := &recordingBreaker{allow: false}
	reg := obs.NewRegistry()
	p := New(Config{
		DialContext: schemeDialer(tlsAddr, plainAddr),
		Timeout:     time.Second,
		Breaker:     rb,
		BreakerKey:  func(string) string { return "aws" },
		Metrics:     reg,
	})
	res := p.Probe(context.Background(), "f.lambda-url.us-east-1.on.aws")
	if res.Failure != FailBreaker || res.Attempts != 0 || contacted {
		t.Fatalf("result = %+v contacted=%v, want short-circuit without contact", res, contacted)
	}
	if len(rb.allowed) != 1 || rb.allowed[0] != "aws" {
		t.Errorf("breaker consulted with keys %v, want [aws]", rb.allowed)
	}
	if len(rb.results["aws"]) != 0 {
		t.Errorf("short-circuited probe recorded an outcome: %v", rb.results["aws"])
	}
	if p.Stats().BreakerSkips != 1 {
		t.Errorf("stats.BreakerSkips = %d, want 1", p.Stats().BreakerSkips)
	}
	if got := reg.Snapshot().Counters["probe_breaker_skips_total"]; got != 1 {
		t.Errorf("probe_breaker_skips_total = %d, want 1", got)
	}

	// Allowed probes must feed their outcome back.
	rb.allow = true
	if res := p.Probe(context.Background(), "f.lambda-url.us-east-1.on.aws"); !res.Reachable {
		t.Fatalf("result = %+v", res)
	}
	if got := rb.results["aws"]; len(got) != 1 || !got[0] {
		t.Errorf("breaker outcomes = %v, want one success", got)
	}
}

// TestProbeBodyDrainHonorsCancellation is the regression test for the body
// drain hanging past context cancellation: an endpoint that trickles its body
// forever must not hold a probe (and its concurrency slot) hostage.
func TestProbeBodyDrainHonorsCancellation(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(200)
		w.Write([]byte("partial "))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Keep the connection open, never finishing the body.
		select {
		case <-release:
		case <-r.Context().Done():
		}
	})
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()
	reg := obs.NewRegistry()
	p := New(Config{
		DialContext: schemeDialer(tlsAddr, plainAddr),
		Timeout:     30 * time.Second, // the client timeout must not be what saves us
		Metrics:     reg,
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := p.Probe(ctx, "drip.lambda-url.us-east-1.on.aws")
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("probe returned after %v; body drain ignored cancellation", elapsed)
	}
	if res.Reachable {
		t.Errorf("result = %+v, want failure after cancelled drain", res)
	}
	if got := reg.Snapshot().Counters["probe_body_aborts_total"]; got < 1 {
		t.Errorf("probe_body_aborts_total = %d, want >= 1", got)
	}
}

func TestBackoffDeterministicJitter(t *testing.T) {
	p := New(Config{Retries: 2, RetryBackoff: 20 * time.Millisecond})
	// The jitter stream is a pure function of (fqdn, try); timing the sleep
	// twice and comparing would be flaky, so pin the weaker property that the
	// wait respects cancellation immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if p.backoff(ctx, "x.lambda-url.us-east-1.on.aws", 5) {
		t.Error("backoff reported success under a cancelled context")
	}
	if time.Since(start) > time.Second {
		t.Error("backoff slept despite cancelled context")
	}
}

func TestClassifyInjectedErrors(t *testing.T) {
	if got := classifyError(errors.New("dial tcp: lookup x: no such host")); got != FailDNS {
		t.Errorf("dns class = %q", got)
	}
	if got := classifyError(errors.New("fault: injected connection reset")); got != FailConn {
		t.Errorf("reset class = %q, want conn (retryable)", got)
	}
	if got := classifyError(errors.New("context deadline exceeded")); got != FailTimeout {
		t.Errorf("deadline class = %q", got)
	}
	if !strings.Contains(string(FailBreaker), "breaker") {
		t.Errorf("FailBreaker = %q", FailBreaker)
	}
}
