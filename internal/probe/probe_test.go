package probe

import (
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// dialTo returns a DialContext that always connects to addr.
func dialTo(addr string) func(ctx context.Context, network, a string) (net.Conn, error) {
	return func(ctx context.Context, network, _ string) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, network, addr)
	}
}

func newServerPair(t *testing.T, h http.Handler) (tlsAddr, plainAddr string, cleanup func()) {
	t.Helper()
	tlsSrv := httptest.NewTLSServer(h)
	plainSrv := httptest.NewServer(h)
	return strings.TrimPrefix(tlsSrv.URL, "https://"),
		strings.TrimPrefix(plainSrv.URL, "http://"),
		func() { tlsSrv.Close(); plainSrv.Close() }
}

// schemeDialer routes https dials to the TLS server and http dials to the
// plain server by inspecting the requested port.
func schemeDialer(tlsAddr, plainAddr string) func(ctx context.Context, network, addr string) (net.Conn, error) {
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		if strings.HasSuffix(addr, ":443") {
			return d.DialContext(ctx, network, tlsAddr)
		}
		return d.DialContext(ctx, network, plainAddr)
	}
}

func TestProbeHTTPSPreferred(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"ok":true}`))
	})
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()
	p := New(Config{DialContext: schemeDialer(tlsAddr, plainAddr), Timeout: 2 * time.Second})
	res := p.Probe(context.Background(), "f.lambda-url.us-east-1.on.aws")
	if !res.Reachable || !res.HTTPS {
		t.Fatalf("result = %+v", res)
	}
	if res.Status != 200 || res.ContentType != "application/json" {
		t.Errorf("status/ct = %d %q", res.Status, res.ContentType)
	}
	if res.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (no fallback needed)", res.Attempts)
	}
	if string(res.Body) != `{"ok":true}` {
		t.Errorf("body = %q", res.Body)
	}
}

func TestProbeParameterFreeGET(t *testing.T) {
	var gotMethod, gotQuery, gotUA string
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotMethod, gotQuery, gotUA = r.Method, r.URL.RawQuery, r.Header.Get("User-Agent")
	})
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()
	p := New(Config{DialContext: schemeDialer(tlsAddr, plainAddr), Timeout: 2 * time.Second})
	p.Probe(context.Background(), "f.lambda-url.us-east-1.on.aws")
	if gotMethod != "GET" || gotQuery != "" {
		t.Errorf("request = %s %q, want parameter-free GET", gotMethod, gotQuery)
	}
	if !strings.Contains(gotUA, "research") || !strings.Contains(gotUA, "opt-out") {
		t.Errorf("User-Agent = %q, want research identification", gotUA)
	}
}

func TestProbeHTTPFallback(t *testing.T) {
	// HTTPS port refuses; HTTP succeeds.
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("plain ok"))
	})
	plainSrv := httptest.NewServer(h)
	defer plainSrv.Close()
	plainAddr := strings.TrimPrefix(plainSrv.URL, "http://")
	dial := func(ctx context.Context, network, addr string) (net.Conn, error) {
		var d net.Dialer
		if strings.HasSuffix(addr, ":443") {
			return nil, errors.New("connection refused")
		}
		return d.DialContext(ctx, network, plainAddr)
	}
	p := New(Config{DialContext: dial, Timeout: 2 * time.Second})
	res := p.Probe(context.Background(), "f.lambda-url.us-east-1.on.aws")
	if !res.Reachable || res.HTTPS {
		t.Fatalf("result = %+v, want HTTP fallback success", res)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", res.Attempts)
	}
	st := p.Stats()
	if st.Fallbacks != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProbeUnreachable(t *testing.T) {
	dial := func(ctx context.Context, network, addr string) (net.Conn, error) {
		return nil, errors.New("connection refused")
	}
	p := New(Config{DialContext: dial, Timeout: time.Second})
	res := p.Probe(context.Background(), "dead.lambda-url.us-east-1.on.aws")
	if res.Reachable || res.Failure != FailConn {
		t.Errorf("result = %+v", res)
	}
	if res.Attempts != 2 {
		t.Errorf("attempts = %d, want both schemes tried", res.Attempts)
	}
}

func TestProbeTimeoutClassified(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-time.After(5 * time.Second):
		}
	})
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()
	p := New(Config{DialContext: schemeDialer(tlsAddr, plainAddr), Timeout: 150 * time.Millisecond})
	res := p.Probe(context.Background(), "slow.lambda-url.us-east-1.on.aws")
	if res.Reachable {
		t.Fatalf("result = %+v", res)
	}
	if res.Failure != FailTimeout {
		t.Errorf("failure = %q, want timeout", res.Failure)
	}
}

func TestProbeDNSPrecheck(t *testing.T) {
	p := New(Config{
		Resolve: func(fqdn string) error {
			if strings.Contains(fqdn, "deleted") {
				return errors.New("NXDOMAIN")
			}
			return nil
		},
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			return nil, errors.New("refused")
		},
		Timeout: time.Second,
	})
	res := p.Probe(context.Background(), "1111111111-deletedxyz-ap-guangzhou.scf.tencentcs.com")
	if res.Failure != FailDNS || res.Attempts != 0 {
		t.Errorf("result = %+v, want DNS failure before any HTTP contact", res)
	}
	if p.Stats().DNSFailures != 1 {
		t.Errorf("stats = %+v", p.Stats())
	}
}

func TestProbeOptOut(t *testing.T) {
	contacted := false
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { contacted = true })
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()
	p := New(Config{DialContext: schemeDialer(tlsAddr, plainAddr), Timeout: time.Second})
	p.OptOut("OWNER.lambda-url.us-east-1.on.aws")
	res := p.Probe(context.Background(), "owner.lambda-url.us-east-1.on.aws")
	if res.Failure != FailOptOut || res.Attempts != 0 || contacted {
		t.Errorf("opt-out violated: %+v contacted=%v", res, contacted)
	}
}

func TestProbeRecordsRedirectWithoutFollowing(t *testing.T) {
	hits := 0
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		http.Redirect(w, r, "http://concealed.example/land", http.StatusFound)
	})
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()
	p := New(Config{DialContext: schemeDialer(tlsAddr, plainAddr), Timeout: 2 * time.Second})
	res := p.Probe(context.Background(), "r.lambda-url.us-east-1.on.aws")
	if !res.Reachable || res.Status != 302 {
		t.Fatalf("result = %+v", res)
	}
	if res.Location != "http://concealed.example/land" {
		t.Errorf("location = %q", res.Location)
	}
	if hits != 1 {
		t.Errorf("server hit %d times; redirect must not be followed", hits)
	}
}

func TestProbeBodyCap(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(make([]byte, 10000))
	})
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()
	p := New(Config{DialContext: schemeDialer(tlsAddr, plainAddr), Timeout: 2 * time.Second, MaxBody: 512})
	res := p.Probe(context.Background(), "big.lambda-url.us-east-1.on.aws")
	if len(res.Body) != 512 {
		t.Errorf("body length = %d, want capped at 512", len(res.Body))
	}
}

func TestProbeAllOrderAndStats(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok:" + r.Host))
	})
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()
	p := New(Config{DialContext: schemeDialer(tlsAddr, plainAddr), Timeout: 2 * time.Second, Concurrency: 4})
	fqdns := []string{
		"a.lambda-url.us-east-1.on.aws",
		"b.lambda-url.us-east-1.on.aws",
		"c.lambda-url.us-east-1.on.aws",
	}
	results := p.ProbeAll(context.Background(), fqdns)
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.FQDN != fqdns[i] {
			t.Errorf("result %d is %q, want input order preserved", i, r.FQDN)
		}
		if !strings.HasPrefix(string(r.Body), "ok:"+fqdns[i]) {
			t.Errorf("body = %q; Host header not preserved", r.Body)
		}
	}
	st := p.Stats()
	if st.Probed != 3 || st.Reachable != 3 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEmptyDetection(t *testing.T) {
	r := Result{Status: 200}
	if !r.Empty() {
		t.Error("empty 200 not detected")
	}
	r = Result{Status: 200, Body: []byte("x")}
	if r.Empty() {
		t.Error("non-empty 200 reported empty")
	}
	r = Result{Status: 404}
	if r.Empty() {
		t.Error("404 reported empty; Empty applies to 200s only")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Timeout != 60*time.Second {
		t.Errorf("default timeout = %v, want 60s (paper §3.3)", c.Timeout)
	}
	if c.MaxAttempts != 2 || c.Concurrency != 16 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestProbeRateLimit(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	})
	tlsAddr, plainAddr, cleanup := newServerPair(t, h)
	defer cleanup()
	p := New(Config{
		DialContext:   schemeDialer(tlsAddr, plainAddr),
		Timeout:       2 * time.Second,
		RatePerSecond: 20, // 50ms between requests
		Concurrency:   8,
	})
	fqdns := make([]string, 6)
	for i := range fqdns {
		fqdns[i] = string(rune('a'+i)) + ".lambda-url.us-east-1.on.aws"
	}
	start := time.Now()
	results := p.ProbeAll(context.Background(), fqdns)
	elapsed := time.Since(start)
	for _, r := range results {
		if !r.Reachable {
			t.Fatalf("probe failed: %+v", r)
		}
	}
	// Six requests at 20 rps need at least ~250ms; without the limiter
	// they finish in a few ms.
	if elapsed < 200*time.Millisecond {
		t.Errorf("campaign finished in %v; rate limiter not applied", elapsed)
	}
}
