// Package binio provides the bounds-checked binary primitives shared by the
// pdns state codec and the checkpoint file format: unsigned and zigzag
// varints, length-prefixed byte strings, and little-endian fixed-width
// integers. Every read is capped against the remaining input, so a
// truncated, torn, or hostile byte stream always surfaces an error — never a
// panic and never an attacker-sized allocation. That property is what lets
// FuzzCheckpointDecode assert "arbitrary bytes decode to an error, not a
// crash" across the whole snapshot format.
package binio

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrTruncated reports input that ended before a value was complete.
var ErrTruncated = errors.New("binio: truncated input")

// Writer serialises values to an io.Writer with a sticky error: callers
// chain writes unconditionally and check Err once at the end, which keeps
// codec code linear instead of a ladder of error returns.
type Writer struct {
	w   io.Writer
	buf [binary.MaxVarintLen64]byte
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, or nil.
func (w *Writer) Err() error { return w.err }

func (w *Writer) write(b []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(b)
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Varint writes a zigzag-encoded signed varint.
func (w *Writer) Varint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// U32 writes a fixed little-endian uint32.
func (w *Writer) U32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.write(w.buf[:4])
}

// Bytes writes a length-prefixed byte string.
func (w *Writer) Bytes(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.write(b)
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = io.WriteString(w.w, s)
}

// Raw writes b without a length prefix.
func (w *Writer) Raw(b []byte) { w.write(b) }

// Reader decodes values from an in-memory buffer. Every method checks the
// remaining length first, so malformed input yields ErrTruncated (or a
// descriptive wrap of it) instead of a slice panic.
type Reader struct {
	b   []byte
	off int
}

// NewReader wraps data.
func NewReader(data []byte) *Reader { return &Reader{b: data} }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Offset returns the current read position.
func (r *Reader) Offset() int { return r.off }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint at offset %d", ErrTruncated, r.off)
	}
	r.off += n
	return v, nil
}

// Varint reads a zigzag-encoded signed varint.
func (r *Reader) Varint() (int64, error) {
	v, n := binary.Varint(r.b[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint at offset %d", ErrTruncated, r.off)
	}
	r.off += n
	return v, nil
}

// U32 reads a fixed little-endian uint32.
func (r *Reader) U32() (uint32, error) {
	if r.Remaining() < 4 {
		return 0, fmt.Errorf("%w: need 4 bytes at offset %d", ErrTruncated, r.off)
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

// Bytes reads a length-prefixed byte string; the result aliases the input.
func (r *Reader) Bytes() ([]byte, error) {
	n, err := r.Uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(r.Remaining()) {
		return nil, fmt.Errorf("%w: byte string of %d exceeds %d remaining", ErrTruncated, n, r.Remaining())
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// String reads a length-prefixed string (copied out of the input).
func (r *Reader) String() (string, error) {
	b, err := r.Bytes()
	return string(b), err
}

// Take reads exactly n raw bytes (no length prefix); the result aliases the
// input.
func (r *Reader) Take(n int) ([]byte, error) {
	if n < 0 || n > r.Remaining() {
		return nil, fmt.Errorf("%w: need %d bytes, %d remain at offset %d", ErrTruncated, n, r.Remaining(), r.off)
	}
	b := r.b[r.off : r.off+n]
	r.off += n
	return b, nil
}

// Count reads an element count and validates it against the remaining input
// under the assumption that each element occupies at least minBytes bytes.
// This is the allocation guard: a hostile count can never exceed what the
// buffer could physically hold, so make([]T, count) stays proportional to
// the input size.
func (r *Reader) Count(minBytes int) (int, error) {
	v, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(r.Remaining()/minBytes) {
		return 0, fmt.Errorf("%w: count %d exceeds capacity of %d remaining bytes", ErrTruncated, v, r.Remaining())
	}
	if v > math.MaxInt32 {
		return 0, fmt.Errorf("%w: count %d too large", ErrTruncated, v)
	}
	return int(v), nil
}
