// Package abuse classifies cloud-function responses into the four abuse
// scenarios and eight concrete cases of paper §5: covert C2 communication,
// hosting malicious websites (gambling / porn-related / cheating tools),
// hidden illicit services (redirects to concealed domains / OpenAI API key
// resale), and egress-node abuse (illegal-service proxies / geo-bypass
// proxies).
//
// This is defensive measurement tooling: the detectors encode the
// characteristic patterns the paper's analysts confirmed, so that abuse of
// serverless platforms can be found and reported, mirroring the paper's
// responsible disclosure.
package abuse

import "fmt"

// Type is one of the four abuse scenarios.
type Type int

const (
	C2 Type = iota
	MaliciousWebsite
	IllicitService
	EgressProxy
	numTypes
)

// NumTypes is the number of abuse scenarios.
const NumTypes = int(numTypes)

func (t Type) String() string {
	switch t {
	case C2:
		return "Abuse I: Covert C2 Communication"
	case MaliciousWebsite:
		return "Abuse II: Hosting Malicious Websites"
	case IllicitService:
		return "Abuse III: Hidden Illicit Service"
	case EgressProxy:
		return "Abuse IV: Egress Nodes Abuse"
	default:
		return fmt.Sprintf("abuse.Type(%d)", int(t))
	}
}

// Case is one of the eight concrete cases of Table 3.
type Case int

const (
	CaseC2 Case = iota
	CaseGambling
	CasePorn
	CaseCheating
	CaseRedirect
	CaseOpenAIResale
	CaseIllegalProxy
	CaseGeoProxy
	numCases
)

// NumCases is the number of concrete cases.
const NumCases = int(numCases)

func (c Case) String() string {
	switch c {
	case CaseC2:
		return "Hide C2 server"
	case CaseGambling:
		return "Gambling Website"
	case CasePorn:
		return "Porn-related Sites"
	case CaseCheating:
		return "Cheating Tool"
	case CaseRedirect:
		return "Redirect to New Domains"
	case CaseOpenAIResale:
		return "Resale of OpenAI Key"
	case CaseIllegalProxy:
		return "Illegal Service Proxy"
	case CaseGeoProxy:
		return "Geo-bypass Proxy"
	default:
		return fmt.Sprintf("abuse.Case(%d)", int(c))
	}
}

// TypeOf maps a case to its abuse scenario.
func (c Case) TypeOf() Type {
	switch c {
	case CaseC2:
		return C2
	case CaseGambling, CasePorn, CaseCheating:
		return MaliciousWebsite
	case CaseRedirect, CaseOpenAIResale:
		return IllicitService
	default:
		return EgressProxy
	}
}

// Document is one probed function response presented to the classifiers.
// Bodies are expected to be sanitised by the secrets package first.
type Document struct {
	FQDN        string
	Provider    string
	Region      string
	ChinaRegion bool
	Status      int
	ContentType string
	Body        string
	// Location carries an HTTP redirect target if the probe got a 3xx.
	Location string
}

// Verdict is one classification outcome.
type Verdict struct {
	FQDN     string
	Case     Case
	Evidence []string // matched indicators, for analyst review
	// Contacts holds extracted promotion contact handles (resale case).
	Contacts []string
	// Targets holds extracted redirect destinations (redirect case).
	Targets []string
	// Dynamic marks randomly generated redirect targets.
	Dynamic bool
	// Campaign is the shared SEO verification token of gambling sites run
	// by one operation (§5.2: campaign consistency).
	Campaign string
}

// Classify runs all content-based detectors over the document and returns
// the matched verdicts. C2 detection is fingerprint-based (package c2) and
// therefore not part of content classification; callers merge those
// detections separately when assembling a Report.
func Classify(doc *Document) []Verdict {
	var out []Verdict
	if v, ok := classifyResale(doc); ok {
		out = append(out, v)
	}
	if v, ok := classifyRedirect(doc); ok {
		out = append(out, v)
	}
	if v, ok := classifyProxy(doc); ok {
		out = append(out, v)
	}
	if v, ok := classifyKeywordSite(doc); ok {
		out = append(out, v)
	}
	return out
}

// Primary reduces multi-label verdicts to the single strongest case, using
// the paper's triage order: resale and redirects are the most specific
// signals, followed by proxies, then keyword sites.
func Primary(vs []Verdict) (Verdict, bool) {
	if len(vs) == 0 {
		return Verdict{}, false
	}
	best := vs[0]
	for _, v := range vs[1:] {
		if caseRank(v.Case) < caseRank(best.Case) {
			best = v
		}
	}
	return best, true
}

func caseRank(c Case) int {
	switch c {
	case CaseOpenAIResale:
		return 0
	case CaseRedirect:
		return 1
	case CaseIllegalProxy, CaseGeoProxy:
		return 2
	default:
		return 3
	}
}
