package abuse

import (
	"regexp"
	"strings"
)

// Redirect extraction (paper §5.3, Table 4). Hidden illicit services are
// promoted by sending visitors onward: an HTTP 3xx Location, a JavaScript
// location.href assignment, or a <meta http-equiv="refresh"> tag. Targets
// may be static, spliced from random numbers, or picked at random from a
// URL array — the dynamic forms exist precisely to defeat blocklists.

var (
	reLocationHref = regexp.MustCompile(`location\.href\s*=\s*(?:"([^"]+)"|'([^']+)'|([A-Za-z_][A-Za-z0-9_]*))`)
	reMetaRefresh  = regexp.MustCompile(`(?i)<meta[^>]*http-equiv=["']?refresh["']?[^>]*content=["'][^"']*url=([^"'>\s]+)`)
	reURLLiteral   = regexp.MustCompile(`https?://[^\s"'<>\\)+,]+`)
	reRandomSplice = regexp.MustCompile(`Math\.random\(\)`)
	reURLArray     = regexp.MustCompile(`(?s)(?:urls|links|list)\s*=\s*\[(.*?)\]`)
)

// classifyRedirect detects concealed-service redirects and extracts their
// targets. Redirects to a handful of well-known benign destinations are
// excluded, as in the paper (e.g. functions bouncing to www.sogou.com).
func classifyRedirect(doc *Document) (Verdict, bool) {
	v := Verdict{FQDN: doc.FQDN, Case: CaseRedirect}

	// HTTP-level redirect.
	if doc.Status >= 300 && doc.Status < 400 && doc.Location != "" {
		v.Targets = append(v.Targets, doc.Location)
		v.Evidence = append(v.Evidence, "http-location")
	}

	body := doc.Body
	// Random splicing: Math.random() feeding a location.href assignment.
	dynamic := reRandomSplice.MatchString(body) && strings.Contains(body, "location.href")

	// Random selection from a URL array.
	if m := reURLArray.FindStringSubmatch(body); m != nil && strings.Contains(body, "location.href") {
		for _, u := range reURLLiteral.FindAllString(m[1], -1) {
			v.Targets = append(v.Targets, strings.TrimRight(u, "',\""))
		}
		if len(v.Targets) > 0 {
			dynamic = true
			v.Evidence = append(v.Evidence, "url-array-selection")
		}
	}

	// Direct location.href assignment.
	for _, m := range reLocationHref.FindAllStringSubmatch(body, -1) {
		switch {
		case m[1] != "":
			v.Targets = append(v.Targets, m[1])
			v.Evidence = append(v.Evidence, "location.href")
		case m[2] != "":
			v.Targets = append(v.Targets, m[2])
			v.Evidence = append(v.Evidence, "location.href")
		case m[3] != "" && dynamic:
			// Assignment from a variable built with Math.random().
			v.Evidence = append(v.Evidence, "random-splicing")
		}
	}

	// Meta refresh.
	for _, m := range reMetaRefresh.FindAllStringSubmatch(body, -1) {
		v.Targets = append(v.Targets, m[1])
		v.Evidence = append(v.Evidence, "meta-refresh")
	}

	v.Targets = dedupe(v.Targets)
	v.Targets = filterBenign(v.Targets)
	v.Dynamic = dynamic
	if len(v.Targets) == 0 && !v.Dynamic {
		return Verdict{}, false
	}
	if len(v.Targets) == 0 && v.Dynamic && len(v.Evidence) == 0 {
		return Verdict{}, false
	}
	return v, true
}

// wellKnown lists destinations the paper excluded as benign.
var wellKnown = []string{
	"www.sogou.com", "www.baidu.com", "www.google.com", "www.bilibili.com",
	"example.com",
}

func filterBenign(targets []string) []string {
	out := targets[:0]
	for _, t := range targets {
		benign := false
		for _, w := range wellKnown {
			if strings.Contains(t, w) {
				benign = true
				break
			}
		}
		if !benign {
			out = append(out, t)
		}
	}
	return out
}

func dedupe(xs []string) []string {
	seen := make(map[string]struct{}, len(xs))
	out := xs[:0]
	for _, x := range xs {
		if _, ok := seen[x]; ok {
			continue
		}
		seen[x] = struct{}{}
		out = append(out, x)
	}
	return out
}
