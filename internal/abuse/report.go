package abuse

import (
	"sort"
)

// CaseStats is one Table 3 row: functions and PDNS requests per case.
type CaseStats struct {
	Case      Case
	Functions int
	Requests  int64
}

// Report is the assembled abuse picture of paper §5.5 (Table 3).
type Report struct {
	ByCase [NumCases]CaseStats
	// Assigned maps each abused FQDN to its primary case.
	Assigned map[string]Case
	// ContentRich is the denominator for AbuseRate: probed functions with
	// non-empty 200 responses (12,138 in the paper).
	ContentRich int
}

// NewReport assembles Table 3 from per-function verdicts. Each function
// counts once under its primary case; requests[fqdn] supplies the PDNS
// total_request_cnt joined per function (missing FQDNs count 0 requests).
// C2 detections must be passed in as CaseC2 verdicts.
func NewReport(verdictsByFQDN map[string][]Verdict, requests map[string]int64, contentRich int) *Report {
	r := &Report{Assigned: make(map[string]Case), ContentRich: contentRich}
	for i := range r.ByCase {
		r.ByCase[i].Case = Case(i)
	}
	fqdns := make([]string, 0, len(verdictsByFQDN))
	for f := range verdictsByFQDN {
		fqdns = append(fqdns, f)
	}
	sort.Strings(fqdns)
	for _, f := range fqdns {
		v, ok := Primary(verdictsByFQDN[f])
		if !ok {
			continue
		}
		r.Assigned[f] = v.Case
		r.ByCase[v.Case].Functions++
		r.ByCase[v.Case].Requests += requests[f]
	}
	return r
}

// TotalFunctions is the number of abused functions across all cases.
func (r *Report) TotalFunctions() int {
	n := 0
	for _, cs := range r.ByCase {
		n += cs.Functions
	}
	return n
}

// TotalRequests is the cumulative PDNS request count of abused functions.
func (r *Report) TotalRequests() int64 {
	var n int64
	for _, cs := range r.ByCase {
		n += cs.Requests
	}
	return n
}

// AbuseRate is abused functions over content-rich functions — the paper's
// headline 4.89% (594/12,138).
func (r *Report) AbuseRate() float64 {
	if r.ContentRich == 0 {
		return 0
	}
	return float64(r.TotalFunctions()) / float64(r.ContentRich)
}
