package abuse

import (
	"strings"
	"testing"
)

func htmlDoc(fqdn, body string) *Document {
	return &Document{FQDN: fqdn, Status: 200, ContentType: "text/html", Body: body}
}

func TestGamblingDetection(t *testing.T) {
	doc := htmlDoc("g1.a.run.app", `<html><head>
		<meta name="google-site-verification" content="abc"/>
		<title>Best Slot Games - Online Betting Casino Jackpot</title></head>
		<body>slot betting casino welcome bonus</body></html>`)
	vs := Classify(doc)
	v, ok := Primary(vs)
	if !ok || v.Case != CaseGambling {
		t.Fatalf("verdicts = %v", vs)
	}
	found := false
	for _, e := range v.Evidence {
		if e == "google-site-verification" {
			found = true
		}
	}
	if !found {
		t.Errorf("campaign marker missing from evidence: %v", v.Evidence)
	}
}

func TestSingleWeakKeywordIgnored(t *testing.T) {
	doc := htmlDoc("ok.a.run.app", `<html><body>My parking lot has one free slot today.</body></html>`)
	if vs := Classify(doc); len(vs) != 0 {
		t.Errorf("weak single keyword flagged: %v", vs)
	}
}

func TestPornAndCheatDetection(t *testing.T) {
	porn := htmlDoc("p.a.run.app", `<html><body>adult video and sex chat directory</body></html>`)
	if v, ok := Primary(Classify(porn)); !ok || v.Case != CasePorn {
		t.Errorf("porn verdict = %v ok=%v", v, ok)
	}
	cheat := htmlDoc("c.a.run.app", `<html><body>Verification generator to bypass parental controls for your game account</body></html>`)
	if v, ok := Primary(Classify(cheat)); !ok || v.Case != CaseCheating {
		t.Errorf("cheat verdict = %v ok=%v", v, ok)
	}
}

func TestNonHTMLNotKeywordSite(t *testing.T) {
	doc := &Document{FQDN: "x", Status: 200, ContentType: "application/json",
		Body: `{"msg":"casino slot betting"}`}
	for _, v := range Classify(doc) {
		if v.Case == CaseGambling {
			t.Errorf("JSON response classified as gambling site")
		}
	}
}

func TestRedirectHTTPLocation(t *testing.T) {
	doc := &Document{FQDN: "r.fcapp.run", Status: 302, Location: "http://dlcy.zeldalink.top/wlxcList.html"}
	v, ok := Primary(Classify(doc))
	if !ok || v.Case != CaseRedirect {
		t.Fatalf("verdict = %v ok=%v", v, ok)
	}
	if len(v.Targets) != 1 || v.Targets[0] != "http://dlcy.zeldalink.top/wlxcList.html" {
		t.Errorf("targets = %v", v.Targets)
	}
}

func TestRedirectStaticHref(t *testing.T) {
	doc := htmlDoc("r.fcapp.run", `<script>location.href = "http://dlcy.zeldalink.top/wlxcList.html"</script>`)
	v, ok := Primary(Classify(doc))
	if !ok || v.Case != CaseRedirect || v.Dynamic {
		t.Fatalf("verdict = %+v ok=%v", v, ok)
	}
}

func TestRedirectRandomSplicing(t *testing.T) {
	// Table 4's random-splicing example.
	doc := htmlDoc("r2.fcapp.run", `<script>
		var Rand = Math.round(Math.random() * 999999)
		location.href="https://"+Rand+".yerbsdga.xyz"</script>`)
	v, ok := Primary(Classify(doc))
	if !ok || v.Case != CaseRedirect {
		t.Fatalf("verdict = %v ok=%v", v, ok)
	}
	if !v.Dynamic {
		t.Error("random splicing not marked dynamic")
	}
}

func TestRedirectRandomSelection(t *testing.T) {
	// Table 4's random-selection example.
	doc := htmlDoc("r3.fcapp.run", `<script>
	const urls =[
	  'https://polaris.zijieapi.com/luckycat/super_inviter/v1/invite_code',
	  'https://www.bilibili.com/',
	  'https://www.bilibili.com/',
	]
	const url = urls[Math.floor(Math.random() * urls.length)]
	location.href = url</script>`)
	v, ok := Primary(Classify(doc))
	if !ok || v.Case != CaseRedirect || !v.Dynamic {
		t.Fatalf("verdict = %+v ok=%v", v, ok)
	}
	// bilibili is excluded as well-known; the zijieapi target remains.
	if len(v.Targets) != 1 || !strings.Contains(v.Targets[0], "zijieapi") {
		t.Errorf("targets = %v", v.Targets)
	}
}

func TestRedirectMetaRefresh(t *testing.T) {
	doc := htmlDoc("r4.fcapp.run", `<meta http-equiv="refresh" content="0; url=https://fxbtg-trade.example/open">`)
	v, ok := Primary(Classify(doc))
	if !ok || v.Case != CaseRedirect {
		t.Fatalf("verdict = %v ok=%v", v, ok)
	}
	if len(v.Targets) != 1 || !strings.HasPrefix(v.Targets[0], "https://fxbtg") {
		t.Errorf("targets = %v", v.Targets)
	}
}

func TestRedirectBenignExcluded(t *testing.T) {
	doc := htmlDoc("b.fcapp.run", `<script>location.href = "https://www.sogou.com/"</script>`)
	if vs := Classify(doc); len(vs) != 0 {
		t.Errorf("benign redirect flagged: %v", vs)
	}
}

func TestResaleDetection(t *testing.T) {
	doc := &Document{FQDN: "s.fcapp.run", Status: 200, ContentType: "text/plain",
		Body: "To purchase an API key (e.g., sk-s5S5BoV***), contact via WeChat: gptkey_seller88"}
	v, ok := Primary(Classify(doc))
	if !ok || v.Case != CaseOpenAIResale {
		t.Fatalf("verdict = %v ok=%v", v, ok)
	}
	if len(v.Contacts) != 1 || v.Contacts[0] != "wechat:gptkey_seller88" {
		t.Errorf("contacts = %v", v.Contacts)
	}
}

func TestResaleSanitisedBody(t *testing.T) {
	// After secrets sanitisation the example key becomes a redaction
	// marker; detection must survive.
	doc := &Document{FQDN: "s2.fcapp.run", Status: 200,
		Body: "Buy OpenAI API key [REDACTED:api-key:abcd1234] contact QQ: 123456789"}
	v, ok := Primary(Classify(doc))
	if !ok || v.Case != CaseOpenAIResale {
		t.Fatalf("verdict = %v ok=%v", v, ok)
	}
	if len(v.Contacts) != 1 || v.Contacts[0] != "qq:123456789" {
		t.Errorf("contacts = %v", v.Contacts)
	}
}

func TestResaleAccountSale(t *testing.T) {
	doc := &Document{FQDN: "s3.fcapp.run", Status: 200,
		Body: "OpenAI account with $18 credit for 10 RMB, email: seller@mail.example"}
	v, ok := Primary(Classify(doc))
	if !ok || v.Case != CaseOpenAIResale {
		t.Fatalf("verdict = %v ok=%v", v, ok)
	}
}

func TestResaleRequiresContactOrKey(t *testing.T) {
	doc := &Document{FQDN: "n.fcapp.run", Status: 200,
		Body: "how to purchase an api key from the official site"}
	for _, v := range Classify(doc) {
		if v.Case == CaseOpenAIResale {
			t.Errorf("contactless mention flagged as resale")
		}
	}
}

func TestGroupByContact(t *testing.T) {
	vs := []Verdict{
		{FQDN: "f1", Case: CaseOpenAIResale, Contacts: []string{"wechat:big"}},
		{FQDN: "f2", Case: CaseOpenAIResale, Contacts: []string{"wechat:big"}},
		{FQDN: "f3", Case: CaseOpenAIResale, Contacts: []string{"wechat:big", "qq:42424"}},
		{FQDN: "f4", Case: CaseOpenAIResale, Contacts: []string{"qq:42424"}},
		{FQDN: "x", Case: CaseGambling},
	}
	gs := GroupByContact(vs)
	if len(gs) != 2 {
		t.Fatalf("groups = %v", gs)
	}
	if gs[0].Contact != "wechat:big" || len(gs[0].Functions) != 3 {
		t.Errorf("largest group = %+v", gs[0])
	}
	if gs[1].Contact != "qq:42424" || len(gs[1].Functions) != 2 {
		t.Errorf("second group = %+v", gs[1])
	}
}

func TestIllegalProxyDetection(t *testing.T) {
	doc := &Document{FQDN: "t.scf.tencentcs.com", Status: 200,
		Body: "Ticketmaster puppeteer service: auto purchase tickets at scale"}
	v, ok := Primary(Classify(doc))
	if !ok || v.Case != CaseIllegalProxy {
		t.Fatalf("verdict = %v ok=%v", v, ok)
	}
	doc2 := &Document{FQDN: "t2.scf.tencentcs.com", Status: 200,
		Body: "Download TikTok download watermark-free videos"}
	if v, ok := Primary(Classify(doc2)); !ok || v.Case != CaseIllegalProxy {
		t.Errorf("tiktok verdict = %v ok=%v", v, ok)
	}
}

func TestGeoProxyRequiresNonChina(t *testing.T) {
	body := "This is a simple web application that interacts with OpenAI's chatbot API. Enter a message in the input box below"
	outside := &Document{FQDN: "o.a.run.app", Status: 200, Body: body, ChinaRegion: false}
	v, ok := Primary(Classify(outside))
	if !ok || v.Case != CaseGeoProxy {
		t.Fatalf("outside-China verdict = %v ok=%v", v, ok)
	}
	inside := &Document{FQDN: "i.fcapp.run", Status: 200, Body: body, ChinaRegion: true}
	for _, v := range Classify(inside) {
		if v.Case == CaseGeoProxy {
			t.Error("China-region function flagged as geo-bypass proxy")
		}
	}
}

func TestPrimaryRanking(t *testing.T) {
	vs := []Verdict{
		{Case: CaseGambling},
		{Case: CaseOpenAIResale},
		{Case: CaseGeoProxy},
	}
	v, ok := Primary(vs)
	if !ok || v.Case != CaseOpenAIResale {
		t.Errorf("Primary = %v", v.Case)
	}
	if _, ok := Primary(nil); ok {
		t.Error("Primary(nil) should report none")
	}
}

func TestCaseTypeMapping(t *testing.T) {
	want := map[Case]Type{
		CaseC2: C2, CaseGambling: MaliciousWebsite, CasePorn: MaliciousWebsite,
		CaseCheating: MaliciousWebsite, CaseRedirect: IllicitService,
		CaseOpenAIResale: IllicitService, CaseIllegalProxy: EgressProxy,
		CaseGeoProxy: EgressProxy,
	}
	for c, ty := range want {
		if c.TypeOf() != ty {
			t.Errorf("%v.TypeOf() = %v, want %v", c, c.TypeOf(), ty)
		}
	}
}

func TestReportAssembly(t *testing.T) {
	verdicts := map[string][]Verdict{
		"c2.example":   {{FQDN: "c2.example", Case: CaseC2}},
		"g.example":    {{FQDN: "g.example", Case: CaseGambling}},
		"both.example": {{FQDN: "both.example", Case: CaseGambling}, {FQDN: "both.example", Case: CaseOpenAIResale}},
	}
	reqs := map[string]int64{"c2.example": 100, "g.example": 50, "both.example": 7}
	r := NewReport(verdicts, reqs, 1000)
	if r.TotalFunctions() != 3 {
		t.Errorf("TotalFunctions = %d", r.TotalFunctions())
	}
	if r.TotalRequests() != 157 {
		t.Errorf("TotalRequests = %d", r.TotalRequests())
	}
	if r.ByCase[CaseGambling].Functions != 1 {
		t.Errorf("gambling row = %+v (multi-label function must count once)", r.ByCase[CaseGambling])
	}
	if r.ByCase[CaseOpenAIResale].Functions != 1 || r.ByCase[CaseOpenAIResale].Requests != 7 {
		t.Errorf("resale row = %+v", r.ByCase[CaseOpenAIResale])
	}
	if got := r.AbuseRate(); got != 0.003 {
		t.Errorf("AbuseRate = %v", got)
	}
	if r.Assigned["both.example"] != CaseOpenAIResale {
		t.Errorf("primary case = %v", r.Assigned["both.example"])
	}
}

func TestEmptyBodyNoVerdicts(t *testing.T) {
	if vs := Classify(&Document{FQDN: "e", Status: 200}); len(vs) != 0 {
		t.Errorf("empty body classified: %v", vs)
	}
	if vs := Classify(&Document{FQDN: "e", Status: 404, Body: "casino slot betting jackpot"}); len(vs) != 0 {
		t.Errorf("404 body classified: %v", vs)
	}
}

func TestGamblingCampaignExtraction(t *testing.T) {
	mk := func(fqdn, token string) *Document {
		return htmlDoc(fqdn, `<html><head>
<meta name="google-site-verification" content="`+token+`"/>
<title>slot betting casino</title></head><body>jackpot slot betting</body></html>`)
	}
	var vs []Verdict
	for _, c := range []struct{ fqdn, token string }{
		{"a.a.run.app", "gsv-campaign-00"},
		{"b.a.run.app", "gsv-campaign-00"},
		{"c.a.run.app", "gsv-campaign-00"},
		{"d.a.run.app", "gsv-campaign-01"},
	} {
		v, ok := Primary(Classify(mk(c.fqdn, c.token)))
		if !ok || v.Case != CaseGambling {
			t.Fatalf("%s not classified as gambling", c.fqdn)
		}
		if v.Campaign != c.token {
			t.Fatalf("%s campaign = %q, want %q", c.fqdn, v.Campaign, c.token)
		}
		vs = append(vs, v)
	}
	gs := GroupByCampaign(vs)
	if len(gs) != 2 || len(gs[0].Functions) != 3 || gs[0].Token != "gsv-campaign-00" {
		t.Errorf("campaign groups = %+v", gs)
	}
}
