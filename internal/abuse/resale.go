package abuse

import (
	"regexp"
	"sort"
	"strings"
)

// OpenAI API key resale detection (paper §5.3). Promotion texts follow the
// format "To purchase an API key (e.g., sk-…), contact via [contact]"; the
// same WeChat/QQ/email handle reused across many functions reveals group
// affiliation — the largest group in the paper ran one WeChat handle across
// 157 functions.

var (
	reResaleMention = regexp.MustCompile(`(?i)(?:purchase|buy|resale|sell|出售|购买|代充).{0,80}(?:api\s*key|openai\s*(?:account|key))`)
	reSKKey         = regexp.MustCompile(`\bsk-[A-Za-z0-9*.…]{6,}`)
	reWeChat        = regexp.MustCompile(`(?i)(?:wechat|weixin|微信)[:：\s]*([A-Za-z][A-Za-z0-9_-]{5,19})`)
	reQQ            = regexp.MustCompile(`(?i)(?:qq)[:：\s]*([0-9]{5,11})`)
	reEmail         = regexp.MustCompile(`[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}`)
	reAccountSale   = regexp.MustCompile(`(?i)(?:openai|chatgpt)\s*account.{0,60}(?:\$|usd|rmb|credit|trial)`)
)

// classifyResale detects OpenAI key/account resale promotions and extracts
// the contact handles used to cluster abuse groups.
func classifyResale(doc *Document) (Verdict, bool) {
	if doc.Status != 200 {
		return Verdict{}, false
	}
	body := doc.Body
	mention := reResaleMention.MatchString(body)
	account := reAccountSale.MatchString(body)
	hasKeyExample := reSKKey.MatchString(body) ||
		strings.Contains(body, "[REDACTED:api-key:") // sanitised example keys
	if !mention && !account {
		return Verdict{}, false
	}
	v := Verdict{FQDN: doc.FQDN, Case: CaseOpenAIResale}
	if mention {
		v.Evidence = append(v.Evidence, "resale-mention")
	}
	if account {
		v.Evidence = append(v.Evidence, "account-sale")
	}
	if hasKeyExample {
		v.Evidence = append(v.Evidence, "key-example")
	}
	for _, m := range reWeChat.FindAllStringSubmatch(body, -1) {
		v.Contacts = append(v.Contacts, "wechat:"+strings.ToLower(m[1]))
	}
	for _, m := range reQQ.FindAllStringSubmatch(body, -1) {
		v.Contacts = append(v.Contacts, "qq:"+m[1])
	}
	for _, m := range reEmail.FindAllString(body, -1) {
		v.Contacts = append(v.Contacts, "email:"+strings.ToLower(m))
	}
	v.Contacts = dedupe(v.Contacts)
	// A resale promotion without any contact channel is not actionable and
	// is likely a false positive; require at least one, like the analysts.
	if len(v.Contacts) == 0 && !hasKeyExample {
		return Verdict{}, false
	}
	return v, true
}

// Group is a cluster of resale functions sharing a contact handle.
type Group struct {
	Contact   string
	Functions []string
}

// GroupByContact clusters resale verdicts by shared contact handle
// (paper §5.3: repeated use of the same contact suggests group affiliation).
// A function advertising several handles joins each handle's group; groups
// come back largest-first.
func GroupByContact(vs []Verdict) []Group {
	byContact := map[string]map[string]struct{}{}
	for _, v := range vs {
		if v.Case != CaseOpenAIResale {
			continue
		}
		for _, c := range v.Contacts {
			if byContact[c] == nil {
				byContact[c] = map[string]struct{}{}
			}
			byContact[c][v.FQDN] = struct{}{}
		}
	}
	out := make([]Group, 0, len(byContact))
	for c, fns := range byContact {
		g := Group{Contact: c}
		for f := range fns {
			g.Functions = append(g.Functions, f)
		}
		sort.Strings(g.Functions)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Functions) != len(out[j].Functions) {
			return len(out[i].Functions) > len(out[j].Functions)
		}
		return out[i].Contact < out[j].Contact
	})
	return out
}
