package abuse

import (
	"strings"
)

// Egress-node abuse detection (paper §5.4). Cloud functions make ideal IP
// proxies: every scaled-out instance may get a different egress address.
// Two flavours are reported: proxies fronting underground services that
// hammer a target platform from ever-changing cloud IPs, and proxies that
// bypass geographic restrictions by running outside China (OpenAI, GitHub,
// VPN) — the paper confirmed the latter are all deployed in non-China
// regions.

var illegalProxyIndicators = []string{
	"ticketmaster", "puppeteer", "watermark-free", "without watermark",
	"tiktok download", "douyin download", "kuwo", "qq music", "scraper api",
	"ticket grabbing", "auto purchase",
}

var geoProxyIndicators = []string{
	"openai", "chatgpt", "api.openai.com", "github proxy", "github.com/",
	"vpn", "v2ray", "shadowsocks", "clash",
}

var proxySemantics = []string{
	"proxy", "forward", "relay", "mirror", "chatbot api", "completions",
	"interacts with openai", "enter a message",
}

// classifyProxy detects both proxy cases. Geo-bypass requires the function
// to sit outside China — the defining deployment property (§5.4) — so a
// China-region function mentioning OpenAI is not flagged as geo-bypass.
func classifyProxy(doc *Document) (Verdict, bool) {
	if doc.Status != 200 {
		return Verdict{}, false
	}
	body := strings.ToLower(doc.Body)

	if ev := hitsAny(body, illegalProxyIndicators); len(ev) > 0 {
		return Verdict{FQDN: doc.FQDN, Case: CaseIllegalProxy, Evidence: ev}, true
	}

	geo := hitsAny(body, geoProxyIndicators)
	sem := hitsAny(body, proxySemantics)
	if len(geo) > 0 && len(sem) > 0 && !doc.ChinaRegion {
		return Verdict{
			FQDN: doc.FQDN, Case: CaseGeoProxy,
			Evidence: append(geo, sem...),
		}, true
	}
	return Verdict{}, false
}
