package abuse

import (
	"regexp"
	"sort"
	"strings"
)

// Keyword detectors for malicious websites hosted on cloud functions
// (paper §5.2). The paper filtered candidate responses with domain-typical
// keywords and confirmed matches by manual review of page structure; here
// confirmation is approximated by requiring both a keyword hit and an HTML
// page shape, plus campaign markers where the paper reports them (gambling
// sites extensively embed google-site-verification and keyword stuffing).

var gamblingKeywords = []string{
	"slot", "betting", "casino", "jackpot", "baccarat", "roulette",
	"sportsbook", "wager", "lottery", "poker room",
}

var pornKeywords = []string{
	"porn", "xxx video", "adult video", "sex chat", "av online",
	"adult store", "erotic",
}

var cheatKeywords = []string{
	"verification generator", "bypass parental", "age modification",
	"change bound email", "account unlocker", "aimbot", "game cheat",
}

// classifyKeywordSite detects gambling, porn-related, and cheating-tool
// pages among HTML responses.
func classifyKeywordSite(doc *Document) (Verdict, bool) {
	if doc.Status != 200 {
		return Verdict{}, false
	}
	body := strings.ToLower(doc.Body)
	if !strings.Contains(strings.ToLower(doc.ContentType), "html") &&
		!strings.Contains(body, "<html") && !strings.Contains(body, "<body") {
		return Verdict{}, false
	}
	if ev := hits(body, gamblingKeywords); len(ev) > 0 {
		// Campaign consistency markers strengthen the verdict but are not
		// required: SEO verification tags and keyword stuffing.
		v := Verdict{FQDN: doc.FQDN, Case: CaseGambling, Evidence: ev}
		if m := reSiteVerification.FindStringSubmatch(body); m != nil {
			v.Evidence = append(v.Evidence, "google-site-verification")
			v.Campaign = m[1]
		}
		return v, true
	}
	if ev := hits(body, pornKeywords); len(ev) > 0 {
		return Verdict{FQDN: doc.FQDN, Case: CasePorn, Evidence: ev}, true
	}
	if ev := hits(body, cheatKeywords); len(ev) > 0 {
		return Verdict{FQDN: doc.FQDN, Case: CaseCheating, Evidence: ev}, true
	}
	return Verdict{}, false
}

// hits returns the keywords present in body, requiring two independent
// indicators for single-word keywords to cut false positives (the paper's
// stand-in for dual-analyst agreement).
func hits(body string, keywords []string) []string {
	var ev []string
	for _, k := range keywords {
		if strings.Contains(body, k) {
			ev = append(ev, k)
		}
	}
	if len(ev) == 1 && !strings.Contains(ev[0], " ") {
		// One generic word alone ("slot" in a parking page) is too weak.
		return nil
	}
	return ev
}

// hitsAny returns every keyword present in body with no minimum-evidence
// rule, for indicator lists whose entries are already specific.
func hitsAny(body string, keywords []string) []string {
	var ev []string
	for _, k := range keywords {
		if strings.Contains(body, k) {
			ev = append(ev, k)
		}
	}
	return ev
}

var reSiteVerification = regexp.MustCompile(`google-site-verification"?\s+content="([^"]+)"`)

// CampaignGroup is a set of sites sharing one SEO verification token.
type CampaignGroup struct {
	Token     string
	Functions []string
}

// GroupByCampaign clusters gambling verdicts by their shared
// google-site-verification token, recovering the campaign structure the
// paper observed (§5.2). Groups come back largest-first.
func GroupByCampaign(vs []Verdict) []CampaignGroup {
	byToken := map[string]map[string]struct{}{}
	for _, v := range vs {
		if v.Case != CaseGambling || v.Campaign == "" {
			continue
		}
		if byToken[v.Campaign] == nil {
			byToken[v.Campaign] = map[string]struct{}{}
		}
		byToken[v.Campaign][v.FQDN] = struct{}{}
	}
	out := make([]CampaignGroup, 0, len(byToken))
	for tok, fns := range byToken {
		g := CampaignGroup{Token: tok}
		for f := range fns {
			g.Functions = append(g.Functions, f)
		}
		sort.Strings(g.Functions)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].Functions) != len(out[j].Functions) {
			return len(out[i].Functions) > len(out[j].Functions)
		}
		return out[i].Token < out[j].Token
	})
	return out
}
