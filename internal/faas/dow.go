package faas

import (
	"fmt"
	"time"
)

// Denial-of-Wallet analysis (paper §5, Finding 5): a publicly accessible
// function lets any HTTP client drive up the owner's bill, because billing
// is per-invocation plus GB-seconds. DoWEstimate quantifies the exposure of
// one unprotected function under a sustained request flood.

// DoWParams describes an attack against one public function.
type DoWParams struct {
	// RequestsPerSecond of attacker traffic.
	RequestsPerSecond float64
	// Duration of the flood.
	Duration time.Duration
	// MemoryMB and ExecDuration are the victim function's configuration;
	// heavier functions burn GB-seconds faster.
	MemoryMB     int
	ExecDuration time.Duration
}

// DoWEstimate is the projected outcome.
type DoWEstimate struct {
	Invocations int64
	GBSeconds   float64
	// CostUSD is the victim's bill beyond the free tier.
	CostUSD float64
	// FreeTierExhaustedAfter is how long until the monthly free allowance
	// is gone (zero if it never is at this rate).
	FreeTierExhaustedAfter time.Duration
}

// EstimateDoW projects the cost of the attack under the price model.
func EstimateDoW(pm PriceModel, p DoWParams) (DoWEstimate, error) {
	if p.RequestsPerSecond <= 0 || p.Duration <= 0 {
		return DoWEstimate{}, fmt.Errorf("faas: DoW parameters must be positive, got %+v", p)
	}
	cfg := (&Config{MemoryMB: p.MemoryMB, Timeout: p.ExecDuration}).withDefaults()
	exec := p.ExecDuration
	if exec <= 0 {
		exec = 100 * time.Millisecond
	}
	var est DoWEstimate
	est.Invocations = int64(p.RequestsPerSecond * p.Duration.Seconds())
	gbPerInvocation := float64(cfg.MemoryMB) / 1024 * exec.Seconds()
	est.GBSeconds = float64(est.Invocations) * gbPerInvocation

	m := Meter{Invocations: est.Invocations, GBSeconds: est.GBSeconds}
	est.CostUSD = m.Cost(pm)

	// Time to exhaust the free tier on either axis, whichever first.
	reqSecs := float64(pm.FreeRequests) / p.RequestsPerSecond
	gbSecs := pm.FreeGBSeconds / (p.RequestsPerSecond * gbPerInvocation)
	first := reqSecs
	if gbSecs < first {
		first = gbSecs
	}
	if first < p.Duration.Seconds() {
		est.FreeTierExhaustedAfter = time.Duration(first * float64(time.Second))
	}
	return est, nil
}
