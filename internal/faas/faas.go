// Package faas simulates the serverless cloud function platforms that the
// paper measures from the outside. It implements the full lifecycle of
// paper §2 — deployment, invocation, and execution — including function
// URLs, cold/warm starts, per-invocation billing in GB-seconds with free
// tiers, access control, deletion semantics, and egress IP allocation.
//
// The platform is driven by an explicit simulated clock (invocations carry
// timestamps), which keeps instance reuse, cold-start accounting and billing
// deterministic and testable. A net/http gateway (see gateway.go) exposes
// deployed functions over real sockets so the active prober exercises the
// same code paths it would against production clouds.
package faas

import (
	"errors"
	"fmt"
	"time"
)

// Request is the provider-normalised HTTP event passed to a function, the
// shape sketched in the paper's Algorithm 1 (event['path'], event['headers'],
// event['queryString'], event['body'], event['httpMethod']).
type Request struct {
	Method  string
	Path    string
	Query   string
	Headers map[string]string
	Body    []byte

	// Time is the simulated invocation instant.
	Time time.Time
}

// Response is what a function hands back to the platform.
type Response struct {
	Status  int
	Headers map[string]string
	Body    []byte
}

// Handler is the deployed function code.
type Handler func(ctx *InvokeContext) Response

// InvokeContext gives function code access to its execution environment.
type InvokeContext struct {
	Request  Request
	Function *Function
	// EgressIP is the source address outbound connections would use for
	// this instance (paper §5.4: dynamically allocated per instance).
	EgressIP string
	// Instance is the execution-environment ID serving this invocation.
	Instance int64
	// Cold reports whether this invocation paid a cold start.
	Cold bool
	// Env holds the function's environment variables.
	Env map[string]string
}

// AccessControl is the function-URL authentication mode (paper §6 discusses
// IAM defaults; §5 measures 0.13% of functions returning 401).
type AccessControl int

const (
	// Public functions answer any HTTP client.
	Public AccessControl = iota
	// IAMAuth functions reject unsigned requests with 401.
	IAMAuth
	// InternalOnly functions are reachable only inside the VPC; external
	// probes time out (part of the paper's 2.03% unreachable set).
	InternalOnly
)

func (a AccessControl) String() string {
	switch a {
	case Public:
		return "public"
	case IAMAuth:
		return "iam"
	case InternalOnly:
		return "internal-only"
	default:
		return fmt.Sprintf("AccessControl(%d)", int(a))
	}
}

// Config is the deployment-time configuration of a function (paper §2.1:
// environment variables, memory allocation, execution timeout, concurrency).
type Config struct {
	MemoryMB    int           // allocated memory; billing multiplies by duration
	Timeout     time.Duration // execution cap; default 60s like most providers
	Concurrency int           // max simultaneous instances; 0 = provider default
	Access      AccessControl
	Env         map[string]string
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.MemoryMB <= 0 {
		out.MemoryMB = 128
	}
	if out.Timeout <= 0 {
		out.Timeout = 60 * time.Second
	}
	if out.Concurrency <= 0 {
		out.Concurrency = 1000
	}
	return out
}

// Errors returned by the platform.
var (
	ErrNotFound        = errors.New("faas: function not found")
	ErrDeleted         = errors.New("faas: function deleted")
	ErrTooManyRequests = errors.New("faas: concurrency limit exceeded")
	ErrTimeout         = errors.New("faas: execution timed out")
)

// Latencies of the execution model. Cold starts pay initialisation —
// resource allocation, code load, runtime launch (paper §2.3) — warm starts
// reuse a live environment.
const (
	ColdStartLatency = 450 * time.Millisecond
	WarmStartLatency = 8 * time.Millisecond
	// InstanceIdleTTL is how long an idle execution environment survives
	// before the provider reclaims it.
	InstanceIdleTTL = 10 * time.Minute
)
