package faas

import (
	"time"

	"repro/internal/providers"
)

// PriceModel is the pay-per-use schedule of paper §2.3: a per-request price
// plus a compute price in GB-seconds, each with a monthly free allowance.
type PriceModel struct {
	// FreeRequests and FreeGBSeconds reset monthly.
	FreeRequests  int64
	FreeGBSeconds float64
	// USDPerMillionRequests and USDPerGBSecond apply beyond the free tier.
	USDPerMillionRequests float64
	USDPerGBSecond        float64
}

// PriceFor returns the provider's published price model. Values mirror the
// AWS numbers quoted in the paper; other providers are set to comparable
// schedules so cost comparisons stay meaningful.
func PriceFor(id providers.ID) PriceModel {
	switch id {
	case providers.AWS:
		// Free tier: 1M requests + 400k GB-s/month; then $0.20/M requests
		// and $0.0000166667/GB-s (paper §2.3).
		return PriceModel{
			FreeRequests: 1_000_000, FreeGBSeconds: 400_000,
			USDPerMillionRequests: 0.20, USDPerGBSecond: 0.0000166667,
		}
	case providers.Tencent:
		// Free three-month trial for new users; modelled as a generous
		// monthly allowance.
		return PriceModel{
			FreeRequests: 1_000_000, FreeGBSeconds: 400_000,
			USDPerMillionRequests: 0.02, USDPerGBSecond: 0.0000167,
		}
	default:
		return PriceModel{
			FreeRequests: 1_000_000, FreeGBSeconds: 400_000,
			USDPerMillionRequests: 0.20, USDPerGBSecond: 0.0000167,
		}
	}
}

// Meter accumulates a function's billable usage.
type Meter struct {
	Invocations int64
	ColdStarts  int64
	GBSeconds   float64
	Errors      int64 // 5xx outcomes
}

// add records one execution of duration d under memoryMB of RAM.
func (m *Meter) add(memoryMB int, d time.Duration, cold bool, status int) {
	m.Invocations++
	if cold {
		m.ColdStarts++
	}
	m.GBSeconds += float64(memoryMB) / 1024 * d.Seconds()
	if status >= 500 {
		m.Errors++
	}
}

// Cost prices the accumulated usage under the model, assuming it all fell in
// a single billing month.
func (m Meter) Cost(p PriceModel) float64 {
	reqs := m.Invocations - p.FreeRequests
	if reqs < 0 {
		reqs = 0
	}
	gbs := m.GBSeconds - p.FreeGBSeconds
	if gbs < 0 {
		gbs = 0
	}
	return float64(reqs)/1e6*p.USDPerMillionRequests + gbs*p.USDPerGBSecond
}
