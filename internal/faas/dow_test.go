package faas

import (
	"testing"
	"time"

	"repro/internal/providers"
)

func TestEstimateDoWBasics(t *testing.T) {
	pm := PriceFor(providers.AWS)
	// 1000 rps for 24h against a 512MB/200ms function.
	est, err := EstimateDoW(pm, DoWParams{
		RequestsPerSecond: 1000,
		Duration:          24 * time.Hour,
		MemoryMB:          512,
		ExecDuration:      200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Invocations != 86_400_000 {
		t.Errorf("invocations = %d", est.Invocations)
	}
	wantGBs := 86_400_000 * 0.5 * 0.2 // 8.64M GB-s
	if est.GBSeconds < wantGBs*0.999 || est.GBSeconds > wantGBs*1.001 {
		t.Errorf("GB-s = %v, want %v", est.GBSeconds, wantGBs)
	}
	// Cost: (86.4M-1M)/1M*0.2 + (8.64M-400k)*0.0000166667 ≈ 17.08 + 137.3.
	if est.CostUSD < 150 || est.CostUSD > 160 {
		t.Errorf("cost = %v USD, want ≈154", est.CostUSD)
	}
	if est.FreeTierExhaustedAfter <= 0 || est.FreeTierExhaustedAfter > time.Hour {
		t.Errorf("free tier exhausted after %v, want minutes", est.FreeTierExhaustedAfter)
	}
}

func TestEstimateDoWStaysInFreeTier(t *testing.T) {
	pm := PriceFor(providers.AWS)
	est, err := EstimateDoW(pm, DoWParams{
		RequestsPerSecond: 1,
		Duration:          time.Hour,
		MemoryMB:          128,
		ExecDuration:      50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.CostUSD != 0 {
		t.Errorf("cost = %v, want 0 inside free tier", est.CostUSD)
	}
	if est.FreeTierExhaustedAfter != 0 {
		t.Errorf("free tier flagged exhausted at 1 rps over an hour")
	}
}

func TestEstimateDoWValidation(t *testing.T) {
	pm := PriceFor(providers.AWS)
	if _, err := EstimateDoW(pm, DoWParams{}); err == nil {
		t.Error("zero parameters accepted")
	}
	if _, err := EstimateDoW(pm, DoWParams{RequestsPerSecond: -5, Duration: time.Hour}); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestEstimateDoWMemoryScaling(t *testing.T) {
	pm := PriceFor(providers.AWS)
	small, _ := EstimateDoW(pm, DoWParams{RequestsPerSecond: 500, Duration: 24 * time.Hour, MemoryMB: 128, ExecDuration: 100 * time.Millisecond})
	big, _ := EstimateDoW(pm, DoWParams{RequestsPerSecond: 500, Duration: 24 * time.Hour, MemoryMB: 1024, ExecDuration: 100 * time.Millisecond})
	if big.CostUSD <= small.CostUSD {
		t.Errorf("heavier function should cost more: %v vs %v", big.CostUSD, small.CostUSD)
	}
}
