package faas

import (
	"fmt"
	"hash/fnv"

	"repro/internal/providers"
)

// EgressPoolSize is the number of outbound addresses a provider rotates
// through per region. Because providers allocate egress IPs dynamically per
// execution environment, a function that scales out sends traffic from many
// addresses — the property abused to build IP proxies (paper §5.4).
const EgressPoolSize = 256

// EgressIP returns the outbound IPv4 address used by execution environment
// `instance` of a function in (provider, region). Distinct instances map to
// (mostly) distinct addresses in the regional pool.
func EgressIP(id providers.ID, region string, instance int64) string {
	slot := uint32(instance) % EgressPoolSize
	h := fnv.New32a()
	fmt.Fprintf(h, "egress|%d|%s|%d", int(id), region, slot)
	v := h.Sum32()
	// Egress ranges are distinct from ingress ranges: 100.64/10-style pool
	// shifted per provider, so analyses can tell the two apart.
	return fmt.Sprintf("%d.%d.%d.%d", 100+int(id), byte(64+v%64), byte(v>>8), byte(v))
}

// EgressRotation reports how many distinct egress addresses a burst of n
// fresh instances would observe — the effective anonymity set an abuser
// gains from scale-out.
func EgressRotation(id providers.ID, region string, n int) int {
	seen := make(map[string]struct{}, n)
	for i := int64(1); i <= int64(n); i++ {
		seen[EgressIP(id, region, i)] = struct{}{}
	}
	return len(seen)
}
