package faas

import (
	"sync"
	"time"

	"repro/internal/providers"
)

// Function is one deployed serverless function.
type Function struct {
	FQDN     string
	Provider providers.ID
	Region   string
	Config   Config
	Handler  Handler

	// CreatedAt / DeletedAt bound the function's deployed lifetime on the
	// simulated clock. DeletedAt.IsZero() means still deployed.
	CreatedAt time.Time

	mu        sync.Mutex
	deletedAt time.Time

	// Execution-environment pool. Instances are identified by a
	// monotonically increasing ID; each remembers when it last finished.
	nextInstance int64
	warm         []instance
	// busy tracks in-flight executions by their completion time on the
	// simulated clock, enforcing the configured concurrency limit.
	busy []time.Time

	meter Meter
}

type instance struct {
	id       int64
	idleFrom time.Time
}

// Deleted reports whether the function was deleted at or before t.
func (f *Function) Deleted(t time.Time) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return !f.deletedAt.IsZero() && !t.Before(f.deletedAt)
}

// Meter returns a snapshot of the function's usage counters.
func (f *Function) Meter() Meter {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.meter
}

// acquire obtains an execution environment at time t, reporting its ID and
// whether a cold start was needed. Expired warm instances are reclaimed,
// and the concurrency limit is enforced against executions still in flight
// at t (ok=false means throttled).
func (f *Function) acquire(t time.Time) (id int64, cold, ok bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Retire completed executions and drop environments idle past the TTL.
	inflight := f.busy[:0]
	for _, done := range f.busy {
		if done.After(t) {
			inflight = append(inflight, done)
		}
	}
	f.busy = inflight
	if len(f.busy) >= f.Config.Concurrency {
		return 0, false, false
	}
	live := f.warm[:0]
	for _, in := range f.warm {
		if t.Sub(in.idleFrom) < InstanceIdleTTL {
			live = append(live, in)
		}
	}
	f.warm = live
	if n := len(f.warm); n > 0 {
		in := f.warm[n-1]
		f.warm = f.warm[:n-1]
		return in.id, false, true
	}
	f.nextInstance++
	return f.nextInstance, true, true
}

// release returns an environment to the warm pool at time t, the instant
// its current execution completes.
func (f *Function) release(id int64, t time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.warm = append(f.warm, instance{id: id, idleFrom: t})
	f.busy = append(f.busy, t)
}

// WarmInstances reports the current number of idle warm environments as of
// time t.
func (f *Function) WarmInstances(t time.Time) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, in := range f.warm {
		if t.Sub(in.idleFrom) < InstanceIdleTTL {
			n++
		}
	}
	return n
}
