package faas

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/providers"
)

// Gateway exposes a Platform over real HTTP. Requests are routed by Host
// header to the function deployed under that FQDN, so a prober pointed at
// the gateway behaves exactly as it would against the provider's ingress.
//
// Provider-specific edge semantics are reproduced here:
//   - unknown or deleted functions: 404 Not Found, except AWS, whose edge
//     answers 403 Forbidden (paper §4.4);
//   - internal-only functions: the gateway stalls until UnreachableDelay so
//     clients observe a timeout;
//   - IAM-protected functions: 401 from the platform.
type Gateway struct {
	Platform *Platform
	// Clock supplies the simulated invocation time; defaults to time.Now.
	Clock func() time.Time
	// UnreachableDelay is how long internal-only functions stall before the
	// gateway gives up the connection. Tests shrink this.
	UnreachableDelay time.Duration

	matcher *providers.Matcher

	// Telemetry; populated by Instrument, no-ops otherwise.
	mRequests *obs.Counter  // gateway_requests_total
	mStatus   *obs.Registry // gateway_responses_{1xx..5xx}_total
}

// Instrument points the gateway's telemetry at reg (and the platform's, for
// cold/warm start counters). A nil registry leaves both un-instrumented.
func (g *Gateway) Instrument(reg *obs.Registry) {
	g.mRequests = reg.Counter("gateway_requests_total")
	g.mStatus = reg
	if g.Platform != nil {
		g.Platform.Instrument(reg)
	}
}

// NewGateway wraps a platform.
func NewGateway(p *Platform) *Gateway {
	return &Gateway{
		Platform:         p,
		Clock:            time.Now,
		UnreachableDelay: 61 * time.Second,
		matcher:          providers.NewMatcher(providers.All()),
	}
}

// statusWriter captures the response status for the gateway's telemetry.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mRequests.Inc()
	sw := &statusWriter{ResponseWriter: w}
	w = sw
	defer func() {
		if sw.status != 0 {
			g.mStatus.Counter(fmt.Sprintf("gateway_responses_%dxx_total", sw.status/100)).Inc()
		}
	}()
	host := r.Host
	if i := strings.IndexByte(host, ':'); i >= 0 {
		host = host[:i]
	}
	req := Request{
		Method:  r.Method,
		Path:    r.URL.Path,
		Query:   r.URL.RawQuery,
		Headers: flattenHeader(r.Header),
		Time:    g.now(),
	}
	if r.Body != nil {
		req.Body, _ = io.ReadAll(io.LimitReader(r.Body, 1<<20))
	}

	resp, _, err := g.Platform.Invoke(host, req)
	switch {
	case err == nil:
		for k, v := range resp.Headers {
			w.Header().Set(k, v)
		}
		w.WriteHeader(resp.Status)
		w.Write(resp.Body)
	case errors.Is(err, ErrTimeout):
		// Internal-only: hold the connection so the client times out.
		select {
		case <-r.Context().Done():
		case <-time.After(g.UnreachableDelay):
		}
		// If the client is somehow still here, drop with a gateway error.
		w.WriteHeader(http.StatusGatewayTimeout)
	case errors.Is(err, ErrTooManyRequests):
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"message":"Too Many Requests"}`))
	case errors.Is(err, ErrNotFound), errors.Is(err, ErrDeleted):
		g.writeMissing(w, host)
	default:
		w.WriteHeader(http.StatusInternalServerError)
	}
}

// writeMissing emulates each provider's response for unknown or deleted
// functions.
func (g *Gateway) writeMissing(w http.ResponseWriter, host string) {
	if in, ok := g.matcher.Identify(host); ok && in.ID == providers.AWS {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusForbidden)
		w.Write([]byte(`{"Message":"Forbidden"}`))
		return
	}
	w.Header().Set("Content-Type", "text/plain")
	w.WriteHeader(http.StatusNotFound)
	w.Write([]byte("Not Found"))
}

func (g *Gateway) now() time.Time {
	if g.Clock != nil {
		return g.Clock()
	}
	return time.Now()
}

func flattenHeader(h http.Header) map[string]string {
	out := make(map[string]string, len(h))
	for k, vs := range h {
		if len(vs) > 0 {
			out[k] = vs[0]
		}
	}
	return out
}
