package faas

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/providers"
)

// Platform hosts deployed functions for every simulated provider and
// executes invocations against them. It is safe for concurrent use.
type Platform struct {
	mu    sync.RWMutex
	funcs map[string]*Function // keyed by lowercase FQDN

	// Telemetry; populated by Instrument, no-ops otherwise.
	mInvocations *obs.Counter    // faas_invocations_total
	mCold        *obs.Counter    // faas_cold_starts_total
	mWarm        *obs.Counter    // faas_warm_starts_total
	mThrottled   *obs.Counter    // faas_throttled_total
	mDuration    *obs.Histogram  // faas_exec_seconds: billed execution time
	mStarts      *obs.CounterVec // faas_starts_total{provider,start=cold|warm}
}

// Instrument points the platform's telemetry at reg. Call before serving; a
// nil registry leaves the platform un-instrumented.
func (p *Platform) Instrument(reg *obs.Registry) {
	p.mInvocations = reg.Counter("faas_invocations_total")
	p.mCold = reg.Counter("faas_cold_starts_total")
	p.mWarm = reg.Counter("faas_warm_starts_total")
	p.mThrottled = reg.Counter("faas_throttled_total")
	p.mDuration = reg.Histogram("faas_exec_seconds", nil)
	p.mStarts = reg.CounterVec("faas_starts_total", "provider", "start")
}

// NewPlatform returns an empty platform.
func NewPlatform() *Platform {
	return &Platform{funcs: make(map[string]*Function)}
}

// Deploy registers a function under its FQDN (paper §2.1). Deploying an
// existing FQDN replaces the previous code, as providers allow.
func (p *Platform) Deploy(fqdn string, prov providers.ID, region string, cfg Config, h Handler, at time.Time) *Function {
	f := &Function{
		FQDN:      strings.ToLower(fqdn),
		Provider:  prov,
		Region:    region,
		Config:    cfg.withDefaults(),
		Handler:   h,
		CreatedAt: at,
	}
	p.mu.Lock()
	p.funcs[f.FQDN] = f
	p.mu.Unlock()
	return f
}

// Delete marks the function deleted as of time at. The FQDN remains known to
// the platform so the gateway can emulate provider-specific deleted-function
// responses (404 for most providers, 403 for AWS; paper §4.4).
func (p *Platform) Delete(fqdn string, at time.Time) error {
	p.mu.RLock()
	f := p.funcs[strings.ToLower(fqdn)]
	p.mu.RUnlock()
	if f == nil {
		return fmt.Errorf("%w: %s", ErrNotFound, fqdn)
	}
	f.mu.Lock()
	f.deletedAt = at
	f.mu.Unlock()
	return nil
}

// Lookup returns the function deployed under fqdn.
func (p *Platform) Lookup(fqdn string) (*Function, bool) {
	p.mu.RLock()
	f, ok := p.funcs[strings.ToLower(fqdn)]
	p.mu.RUnlock()
	return f, ok
}

// Len reports the number of registered functions, deleted ones included.
func (p *Platform) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.funcs)
}

// Range calls fn for every registered function until fn returns false.
func (p *Platform) Range(fn func(*Function) bool) {
	p.mu.RLock()
	snapshot := make([]*Function, 0, len(p.funcs))
	for _, f := range p.funcs {
		snapshot = append(snapshot, f)
	}
	p.mu.RUnlock()
	for _, f := range snapshot {
		if !fn(f) {
			return
		}
	}
}

// InvokeInfo describes how an invocation executed.
type InvokeInfo struct {
	Cold     bool
	Latency  time.Duration // start latency + execution time
	Duration time.Duration // billed execution time
	Instance int64
	EgressIP string
}

// Invoke executes one HTTP invocation of fqdn at the simulated instant
// req.Time (paper §2.2–2.3). Platform-level failures are expressed through
// the returned error; function-level outcomes (401/404/5xx bodies) come back
// as the Response.
func (p *Platform) Invoke(fqdn string, req Request) (Response, InvokeInfo, error) {
	f, ok := p.Lookup(fqdn)
	if !ok {
		return Response{}, InvokeInfo{}, fmt.Errorf("%w: %s", ErrNotFound, fqdn)
	}
	if f.Deleted(req.Time) {
		return Response{}, InvokeInfo{}, fmt.Errorf("%w: %s", ErrDeleted, fqdn)
	}
	switch f.Config.Access {
	case IAMAuth:
		if req.Headers["Authorization"] == "" {
			return Response{
				Status:  401,
				Headers: map[string]string{"Content-Type": "application/json"},
				Body:    []byte(`{"message":"Unauthorized"}`),
			}, InvokeInfo{}, nil
		}
	case InternalOnly:
		return Response{}, InvokeInfo{}, fmt.Errorf("%w: %s is internal-only", ErrTimeout, fqdn)
	}

	id, cold, ok := f.acquire(req.Time)
	if !ok {
		p.mThrottled.Inc()
		return Response{}, InvokeInfo{}, fmt.Errorf("%w: %s at %d concurrent executions",
			ErrTooManyRequests, fqdn, f.Config.Concurrency)
	}
	p.mInvocations.Inc()
	if cold {
		p.mCold.Inc()
		p.mStarts.With(f.Provider.String(), "cold").Inc()
	} else {
		p.mWarm.Inc()
		p.mStarts.With(f.Provider.String(), "warm").Inc()
	}
	startLatency := WarmStartLatency
	if cold {
		startLatency = ColdStartLatency
	}
	info := InvokeInfo{
		Cold:     cold,
		Instance: id,
		EgressIP: EgressIP(f.Provider, f.Region, id),
	}

	resp, dur := p.run(f, req, &info)
	info.Duration = dur
	info.Latency = startLatency + dur
	p.mDuration.Observe(dur.Seconds())

	done := req.Time.Add(info.Latency)
	f.release(id, done)
	f.mu.Lock()
	f.meter.add(f.Config.MemoryMB, dur, cold, resp.Status)
	f.mu.Unlock()
	return resp, info, nil
}

// run executes the handler, converting panics into the 502 Bad Gateway
// responses that unhandled programming exceptions produce in production
// (paper §4.4), and enforcing the configured execution timeout as 504.
func (p *Platform) run(f *Function, req Request, info *InvokeInfo) (resp Response, dur time.Duration) {
	const defaultDuration = 40 * time.Millisecond
	dur = defaultDuration
	defer func() {
		if r := recover(); r != nil {
			resp = Response{
				Status:  502,
				Headers: map[string]string{"Content-Type": "text/html"},
				Body:    []byte("<html><body>502 Bad Gateway</body></html>"),
			}
		}
	}()
	ctx := &InvokeContext{
		Request:  req,
		Function: f,
		EgressIP: info.EgressIP,
		Instance: info.Instance,
		Cold:     info.Cold,
		Env:      f.Config.Env,
	}
	resp = f.Handler(ctx)
	if d, ok := responseDuration(resp); ok {
		dur = d
		delete(resp.Headers, DurationHeader)
	}
	if dur > f.Config.Timeout {
		dur = f.Config.Timeout
		resp = Response{
			Status:  504,
			Headers: map[string]string{"Content-Type": "text/plain"},
			Body:    []byte("Endpoint request timed out"),
		}
	}
	return resp, dur
}

// DurationHeader lets a handler declare its simulated execution time; it is
// consumed by the platform and never reaches clients.
const DurationHeader = "X-Sim-Duration"

func responseDuration(r Response) (time.Duration, bool) {
	v, ok := r.Headers[DurationHeader]
	if !ok {
		return 0, false
	}
	d, err := time.ParseDuration(v)
	if err != nil || d < 0 {
		return 0, false
	}
	return d, true
}
