package faas

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/providers"
)

var t0 = time.Date(2023, time.June, 1, 12, 0, 0, 0, time.UTC)

func okHandler(body string) Handler {
	return func(ctx *InvokeContext) Response {
		return Response{
			Status:  200,
			Headers: map[string]string{"Content-Type": "text/plain"},
			Body:    []byte(body),
		}
	}
}

func deployOne(p *Platform, cfg Config, h Handler) *Function {
	return p.Deploy("x.lambda-url.us-east-1.on.aws", providers.AWS, "us-east-1", cfg, h, t0)
}

func TestInvokeBasic(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{}, okHandler("hello"))
	resp, info, err := p.Invoke(f.FQDN, Request{Method: "GET", Path: "/", Time: t0})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 200 || string(resp.Body) != "hello" {
		t.Errorf("resp = %d %q", resp.Status, resp.Body)
	}
	if !info.Cold {
		t.Error("first invocation should be a cold start")
	}
	if info.Latency < ColdStartLatency {
		t.Errorf("cold latency = %v", info.Latency)
	}
	if info.EgressIP == "" {
		t.Error("no egress IP allocated")
	}
}

func TestColdWarmLifecycle(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{}, okHandler("ok"))

	_, i1, _ := p.Invoke(f.FQDN, Request{Time: t0})
	// Second call shortly after reuses the warm environment.
	_, i2, _ := p.Invoke(f.FQDN, Request{Time: t0.Add(time.Second)})
	if i2.Cold {
		t.Error("second invocation should be warm")
	}
	if i1.Instance != i2.Instance {
		t.Errorf("warm start switched instances: %d -> %d", i1.Instance, i2.Instance)
	}
	if i2.Latency >= ColdStartLatency {
		t.Errorf("warm latency = %v", i2.Latency)
	}
	// After the idle TTL the environment is reclaimed: cold again.
	_, i3, _ := p.Invoke(f.FQDN, Request{Time: t0.Add(time.Second + InstanceIdleTTL + time.Minute)})
	if !i3.Cold {
		t.Error("invocation after idle TTL should be cold")
	}
	m := f.Meter()
	if m.Invocations != 3 || m.ColdStarts != 2 {
		t.Errorf("meter = %+v", m)
	}
}

func TestWarmPoolCounting(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{}, okHandler("ok"))
	p.Invoke(f.FQDN, Request{Time: t0})
	if n := f.WarmInstances(t0.Add(time.Second)); n != 1 {
		t.Errorf("warm instances = %d, want 1", n)
	}
	if n := f.WarmInstances(t0.Add(time.Hour)); n != 0 {
		t.Errorf("warm instances after TTL = %d, want 0", n)
	}
}

func TestIAMAuth(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{Access: IAMAuth}, okHandler("secret"))
	resp, _, err := p.Invoke(f.FQDN, Request{Time: t0})
	if err != nil || resp.Status != 401 {
		t.Errorf("unsigned request: %d, %v", resp.Status, err)
	}
	resp, _, err = p.Invoke(f.FQDN, Request{Time: t0, Headers: map[string]string{"Authorization": "AWS4-HMAC-SHA256 x"}})
	if err != nil || resp.Status != 200 {
		t.Errorf("signed request: %d, %v", resp.Status, err)
	}
}

func TestInternalOnly(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{Access: InternalOnly}, okHandler("vpc"))
	_, _, err := p.Invoke(f.FQDN, Request{Time: t0})
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("internal-only invoke err = %v", err)
	}
}

func TestDeleteSemantics(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{}, okHandler("ok"))
	if err := p.Delete(f.FQDN, t0.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	// Before the deletion instant the function still runs.
	if _, _, err := p.Invoke(f.FQDN, Request{Time: t0}); err != nil {
		t.Errorf("pre-deletion invoke failed: %v", err)
	}
	_, _, err := p.Invoke(f.FQDN, Request{Time: t0.Add(2 * time.Hour)})
	if !errors.Is(err, ErrDeleted) {
		t.Errorf("post-deletion invoke err = %v", err)
	}
	if err := p.Delete("nosuch.example", t0); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete(nosuch) = %v", err)
	}
}

func TestPanicBecomes502(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{}, func(ctx *InvokeContext) Response {
		panic("unhandled exception in user code")
	})
	resp, _, err := p.Invoke(f.FQDN, Request{Time: t0})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 502 {
		t.Errorf("crash status = %d, want 502", resp.Status)
	}
	if f.Meter().Errors != 1 {
		t.Errorf("meter.Errors = %d", f.Meter().Errors)
	}
}

func TestExecutionTimeout(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{Timeout: 100 * time.Millisecond}, func(ctx *InvokeContext) Response {
		return Response{
			Status:  200,
			Headers: map[string]string{DurationHeader: "5s"},
			Body:    []byte("slow"),
		}
	})
	resp, info, err := p.Invoke(f.FQDN, Request{Time: t0})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != 504 {
		t.Errorf("timeout status = %d, want 504", resp.Status)
	}
	if info.Duration != 100*time.Millisecond {
		t.Errorf("billed duration = %v, want capped at timeout", info.Duration)
	}
}

func TestDurationHeaderStripped(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{}, func(ctx *InvokeContext) Response {
		return Response{Status: 200, Headers: map[string]string{DurationHeader: "5ms"}, Body: []byte("x")}
	})
	resp, info, err := p.Invoke(f.FQDN, Request{Time: t0})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.Headers[DurationHeader]; ok {
		t.Error("simulation header leaked to client")
	}
	if info.Duration != 5*time.Millisecond {
		t.Errorf("duration = %v", info.Duration)
	}
}

func TestBilling(t *testing.T) {
	pm := PriceFor(providers.AWS)
	// Inside the free tier: zero cost.
	m := Meter{Invocations: 500_000, GBSeconds: 100_000}
	if c := m.Cost(pm); c != 0 {
		t.Errorf("free-tier cost = %v", c)
	}
	// 2M requests over, 100k GB-s over.
	m = Meter{Invocations: 3_000_000, GBSeconds: 500_000}
	want := 2.0*0.20 + 100_000*0.0000166667
	if c := m.Cost(pm); !almost(c, want) {
		t.Errorf("cost = %v, want %v", c, want)
	}
}

func almost(a, b float64) bool { d := a - b; return d < 1e-6 && d > -1e-6 }

func TestMeterAccumulation(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{MemoryMB: 512}, func(ctx *InvokeContext) Response {
		return Response{Status: 200, Headers: map[string]string{DurationHeader: "2s"}, Body: []byte("x")}
	})
	for i := 0; i < 3; i++ {
		p.Invoke(f.FQDN, Request{Time: t0.Add(time.Duration(i) * time.Minute)})
	}
	m := f.Meter()
	if m.Invocations != 3 {
		t.Errorf("invocations = %d", m.Invocations)
	}
	want := 3 * (512.0 / 1024) * 2 // 3 GB-s
	if !almost(m.GBSeconds, want) {
		t.Errorf("GBSeconds = %v, want %v", m.GBSeconds, want)
	}
}

func TestEgressRotation(t *testing.T) {
	n := EgressRotation(providers.Tencent, "ap-guangzhou", 1000)
	if n != EgressPoolSize {
		t.Errorf("rotation over 1000 instances = %d, want %d", n, EgressPoolSize)
	}
	// Different regions draw from different pools.
	a := EgressIP(providers.Tencent, "ap-guangzhou", 1)
	b := EgressIP(providers.Tencent, "ap-beijing", 1)
	if a == b {
		t.Errorf("egress pools collide across regions: %s", a)
	}
	// Stable mapping.
	if a != EgressIP(providers.Tencent, "ap-guangzhou", 1) {
		t.Error("egress IP not deterministic")
	}
}

func TestConcurrentInvokes(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{}, okHandler("ok"))
	done := make(chan error, 50)
	for i := 0; i < 50; i++ {
		go func(i int) {
			_, _, err := p.Invoke(f.FQDN, Request{Time: t0.Add(time.Duration(i) * time.Millisecond)})
			done <- err
		}(i)
	}
	for i := 0; i < 50; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if got := f.Meter().Invocations; got != 50 {
		t.Errorf("invocations = %d", got)
	}
}

func TestGatewayRouting(t *testing.T) {
	p := NewPlatform()
	aws := deployOne(p, Config{}, okHandler("from-lambda"))
	tfq := "1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com"
	p.Deploy(tfq, providers.Tencent, "ap-guangzhou", Config{}, okHandler("from-scf"), t0)

	g := NewGateway(p)
	g.Clock = func() time.Time { return t0 }
	srv := httptest.NewServer(g)
	defer srv.Close()

	get := func(host string) (int, string) {
		req, _ := http.NewRequest("GET", srv.URL+"/", nil)
		req.Host = host
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	if code, body := get(aws.FQDN); code != 200 || body != "from-lambda" {
		t.Errorf("aws: %d %q", code, body)
	}
	if code, body := get(tfq); code != 200 || body != "from-scf" {
		t.Errorf("tencent: %d %q", code, body)
	}
	// Unknown AWS-shaped host: 403 Forbidden; unknown Tencent host: 404.
	if code, _ := get("zzzz.lambda-url.eu-west-1.on.aws"); code != 403 {
		t.Errorf("unknown aws host status = %d, want 403", code)
	}
	if code, _ := get("9999999999-zzzzzzzzzz-ap-beijing.scf.tencentcs.com"); code != 404 {
		t.Errorf("unknown tencent host status = %d, want 404", code)
	}
}

func TestGatewayDeletedAWSForbidden(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{}, okHandler("x"))
	p.Delete(f.FQDN, t0.Add(-time.Hour))
	g := NewGateway(p)
	g.Clock = func() time.Time { return t0 }
	srv := httptest.NewServer(g)
	defer srv.Close()
	req, _ := http.NewRequest("GET", srv.URL+"/", nil)
	req.Host = f.FQDN
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Errorf("deleted AWS function status = %d, want 403", resp.StatusCode)
	}
}

func TestGatewayInternalOnlyTimesOut(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{Access: InternalOnly}, okHandler("x"))
	g := NewGateway(p)
	g.Clock = func() time.Time { return t0 }
	g.UnreachableDelay = 5 * time.Second
	srv := httptest.NewServer(g)
	defer srv.Close()
	client := &http.Client{Timeout: 150 * time.Millisecond}
	req, _ := http.NewRequest("GET", srv.URL+"/", nil)
	req.Host = f.FQDN
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("internal-only function answered an external probe")
	}
	if !strings.Contains(err.Error(), "Client.Timeout") && !strings.Contains(err.Error(), "deadline") {
		t.Errorf("unexpected error: %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Error("client did not time out promptly")
	}
}

func TestGatewayTLS(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{}, okHandler("secure"))
	g := NewGateway(p)
	g.Clock = func() time.Time { return t0 }
	srv := httptest.NewTLSServer(g)
	defer srv.Close()
	client := srv.Client()
	req, _ := http.NewRequest("GET", srv.URL+"/", nil)
	req.Host = f.FQDN
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("TLS status = %d", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "secure" {
		t.Errorf("TLS body = %q", b)
	}
}

func TestPlatformRangeAndLen(t *testing.T) {
	p := NewPlatform()
	for i := 0; i < 5; i++ {
		p.Deploy(fmt.Sprintf("f%d.lambda-url.us-east-1.on.aws", i), providers.AWS, "us-east-1", Config{}, okHandler("x"), t0)
	}
	if p.Len() != 5 {
		t.Errorf("Len = %d", p.Len())
	}
	n := 0
	p.Range(func(f *Function) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("Range visited %d, want early stop at 3", n)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := (&Config{}).withDefaults()
	if c.MemoryMB != 128 || c.Timeout != 60*time.Second || c.Concurrency != 1000 {
		t.Errorf("defaults = %+v", c)
	}
	c = (&Config{MemoryMB: 256, Timeout: time.Second, Concurrency: 5}).withDefaults()
	if c.MemoryMB != 256 || c.Timeout != time.Second || c.Concurrency != 5 {
		t.Errorf("explicit config clobbered: %+v", c)
	}
}

func TestConcurrencyLimit(t *testing.T) {
	p := NewPlatform()
	// Capacity 2, each execution takes 1s of simulated time.
	f := deployOne(p, Config{Concurrency: 2}, func(ctx *InvokeContext) Response {
		return Response{Status: 200, Headers: map[string]string{DurationHeader: "1s"}, Body: []byte("ok")}
	})
	// Three invocations at the same instant: the third is throttled.
	var throttled int
	for i := 0; i < 3; i++ {
		_, _, err := p.Invoke(f.FQDN, Request{Time: t0})
		if errors.Is(err, ErrTooManyRequests) {
			throttled++
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if throttled != 1 {
		t.Errorf("throttled %d of 3 at concurrency 2", throttled)
	}
	// Once the in-flight executions complete, capacity frees up.
	if _, _, err := p.Invoke(f.FQDN, Request{Time: t0.Add(3 * time.Second)}); err != nil {
		t.Errorf("invoke after drain failed: %v", err)
	}
	m := f.Meter()
	if m.Invocations != 3 {
		t.Errorf("billed invocations = %d, want 3 (throttled calls are not billed)", m.Invocations)
	}
}

func TestGatewayThrottledIs429(t *testing.T) {
	p := NewPlatform()
	f := deployOne(p, Config{Concurrency: 1}, func(ctx *InvokeContext) Response {
		return Response{Status: 200, Headers: map[string]string{DurationHeader: "10s"}, Body: []byte("slow")}
	})
	g := NewGateway(p)
	g.Clock = func() time.Time { return t0 }
	srv := httptest.NewServer(g)
	defer srv.Close()
	get := func() int {
		req, _ := http.NewRequest("GET", srv.URL+"/", nil)
		req.Host = f.FQDN
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != 200 {
		t.Fatalf("first call = %d", code)
	}
	if code := get(); code != 429 {
		t.Errorf("second concurrent call = %d, want 429", code)
	}
}
