package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/pdns"
	"repro/internal/providers"
)

// Population serialization: one JSON object per function, one per line.
// Exporting the generated fleet gives external tooling the ground truth a
// real measurement never has — which functions are abusive, what their
// temporal plans were — so detector precision/recall can be validated
// outside this module.

// functionSpec is the wire form of a Function.
type functionSpec struct {
	FQDN        string      `json:"fqdn"`
	Provider    string      `json:"provider"`
	Region      string      `json:"region"`
	Profile     string      `json:"profile"`
	ActiveDays  []pdns.Date `json:"active_days"`
	Daily       []int64     `json:"daily_invocations"`
	Total       int64       `json:"total"`
	HTTPOnly    bool        `json:"http_only,omitempty"`
	SecretKind  int         `json:"secret_kind,omitempty"`
	Contact     string      `json:"contact,omitempty"`
	AccountSale bool        `json:"account_sale,omitempty"`
	C2Family    string      `json:"c2_family,omitempty"`
	Campaign    string      `json:"campaign,omitempty"`
	GeoKind     int         `json:"geo_kind,omitempty"`
	BodySeed    int64       `json:"body_seed"`
}

// profileNames maps Profile values to stable wire names and back.
var profileNames = map[Profile]string{}
var profilesByName = map[string]Profile{}

func init() {
	for p := ProfileNotFound; p <= ProfileGeoProxy; p++ {
		profileNames[p] = p.String()
		profilesByName[p.String()] = p
	}
}

// WritePopulation streams the fleet as JSONL.
func WritePopulation(w io.Writer, pop *Population) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	header := struct {
		Seed  int64   `json:"seed"`
		Scale float64 `json:"scale"`
		Count int     `json:"count"`
	}{pop.Config.Seed, pop.Config.Scale, len(pop.Functions)}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, f := range pop.Functions {
		spec := functionSpec{
			FQDN:        f.FQDN,
			Provider:    f.Provider.String(),
			Region:      f.Region,
			Profile:     profileNames[f.Profile],
			ActiveDays:  f.ActiveDays,
			Daily:       f.DailyInvocations,
			Total:       f.Total,
			HTTPOnly:    f.HTTPOnly,
			SecretKind:  int(f.SecretKind),
			Contact:     f.Contact,
			AccountSale: f.AccountSale,
			C2Family:    f.C2Family,
			Campaign:    f.Campaign,
			GeoKind:     f.GeoKind,
			BodySeed:    f.BodySeed,
		}
		if err := enc.Encode(&spec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadPopulation parses a fleet written by WritePopulation.
func ReadPopulation(r io.Reader) (*Population, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("workload: empty population stream")
	}
	var header struct {
		Seed  int64   `json:"seed"`
		Scale float64 `json:"scale"`
		Count int     `json:"count"`
	}
	if err := json.Unmarshal(sc.Bytes(), &header); err != nil {
		return nil, fmt.Errorf("workload: bad header: %w", err)
	}
	pop := &Population{
		Config: Config{Seed: header.Seed, Scale: header.Scale},
		Window: Window(),
	}
	line := 1
	for sc.Scan() {
		line++
		var spec functionSpec
		if err := json.Unmarshal(sc.Bytes(), &spec); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		in, ok := providers.ByName(spec.Provider)
		if !ok {
			return nil, fmt.Errorf("workload: line %d: unknown provider %q", line, spec.Provider)
		}
		profile, ok := profilesByName[spec.Profile]
		if !ok {
			return nil, fmt.Errorf("workload: line %d: unknown profile %q", line, spec.Profile)
		}
		if len(spec.ActiveDays) == 0 || len(spec.ActiveDays) != len(spec.Daily) {
			return nil, fmt.Errorf("workload: line %d: inconsistent temporal plan", line)
		}
		pop.Functions = append(pop.Functions, &Function{
			FQDN:             spec.FQDN,
			Provider:         in.ID,
			Region:           spec.Region,
			Profile:          profile,
			ActiveDays:       spec.ActiveDays,
			DailyInvocations: spec.Daily,
			Total:            spec.Total,
			HTTPOnly:         spec.HTTPOnly,
			SecretKind:       SecretKind(spec.SecretKind),
			Contact:          spec.Contact,
			AccountSale:      spec.AccountSale,
			C2Family:         spec.C2Family,
			Campaign:         spec.Campaign,
			GeoKind:          spec.GeoKind,
			BodySeed:         spec.BodySeed,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if header.Count != len(pop.Functions) {
		return nil, fmt.Errorf("workload: header declares %d functions, stream has %d", header.Count, len(pop.Functions))
	}
	return pop, nil
}
