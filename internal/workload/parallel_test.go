package workload

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/dnssim"
	"repro/internal/fault"
	"repro/internal/pdns"
)

// serialAggregate is the reference path: the sequential EmitPDNS feeding one
// Aggregator, exactly as the pipeline ran before parallelisation.
func serialAggregate(t *testing.T, pop *Population) *pdns.Aggregate {
	t.Helper()
	w := Window()
	agg := pdns.NewAggregator(nil, w.Start, w.End)
	if err := EmitPDNS(pop, dnssim.NewResolver(), func(r *pdns.Record) error {
		agg.Add(r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return agg.Finish()
}

// TestAggregateParallelMatchesSerial is the determinism regression for the
// parallel hot path: for every worker count the parallel aggregate must be
// identical to the serial one — same per-function stats, same Table 2 rows,
// same Figure 3–5 series — not merely statistically close.
func TestAggregateParallelMatchesSerial(t *testing.T) {
	pop := testPop(t, 0.004)
	want := serialAggregate(t, pop)
	wantTable2 := analysis.Table2(want)
	wantNew := analysis.NewFQDNsByMonth(want)
	wantTrend := analysis.InvocationTrend(want)
	wantFreq := analysis.Frequency(want.PerFunctionStats())

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, err := AggregateParallel(context.Background(), pop, dnssim.NewResolver(), nil, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Scanned != want.Scanned || got.Matched != want.Matched {
				t.Fatalf("scanned/matched = %d/%d, want %d/%d",
					got.Scanned, got.Matched, want.Scanned, want.Matched)
			}
			if !reflect.DeepEqual(got.PerFunctionStats(), want.PerFunctionStats()) {
				t.Error("PerFunctionStats differs from serial pass")
			}
			if !reflect.DeepEqual(analysis.Table2(got), wantTable2) {
				t.Error("Table 2 rows differ from serial pass")
			}
			if !reflect.DeepEqual(analysis.NewFQDNsByMonth(got), wantNew) {
				t.Error("Figure 3 series differs from serial pass")
			}
			if !reflect.DeepEqual(analysis.InvocationTrend(got), wantTrend) {
				t.Error("Figure 4 series differs from serial pass")
			}
			if !reflect.DeepEqual(analysis.Frequency(got.PerFunctionStats()), wantFreq) {
				t.Error("Figure 5 frequency stats differ from serial pass")
			}
		})
	}
}

// TestEmitPDNSOrderedMatchesSerial checks the stronger guarantee of the
// ordered variant: the record sequence — values and order — equals the
// sequential emission exactly, so dataset files are byte-identical.
func TestEmitPDNSOrderedMatchesSerial(t *testing.T) {
	pop := testPop(t, 0.002)
	var want []pdns.Record
	if err := EmitPDNS(pop, dnssim.NewResolver(), func(r *pdns.Record) error {
		want = append(want, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var got []pdns.Record
			if err := EmitPDNSOrdered(pop, dnssim.NewResolver(), workers, func(r *pdns.Record) error {
				got = append(got, *r)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("emitted %d records, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestGenerateWorkerInvariance: the fleet must not depend on the generation
// worker count — every provider draws from its own seed-derived stream.
func TestGenerateWorkerInvariance(t *testing.T) {
	base := Generate(Config{Seed: 11, Scale: 0.003})
	for _, workers := range []int{1, 2, 8} {
		pop := Generate(Config{Seed: 11, Scale: 0.003, Workers: workers})
		if len(pop.Functions) != len(base.Functions) {
			t.Fatalf("workers=%d: %d functions, want %d", workers, len(pop.Functions), len(base.Functions))
		}
		for i := range pop.Functions {
			if !reflect.DeepEqual(pop.Functions[i], base.Functions[i]) {
				t.Fatalf("workers=%d: function %d differs:\n got %+v\nwant %+v",
					workers, i, pop.Functions[i], base.Functions[i])
			}
		}
	}
}

func TestEmitPDNSParallelSinkContract(t *testing.T) {
	pop := testPop(t, 0.001)
	res := dnssim.NewResolver()
	if err := EmitPDNSParallel(pop, res, 2); err == nil {
		t.Error("no sinks: want error, got nil")
	}
	sink := func(*pdns.Record) error { return nil }
	if err := EmitPDNSParallel(pop, res, 4, sink, sink, sink); err == nil {
		t.Error("3 sinks for 4 workers: want error, got nil")
	}
	// One sink for many workers is the documented funnel mode.
	var n atomic.Int64
	if err := EmitPDNSParallel(pop, res, 4, func(*pdns.Record) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() == 0 {
		t.Error("funnel sink saw no records")
	}
	// Sink errors propagate.
	boom := errors.New("boom")
	if err := EmitPDNSParallel(pop, res, 2, func(*pdns.Record) error { return boom },
		func(*pdns.Record) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("sink error: got %v, want %v", err, boom)
	}
	if err := EmitPDNSOrdered(pop, res, 2, func(*pdns.Record) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("ordered sink error: got %v, want %v", err, boom)
	}
}

// TestAggregateParallelMutateHook checks the fault-injection seam: a mutate
// hook corrupting a deterministic fraction of records yields identical
// dropped/matched counts and identical surviving aggregates for every worker
// count — corruption is part of the schedule, not of the interleaving.
func TestAggregateParallelMutateHook(t *testing.T) {
	pop := testPop(t, 0.004)
	in := fault.New(fault.Profile{Name: "t", Seed: 7, FeedCorrupt: 0.05})
	mutate := func(r *pdns.Record) { in.CorruptRecord(r) }

	type outcome struct {
		scanned, matched, dropped int64
		domains                   int
	}
	var want outcome
	for i, workers := range []int{1, 2, 8} {
		got, err := AggregateParallel(context.Background(), pop, dnssim.NewResolver(), nil, workers, nil, mutate)
		if err != nil {
			t.Fatal(err)
		}
		o := outcome{got.Scanned, got.Matched, got.Dropped, got.TotalDomains()}
		if i == 0 {
			want = o
			if o.dropped == 0 {
				t.Fatal("corrupting mutate hook dropped no records")
			}
			continue
		}
		if o != want {
			t.Errorf("workers=%d outcome %+v, want %+v", workers, o, want)
		}
	}

	// The clean aggregate must not see any of this: the hook is opt-in.
	clean, err := AggregateParallel(context.Background(), pop, dnssim.NewResolver(), nil, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Dropped != 0 {
		t.Errorf("clean run dropped %d records", clean.Dropped)
	}
	if clean.TotalDomains() < want.domains {
		t.Errorf("clean domains %d < corrupted domains %d", clean.TotalDomains(), want.domains)
	}
}
