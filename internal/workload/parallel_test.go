package workload

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/analysis"
	"repro/internal/dnssim"
	"repro/internal/fault"
	"repro/internal/pdns"
)

// serialAggregate is the reference path: the sequential EmitPDNS feeding one
// Aggregator, exactly as the pipeline ran before parallelisation.
func serialAggregate(t *testing.T, pop *Population) *pdns.Aggregate {
	t.Helper()
	w := Window()
	agg := pdns.NewAggregator(nil, w.Start, w.End)
	if err := EmitPDNS(pop, dnssim.NewResolver(), func(r *pdns.Record) error {
		agg.Add(r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return agg.Finish()
}

// TestAggregateParallelMatchesSerial is the determinism regression for the
// parallel hot path: for every worker count the parallel aggregate must be
// identical to the serial one — same per-function stats, same Table 2 rows,
// same Figure 3–5 series — not merely statistically close.
func TestAggregateParallelMatchesSerial(t *testing.T) {
	pop := testPop(t, 0.004)
	want := serialAggregate(t, pop)
	wantTable2 := analysis.Table2(want)
	wantNew := analysis.NewFQDNsByMonth(want)
	wantTrend := analysis.InvocationTrend(want)
	wantFreq := analysis.Frequency(want.PerFunctionStats())

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, err := AggregateParallel(context.Background(), pop, dnssim.NewResolver(), nil, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			if got.Scanned != want.Scanned || got.Matched != want.Matched {
				t.Fatalf("scanned/matched = %d/%d, want %d/%d",
					got.Scanned, got.Matched, want.Scanned, want.Matched)
			}
			if !reflect.DeepEqual(got.PerFunctionStats(), want.PerFunctionStats()) {
				t.Error("PerFunctionStats differs from serial pass")
			}
			if !reflect.DeepEqual(analysis.Table2(got), wantTable2) {
				t.Error("Table 2 rows differ from serial pass")
			}
			if !reflect.DeepEqual(analysis.NewFQDNsByMonth(got), wantNew) {
				t.Error("Figure 3 series differs from serial pass")
			}
			if !reflect.DeepEqual(analysis.InvocationTrend(got), wantTrend) {
				t.Error("Figure 4 series differs from serial pass")
			}
			if !reflect.DeepEqual(analysis.Frequency(got.PerFunctionStats()), wantFreq) {
				t.Error("Figure 5 frequency stats differ from serial pass")
			}
		})
	}
}

// TestEmitPDNSOrderedMatchesSerial checks the stronger guarantee of the
// ordered variant: the record sequence — values and order — equals the
// sequential emission exactly, so dataset files are byte-identical.
func TestEmitPDNSOrderedMatchesSerial(t *testing.T) {
	pop := testPop(t, 0.002)
	var want []pdns.Record
	if err := EmitPDNS(pop, dnssim.NewResolver(), func(r *pdns.Record) error {
		want = append(want, *r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			var got []pdns.Record
			if err := EmitPDNSOrdered(pop, dnssim.NewResolver(), workers, func(r *pdns.Record) error {
				got = append(got, *r)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("emitted %d records, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestGenerateWorkerInvariance: the fleet must not depend on the generation
// worker count — every provider draws from its own seed-derived stream.
func TestGenerateWorkerInvariance(t *testing.T) {
	base := Generate(Config{Seed: 11, Scale: 0.003})
	for _, workers := range []int{1, 2, 8} {
		pop := Generate(Config{Seed: 11, Scale: 0.003, Workers: workers})
		if len(pop.Functions) != len(base.Functions) {
			t.Fatalf("workers=%d: %d functions, want %d", workers, len(pop.Functions), len(base.Functions))
		}
		for i := range pop.Functions {
			if !reflect.DeepEqual(pop.Functions[i], base.Functions[i]) {
				t.Fatalf("workers=%d: function %d differs:\n got %+v\nwant %+v",
					workers, i, pop.Functions[i], base.Functions[i])
			}
		}
	}
}

func TestEmitPDNSParallelSinkContract(t *testing.T) {
	pop := testPop(t, 0.001)
	res := dnssim.NewResolver()
	if err := EmitPDNSParallel(pop, res, 2); err == nil {
		t.Error("no sinks: want error, got nil")
	}
	sink := func(*pdns.Record) error { return nil }
	if err := EmitPDNSParallel(pop, res, 4, sink, sink, sink); err == nil {
		t.Error("3 sinks for 4 workers: want error, got nil")
	}
	// One sink for many workers is the documented funnel mode.
	var n atomic.Int64
	if err := EmitPDNSParallel(pop, res, 4, func(*pdns.Record) error {
		n.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n.Load() == 0 {
		t.Error("funnel sink saw no records")
	}
	// Sink errors propagate.
	boom := errors.New("boom")
	if err := EmitPDNSParallel(pop, res, 2, func(*pdns.Record) error { return boom },
		func(*pdns.Record) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("sink error: got %v, want %v", err, boom)
	}
	if err := EmitPDNSOrdered(pop, res, 2, func(*pdns.Record) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("ordered sink error: got %v, want %v", err, boom)
	}
}

// TestEmitPDNSParallelBatchMatchesScalar: for every worker count, each
// shard's batch stream must materialise to exactly the records the scalar
// sharded emission delivers to the same worker — same values, same order.
func TestEmitPDNSParallelBatchMatchesScalar(t *testing.T) {
	pop := testPop(t, 0.002)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			want := make([][]pdns.Record, workers)
			scalarSinks := make([]func(*pdns.Record) error, workers)
			for i := range scalarSinks {
				i := i
				scalarSinks[i] = func(r *pdns.Record) error {
					want[i] = append(want[i], *r)
					return nil
				}
			}
			if err := EmitPDNSParallel(pop, dnssim.NewResolver(), workers, scalarSinks...); err != nil {
				t.Fatal(err)
			}

			got := make([][]pdns.Record, workers)
			batchSinks := make([]func(*pdns.RecordBatch) error, workers)
			for i := range batchSinks {
				i := i
				batchSinks[i] = func(b *pdns.RecordBatch) error {
					var rec pdns.Record
					for j := 0; j < b.Len(); j++ {
						b.At(j, &rec)
						got[i] = append(got[i], rec)
					}
					return nil
				}
			}
			// A small batch size forces many flush/Reset cycles per shard.
			if err := EmitPDNSParallelBatch(pop, dnssim.NewResolver(), workers, 64, batchSinks...); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if len(got[i]) != len(want[i]) {
					t.Fatalf("shard %d: %d batch records, want %d", i, len(got[i]), len(want[i]))
				}
				for j := range want[i] {
					if got[i][j] != want[i][j] {
						t.Fatalf("shard %d record %d = %+v, want %+v", i, j, got[i][j], want[i][j])
					}
				}
			}
		})
	}
}

// TestEmitPDNSParallelBatchSymbolStability pins the DESIGN #26 determinism
// rule at the seam that depends on it: for a fixed worker count, each
// shard's intern table assigns the same symbol to the same string run after
// run, and the raw symbol columns themselves are identical.
func TestEmitPDNSParallelBatchSymbolStability(t *testing.T) {
	pop := testPop(t, 0.002)
	type shardDump struct {
		symbols []pdns.Sym
		strings []string
	}
	run := func(workers int) []shardDump {
		dumps := make([]shardDump, workers)
		tabs := make([]*pdns.Symtab, workers)
		sinks := make([]func(*pdns.RecordBatch) error, workers)
		for i := range sinks {
			i := i
			sinks[i] = func(b *pdns.RecordBatch) error {
				tabs[i] = b.Syms
				dumps[i].symbols = append(dumps[i].symbols, b.FQDN...)
				dumps[i].symbols = append(dumps[i].symbols, b.RData...)
				return nil
			}
		}
		if err := EmitPDNSParallelBatch(pop, dnssim.NewResolver(), workers, 64, sinks...); err != nil {
			t.Fatal(err)
		}
		for i, tab := range tabs {
			for s := 0; s < tab.Len(); s++ {
				dumps[i].strings = append(dumps[i].strings, tab.Lookup(pdns.Sym(s)))
			}
		}
		return dumps
	}
	for _, workers := range []int{1, 2, 8} {
		a, b := run(workers), run(workers)
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("workers=%d shard %d: symbol assignment differs between runs", workers, i)
			}
		}
	}
}

func TestEmitPDNSParallelBatchSinkContract(t *testing.T) {
	pop := testPop(t, 0.001)
	res := dnssim.NewResolver()
	sink := func(*pdns.RecordBatch) error { return nil }
	if err := EmitPDNSParallelBatch(pop, res, 2, 0, sink); err == nil {
		t.Error("1 sink for 2 workers: want error, got nil")
	}
	boom := errors.New("boom")
	bad := func(*pdns.RecordBatch) error { return boom }
	if err := EmitPDNSParallelBatch(pop, res, 2, 0, bad, bad); !errors.Is(err, boom) {
		t.Errorf("sink error: got %v, want %v", err, boom)
	}
}

// TestAggregateParallelMutateHook checks the fault-injection seam: a mutate
// hook corrupting a deterministic fraction of records yields identical
// dropped/matched counts and identical surviving aggregates for every worker
// count — corruption is part of the schedule, not of the interleaving.
func TestAggregateParallelMutateHook(t *testing.T) {
	pop := testPop(t, 0.004)
	in := fault.New(fault.Profile{Name: "t", Seed: 7, FeedCorrupt: 0.05})
	mutate := func(r *pdns.Record) { in.CorruptRecord(r) }

	type outcome struct {
		scanned, matched, dropped int64
		domains                   int
	}
	var want outcome
	for i, workers := range []int{1, 2, 8} {
		got, err := AggregateParallel(context.Background(), pop, dnssim.NewResolver(), nil, workers, nil, mutate)
		if err != nil {
			t.Fatal(err)
		}
		o := outcome{got.Scanned, got.Matched, got.Dropped, got.TotalDomains()}
		if i == 0 {
			want = o
			if o.dropped == 0 {
				t.Fatal("corrupting mutate hook dropped no records")
			}
			continue
		}
		if o != want {
			t.Errorf("workers=%d outcome %+v, want %+v", workers, o, want)
		}
	}

	// The clean aggregate must not see any of this: the hook is opt-in.
	clean, err := AggregateParallel(context.Background(), pop, dnssim.NewResolver(), nil, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Dropped != 0 {
		t.Errorf("clean run dropped %d records", clean.Dropped)
	}
	if clean.TotalDomains() < want.domains {
		t.Errorf("clean domains %d < corrupted domains %d", clean.TotalDomains(), want.domains)
	}
}
