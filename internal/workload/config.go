// Package workload generates the synthetic two-year serverless-function
// population and its PDNS traffic, calibrated to every marginal the paper
// publishes. It stands in for the two gated inputs of the study — the
// 114 DNS passive-DNS feed and the live endpoints of nine commercial
// clouds — so that the identical measurement pipeline can run end to end
// (see DESIGN.md, "Substitutions").
//
// Calibration targets, all from the paper:
//   - per-provider domain and request totals (Table 2);
//   - the long-tail per-function invocation distribution (Fig. 5: 78.14%
//     of functions invoked < 5 times, histogram mode at 3–6, 7.87% > 100);
//   - lifespans (§4.3: 81.30% single-day, mean 21.44 days) and activity
//     density (83.01% at p = 1);
//   - monthly trends with provider events (Figs. 3/4) and the ChatGPT-driven
//     resale burst (Fig. 7);
//   - probe-outcome and content-type mixes (Fig. 6, §4.4, §3.4);
//   - the abuse population of Table 3 (8 cases, 594 functions, 614k
//     requests) and the §5 sensitive-data census.
//
// Everything is derived from one seed; the generator is deterministic.
package workload

import (
	"time"

	"repro/internal/pdns"
	"repro/internal/providers"
)

// Window is the paper's measurement window: April 2022 – March 2024.
func Window() pdns.Window {
	return pdns.Window{
		Start: pdns.NewDate(2022, time.April, 1),
		End:   pdns.NewDate(2024, time.March, 31),
	}
}

// providerCal carries the Table 2 calibration for one provider.
type providerCal struct {
	Domains  int   // distinct function FQDNs over the window
	Requests int64 // cumulative PDNS request count
}

// table2 is the per-provider adoption scale of Table 2.
var table2 = map[providers.ID]providerCal{
	providers.Aliyun:   {Domains: 59_404, Requests: 440_860_944},
	providers.Baidu:    {Domains: 753, Requests: 17_005_075},
	providers.Tencent:  {Domains: 6_154, Requests: 3_024_609},
	providers.Kingsoft: {Domains: 123, Requests: 4_044},
	providers.AWS:      {Domains: 19_683, Requests: 346_651_678},
	providers.Google:   {Domains: 120_603, Requests: 543_330_521},
	providers.Google2:  {Domains: 324_343, Requests: 199_308_250},
	providers.IBM:      {Domains: 6, Requests: 107_421},
	providers.Oracle:   {Domains: 14, Requests: 2_080_577},
}

// PaperDomains returns the Table 2 domain count for a provider.
func PaperDomains(id providers.ID) int { return table2[id].Domains }

// PaperRequests returns the Table 2 request count for a provider.
func PaperRequests(id providers.ID) int64 { return table2[id].Requests }

// Invocation-distribution calibration (Fig. 5 and §4.3).
const (
	fracTiny  = 0.7814 // functions invoked fewer than 5 times
	fracHeavy = 0.0787 // functions invoked more than 100 times
	// fracMid is the remainder, invoked 5–100 times.

	fracSingleDay  = 0.8130 // lifespan of exactly one day
	fracDensityOne = 0.8301 // activity density p = 1 overall
	meanLifespan   = 21.44  // days, for EXPERIMENTS comparison
)

// Probe-outcome calibration (§4.4, Fig. 6). 2.03% of probed functions were
// unreachable (8,351 of 410,460); 19.12% of those (1,597) were DNS
// resolution failures, all deleted Tencent functions — 25.95% of Tencent's
// 6,154 domains. The remaining unreachable mass (6,754 of 410,460) spreads
// across all providers as internal-only functions and timeouts.
const (
	fracUnreachable    = 0.0203  // overall, for reporting comparisons
	fracTencentDeleted = 0.2595  // Tencent domains that are deleted (DNS failure)
	fracUnreachOther   = 0.01645 // non-DNS unreachable share, any provider
	fracHTTPSSupport   = 0.9982  // reachable functions answering HTTPS
)

// Reachable-function status-code mix (Fig. 6). The residual mass goes to
// assorted low-frequency codes.
var statusMix = []struct {
	Status int
	Frac   float64
}{
	// Non-AWS mix; AWS trades 404 mass for server errors so it ends up
	// holding ~half of all 502s while the global 5xx share stays at the
	// paper's 2.82%.
	{404, 0.9210},
	{200, 0.0314},
	{502, 0.0119},
	{403, 0.0250},
	{500, 0.0040},
	{503, 0.0020},
	{405, 0.0030},
	{429, 0.0020},
	{401, 0.0013},
}

// Of the 200 responses, 3.99% are empty (96.01% non-empty, §4.4); the
// non-empty split by content type is §5's JSON 36.98% / HTML 31.54% /
// Plaintext 30.34% / Others 1.15%.
const frac200Empty = 0.0399

var contentTypeMix = []struct {
	Kind Profile
	Frac float64
}{
	{ProfileJSON, 0.3698},
	{ProfileHTML, 0.3154},
	{ProfileText, 0.3034},
	{ProfileOther, 0.0115},
}

// Sensitive-data census (§5): 394 findings over 12,138 content-rich
// responses, by category. Scaled with the population.
var secretsCensus = []struct {
	Kind  SecretKind
	Count int
}{
	{SecretAPIKey, 156},
	{SecretNetworkID, 127},
	{SecretAccessToken, 82},
	{SecretPassword, 16},
	{SecretPhone, 8},
	{SecretNationalID, 5},
}

const paperContentRich = 12_138

// abuseCal carries the Table 3 calibration for one abuse case.
type abuseCal struct {
	Functions int
	Requests  int64
	// Providers weights the deployment platform of the cohort, matching
	// the per-case provider skews reported in §5.
	Providers []providers.ID
}

var table3 = map[string]abuseCal{
	"c2": {Functions: 16, Requests: 273_291,
		Providers: []providers.ID{providers.Tencent, providers.Tencent, providers.Tencent, providers.Google2}},
	"gambling": {Functions: 194, Requests: 24_979,
		Providers: []providers.ID{providers.Google2}},
	"porn": {Functions: 8, Requests: 854,
		Providers: []providers.ID{providers.Google2, providers.Aliyun}},
	"cheat": {Functions: 4, Requests: 11_941,
		Providers: []providers.ID{providers.Google2, providers.AWS}},
	"redirect": {Functions: 23, Requests: 16_771,
		Providers: []providers.ID{providers.Aliyun, providers.Google2, providers.AWS}},
	"resale": {Functions: 243, Requests: 106_315,
		Providers: []providers.ID{providers.Aliyun}},
	"illegalproxy": {Functions: 20, Requests: 170_195,
		Providers: []providers.ID{providers.Tencent, providers.Aliyun, providers.AWS}},
	"geoproxy": {Functions: 86, Requests: 10_873,
		Providers: []providers.ID{providers.Google2, providers.AWS, providers.Aliyun}},
}

// Resale group structure (§5.3): the largest group ran one WeChat handle
// across 157 functions; a 14-function group sold whole OpenAI accounts; the
// remaining functions spread across smaller groups (28 distinct contacts in
// total).
const (
	resaleBiggestGroup = 157
	resaleAccountGroup = 14
	resaleContacts     = 28
)

// Config parameterises the generator.
type Config struct {
	// Seed drives every random choice; equal seeds give identical output.
	Seed int64
	// Scale multiplies the paper's population (1.0 = full 531k domains).
	// Tests run at small scales; proportions are scale-invariant.
	Scale float64
	// CacheModel, when true, passes invocation counts through the
	// recursive-resolver cache model before recording them as request_cnt
	// (ablation; default off so totals match Table 2 directly).
	CacheModel bool
	// Workers bounds the generator's per-provider fan-out (<= 0 selects
	// GOMAXPROCS). It only changes wall-clock time: every provider draws
	// from its own (Seed, suffix)-derived RNG stream, so the generated
	// fleet is identical for every Workers value.
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.01
	}
	return c
}

// scaleCount scales a paper count, keeping at least one whenever the paper
// count is non-zero.
func scaleCount(n int, scale float64) int {
	if n == 0 {
		return 0
	}
	s := int(float64(n)*scale + 0.5)
	if s < 1 {
		s = 1
	}
	return s
}
