package workload

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"

	"repro/internal/dnssim"
	"repro/internal/obs"
	"repro/internal/pdns"
	"repro/internal/providers"
)

// EmitCheckpoint wires mid-emission durability into AggregateParallelCkpt.
// The unit of progress is a whole function: a snapshot is only ever taken
// between functions, when every shard aggregator holds exactly the rows of
// the functions its progress counter covers. Because each function draws
// from its own (seed, FQDN)-keyed RNG stream, a resumed run can skip the
// covered prefix outright — no replay, no RNG cursor bookkeeping — and the
// remaining functions emit byte-identical rows.
type EmitCheckpoint struct {
	// Interval is the row period between snapshots; <= 0 disables periodic
	// snapshots. A cancellation-time snapshot still fires whenever Snapshot
	// is set, so an interrupted run is resumable even at interval 0.
	Interval int64
	// Snapshot persists the emission frontier: functions completed per
	// shard, the shard aggregators (quiescent for the duration of the
	// call), and the global emitted-row count. Errors are the callee's to
	// absorb — emission never aborts on a failed snapshot.
	Snapshot func(progress []int64, shards []*pdns.Aggregator, rows int64) error
	// OnRow observes the global emitted-row count after each append; the
	// crash injector's row-targeted kill point hangs off it.
	OnRow func(n int64)
}

// EmitResume restarts emission from a checkpointed frontier. Progress and
// Shards are indexed by shard and must match the worker count — the run ID
// hashes the worker count, so a mismatch means the caller resumed the wrong
// checkpoint.
type EmitResume struct {
	Rows     int64
	Progress []int64
	Shards   []*pdns.Aggregator
}

// emitShardState is one shard's slot in the coordinator. Its mutex is held
// by the owning worker across each function's emission and by the
// snapshotter while flushing, which is what makes "between functions" a
// real quiescent point rather than a hope.
type emitShardState struct {
	mu       sync.Mutex
	progress int64        // functions fully emitted, guarded by mu
	flush    func() error // drains the pending batch; nil until registered
}

// emitCoord coordinates checkpoint-aware parallel emission: per-shard
// function-granularity locking, a global row counter, and the snapshot
// rendezvous. Lock order is snapMu, then shard locks ascending; workers
// only ever take their own shard lock, so the rendezvous cannot deadlock.
type emitCoord struct {
	ck      *EmitCheckpoint
	aggs    []*pdns.Aggregator
	shards  []emitShardState
	rows    atomic.Int64
	nextDue atomic.Int64
	snapMu  sync.Mutex
}

// maybeSnapshot takes a periodic snapshot when the row counter has crossed
// the next due mark. Called between functions with no locks held.
func (c *emitCoord) maybeSnapshot() {
	if c.ck == nil || c.ck.Snapshot == nil || c.ck.Interval <= 0 {
		return
	}
	if c.rows.Load() < c.nextDue.Load() {
		return
	}
	c.snapMu.Lock()
	defer c.snapMu.Unlock()
	if c.rows.Load() < c.nextDue.Load() {
		return // another worker snapshotted while we waited
	}
	c.snapshotLocked()
	c.nextDue.Store(c.rows.Load() + c.ck.Interval)
}

// snapshotLocked quiesces every shard — acquiring all shard locks, so no
// function is mid-emission anywhere — flushes pending batch rows into the
// aggregators, and hands the frontier to the Snapshot hook. Caller holds
// snapMu.
func (c *emitCoord) snapshotLocked() {
	progress := make([]int64, len(c.shards))
	for i := range c.shards {
		c.shards[i].mu.Lock()
	}
	for i := range c.shards {
		if fl := c.shards[i].flush; fl != nil {
			fl()
		}
		progress[i] = c.shards[i].progress
	}
	rows := c.rows.Load()
	for i := range c.shards {
		c.shards[i].mu.Unlock()
	}
	c.ck.Snapshot(progress, c.aggs, rows)
}

// countRow bumps the global row counter and feeds the crash injector.
func (c *emitCoord) countRow() {
	n := c.rows.Add(1)
	if c.ck.OnRow != nil {
		c.ck.OnRow(n)
	}
}

// emitShardBatchCkpt is the coordinator's columnar shard loop: the same
// batch reuse and flush cadence as emitShardBatch, plus function-granular
// locking, resume skip, cancellation checks, and row accounting.
func (c *emitCoord) emitShardBatchCkpt(ctx context.Context, pop *Population, resolver *dnssim.Resolver, i int, funcs []*Function, rowsPerBatch int, sink func(*pdns.RecordBatch) error) error {
	st := &c.shards[i]
	batch := pdns.NewRecordBatch(rowsPerBatch)
	sc := &emitScratch{}
	var fsym pdns.Sym
	counting := c.ck != nil
	row := func(t pdns.RType, rdata string, firstUnix, lastUnix, cnt int64, day pdns.Date) error {
		batch.Append(fsym, t, batch.Syms.Intern(rdata), firstUnix, lastUnix, cnt, day)
		if counting {
			c.countRow()
		}
		if batch.Len() >= rowsPerBatch {
			if err := sink(batch); err != nil {
				return err
			}
			batch.Reset()
		}
		return nil
	}
	st.mu.Lock()
	start := st.progress
	st.flush = func() error {
		if batch.Len() == 0 {
			return nil
		}
		err := sink(batch)
		batch.Reset()
		return err
	}
	st.mu.Unlock()

	for fi := int64(0); fi < int64(len(funcs)); fi++ {
		if fi < start {
			continue // durable in the resumed-from run; RNG streams are per-function, so no replay needed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		f := funcs[fi]
		st.mu.Lock()
		fsym = batch.Syms.Intern(f.FQDN)
		err := emitFunctionInto(pop, f, resolver, functionRNG(pop.Config.Seed, f.FQDN), sc, row)
		if err == nil {
			st.progress = fi + 1
		}
		st.mu.Unlock()
		if err != nil {
			return fmt.Errorf("workload: emit %s: %w", f.FQDN, err)
		}
		c.maybeSnapshot()
	}
	st.mu.Lock()
	err := st.flush()
	st.mu.Unlock()
	return err
}

// emitShardScalarCkpt is the scalar twin, used when mutate hooks force
// per-record sinks. Records fold into the aggregator immediately, so there
// is no pending batch to flush at a snapshot.
func (c *emitCoord) emitShardScalarCkpt(ctx context.Context, pop *Population, resolver *dnssim.Resolver, i int, funcs []*Function, sink func(*pdns.Record) error) error {
	st := &c.shards[i]
	sc := &emitScratch{}
	counting := c.ck != nil
	inner := sink
	if counting {
		inner = func(r *pdns.Record) error {
			if err := sink(r); err != nil {
				return err
			}
			c.countRow()
			return nil
		}
	}
	row := sc.scalarRow(inner)
	st.mu.Lock()
	start := st.progress
	st.mu.Unlock()

	for fi := int64(0); fi < int64(len(funcs)); fi++ {
		if fi < start {
			continue
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		f := funcs[fi]
		st.mu.Lock()
		sc.fqdn = f.FQDN
		err := emitFunctionInto(pop, f, resolver, functionRNG(pop.Config.Seed, f.FQDN), sc, row)
		if err == nil {
			st.progress = fi + 1
		}
		st.mu.Unlock()
		if err != nil {
			return fmt.Errorf("workload: emit %s: %w", f.FQDN, err)
		}
		c.maybeSnapshot()
	}
	return nil
}

// ctxOnlyErrors reports whether every non-nil shard error is a context
// cancellation — the one failure shape worth checkpointing through.
func ctxOnlyErrors(errs []error) bool {
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return false
		}
	}
	return true
}

// AggregateParallelCkpt is AggregateParallel with a durability seam: ck (may
// be nil) snapshots the emission frontier periodically and on cancellation,
// and rs (may be nil) restarts from a snapshotted frontier — restored shard
// aggregators continue accumulating and each shard skips its covered
// function prefix. With both nil the behaviour and output match
// AggregateParallel exactly; with either set, the final Aggregate is still
// byte-identical to an uninterrupted run, because progress is tracked at
// whole-function granularity and per-function RNG streams make emission
// independent of which run emitted the earlier functions.
func AggregateParallelCkpt(ctx context.Context, pop *Population, resolver *dnssim.Resolver, matcher *providers.Matcher, workers int, reg *obs.Registry, ck *EmitCheckpoint, rs *EmitResume, mutate ...func(*pdns.Record)) (*pdns.Aggregate, error) {
	workers = normWorkers(workers)
	if rs != nil && (len(rs.Progress) != workers || len(rs.Shards) != workers) {
		return nil, fmt.Errorf("workload: resume state has %d shards, run has %d workers", len(rs.Progress), workers)
	}
	w := Window()
	aggs := make([]*pdns.Aggregator, workers)
	spans := make([]*obs.Span, workers)
	counts := make([]int64, workers)
	emitVec := reg.CounterVec("workload_emit_records_total", "shard")
	emitted := make([]*obs.Counter, workers)
	// Hash sharding is mildly uneven; a quarter of headroom on the expected
	// per-shard function count avoids both rehashing and gross oversizing.
	expect := len(pop.Functions)/workers + len(pop.Functions)/(4*workers) + 16
	for i := range aggs {
		var agg *pdns.Aggregator
		if rs != nil && rs.Shards[i] != nil {
			agg = rs.Shards[i] // restored state is already sized by its contents
		} else {
			agg = pdns.NewAggregator(matcher, w.Start, w.End)
			agg.Presize(expect)
		}
		shard := fmt.Sprintf("%d", i)
		agg.InstrumentShard(reg, shard)
		aggs[i] = agg
		emitted[i] = emitVec.With(shard)
		_, spans[i] = obs.StartSpan(ctx, fmt.Sprintf("emit-shard-%d", i))
	}
	mWorkers := reg.Gauge("workload_emit_workers")
	mWorkers.Set(int64(workers))

	c := &emitCoord{ck: ck, aggs: aggs, shards: make([]emitShardState, workers)}
	if rs != nil {
		c.rows.Store(rs.Rows)
		for i := range c.shards {
			c.shards[i].progress = rs.Progress[i]
		}
	}
	if ck != nil && ck.Interval > 0 {
		c.nextDue.Store(c.rows.Load() + ck.Interval)
	}

	shards := shardFunctions(pop, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			// Shard attribution for CPU profiles: merge a "shard" pprof
			// label into whatever labels ctx already carries (core's
			// startStage puts the "stage" label there), so profile samples
			// answer "which shard of identify burnt the time".
			pprof.SetGoroutineLabels(pprof.WithLabels(ctx, pprof.Labels("shard", fmt.Sprintf("%d", wkr))))
			if len(mutate) == 0 {
				agg := aggs[wkr]
				sink := func(b *pdns.RecordBatch) error {
					agg.AddBatch(b)
					n := int64(b.Len())
					counts[wkr] += n
					emitted[wkr].Add(n)
					return nil
				}
				errs[wkr] = c.emitShardBatchCkpt(ctx, pop, resolver, wkr, shards[wkr], pdns.DefaultBatchRows, sink)
			} else {
				agg := aggs[wkr]
				sink := func(r *pdns.Record) error {
					for _, m := range mutate {
						m(r)
					}
					agg.Add(r)
					counts[wkr]++
					emitted[wkr].Inc()
					return nil
				}
				errs[wkr] = c.emitShardScalarCkpt(ctx, pop, resolver, wkr, shards[wkr], sink)
			}
		}(wkr)
	}
	wg.Wait()

	var err error
	for _, e := range errs {
		if e != nil {
			err = e
			break
		}
	}
	// A cancelled run gets one final snapshot so -resume can pick up from
	// the exact interruption point; any real emission error skips it.
	if err != nil && ctx.Err() != nil && ck != nil && ck.Snapshot != nil && ctxOnlyErrors(errs) {
		c.snapMu.Lock()
		c.snapshotLocked()
		c.snapMu.Unlock()
	}
	for i, sp := range spans {
		sp.SetAttr("records", counts[i])
		sp.SetError(err)
		sp.End()
	}
	if err != nil {
		return nil, err
	}

	finished := make([]*pdns.Aggregate, workers)
	for i, a := range aggs {
		finished[i] = a.Finish()
	}
	base := 0
	for i, ag := range finished {
		if ag.TotalDomains() > finished[base].TotalDomains() {
			base = i
		}
	}
	out := finished[base]
	for i, ag := range finished {
		if i == base {
			continue
		}
		if merr := out.Merge(ag); merr != nil {
			return nil, merr
		}
	}
	return out, nil
}
