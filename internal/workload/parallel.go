package workload

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dnssim"
	"repro/internal/obs"
	"repro/internal/pdns"
	"repro/internal/providers"
)

// normWorkers clamps a worker count: <= 0 selects GOMAXPROCS.
func normWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// EmitPDNSParallel emits the population's PDNS history across a pool of
// workers. Functions are sharded by pdns.ShardByFQDN, so all records of one
// function stay on one worker and arrive in their serial order; because
// every function draws from its own (seed, FQDN)-seeded RNG stream, each
// record is byte-identical to what EmitPDNS would have produced — only the
// interleaving across functions differs.
//
// Sinks receive the records: pass one sink per worker (sink i sees exactly
// shard i, called from a single goroutine) to aggregate shard-locally
// without any cross-worker synchronisation, or a single sink to funnel all
// shards into one consumer — the single sink is then serialised with a
// mutex, so it stays correct but no longer scales. workers <= 0 selects
// GOMAXPROCS. The first error (by shard index) cancels the remaining work.
func EmitPDNSParallel(pop *Population, resolver *dnssim.Resolver, workers int, sinks ...func(*pdns.Record) error) error {
	workers = normWorkers(workers)
	switch {
	case len(sinks) == 0:
		return fmt.Errorf("workload: EmitPDNSParallel needs at least one sink")
	case len(sinks) == 1 && workers > 1:
		var mu sync.Mutex
		inner := sinks[0]
		guarded := func(r *pdns.Record) error {
			mu.Lock()
			defer mu.Unlock()
			return inner(r)
		}
		sinks = make([]func(*pdns.Record) error, workers)
		for i := range sinks {
			sinks[i] = guarded
		}
	case len(sinks) != workers:
		return fmt.Errorf("workload: EmitPDNSParallel got %d sinks for %d workers (want 1 or exactly %d)", len(sinks), workers, workers)
	}
	if workers == 1 {
		return EmitPDNS(pop, resolver, sinks[0])
	}

	shards := shardFunctions(pop, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			sc := &emitScratch{}
			row := sc.scalarRow(sinks[wkr])
			for _, f := range shards[wkr] {
				sc.fqdn = f.FQDN
				if err := emitFunctionInto(pop, f, resolver, functionRNG(pop.Config.Seed, f.FQDN), sc, row); err != nil {
					errs[wkr] = fmt.Errorf("workload: emit %s: %w", f.FQDN, err)
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// shardFunctions pre-shards the function list by pdns.ShardByFQDN so each
// worker walks only its own functions, in population (FQDN-sorted) order.
func shardFunctions(pop *Population, workers int) [][]*Function {
	shards := make([][]*Function, workers)
	for _, f := range pop.Functions {
		s := pdns.ShardByFQDN(f.FQDN, workers)
		shards[s] = append(shards[s], f)
	}
	return shards
}

// EmitPDNSParallelBatch is the columnar form of EmitPDNSParallel: each
// worker fills a shard-local pdns.RecordBatch — FQDNs and rdata interned
// into the batch's own Symtab, numeric columns appended in place — and
// flushes it to its sink every rowsPerBatch rows plus once at stream end.
// The batch (and its intern table) is reused across flushes, so sinks must
// consume rows before returning; symbol IDs are stable for the lifetime of
// the shard's stream. rowsPerBatch <= 0 selects pdns.DefaultBatchRows.
//
// Exactly one sink per worker is required (sink i sees shard i from a
// single goroutine); the records, grouped per function, are the same
// streams EmitPDNS produces, so shard-local aggregation of the batches is
// bit-identical to the serial scalar pass for any worker count.
func EmitPDNSParallelBatch(pop *Population, resolver *dnssim.Resolver, workers, rowsPerBatch int, sinks ...func(*pdns.RecordBatch) error) error {
	workers = normWorkers(workers)
	if len(sinks) != workers {
		return fmt.Errorf("workload: EmitPDNSParallelBatch got %d sinks for %d workers (want exactly %d)", len(sinks), workers, workers)
	}
	if rowsPerBatch <= 0 {
		rowsPerBatch = pdns.DefaultBatchRows
	}
	if workers == 1 {
		return emitShardBatch(pop, resolver, pop.Functions, rowsPerBatch, sinks[0])
	}
	shards := shardFunctions(pop, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			errs[wkr] = emitShardBatch(pop, resolver, shards[wkr], rowsPerBatch, sinks[wkr])
		}(wkr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// emitShardBatch generates one shard's record stream into a reused batch.
func emitShardBatch(pop *Population, resolver *dnssim.Resolver, funcs []*Function, rowsPerBatch int, sink func(*pdns.RecordBatch) error) error {
	batch := pdns.NewRecordBatch(rowsPerBatch)
	sc := &emitScratch{}
	var fsym pdns.Sym
	row := func(t pdns.RType, rdata string, firstUnix, lastUnix, cnt int64, day pdns.Date) error {
		batch.Append(fsym, t, batch.Syms.Intern(rdata), firstUnix, lastUnix, cnt, day)
		if batch.Len() >= rowsPerBatch {
			if err := sink(batch); err != nil {
				return err
			}
			batch.Reset()
		}
		return nil
	}
	for _, f := range funcs {
		fsym = batch.Syms.Intern(f.FQDN)
		if err := emitFunctionInto(pop, f, resolver, functionRNG(pop.Config.Seed, f.FQDN), sc, row); err != nil {
			return fmt.Errorf("workload: emit %s: %w", f.FQDN, err)
		}
	}
	if batch.Len() > 0 {
		return sink(batch)
	}
	return nil
}

// EmitPDNSOrdered produces the exact record sequence of EmitPDNS — same
// records, same order, byte-identical output — while generating the
// per-function streams on a worker pool. It exists for sinks that care
// about stream order (dataset writers); consumers that aggregate should
// prefer EmitPDNSParallel, which never buffers. The sink is always called
// from the caller's goroutine. workers <= 0 selects GOMAXPROCS.
func EmitPDNSOrdered(pop *Population, resolver *dnssim.Resolver, workers int, sink func(*pdns.Record) error) error {
	workers = normWorkers(workers)
	if workers == 1 {
		return EmitPDNS(pop, resolver, sink)
	}

	// Batched fan-out: fill per-function record buffers in parallel, flush
	// them in population order, repeat. The batch barrier keeps memory
	// bounded to batch-size function histories while the flush of batch k
	// overlaps nothing — in practice generation dominates, so the barrier
	// costs a few percent, not the parallelism.
	const batchPerWorker = 16
	batch := workers * batchPerWorker
	bufs := make([][]pdns.Record, batch)
	errsBuf := make([]error, batch)
	for lo := 0; lo < len(pop.Functions); lo += batch {
		hi := lo + batch
		if hi > len(pop.Functions) {
			hi = len(pop.Functions)
		}
		var wg sync.WaitGroup
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				for i := lo + wkr; i < hi; i += workers {
					f := pop.Functions[i]
					buf := bufs[i-lo][:0]
					err := emitFunction(pop, f, resolver, functionRNG(pop.Config.Seed, f.FQDN), func(r *pdns.Record) error {
						buf = append(buf, *r)
						return nil
					})
					bufs[i-lo] = buf
					if err != nil {
						errsBuf[i-lo] = fmt.Errorf("workload: emit %s: %w", f.FQDN, err)
					}
				}
			}(wkr)
		}
		wg.Wait()
		for i := lo; i < hi; i++ {
			if err := errsBuf[i-lo]; err != nil {
				return err
			}
			for j := range bufs[i-lo] {
				if err := sink(&bufs[i-lo][j]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// AggregateParallel runs the whole substrate→identification hot path —
// synthetic PDNS emission plus §3.2 aggregation — on a worker pool: one
// shard-local pdns.Aggregator per worker fed directly by that worker's
// emission stream (no channel funnel, no record copies), merged at the end.
// Because functions are sharded by FQDN and every per-FQDN stream is
// order-independent, the result is identical to the serial EmitPDNS →
// Aggregator pass for any worker count.
//
// Without mutate hooks the records flow as columnar batches
// (EmitPDNSParallelBatch → Aggregator.AddBatch): interned strings, no
// per-record allocation. Hooks take *pdns.Record, so their presence selects
// the scalar path — fault injection keeps working unchanged at scalar cost.
//
// Each shard aggregator is pre-sized from its expected function count, and
// the merge folds the smaller shards into the largest one instead of
// growing shard 0's maps by the whole fleet — the two fixes for the
// negative scaling the bench history recorded at workers=2.
//
// ctx carries the stage trace: each worker shard records an
// "emit-shard-<i>" span with its function and record counts. reg receives
// the aggregators' shared throughput counters; both may be nil. A nil
// matcher selects all collected providers.
//
// mutate hooks, if given, run on each record before aggregation — the
// fault-injection layer uses one to corrupt a deterministic fraction of the
// feed (mangled records then fail validation inside the aggregator and are
// counted as dropped, exactly as a real feed's garbage rows would be). A
// hook must be safe for concurrent calls; each record it sees is owned by
// the current worker for the duration of the call.
func AggregateParallel(ctx context.Context, pop *Population, resolver *dnssim.Resolver, matcher *providers.Matcher, workers int, reg *obs.Registry, mutate ...func(*pdns.Record)) (*pdns.Aggregate, error) {
	return AggregateParallelCkpt(ctx, pop, resolver, matcher, workers, reg, nil, nil, mutate...)
}
