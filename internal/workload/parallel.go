package workload

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dnssim"
	"repro/internal/obs"
	"repro/internal/pdns"
	"repro/internal/providers"
)

// normWorkers clamps a worker count: <= 0 selects GOMAXPROCS.
func normWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// EmitPDNSParallel emits the population's PDNS history across a pool of
// workers. Functions are sharded by pdns.ShardByFQDN, so all records of one
// function stay on one worker and arrive in their serial order; because
// every function draws from its own (seed, FQDN)-seeded RNG stream, each
// record is byte-identical to what EmitPDNS would have produced — only the
// interleaving across functions differs.
//
// Sinks receive the records: pass one sink per worker (sink i sees exactly
// shard i, called from a single goroutine) to aggregate shard-locally
// without any cross-worker synchronisation, or a single sink to funnel all
// shards into one consumer — the single sink is then serialised with a
// mutex, so it stays correct but no longer scales. workers <= 0 selects
// GOMAXPROCS. The first error (by shard index) cancels the remaining work.
func EmitPDNSParallel(pop *Population, resolver *dnssim.Resolver, workers int, sinks ...func(*pdns.Record) error) error {
	workers = normWorkers(workers)
	switch {
	case len(sinks) == 0:
		return fmt.Errorf("workload: EmitPDNSParallel needs at least one sink")
	case len(sinks) == 1 && workers > 1:
		var mu sync.Mutex
		inner := sinks[0]
		guarded := func(r *pdns.Record) error {
			mu.Lock()
			defer mu.Unlock()
			return inner(r)
		}
		sinks = make([]func(*pdns.Record) error, workers)
		for i := range sinks {
			sinks[i] = guarded
		}
	case len(sinks) != workers:
		return fmt.Errorf("workload: EmitPDNSParallel got %d sinks for %d workers (want 1 or exactly %d)", len(sinks), workers, workers)
	}
	if workers == 1 {
		return EmitPDNS(pop, resolver, sinks[0])
	}

	// Pre-shard the function list once so each worker walks only its own
	// functions, in population (FQDN-sorted) order.
	shards := make([][]*Function, workers)
	for _, f := range pop.Functions {
		s := pdns.ShardByFQDN(f.FQDN, workers)
		shards[s] = append(shards[s], f)
	}

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			sink := sinks[wkr]
			for _, f := range shards[wkr] {
				if err := emitFunction(pop, f, resolver, functionRNG(pop.Config.Seed, f.FQDN), sink); err != nil {
					errs[wkr] = fmt.Errorf("workload: emit %s: %w", f.FQDN, err)
					return
				}
			}
		}(wkr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// EmitPDNSOrdered produces the exact record sequence of EmitPDNS — same
// records, same order, byte-identical output — while generating the
// per-function streams on a worker pool. It exists for sinks that care
// about stream order (dataset writers); consumers that aggregate should
// prefer EmitPDNSParallel, which never buffers. The sink is always called
// from the caller's goroutine. workers <= 0 selects GOMAXPROCS.
func EmitPDNSOrdered(pop *Population, resolver *dnssim.Resolver, workers int, sink func(*pdns.Record) error) error {
	workers = normWorkers(workers)
	if workers == 1 {
		return EmitPDNS(pop, resolver, sink)
	}

	// Batched fan-out: fill per-function record buffers in parallel, flush
	// them in population order, repeat. The batch barrier keeps memory
	// bounded to batch-size function histories while the flush of batch k
	// overlaps nothing — in practice generation dominates, so the barrier
	// costs a few percent, not the parallelism.
	const batchPerWorker = 16
	batch := workers * batchPerWorker
	bufs := make([][]pdns.Record, batch)
	errsBuf := make([]error, batch)
	for lo := 0; lo < len(pop.Functions); lo += batch {
		hi := lo + batch
		if hi > len(pop.Functions) {
			hi = len(pop.Functions)
		}
		var wg sync.WaitGroup
		for wkr := 0; wkr < workers; wkr++ {
			wg.Add(1)
			go func(wkr int) {
				defer wg.Done()
				for i := lo + wkr; i < hi; i += workers {
					f := pop.Functions[i]
					buf := bufs[i-lo][:0]
					err := emitFunction(pop, f, resolver, functionRNG(pop.Config.Seed, f.FQDN), func(r *pdns.Record) error {
						buf = append(buf, *r)
						return nil
					})
					bufs[i-lo] = buf
					if err != nil {
						errsBuf[i-lo] = fmt.Errorf("workload: emit %s: %w", f.FQDN, err)
					}
				}
			}(wkr)
		}
		wg.Wait()
		for i := lo; i < hi; i++ {
			if err := errsBuf[i-lo]; err != nil {
				return err
			}
			for j := range bufs[i-lo] {
				if err := sink(&bufs[i-lo][j]); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// AggregateParallel runs the whole substrate→identification hot path —
// synthetic PDNS emission plus §3.2 aggregation — on a worker pool: one
// shard-local pdns.Aggregator per worker fed directly by that worker's
// emission stream (no channel funnel, no record copies), merged in shard
// order at the end. Because functions are sharded by FQDN and every
// per-FQDN stream is order-independent, the result is identical to the
// serial EmitPDNS → Aggregator pass for any worker count.
//
// ctx carries the stage trace: each worker shard records an
// "emit-shard-<i>" span with its function and record counts. reg receives
// the aggregators' shared throughput counters; both may be nil. A nil
// matcher selects all collected providers.
//
// mutate hooks, if given, run on each record before aggregation — the
// fault-injection layer uses one to corrupt a deterministic fraction of the
// feed (mangled records then fail validation inside the aggregator and are
// counted as dropped, exactly as a real feed's garbage rows would be). A
// hook must be safe for concurrent calls; each record it sees is a fresh
// value owned by the current worker.
func AggregateParallel(ctx context.Context, pop *Population, resolver *dnssim.Resolver, matcher *providers.Matcher, workers int, reg *obs.Registry, mutate ...func(*pdns.Record)) (*pdns.Aggregate, error) {
	workers = normWorkers(workers)
	w := Window()
	aggs := make([]*pdns.Aggregator, workers)
	sinks := make([]func(*pdns.Record) error, workers)
	spans := make([]*obs.Span, workers)
	counts := make([]int64, workers)
	emitVec := reg.CounterVec("workload_emit_records_total", "shard")
	for i := range aggs {
		agg := pdns.NewAggregator(matcher, w.Start, w.End)
		shard := fmt.Sprintf("%d", i)
		agg.InstrumentShard(reg, shard)
		aggs[i] = agg
		i := i
		emitted := emitVec.With(shard)
		sinks[i] = func(r *pdns.Record) error {
			for _, m := range mutate {
				m(r)
			}
			agg.Add(r)
			counts[i]++
			emitted.Inc()
			return nil
		}
		_, spans[i] = obs.StartSpan(ctx, fmt.Sprintf("emit-shard-%d", i))
	}
	mWorkers := reg.Gauge("workload_emit_workers")
	mWorkers.Set(int64(workers))

	err := EmitPDNSParallel(pop, resolver, workers, sinks...)
	for i, sp := range spans {
		sp.SetAttr("records", counts[i])
		sp.SetError(err)
		sp.End()
	}
	if err != nil {
		return nil, err
	}

	out := aggs[0].Finish()
	for _, a := range aggs[1:] {
		if merr := out.Merge(a.Finish()); merr != nil {
			return nil, merr
		}
	}
	return out, nil
}
