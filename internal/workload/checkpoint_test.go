package workload

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/dnssim"
	"repro/internal/pdns"
)

// frontier is one captured emission snapshot, serialised exactly as the
// checkpoint layer would persist it (the shard aggregators are only
// quiescent during the Snapshot call, so they must be encoded then).
type frontier struct {
	rows     int64
	progress []int64
	blobs    [][]byte
}

func (f *frontier) resume(t *testing.T) *EmitResume {
	t.Helper()
	rs := &EmitResume{Rows: f.rows, Progress: append([]int64(nil), f.progress...)}
	for i, blob := range f.blobs {
		agg, err := pdns.DecodeAggregatorState(blob, nil)
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		rs.Shards = append(rs.Shards, agg)
	}
	return rs
}

func captureSnapshots(dst *[]frontier) *EmitCheckpoint {
	return &EmitCheckpoint{
		Interval: 2000,
		Snapshot: func(progress []int64, shards []*pdns.Aggregator, rows int64) error {
			f := frontier{rows: rows, progress: append([]int64(nil), progress...)}
			for _, agg := range shards {
				var buf bytes.Buffer
				if err := agg.EncodeState(&buf); err != nil {
					return err
				}
				f.blobs = append(f.blobs, append([]byte(nil), buf.Bytes()...))
			}
			*dst = append(*dst, f)
			return nil
		},
	}
}

// TestAggregateParallelCkptResume is the determinism core of crash recovery:
// for every worker count, resuming from any mid-emission snapshot must
// produce an Aggregate identical to the uninterrupted run's — same
// per-function stats, same provider tables, same trend series.
func TestAggregateParallelCkptResume(t *testing.T) {
	pop := testPop(t, 0.004)
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			want, err := AggregateParallel(context.Background(), pop, dnssim.NewResolver(), nil, workers, nil)
			if err != nil {
				t.Fatal(err)
			}
			var snaps []frontier
			got, err := AggregateParallelCkpt(context.Background(), pop, dnssim.NewResolver(), nil, workers, nil, captureSnapshots(&snaps), nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatal("checkpointing changed the uninterrupted result")
			}
			if len(snaps) == 0 {
				t.Fatal("no periodic snapshot fired")
			}
			// Resume from the first, a middle, and the last snapshot.
			for _, si := range []int{0, len(snaps) / 2, len(snaps) - 1} {
				resumed, err := AggregateParallelCkpt(context.Background(), pop, dnssim.NewResolver(), nil, workers, nil, nil, snaps[si].resume(t))
				if err != nil {
					t.Fatalf("resume from snapshot %d: %v", si, err)
				}
				if !reflect.DeepEqual(resumed, want) {
					t.Errorf("resume from snapshot %d (rows=%d) diverged from the uninterrupted run", si, snaps[si].rows)
				}
			}
		})
	}
}

// TestAggregateParallelCkptCancelSnapshot: cancelling mid-emission flushes
// one final snapshot, and resuming from it completes to the uninterrupted
// result — the contract scfpipe's SIGINT path depends on.
func TestAggregateParallelCkptCancelSnapshot(t *testing.T) {
	pop := testPop(t, 0.004)
	want, err := AggregateParallel(context.Background(), pop, dnssim.NewResolver(), nil, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var snaps []frontier
	ck := captureSnapshots(&snaps)
	ck.Interval = 0 // only the cancellation snapshot
	var rows atomic.Int64
	ck.OnRow = func(n int64) {
		rows.Store(n)
		if n == 1500 {
			cancel()
		}
	}
	_, err = AggregateParallelCkpt(ctx, pop, dnssim.NewResolver(), nil, 2, nil, ck, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(snaps) != 1 {
		t.Fatalf("%d snapshots captured, want exactly the cancellation one", len(snaps))
	}
	last := snaps[len(snaps)-1]
	if last.rows <= 0 || last.rows >= want.Scanned {
		t.Fatalf("cancellation snapshot at %d rows, want mid-emission (total %d)", last.rows, want.Scanned)
	}
	resumed, err := AggregateParallelCkpt(context.Background(), pop, dnssim.NewResolver(), nil, 2, nil, nil, last.resume(t))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resumed, want) {
		t.Error("resume after cancellation diverged from the uninterrupted run")
	}
}

// TestAggregateParallelCkptShardMismatch: resume state sized for a different
// worker count must be refused, not silently re-sharded.
func TestAggregateParallelCkptShardMismatch(t *testing.T) {
	pop := testPop(t, 0.001)
	rs := &EmitResume{Progress: []int64{0, 0}, Shards: make([]*pdns.Aggregator, 2)}
	if _, err := AggregateParallelCkpt(context.Background(), pop, dnssim.NewResolver(), nil, 4, nil, nil, rs); err == nil {
		t.Fatal("resume with 2 shards accepted by a 4-worker run")
	}
}
