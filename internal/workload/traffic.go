package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dnssim"
	"repro/internal/pdns"
)

// EmitPDNS streams the population's two-year PDNS history to sink in
// deterministic order. Each function's daily invocations are resolved
// through the provider's ingress policy (package dnssim) and folded into
// daily-aggregated records, exactly the tuple shape of paper §3.2.
//
// Every function draws from its own RNG stream seeded from
// (pop.Config.Seed, HashFQDN): a function's records depend only on the seed
// and its name, never on emission order. That is what lets EmitPDNSParallel
// and EmitPDNSOrdered fan the very same streams out across workers and
// still aggregate bit-identically to this serial path.
//
// With cfg.CacheModel set, invocation counts pass through the
// recursive-resolver cache model first, making request_cnt the conservative
// lower bound the paper describes.
func EmitPDNS(pop *Population, resolver *dnssim.Resolver, sink func(*pdns.Record) error) error {
	sc := &emitScratch{}
	row := sc.scalarRow(sink)
	for _, f := range pop.Functions {
		sc.fqdn = f.FQDN
		if err := emitFunctionInto(pop, f, resolver, functionRNG(pop.Config.Seed, f.FQDN), sc, row); err != nil {
			return fmt.Errorf("workload: emit %s: %w", f.FQDN, err)
		}
	}
	return nil
}

// functionRNG builds the deterministic per-function RNG stream. The FQDN
// hash is folded into the seed through a splitmix64 finalizer so that
// adjacent seeds and similar names still yield uncorrelated streams.
func functionRNG(seed int64, fqdn string) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix64(uint64(seed) ^ 0x5eed0d25 ^ pdns.HashFQDN(fqdn)))))
}

// mix64 is the splitmix64 finalizer, a cheap full-avalanche bijection.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rowFunc consumes one emitted record in exploded (column) form; the
// scalar and batch sinks are both built on it. Timestamps are Unix seconds,
// the wire precision of the dataset.
type rowFunc func(t pdns.RType, rdata string, firstUnix, lastUnix, cnt int64, day pdns.Date) error

// emitScratch holds the per-emitter reusable state: the rtype-allocation
// and count-split buffers that used to be allocated per (function, day),
// and the scalar Record the compatibility sinks materialise rows into. One
// scratch serves one goroutine for the whole emission pass.
type emitScratch struct {
	counts [3]int64
	tcs    [3]rtypeCount
	shares [2]int64
	fqdn   string // current function, re-stamped on every scalar row
	rec    pdns.Record
}

// scalarRow adapts a *pdns.Record sink to the row interface. The record is
// reused across calls but every field is rewritten per row (the caller
// maintains sc.fqdn), so sinks may mutate it freely — they just must not
// retain the pointer, the same contract the parallel emitters always had.
func (sc *emitScratch) scalarRow(sink func(*pdns.Record) error) rowFunc {
	return func(t pdns.RType, rdata string, firstUnix, lastUnix, cnt int64, day pdns.Date) error {
		sc.rec.FQDN = sc.fqdn
		sc.rec.RType = t
		sc.rec.RData = rdata
		sc.rec.FirstSeen = time.Unix(firstUnix, 0).UTC()
		sc.rec.LastSeen = time.Unix(lastUnix, 0).UTC()
		sc.rec.RequestCnt = cnt
		sc.rec.PDate = day
		return sink(&sc.rec)
	}
}

// emitFunction emits the records of one function to a scalar sink. It is
// the standalone form used by the ordered writer path; the streaming
// emitters hoist the scratch and row closure out of the function loop.
func emitFunction(pop *Population, f *Function, resolver *dnssim.Resolver, rng *rand.Rand, sink func(*pdns.Record) error) error {
	sc := &emitScratch{fqdn: f.FQDN}
	return emitFunctionInto(pop, f, resolver, rng, sc, sc.scalarRow(sink))
}

// emitFunctionInto emits the records of one function. Each day's invocation
// count is allocated across record types proportionally to the provider's
// policy shares (so the Table 2 type mix holds exactly even though a few
// heavy-tail functions carry most of the volume), and each type's share is
// split over one or more ingress-node draws. RNG consumption is part of
// the determinism contract: the draw sequence per function is fixed, so
// every emission mode yields byte-identical per-function streams.
func emitFunctionInto(pop *Population, f *Function, resolver *dnssim.Resolver, rng *rand.Rand, sc *emitScratch, row rowFunc) error {
	pol, ok := dnssim.PolicyFor(f.Provider)
	if !ok {
		return fmt.Errorf("no DNS policy for provider %v", f.Provider)
	}
	for i, day := range f.ActiveDays {
		count := f.DailyInvocations[i]
		if count <= 0 {
			continue
		}
		for _, tc := range sc.allocateRTypes(pol, count, rng) {
			draws := 1
			if tc.count >= 50 {
				draws = 2
			}
			for _, share := range sc.splitCount(rng, tc.count, draws) {
				ans, err := resolver.ResolveRType(f.FQDN, tc.rtype, rng)
				if err != nil {
					return err
				}
				obs := share
				if pop.Config.CacheModel {
					obs = dnssim.ObservedQueries(share, 86_400, float64(ans.TTL))
				}
				firstUnix := int64(day)*86400 + int64(rng.Intn(6*3600))
				lastUnix := firstUnix + int64(1+rng.Intn(16*3600))
				if err := row(ans.RType, ans.RData, firstUnix, lastUnix, obs, day); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

type rtypeCount struct {
	rtype pdns.RType
	count int64
}

// allocateRTypes splits a day's count across the provider's record types by
// policy share: each type gets its proportional floor, and the remaining
// units are drawn stochastically by share. Heavy days therefore follow the
// exact proportions while single-request days still sample every type with
// the right probability (so even one-function providers like IBM expose
// their AAAA share). The returned slice aliases the scratch and is valid
// until the next call.
func (sc *emitScratch) allocateRTypes(pol *dnssim.Policy, count int64, rng *rand.Rand) []rtypeCount {
	shares := [3]struct {
		t     pdns.RType
		share float64
	}{
		{pdns.TypeCNAME, pol.CNAMEShare},
		{pdns.TypeA, pol.AShare},
		{pdns.TypeAAAA, pol.AAAAShare},
	}
	sc.counts = [3]int64{}
	var assigned int64
	for si, s := range shares {
		c := int64(float64(count) * s.share)
		if c > 0 {
			sc.counts[si] = c
			assigned += c
		}
	}
	for rem := count - assigned; rem > 0; rem-- {
		x := rng.Float64()
		for si, s := range shares {
			x -= s.share
			if x <= 0 || s.t == pdns.TypeAAAA {
				sc.counts[si]++
				break
			}
		}
	}
	out := sc.tcs[:0]
	for si, s := range shares {
		if c := sc.counts[si]; c > 0 {
			out = append(out, rtypeCount{s.t, c})
		}
	}
	return out
}

// splitCount partitions count into n positive shares. The returned slice
// aliases the scratch and is valid until the next call.
func (sc *emitScratch) splitCount(rng *rand.Rand, count int64, n int) []int64 {
	if int64(n) > count {
		n = int(count)
	}
	if n <= 1 {
		sc.shares[0] = count
		return sc.shares[:1]
	}
	out := sc.shares[:n]
	remaining := count
	for i := 0; i < n-1; i++ {
		maxShare := remaining - int64(n-1-i)
		share := 1 + rng.Int63n(maxShare)
		// Bias the first draw large so the primary rtype dominates.
		if i == 0 && maxShare > 4 {
			share = maxShare/2 + rng.Int63n(maxShare/2+1)
		}
		out[i] = share
		remaining -= share
	}
	out[n-1] = remaining
	return out
}

// MarkDeleted registers every deleted function with the resolver so the
// probing phase sees Tencent NXDOMAINs (paper §4.4).
func MarkDeleted(pop *Population, resolver *dnssim.Resolver) int {
	n := 0
	for _, f := range pop.Functions {
		if f.Profile == ProfileDeleted {
			resolver.MarkDeleted(f.FQDN)
			n++
		}
	}
	return n
}

// Records materialises the whole PDNS stream in memory — convenient for
// tests and small scales; large runs should stream via EmitPDNS.
func Records(pop *Population, resolver *dnssim.Resolver) ([]pdns.Record, error) {
	var out []pdns.Record
	err := EmitPDNS(pop, resolver, func(r *pdns.Record) error {
		out = append(out, *r)
		return nil
	})
	return out, err
}
