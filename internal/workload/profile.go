package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/abuse"
)

// Profile is the behavioural class of a generated function: what an
// external parameter-free GET observes.
type Profile int

const (
	// Benign outcome profiles.
	ProfileNotFound  Profile = iota // 404 (missing path / default GET)
	ProfileJSON                     // 200, JSON API response
	ProfileHTML                     // 200, webpage
	ProfileText                     // 200, logs or textual output
	ProfileOther                    // 200, JS/XML/PHP
	ProfileEmpty200                 // 200, empty body
	ProfileServerErr                // 502/500/503 etc.
	ProfileAuth                     // 401, IAM-protected
	ProfileForbidden                // 403
	ProfileOtherCode                // 405/429/...
	ProfileInternal                 // unreachable: internal-only (timeout)
	ProfileDeleted                  // unreachable: deleted (Tencent: DNS failure)

	// Abuse profiles, one per Table 3 case.
	ProfileC2Relay
	ProfileGambling
	ProfilePorn
	ProfileCheat
	ProfileRedirectStatic
	ProfileRedirectDynamic
	ProfileResale
	ProfileIllegalProxy
	ProfileGeoProxy
)

func (p Profile) String() string {
	names := map[Profile]string{
		ProfileNotFound: "not-found", ProfileJSON: "json", ProfileHTML: "html",
		ProfileText: "text", ProfileOther: "other", ProfileEmpty200: "empty-200",
		ProfileServerErr: "server-error", ProfileAuth: "auth", ProfileForbidden: "forbidden",
		ProfileOtherCode: "other-code", ProfileInternal: "internal-only",
		ProfileDeleted: "deleted", ProfileC2Relay: "c2-relay",
		ProfileGambling: "gambling", ProfilePorn: "porn", ProfileCheat: "cheat",
		ProfileRedirectStatic: "redirect-static", ProfileRedirectDynamic: "redirect-dynamic",
		ProfileResale: "resale", ProfileIllegalProxy: "illegal-proxy",
		ProfileGeoProxy: "geo-proxy",
	}
	if n, ok := names[p]; ok {
		return n
	}
	return fmt.Sprintf("Profile(%d)", int(p))
}

// Abusive reports whether the profile is one of the Table 3 cases.
func (p Profile) Abusive() bool { return p >= ProfileC2Relay }

// AbuseCase maps an abusive profile to its Table 3 case.
func (p Profile) AbuseCase() (abuse.Case, bool) {
	switch p {
	case ProfileC2Relay:
		return abuse.CaseC2, true
	case ProfileGambling:
		return abuse.CaseGambling, true
	case ProfilePorn:
		return abuse.CasePorn, true
	case ProfileCheat:
		return abuse.CaseCheating, true
	case ProfileRedirectStatic, ProfileRedirectDynamic:
		return abuse.CaseRedirect, true
	case ProfileResale:
		return abuse.CaseOpenAIResale, true
	case ProfileIllegalProxy:
		return abuse.CaseIllegalProxy, true
	case ProfileGeoProxy:
		return abuse.CaseGeoProxy, true
	default:
		return 0, false
	}
}

// SecretKind enumerates the sensitive-data plant categories.
type SecretKind int

const (
	SecretNone SecretKind = iota
	SecretPhone
	SecretNationalID
	SecretAccessToken
	SecretAPIKey
	SecretPassword
	SecretNetworkID
)

// plantSecret renders one sensitive value of the kind, synthetic but shaped
// so the secrets scanner finds it.
func plantSecret(kind SecretKind, rng *rand.Rand) string {
	switch kind {
	case SecretPhone:
		return fmt.Sprintf("debug contact: 1%d%09d", 3+rng.Intn(6), rng.Intn(1_000_000_000))
	case SecretNationalID:
		return fmt.Sprintf("uid 11010519%02d%02d%02d%03d%d",
			70+rng.Intn(29), 1+rng.Intn(9), 10+rng.Intn(18), rng.Intn(1000), rng.Intn(10))
	case SecretAccessToken:
		return fmt.Sprintf("access_token=%s", randToken(rng, 24))
	case SecretAPIKey:
		return fmt.Sprintf("api_key: %s", randToken(rng, 20))
	case SecretPassword:
		return fmt.Sprintf("password=%s", randToken(rng, 10))
	case SecretNetworkID:
		if rng.Intn(2) == 0 {
			return fmt.Sprintf("upstream 10.%d.%d.%d", rng.Intn(255), rng.Intn(255), 1+rng.Intn(254))
		}
		return fmt.Sprintf("hwaddr %02x:%02x:%02x:%02x:%02x:%02x",
			rng.Intn(256), rng.Intn(256), rng.Intn(256), rng.Intn(256), rng.Intn(256), rng.Intn(256))
	default:
		return ""
	}
}

func randToken(rng *rand.Rand, n int) string {
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
	b := make([]byte, n)
	for i := range b {
		b[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(b)
}

// Body builders. Each returns (contentType, body) for a 200 response of the
// profile, optionally embedding a planted secret.

func jsonBody(rng *rand.Rand, secret string) (string, string) {
	payload := fmt.Sprintf(`{"status":"ok","service":"%s","count":%d,"items":["%s","%s"]`,
		randWord(rng), rng.Intn(500), randWord(rng), randWord(rng))
	if secret != "" {
		payload += fmt.Sprintf(`,"debug":"%s"`, strings.ReplaceAll(secret, `"`, ""))
	}
	payload += "}"
	return "application/json", payload
}

func htmlBody(rng *rand.Rand, secret string) (string, string) {
	extra := ""
	if secret != "" {
		extra = "<!-- " + secret + " -->"
	}
	return "text/html", fmt.Sprintf(
		`<!DOCTYPE html><html><head><title>%s %s</title></head><body><h1>%s</h1><p>Welcome to our %s service page number %d.</p>%s</body></html>`,
		randWord(rng), randWord(rng), randWord(rng), randWord(rng), rng.Intn(100), extra)
}

func textBody(rng *rand.Rand, secret string) (string, string) {
	lines := []string{
		fmt.Sprintf("task %s finished in %dms", randWord(rng), rng.Intn(900)),
		fmt.Sprintf("processed %d records", rng.Intn(10000)),
	}
	if secret != "" {
		lines = append(lines, secret)
	}
	return "text/plain", strings.Join(lines, "\n")
}

func otherBody(rng *rand.Rand, secret string) (string, string) {
	if rng.Intn(2) == 0 {
		body := fmt.Sprintf(`var cfg = {retries: %d}; function(){ return cfg; } %s`, rng.Intn(5), secret)
		return "text/javascript", body
	}
	return "application/xml", fmt.Sprintf(`<?xml version="1.0"?><result code="%d"/><!-- %s -->`, rng.Intn(10), secret)
}

func randWord(rng *rand.Rand) string {
	words := []string{
		"inventory", "billing", "report", "image", "resize", "webhook",
		"notify", "sync", "metrics", "session", "catalog", "export",
	}
	return words[rng.Intn(len(words))]
}

// Abuse bodies. Synthetic but carrying the indicators the paper's analysts
// keyed on, so the classifiers in package abuse recover them.

func gamblingBody(rng *rand.Rand, campaign string) (string, string) {
	token := campaign
	if token == "" {
		token = randToken(rng, 16)
	}
	return "text/html", fmt.Sprintf(
		`<!DOCTYPE html><html><head>
<meta name="google-site-verification" content="gsv-%s-%s"/>
<title>Online Slot Betting Casino — Jackpot %d</title>
<meta name="keywords" content="slot,betting,casino,jackpot,baccarat,slot,betting,casino"/>
</head><body><h1>Big Win Slot &amp; Betting Casino</h1>
<p>Play slot machines, sports betting and live baccarat. Daily jackpot bonus %d%%.</p>
</body></html>`, token, randToken(rng, 6), rng.Intn(99999), 5+rng.Intn(45))
}

func pornBody(rng *rand.Rand) (string, string) {
	return "text/html", fmt.Sprintf(
		`<!DOCTYPE html><html><head><title>Adult Video Directory %d</title></head>
<body><p>adult video collection, sex chat rooms, av online streaming</p></body></html>`,
		rng.Intn(1000))
}

func cheatBody(rng *rand.Rand) (string, string) {
	return "text/html", fmt.Sprintf(
		`<!DOCTYPE html><html><body><h2>Verification generator</h2>
<p>Generate codes to bypass parental controls; supports age modification and
change bound email for game accounts. Build %d.</p>
<form><input name="account"/><button>Generate</button></form></body></html>`,
		rng.Intn(100))
}

func redirectStaticBody(rng *rand.Rand) (string, string) {
	host := fmt.Sprintf("http://%s.%s.top/%sList.html", randToken(rng, 4), randToken(rng, 8), randToken(rng, 5))
	return "text/html", fmt.Sprintf(`<html><head><script>location.href = "%s"</script></head></html>`, host)
}

func redirectDynamicBody(rng *rand.Rand) (string, string) {
	if rng.Intn(2) == 0 {
		return "text/html", fmt.Sprintf(`<html><script>
var Rand = Math.round(Math.random() * 999999)
location.href="https://"+Rand+".%s.xyz"
</script></html>`, randToken(rng, 8))
	}
	return "text/html", fmt.Sprintf(`<html><script>
const urls =[
  'https://%s.example-illicit.net/invite',
  'https://www.bilibili.com/',
]
const url = urls[Math.floor(Math.random() * urls.length)]
location.href = url
</script></html>`, randToken(rng, 6))
}

func resaleBody(rng *rand.Rand, contact string, accountSale bool) (string, string) {
	if accountSale {
		return "text/plain", fmt.Sprintf(
			"OpenAI account with $18 credit for 10 RMB trial. Contact via %s.", contactLine(contact))
	}
	return "text/plain", fmt.Sprintf(
		"To purchase an API key (e.g., sk-%s...), contact via %s. 2 RMB earned per 10 RMB spent.",
		randToken(rng, 8), contactLine(contact))
}

// contactLine renders a contact handle as it appears in promotions.
func contactLine(contact string) string {
	switch {
	case strings.HasPrefix(contact, "wechat:"):
		return "WeChat: " + strings.TrimPrefix(contact, "wechat:")
	case strings.HasPrefix(contact, "qq:"):
		return "QQ: " + strings.TrimPrefix(contact, "qq:")
	case strings.HasPrefix(contact, "email:"):
		return "email: " + strings.TrimPrefix(contact, "email:")
	default:
		return contact
	}
}

func illegalProxyBody(rng *rand.Rand) (string, string) {
	services := [][2]string{
		{"Ticketmaster puppeteer service", "auto purchase tickets the moment sales open"},
		{"TikTok download API", "watermark-free video download at scale"},
		{"Music grabber", "free downloads from kuwo and qq music"},
		{"Scraper API relay", "rotate cloud egress IPs per request"},
	}
	s := services[rng.Intn(len(services))]
	return "text/plain", fmt.Sprintf("%s: %s. Each request exits from a different cloud IP.", s[0], s[1])
}

func geoProxyBody(rng *rand.Rand, kind int) (string, string) {
	switch kind {
	case 0: // OpenAI frontend
		return "text/html", `<!DOCTYPE html><html><body>
<h1>ChatGPT Frontend</h1>
<p>This is a simple web application that interacts with OpenAI's chatbot API.
Enter a message in the input box below.</p>
<input id="msg"/><button>Send</button></body></html>`
	case 1: // simple OpenAI relay
		return "application/json", fmt.Sprintf(
			`{"message":"OpenAI proxy initialized","usage":"POST /v1/chat/completions","forward":"api.openai.com","build":%d}`,
			rng.Intn(100))
	case 2: // GitHub proxy
		return "text/plain", "github proxy: mirror of https://github.com/ releases for faster cloning; forward path verbatim"
	default: // VPN-style relay
		return "text/plain", "vpn relay endpoint (clash/v2ray compatible); proxy subscription served at /sub"
	}
}
