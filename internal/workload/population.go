package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/c2"
	"repro/internal/pdns"
	"repro/internal/providers"
)

// Function is one generated cloud function with its full simulated history.
type Function struct {
	FQDN     string
	Provider providers.ID
	Region   string
	Profile  Profile

	// Temporal plan: ActiveDays (sorted) each carry DailyInvocations.
	ActiveDays       []pdns.Date
	DailyInvocations []int64
	Total            int64

	// HTTPOnly functions do not answer HTTPS (0.18% of reachable fleet).
	HTTPOnly bool
	// SecretKind plants one sensitive value in the response body.
	SecretKind SecretKind
	// Contact is the promotion handle for resale functions.
	Contact string
	// AccountSale marks resale functions selling whole OpenAI accounts.
	AccountSale bool
	// C2Family names the malware family for C2 relays.
	C2Family string
	// Campaign labels gambling-site functions run by one operation; sites
	// of a campaign share page structure and SEO verification tokens.
	Campaign string
	// GeoKind selects the geo-proxy flavour (0 frontend, 1 simple relay,
	// 2 github, 3 vpn).
	GeoKind int
	// BodySeed drives deterministic body generation.
	BodySeed int64
}

// FirstDay returns the function's first active day.
func (f *Function) FirstDay() pdns.Date { return f.ActiveDays[0] }

// LastDay returns the function's last active day.
func (f *Function) LastDay() pdns.Date { return f.ActiveDays[len(f.ActiveDays)-1] }

// Lifespan returns last-first+1 in days.
func (f *Function) Lifespan() int { return f.LastDay().Sub(f.FirstDay()) + 1 }

// Population is the generated fleet.
type Population struct {
	Config    Config
	Window    pdns.Window
	Functions []*Function
}

// fqdnPool guarantees global FQDN uniqueness across the population (project
// and function names are drawn from a small vocabulary, so collisions would
// otherwise occur, especially on Google gen-1 domains).
type fqdnPool map[string]struct{}

func (p fqdnPool) generate(in *providers.Info, rng *rand.Rand, region string) string {
	for tries := 0; ; tries++ {
		// Providers with tiny namespaces (IBM domains are region-only) can
		// exhaust the preferred region; fall back to drawing fresh regions.
		r := region
		if tries > 25 {
			r = ""
		}
		d := in.Generate(rng, r)
		if _, ok := p[d]; !ok {
			p[d] = struct{}{}
			return d
		}
		if tries > 10_000 {
			panic("workload: fqdn namespace exhausted for " + in.Name)
		}
	}
}

// Generate builds the fleet deterministically from cfg. The per-provider
// benign cohorts — the bulk of the population — are generated concurrently,
// each provider on its own RNG stream seeded from (Seed, provider suffix);
// the output is therefore identical for every cfg.Workers value, and equal
// seeds give identical fleets.
func Generate(cfg Config) *Population {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := Window()
	pop := &Population{Config: cfg, Window: w}

	// Abuse cohorts first: their provider placements are deducted from the
	// benign per-provider counts so Table 2 totals stay calibrated.
	pool := make(fqdnPool)
	abuseByProvider := map[providers.ID]int{}
	abusive := generateAbuse(cfg, rng, w, pool)
	for _, f := range abusive {
		abuseByProvider[f.Provider]++
	}

	// Benign cohorts fan out per provider. Provider domain suffixes are
	// disjoint, so cross-provider FQDN collisions are impossible; each
	// goroutine only needs a private pool copy carrying the abuse names to
	// dodge collisions inside its own namespace.
	collected := providers.Collected()
	benign := make([][]*Function, len(collected))
	sem := make(chan struct{}, normWorkers(cfg.Workers))
	var wg sync.WaitGroup
	for i, in := range collected {
		cal := table2[in.ID]
		n := scaleCount(cal.Domains, cfg.Scale) - abuseByProvider[in.ID]
		if n < 0 {
			n = 0
		}
		targetReq := int64(float64(cal.Requests) * cfg.Scale)
		wg.Add(1)
		go func(i int, in *providers.Info, n int, targetReq int64) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			prng := rand.New(rand.NewSource(int64(mix64(uint64(cfg.Seed) ^ pdns.HashFQDN(in.DomainSuffix)))))
			localPool := make(fqdnPool, len(pool)+n)
			for fqdn := range pool {
				localPool[fqdn] = struct{}{}
			}
			benign[i] = generateBenign(in, n, targetReq, prng, w, localPool)
		}(i, in, n, targetReq)
	}
	wg.Wait()
	for _, fns := range benign {
		pop.Functions = append(pop.Functions, fns...)
	}
	pop.Functions = append(pop.Functions, abusive...)

	assignSecrets(cfg, rng, pop.Functions)
	dampTencentQuotaChange(pop.Functions)
	sort.Slice(pop.Functions, func(i, j int) bool { return pop.Functions[i].FQDN < pop.Functions[j].FQDN })
	return pop
}

// dampTencentQuotaChange enforces the sharp invocation decline after
// Tencent's free-trial quota change in January 2024 (Fig. 4): daily volumes
// past the change drop to a quarter, deterministically, so the monthly trend
// shows the cliff regardless of which heavy functions the sampler placed
// where.
func dampTencentQuotaChange(fns []*Function) {
	cut := pdns.NewDate(2024, 1, 15)
	for _, f := range fns {
		if f.Provider != providers.Tencent {
			continue
		}
		var total int64
		for i, d := range f.ActiveDays {
			if d >= cut {
				v := f.DailyInvocations[i] / 4
				if v < 1 {
					v = 1
				}
				f.DailyInvocations[i] = v
			}
			total += f.DailyInvocations[i]
		}
		f.Total = total
	}
}

// generateBenign builds n benign functions for one provider whose request
// totals sum (approximately) to targetReq.
func generateBenign(in *providers.Info, n int, targetReq int64, rng *rand.Rand, w pdns.Window, pool fqdnPool) []*Function {
	if n == 0 {
		return nil
	}
	fns := make([]*Function, 0, n)
	// Regional skew: a provider's home regions carry most deployments,
	// which concentrates requests on a handful of ingress nodes (Finding 2;
	// Table 2 shows the top-10 rdata of concentrated providers answering
	// >90% of requests).
	regionOf := func() string {
		k := len(in.Regions)
		x := rng.Float64()
		switch {
		case k > 2 && x < 0.55:
			return in.Regions[0]
		case k > 2 && x < 0.80:
			return in.Regions[1]
		case k > 3 && x < 0.90:
			return in.Regions[2]
		default:
			return in.Regions[rng.Intn(k)]
		}
	}

	// Draw the invocation mixture (Fig. 5), then rescale the heavy tail so
	// the provider total matches Table 2 without disturbing the <5 mass.
	totals := make([]int64, n)
	var sumLight, sumHeavy int64
	var heavyIdx []int
	for i := range totals {
		x := rng.Float64()
		switch {
		case x < fracTiny:
			totals[i] = tinyTotal(rng)
			sumLight += totals[i]
		case x < fracTiny+fracHeavy:
			totals[i] = logUniform(rng, 100, 100_000)
			heavyIdx = append(heavyIdx, i)
			sumHeavy += totals[i]
		default:
			totals[i] = logUniform(rng, 5, 100)
			sumLight += totals[i]
		}
	}
	if len(heavyIdx) > 0 && sumHeavy > 0 {
		want := targetReq - sumLight
		if want < int64(len(heavyIdx))*101 {
			want = int64(len(heavyIdx)) * 101
		}
		scale := float64(want) / float64(sumHeavy)
		for _, i := range heavyIdx {
			v := int64(float64(totals[i]) * scale)
			if v < 101 {
				v = 101
			}
			totals[i] = v
		}
	} else if targetReq > sumLight && n > 0 {
		// No heavy draw at tiny scales: pour the remainder onto one function.
		totals[rng.Intn(n)] += targetReq - sumLight
	}

	for i := 0; i < n; i++ {
		f := &Function{
			Provider: in.ID,
			Region:   regionOf(),
			Total:    totals[i],
			BodySeed: rng.Int63(),
		}
		f.FQDN = pool.generate(in, rng, f.Region)
		// The pool may have fallen back to another region; the FQDN is the
		// source of truth.
		if parsed, ok := in.Parse(f.FQDN); ok && parsed.Region != "" {
			f.Region = parsed.Region
		}
		first := sampleFirstDay(in.ID, rng, w)
		if i == 0 {
			// Anchor the adoption series: resolutions begin the month a
			// provider's function URLs ship (Fig. 3 events), which a
			// month-weighted draw can miss when the provider has only a
			// handful of functions at small scales.
			first = providerAvailableFrom(in.ID, w)
		}
		planDays(f, first, benignLifespan(rng, w, first, f.Total), rng, w)
		f.Profile = benignProfile(in.ID, rng)
		if f.Profile != ProfileInternal && f.Profile != ProfileDeleted && rng.Float64() < 1-fracHTTPSSupport {
			f.HTTPOnly = true
		}
		bucketBody(f, n, rng)
		fns = append(fns, f)
	}
	return fns
}

// benignLifespan draws a lifespan (days) honouring §4.3 (81.30% single-day
// overall, mean ≈ 21.4 days), with single-day probability conditioned on
// invocation volume: one-off test functions die the same day, heavy
// functions persist. The mixture 0.7814·0.93 + 0.1399·0.45 + 0.0787·0.15
// reproduces the overall 0.81 single-day mass.
func benignLifespan(rng *rand.Rand, w pdns.Window, first pdns.Date, total int64) int {
	maxL := w.End.Sub(first) + 1
	// A function observed on two distinct days necessarily has two or more
	// requests, so single-request functions are single-day by construction.
	if total < 2 || rng.Float64() < singleDayProb(total) || maxL <= 1 {
		return 1
	}
	l := int(logUniform(rng, 3, 1200))
	if l > maxL {
		l = maxL
	}
	return l
}

func singleDayProb(total int64) float64 {
	switch {
	case total < 5:
		return 0.93
	case total <= 100:
		return 0.45
	default:
		return 0.15
	}
}

// fracMultiDayDense is the share of multi-day functions invoked every single
// day of their lifespan, solving 0.809 + 0.191·x = 0.8301 (§4.3: 83.01% of
// functions show steady daily invocation).
const fracMultiDayDense = 0.11

// planDays fixes ActiveDays and DailyInvocations for a function starting at
// first with the given lifespan.
func planDays(f *Function, first pdns.Date, lifespan int, rng *rand.Rand, w pdns.Window) {
	if lifespan < 1 || f.Total < 2 {
		lifespan = 1
	}
	last := first.AddDays(lifespan - 1)
	if last > w.End {
		last = w.End
		lifespan = last.Sub(first) + 1
	}
	var days []pdns.Date
	switch {
	case lifespan == 1:
		days = []pdns.Date{first}
	case rng.Float64() < fracMultiDayDense && int64(lifespan) <= f.Total:
		days = make([]pdns.Date, lifespan)
		for i := range days {
			days[i] = first.AddDays(i)
		}
	default:
		// Intermittent: first and last are always active; sample the rest.
		want := 2
		if f.Total > 2 && lifespan > 2 {
			maxExtra := lifespan - 2
			if int64(maxExtra) > f.Total-2 {
				maxExtra = int(f.Total - 2)
			}
			if maxExtra > 0 {
				want += rng.Intn(maxExtra + 1)
			}
		}
		days = sampleDays(rng, first, last, want)
	}
	f.ActiveDays = days
	f.DailyInvocations = splitTotal(rng, f.Total, len(days), f.Provider, days)
}

// sampleDays picks want distinct days in [first, last] always including the
// endpoints, sorted ascending.
func sampleDays(rng *rand.Rand, first, last pdns.Date, want int) []pdns.Date {
	span := last.Sub(first) + 1
	if want > span {
		want = span
	}
	if want < 1 {
		want = 1
	}
	seen := map[pdns.Date]struct{}{first: {}}
	if want > 1 {
		seen[last] = struct{}{}
	}
	for len(seen) < want {
		seen[first.AddDays(rng.Intn(span))] = struct{}{}
	}
	days := make([]pdns.Date, 0, len(seen))
	for d := range seen {
		days = append(days, d)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	return days
}

// splitTotal distributes total invocations over the active days, applying
// provider intensity modulation (Tencent's free-quota change cuts usage
// sharply from January 2024, Fig. 4).
func splitTotal(rng *rand.Rand, total int64, n int, id providers.ID, days []pdns.Date) []int64 {
	out := make([]int64, n)
	if n == 0 {
		return out
	}
	if total < int64(n) {
		total = int64(n)
	}
	weights := make([]float64, n)
	var sum float64
	for i := range weights {
		weights[i] = (0.2 + rng.Float64()) * intensity(id, days[i])
		sum += weights[i]
	}
	var assigned int64
	for i := range out {
		out[i] = 1 + int64(float64(total-int64(n))*weights[i]/sum)
		assigned += out[i]
	}
	// Fix rounding drift on a random day.
	out[rng.Intn(n)] += total - assigned
	if out[0] < 1 {
		out[0] = 1
	}
	return out
}

// intensity modulates invocation volume per provider over time.
func intensity(id providers.ID, d pdns.Date) float64 {
	if id == providers.Tencent && d >= pdns.NewDate(2024, 1, 15) {
		return 0.25
	}
	return 1
}

// sampleFirstDay draws the first-seen date per provider, encoding the event
// calendar of Figs. 3/4.
func sampleFirstDay(id providers.ID, rng *rand.Rand, w pdns.Window) pdns.Date {
	weights := make([]float64, 24)
	for m := range weights {
		weights[m] = monthWeight(id, m)
	}
	m := weightedIndex(rng, weights)
	monthStart := pdns.NewDate(2022, 4, 1).Time().AddDate(0, m, 0)
	start := pdns.DateOf(monthStart)
	end := pdns.DateOf(monthStart.AddDate(0, 1, -1))
	if end > w.End {
		end = w.End
	}
	span := end.Sub(start) + 1
	return start.AddDays(rng.Intn(span))
}

// providerAvailableFrom returns the first day the provider's function URLs
// existed: Kingsoft shipped August 2022, Tencent August 2023 (§4.1);
// everyone else predates the window.
func providerAvailableFrom(id providers.ID, w pdns.Window) pdns.Date {
	switch id {
	case providers.Kingsoft:
		return pdns.NewDate(2022, 8, 1)
	case providers.Tencent:
		return pdns.NewDate(2023, 8, 1)
	default:
		return w.Start
	}
}

// clampLaunch pushes a first-seen day forward to the provider's launch.
func clampLaunch(id providers.ID, first pdns.Date, w pdns.Window) pdns.Date {
	if from := providerAvailableFrom(id, w); first < from {
		return from
	}
	return first
}

// monthWeight returns the relative first-seen weight of month m (0 = April
// 2022) for the provider.
func monthWeight(id providers.ID, m int) float64 {
	base := 1 + 0.04*float64(m) // gentle market growth
	switch id {
	case providers.AWS:
		if m == 0 { // function URL launch, April 2022
			return base * 6
		}
	case providers.Kingsoft:
		if m < 4 { // function URL shipped August 2022
			return 0
		}
	case providers.Tencent:
		if m < 16 { // function URL shipped August 2023
			return 0
		}
		if m >= 21 { // free-trial quota change, January 2024
			return base * 0.3
		}
	case providers.Google2:
		if m < 2 { // gen-2 release spike tail (February 2022)
			return base * 1.4
		}
		if m >= 16 { // became console default, August 2023
			return base * 1.8
		}
	}
	return base
}

func weightedIndex(rng *rand.Rand, ws []float64) int {
	var sum float64
	for _, w := range ws {
		sum += w
	}
	x := rng.Float64() * sum
	for i, w := range ws {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(ws) - 1
}

// bucketBody makes a share of content-rich responses exact template
// duplicates: frameworks, scaffolds and copy-pasted handlers produce
// near-identical pages in the wild, which is what lets the paper collapse
// 12,138 responses into 4,512 clusters (ratio ≈ 0.37). Sharing a BodySeed
// shares the generated body verbatim.
func bucketBody(f *Function, cohort int, rng *rand.Rand) {
	switch f.Profile {
	case ProfileJSON, ProfileHTML, ProfileText, ProfileOther:
	default:
		return
	}
	if rng.Float64() >= 0.75 {
		return // unique body
	}
	// Only ~3% of a provider's functions answer with content (Fig. 6), so
	// bucket counts scale with that content-rich subset: one template per
	// ~20 content-rich responders keeps the cluster/document ratio near the
	// paper's 4,512/12,138.
	buckets := cohort / 640
	if buckets < 1 {
		buckets = 1
	}
	f.BodySeed = int64(hashBucket(int(f.Provider), int(f.Profile), rng.Intn(buckets)))
}

func hashBucket(provider, profile, bucket int) uint32 {
	h := uint32(2166136261)
	for _, v := range [3]int{provider, profile, bucket} {
		h ^= uint32(v)
		h *= 16777619
	}
	return h
}

// benignProfile draws the probe-outcome profile (Fig. 6 mix). DNS-deleted
// functions exist only on Tencent (no wildcard): the paper's 1,597 DNS
// failures are 25.95% of Tencent's 6,154 domains. AWS functions carry the
// bulk of the 502s.
func benignProfile(id providers.ID, rng *rand.Rand) Profile {
	if id == providers.Tencent && rng.Float64() < fracTencentDeleted {
		return ProfileDeleted
	}
	if rng.Float64() < fracUnreachOther {
		return ProfileInternal
	}
	// Status mix among reachable functions. AWS trades 404 mass for 502s
	// so it ends up holding ~half of all 502 responses (§4.4).
	mix := statusMix
	if id == providers.AWS {
		// AWS holds roughly half of all 502s (§4.4) despite 3.7% of the
		// fleet: unhandled exceptions surface as 502 at the function URL.
		if rng.Float64() < 0.32 {
			return ProfileServerErr
		}
	}
	x := rng.Float64()
	var acc float64
	for _, sm := range mix {
		acc += sm.Frac
		if x < acc {
			switch sm.Status {
			case 200:
				return profile200(rng)
			case 502, 500, 503:
				return ProfileServerErr
			case 401:
				return ProfileAuth
			case 403:
				return ProfileForbidden
			case 404:
				return ProfileNotFound
			default:
				return ProfileOtherCode
			}
		}
	}
	return ProfileNotFound
}

func profile200(rng *rand.Rand) Profile {
	if rng.Float64() < frac200Empty {
		return ProfileEmpty200
	}
	x := rng.Float64()
	var acc float64
	for _, cm := range contentTypeMix {
		acc += cm.Frac
		if x < acc {
			return cm.Kind
		}
	}
	return ProfileText
}

// logUniform draws an integer log-uniformly from [lo, hi].
func logUniform(rng *rand.Rand, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	l := math.Log(float64(lo))
	h := math.Log(float64(hi))
	v := int64(math.Exp(l + rng.Float64()*(h-l)))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// tinyTotal draws the request count of a rarely-invoked function. The mass
// sits on 3–4 requests so that, together with the 5–6 tail of the mid
// cohort, the histogram peaks in the paper's 3–6 band (Fig. 5: 73.51% of
// functions in 3.35–6.13 requests) while staying under 5 for the 78.14%.
func tinyTotal(rng *rand.Rand) int64 {
	x := rng.Float64()
	switch {
	case x < 0.05:
		return 1
	case x < 0.13:
		return 2
	case x < 0.57:
		return 3
	default:
		return 4
	}
}

// assignSecrets plants the §5 sensitive-data census across content-rich
// benign responders.
func assignSecrets(cfg Config, rng *rand.Rand, fns []*Function) {
	var rich []*Function
	for _, f := range fns {
		if !providers.Get(f.Provider).ActiveProbe {
			continue // never probed, so a planted secret would never be seen
		}
		switch f.Profile {
		case ProfileJSON, ProfileHTML, ProfileText, ProfileOther:
			rich = append(rich, f)
		}
	}
	rng.Shuffle(len(rich), func(i, j int) { rich[i], rich[j] = rich[j], rich[i] })
	idx := 0
	for _, sc := range secretsCensus {
		n := scaleCount(sc.Count, cfg.Scale)
		for i := 0; i < n && idx < len(rich); i++ {
			rich[idx].SecretKind = sc.Kind
			idx++
		}
	}
}

// generateAbuse builds the Table 3 cohorts.
func generateAbuse(cfg Config, rng *rand.Rand, w pdns.Window, pool fqdnPool) []*Function {
	var out []*Function
	add := func(fs []*Function) { out = append(out, fs...) }

	add(cohortC2(cfg, rng, w, pool))
	add(cohortGambling(cfg, rng, w, pool))
	add(cohortPorn(cfg, rng, w, pool))
	add(cohortCheat(cfg, rng, w, pool))
	add(cohortRedirect(cfg, rng, w, pool))
	add(cohortResale(cfg, rng, w, pool))
	add(cohortIllegalProxy(cfg, rng, w, pool))
	add(cohortGeoProxy(cfg, rng, w, pool))
	return out
}

// newAbuseFn builds the shared scaffolding of one abusive function.
func newAbuseFn(pool fqdnPool, rng *rand.Rand, id providers.ID, region string, profile Profile, total int64) *Function {
	in := providers.Get(id)
	if region == "" {
		region = in.Regions[rng.Intn(len(in.Regions))]
	}
	return &Function{
		FQDN:     pool.generate(in, rng, region),
		Provider: id,
		Region:   region,
		Profile:  profile,
		Total:    total,
		BodySeed: rng.Int63(),
	}
}

// cohortTotals splits a case's scaled request budget across its functions.
func cohortTotals(rng *rand.Rand, requests int64, n int, scale float64) []int64 {
	budget := int64(float64(requests) * scale)
	if budget < int64(n) {
		budget = int64(n)
	}
	out := make([]int64, n)
	weights := make([]float64, n)
	var sum float64
	for i := range weights {
		weights[i] = 0.5 + rng.Float64()
		sum += weights[i]
	}
	var assigned int64
	for i := range out {
		out[i] = 1 + int64(float64(budget-int64(n))*weights[i]/sum)
		assigned += out[i]
	}
	out[0] += budget - assigned
	return out
}

// pickProvider draws from the cohort's provider weights.
func pickProvider(rng *rand.Rand, cal abuseCal) providers.ID {
	return cal.Providers[rng.Intn(len(cal.Providers))]
}

func cohortC2(cfg Config, rng *rand.Rand, w pdns.Window, pool fqdnPool) []*Function {
	cal := table3["c2"]
	n := scaleCount(cal.Functions, cfg.Scale)
	totals := cohortTotals(rng, cal.Requests, n, cfg.Scale)
	fns := make([]*Function, 0, n)
	for i := 0; i < n; i++ {
		// Majority on Tencent, a single instance on Google2 (§5.1).
		id := providers.Tencent
		if i == n-1 && n > 1 {
			id = providers.Google2
		}
		f := newAbuseFn(pool, rng, id, "", ProfileC2Relay, totals[i])
		f.C2Family = c2.FamilyCobaltStrike
		if i%5 == 4 {
			f.C2Family = c2.FamilyInfoStealer
		}
		// ~112 calls/day (§5.1): lifespan sized to the per-function volume.
		days := int(f.Total / 112)
		if days < 7 {
			days = 7
		}
		first := sampleFirstDay(id, rng, w)
		if maxL := w.End.Sub(first) + 1; days > maxL {
			days = maxL
		}
		planDense(f, first, days)
		fns = append(fns, f)
	}
	return fns
}

// planDense makes the function active every day of [first, first+days).
func planDense(f *Function, first pdns.Date, days int) {
	if int64(days) > f.Total {
		days = int(f.Total)
	}
	if days < 1 {
		days = 1
	}
	f.ActiveDays = make([]pdns.Date, days)
	for i := range f.ActiveDays {
		f.ActiveDays[i] = first.AddDays(i)
	}
	f.DailyInvocations = make([]int64, days)
	base := f.Total / int64(days)
	rem := f.Total - base*int64(days)
	for i := range f.DailyInvocations {
		f.DailyInvocations[i] = base
		if int64(i) < rem {
			f.DailyInvocations[i]++
		}
		if f.DailyInvocations[i] < 1 {
			f.DailyInvocations[i] = 1
		}
	}
}

func cohortGambling(cfg Config, rng *rand.Rand, w pdns.Window, pool fqdnPool) []*Function {
	cal := table3["gambling"]
	n := scaleCount(cal.Functions, cfg.Scale)
	totals := cohortTotals(rng, cal.Requests, n, cfg.Scale)
	fns := make([]*Function, 0, n)
	for i := 0; i < n; i++ {
		f := newAbuseFn(pool, rng, pickProvider(rng, cal), "", ProfileGambling, totals[i])
		// Campaign consistency (§5.2): sites cluster into a few operations
		// sharing structure and google-site-verification elements.
		f.Campaign = fmt.Sprintf("campaign-%02d", i%3)
		f.BodySeed = int64(hashBucket(int(f.Provider), int(ProfileGambling), i%3))
		// Long-lived campaign sites: mean lifespan 311 days, max 544 (§5.2).
		l := 120 + rng.Intn(381)
		first := clampLaunch(f.Provider, w.Start.AddDays(rng.Intn(maxInt(1, w.Days()-l))), w)
		planSpread(f, rng, first, l)
		fns = append(fns, f)
	}
	return fns
}

// planSpread activates the function on a sampled subset of a lifespan,
// clipped to the measurement window.
func planSpread(f *Function, rng *rand.Rand, first pdns.Date, lifespan int) {
	last := first.AddDays(lifespan - 1)
	if end := Window().End; last > end {
		last = end
	}
	want := 2 + rng.Intn(maxInt(1, lifespan/3))
	if int64(want) > f.Total {
		want = int(f.Total)
	}
	days := sampleDays(rng, first, last, maxInt(1, want))
	f.ActiveDays = days
	f.DailyInvocations = splitTotal(rng, f.Total, len(days), f.Provider, days)
}

func cohortPorn(cfg Config, rng *rand.Rand, w pdns.Window, pool fqdnPool) []*Function {
	cal := table3["porn"]
	n := scaleCount(cal.Functions, cfg.Scale)
	totals := cohortTotals(rng, cal.Requests, n, cfg.Scale)
	fns := make([]*Function, 0, n)
	// Calls distributed across Jul 2022 – Oct 2023 (§5.2).
	lo := pdns.NewDate(2022, 7, 1)
	hi := pdns.NewDate(2023, 10, 31)
	for i := 0; i < n; i++ {
		f := newAbuseFn(pool, rng, pickProvider(rng, cal), "", ProfilePorn, totals[i])
		first := lo.AddDays(rng.Intn(hi.Sub(lo) - 30))
		planSpread(f, rng, first, 30+rng.Intn(90))
		fns = append(fns, f)
	}
	return fns
}

func cohortCheat(cfg Config, rng *rand.Rand, w pdns.Window, pool fqdnPool) []*Function {
	cal := table3["cheat"]
	n := scaleCount(cal.Functions, cfg.Scale)
	totals := cohortTotals(rng, cal.Requests, n, cfg.Scale)
	fns := make([]*Function, 0, n)
	for i := 0; i < n; i++ {
		f := newAbuseFn(pool, rng, pickProvider(rng, cal), "", ProfileCheat, totals[i])
		l := 60 + rng.Intn(300)
		first := clampLaunch(f.Provider, w.Start.AddDays(rng.Intn(maxInt(1, w.Days()-l))), w)
		planSpread(f, rng, first, l)
		fns = append(fns, f)
	}
	return fns
}

func cohortRedirect(cfg Config, rng *rand.Rand, w pdns.Window, pool fqdnPool) []*Function {
	cal := table3["redirect"]
	nStatic := scaleCount(19, cfg.Scale)
	nDyn := scaleCount(4, cfg.Scale)
	totals := cohortTotals(rng, cal.Requests, nStatic+nDyn, cfg.Scale)
	fns := make([]*Function, 0, nStatic+nDyn)
	for i := 0; i < nStatic+nDyn; i++ {
		profile := ProfileRedirectStatic
		if i >= nStatic {
			profile = ProfileRedirectDynamic
		}
		f := newAbuseFn(pool, rng, pickProvider(rng, cal), "", profile, totals[i])
		if profile == ProfileRedirectStatic {
			// Stable traffic direction: mean active duration 152 days (§5.3).
			l := 60 + rng.Intn(200)
			first := clampLaunch(f.Provider, w.Start.AddDays(rng.Intn(maxInt(1, w.Days()-l))), w)
			planSpread(f, rng, first, l)
		} else {
			// Dynamic redirectors live 1–2 days with a handful of calls.
			f.Total = 1 + int64(rng.Intn(60))
			first := clampLaunch(f.Provider, w.Start.AddDays(rng.Intn(w.Days()-2)), w)
			planDense(f, first, 1+rng.Intn(2))
		}
		fns = append(fns, f)
	}
	return fns
}

func cohortResale(cfg Config, rng *rand.Rand, w pdns.Window, pool fqdnPool) []*Function {
	cal := table3["resale"]
	n := scaleCount(cal.Functions, cfg.Scale)
	totals := cohortTotals(rng, cal.Requests, n, cfg.Scale)
	// Contact handles: one dominant WeChat (157/243 of the cohort), one
	// account-selling group (14/243), the rest spread over the remaining
	// distinct contacts (28 total in the paper).
	nBig := maxInt(1, n*resaleBiggestGroup/243)
	nAccount := maxInt(1, n*resaleAccountGroup/243)
	if nBig+nAccount > n {
		nAccount = maxInt(0, n-nBig)
	}
	nOther := scaleCount(resaleContacts-2, cfg.Scale)
	fns := make([]*Function, 0, n)
	for i := 0; i < n; i++ {
		f := newAbuseFn(pool, rng, pickProvider(rng, cal), "", ProfileResale, totals[i])
		switch {
		case i < nBig:
			f.Contact = "wechat:gptkey_major"
		case i < nBig+nAccount:
			f.Contact = "qq:18862233"
			f.AccountSale = true
		default:
			k := rng.Intn(maxInt(1, nOther))
			f.Contact = fmt.Sprintf("email:seller%02d@mail.example", k)
		}
		// Fig. 7: the campaign starts January 2023 (two months after the
		// ChatGPT release) and stays hot through May 2023.
		month := weightedIndex(rng, []float64{0.30, 0.25, 0.20, 0.15, 0.10})
		first := pdns.DateOf(pdns.NewDate(2023, 1, 5).Time().AddDate(0, month, rng.Intn(20)))
		l := 10 + rng.Intn(90)
		if end := pdns.NewDate(2023, 6, 30); first.AddDays(l) > end {
			l = maxInt(1, end.Sub(first))
		}
		planSpread(f, rng, first, l)
		fns = append(fns, f)
	}
	return fns
}

func cohortIllegalProxy(cfg Config, rng *rand.Rand, w pdns.Window, pool fqdnPool) []*Function {
	cal := table3["illegalproxy"]
	n := scaleCount(cal.Functions, cfg.Scale)
	totals := cohortTotals(rng, cal.Requests, n, cfg.Scale)
	fns := make([]*Function, 0, n)
	for i := 0; i < n; i++ {
		f := newAbuseFn(pool, rng, pickProvider(rng, cal), "", ProfileIllegalProxy, totals[i])
		l := 100 + rng.Intn(400)
		first := clampLaunch(f.Provider, w.Start.AddDays(rng.Intn(maxInt(1, w.Days()-l))), w)
		planSpread(f, rng, first, l)
		fns = append(fns, f)
	}
	return fns
}

func cohortGeoProxy(cfg Config, rng *rand.Rand, w pdns.Window, pool fqdnPool) []*Function {
	cal := table3["geoproxy"]
	n := scaleCount(cal.Functions, cfg.Scale)
	totals := cohortTotals(rng, cal.Requests, n, cfg.Scale)
	fns := make([]*Function, 0, n)
	// §5.4 composition: 14 OpenAI frontends, 47 simple OpenAI relays,
	// 1 GitHub proxy, 4 VPN proxies, remainder generic relays.
	kinds := geoKinds(n)
	for i := 0; i < n; i++ {
		id := pickProvider(rng, cal)
		region := nonChinaRegion(rng, id)
		f := newAbuseFn(pool, rng, id, region, ProfileGeoProxy, totals[i])
		f.GeoKind = kinds[i]
		l := 60 + rng.Intn(300)
		first := clampLaunch(f.Provider, w.Start.AddDays(rng.Intn(maxInt(1, w.Days()-l))), w)
		planSpread(f, rng, first, l)
		fns = append(fns, f)
	}
	return fns
}

// geoKinds apportions the cohort across flavours proportionally to §5.4.
func geoKinds(n int) []int {
	weights := []struct {
		kind, count int
	}{{0, 14}, {1, 47}, {2, 1}, {3, 4}, {1, 20}}
	var out []int
	for _, wk := range weights {
		c := wk.count * n / 86
		for i := 0; i < c; i++ {
			out = append(out, wk.kind)
		}
	}
	for len(out) < n {
		out = append(out, 1)
	}
	return out[:n]
}

// nonChinaRegion draws a region outside mainland China — the defining
// deployment property of geo-bypass proxies (§5.4).
func nonChinaRegion(rng *rand.Rand, id providers.ID) string {
	regions := providers.Get(id).Regions
	for tries := 0; tries < 100; tries++ {
		r := regions[rng.Intn(len(regions))]
		if !providers.ChinaRegion(r) {
			return r
		}
	}
	return regions[0]
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
