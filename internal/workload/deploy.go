package workload

import (
	"math/rand"
	"time"

	"repro/internal/c2"
	"repro/internal/faas"
	"repro/internal/pdns"
	"repro/internal/providers"
)

// Deploy registers every function of the population on the platform with a
// handler realising its profile, so the active prober and the C2 scanner
// observe exactly the paper's response mixes over real HTTP. Deleted
// functions are deployed and then deleted, so the gateway serves the
// provider-correct deleted-function response (404/403) while Tencent's
// resolver-side NXDOMAIN comes from MarkDeleted.
func Deploy(pop *Population, platform *faas.Platform, db *c2.DB) {
	for _, f := range pop.Functions {
		deployOne(pop, f, platform, db)
	}
}

func deployOne(pop *Population, f *Function, platform *faas.Platform, db *c2.DB) {
	createdAt := f.FirstDay().Time()
	cfg := faas.Config{}
	switch f.Profile {
	case ProfileAuth:
		cfg.Access = faas.IAMAuth
	case ProfileInternal:
		cfg.Access = faas.InternalOnly
	}
	h := handlerFor(f, db)
	platform.Deploy(f.FQDN, f.Provider, f.Region, cfg, h, createdAt)
	if f.Profile == ProfileDeleted {
		platform.Delete(f.FQDN, f.LastDay().AddDays(1).Time())
	}
}

// handlerFor builds the function's handler. Bodies are generated once,
// deterministically from the function's BodySeed, so repeated probes see
// stable content.
func handlerFor(f *Function, db *c2.DB) faas.Handler {
	rng := rand.New(rand.NewSource(f.BodySeed))
	secret := plantSecret(f.SecretKind, rng)

	respond := func(status int, ct, body string) faas.Handler {
		return func(ctx *faas.InvokeContext) faas.Response {
			return faas.Response{
				Status:  status,
				Headers: map[string]string{"Content-Type": ct},
				Body:    []byte(body),
			}
		}
	}

	switch f.Profile {
	case ProfileJSON:
		ct, body := jsonBody(rng, secret)
		return respond(200, ct, body)
	case ProfileHTML:
		ct, body := htmlBody(rng, secret)
		return respond(200, ct, body)
	case ProfileText:
		ct, body := textBody(rng, secret)
		return respond(200, ct, body)
	case ProfileOther:
		ct, body := otherBody(rng, secret)
		return respond(200, ct, body)
	case ProfileEmpty200:
		return respond(200, "text/plain", "")
	case ProfileServerErr:
		// A third of server errors come from genuine unhandled exceptions
		// (panics the platform converts to 502); the rest from failed
		// dependencies answered as 502/500/503.
		if rng.Intn(3) == 0 {
			return func(ctx *faas.InvokeContext) faas.Response {
				panic("unhandled exception in function code")
			}
		}
		status := []int{502, 502, 500, 503}[rng.Intn(4)]
		return respond(status, "text/html", "<html><body>upstream dependency failed</body></html>")
	case ProfileAuth:
		// The platform's IAM layer answers 401 before the handler runs.
		return respond(200, "text/plain", "authenticated admin endpoint")
	case ProfileForbidden:
		return respond(403, "application/json", `{"message":"Missing Authentication Token"}`)
	case ProfileOtherCode:
		status := []int{405, 429, 400}[rng.Intn(3)]
		return respond(status, "text/plain", "request rejected")
	case ProfileInternal, ProfileDeleted:
		// Never observable externally; body immaterial.
		return respond(200, "text/plain", "internal")

	case ProfileC2Relay:
		family := f.C2Family
		return func(ctx *faas.InvokeContext) faas.Response {
			path := ctx.Request.Path
			if ctx.Request.Query != "" {
				path += "?" + ctx.Request.Query
			}
			status, ct, body, _ := c2.BannerResponse(db, family, ctx.Request.Method, path, ctx.Request.Headers, ctx.Request.Body)
			return faas.Response{
				Status:  status,
				Headers: map[string]string{"Content-Type": ct},
				Body:    body,
			}
		}
	case ProfileGambling:
		ct, body := gamblingBody(rng, f.Campaign)
		return respond(200, ct, body)
	case ProfilePorn:
		ct, body := pornBody(rng)
		return respond(200, ct, body)
	case ProfileCheat:
		ct, body := cheatBody(rng)
		return respond(200, ct, body)
	case ProfileRedirectStatic:
		// Half answer with an HTTP 302, half with an in-body script.
		if rng.Intn(2) == 0 {
			target := "http://" + randToken(rng, 6) + ".concealed-svc.top/enter"
			return func(ctx *faas.InvokeContext) faas.Response {
				return faas.Response{
					Status: 302,
					Headers: map[string]string{
						"Content-Type": "text/html",
						"Location":     target,
					},
					Body: []byte("redirecting"),
				}
			}
		}
		ct, body := redirectStaticBody(rng)
		return respond(200, ct, body)
	case ProfileRedirectDynamic:
		ct, body := redirectDynamicBody(rng)
		return respond(200, ct, body)
	case ProfileResale:
		ct, body := resaleBody(rng, f.Contact, f.AccountSale)
		return respond(200, ct, body)
	case ProfileIllegalProxy:
		ct, body := illegalProxyBody(rng)
		return respond(200, ct, body)
	case ProfileGeoProxy:
		ct, body := geoProxyBody(rng, f.GeoKind)
		return respond(200, ct, body)
	default: // ProfileNotFound
		return respond(404, "text/plain", "Not Found")
	}
}

// ProbeTargets returns the FQDNs of functions on actively probeable
// providers (paper §3.3), sorted (the population is already FQDN-sorted).
func (p *Population) ProbeTargets() []string {
	var out []string
	for _, f := range p.Functions {
		if providers.Get(f.Provider).ActiveProbe {
			out = append(out, f.FQDN)
		}
	}
	return out
}

// CountByProfile tallies the population per profile.
func (p *Population) CountByProfile() map[Profile]int {
	out := make(map[Profile]int)
	for _, f := range p.Functions {
		out[f.Profile]++
	}
	return out
}

// AbusedFQDNs returns the FQDNs of Table 3 cohort functions.
func (p *Population) AbusedFQDNs() []string {
	var out []string
	for _, f := range p.Functions {
		if f.Profile.Abusive() {
			out = append(out, f.FQDN)
		}
	}
	return out
}

// RequestsByFQDN returns each function's total PDNS request count.
func (p *Population) RequestsByFQDN() map[string]int64 {
	out := make(map[string]int64, len(p.Functions))
	for _, f := range p.Functions {
		out[f.FQDN] = f.Total
	}
	return out
}

// ProviderTotals sums generated requests per provider, for calibration
// checks against Table 2.
func (p *Population) ProviderTotals() map[providers.ID]int64 {
	out := make(map[providers.ID]int64)
	for _, f := range p.Functions {
		out[f.Provider] += f.Total
	}
	return out
}

// DeployWindowClock returns a clock pinned just after the measurement
// window, the instant at which active probing happens.
func DeployWindowClock() func() time.Time {
	t := Window().End.AddDays(1).Time().Add(12 * time.Hour)
	return func() time.Time { return t }
}

// EndOfWindow returns the last day of the measurement window.
func EndOfWindow() pdns.Date { return Window().End }
