package workload

import (
	"bytes"
	"math"
	"testing"
	"time"

	"repro/internal/abuse"
	"repro/internal/dnssim"
	"repro/internal/pdns"
	"repro/internal/providers"
)

func testPop(t *testing.T, scale float64) *Population {
	t.Helper()
	return Generate(Config{Seed: 42, Scale: scale})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7, Scale: 0.005})
	b := Generate(Config{Seed: 7, Scale: 0.005})
	if len(a.Functions) != len(b.Functions) {
		t.Fatalf("sizes differ: %d vs %d", len(a.Functions), len(b.Functions))
	}
	for i := range a.Functions {
		fa, fb := a.Functions[i], b.Functions[i]
		if fa.FQDN != fb.FQDN || fa.Total != fb.Total || fa.Profile != fb.Profile {
			t.Fatalf("function %d differs: %+v vs %+v", i, fa, fb)
		}
	}
	c := Generate(Config{Seed: 8, Scale: 0.005})
	if len(c.Functions) > 0 && len(a.Functions) > 0 && c.Functions[0].FQDN == a.Functions[0].FQDN {
		t.Error("different seeds produced identical leading FQDN")
	}
}

func TestPopulationScale(t *testing.T) {
	pop := testPop(t, 0.01)
	// Expected ~531k * 0.01 plus small-count floors.
	n := len(pop.Functions)
	if n < 4800 || n > 6500 {
		t.Errorf("population = %d functions at 1%% scale, want ≈5,320", n)
	}
	// Per-provider proportions track Table 2.
	byProv := map[providers.ID]int{}
	for _, f := range pop.Functions {
		byProv[f.Provider]++
	}
	if byProv[providers.Google2] < byProv[providers.Google] {
		t.Error("Google2 should dominate Google in domain count")
	}
	if byProv[providers.Aliyun] < byProv[providers.AWS] {
		t.Error("Aliyun should exceed AWS in domain count")
	}
	for _, in := range providers.Collected() {
		if byProv[in.ID] == 0 {
			t.Errorf("%s has no functions (small-count floor failed)", in.Name)
		}
	}
}

func TestDomainsMatchProviderPatterns(t *testing.T) {
	pop := testPop(t, 0.002)
	m := providers.NewMatcher(nil)
	for _, f := range pop.Functions {
		in, ok := m.Identify(f.FQDN)
		if !ok || in.ID != f.Provider {
			t.Fatalf("function %q labelled %v, identified %v ok=%v", f.FQDN, f.Provider, in, ok)
		}
	}
}

func TestInvocationDistribution(t *testing.T) {
	pop := testPop(t, 0.02)
	var tiny, heavy, total int
	for _, f := range pop.Functions {
		if f.Profile.Abusive() {
			continue
		}
		total++
		if f.Total < 5 {
			tiny++
		}
		if f.Total > 100 {
			heavy++
		}
	}
	tinyFrac := float64(tiny) / float64(total)
	heavyFrac := float64(heavy) / float64(total)
	if math.Abs(tinyFrac-fracTiny) > 0.02 {
		t.Errorf("fraction invoked <5 times = %.4f, want ≈ %.4f (Fig. 5)", tinyFrac, fracTiny)
	}
	if math.Abs(heavyFrac-fracHeavy) > 0.02 {
		t.Errorf("fraction invoked >100 times = %.4f, want ≈ %.4f", heavyFrac, fracHeavy)
	}
}

func TestRequestTotalsTrackTable2(t *testing.T) {
	pop := testPop(t, 0.02)
	totals := pop.ProviderTotals()
	for _, id := range []providers.ID{providers.Aliyun, providers.Google, providers.AWS, providers.Google2} {
		want := float64(PaperRequests(id)) * 0.02
		got := float64(totals[id])
		if got < want*0.7 || got > want*1.3 {
			t.Errorf("%v: generated %d requests, want ≈%d (±30%%)", id, totals[id], int64(want))
		}
	}
	// Ranking must hold: Google > Aliyun > AWS > Google2 > Baidu.
	if !(totals[providers.Google] > totals[providers.Aliyun] &&
		totals[providers.Aliyun] > totals[providers.AWS] &&
		totals[providers.AWS] > totals[providers.Google2]) {
		t.Errorf("request ranking broken: %v", totals)
	}
}

func TestLifespanDistribution(t *testing.T) {
	pop := testPop(t, 0.02)
	var single, dense, total int
	var lifespanSum float64
	for _, f := range pop.Functions {
		if f.Profile.Abusive() {
			continue
		}
		total++
		if f.Lifespan() == 1 {
			single++
		}
		if f.Lifespan() == len(f.ActiveDays) {
			dense++
		}
		lifespanSum += float64(f.Lifespan())
	}
	singleFrac := float64(single) / float64(total)
	if math.Abs(singleFrac-fracSingleDay) > 0.02 {
		t.Errorf("single-day fraction = %.4f, want ≈ %.4f (§4.3)", singleFrac, fracSingleDay)
	}
	denseFrac := float64(dense) / float64(total)
	if math.Abs(denseFrac-fracDensityOne) > 0.03 {
		t.Errorf("density-one fraction = %.4f, want ≈ %.4f", denseFrac, fracDensityOne)
	}
	mean := lifespanSum / float64(total)
	if mean < 10 || mean > 40 {
		t.Errorf("mean lifespan = %.2f days, want ≈ 21.4", mean)
	}
}

func TestActiveDaysInvariants(t *testing.T) {
	pop := testPop(t, 0.005)
	w := Window()
	for _, f := range pop.Functions {
		if len(f.ActiveDays) == 0 || len(f.ActiveDays) != len(f.DailyInvocations) {
			t.Fatalf("%s: days/invocations mismatch", f.FQDN)
		}
		var sum int64
		for i, d := range f.ActiveDays {
			if d < w.Start || d > w.End {
				t.Fatalf("%s: active day %v outside window", f.FQDN, d)
			}
			if i > 0 && f.ActiveDays[i-1] >= d {
				t.Fatalf("%s: active days not strictly increasing", f.FQDN)
			}
			if f.DailyInvocations[i] < 1 {
				t.Fatalf("%s: day %v has %d invocations", f.FQDN, d, f.DailyInvocations[i])
			}
			sum += f.DailyInvocations[i]
		}
		if sum != f.Total {
			t.Fatalf("%s: daily sum %d != total %d", f.FQDN, sum, f.Total)
		}
		if int64(len(f.ActiveDays)) > f.Total {
			t.Fatalf("%s: more active days (%d) than invocations (%d)", f.FQDN, len(f.ActiveDays), f.Total)
		}
	}
}

func TestProviderLaunchEvents(t *testing.T) {
	pop := testPop(t, 0.02)
	kingsoftLaunch := pdns.NewDate(2022, time.August, 1)
	tencentLaunch := pdns.NewDate(2023, time.August, 1)
	for _, f := range pop.Functions {
		switch f.Provider {
		case providers.Kingsoft:
			if f.FirstDay() < kingsoftLaunch {
				t.Errorf("Kingsoft function first seen %v, before function-URL launch", f.FirstDay())
			}
		case providers.Tencent:
			if f.FirstDay() < tencentLaunch {
				t.Errorf("Tencent function first seen %v, before function-URL launch", f.FirstDay())
			}
		}
	}
}

func TestAWSLaunchSpike(t *testing.T) {
	pop := testPop(t, 0.02)
	firstMonth := 0
	total := 0
	for _, f := range pop.Functions {
		if f.Provider != providers.AWS {
			continue
		}
		total++
		if f.FirstDay().Month() == pdns.NewDate(2022, time.April, 1) {
			firstMonth++
		}
	}
	if total == 0 {
		t.Fatal("no AWS functions")
	}
	frac := float64(firstMonth) / float64(total)
	if frac < 0.12 {
		t.Errorf("AWS April-2022 first-seen share = %.3f, want a launch spike (> uniform 1/24)", frac)
	}
}

func TestAbuseCohortShape(t *testing.T) {
	pop := testPop(t, 0.05)
	counts := map[abuse.Case]int{}
	var reqs int64
	for _, f := range pop.Functions {
		if c, ok := f.Profile.AbuseCase(); ok {
			counts[c]++
			reqs += f.Total
		}
	}
	// At 5% scale the paper's 594 abused functions become ≈30, with every
	// case represented.
	for c := abuse.Case(0); int(c) < abuse.NumCases; c++ {
		if counts[c] == 0 {
			t.Errorf("case %v has no functions", c)
		}
	}
	if counts[abuse.CaseOpenAIResale] < counts[abuse.CaseC2] {
		t.Error("resale cohort should outnumber C2 cohort")
	}
	if counts[abuse.CaseGambling] < counts[abuse.CasePorn] {
		t.Error("gambling cohort should outnumber porn cohort")
	}
	paperAbuseReqs := 614_219.0
	wantReqs := int64(paperAbuseReqs * 0.05)
	if reqs < wantReqs/2 || reqs > wantReqs*2 {
		t.Errorf("abuse requests = %d, want ≈%d", reqs, wantReqs)
	}
}

func TestResaleCohortStructure(t *testing.T) {
	pop := testPop(t, 0.2)
	contacts := map[string]int{}
	var resaleWindowViolations int
	lo, hi := pdns.NewDate(2022, time.December, 25), pdns.NewDate(2023, time.July, 1)
	for _, f := range pop.Functions {
		if f.Profile != ProfileResale {
			continue
		}
		if f.Contact == "" {
			t.Fatalf("resale function %s has no contact", f.FQDN)
		}
		contacts[f.Contact]++
		if f.Provider != providers.Aliyun {
			t.Errorf("resale function on %v, want Aliyun (§5.3)", f.Provider)
		}
		if f.FirstDay() < lo || f.LastDay() > hi {
			resaleWindowViolations++
		}
	}
	if contacts["wechat:gptkey_major"] == 0 {
		t.Error("dominant WeChat group missing")
	}
	// The dominant group holds the majority (157/243 in the paper).
	var totalResale, biggest int
	for c, n := range contacts {
		totalResale += n
		if n > biggest && c == "wechat:gptkey_major" {
			biggest = n
		}
	}
	if float64(contacts["wechat:gptkey_major"])/float64(totalResale) < 0.5 {
		t.Errorf("dominant group share = %d/%d, want > 50%%", contacts["wechat:gptkey_major"], totalResale)
	}
	if resaleWindowViolations > 0 {
		t.Errorf("%d resale functions outside the Jan–Jun 2023 campaign window (Fig. 7)", resaleWindowViolations)
	}
}

func TestC2CohortStructure(t *testing.T) {
	pop := testPop(t, 0.5)
	var tencent, google2, other int
	for _, f := range pop.Functions {
		if f.Profile != ProfileC2Relay {
			continue
		}
		if f.C2Family == "" {
			t.Fatalf("C2 relay %s has no family", f.FQDN)
		}
		switch f.Provider {
		case providers.Tencent:
			tencent++
		case providers.Google2:
			google2++
		default:
			other++
		}
	}
	if tencent == 0 || google2 != 1 || other != 0 {
		t.Errorf("C2 providers = tencent:%d google2:%d other:%d, want majority Tencent + single Google2", tencent, google2, other)
	}
}

func TestGeoProxyOutsideChina(t *testing.T) {
	pop := testPop(t, 0.2)
	for _, f := range pop.Functions {
		if f.Profile == ProfileGeoProxy && providers.ChinaRegion(f.Region) {
			t.Errorf("geo-bypass proxy %s deployed in China region %s", f.FQDN, f.Region)
		}
	}
}

func TestTencentDeletedShare(t *testing.T) {
	pop := testPop(t, 0.05)
	var tencent, deleted int
	for _, f := range pop.Functions {
		if f.Provider != providers.Tencent || f.Profile.Abusive() {
			continue
		}
		tencent++
		if f.Profile == ProfileDeleted {
			deleted++
		}
	}
	if tencent == 0 {
		t.Fatal("no Tencent functions")
	}
	frac := float64(deleted) / float64(tencent)
	if math.Abs(frac-fracTencentDeleted) > 0.08 {
		t.Errorf("deleted Tencent share = %.3f, want ≈ %.3f", frac, fracTencentDeleted)
	}
	for _, f := range pop.Functions {
		if f.Profile == ProfileDeleted && f.Provider != providers.Tencent {
			t.Errorf("deleted-DNS profile on %v; only Tencent lacks wildcard DNS", f.Provider)
		}
	}
}

func TestSecretsPlanted(t *testing.T) {
	pop := testPop(t, 0.1)
	counts := map[SecretKind]int{}
	for _, f := range pop.Functions {
		if f.SecretKind != SecretNone {
			counts[f.SecretKind]++
		}
	}
	// 394 findings at 10% scale ≈ 39, dominated by API keys and network IDs.
	var total int
	for _, n := range counts {
		total += n
	}
	if total < 20 || total > 60 {
		t.Errorf("planted secrets = %d, want ≈ 39 at 10%% scale", total)
	}
	if counts[SecretAPIKey] < counts[SecretPhone] {
		t.Error("API keys should dominate phone numbers (§5)")
	}
}

func TestEmitPDNSConsistency(t *testing.T) {
	pop := testPop(t, 0.002)
	resolver := dnssim.NewResolver()
	recs, err := Records(pop, resolver)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("no records emitted")
	}
	// Sum per fqdn must equal the function totals; validity must hold.
	sums := map[string]int64{}
	for i := range recs {
		if err := recs[i].Validate(); err != nil {
			t.Fatalf("invalid record: %v", err)
		}
		sums[recs[i].FQDN] += recs[i].RequestCnt
	}
	for _, f := range pop.Functions {
		if sums[f.FQDN] != f.Total {
			t.Errorf("%s: records sum %d, function total %d", f.FQDN, sums[f.FQDN], f.Total)
		}
	}
}

func TestEmitPDNSCacheModelLowerBound(t *testing.T) {
	cfgOn := Config{Seed: 42, Scale: 0.002, CacheModel: true}
	popOn := Generate(cfgOn)
	resolver := dnssim.NewResolver()
	recs, err := Records(popOn, resolver)
	if err != nil {
		t.Fatal(err)
	}
	sums := map[string]int64{}
	for i := range recs {
		sums[recs[i].FQDN] += recs[i].RequestCnt
	}
	lower, equal := 0, 0
	for _, f := range popOn.Functions {
		switch {
		case sums[f.FQDN] < f.Total:
			lower++
		case sums[f.FQDN] == f.Total:
			equal++
		default:
			t.Fatalf("%s: cache model inflated counts (%d > %d)", f.FQDN, sums[f.FQDN], f.Total)
		}
	}
	if lower == 0 {
		t.Error("cache model never reduced any count; expected a conservative lower bound")
	}
	_ = equal
}

func TestAggregationRoundTrip(t *testing.T) {
	// End-to-end: generate → emit → aggregate → per-provider stats match
	// the population.
	pop := testPop(t, 0.002)
	resolver := dnssim.NewResolver()
	w := Window()
	agg := pdns.NewAggregator(nil, w.Start, w.End)
	if err := EmitPDNS(pop, resolver, func(r *pdns.Record) error { agg.Add(r); return nil }); err != nil {
		t.Fatal(err)
	}
	ag := agg.Finish()
	if ag.TotalDomains() != len(pop.Functions) {
		t.Errorf("aggregated %d domains, population has %d", ag.TotalDomains(), len(pop.Functions))
	}
	var wantReqs int64
	for _, f := range pop.Functions {
		wantReqs += f.Total
	}
	if ag.TotalRequests() != wantReqs {
		t.Errorf("aggregated %d requests, population has %d", ag.TotalRequests(), wantReqs)
	}
	// Spot-check one function's per-FQDN stats.
	f := pop.Functions[0]
	fs := ag.ByFQDN[f.FQDN]
	if fs == nil {
		t.Fatalf("function %s missing from aggregate", f.FQDN)
	}
	if fs.FirstSeenAll != f.FirstDay() || fs.LastSeenAll != f.LastDay() {
		t.Errorf("first/last = %v/%v, want %v/%v", fs.FirstSeenAll, fs.LastSeenAll, f.FirstDay(), f.LastDay())
	}
	if fs.DaysCount != len(f.ActiveDays) {
		t.Errorf("days count = %d, want %d", fs.DaysCount, len(f.ActiveDays))
	}
}

func TestProbeTargetsOnlyProbeableProviders(t *testing.T) {
	pop := testPop(t, 0.005)
	targets := map[string]bool{}
	for _, fq := range pop.ProbeTargets() {
		targets[fq] = true
	}
	for _, f := range pop.Functions {
		probeable := providers.Get(f.Provider).ActiveProbe
		if targets[f.FQDN] != probeable {
			t.Errorf("%s (provider %v): in targets = %v, probeable = %v", f.FQDN, f.Provider, targets[f.FQDN], probeable)
		}
	}
}

func TestCountByProfileCoversAll(t *testing.T) {
	pop := testPop(t, 0.05)
	counts := pop.CountByProfile()
	if counts[ProfileNotFound] == 0 || counts[ProfileJSON] == 0 || counts[ProfileServerErr] == 0 {
		t.Errorf("profile mix missing mass: %v", counts)
	}
	// 404 dominates (Fig. 6: 89.31% of reachable functions).
	if counts[ProfileNotFound] < counts[ProfileJSON]*10 {
		t.Errorf("404 profile (%d) should dwarf JSON profile (%d)", counts[ProfileNotFound], counts[ProfileJSON])
	}
}

func TestPopulationCodecRoundTrip(t *testing.T) {
	pop := testPop(t, 0.002)
	var buf bytes.Buffer
	if err := WritePopulation(&buf, pop); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPopulation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Functions) != len(pop.Functions) {
		t.Fatalf("round trip count = %d, want %d", len(got.Functions), len(pop.Functions))
	}
	if got.Config.Seed != pop.Config.Seed || got.Config.Scale != pop.Config.Scale {
		t.Errorf("config = %+v", got.Config)
	}
	for i := range pop.Functions {
		a, b := pop.Functions[i], got.Functions[i]
		if a.FQDN != b.FQDN || a.Provider != b.Provider || a.Profile != b.Profile ||
			a.Total != b.Total || a.Contact != b.Contact || a.C2Family != b.C2Family ||
			a.Campaign != b.Campaign || a.BodySeed != b.BodySeed || a.HTTPOnly != b.HTTPOnly {
			t.Fatalf("function %d differs:\n%+v\n%+v", i, a, b)
		}
		if len(a.ActiveDays) != len(b.ActiveDays) {
			t.Fatalf("function %d temporal plan differs", i)
		}
		for j := range a.ActiveDays {
			if a.ActiveDays[j] != b.ActiveDays[j] || a.DailyInvocations[j] != b.DailyInvocations[j] {
				t.Fatalf("function %d day %d differs", i, j)
			}
		}
	}
	// The round-tripped population deploys and emits identically.
	r1, err := Records(pop, dnssim.NewResolver())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Records(got, dnssim.NewResolver())
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("emitted records differ: %d vs %d", len(r1), len(r2))
	}
}

func TestReadPopulationErrors(t *testing.T) {
	if _, err := ReadPopulation(bytes.NewBufferString("")); err == nil {
		t.Error("empty stream accepted")
	}
	if _, err := ReadPopulation(bytes.NewBufferString("not-json\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadPopulation(bytes.NewBufferString(`{"seed":1,"scale":0.1,"count":1}` + "\n" + `{"provider":"nosuch"}` + "\n")); err == nil {
		t.Error("unknown provider accepted")
	}
	if _, err := ReadPopulation(bytes.NewBufferString(`{"seed":1,"scale":0.1,"count":3}` + "\n")); err == nil {
		t.Error("count mismatch accepted")
	}
}
