package posture

import (
	"strings"
	"testing"

	"repro/internal/providers"
)

func findingsFor(t *testing.T, id providers.ID) []Finding {
	t.Helper()
	return Audit(FactsFor(id))
}

func hasFinding(fs []Finding, rec int, sev Severity) bool {
	for _, f := range fs {
		if f.Recommendation == rec && f.Severity == sev {
			return true
		}
	}
	return false
}

func TestBaiduHighAccessFinding(t *testing.T) {
	// §6: Baidu defaults to public with no warning — the worst posture.
	fs := findingsFor(t, providers.Baidu)
	if !hasFinding(fs, 3, High) {
		t.Errorf("Baidu findings = %v, want high-severity access-control finding", fs)
	}
}

func TestAWSWarnsOnPublic(t *testing.T) {
	fs := findingsFor(t, providers.AWS)
	if hasFinding(fs, 3, High) {
		t.Errorf("AWS should not have a high access finding (red warning box): %v", fs)
	}
}

func TestTencentWildcardPosture(t *testing.T) {
	// Tencent is the only provider already compliant with the wildcard
	// recommendation.
	fs := findingsFor(t, providers.Tencent)
	for _, f := range fs {
		if f.Recommendation == 2 && strings.Contains(f.Message, "wildcard") {
			t.Errorf("Tencent flagged for wildcard DNS despite having none: %v", f)
		}
	}
	// Everyone else is flagged.
	fs = findingsFor(t, providers.AWS)
	found := false
	for _, f := range fs {
		if f.Recommendation == 2 && strings.Contains(f.Message, "wildcard") {
			found = true
		}
	}
	if !found {
		t.Error("AWS not flagged for wildcard DNS")
	}
}

func TestThirdPartyIngressFindings(t *testing.T) {
	for _, id := range []providers.ID{providers.Baidu, providers.Kingsoft, providers.IBM} {
		found := false
		for _, f := range findingsFor(t, id) {
			if strings.Contains(f.Message, "third-party") {
				found = true
			}
		}
		if !found {
			t.Errorf("%v not flagged for third-party ingress", id)
		}
	}
	for _, f := range findingsFor(t, providers.AWS) {
		if strings.Contains(f.Message, "third-party") {
			t.Errorf("AWS wrongly flagged for third-party ingress")
		}
	}
}

func TestInspectionFindings(t *testing.T) {
	// Aliyun and Tencent run inspections; others get the supervision
	// finding.
	for _, f := range findingsFor(t, providers.Aliyun) {
		if f.Recommendation == 1 {
			t.Errorf("Aliyun flagged for missing inspections: %v", f)
		}
	}
	found := false
	for _, f := range findingsFor(t, providers.Google2) {
		if f.Recommendation == 1 {
			found = true
		}
	}
	if !found {
		t.Error("Google2 not flagged for missing inspections")
	}
}

func TestAzureEmbeddedAuth(t *testing.T) {
	fs := findingsFor(t, providers.Azure)
	for _, f := range fs {
		if f.Recommendation == 3 && f.Severity >= Warn {
			t.Errorf("Azure embeds auth in URLs; access finding %v unexpected", f)
		}
	}
}

func TestScorecardOrdering(t *testing.T) {
	baidu := Scorecard(findingsFor(t, providers.Baidu))
	aws := Scorecard(findingsFor(t, providers.AWS))
	if baidu >= aws {
		t.Errorf("Baidu score %.2f should be below AWS %.2f", baidu, aws)
	}
	if s := Scorecard(nil); s != 1 {
		t.Errorf("clean scorecard = %v", s)
	}
}

func TestSeverityOrderingInAudit(t *testing.T) {
	fs := findingsFor(t, providers.Baidu)
	for i := 1; i < len(fs); i++ {
		if fs[i].Severity > fs[i-1].Severity {
			t.Error("findings not ordered most-severe first")
		}
	}
}

func TestAuditAllAndRender(t *testing.T) {
	all := AuditAll()
	if len(all) < 10 {
		t.Fatalf("AuditAll = %d findings", len(all))
	}
	out := Render(all)
	for _, want := range []string{"Baidu", "AWS", "wildcard", "score"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
