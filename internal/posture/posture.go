// Package posture audits the management posture of serverless providers
// against the three recommendations of paper §6: (1) strengthen supervision
// of cloud-function abuse, (2) secure the serverless architecture, and
// (3) enhance access-control requirements. The per-provider configuration
// facts encoded here are the ones the paper reports from its empirical
// provider study (default access modes, public-exposure warnings, wildcard
// DNS, third-party ingress, embedded URL authentication, and content
// inspections).
package posture

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dnssim"
	"repro/internal/providers"
)

// Facts are the observable management properties of one provider.
type Facts struct {
	Provider providers.ID

	// DefaultPublic reports whether a newly created function URL admits
	// unauthenticated callers by default (§6: Baidu defaults to public;
	// Aliyun, AWS and Google enforce IAM by default).
	DefaultPublic bool
	// WarnsOnPublic reports whether switching to public access shows a
	// prominent warning (§6: AWS shows a red warning box).
	WarnsOnPublic bool
	// EmbeddedURLAuth reports whether default function URLs embed an
	// authentication parameter (§6: Azure's ?code=Key).
	EmbeddedURLAuth bool
	// WildcardDNS reports whether deleted functions keep resolving
	// (§4.4/§6: every provider but Tencent).
	WildcardDNS bool
	// ThirdPartyIngress reports reliance on external network infrastructure
	// (§4.2: Baidu/Kingsoft on telecom operators, IBM on Cloudflare).
	ThirdPartyIngress bool
	// ContentInspections reports whether the provider performs (random)
	// abuse inspections (§6: Aliyun and Tencent, as required in China).
	ContentInspections bool
}

// FactsFor returns the audited facts of a provider.
func FactsFor(id providers.ID) Facts {
	f := Facts{
		Provider:    id,
		WildcardDNS: providers.Get(id).WildcardDNS,
	}
	if pol, ok := dnssim.PolicyFor(id); ok {
		f.ThirdPartyIngress = len(pol.ThirdPartyOwner) > 0
	}
	switch id {
	case providers.Aliyun:
		f.ContentInspections = true
	case providers.Tencent:
		f.ContentInspections = true
	case providers.AWS:
		f.WarnsOnPublic = true
	case providers.Google, providers.Google2:
		// IAM by default, no public warning needed beyond the default.
	case providers.Baidu:
		f.DefaultPublic = true
	case providers.Kingsoft:
		f.DefaultPublic = true
	case providers.Azure:
		f.EmbeddedURLAuth = true
	case providers.IBM, providers.Oracle:
		// Automatic URLs with platform auth; no extra posture facts.
	}
	return f
}

// Severity ranks a finding.
type Severity int

const (
	Info Severity = iota
	Warn
	High
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case High:
		return "high"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Finding is one audit outcome tied to a §6 recommendation.
type Finding struct {
	Provider       providers.ID
	Severity       Severity
	Recommendation int // 1 = supervision, 2 = architecture, 3 = access control
	Message        string
}

// Audit evaluates one provider's facts against the recommendations.
func Audit(f Facts) []Finding {
	var out []Finding
	add := func(sev Severity, rec int, msg string) {
		out = append(out, Finding{Provider: f.Provider, Severity: sev, Recommendation: rec, Message: msg})
	}
	// Recommendation 1: supervision of abuse.
	if !f.ContentInspections {
		add(Warn, 1, "no abuse inspections at function creation or runtime")
	}
	// Recommendation 2: secure the architecture.
	if f.WildcardDNS {
		add(Warn, 2, "wildcard DNS keeps deleted functions resolvable; disable and purge records on deletion")
	}
	if f.ThirdPartyIngress {
		add(Warn, 2, "ingress depends on third-party network infrastructure; secure the dependency")
	}
	// Recommendation 3: access control.
	switch {
	case f.DefaultPublic && !f.WarnsOnPublic:
		add(High, 3, "functions default to public access with no warning")
	case f.DefaultPublic:
		add(Warn, 3, "functions default to public access")
	case !f.WarnsOnPublic && !f.EmbeddedURLAuth:
		add(Info, 3, "IAM default present but switching to public shows no prominent warning")
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Severity > out[j].Severity })
	return out
}

// AuditAll audits every registered provider and returns findings grouped in
// Table 1 order.
func AuditAll() []Finding {
	var out []Finding
	for _, in := range providers.All() {
		out = append(out, Audit(FactsFor(in.ID))...)
	}
	return out
}

// Scorecard summarises a provider's audit as a compliance score in [0, 1]:
// 1 means no findings, with High findings weighted 3x Warn and Info 1/3.
func Scorecard(fs []Finding) float64 {
	var weight float64
	for _, f := range fs {
		switch f.Severity {
		case High:
			weight += 3
		case Warn:
			weight += 1
		default:
			weight += 1.0 / 3
		}
	}
	return 1 / (1 + weight)
}

// Render prints an audit as text.
func Render(findings []Finding) string {
	var b strings.Builder
	b.WriteString("Provider posture audit (paper §6 recommendations)\n")
	byProvider := map[providers.ID][]Finding{}
	var order []providers.ID
	for _, f := range findings {
		if _, ok := byProvider[f.Provider]; !ok {
			order = append(order, f.Provider)
		}
		byProvider[f.Provider] = append(byProvider[f.Provider], f)
	}
	for _, id := range order {
		fs := byProvider[id]
		fmt.Fprintf(&b, "%s (score %.2f):\n", id, Scorecard(fs))
		for _, f := range fs {
			fmt.Fprintf(&b, "  [%-4s] R%d %s\n", f.Severity, f.Recommendation, f.Message)
		}
	}
	return b.String()
}
