package analysis

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/pdns"
	"repro/internal/providers"
)

func d(y int, m time.Month, day int) pdns.Date { return pdns.NewDate(y, m, day) }

func window() pdns.Window {
	return pdns.Window{Start: d(2022, time.April, 1), End: d(2024, time.March, 31)}
}

func mkAgg(t *testing.T, recs []pdns.Record) *pdns.Aggregate {
	t.Helper()
	w := window()
	a := pdns.NewAggregator(nil, w.Start, w.End)
	for i := range recs {
		a.Add(&recs[i])
	}
	return a.Finish()
}

func rec(fqdn string, day pdns.Date, rt pdns.RType, rdata string, cnt int64) pdns.Record {
	ts := day.Time().Add(time.Hour)
	return pdns.Record{FQDN: fqdn, RType: rt, RData: rdata,
		FirstSeen: ts, LastSeen: ts.Add(time.Minute), RequestCnt: cnt, PDate: day}
}

func TestNewFQDNsByMonth(t *testing.T) {
	ag := mkAgg(t, []pdns.Record{
		rec("a.lambda-url.us-east-1.on.aws", d(2022, time.April, 3), pdns.TypeA, "1.1.1.1", 1),
		rec("b.lambda-url.us-east-1.on.aws", d(2022, time.April, 20), pdns.TypeA, "1.1.1.1", 1),
		rec("c.lambda-url.us-east-1.on.aws", d(2022, time.May, 2), pdns.TypeA, "1.1.1.1", 1),
		// Second sighting of a: not a new FQDN.
		rec("a.lambda-url.us-east-1.on.aws", d(2022, time.June, 3), pdns.TypeA, "1.1.1.1", 1),
	})
	s := NewFQDNsByMonth(ag)
	if len(s) != 24 {
		t.Fatalf("series has %d months, want 24 (dense window)", len(s))
	}
	if s[0].Value != 2 || s[1].Value != 1 || s[2].Value != 0 {
		t.Errorf("series head = %v %v %v", s[0], s[1], s[2])
	}
	cum := CumulativeFQDNs(s)
	if cum[23].Value != 3 {
		t.Errorf("cumulative end = %d, want 3", cum[23].Value)
	}
	for i := 1; i < len(cum); i++ {
		if cum[i].Value < cum[i-1].Value {
			t.Error("cumulative series decreasing")
		}
	}
}

func TestInvocationTrend(t *testing.T) {
	ag := mkAgg(t, []pdns.Record{
		rec("a.lambda-url.us-east-1.on.aws", d(2022, time.April, 3), pdns.TypeA, "1.1.1.1", 10),
		rec("a.lambda-url.us-east-1.on.aws", d(2022, time.April, 9), pdns.TypeA, "1.1.1.1", 5),
		rec("x-y-abcdefghij.cn-shanghai.fcapp.run", d(2022, time.May, 1), pdns.TypeCNAME, "c.aliyuncs.com", 7),
	})
	tr := InvocationTrend(ag)
	aws := tr[providers.AWS]
	if aws[0].Value != 15 {
		t.Errorf("AWS April = %d, want 15", aws[0].Value)
	}
	ali := tr[providers.Aliyun]
	if ali[1].Value != 7 {
		t.Errorf("Aliyun May = %d, want 7", ali[1].Value)
	}
}

func TestEventsCalendar(t *testing.T) {
	evs := Events()
	if len(evs) < 6 {
		t.Fatalf("events = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Month < evs[i-1].Month {
			t.Error("events not chronological")
		}
	}
}

func statsWithTotals(totals []int64) []*pdns.FQDNStats {
	var out []*pdns.FQDNStats
	w := window()
	for _, tot := range totals {
		out = append(out, &pdns.FQDNStats{
			Provider: providers.AWS, TotalRequest: tot,
			FirstSeenAll: w.Start, LastSeenAll: w.Start, DaysCount: 1,
		})
	}
	return out
}

func TestFrequency(t *testing.T) {
	// 8 functions: 6 tiny (<5), 1 mid, 1 heavy (>100).
	fs := statsWithTotals([]int64{1, 2, 3, 4, 4, 3, 50, 5000})
	st := Frequency(fs)
	if st.Functions != 8 {
		t.Fatalf("functions = %d", st.Functions)
	}
	if math.Abs(st.FracUnder5-0.75) > 1e-9 {
		t.Errorf("FracUnder5 = %v, want 0.75", st.FracUnder5)
	}
	if math.Abs(st.FracOver100-0.125) > 1e-9 {
		t.Errorf("FracOver100 = %v", st.FracOver100)
	}
	if st.ModalFrac != 0.5 { // totals in [3,6]: 3,4,4,3 = 4/8
		t.Errorf("ModalFrac = %v, want 0.5", st.ModalFrac)
	}
	// Histogram counts sum to population.
	sum := 0
	for _, b := range st.Histogram {
		sum += b.Count
	}
	if sum != 8 {
		t.Errorf("histogram sums to %d", sum)
	}
	// CDF ends at 1 and is monotone.
	if st.CDF[len(st.CDF)-1].Frac != 1 {
		t.Errorf("CDF end = %v", st.CDF[len(st.CDF)-1])
	}
	for i := 1; i < len(st.CDF); i++ {
		if st.CDF[i].Frac < st.CDF[i-1].Frac || st.CDF[i].Log10Req < st.CDF[i-1].Log10Req {
			t.Error("CDF not monotone")
		}
	}
}

func TestFrequencyEmpty(t *testing.T) {
	st := Frequency(nil)
	if st.Functions != 0 || st.Histogram != nil {
		t.Errorf("empty frequency = %+v", st)
	}
}

func TestLifespan(t *testing.T) {
	w := window()
	mk := func(first pdns.Date, span, days int, total int64) *pdns.FQDNStats {
		return &pdns.FQDNStats{
			FirstSeenAll: first, LastSeenAll: first.AddDays(span - 1),
			DaysCount: days, TotalRequest: total,
		}
	}
	fns := []*pdns.FQDNStats{
		mk(w.Start, 1, 1, 3),        // single day, density 1
		mk(w.Start, 1, 1, 2),        // single day
		mk(w.Start, 3, 3, 9),        // 3-day dense
		mk(w.Start, 100, 4, 40),     // sparse
		mk(w.Start, w.Days(), 2, 2), // full window, 2 calls: long-lived rare
	}
	st := Lifespan(fns, w)
	if st.Functions != 5 {
		t.Fatalf("functions = %d", st.Functions)
	}
	if math.Abs(st.FracSingleDay-0.4) > 1e-9 {
		t.Errorf("FracSingleDay = %v", st.FracSingleDay)
	}
	if math.Abs(st.FracUnder5Days-0.6) > 1e-9 {
		t.Errorf("FracUnder5Days = %v", st.FracUnder5Days)
	}
	if math.Abs(st.FracDensityOne-0.6) > 1e-9 {
		t.Errorf("FracDensityOne = %v", st.FracDensityOne)
	}
	if st.FracFullWindow != 0.2 {
		t.Errorf("FracFullWindow = %v", st.FracFullWindow)
	}
	if st.LongLivedRare != 1 {
		t.Errorf("LongLivedRare = %d", st.LongLivedRare)
	}
	wantMean := (1.0 + 1 + 3 + 100 + float64(w.Days())) / 5
	if math.Abs(st.MeanDays-wantMean) > 1e-9 {
		t.Errorf("MeanDays = %v, want %v", st.MeanDays, wantMean)
	}
}

func TestTable2(t *testing.T) {
	ag := mkAgg(t, []pdns.Record{
		rec("a.lambda-url.us-east-1.on.aws", d(2022, time.May, 1), pdns.TypeA, "1.1.1.1", 70),
		rec("a.lambda-url.us-east-1.on.aws", d(2022, time.May, 2), pdns.TypeAAAA, "2600::1", 30),
		rec("1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com", d(2023, time.September, 1), pdns.TypeCNAME, "gz.scf.tencentcs.com", 10),
	})
	rows := Table2(ag)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper order: Tencent before AWS.
	if rows[0].Provider != providers.Tencent || rows[1].Provider != providers.AWS {
		t.Errorf("row order = %v, %v", rows[0].Provider, rows[1].Provider)
	}
	aws := rows[1]
	if aws.Domains != 1 || aws.Requests != 100 || aws.Regions != 1 {
		t.Errorf("aws row = %+v", aws)
	}
	if math.Abs(aws.AShare-0.7) > 1e-9 || math.Abs(aws.AAAAShare-0.3) > 1e-9 {
		t.Errorf("aws shares = %v/%v", aws.AShare, aws.AAAAShare)
	}
	if aws.ARData != 1 || aws.ATop10 != 1 {
		t.Errorf("aws rdata = %d top10 %v", aws.ARData, aws.ATop10)
	}
	ten := rows[0]
	if ten.CNAMEShare != 1 || ten.CNAMERData != 1 {
		t.Errorf("tencent row = %+v", ten)
	}
}

func TestThirdParty(t *testing.T) {
	ag := mkAgg(t, []pdns.Record{
		// Baidu answered by telecom operators.
		rec("a1b2c3d4e5f6g.cfc-execute.bj.baidubce.com", d(2022, time.May, 1), pdns.TypeCNAME, "cfc-bj.ct.bcelb.com", 70),
		rec("a1b2c3d4e5f6g.cfc-execute.bj.baidubce.com", d(2022, time.May, 2), pdns.TypeA, "101.33.9.9", 30),
		// AWS answered by itself.
		rec("a.lambda-url.us-east-1.on.aws", d(2022, time.May, 1), pdns.TypeA, "20.33.1.1", 10),
	})
	classify := func(rdata string) string {
		switch {
		case strings.Contains(rdata, "bcelb.com"), strings.HasPrefix(rdata, "101.33."):
			return "china-telecom"
		default:
			return ""
		}
	}
	rows := ThirdParty(ag, classify)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	baidu := rows[0]
	if baidu.Provider != providers.Baidu {
		t.Fatalf("row order: %v", baidu.Provider)
	}
	if baidu.ProviderShare != 0 || baidu.ThirdParty["china-telecom"] != 1 {
		t.Errorf("baidu row = %+v", baidu)
	}
	aws := rows[1]
	if aws.ProviderShare != 1 || len(aws.ThirdParty) != 0 {
		t.Errorf("aws row = %+v", aws)
	}
}

func TestIngressConcentration(t *testing.T) {
	recs := []pdns.Record{
		rec("a.lambda-url.us-east-1.on.aws", d(2022, time.May, 1), pdns.TypeA, "1.1.1.1", 5),
		rec("a.lambda-url.us-east-1.on.aws", d(2022, time.May, 2), pdns.TypeA, "1.1.1.2", 5),
		rec("b.lambda-url.us-east-1.on.aws", d(2022, time.May, 1), pdns.TypeA, "1.1.1.3", 5),
		rec("c.lambda-url.eu-west-1.on.aws", d(2022, time.May, 1), pdns.TypeA, "2.2.2.2", 7),
		rec("x-y-abcdefghij.cn-shanghai.fcapp.run", d(2022, time.May, 1), pdns.TypeCNAME, "ingress.aliyuncs.com", 3),
		{FQDN: "junk.example", RType: pdns.TypeA, RData: "9.9.9.9", RequestCnt: 1,
			PDate: d(2022, time.May, 1), FirstSeen: d(2022, time.May, 1).Time(), LastSeen: d(2022, time.May, 1).Time()},
	}
	rows := IngressConcentration(recs, nil)
	if len(rows) != 3 {
		t.Fatalf("rows = %d: %+v", len(rows), rows)
	}
	find := func(id providers.ID, region string) *RegionNodes {
		for i := range rows {
			if rows[i].Provider == id && rows[i].Region == region {
				return &rows[i]
			}
		}
		return nil
	}
	use1 := find(providers.AWS, "us-east-1")
	if use1 == nil || use1.Nodes != 3 || use1.Requests != 15 {
		t.Errorf("us-east-1 row = %+v", use1)
	}
	euw1 := find(providers.AWS, "eu-west-1")
	if euw1 == nil || euw1.Nodes != 1 || euw1.Requests != 7 {
		t.Errorf("eu-west-1 row = %+v", euw1)
	}
	if find(providers.Aliyun, "cn-shanghai") == nil {
		t.Error("Aliyun region row missing")
	}
}
