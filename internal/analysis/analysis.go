// Package analysis computes the usage statistics of paper §4 from an
// aggregated PDNS dataset and a probing campaign: the adoption trends of
// Figure 3, the per-provider invocation trends of Figure 4, the invocation
// CDF/histogram of Figure 5, the lifespan and activity-density statistics of
// §4.3, the Table 2 resolution rollup, and the HTTP status distribution of
// Figure 6.
package analysis

import (
	"math"
	"sort"

	"repro/internal/pdns"
	"repro/internal/providers"
)

// MonthlyPoint is one month of a trend series.
type MonthlyPoint struct {
	Month pdns.Date // first day of month
	Value int64
}

// MonthlySeries is a dense, chronologically sorted series.
type MonthlySeries []MonthlyPoint

// NewFQDNsByMonth rolls the daily first-seen counts of the aggregate up to
// monthly totals (Figure 3: “newly observed FQDNs”, monthly cumulative of
// daily additions).
func NewFQDNsByMonth(ag *pdns.Aggregate) MonthlySeries {
	byMonth := map[pdns.Date]int64{}
	for day, n := range ag.NewPerDay {
		byMonth[day.Month()] += int64(n)
	}
	return denseSeries(byMonth, ag.Window)
}

// CumulativeFQDNs integrates the monthly new-FQDN series.
func CumulativeFQDNs(s MonthlySeries) MonthlySeries {
	out := make(MonthlySeries, len(s))
	var acc int64
	for i, p := range s {
		acc += p.Value
		out[i] = MonthlyPoint{Month: p.Month, Value: acc}
	}
	return out
}

// InvocationTrend returns each provider's monthly request series (Figure 4).
func InvocationTrend(ag *pdns.Aggregate) map[providers.ID]MonthlySeries {
	out := make(map[providers.ID]MonthlySeries, len(ag.MonthlyReq))
	for id, m := range ag.MonthlyReq {
		out[id] = denseSeries(m, ag.Window)
	}
	return out
}

func denseSeries(byMonth map[pdns.Date]int64, w pdns.Window) MonthlySeries {
	var out MonthlySeries
	for m := w.Start.Month(); m <= w.End; {
		out = append(out, MonthlyPoint{Month: m, Value: byMonth[m]})
		t := m.Time().AddDate(0, 1, 0)
		m = pdns.DateOf(t)
	}
	return out
}

// Event is an annotation on the trend figures (provider launches, policy
// changes). The markers reproduce the callouts of Figures 3, 4 and 7.
type Event struct {
	Month pdns.Date
	Label string
}

// Events returns the paper's annotated event calendar.
func Events() []Event {
	return []Event{
		{pdns.NewDate(2022, 4, 1), "Release of AWS Function URL"},
		{pdns.NewDate(2022, 4, 1), "Release of Google2 (Feb 2022)"},
		{pdns.NewDate(2022, 8, 1), "Release of Kingsoft Function URL"},
		{pdns.NewDate(2022, 11, 1), "ChatGPT released Nov 30, 2022"},
		{pdns.NewDate(2023, 8, 1), "Release of Tencent Function URL"},
		{pdns.NewDate(2023, 8, 1), "Google2 becomes default option"},
		{pdns.NewDate(2024, 1, 1), "Tencent changes free-trial quota"},
	}
}

// FrequencyStats summarises the per-function invocation distribution
// (Figure 5 and §4.3).
type FrequencyStats struct {
	Functions   int
	FracUnder5  float64 // invoked fewer than 5 times
	FracOver100 float64 // invoked more than 100 times
	// Histogram buckets log10(total requests) into tenth-of-a-decade bins.
	Histogram []HistBin
	// CDF holds (log10(requests), cumulative fraction) knots.
	CDF []CDFPoint
	// ModalLow/ModalHigh bound the densest histogram bin in request counts.
	ModalLow, ModalHigh float64
	// ModalFrac is the fraction of total requests... of functions within
	// the paper's reported concentration band [3.35, 6.13].
	ModalFrac float64
}

// HistBin is one log10 histogram bucket.
type HistBin struct {
	Lo, Hi float64 // log10 bounds
	Count  int
}

// CDFPoint is one knot of the empirical CDF.
type CDFPoint struct {
	Log10Req float64
	Frac     float64
}

// Frequency computes Figure 5 over the per-function stats (Google, IBM and
// Oracle excluded upstream by PerFunctionStats).
func Frequency(fns []*pdns.FQDNStats) FrequencyStats {
	out := FrequencyStats{Functions: len(fns)}
	if len(fns) == 0 {
		return out
	}
	logs := make([]float64, 0, len(fns))
	var under5, over100, inBand int
	for _, f := range fns {
		if f.TotalRequest < 5 {
			under5++
		}
		if f.TotalRequest > 100 {
			over100++
		}
		if f.TotalRequest >= 3 && f.TotalRequest <= 6 {
			inBand++
		}
		logs = append(logs, math.Log10(float64(f.TotalRequest)))
	}
	sort.Float64s(logs)
	out.FracUnder5 = float64(under5) / float64(len(fns))
	out.FracOver100 = float64(over100) / float64(len(fns))
	out.ModalFrac = float64(inBand) / float64(len(fns))

	// Histogram at 0.175-decade bins (the paper's band 3.35–6.13 requests
	// spans log10 0.525–0.7875, i.e. 1.5 bins at this width).
	const binW = 0.175
	maxLog := logs[len(logs)-1]
	nBins := int(maxLog/binW) + 1
	bins := make([]HistBin, nBins)
	for i := range bins {
		bins[i] = HistBin{Lo: float64(i) * binW, Hi: float64(i+1) * binW}
	}
	for _, l := range logs {
		i := int(l / binW)
		if i >= nBins {
			i = nBins - 1
		}
		bins[i].Count++
	}
	out.Histogram = bins
	best := 0
	for i, b := range bins {
		if b.Count > bins[best].Count {
			best = i
		}
		_ = i
	}
	out.ModalLow = math.Pow(10, bins[best].Lo)
	out.ModalHigh = math.Pow(10, bins[best].Hi)

	// CDF knots at every 2% of the population.
	step := len(logs) / 50
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(logs); i += step {
		out.CDF = append(out.CDF, CDFPoint{Log10Req: logs[i], Frac: float64(i+1) / float64(len(logs))})
	}
	out.CDF = append(out.CDF, CDFPoint{Log10Req: logs[len(logs)-1], Frac: 1})
	return out
}

// LifespanStats summarises §4.3's lifespan and activity-density analysis.
type LifespanStats struct {
	Functions      int
	FracSingleDay  float64 // active exactly one day
	FracUnder5Days float64 // lifespan < 5 days
	FracFullWindow float64 // active across the whole window
	MeanDays       float64
	FracDensityOne float64 // invoked on every day of their lifespan
	// LongLivedRare counts functions alive > 90% of the window with at
	// most two invocations (the paper found four).
	LongLivedRare int
}

// Lifespan computes §4.3 over per-function stats.
func Lifespan(fns []*pdns.FQDNStats, w pdns.Window) LifespanStats {
	out := LifespanStats{Functions: len(fns)}
	if len(fns) == 0 {
		return out
	}
	var single, under5, full, denseOne, longRare int
	var sum float64
	for _, f := range fns {
		l := f.Lifespan()
		sum += float64(l)
		if l == 1 {
			single++
		}
		if l < 5 {
			under5++
		}
		if l >= w.Days() {
			full++
		}
		if f.ActivityDensity() >= 1 {
			denseOne++
		}
		if l > int(0.9*float64(w.Days())) && f.TotalRequest <= 2 {
			longRare++
		}
	}
	n := float64(len(fns))
	out.FracSingleDay = float64(single) / n
	out.FracUnder5Days = float64(under5) / n
	out.FracFullWindow = float64(full) / n
	out.MeanDays = sum / n
	out.FracDensityOne = float64(denseOne) / n
	out.LongLivedRare = longRare
	return out
}

// Table2Row is one provider row of Table 2.
type Table2Row struct {
	Provider providers.ID
	Domains  int
	Requests int64
	Regions  int

	AShare, CNAMEShare, AAAAShare float64
	ARData, CNAMERData, AAAARData int
	ATop10, CNAMETop10, AAAATop10 float64
}

// Table2 builds the resolution rollup (Table 2) from the aggregate, in the
// paper's provider order.
func Table2(ag *pdns.Aggregate) []Table2Row {
	order := []providers.ID{
		providers.Aliyun, providers.Baidu, providers.Tencent, providers.Kingsoft,
		providers.AWS, providers.Google, providers.Google2, providers.IBM, providers.Oracle,
	}
	var out []Table2Row
	for _, id := range order {
		ps, ok := ag.ByProvider[id]
		if !ok {
			continue
		}
		row := Table2Row{
			Provider:   id,
			Domains:    ps.Domains,
			Requests:   ps.Requests,
			Regions:    len(ps.Regions),
			AShare:     ps.RTypeShare(pdns.TypeA),
			CNAMEShare: ps.RTypeShare(pdns.TypeCNAME),
			AAAAShare:  ps.RTypeShare(pdns.TypeAAAA),
		}
		if rs := ps.ByRType[pdns.TypeA]; rs != nil {
			row.ARData, row.ATop10 = rs.RDataCnt(), rs.Top10Share()
		}
		if rs := ps.ByRType[pdns.TypeCNAME]; rs != nil {
			row.CNAMERData, row.CNAMETop10 = rs.RDataCnt(), rs.Top10Share()
		}
		if rs := ps.ByRType[pdns.TypeAAAA]; rs != nil {
			row.AAAARData, row.AAAATop10 = rs.RDataCnt(), rs.Top10Share()
		}
		out = append(out, row)
	}
	return out
}

// ThirdPartyRow summarises one provider's reliance on external network
// infrastructure for ingress (Finding 3), measured from resolution data.
type ThirdPartyRow struct {
	Provider providers.ID
	// Shares of the provider's requests answered by each operator class.
	ProviderShare float64
	ThirdParty    map[string]float64
}

// ThirdPartyClassifier attributes one rdata value to an operator label;
// empty string means provider-owned. Injected so analysis does not bind to
// the simulator's address plan.
type ThirdPartyClassifier func(rdata string) string

// ThirdParty measures per-provider third-party ingress dependence from the
// aggregate's rdata distributions.
func ThirdParty(ag *pdns.Aggregate, classify ThirdPartyClassifier) []ThirdPartyRow {
	order := []providers.ID{
		providers.Aliyun, providers.Baidu, providers.Tencent, providers.Kingsoft,
		providers.AWS, providers.Google, providers.Google2, providers.IBM, providers.Oracle,
	}
	var out []ThirdPartyRow
	for _, id := range order {
		ps, ok := ag.ByProvider[id]
		if !ok {
			continue
		}
		row := ThirdPartyRow{Provider: id, ThirdParty: map[string]float64{}}
		var total, own int64
		third := map[string]int64{}
		for _, rs := range ps.ByRType {
			for rdata, cnt := range rs.ByRData {
				total += cnt
				if label := classify(rdata); label == "" {
					own += cnt
				} else {
					third[label] += cnt
				}
			}
		}
		if total == 0 {
			continue
		}
		row.ProviderShare = float64(own) / float64(total)
		for label, cnt := range third {
			row.ThirdParty[label] = float64(cnt) / float64(total)
		}
		out = append(out, row)
	}
	return out
}

// RegionNodes summarises the ingress concentration of Finding 2: per
// (provider, region), the number of distinct resolution results whose owning
// function sits in that region. Concentrated providers route a region's
// functions to 1–3 fixed nodes; AWS exposes thousands.
type RegionNodes struct {
	Provider providers.ID
	Region   string
	Nodes    int
	Requests int64
}

// IngressConcentration computes per-region distinct node counts from the
// per-function stats and raw records. Because the Aggregate keeps rdata
// distributions per provider (not per region), this pass re-scans records.
func IngressConcentration(records []pdns.Record, matcher *providers.Matcher) []RegionNodes {
	if matcher == nil {
		matcher = providers.NewMatcher(nil)
	}
	type key struct {
		id     providers.ID
		region string
	}
	nodes := map[key]map[string]struct{}{}
	reqs := map[key]int64{}
	for i := range records {
		r := &records[i]
		in, ok := matcher.Identify(r.FQDN)
		if !ok {
			continue
		}
		region := ""
		if p, ok := in.Parse(r.FQDN); ok {
			region = p.Region
		}
		k := key{in.ID, region}
		if nodes[k] == nil {
			nodes[k] = map[string]struct{}{}
		}
		nodes[k][r.RData] = struct{}{}
		reqs[k] += r.RequestCnt
	}
	out := make([]RegionNodes, 0, len(nodes))
	for k, set := range nodes {
		out = append(out, RegionNodes{Provider: k.id, Region: k.region, Nodes: len(set), Requests: reqs[k]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Provider != out[j].Provider {
			return out[i].Provider < out[j].Provider
		}
		return out[i].Region < out[j].Region
	})
	return out
}
