// Package events simulates the non-HTTP invocation paths of paper §2.2:
// cloud-storage events, message queues (the paper cites AWS SQS and Google
// Pub/Sub), and scheduled tasks. Event-triggered functions expose no HTTP
// endpoint and therefore cannot be observed by the paper's methodology —
// this package exists so the substrate is complete and so that boundary is
// encoded in tests rather than assumed.
//
// All components run on an explicit simulated clock, like the faas platform.
package events

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/faas"
)

// Event is the payload delivered to a triggered function.
type Event struct {
	Source string          `json:"source"` // "storage", "queue", "schedule"
	Type   string          `json:"type"`   // e.g. "ObjectCreated"
	Time   time.Time       `json:"time"`
	Detail json.RawMessage `json:"detail"`
}

// Target names a function bound to a trigger. Event-triggered functions are
// addressed by an internal name, not a function URL.
type Target struct {
	Platform *faas.Platform
	Name     string // platform key, e.g. "internal://img-resize"
}

// invoke delivers one event to the target as a POST with a JSON body, the
// provider-normalised shape functions receive.
func (t Target) invoke(ev Event) (faas.Response, error) {
	body, err := json.Marshal(ev)
	if err != nil {
		return faas.Response{}, err
	}
	resp, _, err := t.Platform.Invoke(t.Name, faas.Request{
		Method:  "POST",
		Path:    "/_event",
		Headers: map[string]string{"Content-Type": "application/json"},
		Body:    body,
		Time:    ev.Time,
	})
	return resp, err
}

// ---- Cloud storage trigger ----

// Storage is an object store whose mutations trigger bound functions
// (paper: "file uploads to cloud storage").
type Storage struct {
	mu       sync.Mutex
	objects  map[string][]byte
	onCreate []Target
	onDelete []Target
	// Deliveries counts trigger invocations, successful or not.
	deliveries int64
}

// NewStorage returns an empty bucket.
func NewStorage() *Storage {
	return &Storage{objects: make(map[string][]byte)}
}

// OnObjectCreated binds a function to object-creation events.
func (s *Storage) OnObjectCreated(t Target) {
	s.mu.Lock()
	s.onCreate = append(s.onCreate, t)
	s.mu.Unlock()
}

// OnObjectDeleted binds a function to object-deletion events.
func (s *Storage) OnObjectDeleted(t Target) {
	s.mu.Lock()
	s.onDelete = append(s.onDelete, t)
	s.mu.Unlock()
}

// Put stores an object at the simulated time and fires creation triggers.
func (s *Storage) Put(key string, data []byte, now time.Time) error {
	s.mu.Lock()
	s.objects[key] = append([]byte(nil), data...)
	targets := append([]Target(nil), s.onCreate...)
	s.mu.Unlock()
	return s.fire(targets, "ObjectCreated", key, len(data), now)
}

// Delete removes an object and fires deletion triggers. Deleting a missing
// key is a no-op that fires nothing, matching real stores.
func (s *Storage) Delete(key string, now time.Time) error {
	s.mu.Lock()
	_, existed := s.objects[key]
	delete(s.objects, key)
	targets := append([]Target(nil), s.onDelete...)
	s.mu.Unlock()
	if !existed {
		return nil
	}
	return s.fire(targets, "ObjectDeleted", key, 0, now)
}

// Get fetches an object.
func (s *Storage) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.objects[key]
	return b, ok
}

// Deliveries reports how many trigger invocations fired.
func (s *Storage) Deliveries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deliveries
}

func (s *Storage) fire(targets []Target, typ, key string, size int, now time.Time) error {
	detail, _ := json.Marshal(map[string]interface{}{"key": key, "size": size})
	var firstErr error
	for _, t := range targets {
		s.mu.Lock()
		s.deliveries++
		s.mu.Unlock()
		ev := Event{Source: "storage", Type: typ, Time: now, Detail: detail}
		if _, err := t.invoke(ev); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("events: storage trigger %s: %w", t.Name, err)
		}
	}
	return firstErr
}

// ---- Message queue trigger ----

// Queue is a message queue with at-least-once delivery to one bound
// function, retries, and a dead-letter queue — the SQS/Pub-Sub shape.
type Queue struct {
	// MaxReceive bounds delivery attempts before a message moves to the
	// dead-letter queue; default 3.
	MaxReceive int

	mu       sync.Mutex
	pending  []message
	dead     []message
	consumer *Target
	stats    QueueStats
}

type message struct {
	body     []byte
	attempts int
}

// QueueStats counts queue activity.
type QueueStats struct {
	Sent       int64
	Delivered  int64
	Retried    int64
	DeadLetter int64
}

// NewQueue returns an empty queue.
func NewQueue() *Queue { return &Queue{MaxReceive: 3} }

// Subscribe binds the consuming function; only one consumer is supported,
// like a Lambda event-source mapping.
func (q *Queue) Subscribe(t Target) {
	q.mu.Lock()
	q.consumer = &t
	q.mu.Unlock()
}

// Send enqueues a message.
func (q *Queue) Send(body []byte) {
	q.mu.Lock()
	q.pending = append(q.pending, message{body: append([]byte(nil), body...)})
	q.stats.Sent++
	q.mu.Unlock()
}

// Poll delivers up to batch pending messages at the simulated time. A
// message whose invocation fails or returns 5xx is retried on the next
// Poll, up to MaxReceive attempts, then dead-lettered. It returns the
// number of successful deliveries.
func (q *Queue) Poll(batch int, now time.Time) int {
	q.mu.Lock()
	consumer := q.consumer
	n := batch
	if n > len(q.pending) {
		n = len(q.pending)
	}
	msgs := q.pending[:n]
	q.pending = q.pending[n:]
	q.mu.Unlock()
	if consumer == nil || n == 0 {
		// Without a consumer the messages stay pending.
		if consumer == nil && n > 0 {
			q.mu.Lock()
			q.pending = append(msgs, q.pending...)
			q.mu.Unlock()
		}
		return 0
	}

	delivered := 0
	for _, m := range msgs {
		m.attempts++
		ev := Event{Source: "queue", Type: "Message", Time: now, Detail: json.RawMessage(mustJSON(string(m.body)))}
		resp, err := consumer.invoke(ev)
		q.mu.Lock()
		switch {
		case err == nil && resp.Status < 500:
			q.stats.Delivered++
			delivered++
		case m.attempts >= q.MaxReceive:
			q.stats.DeadLetter++
			q.dead = append(q.dead, m)
		default:
			q.stats.Retried++
			q.pending = append(q.pending, m)
		}
		q.mu.Unlock()
	}
	return delivered
}

// Stats returns a snapshot.
func (q *Queue) Stats() QueueStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// DeadLetters returns the bodies of dead-lettered messages.
func (q *Queue) DeadLetters() [][]byte {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([][]byte, len(q.dead))
	for i, m := range q.dead {
		out[i] = m.body
	}
	return out
}

// Pending returns the number of undelivered messages.
func (q *Queue) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.pending)
}

func mustJSON(s string) []byte {
	b, _ := json.Marshal(s)
	return b
}

// ---- Scheduled tasks ----

// Scheduler fires bound functions on fixed intervals of simulated time
// (paper: "scheduled tasks").
type Scheduler struct {
	mu    sync.Mutex
	tasks []*task
}

type task struct {
	target   Target
	interval time.Duration
	next     time.Time
	fired    int64
}

// NewScheduler returns an empty scheduler.
func NewScheduler() *Scheduler { return &Scheduler{} }

// Every schedules target at the interval, first firing at start+interval.
func (s *Scheduler) Every(interval time.Duration, start time.Time, target Target) error {
	if interval <= 0 {
		return fmt.Errorf("events: non-positive interval %v", interval)
	}
	s.mu.Lock()
	s.tasks = append(s.tasks, &task{target: target, interval: interval, next: start.Add(interval)})
	s.mu.Unlock()
	return nil
}

// AdvanceTo fires every due task up to and including now, in chronological
// order, and returns the number of invocations made.
func (s *Scheduler) AdvanceTo(now time.Time) int {
	fired := 0
	for {
		s.mu.Lock()
		var due *task
		for _, t := range s.tasks {
			if !t.next.After(now) && (due == nil || t.next.Before(due.next)) {
				due = t
			}
		}
		if due == nil {
			s.mu.Unlock()
			return fired
		}
		at := due.next
		due.next = due.next.Add(due.interval)
		due.fired++
		target := due.target
		s.mu.Unlock()

		detail, _ := json.Marshal(map[string]string{"scheduled": at.UTC().Format(time.RFC3339)})
		target.invoke(Event{Source: "schedule", Type: "Tick", Time: at, Detail: detail})
		fired++
	}
}
