package events

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/providers"
)

var t0 = time.Date(2023, time.March, 10, 9, 0, 0, 0, time.UTC)

// deployCounter deploys a function that records the events it receives.
func deployCounter(name string, fail *int32) (*faas.Platform, Target, *[]Event) {
	p := faas.NewPlatform()
	var seen []Event
	p.Deploy(name, providers.AWS, "us-east-1", faas.Config{}, func(ctx *faas.InvokeContext) faas.Response {
		if fail != nil && atomic.LoadInt32(fail) > 0 {
			atomic.AddInt32(fail, -1)
			return faas.Response{Status: 502, Body: []byte("boom")}
		}
		var ev Event
		json.Unmarshal(ctx.Request.Body, &ev)
		seen = append(seen, ev)
		return faas.Response{Status: 200, Body: []byte("ok")}
	}, t0)
	return p, Target{Platform: p, Name: name}, &seen
}

func TestStorageTriggers(t *testing.T) {
	_, target, seen := deployCounter("internal://thumbnailer", nil)
	s := NewStorage()
	s.OnObjectCreated(target)
	s.OnObjectDeleted(target)

	if err := s.Put("photos/cat.jpg", []byte("JPEGDATA"), t0); err != nil {
		t.Fatal(err)
	}
	if b, ok := s.Get("photos/cat.jpg"); !ok || string(b) != "JPEGDATA" {
		t.Fatal("object not stored")
	}
	if err := s.Delete("photos/cat.jpg", t0.Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	// Deleting a missing key fires nothing.
	s.Delete("photos/none.jpg", t0.Add(2*time.Minute))

	if len(*seen) != 2 {
		t.Fatalf("events = %d, want 2 (create + delete)", len(*seen))
	}
	if (*seen)[0].Type != "ObjectCreated" || (*seen)[1].Type != "ObjectDeleted" {
		t.Errorf("event types = %s, %s", (*seen)[0].Type, (*seen)[1].Type)
	}
	var detail struct {
		Key  string `json:"key"`
		Size int    `json:"size"`
	}
	json.Unmarshal((*seen)[0].Detail, &detail)
	if detail.Key != "photos/cat.jpg" || detail.Size != 8 {
		t.Errorf("detail = %+v", detail)
	}
	if s.Deliveries() != 2 {
		t.Errorf("deliveries = %d", s.Deliveries())
	}
}

func TestStorageTriggerTargetGone(t *testing.T) {
	p := faas.NewPlatform() // nothing deployed
	s := NewStorage()
	s.OnObjectCreated(Target{Platform: p, Name: "internal://ghost"})
	if err := s.Put("k", []byte("v"), t0); err == nil {
		t.Error("missing target error swallowed")
	}
}

func TestQueueDelivery(t *testing.T) {
	_, target, seen := deployCounter("internal://worker", nil)
	q := NewQueue()
	q.Subscribe(target)
	for i := 0; i < 5; i++ {
		q.Send([]byte("job"))
	}
	if got := q.Poll(3, t0); got != 3 {
		t.Errorf("first poll delivered %d, want 3", got)
	}
	if got := q.Poll(10, t0.Add(time.Second)); got != 2 {
		t.Errorf("second poll delivered %d, want 2", got)
	}
	if q.Pending() != 0 || len(*seen) != 5 {
		t.Errorf("pending=%d seen=%d", q.Pending(), len(*seen))
	}
	st := q.Stats()
	if st.Sent != 5 || st.Delivered != 5 || st.Retried != 0 || st.DeadLetter != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueRetryAndDeadLetter(t *testing.T) {
	fails := int32(10) // fail more times than MaxReceive allows
	_, target, _ := deployCounter("internal://flaky", &fails)
	q := NewQueue()
	q.MaxReceive = 3
	q.Subscribe(target)
	q.Send([]byte("poison"))
	for i := 0; i < 5; i++ {
		q.Poll(1, t0.Add(time.Duration(i)*time.Second))
	}
	st := q.Stats()
	if st.DeadLetter != 1 {
		t.Fatalf("stats = %+v, want 1 dead letter", st)
	}
	if st.Retried != 2 { // attempts 1 and 2 requeued, attempt 3 dead-letters
		t.Errorf("retried = %d, want 2", st.Retried)
	}
	dls := q.DeadLetters()
	if len(dls) != 1 || string(dls[0]) != "poison" {
		t.Errorf("dead letters = %q", dls)
	}
}

func TestQueueTransientFailureRecovers(t *testing.T) {
	fails := int32(1)
	_, target, seen := deployCounter("internal://once-flaky", &fails)
	q := NewQueue()
	q.Subscribe(target)
	q.Send([]byte("job"))
	q.Poll(1, t0)                  // fails, requeued
	q.Poll(1, t0.Add(time.Second)) // succeeds
	if len(*seen) != 1 {
		t.Errorf("delivered %d times, want 1", len(*seen))
	}
	if st := q.Stats(); st.Delivered != 1 || st.Retried != 1 || st.DeadLetter != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueWithoutConsumer(t *testing.T) {
	q := NewQueue()
	q.Send([]byte("orphan"))
	if got := q.Poll(5, t0); got != 0 {
		t.Errorf("consumerless poll delivered %d", got)
	}
	if q.Pending() != 1 {
		t.Errorf("message lost without consumer: pending=%d", q.Pending())
	}
}

func TestSchedulerFiresInOrder(t *testing.T) {
	_, target, seen := deployCounter("internal://cron", nil)
	s := NewScheduler()
	if err := s.Every(time.Hour, t0, target); err != nil {
		t.Fatal(err)
	}
	if err := s.Every(0, t0, target); err == nil {
		t.Error("zero interval accepted")
	}
	fired := s.AdvanceTo(t0.Add(3*time.Hour + time.Minute))
	if fired != 3 {
		t.Fatalf("fired %d, want 3", fired)
	}
	// Ticks are chronological and hourly.
	for i, ev := range *seen {
		want := t0.Add(time.Duration(i+1) * time.Hour)
		if !ev.Time.Equal(want) {
			t.Errorf("tick %d at %v, want %v", i, ev.Time, want)
		}
	}
	// Advancing to the same instant fires nothing new.
	if again := s.AdvanceTo(t0.Add(3*time.Hour + time.Minute)); again != 0 {
		t.Errorf("re-advance fired %d", again)
	}
}

func TestSchedulerMultipleTasks(t *testing.T) {
	_, target, seen := deployCounter("internal://multi", nil)
	s := NewScheduler()
	s.Every(30*time.Minute, t0, target)
	s.Every(time.Hour, t0, target)
	s.AdvanceTo(t0.Add(time.Hour))
	// 30m task fires at :30 and :60; 1h task at :60.
	if len(*seen) != 3 {
		t.Fatalf("fired %d, want 3", len(*seen))
	}
	for i := 1; i < len(*seen); i++ {
		if (*seen)[i].Time.Before((*seen)[i-1].Time) {
			t.Error("ticks out of order")
		}
	}
}

// TestEventFunctionsInvisibleToMeasurement encodes the §2.2 boundary: an
// event-triggered function has no function URL, so its name matches no
// provider pattern and the study cannot observe it.
func TestEventFunctionsInvisibleToMeasurement(t *testing.T) {
	m := providers.NewMatcher(nil)
	for _, name := range []string{"internal://worker", "arn:aws:lambda:us-east-1:123:function:etl"} {
		if in, ok := m.Identify(name); ok {
			t.Errorf("event function %q identified as %s", name, in.Name)
		}
	}
}

// TestEventPayloadShape checks the normalised event envelope.
func TestEventPayloadShape(t *testing.T) {
	p := faas.NewPlatform()
	var raw []byte
	p.Deploy("internal://echo", providers.AWS, "us-east-1", faas.Config{}, func(ctx *faas.InvokeContext) faas.Response {
		raw = ctx.Request.Body
		if ctx.Request.Method != "POST" {
			t.Errorf("event delivered as %s", ctx.Request.Method)
		}
		return faas.Response{Status: 200}
	}, t0)
	q := NewQueue()
	q.Subscribe(Target{Platform: p, Name: "internal://echo"})
	q.Send([]byte("payload-text"))
	q.Poll(1, t0)
	var ev Event
	if err := json.Unmarshal(raw, &ev); err != nil {
		t.Fatalf("event not JSON: %v (%s)", err, raw)
	}
	if ev.Source != "queue" || ev.Type != "Message" {
		t.Errorf("envelope = %+v", ev)
	}
	if !strings.Contains(string(ev.Detail), "payload-text") {
		t.Errorf("detail = %s", ev.Detail)
	}
}
