package health

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestEvaluateRateRulePerGroup(t *testing.T) {
	r := obs.NewRegistry()
	v := r.CounterVec("probe_outcomes_total", "provider", "outcome", "attempt_class")
	v.With("aws", "ok", "first").Add(90)
	v.With("aws", "conn", "first").Add(10) // 10% conn failures
	v.With("gcp", "ok", "first").Add(100)  // clean
	v.With("tiny", "conn", "first").Add(3) // below MinSamples

	rules := []Rule{{
		Name:   "conn-rate",
		Metric: "probe_outcomes_total",
		Match:  map[string]string{"outcome": "conn"},
		Per:    "provider", Den: "probe_outcomes_total",
		Max: 0.02, MinSamples: 50,
	}}
	res := Evaluate(r.Snapshot(), rules, "run")
	if len(res) != 2 {
		t.Fatalf("results = %+v, want 2 groups (tiny suppressed by MinSamples)", res)
	}
	byGroup := map[string]Result{}
	for _, re := range res {
		byGroup[re.Group] = re
	}
	if !byGroup["aws"].Fired || byGroup["aws"].Value != 0.1 {
		t.Fatalf("aws = %+v, want fired at 0.1", byGroup["aws"])
	}
	if byGroup["gcp"].Fired || byGroup["gcp"].Value != 0 {
		t.Fatalf("gcp = %+v, want clean", byGroup["gcp"])
	}
}

func TestEvaluateQuantileRule(t *testing.T) {
	r := obs.NewRegistry()
	hv := r.HistogramVec("probe_request_seconds", []float64{0.5, 1, 2, 4}, "provider")
	for i := 0; i < 100; i++ {
		hv.With("slow").Observe(3) // p99 = 4-bucket upper bound region
		hv.With("fast").Observe(0.1)
	}
	rules := []Rule{{
		Name:   "p99",
		Metric: "probe_request_seconds",
		Per:    "provider", Quantile: 0.99,
		Max: 1, MinSamples: 50,
	}}
	res := Evaluate(r.Snapshot(), rules, "run")
	byGroup := map[string]Result{}
	for _, re := range res {
		byGroup[re.Group] = re
	}
	if !byGroup["slow"].Fired {
		t.Fatalf("slow = %+v, want fired (p99 > 1s)", byGroup["slow"])
	}
	if byGroup["fast"].Fired {
		t.Fatalf("fast = %+v, want clean", byGroup["fast"])
	}
}

// A raw-threshold rule falls back to the plain counter when no vector of
// that name exists, and is skipped entirely when the metric is absent.
func TestEvaluateRawCounterFallback(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("fault_breaker_opens_total").Add(2)
	rules := []Rule{
		{Name: "breaker", Metric: "fault_breaker_opens_total", Max: 0},
		{Name: "absent", Metric: "no_such_metric", Max: 0},
	}
	res := Evaluate(r.Snapshot(), rules, "run")
	if len(res) != 1 || res[0].Rule != "breaker" || !res[0].Fired || res[0].Value != 2 {
		t.Fatalf("results = %+v, want one fired breaker result", res)
	}
}

// The monitor's rolling-window evaluation works on snapshot deltas: a burst
// of failures confined to the window fires even though lifetime totals
// stay modest, and the first firing per (rule, group) lands in the event
// log exactly once.
func TestMonitorTickAndFinalize(t *testing.T) {
	r := obs.NewRegistry()
	elog := obs.NewEventLog()
	v := r.CounterVec("probe_outcomes_total", "provider", "outcome", "attempt_class")
	rules := []Rule{{
		Name:   "conn-rate",
		Metric: "probe_outcomes_total",
		Match:  map[string]string{"outcome": "conn"},
		Per:    "provider", Den: "probe_outcomes_total",
		Max: 0.02, MinSamples: 50,
	}}
	m := NewMonitor(r, elog, rules)

	// Drive ticks by hand — no goroutine, no wall-clock dependence.
	base := time.Unix(1000, 0)
	m.tick(base)
	v.With("aws", "ok", "first").Add(40)
	v.With("aws", "conn", "first").Add(20) // 33% conn within the window
	m.tick(base.Add(time.Second))

	res := m.Finalize()
	if !Fired(res) {
		t.Fatalf("results = %+v, want the aws conn-rate firing to survive finalize", res)
	}
	var fired *Result
	for i := range res {
		if res[i].Fired {
			fired = &res[i]
		}
	}
	if fired.Group != "aws" {
		t.Fatalf("firing = %+v, want group aws", fired)
	}

	// The event was logged at tick time, against the rolling window, and the
	// cumulative re-firing at Finalize deduplicated instead of double-logging.
	var events strings.Builder
	if err := elog.WriteJSONL(&events); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(events.String(), `"type":"health"`); got != 1 {
		t.Fatalf("health events = %d, want exactly 1:\n%s", got, events.String())
	}
	if !strings.Contains(events.String(), `{"key":"window","value":"10s"}`) {
		t.Fatalf("health event lacks the rolling window:\n%s", events.String())
	}
}

// A transient breach stays fired in the final table even when the cumulative
// whole-run value recovers below the bound.
func TestMonitorTransientBreachSticks(t *testing.T) {
	r := obs.NewRegistry()
	elog := obs.NewEventLog()
	v := r.CounterVec("probe_outcomes_total", "provider", "outcome", "attempt_class")
	rules := []Rule{{
		Name:   "conn-rate",
		Metric: "probe_outcomes_total",
		Match:  map[string]string{"outcome": "conn"},
		Per:    "provider", Den: "probe_outcomes_total",
		Max: 0.02, MinSamples: 50,
	}}
	m := NewMonitor(r, elog, rules)
	base := time.Unix(2000, 0)
	m.tick(base)
	v.With("aws", "conn", "first").Add(30)
	v.With("aws", "ok", "first").Add(30)
	m.tick(base.Add(time.Second)) // 50% conn in the window: fires
	// Recovery: flood of successes pushes the cumulative rate under 2%.
	v.With("aws", "ok", "first").Add(100000)

	res := m.Finalize()
	if !Fired(res) {
		t.Fatalf("results = %+v, want the transient breach kept fired", res)
	}
}

func TestMonitorNilSafe(t *testing.T) {
	var m *Monitor
	m.Start()
	if res := m.Finalize(); res != nil {
		t.Fatalf("nil monitor finalize = %+v", res)
	}
}

// The default rule set stays quiet on an all-success registry and fires the
// feed-drop-rate rule once the drop share passes its bound.
func TestDefaultRulesFeedDrop(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("pdns_records_scanned_total").Add(10000)
	r.Counter("pdns_records_dropped_total").Add(0)
	rules := DefaultRules(2 * time.Second)
	if Fired(Evaluate(r.Snapshot(), rules, "run")) {
		t.Fatal("clean feed fired a default rule")
	}
	r.Counter("pdns_records_dropped_total").Add(200) // 2% drops
	if !Fired(Evaluate(r.Snapshot(), rules, "run")) {
		t.Fatal("2% feed drop rate did not fire feed-drop-rate")
	}
}

// TestMonitorTimelineHooks: with SetWindowIndex/SetOnFiring wired, each
// first firing is stamped with the current timeline window, the event log
// carries a window_index attribute, and the hook sees the firing exactly
// once (the cumulative re-firing at Finalize deduplicates).
func TestMonitorTimelineHooks(t *testing.T) {
	r := obs.NewRegistry()
	elog := obs.NewEventLog()
	m := NewMonitor(r, elog, []Rule{{Name: "quarantined", Metric: "pdns_reader_quarantined_total", Max: 0}})
	m.SetWindowIndex(func() int64 { return 7 })
	var hooked []Result
	m.SetOnFiring(func(res Result) { hooked = append(hooked, res) })

	base := time.Unix(1000, 0)
	m.tick(base)
	r.Counter("pdns_reader_quarantined_total").Add(3)
	m.tick(base.Add(time.Second))
	res := m.Finalize()

	if !Fired(res) {
		t.Fatalf("results = %+v, want the quarantined rule fired", res)
	}
	if len(hooked) != 1 || hooked[0].Rule != "quarantined" || hooked[0].WindowIndex != 7 {
		t.Fatalf("onFiring saw %+v, want one firing stamped window 7", hooked)
	}
	for _, rr := range res {
		if rr.Fired && rr.WindowIndex != 7 {
			t.Fatalf("final result %+v lost its window stamp", rr)
		}
	}
	var events strings.Builder
	if err := elog.WriteJSONL(&events); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(events.String(), `{"key":"window_index","value":"7"}`) {
		t.Fatalf("health event lacks window_index:\n%s", events.String())
	}
	// Unwired monitors stay exactly as before: no stamp, no attribute.
	var nilMon *Monitor
	nilMon.SetWindowIndex(func() int64 { return 1 })
	nilMon.SetOnFiring(func(Result) {})
}
