// Package health evaluates declarative SLO rules against the observability
// registry while a run executes. Rules are ratios, quantile bounds, or raw
// thresholds over (possibly labeled) metrics, optionally grouped by one
// label — "conn-failure share per provider below 2%", "probe p99 per
// provider under 3x the timeout", "zero quarantined feed lines". A Monitor
// samples the registry on a fixed interval, evaluates every rule over a
// rolling window of snapshot deltas, and emits a structured health event
// into the run's event log the first time a (rule, group) fires; Finalize
// re-evaluates cumulatively and returns the full per-group result table for
// the report.
//
// Everything here reads the registry and writes the event log — the two
// machine-varying surfaces of a run. Nothing feeds the deterministic run
// summary, so enabling the monitor cannot move a run ID or a golden
// fingerprint.
package health

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Rule is one declarative SLO bound. Metric names a counter, counter
// vector, or histogram vector in the registry; the rule fires for a group
// when its evaluated value exceeds Max.
type Rule struct {
	// Name identifies the rule in events and the report table.
	Name string
	// Metric is the metric evaluated. With Quantile set it must be a
	// histogram (vector); otherwise a counter (vector).
	Metric string
	// Match filters the metric's series to those carrying every given
	// label=value before aggregation (numerator only). Nil keeps all.
	Match map[string]string
	// Per groups evaluation by this label, yielding one result per label
	// value; empty evaluates the aggregate as a single group.
	Per string
	// Den, when set, names the denominator metric: the rule's value is
	// matched-Metric / Den within each group. When empty the value is the
	// raw sum (or the Quantile for histogram rules).
	Den string
	// Quantile, when positive, evaluates this quantile of the histogram
	// instead of a counter sum.
	Quantile float64
	// Max is the inclusive upper bound; a value strictly above it fires.
	Max float64
	// MinSamples suppresses evaluation of groups with fewer samples
	// (denominator sum, or histogram count) — small groups make noisy
	// ratios.
	MinSamples int64
}

// Result is one rule evaluation for one group.
type Result struct {
	Rule    string  `json:"rule"`
	Group   string  `json:"group,omitempty"` // Per-label value; "" for aggregate rules
	Value   float64 `json:"value"`
	Max     float64 `json:"max"`
	Samples int64   `json:"samples"`
	Window  string  `json:"window"` // "run", or the rolling window that first fired
	Fired   bool    `json:"fired"`
	// WindowIndex is the telemetry-timeline window the firing was first
	// attributed to, when a timeline recorder was wired (SetWindowIndex);
	// 0 otherwise. Machine-varying: it depends on where wall-clock windows
	// fell, so it never feeds the deterministic summary.
	WindowIndex int64 `json:"window_index,omitempty"`
}

// DefaultRules is the pipeline's SLO rule set. The bounds are chosen so a
// clean (chaos-none) golden run passes every rule — its legitimate DNS
// failures and probe timeouts are measurement results, not SLO breaches —
// while injected faults (connection resets, feed corruption, breaker trips,
// quarantined feed lines) fire.
func DefaultRules(probeTimeout time.Duration) []Rule {
	to := probeTimeout.Seconds()
	if to <= 0 {
		to = 2
	}
	return []Rule{
		{
			// Share of probes ending in a connection-class failure, per
			// provider. Clean endpoints refuse nothing; resets are injected.
			Name:   "probe-conn-error-rate",
			Metric: "probe_outcomes_total",
			Match:  map[string]string{"outcome": "conn"},
			Per:    "provider", Den: "probe_outcomes_total",
			Max: 0.02, MinSamples: 50,
		},
		{
			// Probe p99 per provider. Timeouts clamp request latency at the
			// configured probe timeout, so 3x timeout only trips if the
			// latency distribution escapes the ceiling entirely.
			Name:   "probe-p99-latency",
			Metric: "probe_request_seconds",
			Per:    "provider", Quantile: 0.99,
			Max: 3 * to, MinSamples: 50,
		},
		{
			// Any opened probe circuit means a provider substrate was
			// failing hard enough to trip the breaker.
			Name:   "breaker-opens",
			Metric: "fault_breaker_opens_total",
			Max:    0,
		},
		{
			// Share of PDNS records dropped at ingest validation.
			Name:   "feed-drop-rate",
			Metric: "pdns_records_dropped_total",
			Den:    "pdns_records_scanned_total",
			Max:    0.001, MinSamples: 1000,
		},
		{
			// Quarantined (undecodable) feed lines: any is a feed defect.
			Name:   "feed-quarantined-lines",
			Metric: "pdns_reader_quarantined_total",
			Max:    0,
		},
	}
}

// Evaluate runs every rule against one snapshot and returns one result per
// evaluated group, in rule order then group order. Groups below MinSamples
// and metrics absent from the snapshot produce no result.
func Evaluate(s obs.Snapshot, rules []Rule, window string) []Result {
	var out []Result
	for _, r := range rules {
		out = append(out, evalRule(s, r, window)...)
	}
	return out
}

func evalRule(s obs.Snapshot, r Rule, window string) []Result {
	var out []Result
	if r.Quantile > 0 {
		for group, h := range histGroups(s, r.Metric, r.Per, r.Match) {
			if h.Count < r.MinSamples {
				continue
			}
			v := h.Quantile(r.Quantile)
			out = append(out, Result{
				Rule: r.Name, Group: group, Value: v, Max: r.Max,
				Samples: h.Count, Window: window, Fired: v > r.Max,
			})
		}
		sortResults(out)
		return out
	}
	num := counterGroups(s, r.Metric, r.Per, r.Match)
	if num == nil {
		return nil
	}
	if r.Den == "" {
		for group, n := range num {
			if n < r.MinSamples {
				continue
			}
			v := float64(n)
			out = append(out, Result{
				Rule: r.Name, Group: group, Value: v, Max: r.Max,
				Samples: n, Window: window, Fired: v > r.Max,
			})
		}
		sortResults(out)
		return out
	}
	den := counterGroups(s, r.Den, r.Per, nil)
	for group, d := range den {
		if d == 0 || d < r.MinSamples {
			continue
		}
		v := float64(num[group]) / float64(d)
		out = append(out, Result{
			Rule: r.Name, Group: group, Value: v, Max: r.Max,
			Samples: d, Window: window, Fired: v > r.Max,
		})
	}
	sortResults(out)
	return out
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].Group < rs[j].Group })
}

// counterGroups resolves a counter (vector) name into per-group sums: the
// vector form groups and filters by labels; the plain-counter form only
// supports the aggregate, unfiltered case.
func counterGroups(s obs.Snapshot, name, per string, match map[string]string) map[string]int64 {
	if v, ok := s.CounterVecs[name]; ok {
		return v.SumBy(per, match)
	}
	if c, ok := s.Counters[name]; ok && per == "" && len(match) == 0 {
		return map[string]int64{"": c}
	}
	return nil
}

func histGroups(s obs.Snapshot, name, per string, match map[string]string) map[string]obs.HistogramSnapshot {
	if v, ok := s.HistogramVecs[name]; ok {
		return v.MergeBy(per, match)
	}
	if h, ok := s.Histograms[name]; ok && per == "" && len(match) == 0 {
		return map[string]obs.HistogramSnapshot{"": h}
	}
	return nil
}

// Monitor samples a registry on an interval and evaluates rules over a
// rolling window of snapshot deltas while the run executes. A nil *Monitor
// is a valid no-op, like the rest of the observability layer.
type Monitor struct {
	reg      *obs.Registry
	elog     *obs.EventLog
	rules    []Rule
	interval time.Duration
	window   time.Duration

	mu       sync.Mutex
	ring     []timedSnap
	fired    map[string]Result // rule\x00group → first firing
	windowFn func() int64      // current timeline window index, nil when unwired
	onFiring func(Result)      // first-firing hook, nil when unwired

	stop chan struct{}
	done chan struct{}
}

type timedSnap struct {
	at   time.Time
	snap obs.Snapshot
}

// NewMonitor builds a monitor over reg that logs firings into elog.
// Evaluation happens every 500ms over a 10s rolling window; Finalize always
// adds a cumulative whole-run evaluation, so short runs are covered even if
// no tick ever fires.
func NewMonitor(reg *obs.Registry, elog *obs.EventLog, rules []Rule) *Monitor {
	return &Monitor{
		reg:      reg,
		elog:     elog,
		rules:    rules,
		interval: 500 * time.Millisecond,
		window:   10 * time.Second,
		fired:    make(map[string]Result),
	}
}

// SetWindowIndex wires the timeline recorder's current-window source; each
// first firing is stamped with the window it happened in. Call before Start.
func (m *Monitor) SetWindowIndex(fn func() int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.windowFn = fn
	m.mu.Unlock()
}

// SetOnFiring registers a hook invoked (under the monitor's lock — keep it
// cheap) for each first firing per (rule, group); the timeline recorder uses
// it to annotate the breach onto the current window. Call before Start.
func (m *Monitor) SetOnFiring(fn func(Result)) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.onFiring = fn
	m.mu.Unlock()
}

// Start launches the sampling goroutine. Finalize stops it.
func (m *Monitor) Start() {
	if m == nil || m.stop != nil {
		return
	}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func() {
		defer close(m.done)
		t := time.NewTicker(m.interval)
		defer t.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-t.C:
				m.tick(time.Now())
			}
		}
	}()
}

func (m *Monitor) tick(now time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ring = append(m.ring, timedSnap{at: now, snap: m.reg.Snapshot()})
	cut := 0
	for cut < len(m.ring)-1 && now.Sub(m.ring[cut].at) > m.window {
		cut++
	}
	m.ring = m.ring[cut:]
	if len(m.ring) < 2 {
		return
	}
	delta := obs.DeltaSnapshot(m.ring[0].snap, m.ring[len(m.ring)-1].snap)
	window := fmt.Sprintf("%gs", m.window.Seconds())
	for _, res := range Evaluate(delta, m.rules, window) {
		if res.Fired {
			m.recordFiring(res)
		}
	}
}

// recordFiring stores and logs the first firing per (rule, group). Callers
// hold m.mu.
func (m *Monitor) recordFiring(res Result) {
	key := res.Rule + "\x00" + res.Group
	if _, seen := m.fired[key]; seen {
		return
	}
	attrs := []obs.Attr{
		{Key: "group", Value: res.Group},
		{Key: "value", Value: fmt.Sprintf("%.6g", res.Value)},
		{Key: "max", Value: fmt.Sprintf("%.6g", res.Max)},
		{Key: "window", Value: res.Window},
		{Key: "samples", Value: fmt.Sprintf("%d", res.Samples)},
	}
	if m.windowFn != nil {
		res.WindowIndex = m.windowFn()
		attrs = append(attrs, obs.Attr{Key: "window_index", Value: fmt.Sprintf("%d", res.WindowIndex)})
	}
	m.fired[key] = res
	m.elog.Emit(obs.EventHealth, res.Rule, attrs...)
	if m.onFiring != nil {
		m.onFiring(res)
	}
}

// Finalize stops the sampler, evaluates every rule against the cumulative
// registry state, merges in any mid-run firings (a transient breach stays
// fired even if the whole-run value recovered), and returns the full result
// table sorted by rule then group. Safe to call without Start, and at most
// once.
func (m *Monitor) Finalize() []Result {
	if m == nil {
		return nil
	}
	if m.stop != nil {
		close(m.stop)
		<-m.done
		m.stop = nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	final := Evaluate(m.reg.Snapshot(), m.rules, "run")
	for i, res := range final {
		key := res.Rule + "\x00" + res.Group
		if res.Fired {
			m.recordFiring(res)
			// The cumulative row keeps its whole-run value, but the window
			// stamp belongs to the first firing — that's when it happened.
			if first, ok := m.fired[key]; ok {
				final[i].WindowIndex = first.WindowIndex
			}
		} else if first, ok := m.fired[key]; ok {
			final[i] = first // transient mid-run breach: keep the firing
		}
	}
	// Groups that fired mid-run but fell below MinSamples (or vanished) in
	// the cumulative view still belong in the table.
	have := make(map[string]bool, len(final))
	for _, res := range final {
		have[res.Rule+"\x00"+res.Group] = true
	}
	for key, first := range m.fired {
		if !have[key] {
			final = append(final, first)
		}
	}
	order := make(map[string]int, len(m.rules))
	for i, r := range m.rules {
		order[r.Name] = i
	}
	sort.Slice(final, func(i, j int) bool {
		if order[final[i].Rule] != order[final[j].Rule] {
			return order[final[i].Rule] < order[final[j].Rule]
		}
		return final[i].Group < final[j].Group
	})
	return final
}

// Fired reports whether any result in rs fired.
func Fired(rs []Result) bool {
	for _, r := range rs {
		if r.Fired {
			return true
		}
	}
	return false
}

