package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/obs"
)

// StageTimings renders a run's span tree as an aligned stage-timing table:
// one row per span, children indented, with wall time, process-CPU time, the
// share of total root wall time, and any recorded attributes or errors. This
// is the human-readable face of the RunManifest.
func StageTimings(recs []obs.SpanRecord) string {
	t := NewTable("Stage timings", "Stage", "Wall", "CPU", "Share", "Notes")
	var total time.Duration
	for _, r := range recs {
		total += time.Duration(r.WallNS)
	}
	var add func(r obs.SpanRecord, depth int)
	add = func(r obs.SpanRecord, depth int) {
		wall := time.Duration(r.WallNS)
		share := ""
		if depth == 0 && total > 0 {
			share = Pct(float64(wall) / float64(total))
		}
		t.AddRow(strings.Repeat("  ", depth)+r.Name,
			fmtDur(wall), fmtDur(time.Duration(r.CPUNS)), share, stageNotes(r))
		for _, c := range r.Children {
			add(c, depth+1)
		}
	}
	for _, r := range recs {
		add(r, 0)
	}
	t.AddRow("total", fmtDur(total), "", "", "")
	return t.String()
}

// StageTimingsFlat renders archived stage rows (the obs.FlattenStages form
// stored in a run's timings.json) with the same table shape StageTimings
// produces from a live span tree: depth recovered from the slash-joined
// path, root-stage share of total wall time, errors in the notes column.
// `scfruns show` prints this, so the archive and the live run read alike.
func StageTimingsFlat(stages []obs.StageTiming) string {
	t := NewTable("Stage timings", "Stage", "Wall", "CPU", "Share", "Notes")
	var total time.Duration
	for _, s := range stages {
		if !strings.Contains(s.Path, "/") {
			total += time.Duration(s.WallNS)
		}
	}
	for _, s := range stages {
		depth := strings.Count(s.Path, "/")
		name := s.Path
		if i := strings.LastIndex(s.Path, "/"); i >= 0 {
			name = s.Path[i+1:]
		}
		share := ""
		if depth == 0 && total > 0 {
			share = Pct(float64(s.WallNS) / float64(total))
		}
		notes := ""
		if s.Err != "" {
			notes = "ERR: " + s.Err
		}
		t.AddRow(strings.Repeat("  ", depth)+name,
			fmtDur(time.Duration(s.WallNS)), fmtDur(time.Duration(s.CPUNS)), share, notes)
	}
	t.AddRow("total", fmtDur(total), "", "", "")
	return t.String()
}

// stageNotes flattens a span's attributes (and error, if any) to one cell.
func stageNotes(r obs.SpanRecord) string {
	parts := make([]string, 0, len(r.Attrs)+1)
	for _, a := range r.Attrs {
		parts = append(parts, a.Key+"="+a.Value)
	}
	if r.Err != "" {
		parts = append(parts, "ERR: "+r.Err)
	}
	return strings.Join(parts, " ")
}

// fmtDur prints a duration rounded to a readable precision. "µs" becomes
// "us" so the table's byte-width alignment holds.
func fmtDur(d time.Duration) string {
	var s string
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		s = d.Round(time.Microsecond).String()
	case d < time.Second:
		s = d.Round(10 * time.Microsecond).String()
	default:
		s = d.Round(time.Millisecond).String()
	}
	return strings.ReplaceAll(s, "µs", "us")
}

// MetricsSummary renders the highlights of a metrics snapshot: request
// latency quantiles from the probe histogram, cache hit rates, and cold/warm
// start counts. Full detail lives in the manifest and the /metrics endpoint.
func MetricsSummary(s obs.Snapshot) string {
	var b strings.Builder
	b.WriteString("Run metrics\n")
	if h, ok := s.Histograms["probe_request_seconds"]; ok && h.Count > 0 {
		fmt.Fprintf(&b, "  probe requests: %d  p50=%s p90=%s p99=%s mean=%s\n",
			h.Count, fmtSeconds(h.Quantile(0.5)), fmtSeconds(h.Quantile(0.9)),
			fmtSeconds(h.Quantile(0.99)), fmtSeconds(h.Mean()))
	}
	if hits, misses := s.Counters["dnssim_lookup_cache_hits_total"], s.Counters["dnssim_lookup_cache_misses_total"]; hits+misses > 0 {
		fmt.Fprintf(&b, "  resolver lookup cache: %d hits / %d misses (%s hit rate)\n",
			hits, misses, Pct(float64(hits)/float64(hits+misses)))
	}
	if cold, warm := s.Counters["faas_cold_starts_total"], s.Counters["faas_warm_starts_total"]; cold+warm > 0 {
		fmt.Fprintf(&b, "  faas starts: %d cold / %d warm\n", cold, warm)
	}
	if n := s.Counters["pdns_records_scanned_total"]; n > 0 {
		fmt.Fprintf(&b, "  pdns records scanned: %s (%s matched, %s dropped)\n",
			Count(n), Count(s.Counters["pdns_records_matched_total"]),
			Count(s.Counters["pdns_records_dropped_total"]))
	}
	if n := s.Counters["c2_probes_total"]; n > 0 {
		fmt.Fprintf(&b, "  c2 sweep: %s fingerprint probes over %s hosts, %d detections\n",
			Count(n), Count(s.Counters["c2_hosts_scanned_total"]),
			s.Counters["c2_detections_total"])
	}
	return b.String()
}

func fmtSeconds(s float64) string {
	return fmtDur(time.Duration(s * float64(time.Second)))
}
