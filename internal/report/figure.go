package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Point is an (x-label, value) pair.
type Point struct {
	Label string
	Value float64
}

// Figure renders one or more series as a text chart: one row per x position,
// one column block per series, with proportional bars.
type Figure struct {
	Title  string
	Series []Series
	// LogScale renders bar lengths on log10(1+v).
	LogScale bool
	// Width is the maximum bar width in characters.
	Width int
	// Annotations attach event labels to x positions.
	Annotations map[string]string
}

// NewFigure starts a figure.
func NewFigure(title string) *Figure {
	return &Figure{Title: title, Width: 40, Annotations: map[string]string{}}
}

// Add appends a series.
func (f *Figure) Add(name string, pts []Point) {
	f.Series = append(f.Series, Series{Name: name, Points: pts})
}

// Annotate attaches an event label at the x position.
func (f *Figure) Annotate(label, event string) {
	if prev, ok := f.Annotations[label]; ok {
		event = prev + "; " + event
	}
	f.Annotations[label] = event
}

// String renders the figure.
func (f *Figure) String() string {
	var b strings.Builder
	if f.Title != "" {
		fmt.Fprintf(&b, "%s\n", f.Title)
	}
	if len(f.Series) == 0 {
		return b.String()
	}
	// Collect the union of x labels in first-series order, then any extras.
	var labels []string
	seen := map[string]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			if !seen[p.Label] {
				seen[p.Label] = true
				labels = append(labels, p.Label)
			}
		}
	}
	// Per-series max for scaling.
	maxVal := 0.0
	for _, s := range f.Series {
		for _, p := range s.Points {
			if v := f.scale(p.Value); v > maxVal {
				maxVal = v
			}
		}
	}
	if maxVal == 0 {
		maxVal = 1
	}
	byLabel := make([]map[string]float64, len(f.Series))
	for i, s := range f.Series {
		byLabel[i] = map[string]float64{}
		for _, p := range s.Points {
			byLabel[i][p.Label] = p.Value
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for si, s := range f.Series {
		if len(f.Series) > 1 {
			fmt.Fprintf(&b, "-- %s --\n", s.Name)
		}
		for _, l := range labels {
			v, ok := byLabel[si][l]
			if !ok {
				continue
			}
			bar := strings.Repeat("#", int(f.scale(v)/maxVal*float64(f.Width)))
			fmt.Fprintf(&b, "%s | %-*s %s", pad(l, labelW), f.Width, bar, formatVal(v))
			if ev, ok := f.Annotations[l]; ok && si == 0 {
				fmt.Fprintf(&b, "   <- %s", ev)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func (f *Figure) scale(v float64) float64 {
	if f.LogScale {
		return math.Log10(1 + v)
	}
	return v
}

func formatVal(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return Count(int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

// Histogram renders (bucket-label, count) bars sorted by bucket order given.
func Histogram(title string, buckets []Point, width int) string {
	f := NewFigure(title)
	f.Width = width
	f.Add("hist", buckets)
	return f.String()
}

// TopN reduces a map to its n largest entries as points, descending.
func TopN(m map[string]int64, n int) []Point {
	type kv struct {
		k string
		v int64
	}
	all := make([]kv, 0, len(m))
	for k, v := range m {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].k < all[j].k
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]Point, n)
	for i := 0; i < n; i++ {
		out[i] = Point{Label: all[i].k, Value: float64(all[i].v)}
	}
	return out
}

// Comparison is one paper-vs-measured line of EXPERIMENTS.md.
type Comparison struct {
	Metric   string
	Paper    string
	Measured string
	Holds    bool
}

// Comparisons renders a block of comparisons.
func Comparisons(title string, cs []Comparison) string {
	t := NewTable(title, "metric", "paper", "measured", "shape holds")
	for _, c := range cs {
		mark := "yes"
		if !c.Holds {
			mark = "NO"
		}
		t.AddRow(c.Metric, c.Paper, c.Measured, mark)
	}
	return t.String()
}
