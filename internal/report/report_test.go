package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Table X", "name", "count", "share")
	tb.AddRow("alpha", 42, 0.125)
	tb.AddRow("beta-long-name", 7, 1.0)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Table X") {
		t.Errorf("title missing: %q", lines[0])
	}
	if !strings.Contains(lines[3], "alpha") || !strings.Contains(lines[3], "0.12") {
		t.Errorf("row = %q", lines[3])
	}
	// Columns aligned: header and rows share the first column width.
	hIdx := strings.Index(lines[1], "count")
	rIdx := strings.Index(lines[3], "42")
	if hIdx != rIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", hIdx, rIdx, out)
	}
}

func TestPctAndCount(t *testing.T) {
	if Pct(0.0489) != "4.89%" {
		t.Errorf("Pct = %q", Pct(0.0489))
	}
	cases := map[int64]string{
		0: "0", 999: "999", 1000: "1,000", 531089: "531,089",
		1550000000: "1,550,000,000", -4500: "-4,500",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("Figure T")
	f.Add("fqdns", []Point{
		{"2022-04", 100}, {"2022-05", 50}, {"2022-06", 0},
	})
	f.Annotate("2022-04", "launch event")
	out := f.String()
	if !strings.Contains(out, "Figure T") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "launch event") {
		t.Error("annotation missing")
	}
	lines := strings.Split(out, "\n")
	var bar100, bar50, bar0 int
	for _, l := range lines {
		n := strings.Count(l, "#")
		switch {
		case strings.HasPrefix(l, "2022-04"):
			bar100 = n
		case strings.HasPrefix(l, "2022-05"):
			bar50 = n
		case strings.HasPrefix(l, "2022-06"):
			bar0 = n
		}
	}
	if !(bar100 > bar50 && bar50 > bar0) {
		t.Errorf("bar lengths not proportional: %d/%d/%d\n%s", bar100, bar50, bar0, out)
	}
	if bar0 != 0 {
		t.Errorf("zero value drew a bar: %d", bar0)
	}
}

func TestFigureLogScale(t *testing.T) {
	f := NewFigure("log")
	f.LogScale = true
	f.Width = 30
	f.Add("s", []Point{{"a", 1_000_000}, {"b", 1_000}})
	out := f.String()
	var barA, barB int
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "a") {
			barA = strings.Count(l, "#")
		}
		if strings.HasPrefix(l, "b") {
			barB = strings.Count(l, "#")
		}
	}
	// On a log scale the 1000x gap compresses to a factor of two.
	if barA == 0 || barB == 0 || barA > barB*3 {
		t.Errorf("log bars = %d vs %d\n%s", barA, barB, out)
	}
}

func TestFigureMultiSeries(t *testing.T) {
	f := NewFigure("multi")
	f.Add("one", []Point{{"x", 1}})
	f.Add("two", []Point{{"x", 2}})
	out := f.String()
	if !strings.Contains(out, "-- one --") || !strings.Contains(out, "-- two --") {
		t.Errorf("series headers missing:\n%s", out)
	}
}

func TestTopN(t *testing.T) {
	m := map[string]int64{"a": 5, "b": 10, "c": 1, "d": 10}
	pts := TopN(m, 2)
	if len(pts) != 2 || pts[0].Label != "b" || pts[1].Label != "d" {
		t.Errorf("TopN = %v", pts)
	}
	if got := TopN(m, 99); len(got) != 4 {
		t.Errorf("TopN clamp = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	out := Comparisons("check", []Comparison{
		{"metric-a", "10%", "11%", true},
		{"metric-b", "5", "50", false},
	})
	if !strings.Contains(out, "yes") || !strings.Contains(out, "NO") {
		t.Errorf("comparison marks missing:\n%s", out)
	}
}

func TestHistogramHelper(t *testing.T) {
	out := Histogram("h", []Point{{"0.0-0.5", 4}, {"0.5-1.0", 2}}, 10)
	if !strings.Contains(out, "0.0-0.5") {
		t.Errorf("histogram missing bucket:\n%s", out)
	}
}
