// Package report renders the study's tables and figures as text: aligned
// ASCII tables for Tables 1–3, line/bar charts for Figures 3–7, and the
// paper-vs-measured comparisons recorded in EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable starts a table with the given headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a fraction as a percentage string.
func Pct(f float64) string { return fmt.Sprintf("%.2f%%", f*100) }

// Count formats an integer with thousands separators.
func Count(n int64) string {
	s := fmt.Sprintf("%d", n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}
