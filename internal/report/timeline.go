package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs/timeline"
)

// RenderTimeline renders a run's windowed-telemetry sequence as a Markdown
// table plus anomaly/breach callouts. A pure function of the window slice:
// the same timeline.jsonl renders to identical bytes every time, so the
// output is diffable and archivable.
func RenderTimeline(runID string, ws []timeline.Window) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Telemetry timeline — %s\n\n", runID)
	if len(ws) == 0 {
		b.WriteString("No timeline recorded (run with -timeline-interval to capture one).\n")
		return b.String()
	}
	span := float64(ws[len(ws)-1].EndUS) / 1e6
	anoms, breaches := 0, 0
	for _, w := range ws {
		anoms += len(w.Anomalies)
		breaches += len(w.Breaches)
	}
	fmt.Fprintf(&b, "%d windows covering %.2fs — %d anomaly annotation(s), %d health breach(es).\n\n",
		len(ws), span, anoms, breaches)
	b.WriteString("| win | start | dur | stage | records | probes | probe p99 | heap peak | anom | breach |\n")
	b.WriteString("|--:|--:|--:|:--|--:|--:|--:|--:|--:|--:|\n")
	for _, w := range ws {
		stage := strings.Join(w.Stages, "→")
		if stage == "" {
			stage = w.Stage
		}
		p99 := "-"
		if h, ok := w.Hists["probe_request_seconds"]; ok {
			p99 = fmt.Sprintf("%.0fms", h.P99*1000)
		}
		heap := "-"
		if w.Resources != nil && w.Resources.HeapInuseBytes > 0 {
			heap = timelineBytes(w.Resources.HeapInuseBytes)
		}
		fmt.Fprintf(&b, "| %d | %.2fs | %dms | %s | %d | %d | %s | %s | %d | %d |\n",
			w.Index, float64(w.StartUS)/1e6, (w.EndUS-w.StartUS)/1000, stage,
			w.Counters["pdns_records_total"], w.Counters["probe_requests_total"],
			p99, heap, len(w.Anomalies), len(w.Breaches))
	}
	if anoms > 0 {
		b.WriteString("\n## Anomalies\n\n")
		for _, w := range ws {
			for _, a := range w.Anomalies {
				switch a.Kind {
				case "drift":
					fmt.Fprintf(&b, "- window %d: **%s** drift — delta %.0f vs EWMA mean %.2f (σ %.2f, z %.1f)\n",
						w.Index, a.Series, a.Value, a.Mean, a.Sigma, a.Score)
				default:
					fmt.Fprintf(&b, "- window %d: **%s** %s — delta %.0f\n", w.Index, a.Series, a.Kind, a.Value)
				}
			}
		}
	}
	if breaches > 0 {
		b.WriteString("\n## Health breaches\n\n")
		for _, w := range ws {
			for _, br := range w.Breaches {
				group := ""
				if br.Group != "" {
					group = "/" + br.Group
				}
				fmt.Fprintf(&b, "- window %d: **%s%s** — value %.4g over max %.4g\n",
					w.Index, br.Rule, group, br.Value, br.Max)
			}
		}
	}
	return b.String()
}

// RenderTimelineDiff aligns two runs' timelines window-by-window and
// localizes when their behaviour diverged: the first window whose anomaly
// annotations (series+kind sets) differ. Like RenderTimeline it is a pure
// function of its inputs.
func RenderTimelineDiff(aID, bID string, a, b []timeline.Window) string {
	var out strings.Builder
	fmt.Fprintf(&out, "# Timeline diff — %s vs %s\n\n", aID, bID)
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		out.WriteString("Neither run recorded a timeline.\n")
		return out.String()
	}
	firstDiv := -1
	out.WriteString("| win | stage A | stage B | anom A | anom B | breach A | breach B |\n")
	out.WriteString("|--:|:--|:--|--:|--:|--:|--:|\n")
	for i := 0; i < n; i++ {
		var wa, wb *timeline.Window
		if i < len(a) {
			wa = &a[i]
		}
		if i < len(b) {
			wb = &b[i]
		}
		fmt.Fprintf(&out, "| %d | %s | %s | %s | %s | %s | %s |\n", i,
			diffStage(wa), diffStage(wb),
			diffCount(wa, func(w *timeline.Window) int { return len(w.Anomalies) }),
			diffCount(wb, func(w *timeline.Window) int { return len(w.Anomalies) }),
			diffCount(wa, func(w *timeline.Window) int { return len(w.Breaches) }),
			diffCount(wb, func(w *timeline.Window) int { return len(w.Breaches) }))
		if firstDiv < 0 && anomalyKey(wa) != anomalyKey(wb) {
			firstDiv = i
		}
	}
	out.WriteString("\n")
	if firstDiv < 0 {
		out.WriteString("No anomaly divergence: both runs annotate the same series in the same windows.\n")
		return out.String()
	}
	fmt.Fprintf(&out, "**Divergence begins at window %d**", firstDiv)
	var wa, wb *timeline.Window
	if firstDiv < len(a) {
		wa = &a[firstDiv]
	}
	if firstDiv < len(b) {
		wb = &b[firstDiv]
	}
	fmt.Fprintf(&out, ": A annotates [%s], B annotates [%s].\n", anomalyKey(wa), anomalyKey(wb))
	return out.String()
}

func diffStage(w *timeline.Window) string {
	if w == nil {
		return "(ended)"
	}
	if s := strings.Join(w.Stages, "→"); s != "" {
		return s
	}
	if w.Stage != "" {
		return w.Stage
	}
	return "-"
}

func diffCount(w *timeline.Window, f func(*timeline.Window) int) string {
	if w == nil {
		return "-"
	}
	return fmt.Sprintf("%d", f(w))
}

// anomalyKey canonicalizes a window's anomaly set for comparison: sorted
// "series:kind" pairs. A nil window (one run ended) is the empty key.
func anomalyKey(w *timeline.Window) string {
	if w == nil {
		return ""
	}
	keys := make([]string, 0, len(w.Anomalies))
	for _, a := range w.Anomalies {
		keys = append(keys, a.Series+":"+a.Kind)
	}
	sort.Strings(keys)
	return strings.Join(keys, " ")
}

func timelineBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}
