package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/pdns"
)

// keepFiles is how many checkpoint files survive pruning. More than one, so
// a torn newest file still leaves a valid fallback; few enough that the
// archive slot stays small.
const keepFiles = 3

// Dir returns the checkpoint directory of a run: <root>/<runID>/checkpoints.
func Dir(root, runID string) string { return filepath.Join(root, runID, DirName) }

// Manager owns a run's checkpoint lifecycle: it accumulates the
// completed-stage ledger plus the latest restorable state, and persists a
// cumulative snapshot — atomically, via tmp + fsync + rename — at every
// stage boundary and on demand during emission. Write failures degrade the
// run's durability, not its correctness, so they are counted and logged but
// never abort the pipeline. A nil *Manager is a valid no-op, which keeps
// the checkpoint-disabled path in core free of conditionals.
type Manager struct {
	mu      sync.Mutex
	dir     string
	runID   string
	seed    int64
	workers int

	seq          uint64
	writes       int
	lastStage    string
	resumedFrom  uint64
	resumedStage string
	stages       []string
	agg          *pdns.Aggregate
	probe        *ProbeState
	lastWrite    time.Time

	elog    *obs.EventLog
	mWrites *obs.Counter // checkpoint_write_total
	mErrors *obs.Counter // checkpoint_write_errors_total
	gBytes  *obs.Gauge   // checkpoint_last_bytes
	gSeq    *obs.Gauge   // checkpoint_last_seq
	gAgeMS  *obs.Gauge   // checkpoint_age_ms (gap between consecutive writes)
}

// NewManager builds a manager writing into dir for the given run identity.
func NewManager(dir, runID string, seed int64, workers int, reg *obs.Registry, elog *obs.EventLog) *Manager {
	return &Manager{
		dir: dir, runID: runID, seed: seed, workers: workers,
		elog:    elog,
		mWrites: reg.Counter("checkpoint_write_total"),
		mErrors: reg.Counter("checkpoint_write_errors_total"),
		gBytes:  reg.Gauge("checkpoint_last_bytes"),
		gSeq:    reg.Gauge("checkpoint_last_seq"),
		gAgeMS:  reg.Gauge("checkpoint_age_ms"),
	}
}

// Restore seeds the manager from the snapshot the run resumed from: the
// ledger and restorable state carry over (so later boundary snapshots stay
// cumulative) and sequence numbering continues where the parent run's left
// off.
func (m *Manager) Restore(s *Snapshot) {
	if m == nil || s == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq = s.Header.Seq
	m.resumedFrom = s.Header.Seq
	m.resumedStage = s.Header.Stage
	m.stages = append([]string(nil), s.Stages...)
	m.agg = s.Aggregate
	m.probe = s.Probe
}

// StageDone records stage as completed and persists a boundary snapshot.
// agg and probe, when non-nil, replace the manager's restorable state; nil
// leaves the previously recorded state in place, so snapshots accumulate.
// The ledger append is idempotent: a resumed run re-announces the stages it
// skipped without duplicating their entries.
func (m *Manager) StageDone(stage string, agg *pdns.Aggregate, probe *ProbeState) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if agg != nil {
		m.agg = agg
	}
	if probe != nil {
		m.probe = probe
	}
	seen := false
	for _, s := range m.stages {
		if s == stage {
			seen = true
			break
		}
	}
	if !seen {
		m.stages = append(m.stages, stage)
	}
	m.save(stage, 0, nil)
}

// SaveEmission persists a mid-identify snapshot of the emission frontier.
// The shard aggregators must be quiescent for the duration of the call (the
// workload coordinator holds every shard lock while invoking this).
func (m *Manager) SaveEmission(progress []int64, shards []*pdns.Aggregator, rows int64) {
	if m == nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.save("identify", rows, &Emission{Rows: rows, Progress: progress, Shards: shards})
}

// save encodes and atomically writes one snapshot; the caller holds m.mu.
func (m *Manager) save(stage string, rows int64, em *Emission) {
	m.seq++
	snap := &Snapshot{
		Header: Header{
			RunID: m.runID, Seed: m.seed, Workers: m.workers,
			Seq: m.seq, Stage: stage, Rows: rows, ResumedFromSeq: m.resumedFrom,
		},
		Stages:    m.stages,
		Emission:  em,
		Aggregate: m.agg,
		Probe:     m.probe,
	}
	data, err := Encode(snap)
	if err == nil {
		err = writeAtomic(m.dir, fileName(m.seq), data)
	}
	if err != nil {
		m.seq-- // the slot was never occupied
		m.mErrors.Inc()
		m.elog.Emit(obs.EventNote, "checkpoint-error", obs.Attr{Key: "error", Value: err.Error()})
		return
	}
	now := time.Now()
	if !m.lastWrite.IsZero() {
		m.gAgeMS.Set(now.Sub(m.lastWrite).Milliseconds())
	}
	m.lastWrite = now
	m.writes++
	m.lastStage = stage
	m.mWrites.Inc()
	m.gBytes.Set(int64(len(data)))
	m.gSeq.Set(int64(m.seq))
	m.elog.Emit(obs.EventNote, "checkpoint",
		obs.Attr{Key: "seq", Value: fmt.Sprint(m.seq)},
		obs.Attr{Key: "stage", Value: stage},
		obs.Attr{Key: "bytes", Value: fmt.Sprint(len(data))})
	m.prune()
}

// Lineage summarises the manager's checkpoint history for the run archive.
type Lineage struct {
	Writes       int
	LastSeq      uint64
	LastStage    string
	Resumed      bool
	ResumedFrom  uint64
	ResumedStage string
}

// Info returns the manager's lineage so far.
func (m *Manager) Info() Lineage {
	if m == nil {
		return Lineage{}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return Lineage{
		Writes: m.writes, LastSeq: m.seq, LastStage: m.lastStage,
		Resumed: m.resumedFrom > 0, ResumedFrom: m.resumedFrom, ResumedStage: m.resumedStage,
	}
}

func fileName(seq uint64) string { return fmt.Sprintf("ckpt-%06d.ckpt", seq) }

// writeAtomic lands data at dir/name through a same-directory temp file,
// fsync, and rename, so a crash mid-write leaves either the old state or
// the new one — never a torn file under the final name. The directory is
// fsynced best-effort afterwards to persist the rename itself.
func writeAtomic(dir, name string, data []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	f, err := os.CreateTemp(dir, ".tmp-"+name+"-")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %s: %w", name, werr)
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync() // best effort: persist the rename
		d.Close()
	}
	return nil
}

// prune removes checkpoint files beyond the newest keepFiles; best effort.
func (m *Manager) prune() {
	names := checkpointFiles(m.dir)
	for i := 0; i+keepFiles < len(names); i++ {
		os.Remove(filepath.Join(m.dir, names[i]))
	}
}

// checkpointFiles lists ckpt-*.ckpt under dir in ascending (oldest-first)
// name order; the zero-padded sequence makes name order sequence order.
func checkpointFiles(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasPrefix(n, "ckpt-") && strings.HasSuffix(n, ".ckpt") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Latest loads the newest valid checkpoint for runID under root, skipping
// (and reporting) corrupt or torn files. With no usable checkpoint it
// distinguishes the two failure shapes: ErrNoCheckpoint when nothing under
// root has checkpoints for any run (the caller may start fresh), ErrMismatch
// when checkpoints exist only for other run IDs — the config changed between
// the crash and the resume, and resuming would mix experiments.
func Latest(root, runID string) (*Snapshot, []string, error) {
	dir := Dir(root, runID)
	var warns []string
	for i := len(checkpointFiles(dir)) - 1; i >= 0; i-- {
		name := checkpointFiles(dir)[i]
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			warns = append(warns, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		snap, err := Decode(data)
		if err != nil {
			warns = append(warns, fmt.Sprintf("%s: %v", name, err))
			continue
		}
		if snap.Header.RunID != runID {
			warns = append(warns, fmt.Sprintf("%s: belongs to run %s, not %s", name, snap.Header.RunID, runID))
			continue
		}
		return snap, warns, nil
	}
	if others := otherCheckpointedRuns(root, runID); len(others) > 0 {
		return nil, warns, fmt.Errorf("%w: no checkpoint for run %s, but checkpoints exist for %s — the configuration does not match the interrupted run", ErrMismatch, runID, strings.Join(others, ", "))
	}
	return nil, warns, fmt.Errorf("%w for run %s under %s", ErrNoCheckpoint, runID, root)
}

// otherCheckpointedRuns lists run directories under root (excluding runID)
// that contain checkpoint files.
func otherCheckpointedRuns(root, runID string) []string {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() || e.Name() == runID || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		if len(checkpointFiles(Dir(root, e.Name()))) > 0 {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out
}

// FileInfo describes one on-disk checkpoint file for `scfruns show`.
type FileInfo struct {
	Name           string
	Size           int64
	Seq            uint64
	Stage          string
	Rows           int64
	Stages         int
	ResumedFromSeq uint64
	Err            string // non-empty when the file failed to decode
}

// Inspect summarises every checkpoint file under dir, oldest first. Corrupt
// files are reported, not skipped — a lineage view should show the torn
// write the resume skipped over.
func Inspect(dir string) []FileInfo {
	var out []FileInfo
	for _, name := range checkpointFiles(dir) {
		fi := FileInfo{Name: name}
		path := filepath.Join(dir, name)
		if st, err := os.Stat(path); err == nil {
			fi.Size = st.Size()
		}
		data, err := os.ReadFile(path)
		if err == nil {
			var snap *Snapshot
			if snap, err = Decode(data); err == nil {
				fi.Seq = snap.Header.Seq
				fi.Stage = snap.Header.Stage
				fi.Rows = snap.Header.Rows
				fi.Stages = len(snap.Stages)
				fi.ResumedFromSeq = snap.Header.ResumedFromSeq
			}
		}
		if err != nil {
			fi.Err = err.Error()
		}
		out = append(out, fi)
	}
	return out
}
