package checkpoint

import (
	"errors"
	"testing"
)

// FuzzCheckpointDecode pins the decoder's core safety property: arbitrary
// bytes — including truncations and mutations of valid checkpoints — never
// panic and never allocate unboundedly; they either decode or fail with an
// error wrapping ErrCorrupt.
func FuzzCheckpointDecode(f *testing.F) {
	valid, err := Encode(&Snapshot{
		Header: Header{RunID: "r-0123456789ab", Seed: 1, Workers: 2, Seq: 3, Stage: "identify"},
		Stages: []string{"substrate", "identify"},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("SCFCKPT1"))
	f.Add([]byte{})
	f.Add([]byte("not a checkpoint at all"))
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Decode error %v does not wrap ErrCorrupt", err)
			}
			return
		}
		// A successful decode must yield a usable snapshot.
		if snap == nil {
			t.Fatal("Decode returned nil snapshot with nil error")
		}
		snap.HasStage("identify")
	})
}
