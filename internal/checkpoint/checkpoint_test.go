package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pdns"
	"repro/internal/probe"
)

// testSnapshot builds a snapshot exercising every section: header, ledger,
// emission frontier (two shard aggregators), merged aggregate, probe state.
func testSnapshot(t *testing.T) *Snapshot {
	t.Helper()
	start := pdns.NewDate(2022, time.April, 1)
	end := start.AddDays(729)
	mk := func(fqdn string, days ...int) *pdns.Aggregator {
		agg := pdns.NewAggregator(nil, start, end)
		for _, d := range days {
			day := start.AddDays(d)
			ts := day.Time().Add(2 * time.Hour)
			agg.Add(&pdns.Record{
				FQDN: fqdn, RType: pdns.TypeA, RData: "1.2.3.4",
				FirstSeen: ts, LastSeen: ts.Add(5 * time.Minute),
				RequestCnt: int64(7 + d), PDate: day,
			})
		}
		return agg
	}
	return &Snapshot{
		Header: Header{
			RunID: "r-0123456789ab", Seed: 42, Workers: 3,
			Seq: 17, Stage: "identify", Rows: 123456, ResumedFromSeq: 4,
		},
		Stages: []string{"substrate", "identify"},
		Emission: &Emission{
			Rows:     123456,
			Progress: []int64{10, 12},
			Shards: []*pdns.Aggregator{
				mk("a.lambda-url.us-east-1.on.aws", 0, 3, 9),
				mk("1234567890-abcdefghij-ap-guangzhou.scf.tencentcs.com", 1, 2),
			},
		},
		Aggregate: mk("b.lambda-url.us-east-1.on.aws", 5, 6).Finish(),
		Probe: &ProbeState{
			Results: []probe.Result{
				{FQDN: "a.example", Reachable: true, HTTPS: true, Status: 200,
					ContentType: "text/html", Body: []byte("<html>hi</html>"),
					Attempts: 1, Elapsed: 1500 * time.Microsecond},
				{FQDN: "b.example", Failure: probe.FailDNS, Attempts: 3},
			},
			Stats: probe.Stats{Probed: 2, Reachable: 1, Unreachable: 1,
				DNSFailures: 1, Requests: 4, Retried: 2},
		},
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := testSnapshot(t)
	data, err := Encode(snap)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header != snap.Header {
		t.Errorf("header = %+v, want %+v", got.Header, snap.Header)
	}
	if !reflect.DeepEqual(got.Stages, snap.Stages) {
		t.Errorf("stages = %v, want %v", got.Stages, snap.Stages)
	}
	if !reflect.DeepEqual(got.Aggregate, snap.Aggregate) {
		t.Error("aggregate did not round-trip")
	}
	if !reflect.DeepEqual(got.Probe, snap.Probe) {
		t.Errorf("probe state = %+v, want %+v", got.Probe, snap.Probe)
	}
	if got.Emission == nil || got.Emission.Rows != snap.Emission.Rows ||
		!reflect.DeepEqual(got.Emission.Progress, snap.Emission.Progress) {
		t.Fatalf("emission frontier did not round-trip: %+v", got.Emission)
	}
	// Restored shard aggregators must finish identically to the originals.
	for i := range snap.Emission.Shards {
		want := snap.Emission.Shards[i].Finish()
		if have := got.Emission.Shards[i].Finish(); !reflect.DeepEqual(have, want) {
			t.Errorf("shard %d finished differently after restore", i)
		}
	}
	if !got.HasStage("identify") || got.HasStage("probe") {
		t.Error("HasStage does not reflect the decoded ledger")
	}
}

// TestDecodeTruncation: every prefix of a valid checkpoint decodes to an
// error wrapping ErrCorrupt — a torn write can never be mistaken for a
// shorter valid checkpoint, because the "end" trailer is mandatory.
func TestDecodeTruncation(t *testing.T) {
	data, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n += 1 + n/64 {
		if _, derr := Decode(data[:n]); !errors.Is(derr, ErrCorrupt) {
			t.Fatalf("Decode(%d of %d bytes) = %v, want ErrCorrupt", n, len(data), derr)
		}
	}
}

// TestDecodeBitFlip: flipping any byte breaks a section CRC (or the framing)
// and must surface as ErrCorrupt.
func TestDecodeBitFlip(t *testing.T) {
	data, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i += 1 + i/32 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x41
		if _, derr := Decode(mut); derr == nil {
			t.Fatalf("Decode accepted a checkpoint with byte %d flipped", i)
		} else if !errors.Is(derr, ErrCorrupt) {
			t.Fatalf("byte %d flipped: err = %v, want ErrCorrupt", i, derr)
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	data, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, derr := Decode(append(append([]byte(nil), data...), 0xde, 0xad)); !errors.Is(derr, ErrCorrupt) {
		t.Fatalf("trailing garbage: err = %v, want ErrCorrupt", derr)
	}
}

// newTestManager builds a manager writing under a temp run root and returns
// it with its root.
func newTestManager(t *testing.T, runID string) (*Manager, string) {
	t.Helper()
	root := t.TempDir()
	m := NewManager(Dir(root, runID), runID, 1, 2, obs.NewRegistry(), obs.NewEventLog())
	return m, root
}

// TestManagerLifecycle drives a manager through boundary and emission
// snapshots and checks sequencing, pruning, Latest, and Info.
func TestManagerLifecycle(t *testing.T) {
	const runID = "r-aaaaaaaaaaaa"
	m, root := newTestManager(t, runID)
	m.StageDone("substrate", nil, nil)
	m.SaveEmission([]int64{3, 4}, []*pdns.Aggregator{
		pdns.NewAggregator(nil, pdns.NewDate(2022, time.April, 1), pdns.NewDate(2024, time.March, 31)),
		pdns.NewAggregator(nil, pdns.NewDate(2022, time.April, 1), pdns.NewDate(2024, time.March, 31)),
	}, 2000)
	for _, stage := range []string{"identify", "probe", "sanitise"} {
		m.StageDone(stage, nil, nil)
	}
	// Idempotent ledger: re-announcing a completed stage must not duplicate.
	m.StageDone("sanitise", nil, nil)

	files := checkpointFiles(Dir(root, runID))
	if len(files) != keepFiles {
		t.Fatalf("%d checkpoint files on disk, want pruned to %d: %v", len(files), keepFiles, files)
	}
	snap, warns, err := Latest(root, runID)
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Errorf("unexpected warnings: %v", warns)
	}
	if snap.Header.Seq != 6 || snap.Header.Stage != "sanitise" {
		t.Errorf("latest = seq %d stage %q, want seq 6 stage sanitise", snap.Header.Seq, snap.Header.Stage)
	}
	want := []string{"substrate", "identify", "probe", "sanitise"}
	if !reflect.DeepEqual(snap.Stages, want) {
		t.Errorf("ledger = %v, want %v", snap.Stages, want)
	}
	if li := m.Info(); li.Writes != 6 || li.LastSeq != 6 || li.Resumed {
		t.Errorf("lineage = %+v", li)
	}

	infos := Inspect(Dir(root, runID))
	if len(infos) != keepFiles {
		t.Fatalf("Inspect returned %d entries, want %d", len(infos), keepFiles)
	}
	for _, fi := range infos {
		if fi.Err != "" {
			t.Errorf("%s unexpectedly corrupt: %s", fi.Name, fi.Err)
		}
	}
}

// TestLatestSkipsTornNewest: a truncated newest file (torn write) falls back
// to the previous valid checkpoint with a warning; Inspect reports the
// corruption instead of hiding it.
func TestLatestSkipsTornNewest(t *testing.T) {
	const runID = "r-bbbbbbbbbbbb"
	m, root := newTestManager(t, runID)
	m.StageDone("substrate", nil, nil)
	m.StageDone("identify", nil, nil)
	dir := Dir(root, runID)
	newest := filepath.Join(dir, fileName(2))
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	snap, warns, err := Latest(root, runID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Header.Seq != 1 || snap.Header.Stage != "substrate" {
		t.Errorf("fell back to seq %d stage %q, want seq 1 substrate", snap.Header.Seq, snap.Header.Stage)
	}
	if len(warns) != 1 {
		t.Errorf("warnings = %v, want exactly one for the torn file", warns)
	}
	var corrupt int
	for _, fi := range Inspect(dir) {
		if fi.Err != "" {
			corrupt++
		}
	}
	if corrupt != 1 {
		t.Errorf("Inspect reported %d corrupt files, want 1", corrupt)
	}
}

// TestLatestFailureShapes pins the two no-checkpoint outcomes apart:
// ErrNoCheckpoint when the root is empty of checkpoints (caller may start
// fresh), ErrMismatch when checkpoints exist only under other run IDs (the
// configuration changed between crash and resume).
func TestLatestFailureShapes(t *testing.T) {
	m, root := newTestManager(t, "r-cccccccccccc")
	if _, _, err := Latest(root, "r-cccccccccccc"); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("empty root: err = %v, want ErrNoCheckpoint", err)
	}
	m.StageDone("substrate", nil, nil)
	if _, _, err := Latest(root, "r-dddddddddddd"); !errors.Is(err, ErrMismatch) {
		t.Errorf("other run checkpointed: err = %v, want ErrMismatch", err)
	}
	// A checkpoint whose embedded run ID disagrees with its directory is
	// skipped, never resumed under the wrong configuration.
	wrong := Dir(root, "r-dddddddddddd")
	if err := os.MkdirAll(wrong, 0o755); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(filepath.Join(Dir(root, "r-cccccccccccc"), fileName(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(wrong, fileName(1)), src, 0o644); err != nil {
		t.Fatal(err)
	}
	_, warns, err := Latest(root, "r-dddddddddddd")
	if err == nil {
		t.Fatal("resumed a checkpoint embedding a different run ID")
	}
	if len(warns) != 1 {
		t.Errorf("warnings = %v, want one about the foreign run ID", warns)
	}
}

// TestManagerNilSafe: a nil manager is the disabled path and must be inert.
func TestManagerNilSafe(t *testing.T) {
	var m *Manager
	m.StageDone("substrate", nil, nil)
	m.SaveEmission(nil, nil, 0)
	m.Restore(&Snapshot{})
	if li := m.Info(); li != (Lineage{}) {
		t.Errorf("nil manager lineage = %+v", li)
	}
}

// TestManagerRestoreContinuesSequence: a resumed manager continues its
// parent's numbering and carries the ledger forward cumulatively.
func TestManagerRestoreContinuesSequence(t *testing.T) {
	const runID = "r-eeeeeeeeeeee"
	m, root := newTestManager(t, runID)
	m.Restore(&Snapshot{
		Header: Header{RunID: runID, Seq: 9, Stage: "probe"},
		Stages: []string{"substrate", "identify", "probe"},
	})
	m.StageDone("sanitise", nil, nil)
	snap, _, err := Latest(root, runID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Header.Seq != 10 || snap.Header.ResumedFromSeq != 9 {
		t.Errorf("resumed write = seq %d (from %d), want 10 (from 9)", snap.Header.Seq, snap.Header.ResumedFromSeq)
	}
	want := []string{"substrate", "identify", "probe", "sanitise"}
	if !reflect.DeepEqual(snap.Stages, want) {
		t.Errorf("ledger = %v, want %v", snap.Stages, want)
	}
	if li := m.Info(); !li.Resumed || li.ResumedFrom != 9 || li.ResumedStage != "probe" {
		t.Errorf("lineage = %+v", li)
	}
}

// TestEncodeDeterministic: the same snapshot always encodes to the same
// bytes, so checkpoint files are diffable across machines.
func TestEncodeDeterministic(t *testing.T) {
	a, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(testSnapshot(t))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("two encodings of the same snapshot differ")
	}
}
